type config = {
  address : Server.address;
  requests : int;
  connections : int;
  burst : int;
  seed : int64;
  chaos_every : int option;
  reuse_fraction : float;
  neighbour_fraction : float;
  deadline_s : float option;
  timeout_s : float;
  fleet : Shard.t option;
  netfault : Netfault.t option;
  pool : Pool.config option;
}

let default_config ~address ~requests =
  {
    address;
    requests;
    connections = 2;
    burst = 8;
    seed = 42L;
    chaos_every = None;
    reuse_fraction = 0.3;
    neighbour_fraction = 0.3;
    deadline_s = None;
    timeout_s = 60.;
    fleet = None;
    netfault = None;
    pool = None;
  }

type shard_load = {
  sent : int;
  answered : int;
  solved : int;
  degraded : int;
  shed : int;
  req_s : float;
}

type report = {
  sent : int;
  solved : int;
  degraded : int;
  shed : int;
  rejected : int;
  other : int;
  chaos_toggles : int;
  chaos_sent : (string * int) list;
  unanswered : int;
  errors : string list;
  wall_s : float;
  latency : Obs.Metrics.summary option;
  per_shard : (string * shard_load) list;
  failovers : int;
  retries : int;
  recovered : int;
}

let report_ok r =
  r.unanswered = 0 && r.rejected = 0 && r.errors = [] && r.sent > 0
  && r.solved + r.degraded + r.shed = r.sent

let report_to_string r =
  Printf.sprintf
    "sent %d: %d solved, %d degraded, %d shed, %d rejected, %d unanswered; %d \
     chaos toggles, %d transport errors, %d failovers, %d recovered, %.2fs"
    r.sent r.solved r.degraded r.shed r.rejected r.unanswered r.chaos_toggles
    (List.length r.errors) r.failovers r.recovered r.wall_s

let random_market rng =
  let n = 1 + Numerics.Rng.int rng 4 in
  let cps =
    Array.init n (fun i ->
        Econ.Cp.exponential
          ~name:(Printf.sprintf "cp%d" i)
          ~alpha:(Numerics.Rng.uniform rng ~lo:0.5 ~hi:3.)
          ~beta:(Numerics.Rng.uniform rng ~lo:0.5 ~hi:3.)
          ~value:(Numerics.Rng.uniform rng ~lo:0.5 ~hi:2.5)
          ())
  in
  {
    Proto.capacity = Numerics.Rng.uniform rng ~lo:0.5 ~hi:5.;
    price = Numerics.Rng.uniform rng ~lo:0.1 ~hi:1.5;
    cap = Numerics.Rng.uniform rng ~lo:0.05 ~hi:1.;
    cps;
  }

(* Same CP population, nearby scalar knobs: the warm-start shape. *)
let neighbour_market rng (m : Proto.market) =
  let nudge x = x *. Numerics.Rng.uniform rng ~lo:0.95 ~hi:1.05 in
  {
    m with
    Proto.price = Float.max 0.01 (nudge m.Proto.price);
    cap = Float.max 0.01 (nudge m.Proto.cap);
    capacity = Float.max 0.1 (nudge m.Proto.capacity);
  }

(* The seeded request mix: fresh markets, exact repeats, perturbed
   neighbours — shared by the single-daemon and fleet paths. *)
let market_stream rng cfg =
  let recent = ref [] in
  let remember m =
    recent :=
      m :: (if List.length !recent >= 16 then List.filteri (fun i _ -> i < 15) !recent else !recent)
  in
  fun () ->
    let u = Numerics.Rng.float rng in
    match !recent with
    | past when past <> [] && u < cfg.reuse_fraction ->
      Numerics.Rng.choice rng (Array.of_list past)
    | past when past <> [] && u < cfg.reuse_fraction +. cfg.neighbour_fraction ->
      let m = neighbour_market rng (Numerics.Rng.choice rng (Array.of_list past)) in
      remember m;
      m
    | _ ->
      let m = random_market rng in
      remember m;
      m

let chaos_cycle =
  Array.of_list
    (None
    :: List.map
         (fun (s : Runner.Chaos.scenario) -> Some s.Runner.Chaos.mode)
         Runner.Chaos.default_scenarios)

type counts = {
  mutable solved : int;
  mutable degraded : int;
  mutable shed : int;
  mutable rejected : int;
  mutable other : int;
  mutable chaos_toggles : int;
  mutable errors : string list;
}

let fresh_counts () =
  {
    solved = 0;
    degraded = 0;
    shed = 0;
    rejected = 0;
    other = 0;
    chaos_toggles = 0;
    errors = [];
  }

(* Server-reported solve time of every Solved answer; one histogram per
   process (Metrics handles are find-or-create), reset per run so each
   report summarizes its own run. *)
let latency_h = Obs.Metrics.histogram "loadgen.solve_s"

(* Read [expected] responses off one connection, matching solve answers
   back to their ids. *)
let drain_conn ~timeout_s client outstanding counts expected =
  let settle id =
    if Hashtbl.mem outstanding id then Hashtbl.remove outstanding id
  in
  let rec go remaining =
    if remaining > 0 then
      match Client.read_response ~timeout_s client with
      | Error e -> counts.errors <- Client.error_to_string e :: counts.errors
      | Ok response ->
        (match response with
        | Proto.Solved { id; result } ->
          settle id;
          Obs.Metrics.observe latency_h result.Proto.solve_s;
          counts.solved <- counts.solved + 1
        | Proto.Degraded { id; _ } ->
          settle id;
          counts.degraded <- counts.degraded + 1
        | Proto.Shed { id; _ } ->
          settle id;
          counts.shed <- counts.shed + 1
        | Proto.Rejected { id; _ } ->
          Option.iter settle id;
          counts.rejected <- counts.rejected + 1
        | Proto.Chaos_ack _ -> counts.chaos_toggles <- counts.chaos_toggles + 1
        | Proto.Metrics_snapshot _ | Proto.Prom_text _ | Proto.Pong | Proto.Bye ->
          counts.other <- counts.other + 1);
        go (remaining - 1)
  in
  go expected

(* {2 Single-daemon mode} *)

let run_single ~on_event ~on_round cfg =
  let t0 = Obs.Clock.now () in
  Obs.Metrics.reset ~prefix:"loadgen." ();
  let n_conns = max 1 cfg.connections in
  let clients =
    List.filter_map
      (fun i ->
        match Client.connect ?netfault:cfg.netfault cfg.address with
        | Ok c -> Some c
        | Error e ->
          let msg = Client.error_to_string e in
          Obs.Log.warn ~m:"loadgen" "connection failed"
            ~fields:[ ("conn", string_of_int i); ("error", msg) ];
          on_event (Printf.sprintf "connection %d failed: %s" i msg);
          None)
      (List.init n_conns Fun.id)
  in
  match clients with
  | [] -> Error "loadgen: no connection could be established"
  | clients ->
    let clients = Array.of_list clients in
    let rng = Numerics.Rng.create cfg.seed in
    let pick_market = market_stream rng cfg in
    let params = { Proto.deadline_s = cfg.deadline_s; max_evals = None } in
    let outstanding = Hashtbl.create (2 * cfg.requests) in
    let counts = fresh_counts () in
    let sent = ref 0 in
    let chaos_idx = ref 0 in
    let chaos_sent = Hashtbl.create 8 in
    let count_chaos mode =
      let name =
        match mode with None -> "off" | Some m -> Proto.chaos_mode_name m
      in
      Hashtbl.replace chaos_sent name
        (1 + Option.value ~default:0 (Hashtbl.find_opt chaos_sent name));
      Obs.Metrics.incr
        (Obs.Metrics.counter ~labels:[ ("mode", name) ] "loadgen.chaos.toggles")
    in
    let expected = Array.make (Array.length clients) 0 in
    while !sent < cfg.requests && counts.errors = [] do
      (* one round: a burst on every connection, then drain them all *)
      Array.iteri
        (fun ci client ->
          let budget = min cfg.burst (cfg.requests - !sent) in
          for _ = 1 to budget do
            (match cfg.chaos_every with
            | Some every when every > 0 && !sent mod every = 0 ->
              let mode = chaos_cycle.(!chaos_idx mod Array.length chaos_cycle) in
              incr chaos_idx;
              (match Client.send client (Proto.Chaos { mode }) with
              | Ok () ->
                count_chaos mode;
                expected.(ci) <- expected.(ci) + 1
              | Error e ->
                counts.errors <- Client.error_to_string e :: counts.errors)
            | _ -> ());
            let id = Printf.sprintf "r%d" !sent in
            incr sent;
            let market = pick_market () in
            match Client.send client (Proto.Solve { id; market; params }) with
            | Ok () ->
              Hashtbl.replace outstanding id ();
              expected.(ci) <- expected.(ci) + 1
            | Error e ->
              counts.errors <- Client.error_to_string e :: counts.errors
          done)
        clients;
      Array.iteri
        (fun ci client ->
          drain_conn ~timeout_s:cfg.timeout_s client outstanding counts
            expected.(ci);
          expected.(ci) <- 0)
        clients;
      on_round ~sent:!sent;
      if !sent mod 500 < cfg.burst * Array.length clients then begin
        Obs.Log.debug ~m:"loadgen" "progress"
          ~fields:
            [
              ("sent", string_of_int !sent);
              ("of", string_of_int cfg.requests);
              ("solved", string_of_int counts.solved);
              ("degraded", string_of_int counts.degraded);
              ("shed", string_of_int counts.shed);
            ];
        on_event
          (Printf.sprintf "%d/%d sent (%d solved, %d degraded, %d shed)" !sent
             cfg.requests counts.solved counts.degraded counts.shed)
      end
    done;
    Array.iter Client.close clients;
    Ok
      {
        sent = !sent;
        solved = counts.solved;
        degraded = counts.degraded;
        shed = counts.shed;
        rejected = counts.rejected;
        other = counts.other;
        chaos_toggles = counts.chaos_toggles;
        chaos_sent =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) chaos_sent []
          |> List.sort compare;
        unanswered = Hashtbl.length outstanding;
        errors = counts.errors;
        wall_s = Obs.Clock.elapsed ~since:t0;
        latency =
          (let s = Obs.Metrics.summarize latency_h in
           if s.Obs.Metrics.count = 0 then None else Some s);
        per_shard = [];
        failovers = 0;
        retries = 0;
        recovered = 0;
      }

(* {2 Fleet mode}

   Per shard, [connections] pipelined connections driven exactly like
   single mode; requests route by fingerprint to the first non-down
   shard of their ring preference order. Any request a connection
   fails to deliver or drain is re-driven through the {!Pool} — retry,
   failover, breakers — so transport faults (injected or real) degrade
   to recovered requests, not errors. {!Pool.probe} runs every round,
   which is what brings a restarted shard back into rotation. *)

type slot = {
  sl_shard : Shard.shard;
  mutable sl_client : Client.t option;
  mutable sl_pending : string list;  (* in-flight ids, newest first *)
}

let run_fleet ~on_event ~on_round ring cfg =
  let t0 = Obs.Clock.now () in
  Obs.Metrics.reset ~prefix:"loadgen." ();
  let netfault = cfg.netfault in
  let pool_cfg =
    match cfg.pool with
    | Some p -> p
    | None -> { Pool.default_config with Pool.timeout_s = cfg.timeout_s }
  in
  let pool = Pool.create ?netfault ~config:pool_cfg ring in
  let shards = Shard.shards ring in
  let n_conns = max 1 cfg.connections in
  let slots =
    Array.of_list
      (List.concat_map
         (fun s ->
           List.init n_conns (fun _ ->
               { sl_shard = s; sl_client = None; sl_pending = [] }))
         shards)
  in
  let bases =
    List.mapi (fun i (s : Shard.shard) -> (s.Shard.name, i * n_conns)) shards
  in
  let rr = Hashtbl.create 8 in
  let slot_for (s : Shard.shard) =
    let base = List.assoc s.Shard.name bases in
    let k = Option.value ~default:0 (Hashtbl.find_opt rr s.Shard.name) in
    Hashtbl.replace rr s.Shard.name ((k + 1) mod n_conns);
    slots.(base + k)
  in
  let rng = Numerics.Rng.create cfg.seed in
  let pick_market = market_stream rng cfg in
  let params = { Proto.deadline_s = cfg.deadline_s; max_evals = None } in
  let outstanding = Hashtbl.create (2 * cfg.requests) in
  let counts = fresh_counts () in
  let recovered = ref 0 in
  let retryq = Queue.create () in
  (* Pending ids are strictly per-connection: a replacement connection
     will never deliver responses to frames sent on the one it replaced,
     so dropping a client must immediately re-route whatever it still
     owed through the pool — otherwise the drain waits a full read
     timeout for answers that cannot arrive. *)
  let drop_slot_client slot =
    (match slot.sl_client with Some c -> Client.close c | None -> ());
    slot.sl_client <- None;
    List.iter
      (fun id ->
        match Hashtbl.find_opt outstanding id with
        | Some market -> Queue.add (id, market) retryq
        | None -> ())
      slot.sl_pending;
    slot.sl_pending <- []
  in
  let client_of slot =
    match slot.sl_client with
    | Some c when Client.is_alive c -> Some c
    | Some _ | None ->
      drop_slot_client slot;
      (match Client.connect ?netfault slot.sl_shard.Shard.address with
      | Ok c ->
        slot.sl_client <- Some c;
        Some c
      | Error _ ->
        Shard.mark_failed slot.sl_shard;
        None)
  in
  (* per-shard tallies, keyed by shard name *)
  let tally = Hashtbl.create 8 in
  let bump kind name =
    Hashtbl.replace tally (kind, name)
      (1 + Option.value ~default:0 (Hashtbl.find_opt tally (kind, name)))
  in
  let tally_of kind name =
    Option.value ~default:0 (Hashtbl.find_opt tally (kind, name))
  in
  let send_one id market =
    let prefs = Shard.route ring ~key:(Cache.fingerprint market) in
    let target =
      match
        List.find_opt (fun (s : Shard.shard) -> s.Shard.health <> Shard.Down) prefs
      with
      | Some s -> s
      | None -> List.hd prefs
    in
    let slot = slot_for target in
    match client_of slot with
    | None -> Queue.add (id, market) retryq
    | Some c -> (
      match Client.send c (Proto.Solve { id; market; params }) with
      | Ok () ->
        slot.sl_pending <- id :: slot.sl_pending;
        bump `Sent target.Shard.name
      | Error _ ->
        Shard.mark_failed slot.sl_shard;
        drop_slot_client slot;
        Queue.add (id, market) retryq)
  in
  let drain_slot slot =
    let name = slot.sl_shard.Shard.name in
    let settle id =
      Hashtbl.remove outstanding id;
      slot.sl_pending <- List.filter (fun i -> not (String.equal i id)) slot.sl_pending;
      bump `Answered name
    in
    let expected = List.length slot.sl_pending in
    let rec go remaining =
      if remaining > 0 then
        match slot.sl_client with
        | None -> ()
        | Some c -> (
          match Client.read_response ~timeout_s:cfg.timeout_s c with
          | Error _ ->
            (* whatever this connection still owed goes to the pool *)
            Shard.mark_failed slot.sl_shard;
            drop_slot_client slot
          | Ok response ->
            (match response with
            | Proto.Solved { id; result } ->
              settle id;
              Obs.Metrics.observe latency_h result.Proto.solve_s;
              counts.solved <- counts.solved + 1;
              bump `Solved name
            | Proto.Degraded { id; _ } ->
              settle id;
              counts.degraded <- counts.degraded + 1;
              bump `Degraded name
            | Proto.Shed { id; _ } ->
              settle id;
              counts.shed <- counts.shed + 1;
              bump `Shed name
            | Proto.Rejected { id; _ } ->
              Option.iter settle id;
              counts.rejected <- counts.rejected + 1
            | Proto.Chaos_ack _ ->
              counts.chaos_toggles <- counts.chaos_toggles + 1
            | Proto.Metrics_snapshot _ | Proto.Prom_text _ | Proto.Pong
            | Proto.Bye ->
              counts.other <- counts.other + 1);
            go (remaining - 1))
    in
    go expected;
    (* anything not settled (dead connection, mismatched answer) is
       re-driven through the pool rather than left unanswered *)
    List.iter
      (fun id ->
        match Hashtbl.find_opt outstanding id with
        | Some market -> Queue.add (id, market) retryq
        | None -> ())
      slot.sl_pending;
    slot.sl_pending <- []
  in
  let flush_retries () =
    while not (Queue.is_empty retryq) do
      let id, market = Queue.pop retryq in
      if Hashtbl.mem outstanding id then begin
        match Pool.solve pool ~id ~params market with
        | Ok a ->
          Hashtbl.remove outstanding id;
          incr recovered;
          Obs.Metrics.observe latency_h a.Pool.solved.Proto.solve_s;
          counts.solved <- counts.solved + 1;
          bump `Answered a.Pool.shard;
          bump `Solved a.Pool.shard
        | Error (Pool.Degraded _) ->
          Hashtbl.remove outstanding id;
          incr recovered;
          counts.degraded <- counts.degraded + 1
        | Error (Pool.Shed _) ->
          Hashtbl.remove outstanding id;
          incr recovered;
          counts.shed <- counts.shed + 1
        | Error (Pool.Rejected _) ->
          Hashtbl.remove outstanding id;
          counts.rejected <- counts.rejected + 1
        | Error ((Pool.Transport _ | Pool.No_shard_available) as e) ->
          (* truly unanswerable right now: a hard error, id stays
             outstanding *)
          counts.errors <- Pool.error_to_string e :: counts.errors
      end
    done
  in
  let sent = ref 0 in
  while !sent < cfg.requests do
    let budget = min (cfg.burst * Array.length slots) (cfg.requests - !sent) in
    for _ = 1 to budget do
      let id = Printf.sprintf "r%d" !sent in
      incr sent;
      let market = pick_market () in
      Hashtbl.replace outstanding id market;
      send_one id market
    done;
    Array.iter drain_slot slots;
    flush_retries ();
    (* ping anything suspect/open: the half-open path that brings a
       restarted shard back without waiting for routed traffic *)
    Pool.probe pool;
    on_round ~sent:!sent;
    if !sent mod 500 < budget then begin
      Obs.Log.debug ~m:"loadgen" "fleet progress"
        ~fields:
          [
            ("sent", string_of_int !sent);
            ("of", string_of_int cfg.requests);
            ("solved", string_of_int counts.solved);
            ("recovered", string_of_int !recovered);
          ];
      on_event
        (Printf.sprintf "%d/%d sent (%d solved, %d degraded, %d shed, %d recovered)"
           !sent cfg.requests counts.solved counts.degraded counts.shed !recovered)
    end
  done;
  Array.iter drop_slot_client slots;
  let pstats = Pool.stats pool in
  Pool.close pool;
  let wall_s = Obs.Clock.elapsed ~since:t0 in
  Ok
    {
      sent = !sent;
      solved = counts.solved;
      degraded = counts.degraded;
      shed = counts.shed;
      rejected = counts.rejected;
      other = counts.other;
      chaos_toggles = counts.chaos_toggles;
      chaos_sent = [];
      unanswered = Hashtbl.length outstanding;
      errors = counts.errors;
      wall_s;
      latency =
        (let s = Obs.Metrics.summarize latency_h in
         if s.Obs.Metrics.count = 0 then None else Some s);
      per_shard =
        List.map
          (fun (s : Shard.shard) ->
            let name = s.Shard.name in
            let answered = tally_of `Answered name in
            ( name,
              {
                sent = tally_of `Sent name;
                answered;
                solved = tally_of `Solved name;
                degraded = tally_of `Degraded name;
                shed = tally_of `Shed name;
                req_s =
                  (if wall_s > 0. then float_of_int answered /. wall_s else 0.);
              } ))
          shards;
      failovers = pstats.Pool.failovers;
      retries = pstats.Pool.retries;
      recovered = !recovered;
    }

let run ?(on_event = fun _ -> ()) ?(on_round = fun ~sent:_ -> ()) cfg =
  match cfg.fleet with
  | None -> run_single ~on_event ~on_round cfg
  | Some ring -> run_fleet ~on_event ~on_round ring cfg

let fetch_metrics ?(prefix = "") ?(timeout_s = 30.) address =
  match Client.connect address with
  | Error e -> Error (Client.error_to_string e)
  | Ok client ->
    let result = Client.call ~timeout_s client (Proto.Metrics { prefix }) in
    Client.close client;
    (match result with
    | Ok (Proto.Metrics_snapshot json) -> Ok json
    | Ok _ -> Error "unexpected response to metrics query"
    | Error e -> Error (Client.error_to_string e))

let fetch_prom ?(prefix = "") ?(timeout_s = 30.) address =
  match Client.connect address with
  | Error e -> Error (Client.error_to_string e)
  | Ok client ->
    let result = Client.call ~timeout_s client (Proto.Metrics_prom { prefix }) in
    Client.close client;
    (match result with
    | Ok (Proto.Prom_text text) -> Ok text
    | Ok _ -> Error "unexpected response to metrics_prom query"
    | Error e -> Error (Client.error_to_string e))

(* ------------------------------------------------------------------ *)
(* CSV artifact: the full report — counts, per-mode chaos toggles, the
   latency distribution and (fleet mode) per-shard throughput — as
   metric/value rows an analysis notebook can load without scraping
   the stdout digest. *)

let csv_table r =
  let t = Report.Table.make ~columns:[ "metric"; "value" ] in
  let add name v = Report.Table.add_row t [ name; v ] in
  let addi name v = add name (string_of_int v) in
  let addf name v = add name (Printf.sprintf "%.9g" v) in
  addi "sent" r.sent;
  addi "solved" r.solved;
  addi "degraded" r.degraded;
  addi "shed" r.shed;
  addi "rejected" r.rejected;
  addi "other" r.other;
  addi "chaos_toggles" r.chaos_toggles;
  addi "unanswered" r.unanswered;
  addi "transport_errors" (List.length r.errors);
  addf "wall_s" r.wall_s;
  addf "req_s" (if r.wall_s > 0. then float_of_int r.sent /. r.wall_s else 0.);
  addi "failovers" r.failovers;
  addi "retries" r.retries;
  addi "recovered" r.recovered;
  List.iter (fun (mode, n) -> addi ("chaos." ^ mode) n) r.chaos_sent;
  List.iter
    (fun (name, (s : shard_load)) ->
      let row metric v = addi (Printf.sprintf "shard.%s.%s" name metric) v in
      row "sent" s.sent;
      row "answered" s.answered;
      row "solved" s.solved;
      row "degraded" s.degraded;
      row "shed" s.shed;
      addf (Printf.sprintf "shard.%s.req_s" name) s.req_s)
    r.per_shard;
  (match r.latency with
  | None -> ()
  | Some s ->
    addi "latency.count" s.Obs.Metrics.count;
    addf "latency.sum_s" s.Obs.Metrics.sum;
    addf "latency.min_s" s.Obs.Metrics.min;
    addf "latency.max_s" s.Obs.Metrics.max;
    addf "latency.p50_s" s.Obs.Metrics.p50;
    addf "latency.p90_s" s.Obs.Metrics.p90;
    addf "latency.p99_s" s.Obs.Metrics.p99);
  t

let write_csv ~path r = Report.Csv.write ~path (csv_table r)
