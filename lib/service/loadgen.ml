type config = {
  address : Server.address;
  requests : int;
  connections : int;
  burst : int;
  seed : int64;
  chaos_every : int option;
  reuse_fraction : float;
  neighbour_fraction : float;
  deadline_s : float option;
  timeout_s : float;
}

let default_config ~address ~requests =
  {
    address;
    requests;
    connections = 2;
    burst = 8;
    seed = 42L;
    chaos_every = None;
    reuse_fraction = 0.3;
    neighbour_fraction = 0.3;
    deadline_s = None;
    timeout_s = 60.;
  }

type report = {
  sent : int;
  solved : int;
  degraded : int;
  shed : int;
  rejected : int;
  other : int;
  chaos_toggles : int;
  chaos_sent : (string * int) list;
  unanswered : int;
  errors : string list;
  wall_s : float;
  latency : Obs.Metrics.summary option;
}

let report_ok r =
  r.unanswered = 0 && r.rejected = 0 && r.errors = [] && r.sent > 0
  && r.solved + r.degraded + r.shed = r.sent

let report_to_string r =
  Printf.sprintf
    "sent %d: %d solved, %d degraded, %d shed, %d rejected, %d unanswered; %d \
     chaos toggles, %d transport errors, %.2fs"
    r.sent r.solved r.degraded r.shed r.rejected r.unanswered r.chaos_toggles
    (List.length r.errors) r.wall_s

let random_market rng =
  let n = 1 + Numerics.Rng.int rng 4 in
  let cps =
    Array.init n (fun i ->
        Econ.Cp.exponential
          ~name:(Printf.sprintf "cp%d" i)
          ~alpha:(Numerics.Rng.uniform rng ~lo:0.5 ~hi:3.)
          ~beta:(Numerics.Rng.uniform rng ~lo:0.5 ~hi:3.)
          ~value:(Numerics.Rng.uniform rng ~lo:0.5 ~hi:2.5)
          ())
  in
  {
    Proto.capacity = Numerics.Rng.uniform rng ~lo:0.5 ~hi:5.;
    price = Numerics.Rng.uniform rng ~lo:0.1 ~hi:1.5;
    cap = Numerics.Rng.uniform rng ~lo:0.05 ~hi:1.;
    cps;
  }

(* Same CP population, nearby scalar knobs: the warm-start shape. *)
let neighbour_market rng (m : Proto.market) =
  let nudge x = x *. Numerics.Rng.uniform rng ~lo:0.95 ~hi:1.05 in
  {
    m with
    Proto.price = Float.max 0.01 (nudge m.Proto.price);
    cap = Float.max 0.01 (nudge m.Proto.cap);
    capacity = Float.max 0.1 (nudge m.Proto.capacity);
  }

let chaos_cycle =
  Array.of_list
    (None
    :: List.map
         (fun (s : Runner.Chaos.scenario) -> Some s.Runner.Chaos.mode)
         Runner.Chaos.default_scenarios)

type counts = {
  mutable solved : int;
  mutable degraded : int;
  mutable shed : int;
  mutable rejected : int;
  mutable other : int;
  mutable chaos_toggles : int;
  mutable errors : string list;
}

(* Server-reported solve time of every Solved answer; one histogram per
   process (Metrics handles are find-or-create), reset per run so each
   report summarizes its own run. *)
let latency_h = Obs.Metrics.histogram "loadgen.solve_s"

(* Read [expected] responses off one connection, matching solve answers
   back to their ids. *)
let drain_conn ~timeout_s client outstanding counts expected =
  let settle id =
    if Hashtbl.mem outstanding id then Hashtbl.remove outstanding id
  in
  let rec go remaining =
    if remaining > 0 then
      match Client.read_response ~timeout_s client with
      | Error msg ->
        counts.errors <- msg :: counts.errors
      | Ok response ->
        (match response with
        | Proto.Solved { id; result } ->
          settle id;
          Obs.Metrics.observe latency_h result.Proto.solve_s;
          counts.solved <- counts.solved + 1
        | Proto.Degraded { id; _ } ->
          settle id;
          counts.degraded <- counts.degraded + 1
        | Proto.Shed { id; _ } ->
          settle id;
          counts.shed <- counts.shed + 1
        | Proto.Rejected { id; _ } ->
          Option.iter settle id;
          counts.rejected <- counts.rejected + 1
        | Proto.Chaos_ack _ -> counts.chaos_toggles <- counts.chaos_toggles + 1
        | Proto.Metrics_snapshot _ | Proto.Prom_text _ | Proto.Pong | Proto.Bye ->
          counts.other <- counts.other + 1);
        go (remaining - 1)
  in
  go expected

let run ?(on_event = fun _ -> ()) cfg =
  let t0 = Obs.Clock.now () in
  Obs.Metrics.reset ~prefix:"loadgen." ();
  let n_conns = max 1 cfg.connections in
  let clients =
    List.filter_map
      (fun i ->
        match Client.connect cfg.address with
        | Ok c -> Some c
        | Error msg ->
          Obs.Log.warn ~m:"loadgen" "connection failed"
            ~fields:[ ("conn", string_of_int i); ("error", msg) ];
          on_event (Printf.sprintf "connection %d failed: %s" i msg);
          None)
      (List.init n_conns Fun.id)
  in
  match clients with
  | [] -> Error "loadgen: no connection could be established"
  | clients ->
    let clients = Array.of_list clients in
    let rng = Numerics.Rng.create cfg.seed in
    let recent = ref [] in
    let remember m =
      recent := m :: (if List.length !recent >= 16 then List.filteri (fun i _ -> i < 15) !recent else !recent)
    in
    let pick_market () =
      let u = Numerics.Rng.float rng in
      match !recent with
      | past when past <> [] && u < cfg.reuse_fraction ->
        Numerics.Rng.choice rng (Array.of_list past)
      | past when past <> [] && u < cfg.reuse_fraction +. cfg.neighbour_fraction ->
        let m = neighbour_market rng (Numerics.Rng.choice rng (Array.of_list past)) in
        remember m;
        m
      | _ ->
        let m = random_market rng in
        remember m;
        m
    in
    let params = { Proto.deadline_s = cfg.deadline_s; max_evals = None } in
    let outstanding = Hashtbl.create (2 * cfg.requests) in
    let counts =
      {
        solved = 0;
        degraded = 0;
        shed = 0;
        rejected = 0;
        other = 0;
        chaos_toggles = 0;
        errors = [];
      }
    in
    let sent = ref 0 in
    let chaos_idx = ref 0 in
    let chaos_sent = Hashtbl.create 8 in
    let count_chaos mode =
      let name =
        match mode with None -> "off" | Some m -> Proto.chaos_mode_name m
      in
      Hashtbl.replace chaos_sent name
        (1 + Option.value ~default:0 (Hashtbl.find_opt chaos_sent name));
      Obs.Metrics.incr
        (Obs.Metrics.counter ~labels:[ ("mode", name) ] "loadgen.chaos.toggles")
    in
    let expected = Array.make (Array.length clients) 0 in
    while !sent < cfg.requests && counts.errors = [] do
      (* one round: a burst on every connection, then drain them all *)
      Array.iteri
        (fun ci client ->
          let budget = min cfg.burst (cfg.requests - !sent) in
          for _ = 1 to budget do
            (match cfg.chaos_every with
            | Some every when every > 0 && !sent mod every = 0 ->
              let mode = chaos_cycle.(!chaos_idx mod Array.length chaos_cycle) in
              incr chaos_idx;
              (match Client.send client (Proto.Chaos { mode }) with
              | Ok () ->
                count_chaos mode;
                expected.(ci) <- expected.(ci) + 1
              | Error msg -> counts.errors <- msg :: counts.errors)
            | _ -> ());
            let id = Printf.sprintf "r%d" !sent in
            incr sent;
            let market = pick_market () in
            match Client.send client (Proto.Solve { id; market; params }) with
            | Ok () ->
              Hashtbl.replace outstanding id ();
              expected.(ci) <- expected.(ci) + 1
            | Error msg -> counts.errors <- msg :: counts.errors
          done)
        clients;
      Array.iteri
        (fun ci client ->
          drain_conn ~timeout_s:cfg.timeout_s client outstanding counts
            expected.(ci);
          expected.(ci) <- 0)
        clients;
      if !sent mod 500 < cfg.burst * Array.length clients then begin
        Obs.Log.debug ~m:"loadgen" "progress"
          ~fields:
            [
              ("sent", string_of_int !sent);
              ("of", string_of_int cfg.requests);
              ("solved", string_of_int counts.solved);
              ("degraded", string_of_int counts.degraded);
              ("shed", string_of_int counts.shed);
            ];
        on_event
          (Printf.sprintf "%d/%d sent (%d solved, %d degraded, %d shed)" !sent
             cfg.requests counts.solved counts.degraded counts.shed)
      end
    done;
    Array.iter Client.close clients;
    Ok
      {
        sent = !sent;
        solved = counts.solved;
        degraded = counts.degraded;
        shed = counts.shed;
        rejected = counts.rejected;
        other = counts.other;
        chaos_toggles = counts.chaos_toggles;
        chaos_sent =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) chaos_sent []
          |> List.sort compare;
        unanswered = Hashtbl.length outstanding;
        errors = counts.errors;
        wall_s = Obs.Clock.elapsed ~since:t0;
        latency =
          (let s = Obs.Metrics.summarize latency_h in
           if s.Obs.Metrics.count = 0 then None else Some s);
      }

let fetch_metrics ?(prefix = "") ?(timeout_s = 30.) address =
  match Client.connect address with
  | Error msg -> Error msg
  | Ok client ->
    let result = Client.call ~timeout_s client (Proto.Metrics { prefix }) in
    Client.close client;
    (match result with
    | Ok (Proto.Metrics_snapshot json) -> Ok json
    | Ok _ -> Error "unexpected response to metrics query"
    | Error msg -> Error msg)

let fetch_prom ?(prefix = "") ?(timeout_s = 30.) address =
  match Client.connect address with
  | Error msg -> Error msg
  | Ok client ->
    let result = Client.call ~timeout_s client (Proto.Metrics_prom { prefix }) in
    Client.close client;
    (match result with
    | Ok (Proto.Prom_text text) -> Ok text
    | Ok _ -> Error "unexpected response to metrics_prom query"
    | Error msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* CSV artifact: the full report — counts, per-mode chaos toggles and
   the latency distribution — as metric/value rows an analysis notebook
   can load without scraping the stdout digest. *)

let csv_table r =
  let t = Report.Table.make ~columns:[ "metric"; "value" ] in
  let add name v = Report.Table.add_row t [ name; v ] in
  let addi name v = add name (string_of_int v) in
  let addf name v = add name (Printf.sprintf "%.9g" v) in
  addi "sent" r.sent;
  addi "solved" r.solved;
  addi "degraded" r.degraded;
  addi "shed" r.shed;
  addi "rejected" r.rejected;
  addi "other" r.other;
  addi "chaos_toggles" r.chaos_toggles;
  addi "unanswered" r.unanswered;
  addi "transport_errors" (List.length r.errors);
  addf "wall_s" r.wall_s;
  List.iter (fun (mode, n) -> addi ("chaos." ^ mode) n) r.chaos_sent;
  (match r.latency with
  | None -> ()
  | Some s ->
    addi "latency.count" s.Obs.Metrics.count;
    addf "latency.sum_s" s.Obs.Metrics.sum;
    addf "latency.min_s" s.Obs.Metrics.min;
    addf "latency.max_s" s.Obs.Metrics.max;
    addf "latency.p50_s" s.Obs.Metrics.p50;
    addf "latency.p90_s" s.Obs.Metrics.p90;
    addf "latency.p99_s" s.Obs.Metrics.p99);
  t

let write_csv ~path r = Report.Csv.write ~path (csv_table r)
