(* Content-addressed equilibrium cache. Single-domain by design: the
   server event loop is the only caller; pool workers only ever see
   the warm-start profile by value. *)

type entry = {
  price : float;
  cap : float;
  capacity : float;
  pop_fp : string;
  solved : Proto.solved;
  mutable tick : int;  (* recency stamp; larger = fresher *)
}

type stats = { hits : int; misses : int; warm_seeds : int; evictions : int }

type t = {
  limit : int;
  table : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable warm_seeds : int;
  mutable evictions : int;
  hits_c : Obs.Metrics.counter;
  misses_c : Obs.Metrics.counter;
  warm_c : Obs.Metrics.counter;
  evict_c : Obs.Metrics.counter;
  size_g : Obs.Metrics.gauge;
}

let create ~capacity =
  let limit = max 1 capacity in
  {
    limit;
    table = Hashtbl.create (min 64 (2 * limit));
    clock = 0;
    hits = 0;
    misses = 0;
    warm_seeds = 0;
    evictions = 0;
    hits_c = Obs.Metrics.counter "service.cache.hits";
    misses_c = Obs.Metrics.counter "service.cache.misses";
    warm_c = Obs.Metrics.counter "service.cache.warm_seeds";
    evict_c = Obs.Metrics.counter "service.cache.evictions";
    size_g = Obs.Metrics.gauge "service.cache.size";
  }

(* Canonical rendering: every float at full [%.17g] precision so two
   markets share a fingerprint iff they are bit-identical in every
   parameter. The CP population reuses the Market_io wire form, which
   is already the canonical column set. *)
let population_fingerprint (m : Proto.market) =
  Digest.to_hex
    (Digest.string (Obs.Json.to_string (Experiments.Market_io.json_of_cps m.cps)))

let fingerprint (m : Proto.market) =
  let pop = Obs.Json.to_string (Experiments.Market_io.json_of_cps m.cps) in
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%.17g|%.17g|%.17g|%s" m.capacity m.price m.cap pop))

let touch t entry =
  t.clock <- t.clock + 1;
  entry.tick <- t.clock

let find t ~fingerprint =
  match Hashtbl.find_opt t.table fingerprint with
  | Some entry ->
    touch t entry;
    t.hits <- t.hits + 1;
    Obs.Metrics.incr t.hits_c;
    Some { entry.solved with Proto.cache = Proto.Hit }
  | None ->
    t.misses <- t.misses + 1;
    Obs.Metrics.incr t.misses_c;
    None

(* Nearest same-population entry under a normalized L2 distance over
   the three scalar knobs; relative normalization keeps a price sweep
   and a capacity sweep comparable. *)
let distance entry (m : Proto.market) =
  let d a b = (a -. b) /. Float.max 1. (Float.abs a +. Float.abs b) in
  let dp = d entry.price m.price
  and dq = d entry.cap m.cap
  and dc = d entry.capacity m.capacity in
  (dp *. dp) +. (dq *. dq) +. (dc *. dc)

let warm_start t (m : Proto.market) =
  let pop = population_fingerprint m in
  let best =
    Hashtbl.fold
      (fun _ entry acc ->
        if String.equal entry.pop_fp pop then
          let dist = distance entry m in
          match acc with
          | Some (_, best_dist) when best_dist <= dist -> acc
          | _ -> Some (entry, dist)
        else acc)
      t.table None
  in
  match best with
  | None -> None
  | Some (entry, _) ->
    t.warm_seeds <- t.warm_seeds + 1;
    Obs.Metrics.incr t.warm_c;
    Some (Array.copy entry.solved.Proto.subsidies)

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun fp entry acc ->
        match acc with
        | Some (_, tick) when tick <= entry.tick -> acc
        | _ -> Some (fp, entry.tick))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (fp, _) ->
    Hashtbl.remove t.table fp;
    t.evictions <- t.evictions + 1;
    Obs.Metrics.incr t.evict_c

let store t ~market ~fingerprint solved =
  let entry =
    {
      price = market.Proto.price;
      cap = market.Proto.cap;
      capacity = market.Proto.capacity;
      pop_fp = population_fingerprint market;
      solved = { solved with Proto.cache = Proto.Hit };
      tick = 0;
    }
  in
  touch t entry;
  if not (Hashtbl.mem t.table fingerprint) && Hashtbl.length t.table >= t.limit
  then evict_lru t;
  Hashtbl.replace t.table fingerprint entry;
  Obs.Metrics.set t.size_g (float_of_int (Hashtbl.length t.table))

let size t = Hashtbl.length t.table

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    warm_seeds = t.warm_seeds;
    evictions = t.evictions;
  }
