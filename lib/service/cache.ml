(* Content-addressed equilibrium cache. Single-domain by design: the
   server event loop is the only caller; pool workers only ever see
   the warm-start profile by value. *)

type entry = {
  price : float;
  cap : float;
  capacity : float;
  pop_fp : string;
  solved : Proto.solved;
  mutable tick : int;  (* recency stamp; larger = fresher *)
}

type stats = { hits : int; misses : int; warm_seeds : int; evictions : int }

type t = {
  limit : int;
  table : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable warm_seeds : int;
  mutable evictions : int;
  hits_c : Obs.Metrics.counter;
  misses_c : Obs.Metrics.counter;
  warm_c : Obs.Metrics.counter;
  evict_c : Obs.Metrics.counter;
  size_g : Obs.Metrics.gauge;
  snapshot_age_g : Obs.Metrics.gauge;
}

let create ~capacity =
  let limit = max 1 capacity in
  {
    limit;
    table = Hashtbl.create (min 64 (2 * limit));
    clock = 0;
    hits = 0;
    misses = 0;
    warm_seeds = 0;
    evictions = 0;
    hits_c = Obs.Metrics.counter "service.cache.hits";
    misses_c = Obs.Metrics.counter "service.cache.misses";
    warm_c = Obs.Metrics.counter "service.cache.warm_seeds";
    evict_c = Obs.Metrics.counter "service.cache.evictions";
    size_g = Obs.Metrics.gauge "service.cache.size";
    snapshot_age_g = Obs.Metrics.gauge "service.cache.snapshot_age_s";
  }

(* Canonical rendering: every float at full [%.17g] precision so two
   markets share a fingerprint iff they are bit-identical in every
   parameter. The CP population reuses the Market_io wire form, which
   is already the canonical column set. *)
let population_fingerprint (m : Proto.market) =
  Digest.to_hex
    (Digest.string (Obs.Json.to_string (Experiments.Market_io.json_of_cps m.cps)))

let fingerprint (m : Proto.market) =
  let pop = Obs.Json.to_string (Experiments.Market_io.json_of_cps m.cps) in
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%.17g|%.17g|%.17g|%s" m.capacity m.price m.cap pop))

let touch t entry =
  t.clock <- t.clock + 1;
  entry.tick <- t.clock

let find t ~fingerprint =
  match Hashtbl.find_opt t.table fingerprint with
  | Some entry ->
    touch t entry;
    t.hits <- t.hits + 1;
    Obs.Metrics.incr t.hits_c;
    Some { entry.solved with Proto.cache = Proto.Hit }
  | None ->
    t.misses <- t.misses + 1;
    Obs.Metrics.incr t.misses_c;
    None

(* Nearest same-population entry under a normalized L2 distance over
   the three scalar knobs; relative normalization keeps a price sweep
   and a capacity sweep comparable. *)
let distance entry (m : Proto.market) =
  let d a b = (a -. b) /. Float.max 1. (Float.abs a +. Float.abs b) in
  let dp = d entry.price m.price
  and dq = d entry.cap m.cap
  and dc = d entry.capacity m.capacity in
  (dp *. dp) +. (dq *. dq) +. (dc *. dc)

let warm_start t (m : Proto.market) =
  let pop = population_fingerprint m in
  let best =
    Hashtbl.fold
      (fun _ entry acc ->
        if String.equal entry.pop_fp pop then
          let dist = distance entry m in
          match acc with
          | Some (_, best_dist) when best_dist <= dist -> acc
          | _ -> Some (entry, dist)
        else acc)
      t.table None
  in
  match best with
  | None -> None
  | Some (entry, _) ->
    t.warm_seeds <- t.warm_seeds + 1;
    Obs.Metrics.incr t.warm_c;
    Some (Array.copy entry.solved.Proto.subsidies)

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun fp entry acc ->
        match acc with
        | Some (_, tick) when tick <= entry.tick -> acc
        | _ -> Some (fp, entry.tick))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (fp, _) ->
    Hashtbl.remove t.table fp;
    t.evictions <- t.evictions + 1;
    Obs.Metrics.incr t.evict_c

let store t ~market ~fingerprint solved =
  let entry =
    {
      price = market.Proto.price;
      cap = market.Proto.cap;
      capacity = market.Proto.capacity;
      pop_fp = population_fingerprint market;
      solved = { solved with Proto.cache = Proto.Hit };
      tick = 0;
    }
  in
  touch t entry;
  if not (Hashtbl.mem t.table fingerprint) && Hashtbl.length t.table >= t.limit
  then evict_lru t;
  Hashtbl.replace t.table fingerprint entry;
  Obs.Metrics.set t.size_g (float_of_int (Hashtbl.length t.table))

let size t = Hashtbl.length t.table

(* {2 Snapshot persistence}

   One cache.v1 JSON document: every entry in recency order (oldest
   first), the solved payload in the exact wire shape. Written
   atomically and durably — a torn snapshot after a crash would turn
   the warm start into a cold one, which is exactly the failure the
   snapshot exists to avoid. *)

let entry_json fp (e : entry) =
  Obs.Json.Obj
    [
      ("fp", Obs.Json.Str fp);
      ("price", Obs.Json.Num e.price);
      ("cap", Obs.Json.Num e.cap);
      ("capacity", Obs.Json.Num e.capacity);
      ("pop_fp", Obs.Json.Str e.pop_fp);
      ("tick", Obs.Json.Num (float_of_int e.tick));
      ("solved", Proto.solved_to_json e.solved);
    ]

let save t ~path =
  let entries =
    Hashtbl.fold (fun fp e acc -> (fp, e) :: acc) t.table []
    |> List.sort (fun (_, a) (_, b) -> compare a.tick b.tick)
  in
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "cache.v1");
        ("saved_unix", Obs.Json.Num (Obs.Clock.now ()));
        ("entries", Obs.Json.Arr (List.map (fun (fp, e) -> entry_json fp e) entries));
      ]
  in
  match
    Report.Fsio.write_atomic ~durable:true ~path (fun oc ->
        output_string oc (Obs.Json.to_string doc);
        output_char oc '\n')
  with
  | Error _ as e -> e
  | Ok () ->
    Obs.Metrics.set t.snapshot_age_g 0.;
    Ok (List.length entries)

let str_member name json =
  match Obs.Json.member name json with
  | Some (Obs.Json.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "cache snapshot: missing string %S" name)

let num_member name json =
  match Obs.Json.member name json with
  | Some (Obs.Json.Num x) -> Ok x
  | _ -> Error (Printf.sprintf "cache snapshot: missing number %S" name)

let entry_of_json json =
  let ( let* ) = Result.bind in
  let* fp = str_member "fp" json in
  let* price = num_member "price" json in
  let* cap = num_member "cap" json in
  let* capacity = num_member "capacity" json in
  let* pop_fp = str_member "pop_fp" json in
  let* tick = num_member "tick" json in
  let* solved =
    match Obs.Json.member "solved" json with
    | Some s -> Proto.solved_of_json s
    | None -> Error "cache snapshot: entry without solved payload"
  in
  Ok
    ( fp,
      {
        price;
        cap;
        capacity;
        pop_fp;
        solved = { solved with Proto.cache = Proto.Hit };
        tick = int_of_float tick;
      } )

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in_noerr ic;
  s

type loaded = { entries : int; age_s : float }

let load_into t ~path =
  if not (Sys.file_exists path) then Ok { entries = 0; age_s = 0. }
  else
    match read_file path with
    | exception Sys_error msg -> Error ("cache snapshot: " ^ msg)
    | content -> (
      match Obs.Json.of_string content with
      | exception Obs.Json.Parse_error msg ->
        Error ("cache snapshot: unparsable: " ^ msg)
      | json -> (
        match (str_member "schema" json, Obs.Json.member "entries" json) with
        | Ok "cache.v1", Some (Obs.Json.Arr items) -> (
          let rec parse acc = function
            | [] -> Ok (List.rev acc)
            | item :: rest -> (
              match entry_of_json item with
              | Ok e -> parse (e :: acc) rest
              | Error _ as err -> err)
          in
          match parse [] items with
          | Error _ as e -> e
          | Ok entries ->
            (* oldest snapshot tick first: re-touching in that order
               reproduces the relative LRU order under the live clock *)
            let entries =
              List.sort (fun (_, a) (_, b) -> compare a.tick b.tick) entries
            in
            List.iter
              (fun (fp, e) ->
                touch t e;
                if
                  (not (Hashtbl.mem t.table fp))
                  && Hashtbl.length t.table >= t.limit
                then evict_lru t;
                Hashtbl.replace t.table fp e)
              entries;
            Obs.Metrics.set t.size_g (float_of_int (Hashtbl.length t.table));
            let age_s =
              match num_member "saved_unix" json with
              | Ok saved -> Float.max 0. (Obs.Clock.now () -. saved)
              | Error _ -> 0.
            in
            Obs.Metrics.set t.snapshot_age_g age_s;
            Ok { entries = List.length entries; age_s })
        | Ok "cache.v1", _ -> Error "cache snapshot: missing entries array"
        | Ok other, _ -> Error ("cache snapshot: unknown schema " ^ other)
        | Error msg, _ -> Error msg))

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    warm_seeds = t.warm_seeds;
    evictions = t.evictions;
  }
