type kind = Solved | Degraded | Shed

let kind_name = function Solved -> "solved" | Degraded -> "degraded" | Shed -> "shed"

let kind_of_name = function
  | "solved" -> Some Solved
  | "degraded" -> Some Degraded
  | "shed" -> Some Shed
  | _ -> None

type t = {
  mutable oc : out_channel;
  durable : bool;
  path : string;
  mutable bytes : int;  (* file size; mirrored in the size gauge *)
  size_g : Obs.Metrics.gauge;
}

(* Journal lines embed the raw request frame as a JSON string; frames
   are themselves single-line compact JSON, so Obs.Json's escaping
   keeps one event = one line. *)
let received_line ~seq ~id ~fingerprint ~request_line =
  Obs.Json.to_string
    (Obs.Json.Obj
       [
         ("ev", Obs.Json.Str "received");
         ("seq", Obs.Json.Num (float_of_int seq));
         ("id", Obs.Json.Str id);
         ("fp", Obs.Json.Str fingerprint);
         ("unix", Obs.Json.Num (Obs.Clock.now ()));
         ("request", Obs.Json.Str request_line);
       ])

let acked_line ~seq ~id ~kind =
  Obs.Json.to_string
    (Obs.Json.Obj
       [
         ("ev", Obs.Json.Str "acked");
         ("seq", Obs.Json.Num (float_of_int seq));
         ("id", Obs.Json.Str id);
         ("kind", Obs.Json.Str (kind_name kind));
         ("unix", Obs.Json.Num (Obs.Clock.now ()));
       ])

let file_size path =
  match Unix.stat path with
  | st -> st.Unix.st_size
  | exception Unix.Unix_error (_, _, _) -> 0

let open_ ?(durable = false) ~path () =
  let dir = Filename.dirname path in
  match Report.Fsio.mkdir_p dir with
  | Error _ as e -> e
  | Ok () -> (
    match open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path with
    | exception Sys_error msg -> Error ("journal open: " ^ msg)
    | oc ->
      let make () =
        let size_g = Obs.Metrics.gauge "service.journal.size_bytes" in
        let bytes = file_size path in
        Obs.Metrics.set size_g (float_of_int bytes);
        { oc; durable; path; bytes; size_g }
      in
      if durable then (
        (* make the directory entry durable too: an empty journal that
           vanishes with the dentry on power loss defeats recovery *)
        match Report.Fsio.fsync_dir dir with
        | Ok () -> Ok (make ())
        | Error _ as e ->
          close_out_noerr oc;
          e)
      else Ok (make ()))

let size_bytes t = t.bytes

let append t line =
  match
    output_string t.oc line;
    output_char t.oc '\n';
    if t.durable then Report.Fsio.fsync_channel t.oc
    else begin
      flush t.oc;
      Ok ()
    end
  with
  | result ->
    if Result.is_ok result then begin
      t.bytes <- t.bytes + String.length line + 1;
      Obs.Metrics.set t.size_g (float_of_int t.bytes)
    end;
    result
  | exception Sys_error msg -> Error ("journal append: " ^ msg)

let record_received t ~seq ~id ~fingerprint ~request_line =
  append t (received_line ~seq ~id ~fingerprint ~request_line)

let record_acked t ~seq ~id ~kind = append t (acked_line ~seq ~id ~kind)

let close t = close_out_noerr t.oc

type pending = { seq : int; id : string; request_line : string }

type recovered = {
  pending : pending list;
  acked : (int * string * kind) list;
  next_seq : int;
  torn_lines : int;
}

type event =
  | Ev_received of pending
  | Ev_acked of int * string * kind
  | Ev_compacted of int  (** seq floor: [next_seq] at compaction time *)

let field name json = Obs.Json.member name json

let str_field name json =
  match field name json with Some (Obs.Json.Str s) -> Some s | _ -> None

let int_field name json =
  match field name json with
  | Some (Obs.Json.Num x) when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

(* Written as the first line of a compacted journal: preserves the seq
   floor so sequence numbers are never reused after acked entries (and
   their seqs) are rewritten away — reuse would risk a double ack. *)
let compacted_line ~next_seq =
  Obs.Json.to_string
    (Obs.Json.Obj
       [
         ("ev", Obs.Json.Str "compacted");
         ("next_seq", Obs.Json.Num (float_of_int next_seq));
         ("unix", Obs.Json.Num (Obs.Clock.now ()));
       ])

let event_of_line line =
  match Obs.Json.of_string line with
  | exception Obs.Json.Parse_error msg -> Error ("unparsable line: " ^ msg)
  | json -> (
    match (str_field "ev" json, int_field "seq" json, str_field "id" json) with
    | Some "compacted", _, _ -> (
      match int_field "next_seq" json with
      | Some n -> Ok (Ev_compacted n)
      | None -> Error "compacted event without next_seq")
    | Some "received", Some seq, Some id -> (
      match str_field "request" json with
      | Some request_line -> Ok (Ev_received { seq; id; request_line })
      | None -> Error "received event without request")
    | Some "acked", Some seq, Some id -> (
      match Option.bind (str_field "kind" json) kind_of_name with
      | Some kind -> Ok (Ev_acked (seq, id, kind))
      | None -> Error "acked event with unknown kind")
    | Some ev, _, _ -> Error ("unknown event " ^ ev)
    | None, _, _ -> Error "event without ev tag")

let read_lines path =
  let ic = open_in_bin path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in_noerr ic;
      List.rev acc
  in
  go []

(* The default warning channel is the structured log (constant message,
   detail in a field, so rate limiting can coalesce a long torn tail);
   the server overrides it to also surface a [Warning] event. *)
let recover
    ?(on_warning =
      fun msg ->
        Obs.Log.warn ~m:"journal" "journal line skipped during recovery"
          ~fields:[ ("detail", msg) ]) ~path () =
  if not (Sys.file_exists path) then
    Ok { pending = []; acked = []; next_seq = 0; torn_lines = 0 }
  else
    match read_lines path with
    | exception Sys_error msg -> Error ("journal recover: " ^ msg)
    | lines ->
      let torn = ref 0 in
      let received = Hashtbl.create 64 in
      let acked = ref [] in
      let max_seq = ref (-1) in
      List.iteri
        (fun i line ->
          if String.trim line <> "" then
            match event_of_line line with
            | Ok (Ev_received p) ->
              Hashtbl.replace received p.seq p;
              if p.seq > !max_seq then max_seq := p.seq
            | Ok (Ev_acked (seq, id, kind)) ->
              Hashtbl.remove received seq;
              acked := (seq, id, kind) :: !acked;
              if seq > !max_seq then max_seq := seq
            | Ok (Ev_compacted next_seq) ->
              if next_seq - 1 > !max_seq then max_seq := next_seq - 1
            | Error msg ->
              incr torn;
              on_warning
                (Printf.sprintf "%s: line %d skipped (%s)" path (i + 1) msg))
        lines;
      let pending =
        Hashtbl.fold (fun _ p acc -> p :: acc) received []
        |> List.sort (fun a b -> compare a.seq b.seq)
      in
      let acked = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !acked in
      Ok { pending; acked; next_seq = !max_seq + 1; torn_lines = !torn }

(* {2 Compaction}

   Rewrite the file as one seq-floor marker plus the still-pending
   received lines {e verbatim} (fingerprint and all); acked pairs and
   torn lines vanish. The rewrite goes through [write_atomic] — a
   crash mid-compaction leaves the old journal intact — and the append
   channel is reopened on the new inode afterwards. *)

type compaction = {
  kept : int;
  dropped : int;
  bytes_before : int;
  bytes_after : int;
}

let compact t =
  match flush t.oc with
  | exception Sys_error msg -> Error ("journal compact: " ^ msg)
  | () -> (
    match read_lines t.path with
    | exception Sys_error msg -> Error ("journal compact: " ^ msg)
    | lines ->
      let received = Hashtbl.create 64 in
      let acked = Hashtbl.create 64 in
      let max_seq = ref (-1) in
      let total = ref 0 in
      List.iter
        (fun line ->
          if String.trim line <> "" then begin
            incr total;
            match event_of_line line with
            | Ok (Ev_received p) ->
              Hashtbl.replace received p.seq line;
              if p.seq > !max_seq then max_seq := p.seq
            | Ok (Ev_acked (seq, _, _)) ->
              Hashtbl.replace acked seq ();
              if seq > !max_seq then max_seq := seq
            | Ok (Ev_compacted next_seq) ->
              if next_seq - 1 > !max_seq then max_seq := next_seq - 1
            | Error _ -> ()  (* torn line: compaction drops it *)
          end)
        lines;
      let keep =
        Hashtbl.fold
          (fun seq line acc ->
            if Hashtbl.mem acked seq then acc else (seq, line) :: acc)
          received []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let bytes_before = t.bytes in
      close_out_noerr t.oc;
      let result =
        Report.Fsio.write_atomic ~durable:t.durable ~path:t.path (fun oc ->
            output_string oc (compacted_line ~next_seq:(!max_seq + 1));
            output_char oc '\n';
            List.iter
              (fun (_, line) ->
                output_string oc line;
                output_char oc '\n')
              keep)
      in
      (* reopen the append channel whether or not the rewrite landed:
         a journal that can no longer record is worse than a big one *)
      match open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 t.path with
      | exception Sys_error msg -> Error ("journal compact reopen: " ^ msg)
      | oc -> (
        t.oc <- oc;
        t.bytes <- file_size t.path;
        Obs.Metrics.set t.size_g (float_of_int t.bytes);
        match result with
        | Error msg -> Error ("journal compact: " ^ msg)
        | Ok () ->
          Ok
            {
              kept = List.length keep;
              dropped = !total - List.length keep;
              bytes_before;
              bytes_after = t.bytes;
            }))
