(** The solve daemon: equilibrium-as-a-service.

    One single-threaded [select] event loop owns every socket, the
    admission queue, the equilibrium cache and the request journal;
    solver work is the only thing that leaves the loop, batched onto
    the shared {!Parallel.Runtime} pool. That split keeps all mutable
    daemon state domain-local (no locks beyond the ones
    {!Obs.Metrics} already takes) while solves still use every domain
    the pool has.

    Request lifecycle: read frame -> decode ({!Proto}) -> journal
    [received] -> admission ({!Queue_guard}, refusal = typed [Shed])
    -> batch solve (cache hit / warm-started / cold, each under the
    per-request {!Runner.Watchdog} limits with supervised retries) ->
    journal [acked] -> write response. The ack is journaled {e before}
    the response frame is written, so a crash between the two replays
    as at-most-once: restart recovery re-solves journal entries with
    no ack and never re-answers acked ones.

    Shutdown: SIGTERM/SIGINT (or a [Shutdown] frame, or the [stop]
    callback) puts the loop in drain mode — the listener closes,
    queued requests are solved and acknowledged, connections flush,
    and [run] returns. *)

type address = Unix_path of string | Tcp of { host : string; port : int }

val address_to_string : address -> string

type config = {
  address : address;
  queue_capacity : int;  (** admission bound; beyond it requests shed *)
  cache_capacity : int;  (** equilibrium cache entries (LRU) *)
  max_frame_bytes : int;
  journal_path : string option;  (** [None]: no crash recovery *)
  durable : bool;  (** fsync journal appends (see {!Journal}) *)
  allow_chaos : bool;  (** accept {!Proto.request.Chaos} frames *)
  limits : Runner.Watchdog.limits;  (** default per-request limits *)
  retry : Runner.Supervisor.retry;  (** supervised-solve retry policy *)
  seed : int64;  (** root of the per-request jitter Rng streams *)
  batch : int option;  (** max solves per pool batch (default 2x pool) *)
  snapshot_path : string option;
      (** cache snapshot file: loaded before journal replay at startup
          (snapshot-then-replay), saved periodically and on drain *)
  snapshot_every_s : float option;  (** periodic save interval *)
  journal_compact_bytes : int option;
      (** journal size that triggers {!Journal.compact}; [None] never *)
}

val default_config : address:address -> config
(** Queue 64, cache 256, 1 MiB frames, no journal, chaos off, 30s/2M-eval
    limits, 2 attempts with jittered 50ms backoff, seed 7; no cache
    snapshot (30s interval once a path is set), journal compaction at
    1 MiB. *)

type event =
  | Listening of { address : string }
  | Recovered of { replayed : int; already_acked : int; torn_lines : int }
      (** journal replay at startup: [replayed] un-acked requests were
          re-solved and re-acknowledged *)
  | Connected of { conn : int }  (** serial connection number *)
  | Disconnected of { conn : int }
  | Batch_solved of { n : int; wall_s : float }
  | Snapshot_loaded of { entries : int; age_s : float }
      (** cache snapshot reloaded at startup, before journal replay *)
  | Snapshot_saved of { entries : int }
  | Compacted of { kept : int; dropped : int; bytes_before : int; bytes_after : int }
      (** journal rewrite: pending kept, acked/torn dropped *)
  | Draining of { reason : string }
  | Warning of string

val solve_one :
  ?cache:Cache.t ->
  ?limits:Runner.Watchdog.limits ->
  ?retry:Runner.Supervisor.retry ->
  ?rng:Numerics.Rng.t ->
  params:Proto.solve_params ->
  Proto.market ->
  (Proto.solved, string) result
(** The daemon's solve path on the calling domain: exact-fingerprint
    cache lookup, warm-start seeding from a same-population neighbour,
    watchdog-guarded supervised solve, cache store. Exposed so
    benchmarks and tests exercise exactly the served code path; [Error]
    is the degraded-response reason. *)

val run : ?on_event:(event -> unit) -> ?stop:(unit -> bool) -> config -> (unit, string) result
(** Serve until drained. [stop] is polled once per loop iteration (for
    in-process tests); SIGTERM/SIGINT handlers are installed for the
    duration of the call and restored on exit. [Error] only for
    startup failures (bind, journal open, unrecoverable journal);
    per-request trouble is answered in-band, and recovery warnings
    flow through [on_event]. *)
