type health = Up | Suspect | Down

let health_name = function Up -> "up" | Suspect -> "suspect" | Down -> "down"

(* 0 = up, 1 = suspect, 2 = down: a gauge the Prometheus path can alert
   on without string parsing. *)
let health_rank = function Up -> 0. | Suspect -> 1. | Down -> 2.

type shard = {
  name : string;
  address : Server.address;
  mutable health : health;
  mutable failures : int;
}

type t = {
  members : shard array;  (* manifest order *)
  ring : (int64 * int) array;  (* (point, member index), sorted unsigned *)
}

(* First 8 bytes of the MD5 digest as an unsigned ring point: cheap,
   stable across processes, and plenty uniform for vnode placement. *)
let ring_point s =
  let d = Digest.string s in
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code d.[i]))
  done;
  !v

let make ?(vnodes = 64) members =
  let vnodes = max 1 vnodes in
  match members with
  | [] -> Error "fleet: no shards"
  | members ->
    let names = Hashtbl.create 8 in
    let dup =
      List.find_opt
        (fun s ->
          if Hashtbl.mem names s.name then true
          else begin
            Hashtbl.add names s.name ();
            false
          end)
        members
    in
    (match dup with
    | Some s -> Error ("fleet: duplicate shard name " ^ s.name)
    | None ->
      let members = Array.of_list members in
      let ring =
        Array.init
          (Array.length members * vnodes)
          (fun k ->
            let m = k / vnodes and v = k mod vnodes in
            (ring_point (Printf.sprintf "%s#%d" members.(m).name v), m))
      in
      Array.sort
        (fun (a, _) (b, _) -> Int64.unsigned_compare a b)
        ring;
      Ok { members; ring })

let shards t = Array.to_list t.members

let find t name =
  Array.find_opt (fun s -> String.equal s.name name) t.members

(* Index of the first ring point at or clockwise after [point]. *)
let ring_successor t point =
  let n = Array.length t.ring in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (fst t.ring.(mid)) point < 0 then lo := mid + 1
    else hi := mid
  done;
  if !lo >= n then 0 else !lo

let route t ~key =
  let n = Array.length t.ring in
  let total = Array.length t.members in
  let seen = Array.make total false in
  let start = ring_successor t (ring_point key) in
  let order = ref [] in
  let found = ref 0 in
  let i = ref 0 in
  while !found < total && !i < n do
    let _, m = t.ring.((start + !i) mod n) in
    if not seen.(m) then begin
      seen.(m) <- true;
      order := t.members.(m) :: !order;
      incr found
    end;
    incr i
  done;
  List.rev !order

let health_gauge s =
  Obs.Metrics.gauge ~labels:[ ("shard", s.name) ] "service.shard.health"

let set_health s h =
  s.health <- h;
  Obs.Metrics.set (health_gauge s) (health_rank h)

let mark_ok s =
  s.failures <- 0;
  set_health s Up

let mark_failed ?(down_after = 2) s =
  s.failures <- s.failures + 1;
  set_health s (if s.failures >= max 1 down_after then Down else Suspect)

(* {2 Manifest} *)

let address_of_string str =
  let prefix p =
    String.length str > String.length p
    && String.equal (String.sub str 0 (String.length p)) p
  in
  let rest p = String.sub str (String.length p) (String.length str - String.length p) in
  if prefix "unix:" then Ok (Server.Unix_path (rest "unix:"))
  else if prefix "tcp:" then begin
    let hp = rest "tcp:" in
    match String.rindex_opt hp ':' with
    | None -> Error ("fleet: tcp address without port: " ^ str)
    | Some i -> (
      let host = String.sub hp 0 i in
      let port = String.sub hp (i + 1) (String.length hp - i - 1) in
      match int_of_string_opt port with
      | Some port when port > 0 && port < 65536 ->
        Ok (Server.Tcp { host; port })
      | Some _ | None -> Error ("fleet: bad tcp port in " ^ str))
  end
  else Error ("fleet: address must be unix:PATH or tcp:HOST:PORT: " ^ str)

let manifest_json t =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "fleet.v1");
      ( "shards",
        Obs.Json.Arr
          (Array.to_list t.members
          |> List.map (fun s ->
                 Obs.Json.Obj
                   [
                     ("name", Obs.Json.Str s.name);
                     ("address", Obs.Json.Str (Server.address_to_string s.address));
                   ])) );
    ]

let save_manifest ~path t =
  Report.Fsio.write_atomic ~path (fun oc ->
      output_string oc (Obs.Json.to_string (manifest_json t));
      output_char oc '\n')

let str_member name json =
  match Obs.Json.member name json with
  | Some (Obs.Json.Str s) -> Some s
  | _ -> None

let shard_of_json json =
  match (str_member "name" json, str_member "address" json) with
  | Some name, Some addr -> (
    match address_of_string addr with
    | Ok address -> Ok { name; address; health = Up; failures = 0 }
    | Error _ as e -> e)
  | _ -> Error "fleet: shard entry needs string name and address"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in_noerr ic;
  s

let load_manifest ?vnodes ~path () =
  match read_file path with
  | exception Sys_error msg -> Error ("fleet manifest: " ^ msg)
  | content -> (
    match Obs.Json.of_string content with
    | exception Obs.Json.Parse_error msg ->
      Error ("fleet manifest: unparsable: " ^ msg)
    | json -> (
      match (str_member "schema" json, Obs.Json.member "shards" json) with
      | Some "fleet.v1", Some (Obs.Json.Arr entries) -> (
        let rec build acc = function
          | [] -> make ?vnodes (List.rev acc)
          | e :: rest -> (
            match shard_of_json e with
            | Ok s -> build (s :: acc) rest
            | Error _ as err -> err)
        in
        build [] entries)
      | Some "fleet.v1", _ -> Error "fleet manifest: missing shards array"
      | Some other, _ -> Error ("fleet manifest: unknown schema " ^ other)
      | None, _ -> Error "fleet manifest: missing schema tag"))
