(** Crash-safe request journal (JSONL, run.v1 style).

    The daemon appends one [received] event when a solve request is
    admitted and one [acked] event {e before} the response frame is
    written to the socket. On restart, {!recover} replays the file:
    requests with a [received] but no [acked] are re-solved and
    re-answered; requests already acked are never answered twice —
    ack-before-send makes recovery at-most-once per request even
    across a SIGKILL between the journal write and the socket write.

    The file is append-only newline-delimited JSON. A crash can tear
    the final line; {!recover} skips unparsable lines with a warning
    instead of failing the restart (the torn event is at worst one
    un-acked request, which replay solves again). [?durable] appends
    fsync after every event — the crash-safety contract for real
    deployments; tests leave it off for speed. *)

type t

type kind = Solved | Degraded | Shed

val kind_name : kind -> string
val kind_of_name : string -> kind option

val open_ : ?durable:bool -> path:string -> unit -> (t, string) result
(** Open for appending, creating the file (and syncing its directory
    entry when [durable]) if needed. *)

val record_received :
  t -> seq:int -> id:string -> fingerprint:string -> request_line:string ->
  (unit, string) result
(** [request_line] is the raw wire frame, journaled verbatim so replay
    re-decodes with the same {!Proto} code path. *)

val record_acked : t -> seq:int -> id:string -> kind:kind -> (unit, string) result

val size_bytes : t -> int
(** Current file size (tracked across appends and compactions; also
    the [service.journal.size_bytes] gauge). *)

type compaction = {
  kept : int;  (** pending received lines carried over *)
  dropped : int;  (** acked, superseded and torn lines removed *)
  bytes_before : int;
  bytes_after : int;
}

val compact : t -> (compaction, string) result
(** Rewrite the journal as a seq-floor marker plus the still-pending
    received lines, atomically ({!Report.Fsio.write_atomic}, durable
    when the journal is). Acked entries vanish but their sequence
    numbers are never reused — the marker keeps [next_seq] monotone,
    which is what preserves at-most-once acks across compaction plus
    crash. The append channel is reopened on the new file. *)

val close : t -> unit

type pending = { seq : int; id : string; request_line : string }

type recovered = {
  pending : pending list;  (** received, never acked — in seq order *)
  acked : (int * string * kind) list;  (** (seq, id, kind), in seq order *)
  next_seq : int;  (** one past the largest seq seen *)
  torn_lines : int;  (** lines skipped as unparsable *)
}

val recover :
  ?on_warning:(string -> unit) -> path:string -> unit -> (recovered, string) result
(** A missing file recovers to the empty state. Each torn or
    unparsable line is reported through [on_warning]; the default
    routes to {!Obs.Log.warn} (module ["journal"], the line detail in
    a field). *)
