(** Blocking client for the solve daemon's wire protocol.

    One connection, one {!Proto} frame per line, reads driven by a
    [select] timeout so a wedged (or killed) daemon surfaces as a typed
    [Error "timeout ..."] instead of a hang. Used by the [loadgen] CLI,
    the service tests and the soak harness. *)

type t

val connect : Server.address -> (t, string) result

val close : t -> unit

val send : t -> Proto.request -> (unit, string) result

val read_response : ?timeout_s:float -> t -> (Proto.response, string) result
(** Next response frame (default timeout 30s). *)

val call : ?timeout_s:float -> t -> Proto.request -> (Proto.response, string) result
(** [send] then [read_response] — the one-outstanding-request idiom.
    Pipelined callers use [send]/[read_response] directly. *)
