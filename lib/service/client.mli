(** Blocking client for the solve daemon's wire protocol.

    One connection, one {!Proto} frame per line, reads driven by a
    [select] timeout so a wedged (or killed) daemon surfaces as a typed
    {!error} instead of a hang. Used by the [loadgen] CLI, the fleet
    {!Pool}, the service tests and the soak harnesses.

    Transport failures are a typed taxonomy, not strings: the {!Pool}
    decides retry/failover/breaker policy by matching on them, and
    {!error_to_string} renders them for CLI display. An optional
    {!Netfault} plan injects deterministic connection drops, torn
    writes, read delays and blackholes at this layer. *)

type t

type error =
  | Timeout of { waited_s : float }
      (** no complete response frame within the read deadline *)
  | Conn_refused of string  (** connect failed; the detail string *)
  | Conn_closed  (** EOF, [EPIPE] or [ECONNRESET] from the daemon *)
  | Torn_frame of string
      (** an unparsable response frame, or an injected torn write *)
  | Io of string  (** any other syscall failure *)

val error_to_string : error -> string

val connect : ?netfault:Netfault.t -> Server.address -> (t, error) result
(** The fault plan, when given, stays attached to the connection for
    its lifetime. Connecting also installs [Signal_ignore] for
    [SIGPIPE] process-wide: a failing-over client writes into dead
    sockets as a matter of course, and those writes must surface as
    [Conn_closed], not kill the process. *)

val endpoint : t -> string
(** The {!Server.address_to_string} form this connection dialed. *)

val is_alive : t -> bool
(** [false] once the transport has failed (or a torn write was
    injected); subsequent sends fail fast with [Conn_closed]. *)

val close : t -> unit

val send : t -> Proto.request -> (unit, error) result
(** Writes the whole frame, looping over partial writes and [EINTR]. *)

val read_response : ?timeout_s:float -> t -> (Proto.response, error) result
(** Next response frame (default timeout 30s). *)

val call : ?timeout_s:float -> t -> Proto.request -> (Proto.response, error) result
(** [send] then [read_response] — the one-outstanding-request idiom.
    Pipelined callers use [send]/[read_response] directly. *)
