(** Consistent-hash routing over a static fleet of solve daemons.

    A fleet is N shards — name plus {!Server.address} — placed on a
    hash ring with virtual nodes. {!route} maps a request fingerprint
    to the full preference order (ring successors, each shard once):
    element 0 is the owning shard, the rest are the failover order the
    {!Pool} walks when the owner is down. The ring is static for the
    life of the manifest, so two clients with the same manifest route
    identically and a shard's keyspace is stable across its restarts —
    which is what makes the per-shard cache snapshot worth reloading.

    Each shard carries mutable health ([Up] / [Suspect] / [Down])
    driven by probe frames and observed request outcomes
    ({!mark_ok} / {!mark_failed}); health is advisory routing state
    owned by the client process, not consensus.

    The fleet manifest is a [fleet.v1] JSON file
    ([{"schema":"fleet.v1","shards":[{"name":...,"address":"unix:..."}]}])
    written by [serve-fleet] and consumed by [loadgen --fleet]. *)

type health = Up | Suspect | Down

val health_name : health -> string

type shard = {
  name : string;
  address : Server.address;
  mutable health : health;
  mutable failures : int;  (** consecutive failed probes/requests *)
}

type t

val make : ?vnodes:int -> shard list -> (t, string) result
(** Build a ring ([vnodes] ring points per shard, default 64).
    [Error] on an empty fleet or duplicate shard names. *)

val shards : t -> shard list
(** In manifest order. *)

val find : t -> string -> shard option

val route : t -> key:string -> shard list
(** Preference order for [key] (normally a {!Cache.fingerprint}):
    every shard exactly once, owner first. Deterministic in the
    manifest alone — health is not consulted here. *)

val mark_ok : shard -> unit
(** Probe or request succeeded: reset failures, health [Up]. *)

val mark_failed : ?down_after:int -> shard -> unit
(** One more consecutive failure: [Suspect], then [Down] once
    [down_after] (default 2) failures accumulate. *)

(** {2 Manifest} *)

val address_of_string : string -> (Server.address, string) result
(** Parse the {!Server.address_to_string} form
    (["unix:PATH"] or ["tcp:HOST:PORT"]). *)

val save_manifest : path:string -> t -> (unit, string) result
(** Atomic [fleet.v1] write via {!Report.Fsio.write_atomic}. *)

val load_manifest : ?vnodes:int -> path:string -> unit -> (t, string) result
(** All shards start [Up]. *)
