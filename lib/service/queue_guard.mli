(** Bounded admission queue.

    The server admits decoded solve requests here before batching them
    onto the worker pool. The bound is the backpressure contract: when
    [depth = capacity] the next admit is refused with the observed
    depth, which the server turns into a typed {!Proto.response.Shed}
    answer — the client learns immediately instead of waiting on an
    unbounded backlog, and server memory stays bounded under any load.

    Single-domain (event-loop only), like {!Cache}. Depth is exported
    as the [service.queue.depth] gauge and sheds as the
    [service.queue.shed] counter. *)

type 'a t

val create : capacity:int -> 'a t
(** Non-positive capacities are clamped to 1. *)

type 'a admit = Admitted | Refused of { depth : int; capacity : int }

val admit : 'a t -> 'a -> 'a admit

val take : ?max:int -> 'a t -> 'a list
(** Dequeue up to [max] items (default: everything), FIFO. *)

val depth : 'a t -> int
val capacity : 'a t -> int
val shed_count : 'a t -> int
