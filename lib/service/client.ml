type t = { fd : Unix.file_descr; inbox : Buffer.t }

let connect address =
  match
    match (address : Server.address) with
    | Server.Unix_path path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
    | Server.Tcp { host; port } ->
      let inet =
        if String.equal host "" then Unix.inet_addr_loopback
        else Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (inet, port));
      fd
  with
  | fd -> Ok { fd; inbox = Buffer.create 512 }
  | exception Unix.Unix_error (e, fn, _) ->
    Error
      (Printf.sprintf "connect %s: %s (%s)"
         (Server.address_to_string address)
         (Unix.error_message e) fn)
  | exception Failure _ ->
    Error
      ("connect: not a numeric host address in "
      ^ Server.address_to_string address)

let close t =
  match Unix.close t.fd with
  | () -> ()
  | exception Unix.Unix_error (_, _, _) -> ()

let send t request =
  let data = Proto.request_to_line request ^ "\n" in
  let len = String.length data in
  let rec go off =
    if off >= len then Ok ()
    else
      match Unix.write_substring t.fd data off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) ->
        Error ("send: " ^ Unix.error_message e)
  in
  go 0

(* One buffered line, if a complete one is already in the inbox. *)
let take_line t =
  let s = Buffer.contents t.inbox in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    let line = String.sub s 0 i in
    Buffer.clear t.inbox;
    Buffer.add_substring t.inbox s (i + 1) (String.length s - i - 1);
    Some line

let read_response ?(timeout_s = 30.) t =
  let deadline = Obs.Clock.now () +. timeout_s in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match take_line t with
    | Some line -> (
      match Proto.response_of_line line with
      | Ok response -> Ok response
      | Error msg -> Error ("bad response frame: " ^ msg))
    | None ->
      let left = deadline -. Obs.Clock.now () in
      if left <= 0. then Error "timeout waiting for response"
      else (
        match Unix.select [ t.fd ] [] [] left with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | [], _, _ -> go ()
        | _ :: _, _, _ -> (
          match Unix.read t.fd chunk 0 (Bytes.length chunk) with
          | 0 -> Error "connection closed by daemon"
          | n ->
            Buffer.add_subbytes t.inbox chunk 0 n;
            go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error (e, _, _) ->
            Error ("read: " ^ Unix.error_message e)))
  in
  go ()

let call ?timeout_s t request =
  match send t request with
  | Error _ as e -> e
  | Ok () -> read_response ?timeout_s t
