type error =
  | Timeout of { waited_s : float }
  | Conn_refused of string
  | Conn_closed
  | Torn_frame of string
  | Io of string

let error_to_string = function
  | Timeout { waited_s } ->
    Printf.sprintf "timeout after %.2fs waiting for response" waited_s
  | Conn_refused detail -> "connection refused: " ^ detail
  | Conn_closed -> "connection closed by daemon"
  | Torn_frame detail -> "torn frame: " ^ detail
  | Io detail -> "i/o error: " ^ detail

type t = {
  fd : Unix.file_descr;
  inbox : Buffer.t;
  endpoint : string;
  netfault : Netfault.t option;
  mutable alive : bool;
}

let endpoint t = t.endpoint

let is_alive t = t.alive

let connect ?netfault address =
  (* a client that fails over writes into dead sockets as a matter of
     course; EPIPE must surface as [Conn_closed], not kill the process *)
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> () (* no SIGPIPE on this platform *));
  let endpoint = Server.address_to_string address in
  let injected =
    match netfault with
    | Some nf -> (
      match Netfault.connect_decision nf ~endpoint with
      | `Refuse -> Some (Conn_refused ("injected connection drop to " ^ endpoint))
      | `Proceed -> None)
    | None -> None
  in
  match injected with
  | Some e -> Error e
  | None -> (
    match
      match (address : Server.address) with
      | Server.Unix_path path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      | Server.Tcp { host; port } ->
        let inet =
          if String.equal host "" then Unix.inet_addr_loopback
          else Unix.inet_addr_of_string host
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (inet, port));
        fd
    with
    | fd ->
      Ok { fd; inbox = Buffer.create 512; endpoint; netfault; alive = true }
    | exception Unix.Unix_error (e, fn, _) ->
      Error
        (Conn_refused
           (Printf.sprintf "connect %s: %s (%s)" endpoint
              (Unix.error_message e) fn))
    | exception Failure _ ->
      Error (Conn_refused ("not a numeric host address in " ^ endpoint)))

let close t =
  t.alive <- false;
  match Unix.close t.fd with
  | () -> ()
  | exception Unix.Unix_error (_, _, _) -> ()

(* Write [data.[0 .. limit)], looping over partial writes and EINTR.
   A short [limit] is the torn-write injection: the daemon sees a
   frame with no newline, which stays buffered until the connection
   drops — exactly a peer dying mid-write. *)
let write_all t data limit =
  let rec go off =
    if off >= limit then Ok ()
    else
      match Unix.write_substring t.fd data off (limit - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        t.alive <- false;
        Error Conn_closed
      | exception Unix.Unix_error (e, _, _) ->
        t.alive <- false;
        Error (Io ("send: " ^ Unix.error_message e))
  in
  go 0

let send t request =
  if not t.alive then Error Conn_closed
  else begin
    let data = Proto.request_to_line request ^ "\n" in
    let len = String.length data in
    match Option.map Netfault.send_decision t.netfault with
    | Some (`Torn fraction) ->
      let cut = max 1 (min (len - 1) (int_of_float (fraction *. float_of_int len))) in
      (match write_all t data cut with
      | Ok () | Error _ -> ());
      (* the frame can never complete: kill the connection so the
         daemon discards the partial tail instead of waiting forever *)
      close t;
      Error (Torn_frame "injected torn write")
    | Some `Proceed | None -> write_all t data len
  end

(* One buffered line, if a complete one is already in the inbox. *)
let take_line t =
  let s = Buffer.contents t.inbox in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    let line = String.sub s 0 i in
    Buffer.clear t.inbox;
    Buffer.add_substring t.inbox s (i + 1) (String.length s - i - 1);
    Some line

let read_response ?(timeout_s = 30.) t =
  let started = Obs.Clock.now () in
  let deadline = started +. timeout_s in
  let blackholed =
    match t.netfault with
    | Some nf -> (
      match Netfault.read_decision nf ~endpoint:t.endpoint with
      | `Blackhole -> true
      | `Delay d ->
        Unix.sleepf (Float.min d (Float.max 0. timeout_s));
        false
      | `Proceed -> false)
    | None -> false
  in
  let timeout () =
    Error (Timeout { waited_s = Obs.Clock.elapsed ~since:started })
  in
  if blackholed then begin
    (* the endpoint never answers: burn the deadline deterministically
       so the caller exercises its timeout/failover path *)
    Unix.sleepf (Float.max 0. timeout_s);
    timeout ()
  end
  else begin
    let chunk = Bytes.create 4096 in
    let rec go () =
      match take_line t with
      | Some line -> (
        match Proto.response_of_line line with
        | Ok response -> Ok response
        | Error msg -> Error (Torn_frame ("bad response frame: " ^ msg)))
      | None ->
        let left = deadline -. Obs.Clock.now () in
        if left <= 0. then timeout ()
        else (
          match Unix.select [ t.fd ] [] [] left with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | [], _, _ -> go ()
          | _ :: _, _, _ -> (
            match Unix.read t.fd chunk 0 (Bytes.length chunk) with
            | 0 ->
              t.alive <- false;
              Error Conn_closed
            | n ->
              Buffer.add_subbytes t.inbox chunk 0 n;
              go ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
              t.alive <- false;
              Error Conn_closed
            | exception Unix.Unix_error (e, _, _) ->
              t.alive <- false;
              Error (Io ("read: " ^ Unix.error_message e))))
    in
    go ()
  end

let call ?timeout_s t request =
  match send t request with
  | Error _ as e -> e
  | Ok () -> read_response ?timeout_s t
