(** Failing-over client pool over a {!Shard} fleet.

    One blocking solve call against the fleet: route the market's
    fingerprint to its preference order, try the owning shard with
    bounded jittered retries ({!Runner.Supervisor.backoff_delay}), and
    fail over down the ring on transport failure or shed. A per-shard
    circuit breaker (closed -> open after K consecutive failures ->
    half-open probe -> closed) turns a dead shard into a skipped one:
    while a breaker is open the pool spends no syscalls on that shard,
    and after [breaker_cooldown_s] exactly one request (or {!probe}
    ping) is let through as the recovery probe.

    Transport trouble is {!Client.error}; this layer adds the
    request-level outcomes ([Shed], [Rejected], [Degraded]) so callers
    see one typed taxonomy for everything that can go wrong.

    Single-domain by design, like the daemon's loop: one pool is owned
    by one caller; connections are opened lazily and replaced on
    failure. *)

type config = {
  retry : Runner.Supervisor.retry;  (** per-shard attempt schedule *)
  breaker_threshold : int;  (** consecutive failures that trip *)
  breaker_cooldown_s : float;  (** open -> half-open delay *)
  timeout_s : float;  (** per-attempt response deadline *)
  deadline_s : float option;
      (** overall per-request wall-clock budget across every retry and
          failover; [None] bounds it by attempts * timeout alone *)
  seed : int64;  (** backoff-jitter stream *)
}

val default_config : config
(** 2 attempts per shard with jittered 25ms backoff, trip after 3,
    0.5s cooldown, 10s per-attempt timeout, no overall deadline. *)

type error =
  | Transport of Client.error
      (** last transport failure after every shard was tried *)
  | Shed of { depth : int; capacity : int }  (** every live shard shed *)
  | Rejected of Proto.reject_reason
  | Degraded of string
  | No_shard_available  (** every breaker open, nothing tried *)

val error_to_string : error -> string

type t

val create : ?netfault:Netfault.t -> ?config:config -> Shard.t -> t

val ring : t -> Shard.t

type answer = {
  solved : Proto.solved;
  shard : string;  (** the shard that answered *)
  attempts : int;  (** send attempts across all shards, >= 1 *)
  failovers : int;  (** shards given up on before the answer *)
}

val solve :
  t -> ?id:string -> ?params:Proto.solve_params -> Proto.market ->
  (answer, error) result
(** [Degraded] and [Rejected] answers are returned, not failed over:
    the shard is healthy, the request itself is the problem. [Shed]
    fails over (another replica may have queue room); transport errors
    retry on the same shard, then fail over. *)

val probe : t -> unit
(** Ping every shard that is not (breaker closed and health up) —
    the explicit half-open recovery path when no traffic routes to a
    recovering shard. Cheap no-op for a healthy fleet. *)

val close : t -> unit

(** {2 Introspection} *)

type shard_stats = {
  name : string;
  health : Shard.health;
  breaker : string;  (** ["closed"], ["open"] or ["half-open"] *)
  requests : int;  (** answers this shard produced *)
  failures : int;  (** transport failures charged to it *)
  trips : int;  (** times its breaker opened *)
}

type stats = { failovers : int; retries : int; shards : shard_stats list }

val stats : t -> stats
(** Also continuously exported as [service.pool.*] metrics
    (failovers/retries counters, per-shard breaker-state gauge and
    trip counters) through the ordinary Prometheus path. *)
