(* Seeded fault schedule for the client-side transport. All state is
   inside [t] (owned by the caller); decisions advance the Rng stream,
   so one seed + one call sequence = one reproducible fault history. *)

type t = {
  rng : Numerics.Rng.t;
  drop_conn_p : float;
  torn_write_p : float;
  delay_read_p : float;
  delay_s : float;
  blackhole : string list;
  mutable dropped : int;
  mutable torn : int;
  mutable delayed : int;
  mutable blackholed : int;
  dropped_c : Obs.Metrics.counter;
  torn_c : Obs.Metrics.counter;
  delayed_c : Obs.Metrics.counter;
  blackholed_c : Obs.Metrics.counter;
}

let create ?(drop_conn_p = 0.) ?(torn_write_p = 0.) ?(delay_read_p = 0.)
    ?(delay_s = 0.01) ?(blackhole = []) ~seed () =
  let clamp p = Float.max 0. (Float.min 1. p) in
  let injected kind =
    Obs.Metrics.counter ~labels:[ ("kind", kind) ] "service.netfault.injected"
  in
  {
    rng = Numerics.Rng.create seed;
    drop_conn_p = clamp drop_conn_p;
    torn_write_p = clamp torn_write_p;
    delay_read_p = clamp delay_read_p;
    delay_s = Float.max 0. delay_s;
    blackhole;
    dropped = 0;
    torn = 0;
    delayed = 0;
    blackholed = 0;
    dropped_c = injected "dropped_conn";
    torn_c = injected "torn_write";
    delayed_c = injected "delayed_read";
    blackholed_c = injected "blackholed_read";
  }

let connect_decision t ~endpoint:_ =
  if Numerics.Rng.float t.rng < t.drop_conn_p then begin
    t.dropped <- t.dropped + 1;
    Obs.Metrics.incr t.dropped_c;
    `Refuse
  end
  else `Proceed

let send_decision t =
  if Numerics.Rng.float t.rng < t.torn_write_p then begin
    t.torn <- t.torn + 1;
    Obs.Metrics.incr t.torn_c;
    (* strictly inside the frame: at least the first byte, never all *)
    `Torn (0.1 +. (0.8 *. Numerics.Rng.float t.rng))
  end
  else `Proceed

let read_decision t ~endpoint =
  if List.exists (String.equal endpoint) t.blackhole then begin
    t.blackholed <- t.blackholed + 1;
    Obs.Metrics.incr t.blackholed_c;
    `Blackhole
  end
  else if Numerics.Rng.float t.rng < t.delay_read_p then begin
    t.delayed <- t.delayed + 1;
    Obs.Metrics.incr t.delayed_c;
    `Delay t.delay_s
  end
  else `Proceed

type stats = { dropped : int; torn : int; delayed : int; blackholed : int }

let stats (t : t) =
  {
    dropped = t.dropped;
    torn = t.torn;
    delayed = t.delayed;
    blackholed = t.blackholed;
  }

let describe t =
  Printf.sprintf
    "drop-conn %.3f, torn-write %.3f, delay-read %.3f (%.0fms), %d blackholed"
    t.drop_conn_p t.torn_write_p t.delay_read_p (1000. *. t.delay_s)
    (List.length t.blackhole)
