(** Randomized load generator for the solve daemon — single daemon or
    sharded fleet.

    Drives pipelined bursts of solve requests — a seeded mix of fresh
    markets, exact repeats (cache hits) and perturbed neighbours
    (warm starts) — over several connections, optionally toggling the
    daemon's chaos fault injection mid-flight, and matches every
    response back to its request id. The soak test's acceptance
    question ("was every request answered solved, degraded or shed,
    and did the daemon stay up?") is {!report_ok} on the returned
    {!report}.

    With [fleet] set, requests route by fingerprint over the
    {!Shard} ring ([connections] pipelined connections per shard) and
    any request a connection fails to deliver is re-driven through a
    {!Pool} — retry, failover, circuit breakers — so transport faults
    (including [netfault]-injected ones) become [recovered] requests
    instead of errors. The CSV artifact gains aggregate and per-shard
    throughput rows. *)

type config = {
  address : Server.address;  (** single-daemon target; ignored with [fleet] *)
  requests : int;  (** solve requests to send in total *)
  connections : int;  (** per daemon (per shard in fleet mode) *)
  burst : int;  (** solve frames in flight per connection *)
  seed : int64;
  chaos_every : int option;
      (** send a chaos toggle every [n] solve requests, cycling through
          every {!Runner.Chaos.default_scenarios} mode and "off";
          single-daemon mode only *)
  reuse_fraction : float;  (** share of exact-repeat markets, in [0, 1] *)
  neighbour_fraction : float;  (** share of perturbed-neighbour markets *)
  deadline_s : float option;  (** per-request watchdog deadline to ask for *)
  timeout_s : float;  (** client-side read timeout per response *)
  fleet : Shard.t option;  (** route over this ring instead of [address] *)
  netfault : Netfault.t option;  (** chaos-net: client-side fault injection *)
  pool : Pool.config option;  (** fleet failover policy (default policy if [None]) *)
}

val default_config : address:Server.address -> requests:int -> config
(** 2 connections, burst 8, seed 42, no chaos, 30% repeats, 30%
    neighbours, no per-request deadline, 60s timeout, no fleet, no
    netfault. *)

type shard_load = {
  sent : int;  (** requests first offered to this shard *)
  answered : int;  (** answers it produced, incl. pool failover traffic *)
  solved : int;
  degraded : int;
  shed : int;
  req_s : float;  (** answered / wall seconds *)
}

type report = {
  sent : int;
  solved : int;
  degraded : int;
  shed : int;
  rejected : int;
  other : int;  (** pongs, byes, metrics snapshots *)
  chaos_toggles : int;  (** chaos acks received *)
  chaos_sent : (string * int) list;
      (** toggles sent per mode name (incl. ["off"]), sorted *)
  unanswered : int;  (** solve requests with no matching response *)
  errors : string list;  (** unrecovered transport failures, newest first *)
  wall_s : float;
  latency : Obs.Metrics.summary option;
      (** server-reported [solve_s] of every Solved answer this run
          (the ["loadgen.solve_s"] histogram, reset per run); [None]
          when nothing solved *)
  per_shard : (string * shard_load) list;  (** fleet mode; [[]] otherwise *)
  failovers : int;  (** pool failovers (fleet mode) *)
  retries : int;  (** pool same-shard retries (fleet mode) *)
  recovered : int;
      (** requests answered through the pool after their first
          connection failed them (fleet mode) *)
}

val report_ok : report -> bool
(** Every solve request answered (solved, degraded or shed), nothing
    unanswered, no rejects, no unrecovered transport errors. *)

val report_to_string : report -> string

val random_market : Numerics.Rng.t -> Proto.market
(** One seeded random market from the generator's distribution (1-4
    exponential CPs; also used by the service tests). *)

val run :
  ?on_event:(string -> unit) ->
  ?on_round:(sent:int -> unit) ->
  config ->
  (report, string) result
(** [Error] only when no connection can be established at all (single
    mode). [on_round] fires after each burst-and-drain round with the
    running sent count — the hook the fleet soak uses to kill and
    restart a shard mid-run. *)

val fetch_metrics :
  ?prefix:string -> ?timeout_s:float -> Server.address -> (Obs.Json.t, string) result
(** One-shot metrics query over a fresh connection. *)

val fetch_prom :
  ?prefix:string -> ?timeout_s:float -> Server.address -> (string, string) result
(** One-shot Prometheus text exposition over a fresh connection (the
    [metrics_prom] frame; equivalent to HTTP [GET /metrics]). *)

val csv_table : report -> Report.Table.t
(** The report as metric/value rows: counts, aggregate [req_s],
    failover/recovery counts, per-mode chaos toggles, per-shard
    [shard.<name>.*] rows (fleet mode), latency distribution
    (count/sum/min/max/p50/p90/p99). *)

val write_csv : path:string -> report -> unit
(** {!csv_table} through {!Report.Csv.write} (atomic). Raises
    [Sys_error] on I/O failure. *)
