(** Randomized load generator for the solve daemon.

    Drives pipelined bursts of solve requests — a seeded mix of fresh
    markets, exact repeats (cache hits) and perturbed neighbours
    (warm starts) — over several connections, optionally toggling the
    daemon's chaos fault injection mid-flight, and matches every
    response back to its request id. The soak test's acceptance
    question ("was every request answered solved, degraded or shed,
    and did the daemon stay up?") is {!report_ok} on the returned
    {!report}. *)

type config = {
  address : Server.address;
  requests : int;  (** solve requests to send in total *)
  connections : int;
  burst : int;  (** solve frames in flight per connection *)
  seed : int64;
  chaos_every : int option;
      (** send a chaos toggle every [n] solve requests, cycling through
          every {!Runner.Chaos.default_scenarios} mode and "off" *)
  reuse_fraction : float;  (** share of exact-repeat markets, in [0, 1] *)
  neighbour_fraction : float;  (** share of perturbed-neighbour markets *)
  deadline_s : float option;  (** per-request watchdog deadline to ask for *)
  timeout_s : float;  (** client-side read timeout per response *)
}

val default_config : address:Server.address -> requests:int -> config
(** 2 connections, burst 8, seed 42, no chaos, 30% repeats, 30%
    neighbours, no per-request deadline, 60s timeout. *)

type report = {
  sent : int;
  solved : int;
  degraded : int;
  shed : int;
  rejected : int;
  other : int;  (** pongs, byes, metrics snapshots *)
  chaos_toggles : int;  (** chaos acks received *)
  chaos_sent : (string * int) list;
      (** toggles sent per mode name (incl. ["off"]), sorted *)
  unanswered : int;  (** solve requests with no matching response *)
  errors : string list;  (** transport-level failures, newest first *)
  wall_s : float;
  latency : Obs.Metrics.summary option;
      (** server-reported [solve_s] of every Solved answer this run
          (the ["loadgen.solve_s"] histogram, reset per run); [None]
          when nothing solved *)
}

val report_ok : report -> bool
(** Every solve request answered (solved, degraded or shed), nothing
    unanswered, no rejects, no transport errors. *)

val report_to_string : report -> string

val random_market : Numerics.Rng.t -> Proto.market
(** One seeded random market from the generator's distribution (1-4
    exponential CPs; also used by the service tests). *)

val run : ?on_event:(string -> unit) -> config -> (report, string) result
(** [Error] only when no connection can be established at all. *)

val fetch_metrics :
  ?prefix:string -> ?timeout_s:float -> Server.address -> (Obs.Json.t, string) result
(** One-shot metrics query over a fresh connection. *)

val fetch_prom :
  ?prefix:string -> ?timeout_s:float -> Server.address -> (string, string) result
(** One-shot Prometheus text exposition over a fresh connection (the
    [metrics_prom] frame; equivalent to HTTP [GET /metrics]). *)

val csv_table : report -> Report.Table.t
(** The report as metric/value rows: counts, per-mode chaos toggles,
    latency distribution (count/sum/min/max/p50/p90/p99). *)

val write_csv : path:string -> report -> unit
(** {!csv_table} through {!Report.Csv.write} (atomic). Raises
    [Sys_error] on I/O failure. *)
