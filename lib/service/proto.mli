(** Wire protocol of the solve daemon.

    Framing is newline-delimited compact JSON: one request or response
    document per line, no raw newlines inside a frame ({!Obs.Json}
    escapes them), bounded by a per-connection frame-size limit so a
    hostile or buggy client cannot grow server memory without bound.
    Every decoding failure is a typed {!reject_reason} that the server
    answers and survives — malformed input is data, never an
    exception.

    A market travels as {!Experiments.Market_io} JSON (the same
    columns and domain rules as the [--market] CSV), so anything the
    CLI can load from disk can be solved over the socket. *)

type market = {
  capacity : float;  (** ISP capacity [mu > 0] *)
  price : float;  (** ISP usage price [p >= 0] *)
  cap : float;  (** subsidy policy cap [q >= 0] *)
  cps : Econ.Cp.t array;
}

type solve_params = {
  deadline_s : float option;  (** per-request watchdog deadline *)
  max_evals : int option;  (** per-request evaluation budget *)
}

val no_params : solve_params

type request =
  | Solve of { id : string; market : market; params : solve_params }
  | Metrics of { prefix : string }
      (** the /metrics-style query: a registry snapshot, optionally
          name-filtered *)
  | Metrics_prom of { prefix : string }
      (** same registry cut, rendered as Prometheus text exposition
          ({!Obs.Prom}); wire type ["metrics_prom"] *)
  | Chaos of { mode : Numerics.Fault.mode option }
      (** install ([Some]) or clear ([None]) the process-global fault —
          the soak harness's mid-flight injection lever; the server
          rejects it unless started with chaos enabled *)
  | Ping
  | Shutdown  (** graceful drain, same as SIGTERM *)

type reject_reason =
  | Malformed_frame of string  (** unparsable JSON or bad shape *)
  | Oversized_frame of { bytes : int; limit : int }
  | Bad_market of string  (** Market_io/domain validation failure *)
  | Unsupported of string  (** unknown request type *)
  | Chaos_disabled

val reject_to_string : reject_reason -> string

type cache_source =
  | Hit  (** answered from the equilibrium cache, no solve *)
  | Warm  (** solved, seeded from a cached neighbour's equilibrium *)
  | Cold  (** solved from the zero profile *)

val cache_source_name : cache_source -> string

type solved = {
  subsidies : float array;
  phi : float;
  aggregate : float;
  revenue : float;  (** [price * aggregate] *)
  converged : bool;
  sweeps : int;
  kkt_residual : float;
  cache : cache_source;
  solve_s : float;  (** server-side wall clock for this answer *)
}

type response =
  | Solved of { id : string; result : solved }
  | Degraded of { id : string; reason : string }
      (** the solver failed in a contained, typed way (fault injection,
          deadline, budget, no convergence); the request is answered,
          not dropped *)
  | Shed of { id : string; depth : int; capacity : int }
      (** admission control refused the request: queue full *)
  | Rejected of { id : string option; reason : reject_reason }
  | Metrics_snapshot of Obs.Json.t
  | Prom_text of string
      (** Prometheus text exposition, newline-escaped inside the JSON
          frame; wire type ["metrics-prom"] *)
  | Chaos_ack of { mode : string }
  | Pong
  | Bye  (** acknowledges [Shutdown]; the connection closes after it *)

val default_max_frame_bytes : int
(** 1 MiB. *)

(** {2 Chaos mode names}

    The wire names are {!Runner.Chaos.default_scenarios} names plus
    ["off"]. *)

val chaos_mode_name : Numerics.Fault.mode -> string
val chaos_mode_of_name : string -> (Numerics.Fault.mode option, string) result

(** {2 Markets} *)

val market_to_json : market -> Obs.Json.t
val market_of_json : Obs.Json.t -> (market, string) result

(** {2 Solved results}

    The response payload codec, exposed on its own so the equilibrium
    cache can snapshot entries to disk in the exact wire shape. *)

val solved_to_json : solved -> Obs.Json.t
val solved_of_json : Obs.Json.t -> (solved, string) result

(** {2 Framing}

    [*_to_line] renders one compact JSON frame {e without} the trailing
    newline; the transport appends it. [*_of_line] parses one frame. *)

val request_to_line : request -> string
val request_of_line : ?max_frame_bytes:int -> string -> (request, reject_reason) result
val response_to_line : response -> string
val response_of_line : string -> (response, string) result
