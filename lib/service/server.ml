(* The daemon: one select loop owning sockets, queue, cache and
   journal; solves batched onto the shared domain pool. All mutable
   state lives inside [run] — nothing here is process-global. *)

type address = Unix_path of string | Tcp of { host : string; port : int }

let address_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp { host; port } -> Printf.sprintf "tcp:%s:%d" host port

type config = {
  address : address;
  queue_capacity : int;
  cache_capacity : int;
  max_frame_bytes : int;
  journal_path : string option;
  durable : bool;
  allow_chaos : bool;
  limits : Runner.Watchdog.limits;
  retry : Runner.Supervisor.retry;
  seed : int64;
  batch : int option;
  snapshot_path : string option;
  snapshot_every_s : float option;
  journal_compact_bytes : int option;
}

let default_config ~address =
  {
    address;
    queue_capacity = 64;
    cache_capacity = 256;
    max_frame_bytes = Proto.default_max_frame_bytes;
    journal_path = None;
    durable = false;
    allow_chaos = false;
    limits =
      { Runner.Watchdog.deadline_s = Some 30.; max_evals = Some 2_000_000 };
    retry =
      Runner.Supervisor.retry ~max_attempts:2 ~backoff_s:0.05 ~multiplier:2.
        ~jitter:0.5 ();
    seed = 7L;
    batch = None;
    snapshot_path = None;
    snapshot_every_s = Some 30.;
    journal_compact_bytes = Some (1 lsl 20);
  }

type event =
  | Listening of { address : string }
  | Recovered of { replayed : int; already_acked : int; torn_lines : int }
  | Connected of { conn : int }
  | Disconnected of { conn : int }
  | Batch_solved of { n : int; wall_s : float }
  | Snapshot_loaded of { entries : int; age_s : float }
  | Snapshot_saved of { entries : int }
  | Compacted of { kept : int; dropped : int; bytes_before : int; bytes_after : int }
  | Draining of { reason : string }
  | Warning of string

(* Every event also lands in Obs.Log (lifecycle at info, per-connection
   and per-batch chatter at debug), so a daemon is observable without
   the caller wiring an [on_event]; the callback remains the structured
   hook for tests and embedding. *)
let log_event event =
  let module L = Obs.Log in
  match event with
  | Listening { address } ->
    L.info ~m:"server" "listening" ~fields:[ ("address", address) ]
  | Recovered { replayed; already_acked; torn_lines } ->
    L.info ~m:"server" "journal recovery complete"
      ~fields:
        [
          ("replayed", string_of_int replayed);
          ("already_acked", string_of_int already_acked);
          ("torn_lines", string_of_int torn_lines);
        ]
  | Connected { conn } ->
    L.debug ~m:"server" "connection opened" ~fields:[ ("conn", string_of_int conn) ]
  | Disconnected { conn } ->
    L.debug ~m:"server" "connection closed" ~fields:[ ("conn", string_of_int conn) ]
  | Batch_solved { n; wall_s } ->
    L.debug ~m:"server" "batch solved"
      ~fields:
        [ ("n", string_of_int n); ("wall_s", Printf.sprintf "%.4f" wall_s) ]
  | Snapshot_loaded { entries; age_s } ->
    L.info ~m:"server" "cache snapshot loaded"
      ~fields:
        [
          ("entries", string_of_int entries);
          ("age_s", Printf.sprintf "%.1f" age_s);
        ]
  | Snapshot_saved { entries } ->
    L.debug ~m:"server" "cache snapshot saved"
      ~fields:[ ("entries", string_of_int entries) ]
  | Compacted { kept; dropped; bytes_before; bytes_after } ->
    L.info ~m:"server" "journal compacted"
      ~fields:
        [
          ("kept", string_of_int kept);
          ("dropped", string_of_int dropped);
          ("bytes_before", string_of_int bytes_before);
          ("bytes_after", string_of_int bytes_after);
        ]
  | Draining { reason } ->
    L.info ~m:"server" "draining" ~fields:[ ("reason", reason) ]
  | Warning msg -> L.warn ~m:"server" msg

(* Per-request limits fall back field-wise to the server defaults. *)
let effective_limits (default : Runner.Watchdog.limits)
    (params : Proto.solve_params) =
  {
    Runner.Watchdog.deadline_s =
      (match params.Proto.deadline_s with
      | Some _ as d -> d
      | None -> default.Runner.Watchdog.deadline_s);
    max_evals =
      (match params.Proto.max_evals with
      | Some _ as m -> m
      | None -> default.Runner.Watchdog.max_evals);
  }

(* One watchdog-guarded, supervised solve. Runs on whatever domain the
   pool scheduled it on; everything it touches arrives by value. Every
   failure shape the chaos harness can provoke comes back as [Error]
   (the degraded-response reason) — nothing escapes to kill a worker. *)
let solve_market ~limits ~retry ?rng ?x0 (market : Proto.market) =
  let start = Obs.Clock.now () in
  let sys =
    Subsidization.System.make ~cps:market.Proto.cps
      ~capacity:market.Proto.capacity ()
  in
  let game =
    Subsidization.Subsidy_game.make sys ~price:market.Proto.price
      ~cap:market.Proto.cap
  in
  let rec go attempt_no =
    match
      (* scrutinee, not a helper thunk: the exception arms below are
         the absorption boundary EXN-ESCAPE checks for *)
      Runner.Watchdog.guard limits (fun () ->
          Subsidization.Nash.solve_result ?x0 game)
    with
    | Ok eq -> Ok eq
    | Error err ->
      if
        attempt_no < retry.Runner.Supervisor.max_attempts
        && Runner.Supervisor.retryable (Numerics.Robust.Solver_error err)
      then begin
        Unix.sleepf (Runner.Supervisor.backoff_delay ?rng retry ~attempt:attempt_no);
        go (attempt_no + 1)
      end
      else Error ("solver: " ^ Numerics.Robust.error_message err)
    | exception Runner.Watchdog.Deadline_exceeded { elapsed_s; limit_s } ->
      Error
        (Printf.sprintf "deadline exceeded: %.3fs elapsed, limit %.3fs"
           elapsed_s limit_s)
    | exception Runner.Watchdog.Eval_budget_exceeded { evaluations; limit } ->
      Error
        (Printf.sprintf "evaluation budget exceeded: %d of %d" evaluations
           limit)
    | exception Numerics.Robust.Solver_error err ->
      Error ("solver: " ^ Numerics.Robust.error_message err)
    | exception Numerics.Fault.Budget_exceeded n ->
      Error
        (Printf.sprintf "injected evaluation budget exhausted after %d evaluations" n)
  in
  match go 1 with
  | Error _ as e -> e
  | Ok eq ->
    let open Subsidization in
    Ok
      {
        Proto.subsidies = Array.copy eq.Nash.subsidies;
        phi = eq.Nash.state.System.phi;
        aggregate = eq.Nash.state.System.aggregate;
        revenue = market.Proto.price *. eq.Nash.state.System.aggregate;
        converged = eq.Nash.converged;
        sweeps = eq.Nash.sweeps;
        kkt_residual = eq.Nash.kkt_residual;
        cache = (match x0 with Some _ -> Proto.Warm | None -> Proto.Cold);
        solve_s = Obs.Clock.elapsed ~since:start;
      }

let solve_one ?cache ?(limits = Runner.Watchdog.no_limits)
    ?(retry = Runner.Supervisor.no_retry) ?rng ~params market =
  let limits = effective_limits limits params in
  let fp = Cache.fingerprint market in
  match Option.bind cache (fun c -> Cache.find c ~fingerprint:fp) with
  | Some solved -> Ok solved
  | None -> (
    let x0 = Option.bind cache (fun c -> Cache.warm_start c market) in
    match solve_market ~limits ~retry ?rng ?x0 market with
    | Error _ as e -> e
    | Ok solved ->
      (match cache with
      | Some c -> Cache.store c ~market ~fingerprint:fp solved
      | None -> ());
      Ok solved)

(* {2 Connections} *)

type conn = {
  fd : Unix.file_descr;
  serial : int;
  inbox : Buffer.t;  (** bytes read, not yet split into frames *)
  mutable alive : bool;
  mutable closing : bool;  (** close once current frames are answered *)
}

let send_raw conn data =
  if conn.alive then begin
    let len = String.length data in
    let rec go off =
      if off < len then
        match Unix.write_substring conn.fd data off (len - off) with
        | n -> go (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          conn.alive <- false
    in
    go 0
  end

let send conn line = send_raw conn (line ^ "\n")

let respond conn response = send conn (Proto.response_to_line response)

(* Complete newline-terminated frames; the partial tail stays buffered. *)
let split_frames conn =
  let s = Buffer.contents conn.inbox in
  let rec go start acc =
    match String.index_from_opt s start '\n' with
    | Some i -> go (i + 1) (String.sub s start (i - start) :: acc)
    | None ->
      Buffer.clear conn.inbox;
      Buffer.add_substring conn.inbox s start (String.length s - start);
      List.rev acc
  in
  go 0 []

(* {2 Server state} *)

type pending_solve = {
  p_conn : conn option;  (** [None] during journal replay *)
  seq : int;
  id : string;
  market : Proto.market;
  params : Proto.solve_params;
  fp : string;
}

type st = {
  cfg : config;
  cache : Cache.t;
  queue : pending_solve Queue_guard.t;
  journal : Journal.t option;
  pool : Parallel.Pool.t;
  rng : Numerics.Rng.t;  (** root of the per-request jitter streams *)
  mutable next_seq : int;
  mutable draining : string option;
  mutable conns : conn list;
  emit : event -> unit;
  solved_c : Obs.Metrics.counter;
  degraded_c : Obs.Metrics.counter;
  shed_c : Obs.Metrics.counter;
  rejected_c : Obs.Metrics.counter;
  latency_h : Obs.Metrics.histogram;
  conns_g : Obs.Metrics.gauge;
  journal_pending_g : Obs.Metrics.gauge;
  mutable journal_pending : int;
      (** received-not-yet-acked journal entries: the replay debt a
          crash right now would leave behind *)
  mutable last_snapshot : float;  (** wall clock of the last cache save *)
  mutable next_compact_at : int;
      (** journal size that triggers the next compaction *)
}

let warn st msg = st.emit (Warning msg)

(* {2 Cache snapshot + journal compaction} *)

let save_snapshot st =
  match st.cfg.snapshot_path with
  | None -> ()
  | Some path -> (
    st.last_snapshot <- Obs.Clock.now ();
    match Cache.save st.cache ~path with
    | Ok entries -> st.emit (Snapshot_saved { entries })
    | Error msg -> warn st ("cache snapshot save: " ^ msg))

let maybe_snapshot st =
  match st.cfg.snapshot_every_s with
  | Some every
    when st.cfg.snapshot_path <> None
         && Obs.Clock.elapsed ~since:st.last_snapshot >= every ->
    save_snapshot st
  | Some _ | None -> ()

(* Compact once the file outgrows the threshold, then not before it
   grows by another threshold past the compacted size — so a journal
   whose pending set alone exceeds the threshold cannot trigger a
   rewrite storm. *)
let maybe_compact st =
  match (st.journal, st.cfg.journal_compact_bytes) with
  | Some j, Some threshold when Journal.size_bytes j >= st.next_compact_at -> (
    match Journal.compact j with
    | Ok c ->
      st.next_compact_at <- c.Journal.bytes_after + max 1 threshold;
      st.emit
        (Compacted
           {
             kept = c.Journal.kept;
             dropped = c.Journal.dropped;
             bytes_before = c.Journal.bytes_before;
             bytes_after = c.Journal.bytes_after;
           })
    | Error msg ->
      st.next_compact_at <- Journal.size_bytes j + max 1 threshold;
      warn st msg)
  | _ -> ()

let journal_pending_add st delta =
  if st.journal <> None then begin
    st.journal_pending <- max 0 (st.journal_pending + delta);
    Obs.Metrics.set st.journal_pending_g (float_of_int st.journal_pending)
  end

let journal_received st ~seq ~id ~fp ~line =
  match st.journal with
  | None -> ()
  | Some j -> (
    match Journal.record_received j ~seq ~id ~fingerprint:fp ~request_line:line with
    | Ok () -> journal_pending_add st 1
    | Error msg -> warn st msg)

let journal_acked st ~seq ~id ~kind =
  match st.journal with
  | None -> ()
  | Some j -> (
    match Journal.record_acked j ~seq ~id ~kind with
    | Ok () -> journal_pending_add st (-1)
    | Error msg -> warn st msg)

(* Ack-before-send: the journal line hits the disk (or at least the
   page cache) before the response frame hits the socket, so a crash
   between the two recovers as "already answered" — at-most-once. *)
let answer st (p : pending_solve) result =
  (match result with
  | Ok _ -> journal_acked st ~seq:p.seq ~id:p.id ~kind:Journal.Solved
  | Error _ -> journal_acked st ~seq:p.seq ~id:p.id ~kind:Journal.Degraded);
  (match result with
  | Ok solved ->
    Obs.Metrics.incr st.solved_c;
    Obs.Metrics.observe st.latency_h solved.Proto.solve_s
  | Error _ -> Obs.Metrics.incr st.degraded_c);
  match p.p_conn with
  | None -> ()
  | Some conn -> (
    match result with
    | Ok solved -> respond conn (Proto.Solved { id = p.id; result = solved })
    | Error reason -> respond conn (Proto.Degraded { id = p.id; reason }))

(* Drain the admission queue: cache lookups and warm-start selection on
   the loop domain, cold/warm solves batched onto the pool, then acks,
   cache stores and responses back on the loop domain, in admission
   order. *)
let solve_batch st =
  let batch_max =
    match st.cfg.batch with
    | Some b -> max 1 b
    | None -> 2 * Parallel.Pool.size st.pool
  in
  match Queue_guard.take ~max:batch_max st.queue with
  | [] -> ()
  | items ->
    let t0 = Obs.Clock.now () in
    let items = Array.of_list items in
    let n = Array.length items in
    let staged =
      Array.map
        (fun p ->
          match Cache.find st.cache ~fingerprint:p.fp with
          | Some solved -> `Cached solved
          | None -> `Solve (Cache.warm_start st.cache p.market))
        items
    in
    let rngs = Numerics.Rng.split_n st.rng n in
    let results =
      Parallel.Pool.map st.pool
        (fun i ->
          match staged.(i) with
          | `Cached solved -> Ok solved
          | `Solve x0 ->
            let p = items.(i) in
            solve_market
              ~limits:(effective_limits st.cfg.limits p.params)
              ~retry:st.cfg.retry ~rng:rngs.(i) ?x0 p.market)
        (Array.init n Fun.id)
    in
    Array.iteri
      (fun i p ->
        (match (staged.(i), results.(i)) with
        | `Solve _, Ok solved ->
          Cache.store st.cache ~market:p.market ~fingerprint:p.fp solved
        | _ -> ());
        answer st p results.(i))
      items;
    st.emit (Batch_solved { n; wall_s = Obs.Clock.elapsed ~since:t0 })

(* {2 Plain HTTP}

   A standard scraper speaks HTTP, not our JSON frames, so a line
   starting with "GET " flips the connection into one-shot HTTP mode:
   answer the request line immediately (headers carry no information we
   use), mark the connection closing so the remaining header lines are
   never parsed as frames, and let the loop close it. *)

let is_http_get line =
  String.length line >= 4 && String.equal (String.sub line 0 4) "GET "

let handle_http conn line =
  let line =
    if String.length line > 0 && line.[String.length line - 1] = '\r' then
      String.sub line 0 (String.length line - 1)
    else line
  in
  let target =
    match String.split_on_char ' ' line with _ :: t :: _ -> t | _ -> "/"
  in
  let path =
    match String.index_opt target '?' with
    | Some i -> String.sub target 0 i
    | None -> target
  in
  let status, reason, body =
    if String.equal path "/metrics" then (200, "OK", Obs.Prom.expose ())
    else (404, "Not Found", "not found\n")
  in
  send_raw conn
    (Printf.sprintf
       "HTTP/1.0 %d %s\r\n\
        Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
        Content-Length: %d\r\n\
        Connection: close\r\n\
        \r\n\
        %s"
       status reason (String.length body) body);
  conn.closing <- true

(* {2 Frame dispatch} *)

let handle_frame st conn line =
  if is_http_get line then handle_http conn line
  else
  match Proto.request_of_line ~max_frame_bytes:st.cfg.max_frame_bytes line with
  | Error reason ->
    Obs.Metrics.incr st.rejected_c;
    respond conn (Proto.Rejected { id = None; reason })
  | Ok Proto.Ping -> respond conn Proto.Pong
  | Ok (Proto.Metrics { prefix }) ->
    let json =
      if String.equal prefix "" then Obs.Export.metrics_json ()
      else Obs.Export.metrics_json ~prefix ()
    in
    respond conn (Proto.Metrics_snapshot json)
  | Ok (Proto.Metrics_prom { prefix }) ->
    respond conn (Proto.Prom_text (Obs.Prom.expose ~prefix ()))
  | Ok (Proto.Chaos { mode }) ->
    if st.cfg.allow_chaos then begin
      Numerics.Fault.set_global mode;
      let name =
        match mode with None -> "off" | Some m -> Proto.chaos_mode_name m
      in
      respond conn (Proto.Chaos_ack { mode = name })
    end
    else begin
      Obs.Metrics.incr st.rejected_c;
      respond conn (Proto.Rejected { id = None; reason = Proto.Chaos_disabled })
    end
  | Ok Proto.Shutdown ->
    respond conn Proto.Bye;
    conn.closing <- true;
    if st.draining = None then st.draining <- Some "shutdown request"
  | Ok (Proto.Solve { id; market; params }) -> (
    let fp = Cache.fingerprint market in
    let seq = st.next_seq in
    st.next_seq <- seq + 1;
    journal_received st ~seq ~id ~fp ~line;
    let pending = { p_conn = Some conn; seq; id; market; params; fp } in
    match Queue_guard.admit st.queue pending with
    | Queue_guard.Admitted -> ()
    | Queue_guard.Refused { depth; capacity } ->
      journal_acked st ~seq ~id ~kind:Journal.Shed;
      Obs.Metrics.incr st.shed_c;
      respond conn (Proto.Shed { id; depth; capacity }))

let read_conn st conn =
  let chunk = Bytes.create 4096 in
  (match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> conn.alive <- false
  | n -> Buffer.add_subbytes conn.inbox chunk 0 n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    conn.alive <- false);
  if conn.alive then begin
    (* once closing (HTTP answered, Bye sent) the rest of the buffered
       input — e.g. HTTP header lines — must not be parsed as frames *)
    List.iter
      (fun line -> if not conn.closing then handle_frame st conn line)
      (split_frames conn);
    (* a frame larger than the limit can never complete: reject and
       drop the connection, since framing is lost *)
    if Buffer.length conn.inbox > st.cfg.max_frame_bytes then begin
      Obs.Metrics.incr st.rejected_c;
      respond conn
        (Proto.Rejected
           {
             id = None;
             reason =
               Proto.Oversized_frame
                 {
                   bytes = Buffer.length conn.inbox;
                   limit = st.cfg.max_frame_bytes;
                 };
           });
      conn.alive <- false
    end
  end

(* {2 Listener} *)

let listener_of_address address =
  match address with
  | Unix_path path -> (
    (match Unix.unlink path with
    | () -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    match
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
    with
    | fd -> Ok fd
    | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "bind %s: %s (%s)" path (Unix.error_message e) fn))
  | Tcp { host; port } -> (
    match
      if String.equal host "" then Unix.inet_addr_loopback
      else Unix.inet_addr_of_string host
    with
    | exception Failure _ -> Error ("not a numeric host address: " ^ host)
    | inet -> (
      match
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (inet, port));
        Unix.listen fd 64;
        fd
      with
      | fd -> Ok fd
      | exception Unix.Unix_error (e, fn, _) ->
        Error
          (Printf.sprintf "bind %s:%d: %s (%s)" host port
             (Unix.error_message e) fn)))

(* {2 Recovery} *)

(* Re-solve journal entries that were received but never acked; acked
   entries are left strictly alone (their clients already got an
   answer, or at worst never will — answering twice is the failure
   mode this exists to prevent). Replay is serial on the loop domain:
   the pending set is bounded by the admission queue. *)
let replay_journal st (recovered : Journal.recovered) =
  let replayed = ref 0 in
  List.iter
    (fun (p : Journal.pending) ->
      (match Proto.request_of_line ~max_frame_bytes:st.cfg.max_frame_bytes
               p.Journal.request_line
       with
      | Ok (Proto.Solve { id = _; market; params }) ->
        let rng = Numerics.Rng.split st.rng in
        let result =
          solve_one ~cache:st.cache ~limits:st.cfg.limits ~retry:st.cfg.retry
            ~rng ~params market
        in
        answer st
          {
            p_conn = None;
            seq = p.Journal.seq;
            id = p.Journal.id;
            market;
            params;
            fp = Cache.fingerprint market;
          }
          result
      | Ok _ | Error _ ->
        warn st
          (Printf.sprintf "journal seq %d: unreplayable request, acking degraded"
             p.Journal.seq);
        journal_acked st ~seq:p.Journal.seq ~id:p.Journal.id
          ~kind:Journal.Degraded);
      incr replayed)
    recovered.Journal.pending;
  st.emit
    (Recovered
       {
         replayed = !replayed;
         already_acked = List.length recovered.Journal.acked;
         torn_lines = recovered.Journal.torn_lines;
       })

(* {2 The loop} *)

let close_conn st conn =
  conn.alive <- false;
  (match Unix.close conn.fd with
  | () -> ()
  | exception Unix.Unix_error (_, _, _) -> ());
  st.emit (Disconnected { conn = conn.serial })

let run ?(on_event = fun _ -> ()) ?(stop = fun () -> false) cfg =
  let journal_recovered =
    match cfg.journal_path with
    | None -> Ok None
    | Some path -> (
      match
        Journal.recover
          ~on_warning:(fun m ->
            log_event (Warning m);
            on_event (Warning m))
          ~path ()
      with
      | Error _ as e -> e
      | Ok recovered -> (
        match Journal.open_ ~durable:cfg.durable ~path () with
        | Error _ as e -> e
        | Ok j -> Ok (Some (j, recovered))))
  in
  match journal_recovered with
  | Error msg -> Error msg
  | Ok journal_recovered -> (
    let st =
      {
        cfg;
        cache = Cache.create ~capacity:cfg.cache_capacity;
        queue = Queue_guard.create ~capacity:cfg.queue_capacity;
        journal = Option.map fst journal_recovered;
        pool = Parallel.Runtime.pool ();
        rng = Numerics.Rng.create cfg.seed;
        next_seq =
          (match journal_recovered with
          | Some (_, r) -> r.Journal.next_seq
          | None -> 0);
        draining = None;
        conns = [];
        emit = (fun ev -> log_event ev; on_event ev);
        solved_c = Obs.Metrics.counter "service.requests.solved";
        degraded_c = Obs.Metrics.counter "service.requests.degraded";
        shed_c = Obs.Metrics.counter "service.requests.shed";
        rejected_c = Obs.Metrics.counter "service.requests.rejected";
        latency_h = Obs.Metrics.histogram "service.solve.latency_s";
        conns_g = Obs.Metrics.gauge "service.connections";
        journal_pending_g = Obs.Metrics.gauge "service.journal.pending";
        journal_pending =
          (match journal_recovered with
          | Some (_, r) -> List.length r.Journal.pending
          | None -> 0);
        last_snapshot = Obs.Clock.now ();
        next_compact_at =
          (match cfg.journal_compact_bytes with
          | Some threshold -> max 1 threshold
          | None -> max_int);
      }
    in
    journal_pending_add st 0;
    (* snapshot-then-replay: the reloaded cache answers replayed
       fingerprints without re-solving, and replayed solves warm-start
       off their snapshot neighbours *)
    (match cfg.snapshot_path with
    | None -> ()
    | Some path -> (
      match Cache.load_into st.cache ~path with
      | Ok { Cache.entries = 0; _ } -> ()
      | Ok { Cache.entries; age_s } -> st.emit (Snapshot_loaded { entries; age_s })
      | Error msg -> warn st msg));
    (match journal_recovered with
    | Some (_, recovered) -> replay_journal st recovered
    | None -> ());
    match listener_of_address cfg.address with
    | Error _ as e ->
      Option.iter Journal.close st.journal;
      e
    | Ok listen_fd ->
      let set_drain reason = if st.draining = None then st.draining <- Some reason in
      let old_term =
        Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> set_drain "SIGTERM"))
      in
      let old_int =
        Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> set_drain "SIGINT"))
      in
      let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
      let serial = ref 0 in
      st.emit (Listening { address = address_to_string cfg.address });
      let accept_new () =
        match Unix.accept listen_fd with
        | fd, _ ->
          incr serial;
          let conn =
            { fd; serial = !serial; inbox = Buffer.create 512; alive = true; closing = false }
          in
          st.conns <- conn :: st.conns;
          Obs.Metrics.set st.conns_g (float_of_int (List.length st.conns));
          st.emit (Connected { conn = conn.serial })
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
          ()
      in
      let prune () =
        let dead, live = List.partition (fun c -> not c.alive) st.conns in
        List.iter (close_conn st) dead;
        if dead <> [] then begin
          st.conns <- live;
          Obs.Metrics.set st.conns_g (float_of_int (List.length live))
        end
      in
      let rec loop () =
        if stop () then set_drain "stop callback";
        match st.draining with
        | Some _ -> ()
        | None ->
          (* block only when idle: with work queued, poll and get back
             to solving — the queue drains a batch per iteration *)
          let timeout = if Queue_guard.depth st.queue > 0 then 0. else 0.1 in
          (match
             Unix.select
               (listen_fd :: List.map (fun c -> c.fd) st.conns)
               [] [] timeout
           with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | ready, _, _ ->
            if List.mem listen_fd ready then accept_new ();
            List.iter
              (fun c -> if c.alive && List.mem c.fd ready then read_conn st c)
              st.conns);
          solve_batch st;
          maybe_compact st;
          maybe_snapshot st;
          List.iter (fun c -> if c.closing then c.alive <- false) st.conns;
          prune ();
          loop ()
      in
      loop ();
      let reason = match st.draining with Some r -> r | None -> "stopped" in
      st.emit (Draining { reason });
      (match Unix.close listen_fd with
      | () -> ()
      | exception Unix.Unix_error (_, _, _) -> ());
      (match cfg.address with
      | Unix_path path -> (
        match Unix.unlink path with
        | () -> ()
        | exception Unix.Unix_error (_, _, _) -> ())
      | Tcp _ -> ());
      (* answer everything already admitted before going dark *)
      while Queue_guard.depth st.queue > 0 do
        solve_batch st
      done;
      (* the shutdown snapshot: what the next incarnation warm-starts from *)
      save_snapshot st;
      List.iter (close_conn st) st.conns;
      st.conns <- [];
      Obs.Metrics.set st.conns_g 0.;
      Option.iter Journal.close st.journal;
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigpipe old_pipe;
      Ok ())
