type market = {
  capacity : float;
  price : float;
  cap : float;
  cps : Econ.Cp.t array;
}

type solve_params = { deadline_s : float option; max_evals : int option }

let no_params = { deadline_s = None; max_evals = None }

type request =
  | Solve of { id : string; market : market; params : solve_params }
  | Metrics of { prefix : string }
  | Metrics_prom of { prefix : string }
  | Chaos of { mode : Numerics.Fault.mode option }
  | Ping
  | Shutdown

type reject_reason =
  | Malformed_frame of string
  | Oversized_frame of { bytes : int; limit : int }
  | Bad_market of string
  | Unsupported of string
  | Chaos_disabled

let reject_to_string = function
  | Malformed_frame msg -> "malformed frame: " ^ msg
  | Oversized_frame { bytes; limit } ->
    Printf.sprintf "oversized frame: %d bytes (limit %d)" bytes limit
  | Bad_market msg -> "bad market: " ^ msg
  | Unsupported what -> "unsupported request: " ^ what
  | Chaos_disabled -> "chaos injection disabled on this server (start with --allow-chaos)"

type cache_source = Hit | Warm | Cold

let cache_source_name = function Hit -> "hit" | Warm -> "warm" | Cold -> "cold"

type solved = {
  subsidies : float array;
  phi : float;
  aggregate : float;
  revenue : float;
  converged : bool;
  sweeps : int;
  kkt_residual : float;
  cache : cache_source;
  solve_s : float;
}

type response =
  | Solved of { id : string; result : solved }
  | Degraded of { id : string; reason : string }
  | Shed of { id : string; depth : int; capacity : int }
  | Rejected of { id : string option; reason : reject_reason }
  | Metrics_snapshot of Obs.Json.t
  | Prom_text of string
  | Chaos_ack of { mode : string }
  | Pong
  | Bye

let default_max_frame_bytes = 1024 * 1024

(* ------------------------------------------------------------------ *)
(* chaos mode names: the Runner.Chaos scenario vocabulary, plus "off" *)

let chaos_mode_name mode =
  match
    List.find_opt
      (fun s -> s.Runner.Chaos.mode = mode)
      Runner.Chaos.default_scenarios
  with
  | Some s -> s.Runner.Chaos.name
  | None -> "custom"

let chaos_mode_of_name name =
  if String.equal name "off" then Ok None
  else
    match
      List.find_opt
        (fun s -> String.equal s.Runner.Chaos.name name)
        Runner.Chaos.default_scenarios
    with
    | Some s -> Ok (Some s.Runner.Chaos.mode)
    | None ->
      Error
        (Printf.sprintf "unknown chaos mode %S (known: off, %s)" name
           (String.concat ", "
              (List.map (fun s -> s.Runner.Chaos.name) Runner.Chaos.default_scenarios)))

(* ------------------------------------------------------------------ *)
(* JSON helpers *)

open Obs.Json

let ( let* ) = Result.bind

let str_field name json =
  match member name json with
  | Some (Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S is not a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let num_field name json =
  match member name json with
  | Some v -> (
    match to_float v with
    | Some f when Float.is_finite f -> Ok f
    | Some _ -> Error (Printf.sprintf "field %S is not finite" name)
    | None -> Error (Printf.sprintf "field %S is not a number" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let opt_num_field name json =
  match member name json with
  | None | Some Null -> Ok None
  | Some v -> (
    match to_float v with
    | Some f when Float.is_finite f -> Ok (Some f)
    | _ -> Error (Printf.sprintf "field %S is not a finite number" name))

(* ------------------------------------------------------------------ *)
(* markets *)

let market_to_json m =
  Obj
    [
      ("capacity", Num m.capacity);
      ("price", Num m.price);
      ("cap", Num m.cap);
      ("cps", Experiments.Market_io.json_of_cps m.cps);
    ]

let market_of_json json =
  let* capacity = num_field "capacity" json in
  let* () =
    if capacity > 0. then Ok ()
    else Error (Printf.sprintf "capacity must be positive, got %g" capacity)
  in
  let* price = num_field "price" json in
  let* () =
    if price >= 0. then Ok ()
    else Error (Printf.sprintf "price must be non-negative, got %g" price)
  in
  let* cap = num_field "cap" json in
  let* () =
    if cap >= 0. then Ok ()
    else Error (Printf.sprintf "cap must be non-negative, got %g" cap)
  in
  match member "cps" json with
  | None -> Error "missing field \"cps\""
  | Some cps_json ->
    let* cps =
      Result.map_error Experiments.Market_io.error_to_string
        (Experiments.Market_io.cps_of_json ~path:"cps" cps_json)
    in
    Ok { capacity; price; cap; cps }

(* ------------------------------------------------------------------ *)
(* requests *)

let request_to_json = function
  | Solve { id; market; params } ->
    Obj
      ([ ("type", Str "solve"); ("id", Str id); ("market", market_to_json market) ]
      @ (match params.deadline_s with
        | Some d -> [ ("deadline_s", Num d) ]
        | None -> [])
      @
      match params.max_evals with
      | Some n -> [ ("max_evals", Num (float_of_int n)) ]
      | None -> [])
  | Metrics { prefix } ->
    Obj
      (("type", Str "metrics")
      :: (if String.equal prefix "" then [] else [ ("prefix", Str prefix) ]))
  | Metrics_prom { prefix } ->
    Obj
      (("type", Str "metrics_prom")
      :: (if String.equal prefix "" then [] else [ ("prefix", Str prefix) ]))
  | Chaos { mode } ->
    Obj
      [
        ("type", Str "chaos");
        ( "mode",
          Str (match mode with None -> "off" | Some m -> chaos_mode_name m) );
      ]
  | Ping -> Obj [ ("type", Str "ping") ]
  | Shutdown -> Obj [ ("type", Str "shutdown") ]

let request_to_line r = to_string (request_to_json r)

let request_of_json json =
  match str_field "type" json with
  | Error msg -> Error (Malformed_frame msg)
  | Ok "ping" -> Ok Ping
  | Ok "shutdown" -> Ok Shutdown
  | Ok "metrics" ->
    let prefix =
      match member "prefix" json with Some (Str s) -> s | _ -> ""
    in
    Ok (Metrics { prefix })
  | Ok "metrics_prom" ->
    let prefix =
      match member "prefix" json with Some (Str s) -> s | _ -> ""
    in
    Ok (Metrics_prom { prefix })
  | Ok "chaos" -> (
    match str_field "mode" json with
    | Error msg -> Error (Malformed_frame msg)
    | Ok name -> (
      match chaos_mode_of_name name with
      | Ok mode -> Ok (Chaos { mode })
      | Error msg -> Error (Malformed_frame msg)))
  | Ok "solve" -> (
    match str_field "id" json with
    | Error msg -> Error (Malformed_frame msg)
    | Ok id -> (
      match member "market" json with
      | None -> Error (Malformed_frame "missing field \"market\"")
      | Some market_json -> (
        match market_of_json market_json with
        | Error msg -> Error (Bad_market msg)
        | Ok market -> (
          let params () =
            let* deadline_s = opt_num_field "deadline_s" json in
            let* () =
              match deadline_s with
              | Some d when d <= 0. -> Error "deadline_s must be positive"
              | _ -> Ok ()
            in
            let* max_evals = opt_num_field "max_evals" json in
            let* max_evals =
              match max_evals with
              | None -> Ok None
              | Some f when f >= 1. -> Ok (Some (int_of_float f))
              | Some _ -> Error "max_evals must be >= 1"
            in
            Ok { deadline_s; max_evals }
          in
          match params () with
          | Error msg -> Error (Malformed_frame msg)
          | Ok params -> Ok (Solve { id; market; params })))))
  | Ok other -> Error (Unsupported other)

let request_of_line ?(max_frame_bytes = default_max_frame_bytes) line =
  let bytes = String.length line in
  if bytes > max_frame_bytes then Error (Oversized_frame { bytes; limit = max_frame_bytes })
  else
    match of_string line with
    | json -> request_of_json json
    | exception Parse_error msg -> Error (Malformed_frame msg)

(* ------------------------------------------------------------------ *)
(* responses *)

let solved_to_json s =
  Obj
    [
      ("subsidies", Arr (Array.to_list (Array.map (fun x -> Num x) s.subsidies)));
      ("phi", Num s.phi);
      ("aggregate", Num s.aggregate);
      ("revenue", Num s.revenue);
      ("converged", Bool s.converged);
      ("sweeps", Num (float_of_int s.sweeps));
      ("kkt_residual", Num s.kkt_residual);
      ("cache", Str (cache_source_name s.cache));
      ("solve_s", Num s.solve_s);
    ]

let reject_to_json reason =
  let kind, extra =
    match reason with
    | Malformed_frame detail -> ("malformed", [ ("detail", Str detail) ])
    | Oversized_frame { bytes; limit } ->
      ( "oversized",
        [ ("bytes", Num (float_of_int bytes)); ("limit", Num (float_of_int limit)) ] )
    | Bad_market detail -> ("bad-market", [ ("detail", Str detail) ])
    | Unsupported detail -> ("unsupported", [ ("detail", Str detail) ])
    | Chaos_disabled -> ("chaos-disabled", [])
  in
  Obj (("kind", Str kind) :: extra)

let response_to_json = function
  | Solved { id; result } ->
    Obj [ ("type", Str "solved"); ("id", Str id); ("result", solved_to_json result) ]
  | Degraded { id; reason } ->
    Obj [ ("type", Str "degraded"); ("id", Str id); ("reason", Str reason) ]
  | Shed { id; depth; capacity } ->
    Obj
      [
        ("type", Str "shed");
        ("id", Str id);
        ("depth", Num (float_of_int depth));
        ("capacity", Num (float_of_int capacity));
      ]
  | Rejected { id; reason } ->
    Obj
      (("type", Str "rejected")
      :: ((match id with Some id -> [ ("id", Str id) ] | None -> [])
         @ [ ("reason", reject_to_json reason) ]))
  | Metrics_snapshot snapshot -> Obj [ ("type", Str "metrics"); ("snapshot", snapshot) ]
  | Prom_text text -> Obj [ ("type", Str "metrics-prom"); ("text", Str text) ]
  | Chaos_ack { mode } -> Obj [ ("type", Str "chaos-ack"); ("mode", Str mode) ]
  | Pong -> Obj [ ("type", Str "pong") ]
  | Bye -> Obj [ ("type", Str "bye") ]

let response_to_line r = to_string (response_to_json r)

let solved_of_json json =
  let* subsidies =
    match member "subsidies" json with
    | Some (Arr items) ->
      List.fold_left
        (fun acc v ->
          let* acc = acc in
          match to_float v with
          | Some f -> Ok (f :: acc)
          | None -> Error "subsidies holds a non-number")
        (Ok []) items
      |> Result.map (fun l -> Array.of_list (List.rev l))
    | _ -> Error "missing or non-array \"subsidies\""
  in
  let* phi = num_field "phi" json in
  let* aggregate = num_field "aggregate" json in
  let* revenue = num_field "revenue" json in
  let* converged =
    match member "converged" json with
    | Some (Bool b) -> Ok b
    | _ -> Error "missing or non-boolean \"converged\""
  in
  let* sweeps = num_field "sweeps" json in
  let* kkt_residual = num_field "kkt_residual" json in
  let* cache =
    match str_field "cache" json with
    | Ok "hit" -> Ok Hit
    | Ok "warm" -> Ok Warm
    | Ok "cold" -> Ok Cold
    | Ok other -> Error (Printf.sprintf "unknown cache source %S" other)
    | Error msg -> Error msg
  in
  let* solve_s = num_field "solve_s" json in
  Ok
    {
      subsidies;
      phi;
      aggregate;
      revenue;
      converged;
      sweeps = int_of_float sweeps;
      kkt_residual;
      cache;
      solve_s;
    }

let reject_of_json json =
  match str_field "kind" json with
  | Error msg -> Error msg
  | Ok "malformed" ->
    let* detail = str_field "detail" json in
    Ok (Malformed_frame detail)
  | Ok "oversized" ->
    let* bytes = num_field "bytes" json in
    let* limit = num_field "limit" json in
    Ok (Oversized_frame { bytes = int_of_float bytes; limit = int_of_float limit })
  | Ok "bad-market" ->
    let* detail = str_field "detail" json in
    Ok (Bad_market detail)
  | Ok "unsupported" ->
    let* detail = str_field "detail" json in
    Ok (Unsupported detail)
  | Ok "chaos-disabled" -> Ok Chaos_disabled
  | Ok other -> Error (Printf.sprintf "unknown reject kind %S" other)

let response_of_json json =
  let* type_ = str_field "type" json in
  match type_ with
  | "pong" -> Ok Pong
  | "bye" -> Ok Bye
  | "solved" ->
    let* id = str_field "id" json in
    let* result =
      match member "result" json with
      | Some r -> solved_of_json r
      | None -> Error "missing field \"result\""
    in
    Ok (Solved { id; result })
  | "degraded" ->
    let* id = str_field "id" json in
    let* reason = str_field "reason" json in
    Ok (Degraded { id; reason })
  | "shed" ->
    let* id = str_field "id" json in
    let* depth = num_field "depth" json in
    let* capacity = num_field "capacity" json in
    Ok (Shed { id; depth = int_of_float depth; capacity = int_of_float capacity })
  | "rejected" ->
    let id = match member "id" json with Some (Str s) -> Some s | _ -> None in
    let* reason =
      match member "reason" json with
      | Some r -> reject_of_json r
      | None -> Error "missing field \"reason\""
    in
    Ok (Rejected { id; reason })
  | "metrics" -> (
    match member "snapshot" json with
    | Some snapshot -> Ok (Metrics_snapshot snapshot)
    | None -> Error "missing field \"snapshot\"")
  | "metrics-prom" ->
    let* text = str_field "text" json in
    Ok (Prom_text text)
  | "chaos-ack" ->
    let* mode = str_field "mode" json in
    Ok (Chaos_ack { mode })
  | other -> Error (Printf.sprintf "unknown response type %S" other)

let response_of_line line =
  match of_string line with
  | json -> response_of_json json
  | exception Parse_error msg -> Error ("malformed response frame: " ^ msg)
