type 'a t = {
  limit : int;
  q : 'a Queue.t;
  mutable shed : int;
  depth_g : Obs.Metrics.gauge;
  shed_c : Obs.Metrics.counter;
}

type 'a admit = Admitted | Refused of { depth : int; capacity : int }

let create ~capacity =
  {
    limit = max 1 capacity;
    q = Queue.create ();
    shed = 0;
    depth_g = Obs.Metrics.gauge "service.queue.depth";
    shed_c = Obs.Metrics.counter "service.queue.shed";
  }

let depth t = Queue.length t.q
let capacity t = t.limit
let shed_count t = t.shed

let admit t item =
  let d = Queue.length t.q in
  if d >= t.limit then begin
    t.shed <- t.shed + 1;
    Obs.Metrics.incr t.shed_c;
    Refused { depth = d; capacity = t.limit }
  end
  else begin
    Queue.add item t.q;
    Obs.Metrics.set t.depth_g (float_of_int (d + 1));
    Admitted
  end

let take ?max:bound t =
  let n =
    match bound with None -> Queue.length t.q | Some m -> min m (Queue.length t.q)
  in
  let rec go k acc =
    if k <= 0 then List.rev acc else go (k - 1) (Queue.pop t.q :: acc)
  in
  let items = go n [] in
  Obs.Metrics.set t.depth_g (float_of_int (Queue.length t.q));
  items
