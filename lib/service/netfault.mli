(** Deterministic client-side network fault injection.

    A plan is a seeded stream of per-operation decisions — drop this
    connect, tear that frame mid-write, delay or blackhole this read —
    consulted by {!Client} when one is attached. Faults are injected
    on the client side of the socket, which is where partitions and
    slow peers are observed in practice, so the pool's retry, failover
    and circuit-breaker machinery is exercised without patching the
    daemon. Decisions draw from a {!Numerics.Rng} stream: the same
    seed and the same call sequence reproduce the same fault schedule,
    which is what makes [loadgen --chaos-net] runs and the fleet tests
    replayable.

    A plan is plain mutable state owned by its creator (no process
    globals); share one across every client of a run so the injected
    counts in [service.netfault.*] describe the whole run. *)

type t

val create :
  ?drop_conn_p:float ->
  ?torn_write_p:float ->
  ?delay_read_p:float ->
  ?delay_s:float ->
  ?blackhole:string list ->
  seed:int64 ->
  unit ->
  t
(** [drop_conn_p] — probability a [connect] is refused; [torn_write_p]
    — probability a frame write is cut mid-frame and the connection
    killed; [delay_read_p]/[delay_s] — probability (and duration) of a
    stall injected before a read; [blackhole] — endpoint strings (as
    {!Server.address_to_string}) whose reads never complete.
    Probabilities default to 0, [delay_s] to 10ms. *)

val connect_decision : t -> endpoint:string -> [ `Proceed | `Refuse ]

val send_decision : t -> [ `Proceed | `Torn of float ]
(** [`Torn f] — write only the fraction [f] (in (0, 1)) of the frame,
    then kill the connection. *)

val read_decision : t -> endpoint:string -> [ `Proceed | `Delay of float | `Blackhole ]
(** [`Blackhole] — the read never completes; the client burns its
    deadline and reports a timeout. *)

type stats = { dropped : int; torn : int; delayed : int; blackholed : int }

val stats : t -> stats
(** Injected-fault counts so far (also in the [service.netfault.*]
    counters). *)

val describe : t -> string
(** One-line parameter summary for logs and CLI banners. *)
