(** Content-addressed equilibrium cache with warm-start seeding.

    Two levels of reuse, both keyed off a canonical market rendering:

    - {b Exact}: the full fingerprint (capacity, price, cap and every
      CP parameter at [%.17g]) maps to the solved equilibrium; a
      repeated request is answered without touching the solver.
    - {b Neighbour}: the population fingerprint (CPs only) groups
      markets that differ only in [(price, cap, capacity)]; a miss
      whose population is known seeds {!Subsidization.Nash.solve} from
      the nearest cached equilibrium's subsidy profile instead of the
      zero profile, cutting the best-response sweeps (and therefore
      objective evaluations) for sweep-shaped workloads.

    Bounded LRU: at most [capacity] entries, least-recently-used
    evicted. Hit/miss/warm counters live in the [service.cache.*]
    metrics. Not thread-safe by design: the server touches it only
    from the event-loop domain (solves on pool workers receive the
    warm-start profile by value). *)

type t

val create : capacity:int -> t
(** Raises nothing; a non-positive capacity is clamped to 1. *)

val fingerprint : Proto.market -> string
(** Canonical content address (hex digest) of the whole market. *)

val population_fingerprint : Proto.market -> string
(** Content address of the CP population alone. *)

val find : t -> fingerprint:string -> Proto.solved option
(** Exact lookup; refreshes recency and counts a hit or miss. *)

val warm_start : t -> Proto.market -> float array option
(** The subsidy profile of the cached equilibrium nearest to this
    market among same-population entries (normalized Euclidean
    distance over price/cap/capacity). [None] when no same-population
    entry exists. *)

val store : t -> market:Proto.market -> fingerprint:string -> Proto.solved -> unit
(** Insert (or refresh) the solved equilibrium, evicting the LRU entry
    beyond capacity. Degraded results are not stored. *)

val size : t -> int

type stats = { hits : int; misses : int; warm_seeds : int; evictions : int }

val stats : t -> stats

(** {2 Snapshot persistence}

    The whole cache as one [cache.v1] JSON document — every entry's
    scalar knobs, population fingerprint, recency tick and solved
    payload (wire shape) — so a restarted daemon warm-starts its
    keyspace instead of re-solving it. Snapshot-then-replay: the
    server loads the snapshot {e before} journal replay, so replayed
    requests hit the reloaded entries. *)

val save : t -> path:string -> (int, string) result
(** Atomic, durable ({!Report.Fsio.write_atomic}) write; returns the
    number of entries written and zeroes the
    [service.cache.snapshot_age_s] gauge. *)

type loaded = { entries : int; age_s : float }

val load_into : t -> path:string -> (loaded, string) result
(** Merge a snapshot into this cache, preserving the snapshot's
    relative LRU order (oldest re-inserted first) and evicting beyond
    capacity. A missing file loads zero entries; a corrupt one is an
    [Error] (the caller logs and starts cold). Sets the snapshot-age
    gauge from the document's save timestamp. *)
