type config = {
  retry : Runner.Supervisor.retry;
  breaker_threshold : int;
  breaker_cooldown_s : float;
  timeout_s : float;
  deadline_s : float option;
  seed : int64;
}

let default_config =
  {
    retry =
      Runner.Supervisor.retry ~max_attempts:2 ~backoff_s:0.025 ~multiplier:2.
        ~jitter:0.5 ();
    breaker_threshold = 3;
    breaker_cooldown_s = 0.5;
    timeout_s = 10.;
    deadline_s = None;
    seed = 11L;
  }

type error =
  | Transport of Client.error
  | Shed of { depth : int; capacity : int }
  | Rejected of Proto.reject_reason
  | Degraded of string
  | No_shard_available

let error_to_string = function
  | Transport e -> Client.error_to_string e
  | Shed { depth; capacity } ->
    Printf.sprintf "shed on every live shard (queue %d/%d)" depth capacity
  | Rejected reason -> "rejected: " ^ Proto.reject_to_string reason
  | Degraded reason -> "degraded: " ^ reason
  | No_shard_available -> "no shard available (every breaker open)"

type breaker = Closed | Open of { since : float } | Half_open

let breaker_name = function
  | Closed -> "closed"
  | Open _ -> "open"
  | Half_open -> "half-open"

let breaker_rank = function Closed -> 0. | Half_open -> 1. | Open _ -> 2.

type member = {
  shard : Shard.shard;
  mutable client : Client.t option;
  mutable breaker : breaker;
  mutable consecutive : int;
  mutable requests : int;
  mutable failures : int;
  mutable trips : int;
  state_g : Obs.Metrics.gauge;
  trips_c : Obs.Metrics.counter;
  requests_c : Obs.Metrics.counter;
}

type t = {
  cfg : config;
  ring : Shard.t;
  members : (string * member) list;  (* keyed by shard name *)
  netfault : Netfault.t option;
  rng : Numerics.Rng.t;  (* backoff jitter *)
  mutable serial : int;  (* generated request ids *)
  mutable failovers : int;
  mutable retries : int;
  failovers_c : Obs.Metrics.counter;
  retries_c : Obs.Metrics.counter;
}

let create ?netfault ?(config = default_config) ring =
  let member (s : Shard.shard) =
    ( s.Shard.name,
      {
        shard = s;
        client = None;
        breaker = Closed;
        consecutive = 0;
        requests = 0;
        failures = 0;
        trips = 0;
        state_g =
          Obs.Metrics.gauge
            ~labels:[ ("shard", s.Shard.name) ]
            "service.pool.breaker.state";
        trips_c =
          Obs.Metrics.counter
            ~labels:[ ("shard", s.Shard.name) ]
            "service.pool.breaker.trips";
        requests_c =
          Obs.Metrics.counter
            ~labels:[ ("shard", s.Shard.name) ]
            "service.pool.requests";
      } )
  in
  {
    cfg = config;
    ring;
    members = List.map member (Shard.shards ring);
    netfault;
    rng = Numerics.Rng.create config.seed;
    serial = 0;
    failovers = 0;
    retries = 0;
    failovers_c = Obs.Metrics.counter "service.pool.failovers";
    retries_c = Obs.Metrics.counter "service.pool.retries";
  }

let ring t = t.ring

let member_of t (s : Shard.shard) = List.assoc s.Shard.name t.members

let set_breaker m b =
  m.breaker <- b;
  Obs.Metrics.set m.state_g (breaker_rank b)

let drop_client m =
  (match m.client with Some c -> Client.close c | None -> ());
  m.client <- None

(* Breaker admission; an open breaker past its cooldown transitions to
   half-open and admits the caller as the recovery probe. *)
let admits t m =
  match m.breaker with
  | Closed | Half_open -> true
  | Open { since } ->
    if Obs.Clock.elapsed ~since >= t.cfg.breaker_cooldown_s then begin
      set_breaker m Half_open;
      true
    end
    else false

let record_failure t m =
  m.failures <- m.failures + 1;
  m.consecutive <- m.consecutive + 1;
  Shard.mark_failed m.shard;
  drop_client m;
  let trip () =
    m.trips <- m.trips + 1;
    Obs.Metrics.incr m.trips_c;
    set_breaker m (Open { since = Obs.Clock.now () })
  in
  match m.breaker with
  | Half_open -> trip ()  (* the probe failed: back to open, new cooldown *)
  | Closed when m.consecutive >= t.cfg.breaker_threshold -> trip ()
  | Closed | Open _ -> ()

let record_success m =
  m.consecutive <- 0;
  Shard.mark_ok m.shard;
  match m.breaker with Closed -> () | Half_open | Open _ -> set_breaker m Closed

let get_client t m =
  match m.client with
  | Some c when Client.is_alive c -> Ok c
  | Some _ | None ->
    drop_client m;
    (match Client.connect ?netfault:t.netfault m.shard.Shard.address with
    | Ok c ->
      m.client <- Some c;
      Ok c
    | Error _ as e -> e)

(* One send + read on one shard. Any transport failure kills the
   connection: a response abandoned by a timed-out attempt must never
   be read as the answer to a later request. *)
let attempt t m request =
  match get_client t m with
  | Error e -> `Transport e
  | Ok c -> (
    match Client.call ~timeout_s:t.cfg.timeout_s c request with
    | Error e ->
      drop_client m;
      `Transport e
    | Ok (Proto.Solved { result; _ }) -> `Answer result
    | Ok (Proto.Degraded { reason; _ }) -> `Degraded reason
    | Ok (Proto.Shed { depth; capacity; _ }) -> `Shed (depth, capacity)
    | Ok (Proto.Rejected { reason; _ }) -> `Rejected reason
    | Ok
        ( Proto.Metrics_snapshot _ | Proto.Prom_text _ | Proto.Chaos_ack _
        | Proto.Pong | Proto.Bye ) ->
      drop_client m;
      `Transport (Client.Torn_frame "unexpected response frame to solve"))

type answer = {
  solved : Proto.solved;
  shard : string;
  attempts : int;
  failovers : int;
}

let solve t ?id ?(params = Proto.no_params) market =
  let id =
    match id with
    | Some id -> id
    | None ->
      t.serial <- t.serial + 1;
      Printf.sprintf "pool-%d" t.serial
  in
  let request = Proto.Solve { id; market; params } in
  let key = Cache.fingerprint market in
  let prefs = Shard.route t.ring ~key in
  let started = Obs.Clock.now () in
  let deadline_left () =
    match t.cfg.deadline_s with
    | None -> infinity
    | Some d -> d -. Obs.Clock.elapsed ~since:started
  in
  let attempts = ref 0 in
  let failovers = ref 0 in
  let tried = ref false in
  let rec shard_loop last_err = function
    | [] ->
      Error
        (match last_err with
        | Some e -> e
        | None -> if !tried then Transport Client.Conn_closed else No_shard_available)
    | shard :: rest ->
      let m = member_of t shard in
      if not (admits t m) then shard_loop last_err rest
      else begin
        tried := true;
        attempt_loop m 1 rest
      end
  and attempt_loop m attempt_no rest =
    if deadline_left () <= 0. then
      Error
        (Transport
           (Client.Timeout { waited_s = Obs.Clock.elapsed ~since:started }))
    else begin
      incr attempts;
      match attempt t m request with
      | `Answer solved ->
        record_success m;
        m.requests <- m.requests + 1;
        Obs.Metrics.incr m.requests_c;
        Ok
          {
            solved;
            shard = m.shard.Shard.name;
            attempts = !attempts;
            failovers = !failovers;
          }
      | `Degraded reason ->
        (* the shard answered: it is healthy, the request is not *)
        record_success m;
        Error (Degraded reason)
      | `Rejected reason ->
        record_success m;
        Error (Rejected reason)
      | `Shed (depth, capacity) ->
        (* alive but overloaded: no breaker charge, try a replica *)
        record_success m;
        fail_over (Some (Shed { depth; capacity })) rest
      | `Transport e ->
        record_failure t m;
        let last_err = Some (Transport e) in
        if
          attempt_no < t.cfg.retry.Runner.Supervisor.max_attempts
          && admits t m
        then begin
          t.retries <- t.retries + 1;
          Obs.Metrics.incr t.retries_c;
          Unix.sleepf
            (Float.min (Float.max 0. (deadline_left ()))
               (Runner.Supervisor.backoff_delay ~rng:t.rng t.cfg.retry
                  ~attempt:attempt_no));
          attempt_loop m (attempt_no + 1) rest
        end
        else fail_over last_err rest
    end
  and fail_over last_err rest =
    if rest <> [] then begin
      incr failovers;
      t.failovers <- t.failovers + 1;
      Obs.Metrics.incr t.failovers_c
    end;
    shard_loop last_err rest
  in
  shard_loop None prefs

let probe t =
  List.iter
    (fun (_, m) ->
      let quiet =
        (match m.breaker with Closed -> true | Half_open | Open _ -> false)
        && m.shard.Shard.health = Shard.Up
      in
      if (not quiet) && admits t m then begin
        match get_client t m with
        | Error _ -> record_failure t m
        | Ok c -> (
          match Client.call ~timeout_s:2. c Proto.Ping with
          | Ok Proto.Pong -> record_success m
          | Ok _ | Error _ ->
            drop_client m;
            record_failure t m)
      end)
    t.members

let close t = List.iter (fun (_, m) -> drop_client m) t.members

type shard_stats = {
  name : string;
  health : Shard.health;
  breaker : string;
  requests : int;
  failures : int;
  trips : int;
}

type stats = { failovers : int; retries : int; shards : shard_stats list }

let stats (t : t) =
  {
    failovers = t.failovers;
    retries = t.retries;
    shards =
      List.map
        (fun (name, (m : member)) ->
          {
            name;
            health = m.shard.Shard.health;
            breaker = breaker_name m.breaker;
            requests = m.requests;
            failures = m.failures;
            trips = m.trips;
          })
        t.members;
  }
