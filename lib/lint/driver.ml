exception Parse_failed of string

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let lexbuf_of ~path src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  lexbuf

let parse_failed ~path what (loc : Location.t) =
  Parse_failed
    (Printf.sprintf "%s:%d:%d: %s" path loc.loc_start.Lexing.pos_lnum
       (loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol)
       what)

let parse_implementation ~path src =
  match Parse.implementation (lexbuf_of ~path src) with
  | str -> str
  | exception Syntaxerr.Error err ->
    raise (parse_failed ~path "syntax error" (Syntaxerr.location_of_error err))
  | exception Lexer.Error (_, loc) ->
    raise (parse_failed ~path "lexer error" loc)

let parse_interface ~path src =
  match Parse.interface (lexbuf_of ~path src) with
  | sg -> sg
  | exception Syntaxerr.Error err ->
    raise (parse_failed ~path "syntax error" (Syntaxerr.location_of_error err))
  | exception Lexer.Error (_, loc) ->
    raise (parse_failed ~path "lexer error" loc)

let lint_string ~path src =
  Rules.check_structure ~file:path (parse_implementation ~path src)

(* ------------------------------------------------------------------ *)
(* per-file analysis (phase 1) *)

(* compiler-libs' [Parse]/[Lexer] share global mutable lexer state, so
   parsing is serialized; file IO, digesting and the pure index/rule
   walks run concurrently on the pool *)
let parse_lock = Mutex.create ()

let cache_version =
  String.concat "|"
    (Sarif.version :: Sys.ocaml_version
    :: List.map (fun (r : Rules.t) -> r.Rules.id) Rules.all)

let failed_info ~path msg =
  {
    (Index.empty ~path ~module_name:(Index.module_name_of_path path)) with
    Index.parse_error = Some msg;
  }

let analyze_source ~path src =
  if Filename.check_suffix path ".mli" then
    match Mutex.protect parse_lock (fun () -> parse_interface ~path src) with
    | sg -> Index.of_interface ~path sg
    | exception Parse_failed msg -> failed_info ~path msg
  else
    match Mutex.protect parse_lock (fun () -> parse_implementation ~path src) with
    | str ->
      let info = Index.of_implementation ~path str in
      { info with Index.syntactic = Rules.check_structure ~file:path str }
    | exception Parse_failed msg -> failed_info ~path msg

(* ------------------------------------------------------------------ *)
(* project analysis (phase 2) *)

type report = {
  findings : Finding.t list;
  files_scanned : int;
  reparsed : int;
  parse_errors : (string * string) list;
}

(* the wrapping-library module of a source path, from the dir's dune
   file: "lib/core/scenario.ml" -> Some "Subsidization" *)
let dune_library_module src =
  let n = String.length src in
  let is_ident c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  let rec find i =
    if i + 5 > n then None
    else if String.equal (String.sub src i 5) "(name" then begin
      let j = ref (i + 5) in
      while !j < n && (src.[!j] = ' ' || src.[!j] = '\t' || src.[!j] = '\n') do
        incr j
      done;
      let k = ref !j in
      while !k < n && is_ident src.[!k] do incr k done;
      if !k > !j then Some (String.capitalize_ascii (String.sub src !j (!k - !j)))
      else None
    end
    else find (i + 1)
  in
  find 0

let lib_dir_of_path path =
  match String.split_on_char '/' path with
  | "lib" :: d :: _ :: _ -> Some d
  | _ -> None

let default_lib_of path =
  Option.map String.capitalize_ascii (lib_dir_of_path path)

let lib_of_root root =
  let memo = Hashtbl.create 16 in
  fun path ->
    match lib_dir_of_path path with
    | None -> None
    | Some d -> (
      match Hashtbl.find_opt memo d with
      | Some v -> v
      | None ->
        let v =
          let dune = Filename.concat root (Filename.concat ("lib/" ^ d) "dune") in
          let from_dune =
            if Sys.file_exists dune then dune_library_module (read_file dune)
            else None
          in
          match from_dune with
          | Some m -> Some m
          | None -> Some (String.capitalize_ascii d)
        in
        Hashtbl.replace memo d v;
        v)

let semantic_scope id path =
  match Rules.find id with Some r -> Rules.applies r path | None -> false

let finding_for id ~file (p : Index.pos) msg =
  let severity =
    match Rules.find id with
    | Some r -> r.Rules.severity
    | None -> Finding.Error
  in
  Finding.v ~rule:id ~severity ~file ~line:p.Index.line ~col:p.Index.col
    ~end_line:p.Index.end_line ~end_col:p.Index.end_col msg

let unused_suppression_id = "UNUSED-SUPPRESSION"
let parse_error_id = "PARSE-ERROR"

(* the full phase-2 pipeline over the (possibly cache-served) file
   indexes; recomputed every run, so warm and cold runs agree *)
let analyze ~lib_of ~files infos =
  let parse_errors =
    List.filter_map
      (fun (i : Index.file_info) ->
        Option.map (fun m -> (i.Index.path, m)) i.Index.parse_error)
      infos
  in
  let parse_findings =
    List.map
      (fun (path, msg) ->
        finding_for parse_error_id ~file:path Index.no_pos
          (Printf.sprintf
             "file does not parse, so no other rule can see it: %s" msg))
      parse_errors
  in
  let syntactic = List.concat_map (fun i -> i.Index.syntactic) infos in
  let mli_findings = Rules.mli_required ~files in
  let proj = Callgraph.make_project ~lib_of infos in
  let exn_findings, exn_used =
    Semantic_rules.exn_escape proj
      ~scope:(semantic_scope Semantic_rules.exn_escape_id)
  in
  let sync_findings =
    Semantic_rules.sync_discipline proj
      ~scope:(semantic_scope Semantic_rules.sync_discipline_id)
  in
  (* line-scoped [@sublint.allow] filtering for everything else *)
  let suppr = Hashtbl.create 16 in
  List.iter
    (fun (i : Index.file_info) ->
      let ok =
        List.filter (fun s -> s.Index.malformed = None) i.Index.suppressions
      in
      if ok <> [] then Hashtbl.replace suppr i.Index.path ok)
    infos;
  let used = ref exn_used in
  let mark file (s : Index.suppression) =
    if not (List.mem (file, s.Index.s_pos) !used) then
      used := (file, s.Index.s_pos) :: !used
  in
  let keep (f : Finding.t) =
    match Hashtbl.find_opt suppr f.Finding.file with
    | None -> true
    | Some ss -> (
      match
        List.find_opt
          (fun (s : Index.suppression) ->
            String.equal s.Index.s_rule f.Finding.rule
            && s.Index.line_lo <= f.Finding.line
            && f.Finding.line <= s.Index.line_hi)
          ss
      with
      | Some s ->
        mark f.Finding.file s;
        false
      | None -> true)
  in
  let kept =
    List.filter keep (syntactic @ mli_findings @ exn_findings @ sync_findings)
  in
  let suppression_findings =
    List.concat_map
      (fun (i : Index.file_info) ->
        List.filter_map
          (fun (s : Index.suppression) ->
            match s.Index.malformed with
            | Some msg ->
              Some
                (finding_for unused_suppression_id ~file:i.Index.path
                   s.Index.s_pos
                   (Printf.sprintf "malformed [@sublint.allow]: %s" msg))
            | None ->
              if List.mem (i.Index.path, s.Index.s_pos) !used then None
              else
                Some
                  (finding_for unused_suppression_id ~file:i.Index.path
                     s.Index.s_pos
                     (match Rules.find s.Index.s_rule with
                     | None ->
                       Printf.sprintf
                         "suppression names unknown rule %S; remove or fix it"
                         s.Index.s_rule
                     | Some _ ->
                       Printf.sprintf
                         "suppression for %s never matched a finding this \
                          run; the violation is gone — remove the attribute"
                         s.Index.s_rule)))
          i.Index.suppressions)
      infos
  in
  let findings =
    List.stable_sort Finding.compare
      (kept @ parse_findings @ suppression_findings)
  in
  (findings, parse_errors)

(* ------------------------------------------------------------------ *)
(* drivers *)

let rec walk root rel acc =
  let dir = if rel = "" then root else Filename.concat root rel in
  if not (Sys.file_exists dir && Sys.is_directory dir) then acc
  else
    Sys.readdir dir |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if String.equal name "_build" || (String.length name > 0 && name.[0] = '.')
           then acc
           else begin
             let rel' = if rel = "" then name else rel ^ "/" ^ name in
             let full = Filename.concat root rel' in
             if Sys.is_directory full then walk root rel' acc
             else if
               Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"
             then rel' :: acc
             else acc
           end)
         acc

let scan ?cache ~root ~dirs () =
  let files = List.fold_left (fun acc d -> walk root d acc) [] dirs in
  let files = List.sort String.compare files in
  let reparsed = Atomic.make 0 in
  let analyze_one rel =
    let src = read_file (Filename.concat root rel) in
    match cache with
    | None ->
      Atomic.incr reparsed;
      analyze_source ~path:rel src
    | Some c -> (
      let digest = Digest.to_hex (Digest.string src) in
      match Cache.find c ~path:rel ~digest with
      | Some info -> info
      | None ->
        Atomic.incr reparsed;
        let info = analyze_source ~path:rel src in
        Cache.add c ~path:rel ~digest info;
        info)
  in
  (* Pool.map returns results in index order: the file list is sorted,
     so the index (and everything derived from it) is deterministic at
     any --jobs *)
  let infos =
    Array.to_list
      (Parallel.Pool.map (Parallel.Runtime.pool ()) analyze_one
         (Array.of_list files))
  in
  let findings, parse_errors = analyze ~lib_of:(lib_of_root root) ~files infos in
  {
    findings;
    files_scanned = List.length files;
    reparsed = Atomic.get reparsed;
    parse_errors;
  }

let analyze_sources ?(lib_of = default_lib_of) sources =
  let sources =
    List.sort (fun (a, _) (b, _) -> String.compare a b) sources
  in
  let files = List.map fst sources in
  let infos = List.map (fun (path, src) -> analyze_source ~path src) sources in
  let findings, parse_errors = analyze ~lib_of ~files infos in
  {
    findings;
    files_scanned = List.length files;
    reparsed = List.length files;
    parse_errors;
  }

(* ------------------------------------------------------------------ *)
(* rendering *)

let with_freshness report ~drift =
  let fresh = List.map fst drift.Baseline.fresh in
  List.map (fun f -> (f, List.mem f fresh)) report.findings

let findings_table flagged =
  let table =
    Report.Table.make ~columns:[ "location"; "rule"; "severity"; "state"; "message" ]
  in
  List.iter
    (fun ((f : Finding.t), is_fresh) ->
      Report.Table.add_row table
        [
          Printf.sprintf "%s:%d:%d" f.Finding.file f.Finding.line f.Finding.col;
          f.Finding.rule;
          Finding.severity_name f.Finding.severity;
          (if is_fresh then "NEW" else "baselined");
          f.Finding.message;
        ])
    flagged;
  table

let count_severity findings sev =
  List.length (List.filter (fun (f : Finding.t) -> f.Finding.severity = sev) findings)

let summary report ~drift =
  let errors = count_severity report.findings Finding.Error in
  let warnings = count_severity report.findings Finding.Warning in
  let fresh = List.length drift.Baseline.fresh in
  let stale = List.length drift.Baseline.stale in
  Printf.sprintf
    "sublint: %d files (%d reparsed), %d findings (%d errors, %d warnings): \
     %d new, %d baselined%s%s"
    report.files_scanned report.reparsed
    (List.length report.findings)
    errors warnings fresh
    (List.length report.findings - fresh)
    (if stale > 0 then
       Printf.sprintf
         "; %d stale baseline entr%s (run --prune-baseline to drop them)"
         stale
         (if stale = 1 then "y" else "ies")
     else "")
    (if report.parse_errors <> [] then
       Printf.sprintf "; %d files failed to parse" (List.length report.parse_errors)
     else "")

let json_report ~root report ~drift =
  let open Obs.Json in
  let rules =
    Arr
      (List.map
         (fun (r : Rules.t) ->
           Obj
             [
               ("id", Str r.Rules.id);
               ("severity", Str (Finding.severity_name r.Rules.severity));
               ("doc", Str r.Rules.doc);
               ( "applies_to",
                 Arr (List.map (fun p -> Str p) r.Rules.scope.Rules.applies_to) );
               ("exempt", Arr (List.map (fun p -> Str p) r.Rules.scope.Rules.exempt));
               ("baselinable", Bool r.Rules.baselinable);
             ])
         Rules.all)
  in
  let findings =
    Arr
      (List.map
         (fun ((f : Finding.t), is_fresh) ->
           Obj
             [
               ("rule", Str f.Finding.rule);
               ("severity", Str (Finding.severity_name f.Finding.severity));
               ("file", Str f.Finding.file);
               ("line", Num (float_of_int f.Finding.line));
               ("col", Num (float_of_int f.Finding.col));
               ("end_line", Num (float_of_int f.Finding.end_line));
               ("end_col", Num (float_of_int f.Finding.end_col));
               ("message", Str f.Finding.message);
               ("fresh", Bool is_fresh);
             ])
         (with_freshness report ~drift))
  in
  let stale =
    Arr
      (List.map
         (fun (rule, file, allowed, actual) ->
           Obj
             [
               ("rule", Str rule);
               ("file", Str file);
               ("allowed", Num (float_of_int allowed));
               ("actual", Num (float_of_int actual));
             ])
         drift.Baseline.stale)
  in
  let parse_errors =
    Arr
      (List.map
         (fun (file, msg) -> Obj [ ("file", Str file); ("message", Str msg) ])
         report.parse_errors)
  in
  (* no cache statistics in here: lint.v1 bytes must be identical
     between a cold and a warm run on the same tree *)
  Obj
    [
      ("schema", Str "lint.v1");
      ("root", Str root);
      ("files_scanned", Num (float_of_int report.files_scanned));
      ("rules", rules);
      ("findings", findings);
      ("stale_baseline", stale);
      ("parse_errors", parse_errors);
      ( "summary",
        Obj
          [
            ("total", Num (float_of_int (List.length report.findings)));
            ( "errors",
              Num (float_of_int (count_severity report.findings Finding.Error)) );
            ( "warnings",
              Num (float_of_int (count_severity report.findings Finding.Warning)) );
            ("fresh", Num (float_of_int (List.length drift.Baseline.fresh)));
            ( "baselined",
              Num
                (float_of_int
                   (List.length report.findings - List.length drift.Baseline.fresh))
            );
            ("stale", Num (float_of_int (List.length drift.Baseline.stale)));
            ("clean", Bool (Baseline.clean drift));
          ] );
    ]
