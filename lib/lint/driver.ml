exception Parse_failed of string

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let lexbuf_of ~path src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  lexbuf

let parse_failed ~path what (loc : Location.t) =
  Parse_failed
    (Printf.sprintf "%s:%d:%d: %s" path loc.loc_start.Lexing.pos_lnum
       (loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol)
       what)

let parse_implementation ~path src =
  match Parse.implementation (lexbuf_of ~path src) with
  | str -> str
  | exception Syntaxerr.Error err ->
    raise (parse_failed ~path "syntax error" (Syntaxerr.location_of_error err))
  | exception Lexer.Error (_, loc) ->
    raise (parse_failed ~path "lexer error" loc)

let parse_interface ~path src =
  match Parse.interface (lexbuf_of ~path src) with
  | sg -> sg
  | exception Syntaxerr.Error err ->
    raise (parse_failed ~path "syntax error" (Syntaxerr.location_of_error err))
  | exception Lexer.Error (_, loc) ->
    raise (parse_failed ~path "lexer error" loc)

let lint_string ~path src =
  Rules.check_structure ~file:path (parse_implementation ~path src)

type report = {
  findings : Finding.t list;
  files_scanned : int;
  parse_errors : (string * string) list;
}

let rec walk root rel acc =
  let dir = if rel = "" then root else Filename.concat root rel in
  if not (Sys.file_exists dir && Sys.is_directory dir) then acc
  else
    Sys.readdir dir |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if String.equal name "_build" || (String.length name > 0 && name.[0] = '.')
           then acc
           else begin
             let rel' = if rel = "" then name else rel ^ "/" ^ name in
             let full = Filename.concat root rel' in
             if Sys.is_directory full then walk root rel' acc
             else if
               Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"
             then rel' :: acc
             else acc
           end)
         acc

let scan ~root ~dirs =
  let files = List.fold_left (fun acc d -> walk root d acc) [] dirs in
  let files = List.sort String.compare files in
  let findings = ref (Rules.mli_required ~files) in
  let parse_errors = ref [] in
  let scanned = ref 0 in
  List.iter
    (fun rel ->
      let src = read_file (Filename.concat root rel) in
      incr scanned;
      match
        if Filename.check_suffix rel ".mli" then
          ignore (parse_interface ~path:rel src)
        else findings := lint_string ~path:rel src @ !findings
      with
      | () -> ()
      | exception Parse_failed msg -> parse_errors := (rel, msg) :: !parse_errors)
    files;
  {
    findings = List.stable_sort Finding.compare !findings;
    files_scanned = !scanned;
    parse_errors = List.rev !parse_errors;
  }

let with_freshness report ~drift =
  let fresh = List.map fst drift.Baseline.fresh in
  List.map (fun f -> (f, List.mem f fresh)) report.findings

let findings_table flagged =
  let table =
    Report.Table.make ~columns:[ "location"; "rule"; "severity"; "state"; "message" ]
  in
  List.iter
    (fun ((f : Finding.t), is_fresh) ->
      Report.Table.add_row table
        [
          Printf.sprintf "%s:%d:%d" f.Finding.file f.Finding.line f.Finding.col;
          f.Finding.rule;
          Finding.severity_name f.Finding.severity;
          (if is_fresh then "NEW" else "baselined");
          f.Finding.message;
        ])
    flagged;
  table

let count_severity findings sev =
  List.length (List.filter (fun (f : Finding.t) -> f.Finding.severity = sev) findings)

let summary report ~drift =
  let errors = count_severity report.findings Finding.Error in
  let warnings = count_severity report.findings Finding.Warning in
  let fresh = List.length drift.Baseline.fresh in
  let stale = List.length drift.Baseline.stale in
  Printf.sprintf
    "sublint: %d files, %d findings (%d errors, %d warnings): %d new, %d \
     baselined%s%s"
    report.files_scanned
    (List.length report.findings)
    errors warnings fresh
    (List.length report.findings - fresh)
    (if stale > 0 then
       Printf.sprintf "; %d stale baseline entr%s (run --update-baseline)" stale
         (if stale = 1 then "y" else "ies")
     else "")
    (if report.parse_errors <> [] then
       Printf.sprintf "; %d files failed to parse" (List.length report.parse_errors)
     else "")

let json_report ~root report ~drift =
  let open Obs.Json in
  let rules =
    Arr
      (List.map
         (fun (r : Rules.t) ->
           Obj
             [
               ("id", Str r.Rules.id);
               ("severity", Str (Finding.severity_name r.Rules.severity));
               ("doc", Str r.Rules.doc);
               ( "applies_to",
                 Arr (List.map (fun p -> Str p) r.Rules.scope.Rules.applies_to) );
               ("exempt", Arr (List.map (fun p -> Str p) r.Rules.scope.Rules.exempt));
             ])
         Rules.all)
  in
  let findings =
    Arr
      (List.map
         (fun ((f : Finding.t), is_fresh) ->
           Obj
             [
               ("rule", Str f.Finding.rule);
               ("severity", Str (Finding.severity_name f.Finding.severity));
               ("file", Str f.Finding.file);
               ("line", Num (float_of_int f.Finding.line));
               ("col", Num (float_of_int f.Finding.col));
               ("end_line", Num (float_of_int f.Finding.end_line));
               ("end_col", Num (float_of_int f.Finding.end_col));
               ("message", Str f.Finding.message);
               ("fresh", Bool is_fresh);
             ])
         (with_freshness report ~drift))
  in
  let stale =
    Arr
      (List.map
         (fun (rule, file, allowed, actual) ->
           Obj
             [
               ("rule", Str rule);
               ("file", Str file);
               ("allowed", Num (float_of_int allowed));
               ("actual", Num (float_of_int actual));
             ])
         drift.Baseline.stale)
  in
  let parse_errors =
    Arr
      (List.map
         (fun (file, msg) -> Obj [ ("file", Str file); ("message", Str msg) ])
         report.parse_errors)
  in
  Obj
    [
      ("schema", Str "lint.v1");
      ("root", Str root);
      ("files_scanned", Num (float_of_int report.files_scanned));
      ("rules", rules);
      ("findings", findings);
      ("stale_baseline", stale);
      ("parse_errors", parse_errors);
      ( "summary",
        Obj
          [
            ("total", Num (float_of_int (List.length report.findings)));
            ( "errors",
              Num (float_of_int (count_severity report.findings Finding.Error)) );
            ( "warnings",
              Num (float_of_int (count_severity report.findings Finding.Warning)) );
            ("fresh", Num (float_of_int (List.length drift.Baseline.fresh)));
            ( "baselined",
              Num
                (float_of_int
                   (List.length report.findings - List.length drift.Baseline.fresh))
            );
            ("stale", Num (float_of_int (List.length drift.Baseline.stale)));
            ("clean", Bool (Baseline.clean drift));
          ] );
    ]
