(** The sublint rule set: the solver-layer invariants from DESIGN §8/§9
    expressed as syntactic checks over the Parsetree.

    Each rule carries a stable id (the baseline key), a severity, a
    one-line doc string and a path scope: the directory prefixes it
    applies to plus an explicit allowlist of sanctioned files (e.g.
    [lib/obs/clock.ml] is the one place allowed to call
    [Unix.gettimeofday]). Scoping is purely prefix-based on
    repo-relative '/'-separated paths, so the same rule set gives the
    same answer on every machine. *)

type scope = {
  applies_to : string list;
      (** path prefixes the rule covers; never empty *)
  exempt : string list;
      (** allowlisted path prefixes (sanctioned implementation sites) *)
}

type t = {
  id : string;
  severity : Finding.severity;
  doc : string;
  scope : scope;
  baselinable : bool;
      (** count-ratchet rules can be grandfathered in [lint.baseline];
          the semantic/structural rules (EXN-ESCAPE, SYNC-DISCIPLINE,
          PARSE-ERROR, UNUSED-SUPPRESSION) cannot — violations are
          fixed or explicitly suppressed with a reason, never
          baselined ([--update-baseline] filters them out) *)
}

val all : t list
(** Every rule, in reporting order: the syntactic set NO-BARE-RAISE,
    NO-SWALLOW, NO-RAW-CLOCK, NO-LIB-PRINT, NO-FLOAT-EQ, NO-OBJ-MAGIC,
    NO-UNSYNC-GLOBAL, NO-ADHOC-LOG, MLI-REQUIRED, then the semantic
    set EXN-ESCAPE and SYNC-DISCIPLINE (DESIGN §15, logic in
    {!Semantic_rules}) and the driver-level PARSE-ERROR and
    UNUSED-SUPPRESSION.

    NO-ADHOC-LOG is NO-LIB-PRINT's stderr twin: [prerr_*],
    [Printf.eprintf]/[Format.eprintf] and any mention of the [stderr]
    channel in [lib/] (outside [lib/obs/], where the log sinks live)
    bypass [Obs.Log] — its levels, sinks and rate limits — and are
    flagged.

    NO-UNSYNC-GLOBAL guards the parallel layer: a top-level [ref],
    [Hashtbl.create], [Queue]/[Stack]/[Buffer] or [Array.make] in
    [lib/] is process-global state that pool worker domains may reach
    concurrently. Such a binding must either carry a
    [[@@sync "how it is synchronized"]] note (checked syntactically,
    with a string payload) or be restructured around the inherently
    domain-safe constructions ([Atomic], [Mutex], [Condition],
    [Domain.DLS]), which are never flagged. [Array.init] and
    array/record literals are also exempt: they are the repo's
    constant-table idiom. *)

val find : string -> t option
(** Look a rule up by id. *)

val applies : t -> string -> bool
(** Does the rule cover this repo-relative path? True when some
    [applies_to] prefix matches and no [exempt] prefix does. *)

val allowed_exceptions : string list
(** Constructor names (last component) that NO-BARE-RAISE accepts in a
    [raise]: the typed solver taxonomy of DESIGN §8 ([Solver_error],
    [No_convergence], [No_bracket], [Budget_exceeded], [Poison]).
    Re-raising a caught exception variable is also always allowed. *)

val check_structure : file:string -> Parsetree.structure -> Finding.t list
(** Run every expression-level rule whose scope covers [file] over a
    parsed implementation; findings come back in source order. *)

val mli_required : files:string list -> Finding.t list
(** The file-level MLI-REQUIRED rule: one finding per in-scope [.ml]
    path in [files] with no sibling [.mli] in [files]. *)
