(* The content-digest incremental cache: path -> (digest, phase-1
   index record). The semantic phase is recomputed every run from the
   cached indexes, so a warm run on an unchanged tree re-parses zero
   files and still produces byte-identical reports.

   Entries are Marshal-plain (Index.file_info carries nothing from
   Parsetree/Location) and guarded by a version string covering the
   cache format, the rule set and the compiler, so any of those
   changing simply discards the cache. Lookups and inserts run from
   pool workers, hence the mutex. *)

let format_tag = "sublint-cache/1"

type persisted = {
  p_version : string;
  p_entries : (string * (string * Index.file_info)) list;
}

type t = {
  version : string;
  lock : Mutex.t;
  entries : (string, string * Index.file_info) Hashtbl.t;
}

let empty ~version =
  {
    version = format_tag ^ "/" ^ version;
    lock = Mutex.create ();
    entries = Hashtbl.create 256;
  }

let load ~version path =
  let t = empty ~version in
  if not (Sys.file_exists path) then t
  else begin
    (* a stale/corrupt/foreign cache is not an error — it is just a
       cold cache; only decode failures are absorbed, deliberately *)
    (match
       let ic = open_in_bin path in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () -> (Marshal.from_channel ic : persisted))
     with
    | p when String.equal p.p_version t.version ->
      List.iter (fun (k, v) -> Hashtbl.replace t.entries k v) p.p_entries
    | _ -> ()
    | exception Sys_error _ -> ()
    | exception End_of_file -> ()
    | exception Failure _ -> ());
    t
  end

let find t ~path ~digest =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.entries path with
      | Some (d, info) when String.equal d digest -> Some info
      | Some _ | None -> None)

let add t ~path ~digest info =
  Mutex.protect t.lock (fun () ->
      Hashtbl.replace t.entries path (digest, info))

let save t path =
  let p =
    Mutex.protect t.lock (fun () ->
        {
          p_version = t.version;
          p_entries =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.entries []
            |> List.sort (fun (a, _) (b, _) -> String.compare a b);
        })
  in
  Report.Fsio.write_atomic ~path (fun oc -> Marshal.to_channel oc p [])
