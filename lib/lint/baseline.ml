module Key = struct
  type t = string * string (* rule id, repo-relative path *)

  let compare (ra, fa) (rb, fb) =
    let c = String.compare fa fb in
    if c <> 0 then c else String.compare ra rb
end

module M = Map.Make (Key)

type t = int M.t

let empty = M.empty

let count t ~rule ~file =
  match M.find_opt (rule, file) t with Some n -> n | None -> 0

let total t = M.fold (fun _ n acc -> acc + n) t 0

let add key n t =
  M.update key (function Some m -> Some (m + n) | None -> Some n) t

let of_findings findings =
  List.fold_left
    (fun t (f : Finding.t) -> add (f.Finding.rule, f.Finding.file) 1 t)
    empty findings

let header =
  "# sublint baseline: grandfathered violation allowances, one\n\
   # \"<count> <rule> <path>\" per line. Regenerate deliberately with\n\
   #   dune exec bin/sublint/sublint.exe -- --update-baseline\n\
   # (never edit counts by hand to make CI pass).\n"

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  M.iter
    (fun (rule, file) n ->
      Buffer.add_string buf (Printf.sprintf "%d %s %s\n" n rule file))
    t;
  Buffer.contents buf

exception Malformed of string

let of_string s =
  let t = ref empty in
  String.split_on_char '\n' s
  |> List.iteri (fun i line ->
         let line = String.trim line in
         if String.length line > 0 && line.[0] <> '#' then
           match String.split_on_char ' ' line with
           | [ n; rule; file ] -> begin
             match int_of_string_opt n with
             | Some n when n > 0 -> t := add (rule, file) n !t
             | _ ->
               raise
                 (Malformed
                    (Printf.sprintf "line %d: bad count %S" (i + 1) n))
           end
           | _ ->
             raise
               (Malformed
                  (Printf.sprintf
                     "line %d: expected \"<count> <rule> <path>\", got %S"
                     (i + 1) line)));
  !t

let load ~path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    of_string s
  end
  else empty

let save ~path t =
  Report.Fsio.write_atomic_exn ~path (fun oc -> output_string oc (to_string t))

type drift = {
  fresh : (Finding.t * int) list;
  stale : (string * string * int * int) list;
}

let diff ~baseline findings =
  let actual = of_findings findings in
  (* walk findings in report order, letting each key's allowance absorb
     the first [allowed] findings; the overflow is fresh *)
  let seen = ref M.empty in
  let fresh =
    List.filter_map
      (fun (f : Finding.t) ->
        let key = (f.Finding.rule, f.Finding.file) in
        let k = match M.find_opt key !seen with Some k -> k | None -> 0 in
        seen := M.add key (k + 1) !seen;
        let allowed = count baseline ~rule:f.Finding.rule ~file:f.Finding.file in
        if k >= allowed then Some (f, allowed) else None)
      (List.stable_sort Finding.compare findings)
  in
  let stale =
    M.fold
      (fun (rule, file) allowed acc ->
        let n = count actual ~rule ~file in
        if n < allowed then (rule, file, allowed, n) :: acc else acc)
      baseline []
    |> List.rev
  in
  { fresh; stale }

let clean d = d.fresh = [] && d.stale = []

let prune baseline findings =
  let actual = of_findings findings in
  M.filter_map
    (fun (rule, file) allowed ->
      match min allowed (count actual ~rule ~file) with
      | 0 -> None
      | n -> Some n)
    baseline
