type scope = { applies_to : string list; exempt : string list }

type t = {
  id : string;
  severity : Finding.severity;
  doc : string;
  scope : scope;
  baselinable : bool;
      (* count-ratchet rules can be grandfathered in lint.baseline; the
         semantic/structural rules cannot — violations are fixed or
         explicitly suppressed with a reason, never baselined *)
}

(* lib/service joins the solver layers for NO-BARE-RAISE: a daemon that
   must stay up under faults cannot afford an untyped failwith escaping
   its event loop — errors there are typed responses, not exceptions
   (NO-SWALLOW and NO-UNSYNC-GLOBAL already cover it via "lib/") *)
let solver_layers = [ "lib/numerics/"; "lib/game/"; "lib/core/"; "lib/service/" ]
let everywhere = [ "lib/"; "bin/"; "bench/" ]

let no_bare_raise =
  {
    id = "NO-BARE-RAISE";
    severity = Finding.Error;
    doc =
      "solver layers must not fail via failwith/invalid_arg/assert false or \
       untyped raise; errors flow through the Result discipline, \
       preconditions through Numerics.Precondition";
    scope =
      {
        applies_to = solver_layers;
        exempt = [ "lib/numerics/precondition.ml" ];
      };
    baselinable = true;
  }

let no_swallow =
  {
    id = "NO-SWALLOW";
    severity = Finding.Error;
    doc =
      "no catch-all exception handlers in library code: a swallowed solver \
       exception becomes a wrong equilibrium, not an error; \
       lib/runner/supervisor.ml is the one sanctioned containment boundary \
       (it records the exception in the run manifest instead of dropping it)";
    scope = { applies_to = [ "lib/" ]; exempt = [ "lib/runner/supervisor.ml" ] };
    baselinable = true;
  }

let no_raw_clock =
  {
    id = "NO-RAW-CLOCK";
    severity = Finding.Error;
    doc = "Obs.Clock is the only sanctioned time source";
    scope = { applies_to = everywhere; exempt = [ "lib/obs/clock.ml" ] };
    baselinable = true;
  }

let no_lib_print =
  {
    id = "NO-LIB-PRINT";
    severity = Finding.Error;
    doc =
      "library code must not write to stdout implicitly; output goes through \
       Report/Obs.Export or a caller-supplied channel";
    scope = { applies_to = [ "lib/" ]; exempt = [ "lib/obs/export.ml" ] };
    baselinable = true;
  }

let no_float_eq =
  {
    id = "NO-FLOAT-EQ";
    severity = Finding.Warning;
    doc =
      "no =, <>, == or != against a float literal; numerically delicate \
       comparisons need an explicit tolerance";
    scope = { applies_to = everywhere; exempt = [] };
    baselinable = true;
  }

let no_obj_magic =
  {
    id = "NO-OBJ-MAGIC";
    severity = Finding.Error;
    doc = "Obj.magic defeats the type system";
    scope = { applies_to = everywhere; exempt = [] };
    baselinable = true;
  }

let no_unsync_global =
  {
    id = "NO-UNSYNC-GLOBAL";
    severity = Finding.Error;
    doc =
      "top-level mutable state (ref, Hashtbl.create, Queue/Stack/Buffer, \
       Array.make) in library code is process-global and reachable from pool \
       worker domains; guard it and document the discipline with \
       [@@sync \"...\"] or make it domain-local (Atomic/Mutex/Condition/\
       Domain.DLS constructions are inherently domain-safe and not flagged)";
    scope = { applies_to = [ "lib/" ]; exempt = [] };
    baselinable = true;
  }

let no_adhoc_log =
  {
    id = "NO-ADHOC-LOG";
    severity = Finding.Error;
    doc =
      "library code must not write to stderr directly (prerr_*, \
       Printf.eprintf, or the stderr channel); diagnostics go through \
       Obs.Log so sinks, levels and rate limits apply uniformly";
    scope = { applies_to = [ "lib/" ]; exempt = [ "lib/obs/" ] };
    baselinable = true;
  }

let mli_required_rule =
  {
    id = "MLI-REQUIRED";
    severity = Finding.Error;
    doc = "every lib/**/*.ml declares its interface in a sibling .mli";
    scope = { applies_to = [ "lib/" ]; exempt = [] };
    baselinable = true;
  }

(* ---- the semantic (phase-2) rules: metadata here, logic in
   Semantic_rules over the Index/Callgraph ------------------------- *)

let exn_escape_rule =
  {
    id = "EXN-ESCAPE";
    severity = Finding.Error;
    doc =
      "a raise reachable through the call graph from a function whose .mli \
       type returns ('a, _) result, and not absorbed behind a try/Result \
       boundary, breaks the typed-error contract; Invalid_argument (the \
       precondition idiom) is exempt";
    scope =
      {
        applies_to = [ "lib/numerics/"; "lib/core/"; "lib/service/" ];
        exempt = [];
      };
    baselinable = false;
  }

let sync_discipline_rule =
  {
    id = "SYNC-DISCIPLINE";
    severity = Finding.Error;
    doc =
      "every access to a [@@sync \"...[m]...\"]-annotated top-level mutable \
       binding must be lexically inside Mutex.protect m / with_lock m / a \
       local wrapper acquiring m, or in a *_unlocked helper (the documented \
       caller-holds-lock convention); the named mutex must exist in the \
       module";
    scope = { applies_to = [ "lib/" ]; exempt = [] };
    baselinable = false;
  }

let parse_error_rule =
  {
    id = "PARSE-ERROR";
    severity = Finding.Error;
    doc =
      "the compiler's parser rejects this source file; an unparseable file is \
       invisible to every other rule, so it is itself a finding, not an abort";
    scope = { applies_to = everywhere; exempt = [] };
    baselinable = false;
  }

let unused_suppression_rule =
  {
    id = "UNUSED-SUPPRESSION";
    severity = Finding.Warning;
    doc =
      "a [@sublint.allow \"RULE\" \"reason\"] that suppressed nothing this \
       run is stale (the violation was fixed, or the scope/rule id is wrong) \
       and must be removed; malformed payloads are also reported here";
    scope = { applies_to = everywhere; exempt = [] };
    baselinable = false;
  }

let all =
  [
    no_bare_raise;
    no_swallow;
    no_raw_clock;
    no_lib_print;
    no_float_eq;
    no_obj_magic;
    no_unsync_global;
    no_adhoc_log;
    mli_required_rule;
    exn_escape_rule;
    sync_discipline_rule;
    parse_error_rule;
    unused_suppression_rule;
  ]

let find id = List.find_opt (fun r -> String.equal r.id id) all

let applies r path =
  List.exists (fun p -> String.starts_with ~prefix:p path) r.scope.applies_to
  && not (List.exists (fun p -> String.starts_with ~prefix:p path) r.scope.exempt)

(* ---- identifier classification ---------------------------------- *)

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply _ -> []

let lid_name lid = String.concat "." (flatten_lid lid)

let last_component lid =
  match List.rev (flatten_lid lid) with [] -> "" | s :: _ -> s

let failwith_fns =
  [ "failwith"; "invalid_arg"; "Stdlib.failwith"; "Stdlib.invalid_arg" ]

let raise_fns =
  [ "raise"; "raise_notrace"; "Stdlib.raise"; "Stdlib.raise_notrace" ]

let allowed_exceptions =
  [ "Solver_error"; "No_convergence"; "No_bracket"; "Budget_exceeded"; "Poison" ]

let clock_fns = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

let print_fns =
  [
    "print_string";
    "print_endline";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "Stdlib.print_string";
    "Stdlib.print_endline";
    "Stdlib.print_newline";
    "Printf.printf";
    "Format.printf";
    "Format.print_string";
    "Format.print_newline";
  ]

let magic_fns = [ "Obj.magic" ]

(* direct stderr writers; bare [stderr] also fires (it only exists to be
   written to — [output_string stderr], [Format.formatter_of_out_channel
   stderr], ...) *)
let adhoc_log_fns =
  [
    "prerr_string";
    "prerr_endline";
    "prerr_newline";
    "prerr_char";
    "prerr_int";
    "prerr_float";
    "prerr_bytes";
    "Stdlib.prerr_string";
    "Stdlib.prerr_endline";
    "Stdlib.prerr_newline";
    "Printf.eprintf";
    "Format.eprintf";
    "stderr";
    "Stdlib.stderr";
  ]

(* creators of shared mutable state; Array.init and array/record
   literals are deliberately excluded — the repo's constant-table idiom
   — as are Atomic/Mutex/Condition/Domain.DLS, the sanctioned
   domain-safe constructions *)
let mutable_creators =
  [
    "ref";
    "Stdlib.ref";
    "Hashtbl.create";
    "Queue.create";
    "Stack.create";
    "Buffer.create";
    "Bytes.create";
    "Bytes.make";
    "Array.make";
    "Array.create_float";
  ]

let float_eq_ops = [ "="; "<>"; "=="; "!=" ]

let mem name l = List.exists (String.equal name) l

(* ---- pattern/expression helpers --------------------------------- *)

open Parsetree

let rec catch_all_pattern p =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> catch_all_pattern p
  | Ppat_or (a, b) -> catch_all_pattern a || catch_all_pattern b
  | _ -> false

let is_float_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | _ -> false

let is_assert_false e =
  match e.pexp_desc with
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
    -> true
  | _ -> false

(* a [@@sync "..."] (or [@sync "..."]) attribute with a string payload:
   the documented-synchronization escape hatch of NO-UNSYNC-GLOBAL *)
let has_sync_note attrs =
  List.exists
    (fun (a : attribute) ->
      String.equal a.attr_name.txt "sync"
      &&
      match a.attr_payload with
      | PStr
          [
            {
              pstr_desc =
                Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string _); _ }, _);
              _;
            };
          ] ->
        true
      | _ -> false)
    attrs

(* does a top-level right-hand side allocate shared mutable state?
   Stops at function boundaries (state created per call is local) and at
   any subtree carrying a sync note; recurses through the wrappers a
   module-level binding realistically uses (constraints, let-chains,
   tuples, records, conditionals, lazy). Returns the creator's name. *)
let rec find_mutable_creator e =
  if has_sync_note e.pexp_attributes then None
  else
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
      when mem (lid_name txt) mutable_creators ->
      Some (lid_name txt)
    | Pexp_constraint (e, _)
    | Pexp_coerce (e, _, _)
    | Pexp_open (_, e)
    | Pexp_newtype (_, e)
    | Pexp_lazy e ->
      find_mutable_creator e
    | Pexp_let (_, vbs, body) ->
      first_mutable_creator
        (body
        :: List.filter_map
             (fun vb ->
               if has_sync_note vb.pvb_attributes then None else Some vb.pvb_expr)
             vbs)
    | Pexp_sequence (a, b) -> first_mutable_creator [ a; b ]
    | Pexp_ifthenelse (_, a, b) -> first_mutable_creator (a :: Option.to_list b)
    | Pexp_tuple es -> first_mutable_creator es
    | Pexp_record (fields, base) ->
      first_mutable_creator (List.map snd fields @ Option.to_list base)
    | _ -> None

and first_mutable_creator es =
  List.fold_left
    (fun acc e -> match acc with Some _ -> acc | None -> find_mutable_creator e)
    None es

(* ---- the walk ---------------------------------------------------- *)

let check_structure ~file str =
  let active = List.filter (fun r -> applies r file) all in
  if active = [] then []
  else begin
    let on id = List.exists (fun r -> String.equal r.id id) active in
    let bare = on no_bare_raise.id
    and swallow = on no_swallow.id
    and clock = on no_raw_clock.id
    and print = on no_lib_print.id
    and float_eq = on no_float_eq.id
    and magic = on no_obj_magic.id
    and adhoc = on no_adhoc_log.id
    and unsync = on no_unsync_global.id in
    let acc = ref [] in
    let emit rule loc message =
      acc := Finding.make ~rule:rule.id ~severity:rule.severity ~file ~loc message :: !acc
    in
    let check_ident loc lid =
      let name = lid_name lid in
      if bare && mem name failwith_fns then
        emit no_bare_raise loc
          (Printf.sprintf
             "%s bypasses the typed-error discipline (DESIGN \xc2\xa78); return \
              an Error or use Numerics.Precondition"
             name);
      if clock && mem name clock_fns then
        emit no_raw_clock loc
          (Printf.sprintf "%s bypasses Obs.Clock, the sanctioned time source" name);
      if print && mem name print_fns then
        emit no_lib_print loc
          (Printf.sprintf
             "%s writes to stdout from library code; route output through \
              Report/Obs.Export or a caller-supplied channel"
             name);
      if magic && mem name magic_fns then
        emit no_obj_magic loc "Obj.magic defeats the type system";
      if adhoc && mem name adhoc_log_fns then
        emit no_adhoc_log loc
          (Printf.sprintf
             "%s writes to stderr from library code; route diagnostics \
              through Obs.Log"
             name)
    in
    let check_raise loc lid args =
      if bare && mem (lid_name lid) raise_fns then
        match args with
        | [ (_, { pexp_desc = Pexp_construct ({ txt = exn; _ }, _); _ }) ] ->
          let ctor = last_component exn in
          if not (mem ctor allowed_exceptions) then
            emit no_bare_raise loc
              (Printf.sprintf
                 "raise %s is outside the typed solver taxonomy (%s); return an \
                  Error or use Numerics.Precondition"
                 ctor
                 (String.concat ", " allowed_exceptions))
        | [ (_, { pexp_desc = Pexp_ident _; _ }) ] ->
          (* re-raising a caught exception keeps it observable *)
          ()
        | _ ->
          emit no_bare_raise loc
            "raise of a computed exception is outside the typed solver taxonomy"
    in
    let check_cases ~exception_cases_only cases =
      if swallow then
        List.iter
          (fun case ->
            let flag p =
              if catch_all_pattern p then
                emit no_swallow p.ppat_loc
                  "catch-all exception handler swallows genuine solver \
                   failures; match the specific exceptions instead"
            in
            match case.pc_lhs.ppat_desc with
            | Ppat_exception p -> flag p
            | _ -> if not exception_cases_only then flag case.pc_lhs)
          cases
    in
    let check_global_binding (vb : value_binding) =
      if unsync && not (has_sync_note vb.pvb_attributes) then
        match find_mutable_creator vb.pvb_expr with
        | Some creator ->
          emit no_unsync_global vb.pvb_loc
            (Printf.sprintf
               "top-level %s creates process-global mutable state reachable \
                from pool worker domains; synchronize it and document the \
                discipline with [@@sync \"...\"], or make it domain-local \
                (Atomic / Mutex / Domain.DLS)"
               creator)
        | None -> ()
    in
    let iter =
      {
        Ast_iterator.default_iterator with
        structure_item =
          (fun self item ->
            (match item.pstr_desc with
            | Pstr_value (_, vbs) -> List.iter check_global_binding vbs
            | _ -> ());
            Ast_iterator.default_iterator.structure_item self item);
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_ident { txt; _ } -> check_ident e.pexp_loc txt
            | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> begin
              check_raise e.pexp_loc txt args;
              if float_eq && mem (lid_name txt) float_eq_ops then
                match args with
                | [ (_, a); (_, b) ] when is_float_literal a || is_float_literal b ->
                  emit no_float_eq e.pexp_loc
                    (Printf.sprintf
                       "(%s) against a float literal; compare with an explicit \
                        tolerance instead"
                       (lid_name txt))
                | _ -> ()
            end
            | Pexp_try (_, cases) -> check_cases ~exception_cases_only:false cases
            | Pexp_match (_, cases) -> check_cases ~exception_cases_only:true cases
            | _ -> ());
            if bare && is_assert_false e then
              emit no_bare_raise e.pexp_loc
                "assert false bypasses the typed-error discipline (DESIGN \xc2\xa78)";
            Ast_iterator.default_iterator.expr self e);
      }
    in
    iter.structure iter str;
    List.stable_sort Finding.compare (List.rev !acc)
  end

let mli_required ~files =
  let have_mli =
    List.filter (fun f -> Filename.check_suffix f ".mli") files
  in
  files
  |> List.filter_map (fun f ->
         if
           Filename.check_suffix f ".ml"
           && applies mli_required_rule f
           && not (mem (f ^ "i") have_mli)
         then
           Some
             (Finding.at_file ~rule:mli_required_rule.id
                ~severity:mli_required_rule.severity ~file:f
                (Printf.sprintf
                   "%s has no sibling .mli; every library module must declare \
                    its interface"
                   f))
         else None)
  |> List.stable_sort Finding.compare
