(** One static-analysis finding: a rule violation pinned to a source span.

    Findings are value types shared by the rule checks, the baseline
    ratchet and the exporters; they carry repo-relative '/'-separated
    paths so reports and baselines are stable across machines. *)

type severity = Error | Warning

val severity_name : severity -> string
(** ["error"] / ["warning"], as printed in tables and [lint.v1] JSON. *)

type t = {
  rule : string;  (** rule id, e.g. ["NO-BARE-RAISE"] *)
  severity : severity;
  file : string;  (** repo-relative path, '/'-separated *)
  line : int;  (** 1-based start line *)
  col : int;  (** 0-based start column *)
  end_line : int;
  end_col : int;
  message : string;
}

val make :
  rule:string ->
  severity:severity ->
  file:string ->
  loc:Location.t ->
  string ->
  t
(** Build a finding from a compiler-libs location (the file recorded in
    the location is ignored in favour of [file]). *)

val v :
  rule:string ->
  severity:severity ->
  file:string ->
  line:int ->
  col:int ->
  end_line:int ->
  end_col:int ->
  string ->
  t
(** Build a finding from plain coordinates — the semantic phase works
    from the marshal-plain index, which carries no [Location.t]. *)

val at_file :
  rule:string -> severity:severity -> file:string -> string -> t
(** A file-level finding (no meaningful span), anchored at line 1. *)

val compare : t -> t -> int
(** Order by file, then line, column and rule id — the order reports
    and baselines are emitted in. *)

val to_string : t -> string
(** ["file:line:col: [RULE] message"]. *)
