type severity = Error | Warning

let severity_name = function Error -> "error" | Warning -> "warning"

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  end_line : int;
  end_col : int;
  message : string;
}

let make ~rule ~severity ~file ~loc message =
  let open Location in
  let start = loc.loc_start and stop = loc.loc_end in
  {
    rule;
    severity;
    file;
    line = start.Lexing.pos_lnum;
    col = start.Lexing.pos_cnum - start.Lexing.pos_bol;
    end_line = stop.Lexing.pos_lnum;
    end_col = stop.Lexing.pos_cnum - stop.Lexing.pos_bol;
    message;
  }

let v ~rule ~severity ~file ~line ~col ~end_line ~end_col message =
  { rule; severity; file; line; col; end_line; end_col; message }

let at_file ~rule ~severity ~file message =
  { rule; severity; file; line = 1; col = 0; end_line = 1; end_col = 0; message }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message
