(** Phase 1 of the project analyzer (DESIGN §15): one parsed source
    file reduced to the marshal-plain facts the interprocedural rules
    consume — top-level definitions with raise and identifier-use
    sites (each annotated with whether it sits lexically under a
    [try]/match-exception boundary), [[@@sync "...[m]..."]] globals
    and their lock-context-annotated accesses, local mutexes and
    lock-wrapper functions, [[@sublint.allow]] suppression scopes and
    the interface's Result-typed value surface.

    Nothing from [Parsetree]/[Location] survives into {!file_info}, so
    records round-trip through the content-digest cache (Marshal)
    across processes and sessions. *)

type pos = { line : int; col : int; end_line : int; end_col : int }

val no_pos : pos
(** Line 1, column 0 — findings that name a file, not a site. *)

type raise_site = {
  ctor : string;
      (** constructor last component; ["Failure"] for [failwith],
          ["Invalid_argument"] for [invalid_arg], ["Assert_failure"]
          for [assert false], ["<re-raise>"]/["<computed>"] for raises
          of a variable / computed expression *)
  r_pos : pos;
  r_absorbed : bool;
      (** lexically inside a [try] body or the scrutinee of a match
          with an [exception] case: a Result boundary absorbs it *)
}

type use_site = {
  callee : string list;  (** the path as written, e.g. [["Robust"; "root"]] *)
  u_pos : pos;
  u_absorbed : bool;
}

type def_info = {
  d_name : string;  (** dotted under nested modules, e.g. ["Inner.f"] *)
  d_pos : pos;
  raises : raise_site list;
  uses : use_site list;
      (** every identifier use in the def's body — the conservative
          call-graph edge set (higher-order uses included) *)
}

type sync_global = {
  g_name : string;
  g_mutex : string option;
      (** the first lowercase [[m]] bracket in the sync note: the
          mutex SYNC-DISCIPLINE holds the module to *)
  g_pos : pos;
}

type sync_access = {
  target : string;
  a_pos : pos;
  locks_held : string list;
      (** dotted mutex paths whose critical sections lexically enclose
          the access ([Mutex.protect m (fun () -> ...)], [with_lock m],
          or a recognized local wrapper) *)
  in_unlocked : bool;
      (** inside a [*_unlocked] function: the documented
          caller-holds-the-lock convention *)
}

type suppression = {
  s_rule : string;
  s_reason : string;
  s_pos : pos;
  line_lo : int;
  line_hi : int;  (** inclusive source-line span the suppression covers *)
  malformed : string option;
      (** a diagnostic when the payload is not two string literals *)
}

type file_info = {
  path : string;
  module_name : string;
  opens : string list list;
  defs : def_info list;
  sync_globals : sync_global list;
  sync_accesses : sync_access list;
  mutexes : string list;  (** top-level [let m = Mutex.create ()] names *)
  wrappers : (string * string) list;
      (** local wrappers eta-expanding [Mutex.protect]: name, mutex *)
  result_vals : (string * pos) list;
      (** .mli vals whose return type is a two-parameter [result] *)
  suppressions : suppression list;
  syntactic : Finding.t list;  (** per-file rule findings (filled by the driver) *)
  parse_error : string option;
}

val empty : path:string -> module_name:string -> file_info
val module_name_of_path : string -> string

val mutex_of_note : string -> string option
(** The first [[ident]] bracket (lowercase first letter) in a sync
    note, e.g. ["guarded by [lock]"] -> [Some "lock"]. [None] when the
    note documents a non-mutex discipline (domain-locality, ...). *)

val of_implementation : path:string -> Parsetree.structure -> file_info
(** Extract every fact except [syntactic] and [parse_error]. *)

val of_interface : path:string -> Parsetree.signature -> file_info
(** Interface facts: Result-typed vals and file-scoped suppressions. *)
