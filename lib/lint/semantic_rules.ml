(* Phase 2: the interprocedural rules, evaluated over the phase-1
   index. EXN-ESCAPE walks the call graph from every Result-typed
   interface value; SYNC-DISCIPLINE checks every access to a
   mutex-annotated global against its lexical lock context. *)

let finding ~rule ~severity ~file (p : Index.pos) message =
  Finding.v ~rule ~severity ~file ~line:p.Index.line ~col:p.Index.col
    ~end_line:p.Index.end_line ~end_col:p.Index.end_col message

(* ------------------------------------------------------------------ *)
(* EXN-ESCAPE *)

let exn_escape_id = "EXN-ESCAPE"

(* Invalid_argument is the precondition idiom (Numerics.Precondition,
   legacy invalid_arg): a caller-contract violation, not a solver
   failure, and governed by NO-BARE-RAISE — out of scope here. *)
let exempt_ctors = [ "Invalid_argument" ]

let suppression_table infos ~rule =
  let by_file = Hashtbl.create 16 in
  List.iter
    (fun (info : Index.file_info) ->
      let mine =
        List.filter
          (fun (s : Index.suppression) ->
            s.Index.malformed = None && String.equal s.Index.s_rule rule)
          info.Index.suppressions
      in
      if mine <> [] then Hashtbl.replace by_file info.Index.path mine)
    infos;
  by_file

(* a suppression covering [line] (or fully containing [span]) *)
let covering by_file file ~line ~span =
  match Hashtbl.find_opt by_file file with
  | None -> None
  | Some ss ->
    List.find_opt
      (fun (s : Index.suppression) ->
        (s.Index.line_lo <= line && line <= s.Index.line_hi)
        ||
        match span with
        | Some (lo, hi) -> s.Index.line_lo <= lo && hi <= s.Index.line_hi
        | None -> false)
      ss

let exn_escape (proj : Callgraph.project) ~scope =
  let g = Callgraph.build proj in
  let suppr = suppression_table proj.Callgraph.infos ~rule:exn_escape_id in
  let used = ref [] in
  let mark_used file (s : Index.suppression) =
    if not (List.mem (file, s.Index.s_pos) !used) then
      used := (file, s.Index.s_pos) :: !used
  in
  (* a def whose whole span a suppression covers is a trusted boundary:
     its raises are vouched for and traversal does not descend into it *)
  let barrier (node : Callgraph.node) =
    match Callgraph.def_of g node with
    | None -> None
    | Some d ->
      covering suppr node.Callgraph.n_file ~line:d.Index.d_pos.Index.line
        ~span:(Some (d.Index.d_pos.Index.line, d.Index.d_pos.Index.end_line))
  in
  (* entries: Result-typed .mli vals (in scope) with a same-name
     top-level def in the sibling implementation *)
  let entries =
    List.concat_map
      (fun (mli : Index.file_info) ->
        if
          (not (Filename.check_suffix mli.Index.path ".mli"))
          || not (scope mli.Index.path)
        then []
        else
          let impl = Filename.remove_extension mli.Index.path ^ ".ml" in
          List.filter_map
            (fun (name, _) ->
              let node = { Callgraph.n_file = impl; n_def = name } in
              match Callgraph.def_of g node with
              | Some _ -> Some node
              | None -> None)
            mli.Index.result_vals)
      proj.Callgraph.infos
    |> List.sort (fun (a : Callgraph.node) b ->
           let c = String.compare a.Callgraph.n_file b.Callgraph.n_file in
           if c <> 0 then c else String.compare a.Callgraph.n_def b.Callgraph.n_def)
  in
  (* keyed by raise site so one bad helper yields one finding, carrying
     the first (deterministic) entry path that reaches it *)
  let flagged : (string * int * int, Finding.t) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun entry ->
      let follow node =
        match barrier node with
        | Some s ->
          mark_used node.Callgraph.n_file s;
          false
        | None -> true
      in
      List.iter
        (fun (node, path) ->
          match Callgraph.def_of g node with
          | None -> ()
          | Some d ->
            List.iter
              (fun (r : Index.raise_site) ->
                if
                  (not r.Index.r_absorbed)
                  && not (List.mem r.Index.ctor exempt_ctors)
                then begin
                  match
                    covering suppr node.Callgraph.n_file
                      ~line:r.Index.r_pos.Index.line ~span:None
                  with
                  | Some s -> mark_used node.Callgraph.n_file s
                  | None ->
                    let key =
                      ( node.Callgraph.n_file,
                        r.Index.r_pos.Index.line,
                        r.Index.r_pos.Index.col )
                    in
                    if not (Hashtbl.mem flagged key) then begin
                      let via =
                        String.concat " -> "
                          (List.map (Callgraph.node_name g) path)
                      in
                      let what =
                        match r.Index.ctor with
                        | "<re-raise>" -> "re-raised exception"
                        | "<computed>" -> "raise of a computed exception"
                        | c -> "raise " ^ c
                      in
                      Hashtbl.replace flagged key
                        (finding ~rule:exn_escape_id ~severity:Finding.Error
                           ~file:node.Callgraph.n_file r.Index.r_pos
                           (Printf.sprintf
                              "%s can escape the Result-typed %s (call path: \
                               %s); absorb it behind a try/Result boundary or \
                               suppress with [@sublint.allow \"%s\" \"why it \
                               cannot escape\"]"
                              what
                              (Callgraph.node_name g (List.hd path))
                              via exn_escape_id));
                      order := key :: !order
                    end
                end)
              d.Index.raises)
        (Callgraph.reachable ~follow g ~from:entry))
    entries;
  let findings =
    List.rev_map (fun key -> Hashtbl.find flagged key) !order
  in
  (findings, !used)

(* ------------------------------------------------------------------ *)
(* SYNC-DISCIPLINE *)

let sync_discipline_id = "SYNC-DISCIPLINE"

let lock_last m =
  match String.rindex_opt m '.' with
  | Some i -> String.sub m (i + 1) (String.length m - i - 1)
  | None -> m

let sync_discipline (proj : Callgraph.project) ~scope =
  List.concat_map
    (fun (info : Index.file_info) ->
      if not (scope info.Index.path) then []
      else
        List.concat_map
          (fun (gl : Index.sync_global) ->
            match gl.Index.g_mutex with
            | None -> []  (* the note documents a non-mutex discipline *)
            | Some m ->
              if not (List.mem m info.Index.mutexes) then
                [
                  finding ~rule:sync_discipline_id ~severity:Finding.Error
                    ~file:info.Index.path gl.Index.g_pos
                    (Printf.sprintf
                       "[@@sync] note for %s names mutex [%s], but this \
                        module has no top-level `let %s = Mutex.create ()` — \
                        the annotation cannot be true"
                       gl.Index.g_name m m);
                ]
              else
                List.filter_map
                  (fun (a : Index.sync_access) ->
                    if not (String.equal a.Index.target gl.Index.g_name) then
                      None
                    else if a.Index.in_unlocked then None
                    else if
                      List.exists
                        (fun held -> String.equal (lock_last held) m)
                        a.Index.locks_held
                    then None
                    else
                      Some
                        (finding ~rule:sync_discipline_id
                           ~severity:Finding.Error ~file:info.Index.path
                           a.Index.a_pos
                           (Printf.sprintf
                              "%s is declared [@@sync] under mutex [%s] but \
                               this access is not lexically inside \
                               Mutex.protect %s / with_lock %s / a local \
                               wrapper acquiring it (and not in a *_unlocked \
                               helper)%s"
                              gl.Index.g_name m m m
                              (match a.Index.locks_held with
                              | [] -> ""
                              | held ->
                                Printf.sprintf " — locks held here: %s"
                                  (String.concat ", " held)))))
                  info.Index.sync_accesses)
          info.Index.sync_globals)
    proj.Callgraph.infos
