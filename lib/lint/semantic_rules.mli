(** Phase 2: the interprocedural rules (DESIGN §15).

    Both run over an already-built {!Callgraph.project}; [scope] is
    the per-rule path predicate from {!Rules}. *)

val exn_escape_id : string
val sync_discipline_id : string

val exn_escape :
  Callgraph.project ->
  scope:(string -> bool) ->
  Finding.t list * (string * Index.pos) list
(** EXN-ESCAPE: a [raise] reachable through the call graph from a
    definition whose [.mli] type returns [('a, _) result] (in scope)
    and not absorbed behind a [try]/match-exception boundary. Raises
    of [Invalid_argument] (the precondition idiom) are exempt. A
    well-formed [[@sublint.allow "EXN-ESCAPE" ...]] covering a raise
    site drops that site; one covering a whole definition is a
    barrier — its raises are vouched for and traversal does not
    descend into it. Returns the findings (deterministic order) and
    the [(file, pos)] of every suppression the analysis consumed. *)

val sync_discipline :
  Callgraph.project -> scope:(string -> bool) -> Finding.t list
(** SYNC-DISCIPLINE: every access to a [[@@sync "...[m]..."]] global
    must be lexically inside [Mutex.protect m]/[with_lock m]/a local
    wrapper acquiring [m], or in a [*_unlocked] helper (the documented
    caller-holds-lock convention). Also checks that the named mutex
    exists as a top-level [Mutex.create ()] in the module. *)
