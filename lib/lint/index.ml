(* Phase 1 of the project analyzer: reduce one parsed source file to
   the marshal-plain facts the interprocedural rules need — top-level
   defs with their raise and use sites (absorption-annotated), sync
   annotations and lock-context-annotated accesses, suppression scopes
   and the .mli Result-typed surface. Nothing from [Parsetree] or
   [Location] survives into [file_info], so the records can live in
   the content-digest cache across processes. *)

type pos = { line : int; col : int; end_line : int; end_col : int }

let pos_of_loc (loc : Location.t) =
  let start = loc.Location.loc_start and stop = loc.Location.loc_end in
  {
    line = start.Lexing.pos_lnum;
    col = start.Lexing.pos_cnum - start.Lexing.pos_bol;
    end_line = stop.Lexing.pos_lnum;
    end_col = stop.Lexing.pos_cnum - stop.Lexing.pos_bol;
  }

let no_pos = { line = 1; col = 0; end_line = 1; end_col = 0 }

type raise_site = {
  ctor : string;
      (* constructor last component; "Failure" for [failwith],
         "Invalid_argument" for [invalid_arg], "Assert_failure" for
         [assert false], "<re-raise>" / "<computed>" otherwise *)
  r_pos : pos;
  r_absorbed : bool;  (* lexically under a try / match-exception body *)
}

type use_site = {
  callee : string list;  (* the path as written, e.g. ["Robust"; "root"] *)
  u_pos : pos;
  u_absorbed : bool;
}

type def_info = {
  d_name : string;  (* dotted for nested modules, e.g. "Inner.f" *)
  d_pos : pos;
  raises : raise_site list;
  uses : use_site list;
}

type sync_global = {
  g_name : string;
  g_mutex : string option;  (* first [m] bracket in the sync note *)
  g_pos : pos;
}

type sync_access = {
  target : string;
  a_pos : pos;
  locks_held : string list;  (* dotted mutex paths in lexical scope *)
  in_unlocked : bool;  (* inside a *_unlocked function (caller locks) *)
}

type suppression = {
  s_rule : string;
  s_reason : string;
  s_pos : pos;
  line_lo : int;
  line_hi : int;  (* inclusive line span the suppression covers *)
  malformed : string option;
}

type file_info = {
  path : string;
  module_name : string;
  opens : string list list;
  defs : def_info list;
  sync_globals : sync_global list;
  sync_accesses : sync_access list;
  mutexes : string list;
  wrappers : (string * string) list;  (* local fn -> mutex it acquires *)
  result_vals : (string * pos) list;  (* .mli vals returning (_, _) result *)
  suppressions : suppression list;
  syntactic : Finding.t list;
  parse_error : string option;
}

let empty ~path ~module_name =
  {
    path;
    module_name;
    opens = [];
    defs = [];
    sync_globals = [];
    sync_accesses = [];
    mutexes = [];
    wrappers = [];
    result_vals = [];
    suppressions = [];
    syntactic = [];
    parse_error = None;
  }

let module_name_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* ------------------------------------------------------------------ *)
(* shared AST helpers *)

open Parsetree

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply _ -> []

let last = function [] -> "" | l -> List.nth l (List.length l - 1)

let raise_heads = [ "raise"; "raise_notrace"; "Stdlib.raise"; "Stdlib.raise_notrace" ]
let failwith_heads = [ "failwith"; "Stdlib.failwith" ]
let invalid_heads = [ "invalid_arg"; "Stdlib.invalid_arg" ]

let dotted l = String.concat "." l

(* the first "[ident]" bracket in a sync note names the guarding mutex *)
let mutex_of_note note =
  let n = String.length note in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '\'' || c = '.'
  in
  let rec scan i =
    if i >= n then None
    else if note.[i] = '[' then begin
      let j = ref (i + 1) in
      while !j < n && is_ident_char note.[!j] do incr j done;
      if !j > i + 1 && !j < n && note.[!j] = ']' then begin
        let name = String.sub note (i + 1) (!j - i - 1) in
        if name.[0] >= 'a' && name.[0] <= 'z' then Some name else scan !j
      end
      else scan (i + 1)
    end
    else scan (i + 1)
  in
  scan 0

let sync_note attrs =
  List.find_map
    (fun (a : attribute) ->
      if not (String.equal a.attr_name.txt "sync") then None
      else
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _;
              };
            ] ->
          Some s
        | _ -> None)
    attrs

(* ------------------------------------------------------------------ *)
(* suppressions: [@sublint.allow "RULE" "reason"] — expression-scoped,
   [@@...] binding/item-scoped, [@@@...] file-scoped *)

let allow_name = "sublint.allow"

let suppression_payload (a : attribute) =
  match a.attr_payload with
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> begin
    match e.pexp_desc with
    | Pexp_apply
        ( { pexp_desc = Pexp_constant (Pconst_string (rule, _, _)); _ },
          [ (_, { pexp_desc = Pexp_constant (Pconst_string (reason, _, _)); _ }) ] )
    | Pexp_tuple
        [
          { pexp_desc = Pexp_constant (Pconst_string (rule, _, _)); _ };
          { pexp_desc = Pexp_constant (Pconst_string (reason, _, _)); _ };
        ] ->
      if String.trim reason = "" then Error "empty reason" else Ok (rule, reason)
    | Pexp_constant (Pconst_string (_, _, _)) ->
      Error "missing reason (expected [@sublint.allow \"RULE\" \"reason\"])"
    | _ -> Error "expected two string literals: rule id and reason"
  end
  | _ -> Error "expected two string literals: rule id and reason"

let suppressions_of_attrs ~span attrs =
  List.filter_map
    (fun (a : attribute) ->
      if not (String.equal a.attr_name.txt allow_name) then None
      else
        let s_pos = pos_of_loc a.attr_loc in
        let line_lo, line_hi = span s_pos in
        match suppression_payload a with
        | Ok (rule, reason) ->
          Some { s_rule = rule; s_reason = reason; s_pos; line_lo; line_hi; malformed = None }
        | Error msg ->
          Some
            {
              s_rule = "";
              s_reason = "";
              s_pos;
              line_lo;
              line_hi;
              malformed = Some msg;
            })
    attrs

(* ------------------------------------------------------------------ *)
(* implementation extraction *)

type ctx = {
  mutable cur_def : string option;
  mutable mod_prefix : string;  (* dotted nested-module path, "" at top *)
  mutable absorb : int;  (* > 0 inside a try body / matched-exn scrutinee *)
  mutable locks : string list;
  mutable unlocked : int;  (* > 0 inside a *_unlocked function body *)
  mutable acc_raises : (string * raise_site) list;  (* def, site *)
  mutable acc_uses : (string * use_site) list;
  mutable acc_accesses : sync_access list;
  mutable acc_suppr : suppression list;
  global_names : string list;  (* sync-annotated top-level mutable names *)
  wrapper_mutex : (string * string) list;
}

let toplevel = "<toplevel>"

let is_fun_literal e =
  match e.pexp_desc with Pexp_fun _ | Pexp_function _ -> true | _ -> false

(* [Mutex.protect m (fun () -> ...)] / [with_lock m (fun () -> ...)] /
   [wrapper (fun () -> ...)] where [wrapper] eta-wraps Mutex.protect:
   the mutex whose critical section the literal argument runs in *)
let lock_shape ctx head args =
  let fun_arg () =
    List.find_opt (fun (_, a) -> is_fun_literal a) args |> Option.map snd
  in
  let path = flatten_lid head in
  match path with
  | [ "Mutex"; "protect" ] | [ "Stdlib"; "Mutex"; "protect" ] | [ "with_lock" ] -> begin
    match args with
    | (_, { pexp_desc = Pexp_ident { txt = m; _ }; _ }) :: _ -> begin
      match fun_arg () with
      | Some body -> Some (dotted (flatten_lid m), body)
      | None -> None
    end
    | _ -> None
  end
  | [ w ] -> begin
    match List.assoc_opt w ctx.wrapper_mutex with
    | Some m -> begin
      match fun_arg () with Some body -> Some (m, body) | None -> None
    end
    | None -> None
  end
  | _ -> None

let record_raise ctx pos ctor =
  let d = match ctx.cur_def with Some d -> d | None -> toplevel in
  ctx.acc_raises <-
    (d, { ctor; r_pos = pos; r_absorbed = ctx.absorb > 0 }) :: ctx.acc_raises

let record_use ctx pos path =
  if path <> [] then begin
    let d = match ctx.cur_def with Some d -> d | None -> toplevel in
    ctx.acc_uses <-
      (d, { callee = path; u_pos = pos; u_absorbed = ctx.absorb > 0 })
      :: ctx.acc_uses
  end

let record_access ctx pos name =
  ctx.acc_accesses <-
    {
      target = name;
      a_pos = pos;
      locks_held = ctx.locks;
      in_unlocked = ctx.unlocked > 0;
    }
    :: ctx.acc_accesses

let raise_ctor_of_arg args =
  match args with
  | [ (_, { pexp_desc = Pexp_construct ({ txt; _ }, _); _ }) ] ->
    Some (last (flatten_lid txt))
  | [ (_, { pexp_desc = Pexp_ident _; _ }) ] -> Some "<re-raise>"
  | _ -> Some "<computed>"

let is_assert_false e =
  match e.pexp_desc with
  | Pexp_assert
      { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
    -> true
  | _ -> false

let has_exception_case cases =
  List.exists
    (fun c -> match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false)
    cases

let binding_name (vb : value_binding) =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

let span_of_pos p = (p.line, p.end_line)
let file_span _ = (0, max_int)

let walk_implementation ~global_names ~wrapper_mutex str =
  let ctx =
    {
      cur_def = None;
      mod_prefix = "";
      absorb = 0;
      locks = [];
      unlocked = 0;
      acc_raises = [];
      acc_uses = [];
      acc_accesses = [];
      acc_suppr = [];
      global_names;
      wrapper_mutex;
    }
  in
  let add_suppressions ~span attrs =
    ctx.acc_suppr <- suppressions_of_attrs ~span attrs @ ctx.acc_suppr
  in
  let with_absorb self e =
    ctx.absorb <- ctx.absorb + 1;
    self.Ast_iterator.expr self e;
    ctx.absorb <- ctx.absorb - 1
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      structure_item =
        (fun self item ->
          match item.pstr_desc with
          | Pstr_attribute a ->
            add_suppressions ~span:file_span [ a ];
            Ast_iterator.default_iterator.structure_item self item
          | Pstr_value (_, vbs) ->
            (* structure-level bindings own their body's raise/use
               sites; nested lets inside keep the enclosing owner *)
            List.iter
              (fun vb ->
                let saved = ctx.cur_def in
                (match binding_name vb with
                | Some n ->
                  ctx.cur_def <-
                    Some
                      (if ctx.mod_prefix = "" then n
                       else ctx.mod_prefix ^ "." ^ n)
                | None -> ());
                self.value_binding self vb;
                ctx.cur_def <- saved)
              vbs
          | _ -> Ast_iterator.default_iterator.structure_item self item);
      module_binding =
        (fun self mb ->
          match mb.pmb_name.txt with
          | Some m ->
            let saved = ctx.mod_prefix in
            ctx.mod_prefix <- (if saved = "" then m else saved ^ "." ^ m);
            Ast_iterator.default_iterator.module_binding self mb;
            ctx.mod_prefix <- saved
          | None -> Ast_iterator.default_iterator.module_binding self mb);
      value_binding =
        (fun self vb ->
          let span _ = span_of_pos (pos_of_loc vb.pvb_loc) in
          add_suppressions ~span vb.pvb_attributes;
          match binding_name vb with
          | Some name ->
            let saved_unlocked = ctx.unlocked in
            if String.ends_with ~suffix:"_unlocked" name then
              ctx.unlocked <- ctx.unlocked + 1;
            Ast_iterator.default_iterator.value_binding self vb;
            ctx.unlocked <- saved_unlocked
          | None -> Ast_iterator.default_iterator.value_binding self vb);
      expr =
        (fun self e ->
          add_suppressions
            ~span:(fun _ -> span_of_pos (pos_of_loc e.pexp_loc))
            e.pexp_attributes;
          if is_assert_false e then record_raise ctx (pos_of_loc e.pexp_loc) "Assert_failure";
          match e.pexp_desc with
          | Pexp_ident { txt; _ } ->
            let path = flatten_lid txt in
            record_use ctx (pos_of_loc e.pexp_loc) path;
            (match path with
            | [ name ] when List.mem name ctx.global_names ->
              record_access ctx (pos_of_loc e.pexp_loc) name
            | _ -> ())
          | Pexp_try (body, cases) ->
            with_absorb self body;
            List.iter (self.case self) cases
          | Pexp_match (scrut, cases) when has_exception_case cases ->
            with_absorb self scrut;
            List.iter (self.case self) cases
          | Pexp_apply (({ pexp_desc = Pexp_ident { txt; _ }; _ } as head), args)
            -> begin
            let name = dotted (flatten_lid txt) in
            if List.mem name raise_heads then begin
              (match raise_ctor_of_arg args with
              | Some ctor -> record_raise ctx (pos_of_loc e.pexp_loc) ctor
              | None -> ());
              List.iter (fun (_, a) -> self.expr self a) args
            end
            else if List.mem name failwith_heads then begin
              record_raise ctx (pos_of_loc e.pexp_loc) "Failure";
              List.iter (fun (_, a) -> self.expr self a) args
            end
            else if List.mem name invalid_heads then begin
              record_raise ctx (pos_of_loc e.pexp_loc) "Invalid_argument";
              List.iter (fun (_, a) -> self.expr self a) args
            end
            else
              match lock_shape ctx txt args with
              | Some (mutex, body) ->
                self.expr self head;
                List.iter
                  (fun (_, a) -> if a != body then self.expr self a)
                  args;
                ctx.locks <- mutex :: ctx.locks;
                self.expr self body;
                ctx.locks <- List.tl ctx.locks
              | None -> Ast_iterator.default_iterator.expr self e
          end
          | _ -> Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.structure iter str;
  ctx

(* top-level shape passes: defs, opens, sync globals, mutexes, lock
   wrappers — including one level of [module M = struct ... end] *)

let rec expr_strip e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_newtype (_, e) ->
    expr_strip e
  | _ -> e

let is_mutex_create e =
  match (expr_strip e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> begin
    match flatten_lid txt with
    | [ "Mutex"; "create" ] | [ "Stdlib"; "Mutex"; "create" ] -> true
    | _ -> false
  end
  | _ -> false

(* [let w f = Mutex.protect m f] or
   [let w f = Mutex.protect m (fun () -> f ())] *)
let wrapper_shape vb =
  match binding_name vb with
  | None -> None
  | Some w -> begin
    match (expr_strip vb.pvb_expr).pexp_desc with
    | Pexp_fun (_, _, { ppat_desc = Ppat_var { txt = param; _ }; _ }, body) -> begin
      match (expr_strip body).pexp_desc with
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt = hd; _ }; _ }, args) -> begin
        match (flatten_lid hd, args) with
        | ( ([ "Mutex"; "protect" ] | [ "Stdlib"; "Mutex"; "protect" ]),
            [ (_, { pexp_desc = Pexp_ident { txt = m; _ }; _ }); (_, farg) ] ) ->
          let applies_param =
            match (expr_strip farg).pexp_desc with
            | Pexp_ident { txt = Longident.Lident p; _ } -> String.equal p param
            | Pexp_fun (_, _, _, inner) -> begin
              match (expr_strip inner).pexp_desc with
              | Pexp_apply
                  ({ pexp_desc = Pexp_ident { txt = Longident.Lident p; _ }; _ }, _)
                -> String.equal p param
              | _ -> false
            end
            | _ -> false
          in
          if applies_param then Some (w, dotted (flatten_lid m)) else None
        | _ -> None
      end
      | _ -> None
    end
    | _ -> None
  end

let rec top_shapes prefix items =
  List.fold_left
    (fun (defs, opens, globals, mutexes, wrappers) item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.fold_left
          (fun (defs, opens, globals, mutexes, wrappers) vb ->
            match binding_name vb with
            | None -> (defs, opens, globals, mutexes, wrappers)
            | Some name ->
              let qname = if prefix = "" then name else prefix ^ "." ^ name in
              let pos = pos_of_loc vb.pvb_loc in
              let defs = (qname, pos) :: defs in
              let globals =
                match sync_note vb.pvb_attributes with
                | Some note ->
                  { g_name = name; g_mutex = mutex_of_note note; g_pos = pos }
                  :: globals
                | None -> globals
              in
              let mutexes =
                if prefix = "" && is_mutex_create vb.pvb_expr then name :: mutexes
                else mutexes
              in
              let wrappers =
                if prefix = "" then
                  match wrapper_shape vb with
                  | Some wm -> wm :: wrappers
                  | None -> wrappers
                else wrappers
              in
              (defs, opens, globals, mutexes, wrappers))
          (defs, opens, globals, mutexes, wrappers)
          vbs
      | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ } ->
        (defs, flatten_lid txt :: opens, globals, mutexes, wrappers)
      | Pstr_module
          {
            pmb_name = { txt = Some m; _ };
            pmb_expr = { pmod_desc = Pmod_structure sub; _ };
            _;
          } ->
        let sub_prefix = if prefix = "" then m else prefix ^ "." ^ m in
        let sd, so, sg, sm, sw = top_shapes sub_prefix sub in
        (sd @ defs, so @ opens, sg @ globals, sm @ mutexes, sw @ wrappers)
      | _ -> (defs, opens, globals, mutexes, wrappers))
    ([], [], [], [], []) items

let of_implementation ~path str =
  let defs, opens, globals, mutexes, wrappers = top_shapes "" str in
  let ctx =
    walk_implementation
      ~global_names:(List.map (fun g -> g.g_name) globals)
      ~wrapper_mutex:wrappers str
  in
  let def_infos =
    List.rev_map
      (fun (name, pos) ->
        {
          d_name = name;
          d_pos = pos;
          raises =
            List.rev
              (List.filter_map
                 (fun (d, r) -> if String.equal d name then Some r else None)
                 ctx.acc_raises);
          uses =
            List.rev
              (List.filter_map
                 (fun (d, u) -> if String.equal d name then Some u else None)
                 ctx.acc_uses);
        })
      defs
  in
  let top_raises =
    List.rev
      (List.filter_map
         (fun (d, r) -> if String.equal d toplevel then Some r else None)
         ctx.acc_raises)
  and top_uses =
    List.rev
      (List.filter_map
         (fun (d, u) -> if String.equal d toplevel then Some u else None)
         ctx.acc_uses)
  in
  let def_infos =
    if top_raises = [] && top_uses = [] then def_infos
    else
      { d_name = toplevel; d_pos = no_pos; raises = top_raises; uses = top_uses }
      :: def_infos
  in
  {
    (empty ~path ~module_name:(module_name_of_path path)) with
    opens = List.rev opens;
    defs = def_infos;
    sync_globals = List.rev globals;
    sync_accesses = List.rev ctx.acc_accesses;
    mutexes = List.rev mutexes;
    wrappers;
    suppressions = List.rev ctx.acc_suppr;
  }

(* ------------------------------------------------------------------ *)
(* interface extraction: vals whose return type is a two-parameter
   [result] (the stdlib ('a, 'e) result — one-parameter [result] types
   like [Rootfind.result] are module-local records, not Result) *)

let rec returns_result (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_arrow (_, _, ret) -> returns_result ret
  | Ptyp_constr ({ txt; _ }, [ _; _ ]) -> String.equal (last (flatten_lid txt)) "result"
  | _ -> false

let of_interface ~path sg =
  let result_vals =
    List.filter_map
      (fun item ->
        match item.psig_desc with
        | Psig_value vd when returns_result vd.pval_type ->
          Some (vd.pval_name.txt, pos_of_loc vd.pval_loc)
        | _ -> None)
      sg
  in
  let suppressions =
    List.concat_map
      (fun item ->
        match item.psig_desc with
        | Psig_attribute a -> suppressions_of_attrs ~span:file_span [ a ]
        | _ -> [])
      sg
  in
  {
    (empty ~path ~module_name:(module_name_of_path path)) with
    result_vals;
    suppressions;
  }
