(** Orchestration of the two-phase project analyzer (DESIGN §15).

    Phase 1 turns every source file into an {!Index.file_info} —
    parallel on the shared {!Parallel.Runtime} pool (file IO, digests
    and rule walks concurrent; the actual [Parse] calls serialized,
    compiler-libs' lexer state is global) and served from the
    content-digest {!Cache} when one is supplied. Phase 2 is always
    recomputed over the full index: the syntactic findings, the
    file-level MLI-REQUIRED rule, the interprocedural
    {!Semantic_rules}, [@sublint.allow] suppression filtering with
    UNUSED-SUPPRESSION reporting, and PARSE-ERROR findings for files
    the parser rejects (collected, never an abort). Findings are
    sorted, so reports are byte-identical at any [--jobs] and between
    cold and warm cache runs.

    This module does no I/O to stdout itself (it must satisfy its own
    NO-LIB-PRINT rule); rendering returns strings/tables/JSON and the
    [bin/sublint] executable decides where they go. *)

exception Parse_failed of string
(** A source file the compiler's parser rejects (position-annotated
    message). *)

val lint_string : path:string -> string -> Finding.t list
(** Parse one implementation held in memory (as the repo-relative
    [path], which selects the applicable rules) and run every
    expression-level syntactic rule over it. Raises {!Parse_failed}.
    Neither MLI-REQUIRED nor the semantic rules run here — see
    {!analyze_sources} for the full pipeline. *)

val analyze_source : path:string -> string -> Index.file_info
(** Phase 1 for one in-memory source: parse (implementation or
    interface by extension), extract the index, attach syntactic
    findings; a parse failure yields an info with [parse_error] set
    instead of raising. *)

val cache_version : string
(** The {!Cache} version stamp: tool version, compiler version and
    rule ids — any change invalidates cached entries wholesale. *)

type report = {
  findings : Finding.t list;  (** sorted by file, line, column, rule *)
  files_scanned : int;  (** .ml and .mli files discovered *)
  reparsed : int;
      (** files actually (re-)parsed this run — 0 on a warm cache over
          an unchanged tree; excluded from [lint.v1] so cold and warm
          reports stay byte-identical *)
  parse_errors : (string * string) list;  (** path, message *)
}

val scan : ?cache:Cache.t -> root:string -> dirs:string list -> unit -> report
(** Walk [dirs] (repo-relative, under [root]) recursively, skipping
    [_build] and dot-directories; run phase 1 over every [.ml]/[.mli]
    on the shared pool (through [cache] when given — the caller loads
    and saves it), then phase 2 over the project. *)

val analyze_sources :
  ?lib_of:(string -> string option) -> (string * string) list -> report
(** The same full pipeline over in-memory [(path, source)] pairs —
    the test harness's entry point. [lib_of] maps a path to its
    wrapping-library module; the default capitalizes the directory
    under [lib/] (the real scan reads the dune files instead). *)

val findings_table : (Finding.t * bool) list -> Report.Table.t
(** Render findings as a [Report.Table]; the flag marks a finding as
    fresh (beyond its baseline allowance) vs grandfathered. *)

val with_freshness : report -> drift:Baseline.drift -> (Finding.t * bool) list
(** Pair every finding with whether the drift marks it fresh. *)

val summary : report -> drift:Baseline.drift -> string
(** One human line: file and reparse counts, totals by severity, fresh
    vs baselined, stale-baseline entries (naming [--prune-baseline])
    and parse failures. *)

val json_report : root:string -> report -> drift:Baseline.drift -> Obs.Json.t
(** The [lint.v1] record: schema tag, scanned-file count, the rule
    taxonomy (id, severity, doc, scope, baselinable), every finding
    with its [fresh] flag, parse errors, and a summary block. Carries
    no cache statistics — cold and warm runs emit identical bytes. *)
