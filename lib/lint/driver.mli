(** Orchestration: find sources, parse them with the compiler's own
    parser, run the rule set, and render findings as a table and as a
    [lint.v1] JSON record.

    This module does no I/O to stdout itself (it must satisfy its own
    NO-LIB-PRINT rule); rendering returns strings/tables/JSON and the
    [bin/sublint] executable decides where they go. *)

exception Parse_failed of string
(** A source file the compiler's parser rejects (position-annotated
    message). The repo's own sources always parse — this surfaces
    truncated or corrupted files instead of silently skipping them. *)

val lint_string : path:string -> string -> Finding.t list
(** Parse one implementation held in memory (as the repo-relative
    [path], which selects the applicable rules) and run every
    expression-level rule over it. Raises {!Parse_failed}. The
    file-level MLI-REQUIRED rule does not run here — see
    {!Rules.mli_required}. *)

type report = {
  findings : Finding.t list;  (** sorted by file, line, column, rule *)
  files_scanned : int;  (** .ml and .mli files parsed *)
  parse_errors : (string * string) list;  (** path, message *)
}

val scan : root:string -> dirs:string list -> report
(** Walk [dirs] (repo-relative, under [root]) recursively, skipping
    [_build] and dot-directories; parse every [.ml] (rules) and [.mli]
    (syntax only), and run MLI-REQUIRED over the discovered file set.
    Parse failures are collected, not raised. *)

val findings_table : (Finding.t * bool) list -> Report.Table.t
(** Render findings as a [Report.Table]; the flag marks a finding as
    fresh (beyond its baseline allowance) vs grandfathered. *)

val with_freshness : report -> drift:Baseline.drift -> (Finding.t * bool) list
(** Pair every finding with whether the drift marks it fresh. *)

val summary : report -> drift:Baseline.drift -> string
(** One human line: totals by severity, fresh vs baselined counts, and
    stale-baseline entries if any. *)

val json_report : root:string -> report -> drift:Baseline.drift -> Obs.Json.t
(** The [lint.v1] record: schema tag, scanned-file count, the rule
    taxonomy (id, severity, doc, scope), every finding with its
    [fresh] flag, parse errors, and a summary block. *)
