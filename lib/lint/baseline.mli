(** The grandfathering ratchet: a committed snapshot of how many
    violations of each rule each file is allowed.

    Keying on [(rule, file) -> count] rather than on line numbers keeps
    the baseline stable across unrelated edits: a finding moving ten
    lines down does not trip CI, a {e new} finding in the same file
    does. The file format is plain sorted text (one
    [<count> <rule> <path>] triple per line, [#] comments allowed) so
    diffs of [lint.baseline] review like any other code change.

    Drift is symmetric and deliberate: a file exceeding its allowance
    fails the build, and so does an allowance no longer backed by real
    findings — a stale baseline must be regenerated with
    [--update-baseline], never left silently rotting. *)

type t
(** A multiset of allowances, keyed by (rule id, repo-relative path). *)

val empty : t

val count : t -> rule:string -> file:string -> int
(** Allowance for one key; 0 when absent. *)

val total : t -> int
(** Sum of all allowances. *)

val of_findings : Finding.t list -> t

val to_string : t -> string
(** Render the committed file format, sorted by path then rule. *)

exception Malformed of string
(** Raised by {!of_string} with a line-annotated message. *)

val of_string : string -> t
(** Parse the committed file format; tolerates blank lines and [#]
    comments. Duplicate keys sum. Raises {!Malformed} on anything
    else. *)

val load : path:string -> t
(** Read and parse; a missing file is an empty baseline. *)

val save : path:string -> t -> unit
(** Atomic write ({!Report.Fsio.write_atomic}): an interrupted
    [--update-baseline] never truncates the committed ratchet. *)

type drift = {
  fresh : (Finding.t * int) list;
      (** findings beyond their key's allowance, paired with it *)
  stale : (string * string * int * int) list;
      (** (rule, file, allowed, actual) entries whose allowance now
          exceeds reality: the baseline must be regenerated *)
}

val prune : t -> Finding.t list -> t
(** Ratchet allowances down to reality: each key's allowance becomes
    [min allowed actual] (dropped entirely at 0). Never raises an
    allowance — fresh findings stay fresh; this is [--prune-baseline],
    the sanctioned way to clear stale entries after fixing violations
    without re-grandfathering anything. *)

val diff : baseline:t -> Finding.t list -> drift
(** Compare current findings against the allowance. Within one key the
    {e last} findings in report order are the fresh ones (the baseline
    cannot know which of n+1 findings is new; reporting any one of
    them gets the author to the right file and rule). *)

val clean : drift -> bool
