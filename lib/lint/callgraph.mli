(** Phase 2 substrate: the project call graph over module-qualified
    paths (DESIGN §15).

    Nodes are top-level definitions [(file, dotted def name)]; edges
    are identifier uses (higher-order uses included — passing a
    function to [List.map] is an edge) resolved against the module
    tables, excluding uses sitting under a [try]/match-exception
    boundary. Resolution tries, in order: a nested module of the same
    file; a sibling module of the same wrapping library; a fully
    library-qualified path ([Numerics.Robust.root]); each [open] in
    scope. Unresolvable uses (stdlib, locals, constructors) contribute
    no edge — the analysis is conservative over project code only. *)

type project = {
  infos : Index.file_info list;
  lib_of : string -> string option;
      (** repo-relative path -> capitalized wrapping-library module
          (e.g. ["lib/numerics/robust.ml"] -> [Some "Numerics"]) *)
}

type node = { n_file : string; n_def : string }

val make_project :
  lib_of:(string -> string option) -> Index.file_info list -> project

type t

val build : project -> t

val def_of : t -> node -> Index.def_info option
val info_of : t -> string -> Index.file_info option

val node_name : t -> node -> string
(** Human name: ["Robust.root"]. *)

val reachable :
  ?follow:(node -> bool) -> t -> from:node -> (node * node list) list
(** Every definition reachable from [from] over unabsorbed resolved
    edges (including [from] itself), paired with one call path (entry
    first). [follow] prunes traversal (EXN-ESCAPE uses it for
    suppression barriers). Deterministic order: BFS with source-order
    edge lists. *)
