(** SARIF 2.1.0 exposition of a lint run — the interchange shape
    GitHub code scanning and SARIF viewers ingest, emitted by
    [sublint --sarif] next to the native [lint.v1] JSON.

    Minimal profile: one run; the full {!Rules.all} taxonomy on
    [tool.driver.rules] (with [ruleIndex] back-references from
    results); one result per finding with a physical location
    (1-based SARIF columns, converted from the 0-based
    {!Finding.t} columns) under the [REPOROOT] URI base; and a
    [baselineState] derived from the count ratchet — ["new"] when the
    finding is beyond its baseline allowance, ["unchanged"] when
    grandfathered. *)

val version : string
(** The [tool.driver.version] stamp. *)

val report : root:string -> results:(Finding.t * bool) list -> Obs.Json.t
(** The complete SARIF document; [results] pairs each finding with its
    freshness flag (from {!Driver.with_freshness}). Deterministic:
    depends only on the inputs and {!Rules.all}. *)
