(** The content-digest incremental cache behind [lint.cache]
    (DESIGN §15): path -> (digest, phase-1 {!Index.file_info}).

    A warm run on an unchanged tree re-parses zero files; the semantic
    phase is recomputed from the cached indexes every run, so cached
    and fresh runs produce byte-identical reports. Lookups/inserts are
    mutex-guarded (they run from pool workers); persistence is
    Marshal behind {!Report.Fsio.write_atomic}, guarded by a version
    string (cache format + rule set + compiler) — on any mismatch or
    decode failure the cache is simply cold, never an error. *)

type t

val empty : version:string -> t

val load : version:string -> string -> t
(** Read a cache file; a missing, corrupt or version-mismatched file
    yields an empty cache. *)

val find : t -> path:string -> digest:string -> Index.file_info option
(** The cached index for [path], only if the content digest matches. *)

val add : t -> path:string -> digest:string -> Index.file_info -> unit

val save : t -> string -> (unit, string) result
(** Persist atomically, entries sorted by path (deterministic bytes). *)
