(* The project call graph over module-qualified paths: nodes are
   top-level definitions (file, dotted def name), edges are identifier
   uses resolved against the module tables. Resolution is syntactic
   and conservative: a use that cannot be resolved to a project
   definition (stdlib, locals, constructors) contributes no edge. *)

type project = {
  infos : Index.file_info list;
  lib_of : string -> string option;
      (* repo-relative path -> capitalized wrapping-library module *)
}

type node = { n_file : string; n_def : string }

let make_project ~lib_of infos = { infos; lib_of }

(* ------------------------------------------------------------------ *)
(* lookup tables *)

type tables = {
  by_lib_module : (string * string, Index.file_info) Hashtbl.t;
  def_set : (string * string, Index.def_info) Hashtbl.t;
  libs : (string, unit) Hashtbl.t;
}

let tables_of p =
  let by_lib_module = Hashtbl.create 256 in
  let def_set = Hashtbl.create 1024 in
  let libs = Hashtbl.create 16 in
  List.iter
    (fun (info : Index.file_info) ->
      (match p.lib_of info.Index.path with
      | Some lib ->
        Hashtbl.replace libs lib ();
        (* .ml wins over .mli for module lookup: defs live in the .ml *)
        if Filename.check_suffix info.Index.path ".ml" then
          Hashtbl.replace by_lib_module (lib, info.Index.module_name) info
        else if not (Hashtbl.mem by_lib_module (lib, info.Index.module_name))
        then Hashtbl.replace by_lib_module (lib, info.Index.module_name) info
      | None -> ());
      List.iter
        (fun (d : Index.def_info) ->
          Hashtbl.replace def_set (info.Index.path, d.Index.d_name) d)
        info.Index.defs)
    p.infos;
  { by_lib_module; def_set; libs }

let dotted l = String.concat "." l

(* resolve a use path written in [from_info] to a project definition *)
let resolve_in t p (from_info : Index.file_info) path =
  match List.rev path with
  | [] -> None
  | f :: rev_mods -> (
    let mods = List.rev rev_mods in
    let has_def file name = Hashtbl.mem t.def_set (file, name) in
    let in_module (m : Index.file_info) rest =
      let name = dotted (rest @ [ f ]) in
      if has_def m.Index.path name then Some { n_file = m.Index.path; n_def = name }
      else None
    in
    let qualified expanded =
      match expanded with
      | lib :: m :: rest when Hashtbl.mem t.libs lib -> begin
        match Hashtbl.find_opt t.by_lib_module (lib, m) with
        | Some info -> in_module info rest
        | None -> None
      end
      | _ -> None
    in
    let same_library () =
      match (p.lib_of from_info.Index.path, mods) with
      | Some lib, m :: rest -> begin
        match Hashtbl.find_opt t.by_lib_module (lib, m) with
        | Some info -> in_module info rest
        | None -> None
      end
      | _ -> None
    in
    let via_opens () =
      List.find_map
        (fun o -> qualified (o @ mods))
        from_info.Index.opens
    in
    match mods with
    | [] -> in_module from_info []
    | _ -> (
      (* same-file nested module def *)
      match in_module from_info mods with
      | Some n -> Some n
      | None -> (
        match same_library () with
        | Some n -> Some n
        | None -> (
          match qualified mods with
          | Some n -> Some n
          | None -> via_opens ()))))

(* ------------------------------------------------------------------ *)
(* the graph *)

type t = {
  proj : project;
  tbl : tables;
  edges : (node, (node * Index.use_site) list) Hashtbl.t;
  info_of : (string, Index.file_info) Hashtbl.t;
}

let build proj =
  let tbl = tables_of proj in
  let edges = Hashtbl.create 1024 in
  let info_of = Hashtbl.create 256 in
  List.iter
    (fun (info : Index.file_info) ->
      Hashtbl.replace info_of info.Index.path info;
      List.iter
        (fun (d : Index.def_info) ->
          let from = { n_file = info.Index.path; n_def = d.Index.d_name } in
          let outgoing =
            List.filter_map
              (fun (u : Index.use_site) ->
                if u.Index.u_absorbed then None
                else
                  match resolve_in tbl proj info u.Index.callee with
                  | Some n when not (n.n_file = from.n_file && n.n_def = from.n_def)
                    -> Some (n, u)
                  | Some _ | None -> None)
              d.Index.uses
          in
          Hashtbl.replace edges from outgoing)
        info.Index.defs)
    proj.infos;
  { proj; tbl; edges; info_of }

let def_of g node =
  Hashtbl.find_opt g.tbl.def_set (node.n_file, node.n_def)

let info_of g file = Hashtbl.find_opt g.info_of file

let node_name g node =
  match info_of g node.n_file with
  | Some i -> i.Index.module_name ^ "." ^ node.n_def
  | None -> node.n_def

(* breadth-first reachability from [from] over unabsorbed resolved
   edges, skipping defs rejected by [follow]; returns every reachable
   node paired with its call path (entry first). Deterministic: edge
   lists preserve source order, the worklist is FIFO. *)
let reachable ?(follow = fun _ -> true) g ~from =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let q = Queue.create () in
  if follow from then begin
    Hashtbl.replace seen (from.n_file, from.n_def) ();
    Queue.add (from, [ from ]) q
  end;
  while not (Queue.is_empty q) do
    let node, path = Queue.pop q in
    out := (node, List.rev path) :: !out;
    match Hashtbl.find_opt g.edges node with
    | None -> ()
    | Some outgoing ->
      List.iter
        (fun (n, _) ->
          if (not (Hashtbl.mem seen (n.n_file, n.n_def))) && follow n then begin
            Hashtbl.replace seen (n.n_file, n.n_def) ();
            Queue.add (n, n :: path) q
          end)
        outgoing
  done;
  List.rev !out
