(* SARIF 2.1.0 exposition of a lint run: the interchange shape GitHub
   code scanning and SARIF viewers ingest, emitted next to lint.v1.
   Minimal profile: one run, the full rule taxonomy on the driver,
   one result per finding with a physical location and a
   baselineState derived from the ratchet ("new" when the finding is
   beyond its baseline allowance, "unchanged" when grandfathered). *)

let version = "2.0.0"

let schema_uri = "https://json.schemastore.org/sarif-2.1.0.json"

let level_of = function
  | Finding.Error -> "error"
  | Finding.Warning -> "warning"

let rule_json (r : Rules.t) =
  let open Obs.Json in
  Obj
    [
      ("id", Str r.Rules.id);
      ("shortDescription", Obj [ ("text", Str r.Rules.doc) ]);
      ( "defaultConfiguration",
        Obj [ ("level", Str (level_of r.Rules.severity)) ] );
    ]

let result_json ~rule_index ((f : Finding.t), is_fresh) =
  let open Obs.Json in
  let index =
    match List.assoc_opt f.Finding.rule rule_index with
    | Some i -> [ ("ruleIndex", Num (float_of_int i)) ]
    | None -> []
  in
  Obj
    ([ ("ruleId", Str f.Finding.rule) ]
    @ index
    @ [
        ("level", Str (level_of f.Finding.severity));
        ("message", Obj [ ("text", Str f.Finding.message) ]);
        ( "locations",
          Arr
            [
              Obj
                [
                  ( "physicalLocation",
                    Obj
                      [
                        ( "artifactLocation",
                          Obj
                            [
                              ("uri", Str f.Finding.file);
                              ("uriBaseId", Str "REPOROOT");
                            ] );
                        (* SARIF regions are 1-based in both axes;
                           Finding columns are 0-based *)
                        ( "region",
                          Obj
                            [
                              ("startLine", Num (float_of_int f.Finding.line));
                              ( "startColumn",
                                Num (float_of_int (f.Finding.col + 1)) );
                              ( "endLine",
                                Num (float_of_int f.Finding.end_line) );
                              ( "endColumn",
                                Num (float_of_int (f.Finding.end_col + 1)) );
                            ] );
                      ] );
                ];
            ] );
        ("baselineState", Str (if is_fresh then "new" else "unchanged"));
      ])

let report ~root ~results =
  let open Obs.Json in
  let rule_index = List.mapi (fun i (r : Rules.t) -> (r.Rules.id, i)) Rules.all in
  Obj
    [
      ("$schema", Str schema_uri);
      ("version", Str "2.1.0");
      ( "runs",
        Arr
          [
            Obj
              [
                ( "tool",
                  Obj
                    [
                      ( "driver",
                        Obj
                          [
                            ("name", Str "sublint");
                            ("version", Str version);
                            ("rules", Arr (List.map rule_json Rules.all));
                          ] );
                    ] );
                ( "originalUriBaseIds",
                  Obj [ ("REPOROOT", Obj [ ("uri", Str root) ]) ] );
                ("results", Arr (List.map (result_json ~rule_index) results));
              ];
          ] );
    ]
