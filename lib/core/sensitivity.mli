(** Equilibrium sensitivity analysis (Theorems 6 and 8).

    A regular Nash equilibrium is locally a differentiable function
    [s (p, q)] of the ISP price and the policy cap. The derivatives
    follow the variational-inequality sensitivity formulas (11)-(12):
    the CPs pinned at 0 or [q] keep their corner behaviour, while the
    interior CPs move by [-Psi] times the forcing term, where
    [Psi = (grad_s~ u~)^{-1}] inverts the interior block of the marginal
    utility Jacobian. *)

type partition = {
  lower : int array;  (** [N-]: subsidies at 0 *)
  interior : int array;  (** [N~] *)
  upper : int array;  (** [N+]: subsidies at the cap [q] *)
}

val partition : ?tol:float -> Subsidy_game.t -> subsidies:Numerics.Vec.t -> partition

val marginal_jacobian :
  ?h:float -> Subsidy_game.t -> subsidies:Numerics.Vec.t -> Numerics.Mat.t
(** The full [n x n] Jacobian [du_i/ds_j]. Without an explicit [h] (and
    in [Fast] continuation mode) it is exact — [n] dual-number column
    passes through the analytic marginals; supplying [h] (or [Legacy]
    mode) reverts to central differences. *)

val du_dprice : ?h:float -> Subsidy_game.t -> subsidies:Numerics.Vec.t -> Numerics.Vec.t
(** [du_i/dp] at fixed subsidies: one price-seeded dual pass (exact) by
    default, central differences over the price when [h] is given or in
    [Legacy] mode. *)

val ds_dq : Subsidy_game.t -> subsidies:Numerics.Vec.t -> Numerics.Vec.t
(** Equation (11): the policy derivative of the equilibrium profile at
    fixed price — 0 on [N-], 1 on [N+],
    [-Psi grad_{N+} u~ 1] on [N~]. Raises [Numerics.Linalg.Singular]
    when the equilibrium is not regular. *)

val ds_dp : Subsidy_game.t -> subsidies:Numerics.Vec.t -> Numerics.Vec.t
(** Equation (12): the price derivative at fixed policy — 0 outside
    [N~], [-Psi du~/dp] on it. *)

(** {2 Policy effect with ISP price response (Theorem 8)} *)

type policy_effect = {
  dp_dq : float;  (** the assumed ISP price response *)
  ds_dq_total : Numerics.Vec.t;
      (** [ds_i/dq = partial_q s_i + partial_p s_i * dp/dq] (eq. 21) *)
  dcharge_dq : Numerics.Vec.t;  (** [dt_i/dq = dp/dq - ds_i/dq] *)
  dpopulation_dq : Numerics.Vec.t;  (** equation (15) *)
  dphi_dq : float;  (** equation (16) *)
  drate_dq : Numerics.Vec.t;  (** [dlambda_i/dq] *)
  dthroughput_dq : Numerics.Vec.t;
  dwelfare_dq : float;  (** [sum_i v_i dtheta_i/dq] *)
}

val policy_effect :
  ?dp_dq:float -> Subsidy_game.t -> subsidies:Numerics.Vec.t -> policy_effect
(** Evaluate Theorem 8 at an equilibrium. [dp_dq] defaults to 0 (fixed
    or regulated price, the Corollary-1 regime). *)

val condition17_margin :
  Subsidy_game.t -> policy_effect -> state:System.state -> int -> float
(** The slack of condition (17) for CP [i]:
    [-eps^phi_q - eps^mi_ti eps^ti_q / eps^lambdai_phi], which has the
    same sign as [dtheta_i/dq] — positive iff the CP's throughput grows
    with deregulation. Falls back to the sign-equivalent raw derivative
    [dtheta_i/dq] when an elasticity in the formula is undefined
    ([q = 0], [t_i = 0] or [phi = 0]). *)
