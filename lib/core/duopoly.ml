open Numerics

type t = {
  cps : Econ.Cp.t array;
  utilization : Econ.Utilization.t;
  capacity_a : float;
  capacity_b : float;
  eta : float;
  cap : float;
  mutable subsidy_cache : Vec.t option; (* warm start for the CP game *)
  mutable phi_cache_a : float; (* warm starts for the two utilization solves *)
  mutable phi_cache_b : float;
}

type market = {
  prices : float * float;
  subsidies : Vec.t;
  utilizations : float * float;
  populations : Vec.t * Vec.t;
  throughputs : Vec.t;
  revenues : float * float;
  welfare : float;
}

let make ?(utilization = Econ.Utilization.linear) ?(eta = 4.) ~cps ~capacity_a
    ~capacity_b ~cap () =
  if Array.length cps = 0 then invalid_arg "Duopoly.make: no content providers";
  if capacity_a <= 0. || capacity_b <= 0. then
    invalid_arg "Duopoly.make: capacities must be positive";
  if eta <= 0. then invalid_arg "Duopoly.make: eta must be positive";
  if cap < 0. then invalid_arg "Duopoly.make: cap must be non-negative";
  {
    cps = Array.copy cps;
    utilization;
    capacity_a;
    capacity_b;
    eta;
    cap;
    subsidy_cache = None;
    phi_cache_a = 1.;
    phi_cache_b = 1.;
  }

let cap d = d.cap

let split_populations d ~prices ~subsidies =
  let pa, pb = prices in
  let n = Array.length d.cps in
  if Vec.dim subsidies <> n then invalid_arg "Duopoly: subsidy dimension mismatch";
  let ma = Vec.zeros n and mb = Vec.zeros n in
  Array.iteri
    (fun i cp ->
      let ta = pa -. subsidies.(i) and tb = pb -. subsidies.(i) in
      let total = Econ.Cp.population cp (Float.min ta tb) in
      (* logit with the common subsidy cancelling out of the difference *)
      let wa = exp (-.d.eta *. ta) and wb = exp (-.d.eta *. tb) in
      let share_a = wa /. (wa +. wb) in
      ma.(i) <- total *. share_a;
      mb.(i) <- total *. (1. -. share_a))
    d.cps;
  (ma, mb)

let systems d =
  let sys_a = System.make ~utilization:d.utilization ~cps:d.cps ~capacity:d.capacity_a () in
  let sys_b = System.make ~utilization:d.utilization ~cps:d.cps ~capacity:d.capacity_b () in
  (sys_a, sys_b)

let states d ~prices ~subsidies =
  let ma, mb = split_populations d ~prices ~subsidies in
  let sys_a, sys_b = systems d in
  (* continuation mode carries each ISP's utilization across the many
     nearby solves a best-response sweep makes *)
  let warm = Continuation.fast () in
  let guess cache = if warm then Some cache else None in
  let st_a =
    System.solve_fixed_populations ?phi_guess:(guess d.phi_cache_a) sys_a ~populations:ma
  in
  let st_b =
    System.solve_fixed_populations ?phi_guess:(guess d.phi_cache_b) sys_b ~populations:mb
  in
  if warm then begin
    d.phi_cache_a <- Float.max st_a.System.phi 1e-6;
    d.phi_cache_b <- Float.max st_b.System.phi 1e-6
  end;
  (st_a, st_b)

let total_throughputs (st_a : System.state) (st_b : System.state) =
  Vec.add st_a.System.throughputs st_b.System.throughputs

module D2 = Dual.Order2

(* fused duopoly marginal: (dU_i/ds_i, d2U_i/ds_i2) at (s with
   s_i := si) from one warm primal solve per ISP plus a second-order
   dual pass through both utilization equilibria. The logit shares are
   constant in the own subsidy (it cancels from the charge difference),
   so only CP i's total population and the two [phi] move. *)
let fused_marginal d ~prices i s si =
  let pa, pb = prices in
  let n = Array.length d.cps in
  let subsidies = Vec.init n (fun j -> if j = i then si else s.(j)) in
  let st_a, st_b = states d ~prices ~subsidies in
  let sys_a, sys_b = systems d in
  let cp = d.cps.(i) in
  (* the min branch is fixed by the price difference, not by s_i *)
  let t_i = D2.make ~v:(Float.min (pa -. si) (pb -. si)) ~d:(-1.) ~dd:0. in
  let total_i = Econ.Cp.population_d2 cp t_i in
  let share_a =
    let wa = exp (-.d.eta *. (pa -. si)) and wb = exp (-.d.eta *. (pb -. si)) in
    wa /. (wa +. wb)
  in
  let seeded (st : System.state) share =
    Array.init n (fun j ->
        if j = i then D2.(const share * total_i)
        else D2.const st.System.populations.(j))
  in
  let pops_a = seeded st_a share_a and pops_b = seeded st_b (1. -. share_a) in
  let phi_a =
    System.phi_d2 sys_a ~populations:pops_a ~phi:st_a.System.phi
      ~gap_slope:st_a.System.gap_slope
  in
  let phi_b =
    System.phi_d2 sys_b ~populations:pops_b ~phi:st_b.System.phi
      ~gap_slope:st_b.System.gap_slope
  in
  let theta =
    D2.(
      (pops_a.(i) * Econ.Cp.rate_d2 cp phi_a)
      + (pops_b.(i) * Econ.Cp.rate_d2 cp phi_b))
  in
  let u = D2.((const cp.Econ.Cp.value - make ~v:si ~d:1. ~dd:0.) * theta) in
  (D2.d u, D2.dd u)

let cp_game d ~prices =
  let n = Array.length d.cps in
  let box = Gametheory.Box.uniform ~dim:n ~lo:0. ~hi:d.cap in
  let payoff i s =
    let st_a, st_b = states d ~prices ~subsidies:s in
    let theta = total_throughputs st_a st_b in
    (d.cps.(i).Econ.Cp.value -. s.(i)) *. theta.(i)
  in
  Gametheory.Best_response.make ~respond_points:17
    ~fused:(fun i s si -> fused_marginal d ~prices i s si)
    ~box ~payoff ()

let solve_subsidies d ~prices =
  let n = Array.length d.cps in
  if d.cap <= 0. then Vec.zeros n
  else begin
    let game = cp_game d ~prices in
    let x0 =
      match d.subsidy_cache with
      | Some s when Vec.dim s = n -> Vec.clamp ~lo:0. ~hi:d.cap s
      | Some _ | None -> Vec.zeros n
    in
    let out = Gametheory.Best_response.solve ~tol:1e-7 ~max_sweeps:100 game ~x0 in
    d.subsidy_cache <- Some out.Gametheory.Best_response.profile;
    out.Gametheory.Best_response.profile
  end

let market_with_subsidies d ~prices ~subsidies =
  let pa, pb = prices in
  let st_a, st_b = states d ~prices ~subsidies in
  let throughputs = total_throughputs st_a st_b in
  let welfare = ref 0. in
  Array.iteri (fun i cp -> welfare := !welfare +. (cp.Econ.Cp.value *. throughputs.(i))) d.cps;
  {
    prices;
    subsidies;
    utilizations = (st_a.System.phi, st_b.System.phi);
    populations = (st_a.System.populations, st_b.System.populations);
    throughputs;
    revenues = (pa *. st_a.System.aggregate, pb *. st_b.System.aggregate);
    welfare = !welfare;
  }

let market_at d ~prices =
  let subsidies = solve_subsidies d ~prices in
  market_with_subsidies d ~prices ~subsidies

let revenue_of d ~prices which =
  let m = market_at d ~prices in
  match which with `A -> fst m.revenues | `B -> snd m.revenues

let price_equilibrium ?(p_max = 2.5) ?(points = 13) ?(tol = 1e-4) ?(max_sweeps = 30) d =
  let box = Gametheory.Box.uniform ~dim:2 ~lo:0. ~hi:p_max in
  let payoff i (p : Vec.t) =
    revenue_of d ~prices:(p.(0), p.(1)) (if i = 0 then `A else `B)
  in
  (* no analytic price derivative: line-search responses *)
  let game = Gametheory.Best_response.make ~respond_points:points ~box ~payoff () in
  let out =
    Gametheory.Best_response.solve ~tol ~max_sweeps game
      ~x0:(Vec.make 2 (p_max /. 2.))
  in
  let p = out.Gametheory.Best_response.profile in
  market_at d ~prices:(p.(0), p.(1))

let monopoly_benchmark ?(p_max = 2.5) ?(points = 25) d =
  let revenue p =
    let m = market_at d ~prices:(p, p) in
    fst m.revenues +. snd m.revenues
  in
  let r = Optimize.grid_then_golden ~points ~tol:1e-4 revenue ~lo:0. ~hi:p_max in
  market_at d ~prices:(r.Optimize.x, r.Optimize.x)
