type point = {
  cap : float;
  price : float;
  equilibrium : Nash.equilibrium;
  revenue : float;
  welfare : float;
  utilization : float;
}

let nash_at sys ~price ~cap = Nash.solve (Subsidy_game.make sys ~price ~cap)

let point_of_equilibrium sys ~price ~cap (eq : Nash.equilibrium) =
  {
    cap;
    price;
    equilibrium = eq;
    revenue = price *. eq.Nash.state.System.aggregate;
    welfare = Welfare.of_state sys eq.Nash.state;
    utilization = eq.Nash.state.System.phi;
  }

let point_at sys ~price ~cap =
  point_of_equilibrium sys ~price ~cap (nash_at sys ~price ~cap)

(* one grid cell: Nash at (price, cap) predicted from the previous
   cells on the chunk's continuation track (secant through the last
   two equilibria in Fast mode, plain warm start in Legacy) *)
let sweep_step sys ~cap track price =
  let solve () =
    let game = Subsidy_game.make sys ~price ~cap in
    let eq =
      Numerics.Continuation.solve_cell track ~at:price
        ~clamp:(Numerics.Vec.clamp ~lo:0. ~hi:cap)
        ~solve:(fun x0 -> Nash.solve ?x0 game)
        ~extract:(fun (eq : Nash.equilibrium) ->
          (eq.Nash.subsidies, eq.Nash.converged))
        ()
    in
    (point_of_equilibrium sys ~price ~cap eq, track)
  in
  if Obs.Trace.enabled () then
    Obs.Trace.with_span "price.point"
      ~attrs:[ ("price", Printf.sprintf "%g" price); ("cap", Printf.sprintf "%g" cap) ]
      solve
  else solve ()

(* fixed: chunk boundaries must not move with the domain count, or the
   warm-start chains (hence the solved bits) would *)
let default_chunk = 8

let price_sweep ?pool ?(chunk = default_chunk) sys ~cap ~prices =
  match pool with
  | None ->
    Parallel.Pool.fold_map
      ~init:(Numerics.Continuation.track ())
      ~step:(sweep_step sys ~cap) prices
  | Some pool ->
    Parallel.Pool.map_chunked pool ~chunk
      ~init:(fun _ -> Numerics.Continuation.track ())
      ~step:(sweep_step sys ~cap) prices

let policy_sweep ?pool ?(chunk = default_chunk) sys ~caps ~prices =
  match pool with
  | None -> Array.map (fun cap -> price_sweep ~chunk sys ~cap ~prices) caps
  | Some pool ->
    (* flatten (cap x price-chunk) into a single batch so a narrow
       price grid still feeds every domain; each task is one warm-start
       chain, identical to the chunk it would be under [price_sweep] *)
    let rs = Parallel.Pool.ranges ~n:(Array.length prices) ~chunk in
    let nr = Array.length rs in
    let slots = Array.make (Array.length caps * nr) [||] in
    let fns =
      Array.init (Array.length caps * nr) (fun t ->
          let cap = caps.(t / nr) in
          let lo, hi = rs.(t mod nr) in
          fun () ->
            slots.(t) <-
              Parallel.Pool.fold_map
                ~init:(Numerics.Continuation.track ())
                ~step:(sweep_step sys ~cap)
                (Array.sub prices lo (hi - lo)))
    in
    Parallel.Pool.run_tasks pool fns;
    Array.init (Array.length caps) (fun qi ->
        Array.concat (Array.to_list (Array.sub slots (qi * nr) nr)))

let optimal_price ?(p_max = 3.) ?(points = 49) ?track sys ~cap =
  let game = Subsidy_game.make sys ~price:0. ~cap in
  let p_star, _ = Revenue.optimal_price ~p_max ~points ?track game in
  point_at sys ~price:p_star ~cap

let deregulation_ladder sys ~price ~caps =
  Parallel.Pool.fold_map
    ~init:(Numerics.Continuation.track ())
    ~step:(fun track cap ->
      let game = Subsidy_game.make sys ~price ~cap in
      let eq =
        Numerics.Continuation.solve_cell track ~at:cap
          ~clamp:(Numerics.Vec.clamp ~lo:0. ~hi:cap)
          ~solve:(fun x0 -> Nash.solve ?x0 game)
          ~extract:(fun (eq : Nash.equilibrium) ->
            (eq.Nash.subsidies, eq.Nash.converged))
          ()
      in
      (point_of_equilibrium sys ~price ~cap eq, track))
    caps

let price_response_slope ?(h = 1e-3) sys ~cap ?p_max () =
  let p_at cap =
    let point = optimal_price ?p_max sys ~cap in
    point.price
  in
  if cap -. h < 0. then (p_at (cap +. h) -. p_at cap) /. h
  else (p_at (cap +. h) -. p_at (cap -. h)) /. (2. *. h)
