type point = {
  cap : float;
  price : float;
  equilibrium : Nash.equilibrium;
  revenue : float;
  welfare : float;
  utilization : float;
}

let nash_at sys ~price ~cap = Nash.solve (Subsidy_game.make sys ~price ~cap)

let point_of_equilibrium sys ~price ~cap (eq : Nash.equilibrium) =
  {
    cap;
    price;
    equilibrium = eq;
    revenue = price *. eq.Nash.state.System.aggregate;
    welfare = Welfare.of_state sys eq.Nash.state;
    utilization = eq.Nash.state.System.phi;
  }

let point_at sys ~price ~cap =
  point_of_equilibrium sys ~price ~cap (nash_at sys ~price ~cap)

let price_sweep sys ~cap ~prices =
  let warm = ref None in
  Array.map
    (fun price ->
      let solve () =
        let game = Subsidy_game.make sys ~price ~cap in
        let eq = Nash.solve ?x0:!warm game in
        warm := Some eq.Nash.subsidies;
        point_of_equilibrium sys ~price ~cap eq
      in
      if Obs.Trace.enabled () then
        Obs.Trace.with_span "price.point"
          ~attrs:[ ("price", Printf.sprintf "%g" price); ("cap", Printf.sprintf "%g" cap) ]
          solve
      else solve ())
    prices

let policy_sweep sys ~caps ~prices =
  Array.map (fun cap -> price_sweep sys ~cap ~prices) caps

let optimal_price ?(p_max = 3.) ?(points = 49) sys ~cap =
  let game = Subsidy_game.make sys ~price:0. ~cap in
  let p_star, _ = Revenue.optimal_price ~p_max ~points game in
  point_at sys ~price:p_star ~cap

let deregulation_ladder sys ~price ~caps =
  let warm = ref None in
  Array.map
    (fun cap ->
      let game = Subsidy_game.make sys ~price ~cap in
      let eq = Nash.solve ?x0:(Option.map (Numerics.Vec.clamp ~lo:0. ~hi:cap) !warm) game in
      warm := Some eq.Nash.subsidies;
      point_of_equilibrium sys ~price ~cap eq)
    caps

let price_response_slope ?(h = 1e-3) sys ~cap ?p_max () =
  let p_at cap =
    let point = optimal_price ?p_max sys ~cap in
    point.price
  in
  if cap -. h < 0. then (p_at (cap +. h) -. p_at cap) /. h
  else (p_at (cap +. h) -. p_at (cap -. h)) /. (2. *. h)
