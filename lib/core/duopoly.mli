(** Access-ISP competition (the Section-6 conjecture).

    The paper studies a single access ISP and conjectures that
    competition between ISPs would both discipline prices and still
    reward subsidization. This module models the smallest such market:
    two ISPs covering the same CP population.

    Users of CP [i] facing effective charges [t_ik = p_k - s_i] split
    between the ISPs by a logit rule with sensitivity [eta], applied to
    a total demand evaluated at the cheaper charge:

    [m_ik = m_i(min_k t_ik) * exp(-eta t_ik) / sum_l exp(-eta t_il)].

    Each ISP then settles at its own utilization equilibrium (Lemma 1
    per ISP, via {!System.solve_fixed_populations}); a CP's throughput
    is the sum over ISPs. CPs still play the subsidization game (one
    subsidy per CP, honoured by both ISPs, capped by the policy [q]);
    the ISPs play a simultaneous price game on top. *)

type t

type market = {
  prices : float * float;
  subsidies : Numerics.Vec.t;
  utilizations : float * float;
  populations : Numerics.Vec.t * Numerics.Vec.t;  (** per ISP, per CP *)
  throughputs : Numerics.Vec.t;  (** total per CP *)
  revenues : float * float;
  welfare : float;
}

val make :
  ?utilization:Econ.Utilization.t ->
  ?eta:float ->
  cps:Econ.Cp.t array ->
  capacity_a:float ->
  capacity_b:float ->
  cap:float ->
  unit ->
  t
(** [eta] (default 4) controls how sharply users chase the cheaper
    ISP. Raises [Invalid_argument] on non-positive capacities or
    [eta], a negative cap, or an empty CP array. *)

val cap : t -> float

val split_populations :
  t -> prices:float * float -> subsidies:Numerics.Vec.t -> Numerics.Vec.t * Numerics.Vec.t
(** The logit population split, before any congestion effect. *)

val fused_marginal :
  t -> prices:float * float -> int -> Numerics.Vec.t -> float -> float * float
(** [fused_marginal d ~prices i s si]: CP [i]'s marginal payoff and its
    own-subsidy slope at the profile [s] with [s_i := si], from one
    warm primal solve per ISP plus a second-order dual pass through
    both utilization equilibria (the logit share is constant in the
    common subsidy). Drives the fused Newton best response of the CP
    game in continuation mode; exported for the derivative pin tests. *)

val market_at : t -> prices:float * float -> market
(** Solve the CPs' subsidization game under the given price pair, then
    both utilization equilibria. With [cap = 0] the CP game is skipped
    (all subsidies zero). *)

val price_equilibrium :
  ?p_max:float -> ?points:int -> ?tol:float -> ?max_sweeps:int -> t -> market
(** The ISPs' simultaneous price game by iterated best response
    (derivative-free line search per ISP, [points] default 13,
    [p_max] default 2.5). Returns the market at the equilibrium
    prices. *)

val monopoly_benchmark : ?p_max:float -> ?points:int -> t -> market
(** The same duopoly demand system under a single decision maker
    choosing one common price to maximize total revenue — the collusive
    / monopoly reference point for the competition comparison. *)
