open Numerics

let levels_33 = [| 1.; 3.; 5. |]

let fig45_cps () =
  let cps = ref [] in
  Array.iter
    (fun alpha ->
      Array.iter
        (fun beta ->
          let name = Printf.sprintf "a%gb%g" alpha beta in
          cps := Econ.Cp.exponential ~name ~alpha ~beta ~value:1. () :: !cps)
        levels_33)
    levels_33;
  Array.of_list (List.rev !cps)

let fig45_system () = System.make ~cps:(fig45_cps ()) ~capacity:1. ()

let fig7_11_cps () =
  let cps = ref [] in
  List.iter
    (fun value ->
      List.iter
        (fun alpha ->
          List.iter
            (fun beta ->
              let name = Printf.sprintf "a%gb%gv%g" alpha beta value in
              cps := Econ.Cp.exponential ~name ~alpha ~beta ~value () :: !cps)
            [ 2.; 5. ])
        [ 2.; 5. ])
    [ 0.5; 1. ];
  Array.of_list (List.rev !cps)

let fig7_11_system () = System.make ~cps:(fig7_11_cps ()) ~capacity:1. ()

let q_levels () = [| 0.; 0.5; 1.0; 1.5; 2.0 |]

let price_grid ?(points = 41) ?(p_max = 2.) () =
  let grid = Grid.linspace 0. p_max points in
  if Array.length grid > 0 && grid.(0) <= 0. then grid.(0) <- 1e-9;
  grid

let random_cp ?(value_hi = 1.5) rng =
  let alpha = Rng.uniform rng ~lo:0.5 ~hi:6. in
  let beta = Rng.uniform rng ~lo:0.5 ~hi:6. in
  let value = Rng.uniform rng ~lo:0. ~hi:value_hi in
  Econ.Cp.exponential ~alpha ~beta ~value ()

let random_system ?n ?capacity rng =
  let n = match n with Some n -> n | None -> 2 + Rng.int rng 7 in
  if n <= 0 then invalid_arg "Scenario.random_system: n must be positive";
  let capacity =
    match capacity with Some c -> c | None -> Rng.uniform rng ~lo:0.5 ~hi:3.
  in
  System.make ~cps:(Array.init n (fun _ -> random_cp rng)) ~capacity ()
