(** The macroscopic system model [(m, mu)] of Section 3.

    A system couples a population of content providers to an access
    ISP's capacity through a utilization function. Given effective
    per-unit charges [t_i] (price minus subsidy for each CP), the user
    populations [m_i(t_i)] are determined, and the system settles at the
    unique utilization [phi] of Definition 1:
    [phi = Phi (sum_k m_k lambda_k (phi), mu)], found as the root of the
    strictly increasing gap function
    [g(phi) = Theta (phi, mu) - sum_k m_k lambda_k (phi)] (Lemma 1). *)

type t = {
  cps : Econ.Cp.t array;
  utilization : Econ.Utilization.t;
  capacity : float;
}

type state = {
  phi : float;  (** equilibrium utilization *)
  charges : Numerics.Vec.t;  (** the effective charges [t_i] used *)
  populations : Numerics.Vec.t;  (** [m_i(t_i)] *)
  rates : Numerics.Vec.t;  (** [lambda_i(phi)] *)
  throughputs : Numerics.Vec.t;  (** [theta_i = m_i lambda_i] *)
  aggregate : float;  (** [theta = sum_i theta_i] *)
  gap_slope : float;  (** [dg/dphi > 0] at the equilibrium *)
}

val make :
  ?utilization:Econ.Utilization.t ->
  cps:Econ.Cp.t array ->
  capacity:float ->
  unit ->
  t
(** [utilization] defaults to the paper's linear family [theta / mu].
    Raises [Invalid_argument] on an empty CP array or non-positive
    capacity. *)

val n_cps : t -> int

val with_capacity : t -> float -> t

val gap : t -> charges:Numerics.Vec.t -> float -> float
(** [gap sys ~charges phi = g(phi)] at fixed populations
    [m_i(charges_i)]. *)

val gap_slope : t -> charges:Numerics.Vec.t -> float -> float
(** [dg/dphi]: supply slope minus (negative) demand slope, strictly
    positive. *)

val equilibrium_phi : ?phi_guess:float -> t -> charges:Numerics.Vec.t -> float
(** The unique root of the gap function, via the {!Numerics.Robust}
    fallback chain (analytic-slope Newton from [phi_guess], default 1,
    then secant, Brent and re-bracketed bisection). Raises
    {!Numerics.Robust.Solver_error} when the whole chain fails —
    numerical failure is a typed solver error, never
    [Invalid_argument]. *)

val solve : ?phi_guess:float -> t -> charges:Numerics.Vec.t -> state
(** Equilibrium utilization plus all derived per-CP quantities. Raises
    {!Numerics.Robust.Solver_error} on numerical failure; sweeps that
    must degrade gracefully use {!solve_result}. *)

val solve_result :
  ?phi_guess:float ->
  t ->
  charges:Numerics.Vec.t ->
  (state, Numerics.Robust.error) result
(** [Result]-typed variant of {!solve} carrying the structured error
    (methods attempted, residuals, bracket history) on failure. *)

val solve_fixed_populations :
  ?phi_guess:float -> t -> populations:Numerics.Vec.t -> state
(** Variant with directly specified user populations (the basic model
    of Figure 2, before prices enter). The state's [charges] are NaN. *)

(** {2 Dual-field equilibria}

    The gap function in forward-mode dual arithmetic, plus
    implicit-function correction steps: given the primal root [phi*]
    and the analytic [gap_slope] there, one correction step
    [phi <- const phi* - gap (phi, s_dual) / const gap_slope] makes the
    first-order dual part of the implicit [phi (s)] exact; two steps in
    second-order arithmetic make the second order exact as well. This
    is how best responses and sensitivities get exact derivatives from
    a single primal solve. Callers must handle the [phi* = 0] market
    boundary themselves (the implicit function is kinked there). *)

val gap_d : t -> Numerics.Dual.t array -> Numerics.Dual.t -> Numerics.Dual.t
(** [gap_d sys populations phi]: the market gap with dual populations
    and dual [phi]. *)

val gap_d2 :
  t -> Numerics.Dual.Order2.t array -> Numerics.Dual.Order2.t -> Numerics.Dual.Order2.t

val gap_slope_d : t -> Numerics.Dual.t array -> Numerics.Dual.t -> Numerics.Dual.t
(** The analytic [dg/dphi] expression in dual arithmetic (needed by
    sensitivity formulas that differentiate through the slope). *)

val phi_d :
  t ->
  populations:Numerics.Dual.t array ->
  phi:float ->
  gap_slope:float ->
  Numerics.Dual.t
(** The implicit equilibrium utilization as a dual number: primal
    [phi], exact first derivative along the populations' seed. *)

val phi_d2 :
  t ->
  populations:Numerics.Dual.Order2.t array ->
  phi:float ->
  gap_slope:float ->
  Numerics.Dual.Order2.t
(** Second-order variant: exact first and second derivatives. *)

(** {2 Comparative statics (Theorem 1)}

    All derivatives are evaluated at a solved state and treat the
    populations [m] as free parameters. *)

val dphi_dcapacity : t -> state -> float
(** Equation (3): [-(dg/dphi)^-1 * dTheta/dmu < 0]. *)

val dphi_dpopulation : t -> state -> int -> float
(** Equation (4): [(dg/dphi)^-1 * lambda_i > 0]. *)

val dthroughput_dcapacity : t -> state -> int -> float
(** [dtheta_i / dmu = m_i lambda_i'(phi) dphi/dmu > 0]. *)

val dthroughput_dpopulation : t -> state -> cp:int -> wrt:int -> float
(** [dtheta_cp / dm_wrt]: positive when [cp = wrt] (own-population
    effect, [lambda_i + m_i lambda_i' dphi/dm_i]), negative otherwise
    (congestion externality). *)
