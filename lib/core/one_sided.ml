open Numerics

let check_price p =
  if p < 0. || not (Float.is_finite p) then
    invalid_arg (Printf.sprintf "One_sided: price must be non-negative, got %g" p)

let state ?phi_guess sys ~price =
  check_price price;
  let solve () = System.solve ?phi_guess sys ~charges:(Vec.make (System.n_cps sys) price) in
  if Obs.Trace.enabled () then
    Obs.Trace.with_span "price.point"
      ~attrs:[ ("price", Printf.sprintf "%g" price) ]
      solve
  else solve ()

let revenue ?phi_guess sys ~price =
  let st = state ?phi_guess sys ~price in
  price *. st.System.aggregate

let population_slope sys (st : System.state) i =
  Econ.Demand.derivative sys.System.cps.(i).Econ.Cp.demand st.System.charges.(i)

let rate_slope sys (st : System.state) i =
  Econ.Throughput.derivative sys.System.cps.(i).Econ.Cp.throughput st.System.phi

let dphi_dprice sys st =
  let n = System.n_cps sys in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (population_slope sys st i *. st.System.rates.(i))
  done;
  !acc /. st.System.gap_slope

let dthroughput_dprice sys st i =
  (population_slope sys st i *. st.System.rates.(i))
  +. (st.System.populations.(i) *. rate_slope sys st i *. dphi_dprice sys st)

let daggregate_dprice sys st =
  let n = System.n_cps sys in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. dthroughput_dprice sys st i
  done;
  !acc

let condition7_margin sys st i =
  let p = st.System.charges.(i) in
  if p <= 0. then invalid_arg "One_sided.condition7_margin: requires p > 0";
  if st.System.phi <= 0. then invalid_arg "One_sided.condition7_margin: requires phi > 0";
  let eps_m_p = population_slope sys st i *. p /. st.System.populations.(i) in
  let eps_lambda_phi = rate_slope sys st i *. st.System.phi /. st.System.rates.(i) in
  let eps_phi_p = dphi_dprice sys st *. p /. st.System.phi in
  -.eps_phi_p -. (eps_m_p /. eps_lambda_phi)

(* one grid cell: solve at [price] warm-started from [guess], emit the
   revenue point and the utilization to warm-start the next cell *)
let revenue_step sys guess price =
  let st = state ~phi_guess:guess sys ~price in
  ((price, price *. st.System.aggregate), Float.max st.System.phi 1e-6)

let revenue_curve ?phi_guess ?pool ?(chunk = 8) sys ~prices =
  let guess0 = match phi_guess with Some g -> g | None -> 1. in
  match pool with
  | None -> Parallel.Pool.fold_map ~init:guess0 ~step:(revenue_step sys) prices
  | Some pool ->
    Parallel.Pool.map_chunked pool ~chunk
      ~init:(fun _ -> guess0)
      ~step:(revenue_step sys) prices

let peak_revenue ?(p_max = 5.) sys =
  if p_max <= 0. then invalid_arg "One_sided.peak_revenue: p_max must be positive";
  let r = Optimize.grid_then_golden ~points:65 (fun p -> revenue sys ~price:p) ~lo:0. ~hi:p_max in
  (r.Optimize.x, r.Optimize.fx)
