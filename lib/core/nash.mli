(** Nash equilibria of the subsidization game (Theorems 3 and 4).

    The solver iterates exact best responses (Gauss-Seidel by default);
    the resulting profile is certified by the Theorem-3 KKT conditions
    and the variational-inequality residual with [F = -u]. *)

type classification = Lower | Interior | Upper
(** Membership in the paper's partition: [Lower = N-] (subsidy 0),
    [Upper = N+] (subsidy pinned at [q]), [Interior = N~]. *)

type equilibrium = {
  subsidies : Numerics.Vec.t;
  state : System.state;  (** utilization equilibrium at the profile *)
  utilities : Numerics.Vec.t;
  classes : classification array;
  sweeps : int;
  converged : bool;
  kkt_residual : float;  (** Theorem-3 stationarity violation *)
}

val solve :
  ?scheme:Gametheory.Best_response.scheme ->
  ?damping:float ->
  ?tol:float ->
  ?max_sweeps:int ->
  ?respond_points:int ->
  ?fused:bool ->
  ?x0:Numerics.Vec.t ->
  Subsidy_game.t ->
  equilibrium
(** Iterated best response from [x0] (default: the zero profile).
    [fused] (default true) is forwarded to {!Subsidy_game.to_game}:
    pass [false] to force the legacy grid-scan best responses even in
    [Fast] continuation mode (the ablation's pre-continuation variant).
    Raises {!Numerics.Robust.Solver_error} when the underlying
    utilization equilibrium is numerically unsolvable at some profile
    (after the whole fallback chain has been tried). *)

val solve_result :
  ?scheme:Gametheory.Best_response.scheme ->
  ?damping:float ->
  ?tol:float ->
  ?max_sweeps:int ->
  ?respond_points:int ->
  ?fused:bool ->
  ?x0:Numerics.Vec.t ->
  Subsidy_game.t ->
  (equilibrium, Numerics.Robust.error) result
(** [Result]-typed variant of {!solve}: a market whose equilibrium
    computation fails anywhere in the nest comes back as a structured
    error, so Monte-Carlo sweeps record a degraded sample instead of
    crashing. *)

val solve_vi :
  ?gamma:float ->
  ?tol:float ->
  ?max_iter:int ->
  ?x0:Numerics.Vec.t ->
  Subsidy_game.t ->
  equilibrium
(** Alternative solver: Korpelevich extragradient iteration on the
    equivalent variational inequality [VI(-u, [0,q]^n)]. Slower than
    iterated best response on this game (it does not exploit the
    one-dimensional structure of each player's problem) but derivative-
    driven and sweep-free; used to cross-validate equilibria and in the
    solver ablation benchmark. The returned [sweeps] counts
    extragradient iterations. *)

val kkt_residual : Subsidy_game.t -> subsidies:Numerics.Vec.t -> float
(** Max complementarity violation of the Theorem-3 first-order
    conditions: [u_i <= 0] when [s_i = 0], [u_i >= 0] when [s_i = q],
    [u_i = 0] inside. *)

val classify :
  ?tol:float -> Subsidy_game.t -> subsidies:Numerics.Vec.t -> classification array

val threshold_consistency : Subsidy_game.t -> subsidies:Numerics.Vec.t -> float
(** Max over interior and upper CPs of
    [|s_i - min (tau_i s) q|] — the fixed-point form of Theorem 3.
    Small at a true equilibrium. *)

val multistart_spread :
  ?starts:int -> Numerics.Rng.t -> Subsidy_game.t -> float
(** Solve from several starting profiles and report the sup-norm spread
    of the converged equilibria: a numerical probe of the Theorem-4
    uniqueness condition (0 when unique). *)

val off_diagonal_monotone :
  ?h:float -> Subsidy_game.t -> subsidies:Numerics.Vec.t -> bool
(** Whether [du_i/ds_j >= 0] for all [i <> j] at the profile (the
    Corollary-1 Leontief stability condition), by central differences of
    the analytic marginals. *)

val jacobian_is_p_matrix : Subsidy_game.t -> subsidies:Numerics.Vec.t -> bool
(** Whether [-grad_s u] is a P-matrix at the profile: the local
    sufficient condition in Theorem 4 for uniqueness. *)
