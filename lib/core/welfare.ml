open Numerics

let of_state sys (st : System.state) =
  let acc = ref 0. in
  Array.iteri
    (fun i cp -> acc := !acc +. (cp.Econ.Cp.value *. st.System.throughputs.(i)))
    sys.System.cps;
  !acc

let of_equilibrium game (eq : Nash.equilibrium) =
  of_state (Subsidy_game.system game) eq.Nash.state

let consumer_surplus ?(t_max = 50.) sys (st : System.state) =
  let acc = ref 0. in
  Array.iteri
    (fun i cp ->
      let t_i = st.System.charges.(i) in
      if Float.is_nan t_i then
        invalid_arg "Welfare.consumer_surplus: state has no charges";
      let m x = Econ.Cp.population cp x in
      let integral = Quadrature.adaptive_simpson ~tol:1e-9 m ~lo:t_i ~hi:t_max in
      acc := !acc +. (st.System.rates.(i) *. integral))
    sys.System.cps;
  !acc

let total_surplus ?t_max game (eq : Nash.equilibrium) =
  let sys = Subsidy_game.system game in
  let st = eq.Nash.state in
  let cp_profit = Vec.sum eq.Nash.utilities in
  let isp_revenue = Subsidy_game.price game *. st.System.aggregate in
  let cs = consumer_surplus ?t_max sys st in
  (* subsidies are inside cp_profit (subtracted) and reach users as lower
     charges, which the consumer surplus integral already reflects *)
  cp_profit +. isp_revenue +. cs

type corollary2 = {
  lhs : float;
  rhs : float;
  dphi_dq : float;
  predicted_welfare_increase : bool;
}

let corollary2 ?dp_dq game ~subsidies =
  let effect = Sensitivity.policy_effect ?dp_dq game ~subsidies in
  let st = Subsidy_game.state game ~subsidies in
  let sys = Subsidy_game.system game in
  let n = Subsidy_game.dim game in
  let w = Vec.init n (fun i -> st.System.rates.(i) *. effect.Sensitivity.dpopulation_dq.(i)) in
  let w_total = Vec.sum w in
  let lhs =
    if
      (w_total = 0.
      [@sublint.allow "NO-FLOAT-EQ"
          "exact division guard: the weighted mean below divides by w_total, \
           and exactly-zero weight mass makes it undefined (NaN)"])
    then Float.nan
    else begin
      let acc = ref 0. in
      Array.iteri
        (fun i cp -> acc := !acc +. (w.(i) /. w_total *. cp.Econ.Cp.value))
        sys.System.cps;
      !acc
    end
  in
  let rhs =
    (* -eps^lambdai_mi = -m_i lambda_i'(phi) / (dg/dphi), equation (14) *)
    let acc = ref 0. in
    Array.iteri
      (fun i cp ->
        acc :=
          !acc
          +. (-.st.System.populations.(i)
              *. Econ.Throughput.derivative cp.Econ.Cp.throughput st.System.phi
              /. st.System.gap_slope)
             *. cp.Econ.Cp.value)
      sys.System.cps;
    !acc
  in
  {
    lhs;
    rhs;
    dphi_dq = effect.Sensitivity.dphi_dq;
    predicted_welfare_increase = (not (Float.is_nan lhs)) && lhs > rhs;
  }
