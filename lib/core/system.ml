open Numerics

type t = {
  cps : Econ.Cp.t array;
  utilization : Econ.Utilization.t;
  capacity : float;
}

type state = {
  phi : float;
  charges : Vec.t;
  populations : Vec.t;
  rates : Vec.t;
  throughputs : Vec.t;
  aggregate : float;
  gap_slope : float;
}

let make ?(utilization = Econ.Utilization.linear) ~cps ~capacity () =
  Precondition.require ~fn:"System.make" (Array.length cps > 0) "no content providers";
  if capacity <= 0. || not (Float.is_finite capacity) then
    Precondition.fail ~fn:"System.make"
      (Printf.sprintf "capacity must be positive, got %g" capacity);
  { cps = Array.copy cps; utilization; capacity }

let n_cps sys = Array.length sys.cps

let with_capacity sys capacity = make ~utilization:sys.utilization ~cps:sys.cps ~capacity ()

let check_charges sys charges =
  if Vec.dim charges <> n_cps sys then
    Precondition.fail ~fn:"System"
      (Printf.sprintf "%d charges for %d CPs" (Vec.dim charges) (n_cps sys))

let populations_of sys charges =
  Vec.init (n_cps sys) (fun i -> Econ.Cp.population sys.cps.(i) charges.(i))

let demand_at sys populations phi =
  let acc = ref 0. in
  Array.iteri
    (fun i cp -> acc := !acc +. (populations.(i) *. Econ.Cp.rate cp phi))
    sys.cps;
  !acc

let gap_with_populations sys populations phi =
  Econ.Utilization.theta_of sys.utilization ~phi ~mu:sys.capacity
  -. demand_at sys populations phi

let gap sys ~charges phi =
  check_charges sys charges;
  gap_with_populations sys (populations_of sys charges) phi

let gap_slope_with_populations sys populations phi =
  let supply = Econ.Utilization.dtheta_dphi sys.utilization ~phi ~mu:sys.capacity in
  let demand_slope = ref 0. in
  Array.iteri
    (fun i cp ->
      demand_slope :=
        !demand_slope +. (populations.(i) *. Econ.Throughput.derivative cp.Econ.Cp.throughput phi))
    sys.cps;
  supply -. !demand_slope

let gap_slope sys ~charges phi =
  check_charges sys charges;
  gap_slope_with_populations sys (populations_of sys charges) phi

let equilibrium_phi_result ?(phi_guess = 1.) sys populations =
  Obs.Trace.with_span "system.equilibrium_phi" @@ fun () ->
  let g phi = gap_with_populations sys populations phi in
  let dg phi = gap_slope_with_populations sys populations phi in
  let guess = Float.max phi_guess 1e-6 in
  (* g(0) <= 0 always (zero supply, positive demand); equality means the
     market clears at zero utilization. The only exception g can raise
     here is Invalid_argument, from the econ domain checks when the
     system state is poisoned (e.g. a non-finite capacity injected past
     System.make); that case must fall through to the robust chain,
     whose guard turns the same Invalid_argument into a typed failure
     with the full attempt history. Anything else is a genuine bug and
     propagates. A non-finite probe value falls through likewise and is
     diagnosed as Non_finite. *)
  let probe = match g 0. with
    | g0 -> Float.is_finite g0 && g0 >= 0.
    | exception Invalid_argument _ -> false
  in
  if probe then Ok 0.
  else
    match
      Robust.root ~tol:1e-13 ~df:dg ~x0:guess ~domain:(0., Float.infinity)
        ~ctx:"utilization" g ~lo:0. ~hi:(2. *. guess)
    with
    | Ok s ->
      if Obs.Trace.enabled () then
        Obs.Trace.add_attr "phi" (Printf.sprintf "%g" s.Robust.result.Rootfind.root);
      Ok s.Robust.result.Rootfind.root
    | Error e -> Error e

let equilibrium_phi_with_populations ?phi_guess sys populations =
  match equilibrium_phi_result ?phi_guess sys populations with
  | Ok phi -> phi
  | Error e -> raise (Robust.Solver_error e)

let state_of sys charges populations phi =
  let n = n_cps sys in
  let rates = Vec.init n (fun i -> Econ.Cp.rate sys.cps.(i) phi) in
  let throughputs = Vec.mul populations rates in
  {
    phi;
    charges;
    populations;
    rates;
    throughputs;
    aggregate = Vec.sum throughputs;
    gap_slope = gap_slope_with_populations sys populations phi;
  }

let equilibrium_phi ?phi_guess sys ~charges =
  check_charges sys charges;
  equilibrium_phi_with_populations ?phi_guess sys (populations_of sys charges)

let solve_result ?phi_guess sys ~charges =
  check_charges sys charges;
  let populations = populations_of sys charges in
  match equilibrium_phi_result ?phi_guess sys populations with
  | Ok phi -> Ok (state_of sys (Vec.copy charges) populations phi)
  | Error e -> Error e

let solve ?phi_guess sys ~charges =
  match solve_result ?phi_guess sys ~charges with
  | Ok st -> st
  | Error e -> raise (Robust.Solver_error e)

let solve_fixed_populations ?phi_guess sys ~populations =
  Precondition.require ~fn:"System.solve_fixed_populations"
    (Vec.dim populations = n_cps sys)
    "dimension mismatch";
  Array.iter
    (fun m ->
      Precondition.require ~fn:"System.solve_fixed_populations"
        (m >= 0. && Float.is_finite m)
        "populations must be non-negative")
    populations;
  let phi = equilibrium_phi_with_populations ?phi_guess sys populations in
  state_of sys (Vec.make (n_cps sys) Float.nan) (Vec.copy populations) phi

(* ------------------------------------------------------------------ *)
(* dual-field equilibria: the gap function in dual arithmetic plus
   implicit-function correction steps.

   For the root phi*(s) of g(phi, s) = 0, one correction step
   [phi <- const phi* - g(phi, s_dual) / const g_phi] evaluated in dual
   arithmetic yields the exact first-order dual part
   (phi' = -g_s / g_phi); a second step in second-order arithmetic
   replaces the second-order part with the exact
   -(g_pp phi'^2 + 2 g_ps phi' + g_ss) / g_phi. The implicit function
   theorem without hand-derived formulas: the primal solve stays the
   single Robust root call, the corrections are pure kernel passes. *)

let demand_at_d sys (populations : Dual.t array) (phi : Dual.t) =
  let acc = ref (Dual.const 0.) in
  Array.iteri
    (fun i cp -> acc := Dual.(!acc + (populations.(i) * Econ.Cp.rate_d cp phi)))
    sys.cps;
  !acc

let gap_d sys populations phi =
  Dual.(
    Econ.Utilization.theta_of_d sys.utilization ~phi ~mu:sys.capacity
    - demand_at_d sys populations phi)

let demand_at_d2 sys (populations : Dual.Order2.t array) (phi : Dual.Order2.t) =
  let acc = ref (Dual.Order2.const 0.) in
  Array.iteri
    (fun i cp ->
      acc := Dual.Order2.(!acc + (populations.(i) * Econ.Cp.rate_d2 cp phi)))
    sys.cps;
  !acc

let gap_d2 sys populations phi =
  Dual.Order2.(
    Econ.Utilization.theta_of_d2 sys.utilization ~phi ~mu:sys.capacity
    - demand_at_d2 sys populations phi)

let gap_slope_d sys (populations : Dual.t array) (phi : Dual.t) =
  let supply =
    Econ.Utilization.dtheta_dphi_d sys.utilization ~phi ~mu:sys.capacity
  in
  let demand_slope = ref (Dual.const 0.) in
  Array.iteri
    (fun i cp ->
      demand_slope :=
        Dual.(
          !demand_slope
          + (populations.(i) * Econ.Throughput.slope_d cp.Econ.Cp.throughput phi)))
    sys.cps;
  Dual.(supply - !demand_slope)

let phi_d sys ~populations ~phi ~gap_slope =
  Ad.record_pass ();
  let phi0 = Dual.const phi in
  Dual.(phi0 - (gap_d sys populations phi0 / const gap_slope))

let phi_d2 sys ~populations ~phi ~gap_slope =
  Ad.record_pass ();
  Ad.record_pass ();
  let step p = Dual.Order2.(p - (gap_d2 sys populations p / const gap_slope)) in
  step (step (Dual.Order2.const phi))

let dphi_dcapacity sys st =
  let dtheta_dmu =
    Econ.Utilization.dtheta_dmu sys.utilization ~phi:st.phi ~mu:sys.capacity
  in
  -.dtheta_dmu /. st.gap_slope

let dphi_dpopulation _sys st i = st.rates.(i) /. st.gap_slope

let rate_slope sys st i = Econ.Throughput.derivative sys.cps.(i).Econ.Cp.throughput st.phi

let dthroughput_dcapacity sys st i =
  st.populations.(i) *. rate_slope sys st i *. dphi_dcapacity sys st

let dthroughput_dpopulation sys st ~cp ~wrt =
  let dphi = dphi_dpopulation sys st wrt in
  let congestion = st.populations.(cp) *. rate_slope sys st cp *. dphi in
  if cp = wrt then st.rates.(cp) +. congestion else congestion
