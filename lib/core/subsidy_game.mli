(** The subsidization competition game (Section 4).

    Under ISP price [p] and policy cap [q], each CP [i] chooses a
    per-unit subsidy [s_i in [0, q]] for its users' traffic; the
    effective charge becomes [t_i = p - s_i] and CP [i]'s utility is
    [U_i(s) = (v_i - s_i) * theta_i(s)]. This module evaluates
    utilities, analytic marginal utilities (via the implicit-function
    derivative of the utilization equilibrium), and the Theorem-3
    threshold [tau_i]; it also packages the game for the generic
    best-response solver. *)

type t

val make : System.t -> price:float -> cap:float -> t
(** Raises [Invalid_argument] on a negative price or cap. *)

val system : t -> System.t

val price : t -> float

val cap : t -> float
(** The policy limit [q]. *)

val with_price : t -> float -> t

val with_cap : t -> float -> t

val dim : t -> int

val box : t -> Gametheory.Box.t
(** The strategy space [\[0, q\]^n]. *)

val charges : t -> subsidies:Numerics.Vec.t -> Numerics.Vec.t
(** [t_i = p - s_i]. *)

val state : t -> subsidies:Numerics.Vec.t -> System.state
(** The utilization equilibrium under the subsidy profile. Warm-starts
    from the previous solve on this game value (cached internally), so
    sweeping nearby profiles is fast. *)

val utility : t -> subsidies:Numerics.Vec.t -> int -> float
(** [U_i(s)]. *)

val utilities : t -> subsidies:Numerics.Vec.t -> Numerics.Vec.t

val revenue : t -> subsidies:Numerics.Vec.t -> float
(** The ISP's revenue [p * theta(s)] under the profile. *)

val dphi_dsubsidy : t -> System.state -> int -> float
(** [dphi/ds_i = -m_i'(t_i) lambda_i / (dg/dphi) >= 0] (implicit
    differentiation of the gap equation; the engine behind Lemma 3). *)

val marginal_utility : t -> subsidies:Numerics.Vec.t -> int -> float
(** Analytic [u_i(s) = dU_i/ds_i]:
    [-m_i lambda_i
     + (v_i - s_i) * (-m_i'(t_i) lambda_i + m_i lambda_i' dphi/ds_i)]. *)

val marginal_utilities : t -> subsidies:Numerics.Vec.t -> Numerics.Vec.t

val threshold_tau : t -> subsidies:Numerics.Vec.t -> int -> float
(** Equation (9):
    [tau_i(s) = (v_i - s_i) eps^mi_si (1 + eps^lambdai_phi eps^phi_mi)].
    At a Nash equilibrium, [s_i = min (tau_i s) q] (Theorem 3). *)

val fused_marginal : t -> int -> Numerics.Vec.t -> float -> float * float
(** [fused_marginal g i s si]: the pair [(dU_i/ds_i, d2U_i/ds_i2)] at
    the profile [s] with [s_i := si] — one warm primal solve plus one
    second-order dual pass through the payoff, with the equilibrium
    [phi(s_i)] differentiated by implicit-function correction steps
    ({!System.phi_d2}). The fused Newton objective of the continuation
    best response. *)

val marginal_utilities_d :
  t -> subsidies:Numerics.Vec.t -> int -> Numerics.Dual.t array
(** [marginal_utilities_d g ~subsidies j]: all [n] analytic marginal
    utilities as dual numbers seeded on [s_j] — primal values plus the
    exact Jacobian column [du_k/ds_j]. One warm primal solve. *)

val marginal_utilities_dp :
  t -> subsidies:Numerics.Vec.t -> Numerics.Dual.t array
(** All [n] marginal utilities as duals seeded on the ISP price (every
    effective charge moves together): primal values plus the exact
    [du_k/dp] — the Theorem-6/8 forcing term without a price stencil. *)

val marginal_jacobian_exact : t -> subsidies:Numerics.Vec.t -> Numerics.Mat.t
(** The full marginal-utility Jacobian [du_i/ds_j] from [n] column
    passes — the Theorem-6 sensitivity input, exact instead of
    stenciled. *)

val to_game :
  ?respond_points:int -> ?fused:bool -> t -> Gametheory.Best_response.game
(** Adapter for {!Gametheory.Best_response} with analytic marginals.
    [fused] (default true) attaches {!fused_marginal} so best responses
    use the fused Newton path when continuation mode is [Fast]; pass
    [false] to force the legacy grid-scan respond (the ablation's
    pre-continuation variant).
    [respond_points] tunes the first-order scan resolution (see
    {!Gametheory.Best_response.make}); exposed for the numerics
    ablation. *)
