(** ISP capacity planning under subsidization (the Section-6
    "future work" extension).

    The ISP chooses capacity [mu] to maximize profit
    [R(mu) - c * mu] where [R] is evaluated at the Nash equilibrium of
    the subsidization game (optionally re-optimizing the price for each
    capacity). The paper's qualitative claim — deregulated subsidization
    raises utilization and revenue, hence investment incentives — shows
    up as a larger optimal capacity under larger [q]. *)

type pricing =
  | Fixed_price of float  (** regulated / competitive price *)
  | Optimal_price of { p_max : float }  (** monopolist reprices per capacity *)

type plan = {
  capacity : float;
  price : float;
  revenue : float;
  cost : float;  (** [c * mu] *)
  profit : float;
  utilization : float;
  welfare : float;
}

val evaluate :
  ?track:Numerics.Continuation.track ->
  System.t ->
  pricing:pricing ->
  cap:float ->
  unit_cost:float ->
  capacity:float ->
  plan
(** The market outcome when the ISP deploys [capacity]. [track] keeps
    the optimal-price search's continuation warm state alive across
    evaluations at nearby capacities. *)

val optimal :
  ?mu_lo:float ->
  ?mu_hi:float ->
  ?points:int ->
  System.t ->
  pricing:pricing ->
  cap:float ->
  unit_cost:float ->
  plan
(** Profit-maximizing capacity on [\[mu_lo, mu_hi\]] (defaults
    [0.05, 10]) by grid scan plus golden refinement. *)

val investment_incentive :
  ?mu_lo:float ->
  ?mu_hi:float ->
  ?pool:Parallel.Pool.t ->
  System.t ->
  pricing:pricing ->
  unit_cost:float ->
  caps:float array ->
  plan array
(** The optimal plan per policy level: the deregulation-vs-investment
    ablation (one row per [q]). With [pool], one task per cap (the
    caps are independent optimizations). *)
