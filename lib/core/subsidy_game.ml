open Numerics

type t = {
  system : System.t;
  price : float;
  cap : float;
  mutable phi_cache : float; (* warm start for the equilibrium solver *)
}

let make system ~price ~cap =
  if price < 0. || not (Float.is_finite price) then
    invalid_arg (Printf.sprintf "Subsidy_game.make: price must be non-negative, got %g" price);
  if cap < 0. || not (Float.is_finite cap) then
    invalid_arg (Printf.sprintf "Subsidy_game.make: cap must be non-negative, got %g" cap);
  { system; price; cap; phi_cache = 1. }

let system g = g.system
let price g = g.price
let cap g = g.cap
let with_price g price = make g.system ~price ~cap:g.cap
let with_cap g cap = make g.system ~price:g.price ~cap
let dim g = System.n_cps g.system
let box g = Gametheory.Box.uniform ~dim:(dim g) ~lo:0. ~hi:g.cap

let check_subsidies g s =
  if Vec.dim s <> dim g then
    invalid_arg
      (Printf.sprintf "Subsidy_game: %d subsidies for %d CPs" (Vec.dim s) (dim g))

let charges g ~subsidies =
  check_subsidies g subsidies;
  Vec.map (fun si -> g.price -. si) subsidies

let state g ~subsidies =
  let charges = charges g ~subsidies in
  let st = System.solve ~phi_guess:g.phi_cache g.system ~charges in
  g.phi_cache <- Float.max st.System.phi 1e-6;
  st

let cp g i = g.system.System.cps.(i)

let utility_at g (st : System.state) i =
  let subsidy = g.price -. st.System.charges.(i) in
  Econ.Cp.utility (cp g i) ~subsidy ~throughput:st.System.throughputs.(i)

let utility g ~subsidies i =
  check_subsidies g subsidies;
  if i < 0 || i >= dim g then invalid_arg "Subsidy_game.utility: CP index out of range";
  utility_at g (state g ~subsidies) i

let utilities g ~subsidies =
  let st = state g ~subsidies in
  Vec.init (dim g) (fun i -> utility_at g st i)

let revenue g ~subsidies =
  let st = state g ~subsidies in
  g.price *. st.System.aggregate

let population_slope g (st : System.state) i =
  Econ.Demand.derivative (cp g i).Econ.Cp.demand st.System.charges.(i)

let rate_slope g (st : System.state) i =
  Econ.Throughput.derivative (cp g i).Econ.Cp.throughput st.System.phi

let dphi_dsubsidy g st i = -.population_slope g st i *. st.System.rates.(i) /. st.System.gap_slope

let marginal_utility_at g (st : System.state) i =
  let margin = (cp g i).Econ.Cp.value -. (g.price -. st.System.charges.(i)) in
  let direct = -.st.System.throughputs.(i) in
  let demand_gain = -.population_slope g st i *. st.System.rates.(i) in
  let congestion_loss =
    st.System.populations.(i) *. rate_slope g st i *. dphi_dsubsidy g st i
  in
  direct +. (margin *. (demand_gain +. congestion_loss))

let marginal_utility g ~subsidies i =
  check_subsidies g subsidies;
  if i < 0 || i >= dim g then
    invalid_arg "Subsidy_game.marginal_utility: CP index out of range";
  marginal_utility_at g (state g ~subsidies) i

let marginal_utilities g ~subsidies =
  let st = state g ~subsidies in
  Vec.init (dim g) (fun i -> marginal_utility_at g st i)

let threshold_tau g ~subsidies i =
  check_subsidies g subsidies;
  if i < 0 || i >= dim g then
    invalid_arg "Subsidy_game.threshold_tau: CP index out of range";
  let st = state g ~subsidies in
  let si = subsidies.(i) in
  let margin = (cp g i).Econ.Cp.value -. si in
  let m = st.System.populations.(i) in
  let eps_m_s = -.population_slope g st i *. si /. m in
  if
    (st.System.phi = 0.
    [@sublint.allow "NO-FLOAT-EQ"
        "exact sentinel: the zero-utilization branch of System.state assigns \
         phi = 0. literally, and rates.(i) may be 0 there"])
  then margin *. eps_m_s
  else begin
    let eps_lambda_phi =
      rate_slope g st i *. st.System.phi /. st.System.rates.(i)
    in
    let eps_phi_m = st.System.rates.(i) *. m /. (st.System.gap_slope *. st.System.phi) in
    margin *. eps_m_s *. (1. +. (eps_lambda_phi *. eps_phi_m))
  end

let to_game ?respond_points g =
  Gametheory.Best_response.make
    ~marginal:(fun i s -> marginal_utility g ~subsidies:s i)
    ?respond_points
    ~box:(box g)
    ~payoff:(fun i s -> utility g ~subsidies:s i)
    ()
