open Numerics

type t = {
  system : System.t;
  price : float;
  cap : float;
  mutable phi_cache : float; (* warm start for the equilibrium solver *)
}

let make system ~price ~cap =
  if price < 0. || not (Float.is_finite price) then
    invalid_arg (Printf.sprintf "Subsidy_game.make: price must be non-negative, got %g" price);
  if cap < 0. || not (Float.is_finite cap) then
    invalid_arg (Printf.sprintf "Subsidy_game.make: cap must be non-negative, got %g" cap);
  { system; price; cap; phi_cache = 1. }

let system g = g.system
let price g = g.price
let cap g = g.cap

let with_price g price =
  let g' = make g.system ~price ~cap:g.cap in
  (* a price sweep walks nearby equilibria: carry the utilization warm
     start along the axis (continuation mode only) *)
  if Continuation.fast () then g'.phi_cache <- g.phi_cache;
  g'
let with_cap g cap = make g.system ~price:g.price ~cap
let dim g = System.n_cps g.system
let box g = Gametheory.Box.uniform ~dim:(dim g) ~lo:0. ~hi:g.cap

let check_subsidies g s =
  if Vec.dim s <> dim g then
    invalid_arg
      (Printf.sprintf "Subsidy_game: %d subsidies for %d CPs" (Vec.dim s) (dim g))

let charges g ~subsidies =
  check_subsidies g subsidies;
  Vec.map (fun si -> g.price -. si) subsidies

let state g ~subsidies =
  let charges = charges g ~subsidies in
  let st = System.solve ~phi_guess:g.phi_cache g.system ~charges in
  g.phi_cache <- Float.max st.System.phi 1e-6;
  st

let cp g i = g.system.System.cps.(i)

let utility_at g (st : System.state) i =
  let subsidy = g.price -. st.System.charges.(i) in
  Econ.Cp.utility (cp g i) ~subsidy ~throughput:st.System.throughputs.(i)

let utility g ~subsidies i =
  check_subsidies g subsidies;
  if i < 0 || i >= dim g then invalid_arg "Subsidy_game.utility: CP index out of range";
  utility_at g (state g ~subsidies) i

let utilities g ~subsidies =
  let st = state g ~subsidies in
  Vec.init (dim g) (fun i -> utility_at g st i)

let revenue g ~subsidies =
  let st = state g ~subsidies in
  g.price *. st.System.aggregate

let population_slope g (st : System.state) i =
  Econ.Demand.derivative (cp g i).Econ.Cp.demand st.System.charges.(i)

let rate_slope g (st : System.state) i =
  Econ.Throughput.derivative (cp g i).Econ.Cp.throughput st.System.phi

let dphi_dsubsidy g st i = -.population_slope g st i *. st.System.rates.(i) /. st.System.gap_slope

let marginal_utility_at g (st : System.state) i =
  let margin = (cp g i).Econ.Cp.value -. (g.price -. st.System.charges.(i)) in
  let direct = -.st.System.throughputs.(i) in
  let demand_gain = -.population_slope g st i *. st.System.rates.(i) in
  let congestion_loss =
    st.System.populations.(i) *. rate_slope g st i *. dphi_dsubsidy g st i
  in
  direct +. (margin *. (demand_gain +. congestion_loss))

let marginal_utility g ~subsidies i =
  check_subsidies g subsidies;
  if i < 0 || i >= dim g then
    invalid_arg "Subsidy_game.marginal_utility: CP index out of range";
  marginal_utility_at g (state g ~subsidies) i

let marginal_utilities g ~subsidies =
  let st = state g ~subsidies in
  Vec.init (dim g) (fun i -> marginal_utility_at g st i)

let threshold_tau g ~subsidies i =
  check_subsidies g subsidies;
  if i < 0 || i >= dim g then
    invalid_arg "Subsidy_game.threshold_tau: CP index out of range";
  let st = state g ~subsidies in
  let si = subsidies.(i) in
  let margin = (cp g i).Econ.Cp.value -. si in
  let m = st.System.populations.(i) in
  let eps_m_s = -.population_slope g st i *. si /. m in
  if
    (st.System.phi = 0.
    [@sublint.allow "NO-FLOAT-EQ"
        "exact sentinel: the zero-utilization branch of System.state assigns \
         phi = 0. literally, and rates.(i) may be 0 there"])
  then margin *. eps_m_s
  else begin
    let eps_lambda_phi =
      rate_slope g st i *. st.System.phi /. st.System.rates.(i)
    in
    let eps_phi_m = st.System.rates.(i) *. m /. (st.System.gap_slope *. st.System.phi) in
    margin *. eps_m_s *. (1. +. (eps_lambda_phi *. eps_phi_m))
  end

(* ------------------------------------------------------------------ *)
(* exact derivatives: dual passes through the analytic formulas above *)

module D2 = Dual.Order2

(* the fused best-response objective: (dU_i/ds_i, d2U_i/ds_i2) at
   (s with s_i := si), from ONE warm primal solve plus one
   second-order kernel pass — no stencils, no extra root calls *)
let fused_marginal g i s si =
  let n = dim g in
  let charges = Vec.init n (fun j -> g.price -. (if j = i then si else s.(j))) in
  let st = System.solve ~phi_guess:g.phi_cache g.system ~charges in
  g.phi_cache <- Float.max st.System.phi 1e-6;
  (* only CP i's population moves with s_i *)
  let t_i = D2.make ~v:(g.price -. si) ~d:(-1.) ~dd:0. in
  let pops =
    Array.init n (fun j ->
        if j = i then Econ.Cp.population_d2 (cp g j) t_i
        else D2.const st.System.populations.(j))
  in
  let phi =
    System.phi_d2 g.system ~populations:pops ~phi:st.System.phi
      ~gap_slope:st.System.gap_slope
  in
  let theta = D2.(pops.(i) * Econ.Cp.rate_d2 (cp g i) phi) in
  let u = D2.((const (cp g i).Econ.Cp.value - make ~v:si ~d:1. ~dd:0.) * theta) in
  (D2.d u, D2.dd u)

(* one column of the marginal-utility Jacobian, exactly: all n analytic
   marginals evaluated in dual arithmetic seeded on s_j (one warm
   primal solve, one first-order kernel pass) *)
let marginal_utilities_d g ~subsidies j =
  check_subsidies g subsidies;
  Numerics.Precondition.require ~fn:"Subsidy_game.marginal_utilities_d"
    (j >= 0 && j < dim g)
    "CP index out of range";
  let st = state g ~subsidies in
  Ad.record_pass ();
  let n = dim g in
  let t_j = Dual.make ~v:st.System.charges.(j) ~d:(-1.) in
  let pops =
    Array.init n (fun k ->
        if k = j then Econ.Cp.population_d (cp g k) t_j
        else Dual.const st.System.populations.(k))
  in
  let phi =
    System.phi_d g.system ~populations:pops ~phi:st.System.phi
      ~gap_slope:st.System.gap_slope
  in
  let slope = System.gap_slope_d g.system pops phi in
  Array.init n (fun k ->
      let cpk = cp g k in
      let t_k = if k = j then t_j else Dual.const st.System.charges.(k) in
      let s_k =
        if k = j then Dual.var subsidies.(j) else Dual.const subsidies.(k)
      in
      let m_k = pops.(k) in
      let rate_k = Econ.Cp.rate_d cpk phi in
      let pop_slope_k = Econ.Demand.slope_d cpk.Econ.Cp.demand t_k in
      let rate_slope_k = Econ.Throughput.slope_d cpk.Econ.Cp.throughput phi in
      let dphi_dsub_k = Dual.(neg pop_slope_k * rate_k / slope) in
      let margin = Dual.(const cpk.Econ.Cp.value - s_k) in
      let direct = Dual.neg Dual.(m_k * rate_k) in
      let demand_gain = Dual.(neg pop_slope_k * rate_k) in
      let congestion_loss = Dual.(m_k * rate_slope_k * dphi_dsub_k) in
      Dual.(direct + (margin * (demand_gain + congestion_loss))))

(* all n analytic marginals as duals seeded on the ISP price p (every
   charge moves together): the exact [du/dp] column of the Theorem-6
   sensitivity forcing term *)
let marginal_utilities_dp g ~subsidies =
  check_subsidies g subsidies;
  let st = state g ~subsidies in
  Ad.record_pass ();
  let n = dim g in
  let t = Array.init n (fun k -> Dual.make ~v:st.System.charges.(k) ~d:1.) in
  let pops = Array.init n (fun k -> Econ.Cp.population_d (cp g k) t.(k)) in
  let phi =
    System.phi_d g.system ~populations:pops ~phi:st.System.phi
      ~gap_slope:st.System.gap_slope
  in
  let slope = System.gap_slope_d g.system pops phi in
  Array.init n (fun k ->
      let cpk = cp g k in
      let m_k = pops.(k) in
      let rate_k = Econ.Cp.rate_d cpk phi in
      let pop_slope_k = Econ.Demand.slope_d cpk.Econ.Cp.demand t.(k) in
      let rate_slope_k = Econ.Throughput.slope_d cpk.Econ.Cp.throughput phi in
      let dphi_dsub_k = Dual.(neg pop_slope_k * rate_k / slope) in
      let margin = Dual.const (cpk.Econ.Cp.value -. subsidies.(k)) in
      let direct = Dual.neg Dual.(m_k * rate_k) in
      let demand_gain = Dual.(neg pop_slope_k * rate_k) in
      let congestion_loss = Dual.(m_k * rate_slope_k * dphi_dsub_k) in
      Dual.(direct + (margin * (demand_gain + congestion_loss))))

let marginal_jacobian_exact g ~subsidies =
  let n = dim g in
  let cols = Array.init n (fun j -> marginal_utilities_d g ~subsidies j) in
  Mat.init ~rows:n ~cols:n (fun k j -> Dual.d cols.(j).(k))

let to_game ?respond_points ?(fused = true) g =
  Gametheory.Best_response.make
    ~marginal:(fun i s -> marginal_utility g ~subsidies:s i)
    ?fused:(if fused then Some (fun i s si -> fused_marginal g i s si) else None)
    ?respond_points
    ~box:(box g)
    ~payoff:(fun i s -> utility g ~subsidies:s i)
    ()
