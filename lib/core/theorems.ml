open Numerics

type check = { name : string; passed : bool; detail : string }

let pp_check fmt c =
  Format.fprintf fmt "[%s] %s: %s" (if c.passed then "ok" else "FAIL") c.name c.detail

let all_passed checks = List.for_all (fun c -> c.passed) checks

let close ?(rtol = 1e-4) ?(atol = 1e-7) a b =
  Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))

let mk name passed fmt = Printf.ksprintf (fun detail -> { name; passed; detail }) fmt

(* ------------------------------------------------------------------ *)
(* Section 3                                                           *)

let lemma1_uniqueness sys ~charges =
  let phi_a = System.equilibrium_phi ~phi_guess:1e-3 sys ~charges in
  let phi_b = System.equilibrium_phi ~phi_guess:50. sys ~charges in
  let grid = Grid.linspace 1e-6 (Float.max 2. (2. *. phi_a)) 64 in
  let monotone = ref true in
  Array.iteri
    (fun k phi ->
      if k > 0 && System.gap sys ~charges phi <= System.gap sys ~charges grid.(k - 1) then
        monotone := false)
    grid;
  mk "lemma1.uniqueness"
    (close ~rtol:1e-9 phi_a phi_b && !monotone)
    "phi(guess=1e-3)=%.12g phi(guess=50)=%.12g gap-monotone=%b" phi_a phi_b !monotone

let lemma2_invariance sys ~charges ~cp ~kappa =
  let phi_before = System.equilibrium_phi sys ~charges in
  let cps = Array.copy sys.System.cps in
  cps.(cp) <- Econ.Cp.scale cps.(cp) ~kappa;
  let scaled = System.make ~utilization:sys.System.utilization ~cps ~capacity:sys.System.capacity () in
  let phi_after = System.equilibrium_phi scaled ~charges in
  mk "lemma2.invariance"
    (close ~rtol:1e-9 phi_before phi_after)
    "kappa=%g phi=%.12g -> %.12g" kappa phi_before phi_after

let theorem1 sys ~charges =
  let st = System.solve sys ~charges in
  let h_mu = 1e-6 *. sys.System.capacity in
  let phi_of_mu mu = System.equilibrium_phi (System.with_capacity sys mu) ~charges in
  let dphi_dmu_num =
    (phi_of_mu (sys.System.capacity +. h_mu) -. phi_of_mu (sys.System.capacity -. h_mu))
    /. (2. *. h_mu)
  in
  let dphi_dmu = System.dphi_dcapacity sys st in
  let capacity_check =
    mk "theorem1.capacity" (dphi_dmu < 0. && close dphi_dmu dphi_dmu_num)
      "dphi/dmu analytic=%g numeric=%g" dphi_dmu dphi_dmu_num
  in
  let n = System.n_cps sys in
  let phi_of_populations populations =
    (System.solve_fixed_populations sys ~populations).System.phi
  in
  let population_checks =
    List.init n (fun i ->
        let h = 1e-6 *. (1. +. st.System.populations.(i)) in
        let bump delta =
          let m = Vec.copy st.System.populations in
          m.(i) <- m.(i) +. delta;
          phi_of_populations m
        in
        let numeric = (bump h -. bump (-.h)) /. (2. *. h) in
        let analytic = System.dphi_dpopulation sys st i in
        mk (Printf.sprintf "theorem1.population.%d" i)
          (analytic > 0. && close analytic numeric)
          "dphi/dm_%d analytic=%g numeric=%g" i analytic numeric)
  in
  let cross_checks =
    if n < 2 then []
    else begin
      let own = System.dthroughput_dpopulation sys st ~cp:0 ~wrt:0 in
      let cross = System.dthroughput_dpopulation sys st ~cp:1 ~wrt:0 in
      let dth_dmu = System.dthroughput_dcapacity sys st 0 in
      [
        mk "theorem1.throughput-signs"
          (own > 0. && cross < 0. && dth_dmu > 0.)
          "dtheta0/dm0=%g dtheta1/dm0=%g dtheta0/dmu=%g" own cross dth_dmu;
      ]
    end
  in
  (capacity_check :: population_checks) @ cross_checks

let theorem2 sys ~price =
  let st = One_sided.state sys ~price in
  let h = 1e-6 *. (1. +. price) in
  let phi_at p = (One_sided.state sys ~price:p).System.phi in
  let theta_at p = (One_sided.state sys ~price:p).System.aggregate in
  let dphi_num = (phi_at (price +. h) -. phi_at (price -. h)) /. (2. *. h) in
  let dphi = One_sided.dphi_dprice sys st in
  let dtheta_num = (theta_at (price +. h) -. theta_at (price -. h)) /. (2. *. h) in
  let dtheta = One_sided.daggregate_dprice sys st in
  let condition_checks =
    List.init (System.n_cps sys) (fun i ->
        let th_at p = (One_sided.state sys ~price:p).System.throughputs.(i) in
        let numeric = (th_at (price +. h) -. th_at (price -. h)) /. (2. *. h) in
        let margin = One_sided.condition7_margin sys st i in
        (* the margin and the derivative must agree in sign (allowing a
           small dead zone around zero) *)
        let agree =
          Float.abs numeric <= 1e-6
          || Float.abs margin <= 1e-9
          || (margin > 0.) = (numeric > 0.)
        in
        mk
          (Printf.sprintf "theorem2.condition7.%d" i)
          agree "margin=%g dtheta_%d/dp=%g" margin i numeric)
  in
  mk "theorem2.phi-slope" (dphi <= 0. && close dphi dphi_num)
    "dphi/dp analytic=%g numeric=%g" dphi dphi_num
  :: mk "theorem2.aggregate-slope" (dtheta <= 0. && close dtheta dtheta_num)
       "dtheta/dp analytic=%g numeric=%g" dtheta dtheta_num
  :: condition_checks

(* ------------------------------------------------------------------ *)
(* Section 4                                                           *)

let lemma3 game ~subsidies ~cp ~delta =
  if delta <= 0. then invalid_arg "Theorems.lemma3: delta must be positive";
  let st = Subsidy_game.state game ~subsidies in
  let bumped = Vec.copy subsidies in
  bumped.(cp) <- bumped.(cp) +. delta;
  let st' = Subsidy_game.state game ~subsidies:bumped in
  let tol = 1e-12 in
  let phi_up = st'.System.phi >= st.System.phi -. tol in
  let own_up = st'.System.throughputs.(cp) >= st.System.throughputs.(cp) -. tol in
  let others_down = ref true in
  Array.iteri
    (fun j th ->
      if j <> cp && st'.System.throughputs.(j) > th +. tol then others_down := false)
    st.System.throughputs;
  [
    mk "lemma3.phi" phi_up "phi %g -> %g" st.System.phi st'.System.phi;
    mk "lemma3.own-throughput" own_up "theta_%d %g -> %g" cp
      st.System.throughputs.(cp) st'.System.throughputs.(cp);
    mk "lemma3.others-throughput" !others_down "all others weakly down";
  ]

let theorem3 game (eq : Nash.equilibrium) =
  let kkt = Nash.kkt_residual game ~subsidies:eq.Nash.subsidies in
  let tau = Nash.threshold_consistency game ~subsidies:eq.Nash.subsidies in
  [
    mk "theorem3.kkt" (kkt <= 1e-5) "KKT residual=%g" kkt;
    mk "theorem3.threshold" (tau <= 1e-4) "max |s_i - min(tau_i, q)| = %g" tau;
  ]

let theorem4 rng game =
  let spread = Nash.multistart_spread ~starts:5 rng game in
  mk "theorem4.uniqueness" (spread <= 1e-6) "multistart spread=%g" spread

let with_value sys ~cp ~value =
  let cps = Array.copy sys.System.cps in
  cps.(cp) <- { cps.(cp) with Econ.Cp.value };
  System.make ~utilization:sys.System.utilization ~cps ~capacity:sys.System.capacity ()

let theorem5 game ~cp ~delta =
  if delta <= 0. then invalid_arg "Theorems.theorem5: delta must be positive";
  let sys = Subsidy_game.system game in
  let base = Nash.solve game in
  let bumped_sys = with_value sys ~cp ~value:(sys.System.cps.(cp).Econ.Cp.value +. delta) in
  let bumped_game =
    Subsidy_game.make bumped_sys ~price:(Subsidy_game.price game) ~cap:(Subsidy_game.cap game)
  in
  let bumped = Nash.solve bumped_game in
  let s0 = base.Nash.subsidies.(cp) and s1 = bumped.Nash.subsidies.(cp) in
  mk "theorem5.profitability" (s1 >= s0 -. 1e-7) "v+%g: s_%d %g -> %g" delta cp s0 s1

let resolve_at game ~price ~cap ~x0 =
  let sys = Subsidy_game.system game in
  let g = Subsidy_game.make sys ~price ~cap in
  (Nash.solve ~x0:(Vec.clamp ~lo:0. ~hi:cap x0) g).Nash.subsidies

let theorem6 game (eq : Nash.equilibrium) =
  let s = eq.Nash.subsidies in
  let p = Subsidy_game.price game and q = Subsidy_game.cap game in
  let part = Sensitivity.partition game ~subsidies:s in
  let h = 1e-4 in
  let dq_formula = Sensitivity.ds_dq game ~subsidies:s in
  let dq_numeric =
    let plus = resolve_at game ~price:p ~cap:(q +. h) ~x0:s in
    let minus = resolve_at game ~price:p ~cap:(Float.max 0. (q -. h)) ~x0:s in
    Vec.scale (1. /. (2. *. h)) (Vec.sub plus minus)
  in
  let dp_formula = Sensitivity.ds_dp game ~subsidies:s in
  let dp_numeric =
    let plus = resolve_at game ~price:(p +. h) ~cap:q ~x0:s in
    let minus = resolve_at game ~price:(Float.max 0. (p -. h)) ~cap:q ~x0:s in
    Vec.scale (1. /. (2. *. h)) (Vec.sub plus minus)
  in
  let compare_on name formula numeric =
    (* compare only where the classification is stable: corner CPs can
       enter the interior under the perturbation, so allow slack there *)
    let worst = ref 0. in
    Array.iter
      (fun i -> worst := Float.max !worst (Float.abs (formula.(i) -. numeric.(i))))
      part.Sensitivity.interior;
    mk name (!worst <= 5e-2) "max interior |formula - numeric| = %g" !worst
  in
  [
    compare_on "theorem6.ds_dq" dq_formula dq_numeric;
    compare_on "theorem6.ds_dp" dp_formula dp_numeric;
    mk "theorem6.corners-dq"
      (Array.for_all
         (fun i -> Float.abs dq_formula.(i) <= 1e-12)
         part.Sensitivity.lower
      && Array.for_all
           (fun i -> Float.abs (dq_formula.(i) -. 1.) <= 1e-12)
           part.Sensitivity.upper)
      "N- stays 0, N+ tracks q";
  ]

(* ------------------------------------------------------------------ *)
(* Section 5                                                           *)

let theorem7 game (eq : Nash.equilibrium) =
  let formula = Revenue.marginal_formula game ~subsidies:eq.Nash.subsidies in
  let numeric = Revenue.marginal_numeric ~h:1e-4 game in
  mk "theorem7.marginal-revenue"
    (close ~rtol:5e-2 ~atol:1e-3 formula numeric)
    "dR/dp formula=%g numeric=%g" formula numeric

let corollary1 sys ~price ~caps =
  let ladder = Policy.deregulation_ladder sys ~price ~caps in
  let tol = 1e-7 in
  let monotone extract =
    let ok = ref true in
    Array.iteri
      (fun k point ->
        if k > 0 && extract point < extract ladder.(k - 1) -. tol then ok := false)
      ladder;
    !ok
  in
  let subsidies_monotone =
    let ok = ref true in
    Array.iteri
      (fun k (point : Policy.point) ->
        if k > 0 then begin
          let prev = ladder.(k - 1).Policy.equilibrium.Nash.subsidies in
          let cur = point.Policy.equilibrium.Nash.subsidies in
          Array.iteri (fun i si -> if si < prev.(i) -. 1e-6 then ok := false) cur
        end)
      ladder;
    !ok
  in
  [
    mk "corollary1.phi" (monotone (fun pt -> pt.Policy.utilization)) "phi nondecreasing in q";
    mk "corollary1.revenue" (monotone (fun pt -> pt.Policy.revenue)) "R nondecreasing in q";
    mk "corollary1.subsidies" subsidies_monotone "every s_i nondecreasing in q";
  ]

let corollary2 game (eq : Nash.equilibrium) =
  let s = eq.Nash.subsidies in
  let p = Subsidy_game.price game and q = Subsidy_game.cap game in
  let result = Welfare.corollary2 game ~subsidies:s in
  let h = 1e-4 in
  let welfare_at cap =
    let sys = Subsidy_game.system game in
    let g = Subsidy_game.make sys ~price:p ~cap in
    let e = Nash.solve ~x0:(Vec.clamp ~lo:0. ~hi:cap s) g in
    Welfare.of_equilibrium g e
  in
  let dw_numeric = (welfare_at (q +. h) -. welfare_at (Float.max 0. (q -. h))) /. (2. *. h) in
  let prediction_applies = result.Welfare.dphi_dq > 1e-9 && not (Float.is_nan result.Welfare.lhs) in
  let agree =
    (not prediction_applies)
    || Float.abs dw_numeric <= 1e-5
    || result.Welfare.predicted_welfare_increase = (dw_numeric > 0.)
  in
  mk "corollary2.welfare-sign" agree "lhs=%g rhs=%g dW/dq numeric=%g (applies=%b)"
    result.Welfare.lhs result.Welfare.rhs dw_numeric prediction_applies

let theorem8 sys ~price ~cap ~dp_dq =
  let game = Subsidy_game.make sys ~price ~cap in
  let eq = Nash.solve game in
  let s = eq.Nash.subsidies in
  let effect = Sensitivity.policy_effect ~dp_dq game ~subsidies:s in
  let h = 1e-4 in
  let state_at dq =
    let cap' = cap +. dq in
    let price' = Float.max 0. (price +. (dp_dq *. dq)) in
    let g = Subsidy_game.make sys ~price:price' ~cap:cap' in
    (Nash.solve ~x0:(Vec.clamp ~lo:0. ~hi:cap' s) g).Nash.state
  in
  let st_plus = state_at h and st_minus = state_at (-.h) in
  let dphi_numeric = (st_plus.System.phi -. st_minus.System.phi) /. (2. *. h) in
  let n = System.n_cps sys in
  let dm_ok = ref true in
  let dm_detail = Buffer.create 64 in
  for i = 0 to n - 1 do
    let numeric =
      (st_plus.System.populations.(i) -. st_minus.System.populations.(i)) /. (2. *. h)
    in
    if not (close ~rtol:5e-2 ~atol:1e-3 effect.Sensitivity.dpopulation_dq.(i) numeric)
    then begin
      dm_ok := false;
      Buffer.add_string dm_detail
        (Printf.sprintf " m%d: formula=%g numeric=%g" i
           effect.Sensitivity.dpopulation_dq.(i) numeric)
    end
  done;
  [
    mk "theorem8.dphi_dq"
      (close ~rtol:5e-2 ~atol:1e-4 effect.Sensitivity.dphi_dq dphi_numeric)
      "formula=%g numeric=%g" effect.Sensitivity.dphi_dq dphi_numeric;
    mk "theorem8.dm_dq" !dm_ok "population derivatives%s"
      (if !dm_ok then " all match" else Buffer.contents dm_detail);
  ]

(* ------------------------------------------------------------------ *)

let run_paper_suite ?(seed = 20140610L) () =
  let rng = Rng.create seed in
  let sys3 = Scenario.fig45_system () in
  let charges = Vec.make (System.n_cps sys3) 0.4 in
  let section3 =
    [ lemma1_uniqueness sys3 ~charges; lemma2_invariance sys3 ~charges ~cp:2 ~kappa:3. ]
    @ theorem1 sys3 ~charges
    @ theorem2 sys3 ~price:0.5
  in
  let sys5 = Scenario.fig7_11_system () in
  let game = Subsidy_game.make sys5 ~price:0.8 ~cap:1.0 in
  let eq = Nash.solve game in
  let section4 =
    lemma3 game ~subsidies:(Vec.make (System.n_cps sys5) 0.2) ~cp:0 ~delta:0.05
    @ theorem3 game eq
    @ [ theorem4 rng game; theorem5 game ~cp:0 ~delta:0.2 ]
    @ theorem6 game eq
  in
  (* a tighter cap pins several CPs at q, making N+ non-empty so the
     policy derivatives are non-trivial *)
  let tight_game = Subsidy_game.make sys5 ~price:0.8 ~cap:0.4 in
  let tight_eq = Nash.solve tight_game in
  let section5 =
    [ theorem7 game eq ]
    @ corollary1 sys5 ~price:0.8 ~caps:[| 0.; 0.25; 0.5; 0.75; 1.0 |]
    @ [ corollary2 game eq; corollary2 tight_game tight_eq ]
    @ theorem8 sys5 ~price:0.8 ~cap:1.0 ~dp_dq:0.1
    @ theorem8 sys5 ~price:0.8 ~cap:0.4 ~dp_dq:0.
    @ theorem6 tight_game tight_eq
  in
  section3 @ section4 @ section5
