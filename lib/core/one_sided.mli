(** One-sided ISP pricing (Section 3.2, the status quo model).

    Under net neutrality the access ISP charges every CP's traffic the
    same per-unit price [p], so each effective charge is [t_i = p].
    This module evaluates the induced equilibrium, the ISP's revenue
    [R = p * theta], and the Theorem-2 comparative statics in [p]. *)

val state : ?phi_guess:float -> System.t -> price:float -> System.state
(** Equilibrium under the uniform price [p >= 0]. *)

val revenue : ?phi_guess:float -> System.t -> price:float -> float
(** [R(p) = p * theta(p)]. *)

val dphi_dprice : System.t -> System.state -> float
(** Equation (5): [(dg/dphi)^-1 * sum_k m_k'(p) lambda_k <= 0],
    analytically at a solved state. *)

val daggregate_dprice : System.t -> System.state -> float
(** Equation (6): the aggregate-throughput slope [dtheta/dp <= 0]. *)

val dthroughput_dprice : System.t -> System.state -> int -> float
(** [dtheta_i/dp = m_i'(p) lambda_i + m_i lambda_i' dphi/dp]; sign
    given by condition (7). *)

val condition7_margin : System.t -> System.state -> int -> float
(** The slack in condition (7),
    [-dphi/dp - (eps_mi_p / eps_lambdai_phi) * (phi / p)]... reported as
    [dtheta_i/dp] rescaled: positive iff CP [i]'s throughput increases
    with the price. Concretely this returns
    [eps^mi_p / eps^lambdai_phi  -  (-eps^phi_p)] negated, i.e.
    [(-eps^phi_p) - eps^mi_p / eps^lambdai_phi], so the sign matches
    [dtheta_i/dp]. Requires [p > 0] and [phi > 0] (elasticities are
    undefined at zero). *)

val revenue_curve :
  ?phi_guess:float ->
  ?pool:Parallel.Pool.t ->
  ?chunk:int ->
  System.t ->
  prices:float array ->
  (float * float) array
(** [(p, R(p))] along a price grid, warm-starting each solve at the
    previous cell's utilization. With [pool], the grid is evaluated in
    chunks of [chunk] (default 8) prices; warm-start continuation is
    chunk-local (each chunk restarts from [phi_guess]), so the chunk
    boundaries — hence the bits of the result — are independent of the
    pool size. *)

val peak_revenue : ?p_max:float -> System.t -> float * float
(** The revenue-maximizing price and its revenue on [\[0, p_max\]]
    (default [p_max = 5]), by grid scan plus golden refinement. *)
