type pricing = Fixed_price of float | Optimal_price of { p_max : float }

type plan = {
  capacity : float;
  price : float;
  revenue : float;
  cost : float;
  profit : float;
  utilization : float;
  welfare : float;
}

let evaluate ?track sys ~pricing ~cap ~unit_cost ~capacity =
  if unit_cost < 0. then invalid_arg "Capacity.evaluate: unit_cost must be non-negative";
  let sys = System.with_capacity sys capacity in
  let point =
    match pricing with
    | Fixed_price price -> Policy.point_at sys ~price ~cap
    | Optimal_price { p_max } -> Policy.optimal_price ~p_max ~points:21 ?track sys ~cap
  in
  let cost = unit_cost *. capacity in
  {
    capacity;
    price = point.Policy.price;
    revenue = point.Policy.revenue;
    cost;
    profit = point.Policy.revenue -. cost;
    utilization = point.Policy.utilization;
    welfare = point.Policy.welfare;
  }

let optimal ?(mu_lo = 0.05) ?(mu_hi = 10.) ?(points = 13) sys ~pricing ~cap ~unit_cost =
  if mu_lo <= 0. || mu_hi <= mu_lo then
    invalid_arg "Capacity.optimal: need 0 < mu_lo < mu_hi";
  (* one continuation track for the whole capacity search: the inner
     price scans at nearby mu visit nearby equilibria *)
  let track = Numerics.Continuation.track () in
  let profit_at mu = (evaluate ~track sys ~pricing ~cap ~unit_cost ~capacity:mu).profit in
  let r = Numerics.Optimize.grid_then_golden ~points ~tol:1e-3 profit_at ~lo:mu_lo ~hi:mu_hi in
  evaluate ~track sys ~pricing ~cap ~unit_cost ~capacity:r.Numerics.Optimize.x

let investment_incentive ?mu_lo ?mu_hi ?pool sys ~pricing ~unit_cost ~caps =
  let solve cap = optimal ?mu_lo ?mu_hi sys ~pricing ~cap ~unit_cost in
  match pool with
  | None -> Array.map solve caps
  | Some pool ->
    (* each cap is an independent capacity optimization (the dominant
       cost of the capacity experiment): one task per cap *)
    Parallel.Pool.map pool ~chunk:1 solve caps
