open Numerics

let at_equilibrium game (eq : Nash.equilibrium) =
  Subsidy_game.price game *. eq.Nash.state.System.aggregate

let upsilon game ~subsidies =
  let st = Subsidy_game.state game ~subsidies in
  let sys = Subsidy_game.system game in
  let acc = ref 1. in
  Array.iteri
    (fun j cp ->
      acc :=
        !acc
        +. st.System.populations.(j)
           *. Econ.Throughput.derivative cp.Econ.Cp.throughput st.System.phi
           /. st.System.gap_slope)
    sys.System.cps;
  !acc

let price_elasticities game ~subsidies =
  let p = Subsidy_game.price game in
  if p <= 0. then invalid_arg "Revenue.price_elasticities: requires p > 0";
  let st = Subsidy_game.state game ~subsidies in
  let sys = Subsidy_game.system game in
  let dsdp = Sensitivity.ds_dp game ~subsidies in
  Vec.init (Subsidy_game.dim game) (fun i ->
      let cp = sys.System.cps.(i) in
      p /. st.System.populations.(i)
      *. Econ.Demand.derivative cp.Econ.Cp.demand st.System.charges.(i)
      *. (1. -. dsdp.(i)))

let marginal_formula game ~subsidies =
  let st = Subsidy_game.state game ~subsidies in
  let eps = price_elasticities game ~subsidies in
  let ups = upsilon game ~subsidies in
  st.System.aggregate +. (ups *. Vec.dot eps st.System.throughputs)

let marginal_numeric ?(h = 1e-5) game =
  let p = Subsidy_game.price game in
  let revenue_at price =
    let g = Subsidy_game.with_price game price in
    let eq = Nash.solve g in
    at_equilibrium g eq
  in
  if p -. h < 0. then (revenue_at (p +. h) -. revenue_at p) /. h
  else (revenue_at (p +. h) -. revenue_at (p -. h)) /. (2. *. h)

(* one price cell of a revenue scan, driven through the continuation
   track: secant-predicted subsidies in Fast mode, plain warm start in
   Legacy *)
let equilibrium_cell track game p =
  let g = Subsidy_game.with_price game p in
  let eq =
    Continuation.solve_cell track ~at:p
      ~clamp:(Vec.clamp ~lo:0. ~hi:(Subsidy_game.cap game))
      ~solve:(fun x0 -> Nash.solve ?x0 g)
      ~extract:(fun (eq : Nash.equilibrium) -> (eq.Nash.subsidies, eq.Nash.converged))
      ()
  in
  (g, eq)

let curve game ~prices =
  let track = Continuation.track () in
  Array.map
    (fun p ->
      let g, eq = equilibrium_cell track game p in
      (p, eq, at_equilibrium g eq))
    prices

let optimal_price ?(p_max = 3.) ?(points = 49) ?track game =
  if p_max <= 0. then invalid_arg "Revenue.optimal_price: p_max must be positive";
  (* the search visits nearby prices, whose equilibria are close: walk
     them on a continuation track (callers optimizing over an outer
     axis, e.g. capacity, pass their own so it survives across calls) *)
  let track = match track with Some t -> t | None -> Continuation.track () in
  let revenue_at p =
    let g, eq = equilibrium_cell track game p in
    at_equilibrium g eq
  in
  let r = Optimize.grid_then_golden ~points ~tol:1e-5 revenue_at ~lo:0. ~hi:p_max in
  (r.Optimize.x, r.Optimize.fx)
