open Numerics

type classification = Lower | Interior | Upper

type equilibrium = {
  subsidies : Vec.t;
  state : System.state;
  utilities : Vec.t;
  classes : classification array;
  sweeps : int;
  converged : bool;
  kkt_residual : float;
}

let classify ?(tol = 1e-7) game ~subsidies =
  let q = Subsidy_game.cap game in
  Array.map
    (fun si ->
      if si <= tol then Lower else if si >= q -. tol then Upper else Interior)
    subsidies

let kkt_residual game ~subsidies =
  let u = Subsidy_game.marginal_utilities game ~subsidies in
  let classes = classify game ~subsidies in
  let worst = ref 0. in
  Array.iteri
    (fun i c ->
      let violation =
        match c with
        | Lower -> Float.max 0. u.(i)
        | Upper -> Float.max 0. (-.u.(i))
        | Interior -> Float.abs u.(i)
      in
      worst := Float.max !worst violation)
    classes;
  !worst

let solve ?scheme ?damping ?tol ?max_sweeps ?respond_points ?fused ?x0 game =
  Obs.Trace.with_span "nash.solve" @@ fun () ->
  let br_game = Subsidy_game.to_game ?respond_points ?fused game in
  let x0 = match x0 with Some x -> x | None -> Vec.zeros (Subsidy_game.dim game) in
  let outcome = Gametheory.Best_response.solve ?scheme ?damping ?tol ?max_sweeps br_game ~x0 in
  let subsidies = outcome.Gametheory.Best_response.profile in
  let state = Subsidy_game.state game ~subsidies in
  if Obs.Trace.enabled () then begin
    Obs.Trace.add_attr "sweeps" (string_of_int outcome.Gametheory.Best_response.sweeps);
    Obs.Trace.add_attr "converged"
      (string_of_bool outcome.Gametheory.Best_response.converged)
  end;
  {
    subsidies;
    state;
    utilities = Subsidy_game.utilities game ~subsidies;
    classes = classify game ~subsidies;
    sweeps = outcome.Gametheory.Best_response.sweeps;
    converged = outcome.Gametheory.Best_response.converged;
    kkt_residual = kkt_residual game ~subsidies;
  }

let solve_result ?scheme ?damping ?tol ?max_sweeps ?respond_points ?fused ?x0 game =
  match solve ?scheme ?damping ?tol ?max_sweeps ?respond_points ?fused ?x0 game with
  | eq -> Ok eq
  | exception Robust.Solver_error e -> Error e

let solve_vi ?(gamma = 0.25) ?(tol = 1e-10) ?(max_iter = 100_000) ?x0 game =
  Obs.Trace.with_span "nash.solve_vi" @@ fun () ->
  let box = Subsidy_game.box game in
  let n = Subsidy_game.dim game in
  let x0 = match x0 with Some x -> x | None -> Vec.zeros n in
  let f s = Vec.map (fun u -> -.u) (Subsidy_game.marginal_utilities game ~subsidies:s) in
  (* count F evaluations as a proxy for iterations: 2 per extragradient step *)
  let evals = ref 0 in
  let counted s =
    incr evals;
    f s
  in
  let subsidies, converged =
    match Gametheory.Vi.solve_extragradient ~gamma ~tol ~max_iter counted box ~x0 with
    | s -> (s, true)
    | exception Fixedpoint.No_convergence _ -> (Gametheory.Box.project box x0, false)
  in
  let state = Subsidy_game.state game ~subsidies in
  {
    subsidies;
    state;
    utilities = Subsidy_game.utilities game ~subsidies;
    classes = classify game ~subsidies;
    sweeps = !evals / 2;
    converged;
    kkt_residual = kkt_residual game ~subsidies;
  }

let threshold_consistency game ~subsidies =
  let q = Subsidy_game.cap game in
  let classes = classify game ~subsidies in
  let worst = ref 0. in
  Array.iteri
    (fun i c ->
      match c with
      | Lower ->
        (* tau_i = 0 = s_i automatically; nothing to check beyond KKT *)
        ()
      | Interior | Upper ->
        let tau = Subsidy_game.threshold_tau game ~subsidies i in
        let expected = Float.min tau q in
        worst := Float.max !worst (Float.abs (subsidies.(i) -. expected)))
    classes;
  !worst

let multistart_spread ?(starts = 5) rng game =
  let br_game = Subsidy_game.to_game game in
  let outcomes =
    Gametheory.Best_response.solve_multistart ~starts rng br_game
    |> List.filter (fun o -> o.Gametheory.Best_response.converged)
  in
  match outcomes with
  | [] -> Float.infinity
  | first :: rest ->
    List.fold_left
      (fun acc o ->
        Float.max acc
          (Vec.dist_inf first.Gametheory.Best_response.profile
             o.Gametheory.Best_response.profile))
      0. rest

(* no explicit step + Fast mode -> exact dual-pass Jacobian; an explicit
   [~h] (or Legacy mode) keeps the central-difference stencil *)
let marginal_jacobian ?h game ~subsidies =
  let n = Subsidy_game.dim game in
  let j =
    match h with
    | None when Continuation.fast () ->
      Subsidy_game.marginal_jacobian_exact game ~subsidies
    | _ ->
      let h = Option.value h ~default:1e-6 in
      Diff.jacobian ~h
        (fun s -> Subsidy_game.marginal_utilities game ~subsidies:s)
        subsidies
  in
  assert (Mat.rows j = n && Mat.cols j = n);
  j

let off_diagonal_monotone ?h game ~subsidies =
  let j = marginal_jacobian ?h game ~subsidies in
  Gametheory.Matrix_props.is_off_diagonally_nonnegative ~tol:1e-8 j

let jacobian_is_p_matrix game ~subsidies =
  let j = marginal_jacobian game ~subsidies in
  Gametheory.Matrix_props.is_p_matrix ~tol:0. (Mat.scale (-1.) j)
