open Numerics

type partition = { lower : int array; interior : int array; upper : int array }

let partition ?tol game ~subsidies =
  let classes = Nash.classify ?tol game ~subsidies in
  let collect want =
    let idx = ref [] in
    Array.iteri (fun i c -> if c = want then idx := i :: !idx) classes;
    Array.of_list (List.rev !idx)
  in
  {
    lower = collect Nash.Lower;
    interior = collect Nash.Interior;
    upper = collect Nash.Upper;
  }

(* no explicit step + Fast mode -> exact dual-pass derivatives; an
   explicit [~h] (or Legacy mode) keeps the difference stencils *)
let marginal_jacobian ?h game ~subsidies =
  match h with
  | None when Continuation.fast () ->
    Subsidy_game.marginal_jacobian_exact game ~subsidies
  | _ ->
    let h = Option.value h ~default:1e-6 in
    Diff.jacobian ~h
      (fun s -> Subsidy_game.marginal_utilities game ~subsidies:s)
      subsidies

let du_dprice ?h game ~subsidies =
  match h with
  | None when Continuation.fast () ->
    Array.map Dual.d (Subsidy_game.marginal_utilities_dp game ~subsidies)
  | _ ->
    let h = Option.value h ~default:1e-6 in
    let p = Subsidy_game.price game in
    let at price =
      Subsidy_game.marginal_utilities (Subsidy_game.with_price game price) ~subsidies
    in
    (* keep the evaluation prices non-negative *)
    let hp = Float.min h (if p > 0. then p /. 2. else h) in
    if p -. hp < 0. then Vec.scale (1. /. h) (Vec.sub (at (p +. h)) (at p))
    else Vec.scale (1. /. (2. *. hp)) (Vec.sub (at (p +. hp)) (at (p -. hp)))

let interior_solve game ~subsidies ~forcing =
  (* solve (grad_s~ u~) x = -forcing for the interior coordinates *)
  let part = partition game ~subsidies in
  if Array.length part.interior = 0 then [||]
  else begin
    let j = marginal_jacobian game ~subsidies in
    let a = Mat.submatrix j ~row_idx:part.interior ~col_idx:part.interior in
    Linalg.solve a (Vec.map (fun b -> -.b) forcing)
  end

let ds_dq game ~subsidies =
  let part = partition game ~subsidies in
  let n = Subsidy_game.dim game in
  let result = Vec.zeros n in
  Array.iter (fun i -> result.(i) <- 1.) part.upper;
  if Array.length part.interior > 0 then begin
    let j = marginal_jacobian game ~subsidies in
    let forcing =
      Array.map
        (fun k -> Array.fold_left (fun acc jdx -> acc +. Mat.get j k jdx) 0. part.upper)
        part.interior
    in
    let x = interior_solve game ~subsidies ~forcing in
    Array.iteri (fun idx i -> result.(i) <- x.(idx)) part.interior
  end;
  result

let ds_dp game ~subsidies =
  let part = partition game ~subsidies in
  let n = Subsidy_game.dim game in
  let result = Vec.zeros n in
  if Array.length part.interior > 0 then begin
    let dup = du_dprice game ~subsidies in
    let forcing = Array.map (fun k -> dup.(k)) part.interior in
    let x = interior_solve game ~subsidies ~forcing in
    Array.iteri (fun idx i -> result.(i) <- x.(idx)) part.interior
  end;
  result

type policy_effect = {
  dp_dq : float;
  ds_dq_total : Vec.t;
  dcharge_dq : Vec.t;
  dpopulation_dq : Vec.t;
  dphi_dq : float;
  drate_dq : Vec.t;
  dthroughput_dq : Vec.t;
  dwelfare_dq : float;
}

let policy_effect ?(dp_dq = 0.) game ~subsidies =
  let n = Subsidy_game.dim game in
  let partial_q = ds_dq game ~subsidies in
  let partial_p =
    if
      (dp_dq = 0.
      [@sublint.allow "NO-FLOAT-EQ"
          "exact sentinel: 0. is the ?dp_dq default meaning no price \
           passthrough; any caller-supplied derivative is used verbatim"])
    then Vec.zeros n
    else ds_dp game ~subsidies
  in
  let ds_dq_total = Vec.axpy dp_dq partial_p partial_q in
  let dcharge_dq = Vec.init n (fun i -> dp_dq -. ds_dq_total.(i)) in
  let st = Subsidy_game.state game ~subsidies in
  let sys = Subsidy_game.system game in
  let dpopulation_dq =
    Vec.init n (fun i ->
        Econ.Demand.derivative sys.System.cps.(i).Econ.Cp.demand st.System.charges.(i)
        *. dcharge_dq.(i))
  in
  let dphi_dq =
    Vec.dot dpopulation_dq st.System.rates /. st.System.gap_slope
  in
  let drate_dq =
    Vec.init n (fun i ->
        Econ.Throughput.derivative sys.System.cps.(i).Econ.Cp.throughput st.System.phi
        *. dphi_dq)
  in
  let dthroughput_dq =
    Vec.init n (fun i ->
        (dpopulation_dq.(i) *. st.System.rates.(i))
        +. (st.System.populations.(i) *. drate_dq.(i)))
  in
  let dwelfare_dq =
    let acc = ref 0. in
    Array.iteri
      (fun i cp -> acc := !acc +. (cp.Econ.Cp.value *. dthroughput_dq.(i)))
      sys.System.cps;
    !acc
  in
  {
    dp_dq;
    ds_dq_total;
    dcharge_dq;
    dpopulation_dq;
    dphi_dq;
    drate_dq;
    dthroughput_dq;
    dwelfare_dq;
  }

let condition17_margin game effect ~state i =
  let q = Subsidy_game.cap game in
  let st = state in
  let t_i = st.System.charges.(i) in
  let sys = Subsidy_game.system game in
  if
    q <= 0.
    || (t_i = 0.
       [@sublint.allow "NO-FLOAT-EQ"
           "exact division guard for q /. t_i below; a tolerance would \
            misclassify small genuine charges as zero"])
    || st.System.phi <= 0.
  then effect.dthroughput_dq.(i)
  else begin
    let cp = sys.System.cps.(i) in
    let eps_t_q = effect.dcharge_dq.(i) *. q /. t_i in
    let eps_m_t =
      Econ.Demand.derivative cp.Econ.Cp.demand t_i *. t_i /. st.System.populations.(i)
    in
    let eps_lambda_phi =
      Econ.Throughput.derivative cp.Econ.Cp.throughput st.System.phi
      *. st.System.phi /. st.System.rates.(i)
    in
    let eps_phi_q = effect.dphi_dq *. q /. st.System.phi in
    -.eps_phi_q -. (eps_m_t *. eps_t_q /. eps_lambda_phi)
  end
