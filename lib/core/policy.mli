(** Regulatory policy analysis (Section 5).

    The decision chain is: the regulator fixes the subsidy cap [q], the
    ISP picks its price [p(q)], and the CPs settle at the Nash
    equilibrium [s(p, q)]. This module sweeps that chain. *)

type point = {
  cap : float;  (** the policy [q] *)
  price : float;
  equilibrium : Nash.equilibrium;
  revenue : float;  (** ISP revenue [p * theta] *)
  welfare : float;  (** [sum_i v_i theta_i] *)
  utilization : float;
}

val nash_at : System.t -> price:float -> cap:float -> Nash.equilibrium
(** Convenience constructor + solve. *)

val point_at : System.t -> price:float -> cap:float -> point

val price_sweep :
  ?pool:Parallel.Pool.t ->
  ?chunk:int ->
  System.t ->
  cap:float ->
  prices:float array ->
  point array
(** Equilibria along a price grid under a fixed policy, warm-started
    left to right (the Figure 7-11 inner loop). With [pool], the grid
    is evaluated in chunks of [chunk] (default 8) prices; each chunk
    is its own warm-start chain starting cold, so chunk boundaries —
    and therefore the solved bits — depend only on [chunk], never on
    the pool size. *)

val policy_sweep :
  ?pool:Parallel.Pool.t ->
  ?chunk:int ->
  System.t ->
  caps:float array ->
  prices:float array ->
  point array array
(** [policy_sweep sys ~caps ~prices] is one [price_sweep] per cap
    level (row-per-cap; the full Figure 7-11 grid). With [pool], the
    whole [(cap, price-chunk)] grid is submitted as one flat batch —
    cell results are identical to the per-row [price_sweep ~pool]
    ones. *)

val optimal_price :
  ?p_max:float ->
  ?points:int ->
  ?track:Numerics.Continuation.track ->
  System.t ->
  cap:float ->
  point
(** The ISP's revenue-maximizing response [p*(q)] and the resulting
    market point. [track] carries the price search's continuation warm
    state across calls (see {!Revenue.optimal_price}). *)

val deregulation_ladder :
  System.t -> price:float -> caps:float array -> point array
(** Fixed-price policy relaxation: the Corollary-1 experiment. Under
    the stability condition, revenue, welfare and utilization are
    nondecreasing along the ladder. *)

val price_response_slope : ?h:float -> System.t -> cap:float -> ?p_max:float -> unit -> float
(** Numeric [dp*/dq]: how much the ISP raises its optimal price when
    the policy is relaxed; feeds Theorem 8's [dp_dq]. *)
