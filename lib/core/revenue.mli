(** ISP revenue under subsidization (Section 5.1, Theorem 7).

    With a fixed policy [q], the CPs' equilibrium subsidies respond to
    the ISP's price, so the induced revenue is
    [R(p) = p * sum_i m_i (p - s_i(p)) lambda_i (phi (s (p)))].
    Theorem 7 factors the marginal revenue into throughput plus an
    elasticity-weighted term. *)

val at_equilibrium : Subsidy_game.t -> Nash.equilibrium -> float
(** [R = p * theta] at a solved equilibrium. *)

val upsilon : Subsidy_game.t -> subsidies:Numerics.Vec.t -> float
(** [Upsilon = 1 + sum_j eps^lambdaj_mj] where, per equation (14),
    [eps^lambdaj_mj = m_j lambda_j'(phi) / (dg/dphi)]. A property of the
    physical model only. *)

val price_elasticities :
  Subsidy_game.t -> subsidies:Numerics.Vec.t -> Numerics.Vec.t
(** [eps^mi_p = (p / m_i) m_i'(t_i) (1 - ds_i/dp)], with [ds_i/dp]
    from the Theorem-6 sensitivity formulas. Requires [p > 0]. *)

val marginal_formula : Subsidy_game.t -> subsidies:Numerics.Vec.t -> float
(** Equation (13): [dR/dp = sum_i theta_i + Upsilon sum_i eps^mi_p
    theta_i], evaluated at an equilibrium profile. *)

val marginal_numeric : ?h:float -> Subsidy_game.t -> float
(** [dR/dp] by re-solving the Nash equilibrium at perturbed prices:
    the ground truth the formula is validated against. *)

val curve :
  Subsidy_game.t -> prices:float array -> (float * Nash.equilibrium * float) array
(** [(p, equilibrium(p), R(p))] along a price grid, each solve
    continuation-predicted from the previous cells (secant in [Fast]
    mode, plain warm start in [Legacy]). *)

val optimal_price :
  ?p_max:float ->
  ?points:int ->
  ?track:Numerics.Continuation.track ->
  Subsidy_game.t ->
  float * float
(** The revenue-maximizing price and revenue for the game's policy cap,
    over [\[0, p_max\]] (default 3, 49 scan points). The search walks a
    continuation track over the price axis; pass [track] to keep that
    warm state alive across calls (e.g. along an outer capacity
    search). *)
