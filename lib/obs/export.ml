let json_of_labels labels : Json.t =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let json_of_series (name, labels, read) : Json.t =
  let common = [ ("name", Json.Str name); ("labels", json_of_labels labels) ] in
  match (read : Metrics.read) with
  | Metrics.Counter v -> Json.Obj (common @ [ ("kind", Json.Str "counter"); ("value", Json.Num v) ])
  | Metrics.Gauge v -> Json.Obj (common @ [ ("kind", Json.Str "gauge"); ("value", Json.Num v) ])
  | Metrics.Histogram s ->
    Json.Obj
      (common
      @ [
          ("kind", Json.Str "histogram");
          ("count", Json.Num (float_of_int s.Metrics.count));
          ("sum", Json.Num s.Metrics.sum);
          ("min", Json.Num s.Metrics.min);
          ("max", Json.Num s.Metrics.max);
          ("p50", Json.Num s.Metrics.p50);
          ("p90", Json.Num s.Metrics.p90);
          ("p99", Json.Num s.Metrics.p99);
          ( "buckets",
            Json.Arr
              (List.map
                 (fun (center, count) ->
                   Json.Obj
                     [ ("center", Json.Num center); ("count", Json.Num (float_of_int count)) ])
                 s.Metrics.buckets) );
        ])

let metrics_json ?prefix () : Json.t =
  Json.Obj
    [
      ("schema", Json.Str "obs.metrics.v1");
      ("generated_unix", Json.Num (Clock.now ()));
      ("series", Json.Arr (List.map json_of_series (Metrics.snapshot ?prefix ())));
    ]

(* ------------------------------------------------------------------ *)
(* Chrome trace_event *)

let trace_json () : Json.t =
  let spans = Trace.spans () in
  let t0 = match spans with [] -> 0. | s :: _ -> s.Trace.start in
  let event (s : Trace.span) : Json.t =
    let dur = if Float.is_nan s.stop then 0. else Clock.us_of_s (s.stop -. s.start) in
    Json.Obj
      [
        ("name", Json.Str s.name);
        ("cat", Json.Str "obs");
        ("ph", Json.Str "X");
        ("ts", Json.Num (Clock.us_of_s (s.start -. t0)));
        ("dur", Json.Num dur);
        ("pid", Json.Num 1.);
        ("tid", Json.Num 1.);
        ( "args",
          Json.Obj
            ([
               ("span_id", Json.Num (float_of_int s.id));
               ( "parent_id",
                 match s.parent with None -> Json.Null | Some p -> Json.Num (float_of_int p) );
             ]
            @ List.rev_map (fun (k, v) -> (k, Json.Str v)) s.attrs) );
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.map event spans));
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj
          [
            ("schema", Json.Str "obs.trace.v1");
            ("spans", Json.Num (float_of_int (List.length spans)));
            ("dropped", Json.Num (float_of_int (Trace.dropped ())));
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* tables *)

let fmt_g x = Printf.sprintf "%.6g" x

let metrics_table ?prefix () =
  let table =
    Report.Table.make ~columns:[ "name"; "labels"; "kind"; "value"; "count"; "p50"; "p99" ]
  in
  List.iter
    (fun (name, labels, read) ->
      let labels = Metrics.labels_to_string labels in
      match (read : Metrics.read) with
      | Metrics.Counter v ->
        Report.Table.add_row table [ name; labels; "counter"; fmt_g v; "-"; "-"; "-" ]
      | Metrics.Gauge v ->
        Report.Table.add_row table [ name; labels; "gauge"; fmt_g v; "-"; "-"; "-" ]
      | Metrics.Histogram s ->
        Report.Table.add_row table
          [
            name;
            labels;
            "histogram";
            fmt_g s.Metrics.sum;
            string_of_int s.Metrics.count;
            fmt_g s.Metrics.p50;
            fmt_g s.Metrics.p99;
          ])
    (Metrics.snapshot ?prefix ());
  table

(* the solver-focused end-of-run table: rows are (layer, op) pairs
   discovered from the latency histograms Robust maintains *)
let telemetry_table () =
  let snapshot = Metrics.snapshot ~prefix:"solver." () in
  let latencies =
    List.filter_map
      (function
        | ("solver.latency", labels, Metrics.Histogram s) when s.Metrics.count > 0 ->
          Option.bind (Metrics.label labels "layer") (fun layer ->
              Option.map (fun op -> (layer, op, s)) (Metrics.label labels "op"))
        | _ -> None)
      snapshot
  in
  let table =
    Report.Table.make
      ~columns:
        [
          "layer"; "op"; "calls"; "attempts"; "fallback rate"; "failures"; "evals";
          "p50 ms"; "p99 ms";
        ]
  in
  let counter name where =
    Metrics.sum_counters ~where name
  in
  List.iter
    (fun (layer, op, (s : Metrics.summary)) ->
      let in_layer labels = Metrics.label labels "layer" = Some layer in
      let in_layer_op labels = in_layer labels && Metrics.label labels "op" = Some op in
      let calls =
        counter
          (if op = "root" then "solver.root.calls" else "solver.fixed_point.calls")
          in_layer
      in
      let attempts =
        counter "solver.attempts" (fun labels ->
            in_layer labels
            &&
            let damped = Metrics.label labels "method" = Some "damped-iteration" in
            if op = "root" then not damped else damped)
      in
      let recoveries =
        if op = "root" then counter "solver.fallbacks" in_layer
        else counter "solver.retries" in_layer
      in
      let failures = counter "solver.failures" in_layer_op in
      let evals = Metrics.sum_histograms ~where:in_layer_op "solver.evaluations" in
      Report.Table.add_row table
        [
          layer;
          op;
          fmt_g calls;
          fmt_g attempts;
          (if calls > 0. then Printf.sprintf "%.3f" (recoveries /. calls) else "-");
          fmt_g failures;
          fmt_g evals;
          Printf.sprintf "%.4g" (s.Metrics.p50 *. 1e3);
          Printf.sprintf "%.4g" (s.Metrics.p99 *. 1e3);
        ])
    latencies;
  table

let write_json ~path json =
  let line = Json.to_string json in
  if path = "-" then print_endline line
  else
    match
      Report.Fsio.write_atomic ~path (fun oc ->
          output_string oc line;
          output_char oc '\n')
    with
    | Ok () -> ()
    | Error msg ->
      (* surfaced, not swallowed: the failure is both counted and raised *)
      Metrics.incr (Metrics.counter "obs.export.write_errors");
      raise (Sys_error (path ^ ": " ^ msg))
