(** Fixed-capacity ring-buffer time series, typically sampled from the
    {!Metrics} registry on a periodic tick.

    A sampler owns one ring per series name.  {!tick} snapshots the
    registry and derives history: counters and histogram counts become
    rates (["<name>.rate"], delta / elapsed, clamped at 0 so a registry
    reset reads as a quiet period), gauges record their value, and
    non-empty histograms record [".p50"] / [".p99"] quantile tracks.
    Labels are folded into the series name as ["name{k=v,...}"].

    Each ring holds the most recent [capacity] points; older points are
    overwritten in place, so memory is bounded no matter how long a
    daemon runs.  All operations are serialized behind the sampler's
    mutex and are safe to call from concurrent domains. *)

type t

val create : ?capacity:int -> unit -> t
(** Points kept per series (default 512). Raises [Invalid_argument] on
    a capacity < 1. *)

val append : t -> name:string -> t_s:float -> float -> unit
(** Record one explicit point (for series not driven by {!tick}). *)

val tick : ?prefix:string -> ?now:float -> t -> unit
(** Sample every registry series matching [prefix] at time [now]
    (default {!Clock.now}).  The first tick only primes rate baselines;
    rates appear from the second tick on. *)

val names : t -> string list
(** Sorted names of every series with at least one point (rate series
    appear once a rate has actually been computed). *)

val points : t -> string -> (float * float) list
(** Oldest-to-newest [(t_s, value)]; at most [capacity] points; [[]]
    for unknown names. *)

type window = { n : int; last : float; mean : float; min : float; max : float }

val window : ?last_s:float -> t -> string -> window option
(** Aggregate the points whose timestamp is within [last_s] of the
    newest point (default: all points); [None] when empty. *)
