(* Differ for bench.v1 performance records: compares the per-figure
   measurements of two records under per-metric tolerance bands and
   reports regressions, so CI can gate perf PRs on `bench --compare`. *)

type tolerance = {
  seconds_rel : float;
  seconds_abs : float;
  counts_rel : float;
  counts_abs : float;
}

let default_tolerance =
  (* wall-clock is noisy (machine load, CPU scaling): a fast figure must
     double before it trips.  solver work counts are deterministic, so
     their band is tight — 2% plus a little slack for tiny figures. *)
  { seconds_rel = 0.5; seconds_abs = 0.1; counts_rel = 0.02; counts_abs = 64. }

type verdict = {
  figure : string;
  metric : string;
  baseline : float;
  current : float;
  allowed : float;
  regressed : bool;
}

type report = {
  verdicts : verdict list;
  compared : string list;
  only_in_baseline : string list;
  only_in_current : string list;
}

let regressions r = List.filter (fun v -> v.regressed) r.verdicts
let ok r = regressions r = []

(* ------------------------------------------------------------------ *)
(* record parsing *)

type fig = {
  id : string;
  seconds : float option;
  root_calls : float option;
  objective_evaluations : float option;
  deriv_ad : float option;
  deriv_fd : float option;
  shared_root_calls : float option;
  shared_objective_evaluations : float option;
}

let field name json = Option.bind (Json.member name json) Json.to_float

let parse_figures json =
  match Option.bind (Json.member "figures" json) Json.to_list with
  | None -> Error "bench record has no \"figures\" array"
  | Some figs ->
    let parse j =
      match Json.member "id" j with
      | Some (Json.Str id) ->
        Some
          {
            id;
            seconds = field "seconds" j;
            root_calls = field "root_calls" j;
            objective_evaluations = field "objective_evaluations" j;
            deriv_ad = field "deriv_ad" j;
            deriv_fd = field "deriv_fd" j;
            shared_root_calls = field "shared_root_calls" j;
            shared_objective_evaluations = field "shared_objective_evaluations" j;
          }
      | _ -> None
    in
    Ok (List.filter_map parse figs)

let load_file ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
    match Json.of_string text with
    | exception Json.Parse_error msg -> Error (path ^ ": " ^ msg)
    | json -> Ok json)

(* ------------------------------------------------------------------ *)
(* injection (self-test support): scale recorded seconds per figure *)

let scale_seconds json ~by =
  match by with
  | [] -> json
  | by -> (
    match json with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             if k <> "figures" then (k, v)
             else
               match v with
               | Json.Arr figs ->
                 ( k,
                   Json.Arr
                     (List.map
                        (fun fig ->
                          match Json.member "id" fig with
                          | Some (Json.Str id) -> (
                            match (List.assoc_opt id by, fig) with
                            | Some factor, Json.Obj ffields ->
                              Json.Obj
                                (List.map
                                   (fun (fk, fv) ->
                                     match (fk, fv) with
                                     | "seconds", Json.Num s ->
                                       (fk, Json.Num (s *. factor))
                                     | _ -> (fk, fv))
                                   ffields)
                            | _ -> fig)
                          | _ -> fig)
                        figs) )
               | _ -> (k, v))
           fields)
    | other -> other)

(* ------------------------------------------------------------------ *)
(* diffing *)

let diff ?(tolerance = default_tolerance) ~baseline ~current () =
  match (parse_figures baseline, parse_figures current) with
  | Error msg, _ -> Error ("baseline: " ^ msg)
  | _, Error msg -> Error ("current: " ^ msg)
  | Ok base_figs, Ok cur_figs ->
    let base_ids = List.map (fun f -> f.id) base_figs in
    let cur_ids = List.map (fun f -> f.id) cur_figs in
    let compared = List.filter (fun id -> List.mem id cur_ids) base_ids in
    let only_in_baseline =
      List.filter (fun id -> not (List.mem id cur_ids)) base_ids
    in
    let only_in_current =
      List.filter (fun id -> not (List.mem id base_ids)) cur_ids
    in
    let verdict figure metric ~rel ~abs b c =
      match (b, c) with
      | Some b, Some c when Float.is_finite b && Float.is_finite c ->
        let allowed = (b *. (1. +. rel)) +. abs in
        Some
          { figure; metric; baseline = b; current = c; allowed;
            regressed = c > allowed }
      | _ -> None
    in
    let verdicts =
      List.concat_map
        (fun id ->
          let b = List.find (fun f -> f.id = id) base_figs in
          let c = List.find (fun f -> f.id = id) cur_figs in
          List.filter_map Fun.id
            [
              verdict id "seconds" ~rel:tolerance.seconds_rel
                ~abs:tolerance.seconds_abs b.seconds c.seconds;
              verdict id "root_calls" ~rel:tolerance.counts_rel
                ~abs:tolerance.counts_abs b.root_calls c.root_calls;
              verdict id "objective_evaluations" ~rel:tolerance.counts_rel
                ~abs:tolerance.counts_abs b.objective_evaluations
                c.objective_evaluations;
              (* derivative-mix counters: a deriv_fd regression means a
                 code path fell back from exact AD to stencils *)
              verdict id "deriv_fd" ~rel:tolerance.counts_rel
                ~abs:tolerance.counts_abs b.deriv_fd c.deriv_fd;
              (* the memoized fig7-11 sweep, attributed to each consumer *)
              verdict id "shared_root_calls" ~rel:tolerance.counts_rel
                ~abs:tolerance.counts_abs b.shared_root_calls c.shared_root_calls;
              verdict id "shared_objective_evaluations" ~rel:tolerance.counts_rel
                ~abs:tolerance.counts_abs b.shared_objective_evaluations
                c.shared_objective_evaluations;
            ])
        compared
    in
    Ok { verdicts; compared; only_in_baseline; only_in_current }

(* ------------------------------------------------------------------ *)
(* rendering *)

let table r =
  let t =
    Report.Table.make
      ~columns:
        [ "figure"; "metric"; "baseline"; "current"; "ratio"; "allowed"; "verdict" ]
  in
  List.iter
    (fun v ->
      Report.Table.add_row t
        [
          v.figure;
          v.metric;
          Printf.sprintf "%.6g" v.baseline;
          Printf.sprintf "%.6g" v.current;
          (if v.baseline > 0. then Printf.sprintf "%.2fx" (v.current /. v.baseline)
           else "-");
          Printf.sprintf "%.6g" v.allowed;
          (if v.regressed then "REGRESSED" else "ok");
        ])
    r.verdicts;
  t

let summary r =
  let regs = regressions r in
  let skew =
    (match r.only_in_baseline with
    | [] -> []
    | ids -> [ Printf.sprintf "missing from current: %s" (String.concat "," ids) ])
    @
    match r.only_in_current with
    | [] -> []
    | ids -> [ Printf.sprintf "new in current: %s" (String.concat "," ids) ]
  in
  Printf.sprintf "bench compare: %d figures, %d checks, %d regressions%s%s"
    (List.length r.compared) (List.length r.verdicts) (List.length regs)
    (if regs = [] then ""
     else
       " ("
       ^ String.concat ", "
           (List.map (fun v -> v.figure ^ "." ^ v.metric) regs)
       ^ ")")
    (match skew with [] -> "" | s -> "; " ^ String.concat "; " s)
