(* Prometheus text exposition format 0.0.4 over the Metrics registry.
   Pure rendering: a snapshot in, one string out, no I/O here. *)

let sanitize_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> Bytes.set b i '_')
    b;
  let s = Bytes.to_string b in
  if s = "" then "_"
  else
    match s.[0] with
    | '0' .. '9' -> "_" ^ s
    | _ -> s

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let format_value x =
  if Float.is_nan x then "NaN"
  else if not (Float.is_finite x) then if x > 0. then "+Inf" else "-Inf"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

(* labels are already normalized (sorted by key) by the registry; [extra]
   appends after them, which keeps [le] last on histogram buckets *)
let label_block labels extra =
  match labels @ extra with
  | [] -> ""
  | kvs ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (sanitize_name k) (escape_label_value v))
           kvs)
    ^ "}"

let render_snapshot entries =
  let buf = Buffer.create 1024 in
  let last_typed = ref "" in
  let type_line name kind =
    if name <> !last_typed then begin
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind);
      last_typed := name
    end
  in
  let sample name labels extra v =
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s\n" name (label_block labels extra) v)
  in
  List.iter
    (fun (name, labels, read) ->
      let pname = sanitize_name name in
      match (read : Metrics.read) with
      | Metrics.Counter v ->
        type_line pname "counter";
        sample pname labels [] (format_value v)
      | Metrics.Gauge v ->
        type_line pname "gauge";
        sample pname labels [] (format_value v)
      | Metrics.Histogram s ->
        type_line pname "histogram";
        List.iter
          (fun (le, cum) ->
            sample (pname ^ "_bucket") labels
              [ ("le", format_value le) ]
              (string_of_int cum))
          s.Metrics.buckets_le;
        sample (pname ^ "_bucket") labels
          [ ("le", "+Inf") ]
          (string_of_int s.Metrics.count);
        sample (pname ^ "_sum") labels [] (format_value s.Metrics.sum);
        sample (pname ^ "_count") labels [] (string_of_int s.Metrics.count))
    entries;
  Buffer.contents buf

let expose ?prefix () = render_snapshot (Metrics.snapshot ?prefix ())
