(** Differ for bench.v1 performance records.

    Compares the per-figure measurements of two bench records
    ([seconds], [root_calls], [objective_evaluations]) under per-metric
    tolerance bands, so `bench --compare OLD.json` — and the CI job
    built on it — can fail a build that made the solver slower.

    Only regressions (current above the allowed band) fail; a figure
    getting {e faster} never does.  Figures present in one record only
    are reported but are not regressions — CI may bench a subset. *)

type tolerance = {
  seconds_rel : float;  (** relative slack on wall-clock seconds *)
  seconds_abs : float;  (** absolute slack (s), floors noise on fast figures *)
  counts_rel : float;  (** relative slack on solver work counts *)
  counts_abs : float;  (** absolute slack (calls) *)
}

val default_tolerance : tolerance
(** Seconds: 50% + 0.1s (wall-clock is noisy); counts: 2% + 64 calls
    (deterministic, so tight).  [allowed = baseline*(1+rel) + abs]. *)

type verdict = {
  figure : string;
  metric : string;
  baseline : float;
  current : float;
  allowed : float;
  regressed : bool;
}

type report = {
  verdicts : verdict list;
  compared : string list;  (** figure ids present in both records *)
  only_in_baseline : string list;
  only_in_current : string list;
}

val diff :
  ?tolerance:tolerance ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  (report, string) result
(** [Error] when either document lacks a ["figures"] array.  Metrics
    missing or non-finite on either side are skipped, not failed. *)

val regressions : report -> verdict list
val ok : report -> bool

val load_file : path:string -> (Json.t, string) result
(** Read and parse a record; [Error] carries the I/O or parse message. *)

val scale_seconds : Json.t -> by:(string * float) list -> Json.t
(** Multiply the recorded [seconds] of the named figures — the
    `--inject-slowdown` self-test that proves the gate can fire. *)

val table : report -> Report.Table.t
(** One row per verdict: baseline, current, ratio, allowed, verdict. *)

val summary : report -> string
(** One line: figure/check/regression counts plus any id skew. *)
