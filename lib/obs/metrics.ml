type labels = (string * string) list

let normalize labels = List.stable_sort (fun (a, _) (b, _) -> compare a b) labels

let labels_to_string labels =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let label labels k = List.assoc_opt k labels

(* ------------------------------------------------------------------ *)
(* series storage *)

(* log-scale buckets: [buckets_per_decade] per factor of 10 over
   [10^lo_exp, 10^hi_exp); everything below (incl. <= 0) is underflow,
   everything above is clamped into the last bucket *)
let buckets_per_decade = 24
let lo_exp = -9
let hi_exp = 9
let n_buckets = (hi_exp - lo_exp) * buckets_per_decade

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable minimum : float;
  mutable maximum : float;
  mutable underflow : int;
  counts : int array;
}

let fresh_hist () =
  {
    count = 0;
    sum = 0.;
    minimum = Float.infinity;
    maximum = Float.neg_infinity;
    underflow = 0;
    counts = Array.make n_buckets 0;
  }

let bucket_index x =
  let i =
    int_of_float
      (Float.floor ((Float.log10 x -. float_of_int lo_exp) *. float_of_int buckets_per_decade))
  in
  (* clamp both ends: at a decade boundary (e.g. exactly 1e-9) log10 can
     round a hair below lo_exp, which used to index at -1 *)
  if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

let bucket_lower i =
  Float.pow 10.
    (float_of_int lo_exp +. (float_of_int i /. float_of_int buckets_per_decade))

let bucket_upper i = bucket_lower (i + 1)

let bucket_center i =
  Float.pow 10.
    (float_of_int lo_exp +. ((float_of_int i +. 0.5) /. float_of_int buckets_per_decade))

type counter = float ref
type gauge = float ref
type histogram = hist

type cell = C of counter | G of gauge | H of hist

type series = { name : string; labels : labels; cell : cell }

(* one process-wide lock covers the table and every cell mutation or
   read: updates are a handful of float/int stores, so the critical
   sections are tiny, and a single lock keeps the whole registry
   linearizable (a snapshot can never see a half-updated histogram) *)
let lock = Mutex.create ()

let locked f = Mutex.protect lock f

let registry : (string * labels, series) Hashtbl.t =
  Hashtbl.create 64
[@@sync "every access (register, cell updates, reads) goes through [lock]"]

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register name labels make match_cell =
  let labels = normalize labels in
  let outcome =
    locked (fun () ->
        match Hashtbl.find_opt registry (name, labels) with
        | Some s -> (
          match match_cell s.cell with
          | Some v -> Ok v
          | None -> Error (kind_name s.cell))
        | None ->
          let v, cell = make () in
          Hashtbl.add registry (name, labels) { name; labels; cell };
          Ok v)
  in
  match outcome with
  | Ok v -> v
  | Error kind ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %s{%s} already registered as a %s" name
         (labels_to_string labels) kind)

let counter ?(labels = []) name : counter =
  register name labels
    (fun () ->
      let r = ref 0. in
      (r, C r))
    (function C r -> Some r | _ -> None)

let incr ?(by = 1.) (c : counter) = locked (fun () -> c := !c +. by)
let counter_value (c : counter) = locked (fun () -> !c)

let gauge ?(labels = []) name : gauge =
  register name labels
    (fun () ->
      let r = ref 0. in
      (r, G r))
    (function G r -> Some r | _ -> None)

let set (g : gauge) v = locked (fun () -> g := v)
let gauge_value (g : gauge) = locked (fun () -> !g)

let histogram ?(labels = []) name : histogram =
  register name labels
    (fun () ->
      let h = fresh_hist () in
      (h, H h))
    (function H h -> Some h | _ -> None)

let observe (h : histogram) x =
  if Float.is_finite x then
    locked (fun () ->
        h.count <- h.count + 1;
        h.sum <- h.sum +. x;
        if x < h.minimum then h.minimum <- x;
        if x > h.maximum then h.maximum <- x;
        if x < Float.pow 10. (float_of_int lo_exp) then h.underflow <- h.underflow + 1
        else h.counts.(bucket_index x) <- h.counts.(bucket_index x) + 1)

(* _unlocked readers exist because [lock] is not reentrant: public
   wrappers take the lock once, compound readers (snapshot) reuse the
   raw versions under their own single acquisition *)
(* Geometric within-bucket interpolation: find the bucket holding the
   target rank, then place the estimate at lower * (upper/lower)^frac
   where frac is the rank's position inside the bucket's mass.  This is
   exact for point masses sitting on a bucket edge (after the min/max
   clamp) and removes the half-bucket bias the old center-of-bucket
   answer had at boundaries. *)
let percentile_unlocked (h : histogram) p =
  if h.count = 0 then Float.nan
  else if p <= 0. then h.minimum
  else if p >= 100. then h.maximum
  else begin
    let target = p /. 100. *. float_of_int h.count in
    let clamp v = Float.max h.minimum (Float.min h.maximum v) in
    if target <= float_of_int h.underflow then h.minimum
    else begin
      let cum = ref (float_of_int h.underflow) in
      let answer = ref h.maximum in
      (try
         for i = 0 to n_buckets - 1 do
           let c = float_of_int h.counts.(i) in
           if c > 0. && !cum +. c >= target then begin
             let frac = (target -. !cum) /. c in
             answer :=
               bucket_lower i
               *. Float.pow 10. (frac /. float_of_int buckets_per_decade);
             raise Exit
           end;
           cum := !cum +. c
         done
       with Exit -> ());
      clamp !answer
    end
  end

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  buckets : (float * int) list;
  buckets_le : (float * int) list;
}

let summarize_unlocked (h : histogram) =
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.counts.(i) > 0 then buckets := (bucket_center i, h.counts.(i)) :: !buckets
  done;
  let buckets =
    if h.underflow > 0 then (0., h.underflow) :: !buckets else !buckets
  in
  let les = ref [] in
  let cum = ref h.underflow in
  for i = 0 to n_buckets - 1 do
    if h.counts.(i) > 0 then begin
      cum := !cum + h.counts.(i);
      les := (bucket_upper i, !cum) :: !les
    end
  done;
  let buckets_le =
    if h.underflow > 0 then (bucket_lower 0, h.underflow) :: List.rev !les
    else List.rev !les
  in
  {
    count = h.count;
    sum = h.sum;
    min = (if h.count = 0 then Float.nan else h.minimum);
    max = (if h.count = 0 then Float.nan else h.maximum);
    p50 = percentile_unlocked h 50.;
    p90 = percentile_unlocked h 90.;
    p99 = percentile_unlocked h 99.;
    buckets;
    buckets_le;
  }

let percentile h p = locked (fun () -> percentile_unlocked h p)
let summarize h = locked (fun () -> summarize_unlocked h)

(* ------------------------------------------------------------------ *)
(* reading *)

type read = Counter of float | Gauge of float | Histogram of summary

let read_of_cell = function
  | C r -> Counter !r
  | G r -> Gauge !r
  | H h -> Histogram (summarize_unlocked h)

let has_prefix prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let snapshot ?(prefix = "") () =
  locked (fun () ->
      Hashtbl.fold
        (fun _ s acc ->
          if has_prefix prefix s.name then (s.name, s.labels, read_of_cell s.cell) :: acc
          else acc)
        registry [])
  |> List.sort (fun (n1, l1, _) (n2, l2, _) -> compare (n1, l1) (n2, l2))

let sum_counters ?(where = fun _ -> true) name =
  locked (fun () ->
      Hashtbl.fold
        (fun _ s acc ->
          match s.cell with
          | C r when s.name = name && where s.labels -> acc +. !r
          | _ -> acc)
        registry 0.)

let sum_histograms ?(where = fun _ -> true) name =
  locked (fun () ->
      Hashtbl.fold
        (fun _ s acc ->
          match s.cell with
          | H h when s.name = name && where s.labels -> acc +. h.sum
          | _ -> acc)
        registry 0.)

let reset ?(prefix = "") () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ s ->
          if has_prefix prefix s.name then
            match s.cell with
            | C r | G r -> r := 0.
            | H h ->
              h.count <- 0;
              h.sum <- 0.;
              h.minimum <- Float.infinity;
              h.maximum <- Float.neg_infinity;
              h.underflow <- 0;
              Array.fill h.counts 0 n_buckets 0)
        registry)
