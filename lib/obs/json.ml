type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* printing *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_num b x =
  if not (Float.is_finite x) then Buffer.add_string b "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" x)
  else Buffer.add_string b (Printf.sprintf "%.17g" x)

let to_string ?(pretty = false) t =
  let b = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string b (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char b '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Num x -> add_num b x
    | Str s ->
      Buffer.add_char b '"';
      escape_into b s;
      Buffer.add_char b '"'
    | Arr [] -> Buffer.add_string b "[]"
    | Arr items ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (depth + 1);
          emit (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char b '"';
          escape_into b k;
          Buffer.add_string b (if pretty then "\": " else "\":");
          emit (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char b '}'
  in
  emit 0 t;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* parsing: plain recursive descent over the string *)

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code b code =
    (* encode one Unicode scalar value; surrogate pairs are handled by
       the caller before we get here *)
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "truncated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char b '"'; advance ()
         | '\\' -> Buffer.add_char b '\\'; advance ()
         | '/' -> Buffer.add_char b '/'; advance ()
         | 'n' -> Buffer.add_char b '\n'; advance ()
         | 'r' -> Buffer.add_char b '\r'; advance ()
         | 't' -> Buffer.add_char b '\t'; advance ()
         | 'b' -> Buffer.add_char b '\b'; advance ()
         | 'f' -> Buffer.add_char b '\012'; advance ()
         | 'u' ->
           advance ();
           let hi = hex4 () in
           let code =
             if hi >= 0xD800 && hi <= 0xDBFF then begin
               (* surrogate pair: the low half must follow immediately *)
               if !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
                 pos := !pos + 2;
                 let lo = hex4 () in
                 if lo < 0xDC00 || lo > 0xDFFF then fail "invalid low surrogate";
                 0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
               end
               else fail "unpaired high surrogate"
             end
             else hi
           in
           utf8_of_code b code
         | c -> fail (Printf.sprintf "bad escape \\%c" c));
        loop ()
      | c ->
        Buffer.add_char b c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let digit () =
      match peek () with
      | Some ('0' .. '9') -> advance (); true
      | _ -> false
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    if not (digit ()) then fail "expected digit";
    while digit () do () done;
    (match peek () with
    | Some '.' ->
      advance ();
      if not (digit ()) then fail "expected fraction digit";
      while digit () do () done
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      if not (digit ()) then fail "expected exponent digit";
      while digit () do () done
    | _ -> ());
    float_of_string (String.sub s start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num x -> Some x | _ -> None

let to_list = function Arr items -> Some items | _ -> None
