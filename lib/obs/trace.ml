type span = {
  id : int;
  parent : int option;
  name : string;
  start : float;
  mutable stop : float;
  mutable attrs : (string * string) list;
}

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let max_spans = 200_000

let next_id = ref 0
let stack : span list ref = ref []
let completed : span list ref = ref []
let n_completed = ref 0
let n_dropped = ref 0

let clear () =
  next_id := 0;
  stack := [];
  completed := [];
  n_completed := 0;
  n_dropped := 0

let dropped () = !n_dropped

let current () = match !stack with [] -> None | s :: _ -> Some s.name

let finish span =
  span.stop <- Clock.now ();
  (match !stack with
  | top :: rest when top == span -> stack := rest
  | _ ->
    (* unbalanced close (the thunk tampered with the stack through a
       nested clear): drop everything above the span, then the span *)
    let rec pop = function
      | top :: rest -> if top == span then rest else pop rest
      | [] -> []
    in
    stack := pop !stack);
  if !n_completed < max_spans then begin
    completed := span :: !completed;
    Stdlib.incr n_completed
  end
  else Stdlib.incr n_dropped

let with_span ?(attrs = []) name f =
  if not !enabled_flag then f ()
  else begin
    Stdlib.incr next_id;
    let span =
      {
        id = !next_id;
        parent = (match !stack with [] -> None | p :: _ -> Some p.id);
        name;
        start = Clock.now ();
        stop = Float.nan;
        attrs;
      }
    in
    stack := span :: !stack;
    Fun.protect ~finally:(fun () -> finish span) f
  end

let add_attr k v =
  match !stack with
  | top :: _ -> top.attrs <- (k, v) :: top.attrs
  | [] -> ()

let spans () =
  List.stable_sort
    (fun a b -> if a.start = b.start then compare a.id b.id else compare a.start b.start)
    (List.rev !completed)
