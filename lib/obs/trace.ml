type span = {
  id : int;
  parent : int option;
  name : string;
  start : float;
  mutable stop : float;
  mutable attrs : (string * string) list;
}

(* Domain-safety discipline: the enabled flag and the id source are
   atomics; the open-span stack is domain-local (each domain nests its
   own spans, so a span opened inside a pool worker becomes a root);
   the completed buffer is shared across domains behind [lock]. *)

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let max_spans = 200_000

let next_id = Atomic.make 0

let stack_key : span list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let lock = Mutex.create ()

let completed : span list ref =
  ref []
[@@sync "guarded by [lock] together with the two counters below"]

let n_completed = ref 0 [@@sync "guarded by [lock]"]
let n_dropped = ref 0 [@@sync "guarded by [lock]"]

let clear () =
  Atomic.set next_id 0;
  (stack ()) := [];
  Mutex.protect lock (fun () ->
      completed := [];
      n_completed := 0;
      n_dropped := 0)

let dropped () = Mutex.protect lock (fun () -> !n_dropped)

let current () = match !(stack ()) with [] -> None | s :: _ -> Some s.name

let finish span =
  span.stop <- Clock.now ();
  let stack = stack () in
  (match !stack with
  | top :: rest when top == span -> stack := rest
  | _ ->
    (* unbalanced close (the thunk tampered with the stack through a
       nested clear): drop everything above the span, then the span *)
    let rec pop = function
      | top :: rest -> if top == span then rest else pop rest
      | [] -> []
    in
    stack := pop !stack);
  Mutex.protect lock (fun () ->
      if !n_completed < max_spans then begin
        completed := span :: !completed;
        Stdlib.incr n_completed
      end
      else Stdlib.incr n_dropped)

let with_span ?(attrs = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = stack () in
    let span =
      {
        id = 1 + Atomic.fetch_and_add next_id 1;
        parent = (match !stack with [] -> None | p :: _ -> Some p.id);
        name;
        start = Clock.now ();
        stop = Float.nan;
        attrs;
      }
    in
    stack := span :: !stack;
    Fun.protect ~finally:(fun () -> finish span) f
  end

let add_attr k v =
  match !(stack ()) with
  | top :: _ -> top.attrs <- (k, v) :: top.attrs
  | [] -> ()

let spans () =
  List.stable_sort
    (fun a b -> if a.start = b.start then compare a.id b.id else compare a.start b.start)
    (List.rev (Mutex.protect lock (fun () -> !completed)))
