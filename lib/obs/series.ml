type ring = {
  ts : float array;
  vs : float array;
  mutable len : int;
  mutable next : int;
}

type t = {
  capacity : int;
  lock : Mutex.t;
  rings : (string, ring) Hashtbl.t;
  prev : (string, float * float) Hashtbl.t;
      (* counter-ish series name -> (last tick time, last raw value) *)
}

let create ?(capacity = 512) () =
  if capacity < 1 then invalid_arg "Obs.Series.create: capacity must be >= 1";
  {
    capacity;
    lock = Mutex.create ();
    rings = Hashtbl.create 16;
    prev = Hashtbl.create 16;
  }

let locked t f = Mutex.protect t.lock f

let ring_for t name =
  match Hashtbl.find_opt t.rings name with
  | Some r -> r
  | None ->
    let r =
      {
        ts = Array.make t.capacity 0.;
        vs = Array.make t.capacity 0.;
        len = 0;
        next = 0;
      }
    in
    Hashtbl.add t.rings name r;
    r

let append_unlocked t name ~t_s v =
  let r = ring_for t name in
  r.ts.(r.next) <- t_s;
  r.vs.(r.next) <- v;
  r.next <- (r.next + 1) mod t.capacity;
  if r.len < t.capacity then r.len <- r.len + 1

let append t ~name ~t_s v = locked t (fun () -> append_unlocked t name ~t_s v)

(* record a raw monotone value and append its rate of change; clamp at 0
   so a counter reset (Metrics.reset) reads as a quiet period, not a
   negative rate spike *)
let rate_sample_unlocked t name ~now v =
  (match Hashtbl.find_opt t.prev name with
  | Some (pt, pv) when now > pt ->
    append_unlocked t name ~t_s:now (Float.max 0. ((v -. pv) /. (now -. pt)))
  | Some _ -> ()
  | None -> ());
  Hashtbl.replace t.prev name (now, v)

let display_name name labels =
  if labels = [] then name
  else name ^ "{" ^ Metrics.labels_to_string labels ^ "}"

let tick ?prefix ?now t =
  let now = match now with Some n -> n | None -> Clock.now () in
  let entries = Metrics.snapshot ?prefix () in
  locked t (fun () ->
      List.iter
        (fun (name, labels, read) ->
          let base = display_name name labels in
          match (read : Metrics.read) with
          | Metrics.Counter v -> rate_sample_unlocked t (base ^ ".rate") ~now v
          | Metrics.Gauge v -> append_unlocked t base ~t_s:now v
          | Metrics.Histogram s ->
            rate_sample_unlocked t (base ^ ".rate") ~now
              (float_of_int s.Metrics.count);
            if s.Metrics.count > 0 then begin
              append_unlocked t (base ^ ".p50") ~t_s:now s.Metrics.p50;
              append_unlocked t (base ^ ".p99") ~t_s:now s.Metrics.p99
            end)
        entries)

let names t =
  locked t (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) t.rings []
      |> List.sort compare)

let points t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.rings name with
      | None -> []
      | Some r ->
        let start = if r.len < t.capacity then 0 else r.next in
        List.init r.len (fun i ->
            let j = (start + i) mod t.capacity in
            (r.ts.(j), r.vs.(j))))

type window = { n : int; last : float; mean : float; min : float; max : float }

let window ?last_s t name =
  match points t name with
  | [] -> None
  | pts ->
    let newest = List.fold_left (fun acc (ts, _) -> Float.max acc ts) Float.neg_infinity pts in
    let keep =
      match last_s with
      | None -> pts
      | Some span -> List.filter (fun (ts, _) -> ts >= newest -. span) pts
    in
    (match keep with
    | [] -> None
    | kept ->
      let n = List.length kept in
      let sum = List.fold_left (fun acc (_, v) -> acc +. v) 0. kept in
      let mn = List.fold_left (fun acc (_, v) -> Float.min acc v) Float.infinity kept in
      let mx = List.fold_left (fun acc (_, v) -> Float.max acc v) Float.neg_infinity kept in
      let last =
        match List.rev kept with (_, v) :: _ -> v | [] -> Float.nan
      in
      Some { n; last; mean = sum /. float_of_int n; min = mn; max = mx })
