(** Prometheus text exposition (format 0.0.4) of the {!Metrics}
    registry, so any standard scraper can consume the daemon's
    telemetry.

    Names are sanitized to [[a-zA-Z0-9_:]] (dots become underscores:
    ["service.solve.latency_s"] exposes as
    [service_solve_latency_s]).  Label values are escaped per the spec
    (backslash, double quote, newline).  Counters and gauges render one
    sample each;
    histograms render cumulative [_bucket{le="..."}] samples at each
    non-empty log-scale bucket's upper edge plus the mandatory
    [le="+Inf"], [_sum] and [_count].  A [# TYPE] comment precedes each
    distinct metric name.

    Rendering is pure — no I/O and no registry mutation. *)

val expose : ?prefix:string -> unit -> string
(** Render every registry series whose name starts with [prefix]
    (default: the whole registry). *)

val render_snapshot :
  (string * Metrics.labels * Metrics.read) list -> string
(** Render an explicit snapshot (as returned by {!Metrics.snapshot});
    entries must be sorted by name for [# TYPE] grouping to hold. *)

val sanitize_name : string -> string
val escape_label_value : string -> string

val format_value : float -> string
(** Integral floats print without a decimal point; [NaN]/[+Inf]/[-Inf]
    use Prometheus spellings; everything else round-trips at [%.17g]. *)
