(** Monotonic-by-construction timing behind one interface.

    The container's stdlib has no [Unix.clock_gettime]; [now] wraps
    [Unix.gettimeofday] and pins the reading to be non-decreasing
    across calls (a backwards NTP step can otherwise produce negative
    span durations). [cpu] exposes [Sys.time] for CPU accounting. *)

val now : unit -> float
(** Wall-clock seconds since the epoch, guaranteed non-decreasing
    within the process. *)

val elapsed : since:float -> float
(** [now () -. since], clamped to be non-negative. *)

val cpu : unit -> float
(** Processor seconds consumed by the program ([Sys.time]). *)

val us_of_s : float -> float
(** Seconds -> microseconds (the unit Chrome trace_event uses). *)
