type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_name s =
  match String.lowercase_ascii s with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | other ->
    Result.Error
      (Printf.sprintf "unknown log level %S (known: debug, info, warn, error)" other)

type event = {
  t_s : float;
  level : level;
  module_ : string;
  msg : string;
  fields : (string * string) list;
  repeats : int;
}

type sink = Human of out_channel | Jsonl of out_channel | Custom of (event -> unit)

(* one process-wide lock covers sink, levels and the rate-limit table;
   log sites are cheap (a level check outside the lock) and emission is
   serialized so concurrent domains never interleave half-lines *)
let lock = Mutex.create ()

let locked f = Mutex.protect lock f

let current_sink = ref (Human stderr)
[@@sync "read and written only under [lock]"]

let default_level = ref Info
[@@sync "written under [lock]; racy reads only widen/narrow filtering"]

let module_levels : (string, level) Hashtbl.t = Hashtbl.create 8
[@@sync "every access goes through [lock]"]

let min_interval_s = ref 0.
[@@sync "read and written only under [lock]"]

type repeat_slot = {
  mutable last_emit : float;
  mutable suppressed : int;
  mutable last_event : event;
}

let repeat_slots : (string * int * string, repeat_slot) Hashtbl.t = Hashtbl.create 32
[@@sync "every access goes through [lock]"]

(* ------------------------------------------------------------------ *)
(* rendering *)

let render_fields = function
  | [] -> ""
  | fields ->
    " ("
    ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) fields)
    ^ ")"

let render_human e =
  let tm = Unix.localtime e.t_s in
  let ms = int_of_float (Float.rem e.t_s 1. *. 1000.) in
  Printf.sprintf "%02d:%02d:%02d.%03d %-5s %s: %s%s%s" tm.Unix.tm_hour
    tm.Unix.tm_min tm.Unix.tm_sec ms
    (String.uppercase_ascii (level_name e.level))
    e.module_ e.msg (render_fields e.fields)
    (if e.repeats > 0 then Printf.sprintf " [repeated %d more]" e.repeats else "")

let render_jsonl e =
  Json.to_string
    (Json.Obj
       ([
          ("t", Json.Num e.t_s);
          ("level", Json.Str (level_name e.level));
          ("m", Json.Str e.module_);
          ("msg", Json.Str e.msg);
        ]
       @ (if e.fields = [] then []
          else [ ("fields", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) e.fields)) ])
       @
       if e.repeats > 0 then [ ("repeats", Json.Num (float_of_int e.repeats)) ]
       else []))

(* ------------------------------------------------------------------ *)
(* configuration *)

let set_sink sink = locked (fun () -> current_sink := sink)
let set_level level = locked (fun () -> default_level := level)

let set_module_level module_ level =
  locked (fun () -> Hashtbl.replace module_levels module_ level)

let set_rate_limit ?min_interval_s:(interval = 0.) () =
  locked (fun () ->
      min_interval_s := (if Float.is_finite interval && interval > 0. then interval else 0.);
      Hashtbl.reset repeat_slots)

let enabled ~m level =
  let threshold =
    locked (fun () ->
        match Hashtbl.find_opt module_levels m with
        | Some l -> l
        | None -> !default_level)
  in
  level_rank level >= level_rank threshold

(* ------------------------------------------------------------------ *)
(* emission *)

let emit_unlocked e =
  match !current_sink with
  | Human oc ->
    output_string oc (render_human e);
    output_char oc '\n';
    flush oc
  | Jsonl oc ->
    output_string oc (render_jsonl e);
    output_char oc '\n';
    flush oc
  | Custom f -> f e

let log ?(fields = []) level ~m msg =
  if enabled ~m level then begin
    let now = Clock.now () in
    let e = { t_s = now; level; module_ = m; msg; fields; repeats = 0 } in
    locked (fun () ->
        let interval = !min_interval_s in
        if interval <= 0. then emit_unlocked e
        else begin
          let key = (m, level_rank level, msg) in
          match Hashtbl.find_opt repeat_slots key with
          | None ->
            Hashtbl.replace repeat_slots key
              { last_emit = now; suppressed = 0; last_event = e };
            emit_unlocked e
          | Some slot ->
            if now -. slot.last_emit >= interval then begin
              let e = { e with repeats = slot.suppressed } in
              slot.last_emit <- now;
              slot.suppressed <- 0;
              slot.last_event <- e;
              emit_unlocked e
            end
            else begin
              slot.suppressed <- slot.suppressed + 1;
              slot.last_event <- e
            end
        end)
  end

let debug ?fields ~m msg = log ?fields Debug ~m msg
let info ?fields ~m msg = log ?fields Info ~m msg
let warn ?fields ~m msg = log ?fields Warn ~m msg
let error ?fields ~m msg = log ?fields Error ~m msg

let drain () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ slot ->
          if slot.suppressed > 0 then begin
            emit_unlocked { slot.last_event with repeats = slot.suppressed };
            slot.suppressed <- 0;
            slot.last_emit <- slot.last_event.t_s
          end)
        repeat_slots)

let reset () =
  locked (fun () ->
      current_sink := Human stderr;
      default_level := Info;
      min_interval_s := 0.;
      Hashtbl.reset module_levels;
      Hashtbl.reset repeat_slots)
