(** Nestable spans over the equilibrium pipeline, buffered in memory.

    Tracing is {e off by default} and a disabled {!with_span} costs one
    branch (plus the closure the caller already built), so the hot
    path can be annotated unconditionally. When enabled, each span
    records monotonic start/stop timestamps ({!Clock}), a link to the
    enclosing span, and string attributes; {!Export.trace_json} renders
    the buffer in Chrome [trace_event] format (load it in
    [chrome://tracing] or Perfetto).

    Domain-safety: the open-span stack is {e domain-local} (a span
    opened inside a [Parallel.Pool] worker has no parent and becomes a
    root), while ids and the completed buffer are shared — atomics and
    a mutex respectively — so spans from every domain land in the same
    export. {!clear} resets the shared buffer but only the calling
    domain's open stack; call it between runs, when workers are
    quiescent. *)

type span = {
  id : int;  (** 1-based, unique within the process *)
  parent : int option;  (** enclosing span at the time this one opened *)
  name : string;
  start : float;  (** {!Clock.now} seconds *)
  mutable stop : float;  (** [nan] while the span is open *)
  mutable attrs : (string * string) list;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a fresh span. The span is closed even if the
    thunk raises. When tracing is disabled this is exactly [f ()]. *)

val add_attr : string -> string -> unit
(** Attach an attribute to the innermost open span; no-op when tracing
    is disabled or no span is open. Guard any expensive formatting of
    the value with {!enabled}. *)

val current : unit -> string option
(** Name of the innermost open span. *)

val spans : unit -> span list
(** Completed spans, sorted by start time (parents before children at
    equal timestamps). *)

val dropped : unit -> int
(** Spans discarded because the buffer cap (200k spans) was hit. *)

val clear : unit -> unit
(** Empty the buffer and the open-span stack; ids restart at 1. *)
