(** Leveled structured logging for library and binary code.

    One process-wide logger: call sites tag each event with a module
    name ([~m]) and a severity, and the logger filters by a default
    level plus optional per-module overrides, then renders to a sink
    (human-readable stderr by default, JSONL for machines, or a custom
    callback for tests).

    Repeated messages can be rate-limited: with a minimum emit
    interval configured, events sharing (module, level, message) are
    coalesced and later flushed with a repeat count.  The idiom is a
    {e constant} message string with the varying parts in [?fields].

    All state lives behind one mutex; emission is serialized so
    concurrent domains never interleave half-lines.  Custom sinks run
    under that lock and therefore must not call back into [Log]. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug" | "info" | "warn" | "error"]. *)

val level_of_name : string -> (level, string) result
(** Case-insensitive parse; accepts ["warning"] for [Warn]. *)

type event = {
  t_s : float;  (** wall-clock seconds since the epoch *)
  level : level;
  module_ : string;
  msg : string;
  fields : (string * string) list;
  repeats : int;  (** earlier duplicates coalesced into this event *)
}

type sink =
  | Human of out_channel  (** ["HH:MM:SS.mmm LEVEL module: msg (k=v, ...)"] *)
  | Jsonl of out_channel  (** one compact JSON object per line *)
  | Custom of (event -> unit)
      (** runs under the logger lock — must not log *)

val set_sink : sink -> unit
(** Default: [Human stderr]. *)

val set_level : level -> unit
(** Default threshold for modules without an override. Default: [Info]. *)

val set_module_level : string -> level -> unit
(** Override the threshold for one [~m] value. *)

val set_rate_limit : ?min_interval_s:float -> unit -> unit
(** With [min_interval_s > 0], at most one event per (module, level,
    message) key is emitted per interval; suppressed duplicates are
    counted and reported in [repeats] on the next emit or on {!drain}.
    [0.] (the default) disables rate limiting.  Resets pending
    suppression state. *)

val enabled : m:string -> level -> bool
(** Would an event at this level for this module be emitted? *)

val log : ?fields:(string * string) list -> level -> m:string -> string -> unit

val debug : ?fields:(string * string) list -> m:string -> string -> unit
val info : ?fields:(string * string) list -> m:string -> string -> unit
val warn : ?fields:(string * string) list -> m:string -> string -> unit
val error : ?fields:(string * string) list -> m:string -> string -> unit

val drain : unit -> unit
(** Flush coalesced repeats now (each pending key emits its last event
    with the suppressed count). Call before exit when rate limiting is
    on. *)

val render_human : event -> string
val render_jsonl : event -> string

val reset : unit -> unit
(** Restore defaults (Human stderr, Info, no rate limit, no module
    overrides). Intended for tests. *)
