(** Render the registry and the span buffer as JSON / CSV-able tables.

    All JSON goes through {!Json}; [write_json ~path:"-"] prints the
    document as a single line on stdout (deliberately last-line-parsable
    so shell pipelines can [tail -n 1 | json-parse] after the human
    output). *)

val metrics_json : ?prefix:string -> unit -> Json.t
(** Schema [obs.metrics.v1]: an array of series, each with name,
    labels, kind and either [value] (counter/gauge) or
    count/sum/min/max/p50/p90/p99 plus non-empty buckets (histogram). *)

val trace_json : unit -> Json.t
(** Chrome [trace_event] JSON: one complete ("ph":"X") event per span,
    timestamps in microseconds relative to the first span, parent links
    and attributes under [args]. *)

val metrics_table : ?prefix:string -> unit -> Report.Table.t
(** Generic tabular rendering of the registry (for CSV export). *)

val telemetry_table : unit -> Report.Table.t
(** The end-of-run solver table: one row per (layer, op) with call and
    attempt counts, fallback/retry rate, failure count, total objective
    evaluations, and p50/p99 solve latency. Empty when no solver ran. *)

val write_json : path:string -> Json.t -> unit
(** Write compact JSON (with trailing newline) to [path], creating
    parent directories; [path = "-"] appends a single line to stdout.
    The write is atomic ({!Report.Fsio.write_atomic}); an I/O failure
    increments the [obs.export.write_errors] counter and raises
    [Sys_error]. *)
