(* monotonicity clamp shared by every domain: a CAS max so two domains
   reading the wall clock concurrently can never observe time moving
   backwards through [now] *)
let last = Atomic.make 0.

let rec now () =
  let t = Unix.gettimeofday () in
  let seen = Atomic.get last in
  if t > seen then if Atomic.compare_and_set last seen t then t else now ()
  else seen

let elapsed ~since = Float.max 0. (now () -. since)

let cpu () = Sys.time ()

let us_of_s s = s *. 1e6
