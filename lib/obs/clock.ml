let last = ref 0.

let now () =
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

let elapsed ~since = Float.max 0. (now () -. since)

let cpu () = Sys.time ()

let us_of_s s = s *. 1e6
