(** A minimal JSON tree, printer and parser.

    The instrumentation subsystem must stay zero-dependency, so this is
    the subset of JSON the exporters and their round-trip tests need:
    full RFC 8259 value syntax on parse (including escapes and
    [\uXXXX]), compact or 2-space-indented output on print. Non-finite
    floats print as [null] (JSON has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a position-annotated message. *)

val to_string : ?pretty:bool -> t -> string
(** Render; [pretty] (default false) indents with two spaces. Numbers
    that are exact integers of magnitude below 1e15 print without a
    fractional part. *)

val of_string : string -> t
(** Parse one JSON value (surrounding whitespace allowed); trailing
    garbage raises {!Parse_error}. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on missing field or non-object. *)

val to_float : t -> float option
(** [Num] payload, if the value is a number. *)

val to_list : t -> t list option
(** [Arr] payload, if the value is an array. *)
