(** Process-wide registry of named counters, gauges and log-scale
    histograms, each optionally carrying labels such as
    [("layer", "utilization"); ("method", "brent")].

    Handles are cheap mutable cells: registering the same name + label
    set twice (label order irrelevant) returns the {e same} underlying
    series, so hot paths create their handles once and pay a single
    in-place update per event. Histograms bucket geometrically (24
    buckets per decade over [1e-9, 1e9)), which keeps percentile
    estimates within ~5% relative error at any scale — enough to
    localize a regression without storing samples.

    Every operation — registration, cell updates, reads, {!snapshot},
    {!reset} — is serialized behind one process-wide mutex, so handles
    may be shared freely across domains (pool workers increment the
    same series the main domain reads) and a snapshot is always a
    consistent cut. The critical sections are a few float stores; the
    lock is uncontended until many domains hammer the same registry,
    which is the accepted cost of linearizable telemetry. *)

type labels = (string * string) list
(** Label sets are normalized (sorted by key) on registration. *)

type counter
type gauge
type histogram

val counter : ?labels:labels -> string -> counter
(** Find-or-create. Raises [Invalid_argument] if the series exists with
    a different kind. *)

val incr : ?by:float -> counter -> unit
(** Add [by] (default 1); negative increments are a caller bug but are
    not checked on the hot path. *)

val counter_value : counter -> float

val gauge : ?labels:labels -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?labels:labels -> string -> histogram

val observe : histogram -> float -> unit
(** Record one sample. Non-positive and sub-1e-9 samples land in an
    underflow bucket that percentiles resolve to the recorded minimum. *)

val percentile : histogram -> float -> float
(** [percentile h p] for [p] in [0, 100]; [nan] on an empty histogram.
    The answer is geometrically interpolated inside the bucket holding
    the target rank and clamped to the observed [min]/[max] — so a
    point mass (even one sitting exactly on a decade boundary such as
    [1.0] or [1e-3]) reports its own value exactly. *)

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  buckets : (float * int) list;  (** (geometric bucket center, count), non-empty buckets only *)
  buckets_le : (float * int) list;
      (** (bucket upper edge, cumulative count incl. underflow), only at
          non-empty buckets; the Prometheus [_bucket{le=...}] shape *)
}

val summarize : histogram -> summary

(** {2 Reading the registry} *)

type read = Counter of float | Gauge of float | Histogram of summary

val snapshot : ?prefix:string -> unit -> (string * labels * read) list
(** Every series whose name starts with [prefix] (default all), sorted
    by name then labels. *)

val sum_counters : ?where:(labels -> bool) -> string -> float
(** Sum of every counter series with this exact name whose labels
    satisfy [where] (default all). *)

val sum_histograms : ?where:(labels -> bool) -> string -> float
(** Sum of the [sum] fields of matching histogram series. *)

val reset : ?prefix:string -> unit -> unit
(** Zero every matching series {e in place}: cached handles stay
    registered and keep working, which is what lets experiment drivers
    scope telemetry per run. *)

val label : labels -> string -> string option
(** Lookup one label value. *)

val labels_to_string : labels -> string
(** ["k1=v1,k2=v2"]; [""] for the empty set. *)
