(** Resilient solver layer: [Result]-typed outcomes, fallback chains
    and telemetry for every equilibrium computation.

    The equilibrium pipeline nests numerical fixed points (utilization
    equilibrium inside best responses inside Nash iteration); a bare
    [No_convergence] three layers down would otherwise kill an entire
    Monte-Carlo sweep. This module converts numerical failure into data:

    - {!root} runs a fallback chain Newton -> secant -> auto-bracketed
      Brent -> bisection with outward re-bracketing, with every
      objective evaluation guarded against NaN/Inf poison values;
    - {!fixed_point} detects divergence and period-2 oscillation and
      retries with halved damping up to a retry budget;
    - every attempt, fallback, retry and failure is emitted into the
      process-wide [Obs.Metrics] registry, labelled by solver method
      and by pipeline layer ([ctx], e.g. [layer=utilization]), together
      with per-call latency and objective-evaluation histograms; the
      {!stats} record remains as a compatibility facade aggregating the
      registry back into the historical counter blob. *)

type method_ = Newton | Secant | Brent | Bisection | Damped_iteration

val method_name : method_ -> string

(** Failure taxonomy: what stopped a particular solver attempt. *)
type failure =
  | Non_finite of { at : float; value : float }
      (** the objective returned NaN/Inf; [at] is the detection site *)
  | No_bracket of { lo : float; hi : float }
  | Budget_exhausted of { evaluations : int }
      (** a {!Fault.Budget} wrapper ran out; terminal for the chain *)
  | Diverged of { residual : float }
  | Oscillating of { residual : float }
  | Out_of_domain of { root : float }
      (** the method converged, but outside the admissible domain *)
  | Not_converged of { detail : string }

val failure_message : failure -> string

type attempt = {
  method_ : method_;
  evaluations : int;  (** objective calls spent by this attempt *)
  damping : float option;  (** the damping used, for fixed-point attempts *)
  failure : failure;
}

type error = {
  attempts : attempt list;  (** every method tried, in order *)
  last_residual : float;  (** |f x| at the last guarded evaluation *)
  bracket_history : (float * float) list;
      (** the initial interval plus any re-brackets attempted *)
}

exception Solver_error of error
(** The typed exception used by exception-style wrappers
    ([System.solve], [Nash.solve]) so legacy callers keep working while
    [Result]-style callers use [*_result] variants. Runtime numerical
    failure is never reported as [Invalid_argument]. *)

val error_message : error -> string
(** One-line rendering of the whole failed chain, for degraded-sample
    tables and logs. *)

type success = {
  result : Rootfind.result;
  method_used : method_;  (** the link of the chain that succeeded *)
  fallbacks : int;  (** how many earlier links failed first *)
}

val root :
  ?tol:float ->
  ?max_iter:int ->
  ?df:(float -> float) ->
  ?x0:float ->
  ?domain:float * float ->
  ?ctx:string ->
  (float -> float) ->
  lo:float ->
  hi:float ->
  (success, error) result
(** Find a root of [f], falling back through Newton (when [df] is
    given; started at [x0], default the midpoint), secant on the
    interval ends, auto-bracketed Brent, and finally bisection after
    aggressive outward re-bracketing (factor 3, 100 expansions). A
    method's answer is accepted only if root and value are finite and
    the root lies in [domain] (default unrestricted). NaN/Inf objective
    values abort the offending method with a typed [Non_finite] failure
    instead of propagating poison. [ctx] names the pipeline layer the
    call serves (e.g. ["utilization"], ["best_response"]); it becomes
    the [layer] label on every metric the call emits (default
    ["unlabeled"]). *)

(** Where a projected fused-Newton solve ended up relative to its box. *)
type bound = Interior | Lower | Upper

type projected = {
  x : float;  (** the KKT point in [\[lo, hi\]] *)
  value : float;  (** the objective there — 0 only for [Interior] *)
  bound : bound;
  iterations : int;
  evaluations : int;  (** fused evaluations spent by this call *)
}

val root_fused :
  ?tol:float ->
  ?max_iter:int ->
  ?halvings:int ->
  ?ctx:string ->
  (float -> float * float) ->
  x0:float ->
  lo:float ->
  hi:float ->
  (projected, error) result
(** Damped Newton on a {e fused} objective returning [(f x, f' x)] from
    one evaluation (an AD pass), projected on [\[lo, hi\]] and aimed at
    the {e decreasing} crossing — the first-order condition of a
    maximum. The answer is either an interior root ([|f x| <= tol]) or
    a box corner whose value pushes outward ([Lower] with [f lo < 0],
    [Upper] with [f hi > 0]) — exactly the KKT cases of a best-response
    marginal. Newton steps are taken only where [f' < 0] (locally
    concave payoff); elsewhere the iterate leaps uphill in the sign
    direction of [f], landing on a KKT corner or establishing the
    directed bracket [(rightmost f > 0, leftmost f < 0)], never on an
    increasing stationary point. Newton steps that fail to shrink [|f|]
    are halved up to [halvings] (default 5) times, then bisected inside
    the bracket; without a bracket a non-improving step is a typed
    [Diverged] failure, and callers fall back to the {!root} chain.
    Counted as a Newton root call in the same [solver.*] metrics as
    {!root} (the fused evaluations land in [solver.evaluations]);
    probes and global faults apply to every fused evaluation. *)

type fp_success = {
  fp : float Fixedpoint.result;
  damping_used : float;  (** the damping that finally converged *)
  retries : int;
}

val fixed_point :
  ?tol:float ->
  ?max_iter:int ->
  ?damping:float ->
  ?max_retries:int ->
  ?ctx:string ->
  (float -> float) ->
  x0:float ->
  (fp_success, error) result
(** Damped fixed-point iteration on the undamped residual
    [|f x - x|], with divergence detection (non-finite or exploding
    iterates, residual growing 1e4x past its best) and period-2
    oscillation detection. On failure the damping is halved and the
    iteration restarted, up to [max_retries] (default 4) times. *)

(** {2 Supervision hooks} *)

type probe = unit -> unit

val with_probe : probe -> (unit -> 'a) -> 'a
(** [with_probe p f] runs [f] with [p] invoked before {e every} guarded
    objective evaluation ({!root} and {!fixed_point} alike), composed
    after any probe already installed, and uninstalled on exit (normal
    or exceptional). The probe is the sanctioned cooperative-
    cancellation point: [Runner.Watchdog] installs a closure that
    raises its deadline / evaluation-budget exception, which — being
    outside the failure taxonomy above — escapes the fallback chain
    untouched and unwinds to the supervisor. While a probe runs,
    any process-global {!Fault} is also applied to the same
    evaluations, which is what lets the chaos harness reach solvers it
    cannot see.

    Probes are {e domain-local}. [Parallel.Pool] captures the
    submitting domain's probe with {!snapshot_probe} at batch
    submission and re-installs it around every task with
    {!with_probe_snapshot}, so a watchdog guarding a parallel sweep
    still counts each worker-domain evaluation (its own counters must
    therefore be domain-safe — atomics). *)

val snapshot_probe : unit -> probe
(** The calling domain's currently composed probe ([ignore] when none
    is installed). *)

val with_probe_snapshot : probe -> (unit -> 'a) -> 'a
(** Run the thunk with exactly the given probe installed — {e replacing},
    not composing with, the calling domain's current probe — restoring
    the previous one on exit. This is the worker-side half of probe
    propagation: composing would double-fire when the submitting domain
    helps drain its own batch. *)

(** {2 Telemetry} *)

type stats = {
  root_calls : int;
  fixed_point_calls : int;
  newton_attempts : int;
  secant_attempts : int;
  brent_attempts : int;
  bisection_attempts : int;
  damped_attempts : int;
  fallbacks : int;  (** failed links skipped over by successful calls *)
  retries : int;  (** damping-halving restarts *)
  non_finite : int;
  no_bracket : int;
  budget_exhausted : int;
  diverged : int;
  oscillations : int;
  failures : int;  (** calls whose whole chain failed *)
}

val stats : unit -> stats
(** A snapshot aggregated from the [Obs.Metrics] registry: each field
    sums the corresponding [solver.*] series across every layer
    label. *)

val reset_stats : unit -> unit
(** Zero every [solver.*] series in the registry (in place: cached
    handles keep working). Experiment drivers call this per run so
    printed telemetry is per-experiment, not a process-lifetime
    running total. *)

val stats_summary : unit -> string
(** One paragraph for end-of-run reports. *)

val record_retry : ?ctx:string -> unit -> unit
(** For higher-level solvers (e.g. tatonnement) that implement their own
    damping-halving retry loop but should appear in the shared
    telemetry; [ctx] labels the layer as in {!root}. *)
