type t = { v : float; d : float }

let const v = { v; d = 0. }
let make ~v ~d = { v; d }
let var v = { v; d = 1. }
let primal x = x.v
let v x = x.v
let d x = x.d
let ( + ) a b = { v = a.v +. b.v; d = a.d +. b.d }
let ( - ) a b = { v = a.v -. b.v; d = a.d -. b.d }
let ( * ) a b = { v = a.v *. b.v; d = (a.d *. b.v) +. (a.v *. b.d) }

let ( / ) a b =
  let q = a.v /. b.v in
  { v = q; d = (a.d -. (q *. b.d)) /. b.v }

let neg x = { v = -.x.v; d = -.x.d }

let exp x =
  let e = Stdlib.exp x.v in
  { v = e; d = x.d *. e }

let log x = { v = Stdlib.log x.v; d = x.d /. x.v }
let log1p x = { v = Stdlib.log1p x.v; d = x.d /. (1. +. x.v) }

let expm1 x =
  (* d/dx expm1 = exp, evaluated once *)
  { v = Stdlib.expm1 x.v; d = x.d *. Stdlib.exp x.v }

let sqrt x =
  let s = Stdlib.sqrt x.v in
  { v = s; d = x.d /. (2. *. s) }

let pow_f x c =
  { v = Float.pow x.v c; d = c *. Float.pow x.v (c -. 1.) *. x.d }

module Order2 = struct
  type t = { v : float; d : float; dd : float }

  let const v = { v; d = 0.; dd = 0. }
  let make ~v ~d ~dd = { v; d; dd }
  let var v = { v; d = 1.; dd = 0. }
  let primal x = x.v
  let v x = x.v
  let d x = x.d
  let dd x = x.dd

  let ( + ) a b = { v = a.v +. b.v; d = a.d +. b.d; dd = a.dd +. b.dd }
  let ( - ) a b = { v = a.v -. b.v; d = a.d -. b.d; dd = a.dd -. b.dd }

  let ( * ) a b =
    {
      v = a.v *. b.v;
      d = (a.d *. b.v) +. (a.v *. b.d);
      dd = (a.dd *. b.v) +. (2. *. a.d *. b.d) +. (a.v *. b.dd);
    }

  let ( / ) a b =
    (* from a = q * b: solve the product rule for q.d then q.dd *)
    let qv = a.v /. b.v in
    let qd = (a.d -. (qv *. b.d)) /. b.v in
    let qdd = (a.dd -. (qv *. b.dd) -. (2. *. qd *. b.d)) /. b.v in
    { v = qv; d = qd; dd = qdd }

  let neg x = { v = -.x.v; d = -.x.d; dd = -.x.dd }

  let exp x =
    let e = Stdlib.exp x.v in
    { v = e; d = x.d *. e; dd = e *. (x.dd +. (x.d *. x.d)) }

  let log x =
    let d = x.d /. x.v in
    { v = Stdlib.log x.v; d; dd = (x.dd -. (d *. x.d)) /. x.v }

  let log1p x =
    let u = 1. +. x.v in
    let d = x.d /. u in
    { v = Stdlib.log1p x.v; d; dd = (x.dd -. (d *. x.d)) /. u }

  let expm1 x =
    let e = Stdlib.exp x.v in
    { v = Stdlib.expm1 x.v; d = x.d *. e; dd = e *. (x.dd +. (x.d *. x.d)) }

  let pow_f x c =
    let s1 = c *. Float.pow x.v (c -. 1.) in
    let s2 = c *. (c -. 1.) *. Float.pow x.v (c -. 2.) in
    {
      v = Float.pow x.v c;
      d = s1 *. x.d;
      dd = (s1 *. x.dd) +. (s2 *. x.d *. x.d);
    }

  let sqrt x = pow_f x 0.5
end
