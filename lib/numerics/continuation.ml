type mode = Fast | Legacy

(* process-global so a single switch reaches every domain of a pool;
   only flipped outside parallel regions (tests, CLI) *)
let mode_cell = Atomic.make Fast
let mode () = Atomic.get mode_cell
let set_mode m = Atomic.set mode_cell m

let with_mode m f =
  let prev = Atomic.get mode_cell in
  Atomic.set mode_cell m;
  Fun.protect ~finally:(fun () -> Atomic.set mode_cell prev) f

let fast () = match Atomic.get mode_cell with Fast -> true | Legacy -> false

(* handles survive Obs.Metrics.reset (cells are zeroed in place) *)
let steps_c = Obs.Metrics.counter "continuation.steps"
let accepts_c = Obs.Metrics.counter "continuation.predictor.accepts"
let iters_c = Obs.Metrics.counter "continuation.corrector.iters"
let fallbacks_c = Obs.Metrics.counter "continuation.fallbacks"

(* ------------------------------------------------------------------ *)
(* predictor track: the last two solved cells along one axis *)

type point = { at : float; x : Vec.t }
type track = { mutable prev : point option; mutable last : point option }

let track () = { prev = None; last = None }

let clear t =
  t.prev <- None;
  t.last <- None

let note t ~at x =
  t.prev <- t.last;
  t.last <- Some { at; x = Vec.copy x }

let predict ?tangent t ~at =
  match (t.last, fast ()) with
  | None, _ -> None
  | Some l, false -> Some (Vec.copy l.x)
  | Some l, true -> (
    match t.prev with
    | Some p when Float.abs (l.at -. p.at) > 0. ->
      (* secant through the last two cells *)
      let r = (at -. l.at) /. (l.at -. p.at) in
      Some (Vec.axpy r (Vec.sub l.x p.x) l.x)
    | _ -> (
      match tangent with
      | Some dxdat -> Some (Vec.axpy (at -. l.at) (dxdat ()) l.x)
      | None -> Some (Vec.copy l.x)))

(* ------------------------------------------------------------------ *)
(* corrector: fused Newton, then the classic chain *)

type correction =
  | Converged of Robust.projected
  | Fell_back of Robust.success
  | Failed of Robust.error

let correct ?tol ?max_iter ?ctx f_df ~x0 ~lo ~hi =
  match Robust.root_fused ?tol ?max_iter ?ctx f_df ~x0 ~lo ~hi with
  | Ok p ->
    Obs.Metrics.incr ~by:(float_of_int p.Robust.iterations) iters_c;
    Converged p
  | Error _ ->
    (* re-enter through the derivative-free chain: genuinely different
       methods than the Newton iteration that just failed *)
    Obs.Metrics.incr fallbacks_c;
    let f x = fst (f_df x) in
    (match Robust.root ?tol ?ctx f ~lo ~hi with
    | Ok s -> Fell_back s
    | Error e -> Failed e)

(* ------------------------------------------------------------------ *)
(* cell driver *)

let solve_cell ?tangent ?(clamp = fun (v : Vec.t) -> v) t ~at ~solve ~extract () =
  Obs.Metrics.incr steps_c;
  let finish ~predicted a =
    let x, converged = extract a in
    if converged then begin
      if predicted then Obs.Metrics.incr accepts_c;
      note t ~at x
    end
    else
      (* never extrapolate through a cell that did not settle *)
      clear t;
    a
  in
  let cold () = finish ~predicted:false (solve None) in
  match Option.map clamp (predict ?tangent t ~at) with
  | None -> cold ()
  | Some g -> (
    match solve (Some g) with
    | a ->
      let _, converged = extract a in
      if converged then finish ~predicted:true a
      else begin
        Obs.Metrics.incr fallbacks_c;
        clear t;
        cold ()
      end
    | exception Robust.Solver_error _ ->
      Obs.Metrics.incr fallbacks_c;
      clear t;
      cold ())

(* ------------------------------------------------------------------ *)

type stats = {
  steps : float;
  predictor_accepts : float;
  corrector_iterations : float;
  fallbacks : float;
}

let stats () =
  {
    steps = Obs.Metrics.counter_value steps_c;
    predictor_accepts = Obs.Metrics.counter_value accepts_c;
    corrector_iterations = Obs.Metrics.counter_value iters_c;
    fallbacks = Obs.Metrics.counter_value fallbacks_c;
  }

let reset_stats () = Obs.Metrics.reset ~prefix:"continuation." ()

let stats_summary () =
  let s = stats () in
  Printf.sprintf
    "continuation: steps %.0f, predictor accepts %.0f, corrector iters %.0f, \
     fallbacks %.0f"
    s.steps s.predictor_accepts s.corrector_iterations s.fallbacks
