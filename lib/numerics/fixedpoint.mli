(** Fixed-point iteration for scalar and vector maps. *)

exception No_convergence of string

type 'a result = {
  point : 'a;
  residual : float;  (** the undamped residual [|f x - x|] at the stop *)
  iterations : int;
}

val iterate :
  ?tol:float ->
  ?max_iter:int ->
  ?damping:float ->
  (float -> float) ->
  x0:float ->
  float result
(** Damped iteration [x <- (1 - damping) * x + damping * f x] (damping
    default [1.0], i.e. undamped) until the undamped residual satisfies
    [|f x - x| <= tol] — testing the damped step instead would stop at a
    true residual of [tol / damping]. Raises [No_convergence]. *)

val iterate_vec :
  ?tol:float ->
  ?max_iter:int ->
  ?damping:float ->
  (Vec.t -> Vec.t) ->
  x0:Vec.t ->
  Vec.t result
(** Vector version; convergence in the sup norm. *)

val aitken :
  ?tol:float -> ?max_iter:int -> (float -> float) -> x0:float -> float result
(** Aitken delta-squared acceleration of a scalar fixed-point
    iteration. Useful when the plain iteration converges slowly
    (contraction factor close to 1). *)
