(** The shared precondition-error constructor of DESIGN §8.

    Preconditions guard {e caller} bugs — dimension mismatches,
    parameters outside their documented domain — and those stay
    exceptions ([Invalid_argument], so existing handlers and tests keep
    working) rather than polluting every solver signature with a
    [Result]. What the discipline forbids is {e ad-hoc} [invalid_arg] /
    [failwith] scattered through solver code, where a runtime numerical
    failure could masquerade as a caller bug; this module is the single
    sanctioned site (sublint's NO-BARE-RAISE rule exempts it and flags
    everything else). *)

val fail : fn:string -> string -> 'a
(** [fail ~fn detail] raises [Invalid_argument "<fn>: <detail>"]. *)

val require : fn:string -> bool -> string -> unit
(** [require ~fn cond detail] is [fail ~fn detail] when [cond] is
    false. The message is a plain string so nothing is formatted on the
    (hot) satisfied path. *)
