(** The scalar-field signature every econ kernel is written against.

    A kernel expressed once over {!S} evaluates in plain floats
    ({!Float_s}), in first-order dual numbers ({!Dual}) for exact
    derivatives, or in second-order truncated Taylor numbers
    ({!Dual.Order2}) for exact second derivatives — one source of
    truth, no stencils. The float instance must reproduce the legacy
    hand-written closures bit for bit, so kernels keep the exact
    operation order of the expressions they replace.

    Comparisons and branches are on the primal value only: a dual
    number follows the same branch its primal would, which is the
    standard forward-mode convention (derivatives are one-sided at
    branch points such as [softplus]'s overflow guard). *)

module type S = sig
  type t

  val const : float -> t
  (** Lift a parameter (zero derivative parts). *)

  val primal : t -> float
  (** The value component; branch and compare on this. *)

  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val neg : t -> t
  val exp : t -> t
  val log : t -> t
  val log1p : t -> t
  val expm1 : t -> t
  val sqrt : t -> t

  val pow_f : t -> float -> t
  (** [pow_f x c] is [x ** c] for a {e constant} exponent — the only
      power form the econ families need. *)
end

module Float_s : S with type t = float
(** The identity instance: every operation is the corresponding
    [Stdlib] float primitive, so [Kernel (Float_s)] closures cost the
    same as the hand-written ones they replace. *)
