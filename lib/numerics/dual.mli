(** Forward-mode dual numbers.

    A value [{v; d}] carries a primal [v] and the derivative [d] of
    that primal with respect to one seed variable; arithmetic
    propagates both by the chain rule, so evaluating a kernel once
    yields the exact derivative — no stencil, no step-size tuning.
    {!Order2} extends the same idea with the raw second derivative
    [dd], which is what turns a payoff evaluation into a fused Newton
    step (value' and value'' in one pass).

    Comparisons are on the primal only (see {!Field.S}); at a primal
    branch point the derivative is the one-sided derivative of the
    branch taken. [pow_f] at a primal of exactly 0 with exponent < 1
    produces an infinite slope, faithfully to the mathematics — callers
    on the [phi = 0] market boundary use the legacy float path
    instead. *)

type t = { v : float; d : float }

include Field.S with type t := t

val make : v:float -> d:float -> t

val var : float -> t
(** [var x] is the seed [{v = x; d = 1.}] — differentiate with respect
    to this input. *)

val v : t -> float
val d : t -> float

(** Second-order truncated Taylor numbers [{v; d; dd}] with [dd] the
    raw second derivative (not the halved Taylor coefficient): for
    [f = a * b], [f.dd = a.dd * b.v + 2 * a.d * b.d + a.v * b.dd]. *)
module Order2 : sig
  type t = { v : float; d : float; dd : float }

  include Field.S with type t := t

  val make : v:float -> d:float -> dd:float -> t

  val var : float -> t
  (** [var x] is [{v = x; d = 1.; dd = 0.}]. *)

  val v : t -> float
  val d : t -> float
  val dd : t -> float
end
