(* The one sanctioned invalid_arg site in the solver layers: sublint's
   NO-BARE-RAISE exempts this file (see DESIGN §10). *)

let fail ~fn detail = invalid_arg (fn ^ ": " ^ detail)

let require ~fn cond detail = if not cond then fail ~fn detail
