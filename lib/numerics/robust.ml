type method_ = Newton | Secant | Brent | Bisection | Damped_iteration

let method_name = function
  | Newton -> "newton"
  | Secant -> "secant"
  | Brent -> "brent"
  | Bisection -> "bisection"
  | Damped_iteration -> "damped-iteration"

type failure =
  | Non_finite of { at : float; value : float }
  | No_bracket of { lo : float; hi : float }
  | Budget_exhausted of { evaluations : int }
  | Diverged of { residual : float }
  | Oscillating of { residual : float }
  | Out_of_domain of { root : float }
  | Not_converged of { detail : string }

let failure_message = function
  | Non_finite { at; value } -> Printf.sprintf "non-finite value %g at x=%g" value at
  | No_bracket { lo; hi } -> Printf.sprintf "no sign change bracketable from [%g, %g]" lo hi
  | Budget_exhausted { evaluations } ->
    Printf.sprintf "evaluation budget exhausted after %d calls" evaluations
  | Diverged { residual } -> Printf.sprintf "diverged (residual %g)" residual
  | Oscillating { residual } -> Printf.sprintf "oscillating (residual %g)" residual
  | Out_of_domain { root } -> Printf.sprintf "root %g outside the admissible domain" root
  | Not_converged { detail } -> detail

type attempt = {
  method_ : method_;
  evaluations : int;
  damping : float option;
  failure : failure;
}

type error = {
  attempts : attempt list;
  last_residual : float;
  bracket_history : (float * float) list;
}

exception Solver_error of error

let error_message e =
  let per_attempt a =
    Printf.sprintf "%s%s: %s (%d evals)" (method_name a.method_)
      (match a.damping with None -> "" | Some d -> Printf.sprintf "[damping=%g]" d)
      (failure_message a.failure) a.evaluations
  in
  Printf.sprintf "all solvers failed [%s]; last residual %g"
    (String.concat "; " (List.map per_attempt e.attempts))
    e.last_residual

let () =
  Printexc.register_printer (function
    | Solver_error e -> Some ("Robust.Solver_error: " ^ error_message e)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* telemetry *)

type stats = {
  root_calls : int;
  fixed_point_calls : int;
  newton_attempts : int;
  secant_attempts : int;
  brent_attempts : int;
  bisection_attempts : int;
  damped_attempts : int;
  fallbacks : int;
  retries : int;
  non_finite : int;
  no_bracket : int;
  budget_exhausted : int;
  diverged : int;
  oscillations : int;
  failures : int;
}

let zero =
  {
    root_calls = 0;
    fixed_point_calls = 0;
    newton_attempts = 0;
    secant_attempts = 0;
    brent_attempts = 0;
    bisection_attempts = 0;
    damped_attempts = 0;
    fallbacks = 0;
    retries = 0;
    non_finite = 0;
    no_bracket = 0;
    budget_exhausted = 0;
    diverged = 0;
    oscillations = 0;
    failures = 0;
  }

let current = ref zero

let stats () = !current
let reset_stats () = current := zero

let bump f = current := f !current

let record_retry () = bump (fun s -> { s with retries = s.retries + 1 })

let record_attempt_method = function
  | Newton -> bump (fun s -> { s with newton_attempts = s.newton_attempts + 1 })
  | Secant -> bump (fun s -> { s with secant_attempts = s.secant_attempts + 1 })
  | Brent -> bump (fun s -> { s with brent_attempts = s.brent_attempts + 1 })
  | Bisection -> bump (fun s -> { s with bisection_attempts = s.bisection_attempts + 1 })
  | Damped_iteration -> bump (fun s -> { s with damped_attempts = s.damped_attempts + 1 })

let record_failure = function
  | Non_finite _ -> bump (fun s -> { s with non_finite = s.non_finite + 1 })
  | No_bracket _ -> bump (fun s -> { s with no_bracket = s.no_bracket + 1 })
  | Budget_exhausted _ ->
    bump (fun s -> { s with budget_exhausted = s.budget_exhausted + 1 })
  | Diverged _ -> bump (fun s -> { s with diverged = s.diverged + 1 })
  | Oscillating _ -> bump (fun s -> { s with oscillations = s.oscillations + 1 })
  | Out_of_domain _ | Not_converged _ -> ()

let stats_summary () =
  let s = !current in
  Printf.sprintf
    "root calls %d (newton %d, secant %d, brent %d, bisection %d) | fixed-point calls \
     %d (attempts %d) | fallbacks %d, retries %d | faults: non-finite %d, no-bracket \
     %d, budget %d, diverged %d, oscillating %d | unrecovered failures %d"
    s.root_calls s.newton_attempts s.secant_attempts s.brent_attempts
    s.bisection_attempts s.fixed_point_calls s.damped_attempts s.fallbacks s.retries
    s.non_finite s.no_bracket s.budget_exhausted s.diverged s.oscillations s.failures

(* ------------------------------------------------------------------ *)
(* guarded evaluation *)

exception Poison of { at : float; value : float }

(* ------------------------------------------------------------------ *)
(* root finding with a fallback chain *)

type success = { result : Rootfind.result; method_used : method_; fallbacks : int }

let root ?(tol = 1e-12) ?(max_iter = 200) ?df ?x0 ?domain f ~lo ~hi =
  if not (Float.is_finite lo && Float.is_finite hi) || lo >= hi then
    invalid_arg (Printf.sprintf "Robust.root: bad interval [%g, %g]" lo hi);
  bump (fun s -> { s with root_calls = s.root_calls + 1 });
  let evals = ref 0 in
  let last_residual = ref Float.infinity in
  let guarded x =
    incr evals;
    let y = f x in
    if Float.is_finite y then begin
      last_residual := Float.abs y;
      y
    end
    else raise (Poison { at = x; value = y })
  in
  let in_domain r =
    match domain with None -> true | Some (a, b) -> r >= a && r <= b
  in
  let attempts = ref [] in
  let brackets = ref [ (lo, hi) ] in
  let note method_ evals_before failure =
    record_failure failure;
    attempts :=
      { method_; evaluations = !evals - evals_before; damping = None; failure }
      :: !attempts
  in
  let error () =
    {
      attempts = List.rev !attempts;
      last_residual = !last_residual;
      bracket_history = List.rev !brackets;
    }
  in
  let methods =
    (match df with
    | Some df ->
      let x0 = match x0 with Some x -> x | None -> 0.5 *. (lo +. hi) in
      [ (Newton, fun () -> Rootfind.newton ~tol ~max_iter guarded ~df ~x0) ]
    | None -> [])
    @ [
        (Secant, fun () -> Rootfind.secant ~tol ~max_iter guarded ~x0:lo ~x1:hi);
        (Brent, fun () -> Rootfind.brent_auto ~tol ~max_iter guarded ~lo ~hi);
        ( Bisection,
          fun () ->
            let blo, bhi =
              Rootfind.bracket_outward ~factor:3. ~max_expand:100 guarded ~lo ~hi
            in
            brackets := (blo, bhi) :: !brackets;
            Rootfind.bisect ~tol ~max_iter:(2 * max_iter) guarded ~lo:blo ~hi:bhi );
      ]
  in
  let rec run = function
    | [] ->
      bump (fun s -> { s with failures = s.failures + 1 });
      Error (error ())
    | (method_, attempt) :: rest ->
      record_attempt_method method_;
      let evals_before = !evals in
      let fail failure =
        note method_ evals_before failure;
        run rest
      in
      (match attempt () with
      | r ->
        if
          Float.is_finite r.Rootfind.root
          && Float.is_finite r.Rootfind.value
          && in_domain r.Rootfind.root
        then begin
          let fallbacks = List.length !attempts in
          bump (fun s -> { s with fallbacks = s.fallbacks + fallbacks });
          Ok { result = r; method_used = method_; fallbacks }
        end
        else fail (Out_of_domain { root = r.Rootfind.root })
      | exception Poison { at; value } -> fail (Non_finite { at; value })
      | exception Rootfind.No_bracket _ -> fail (No_bracket { lo; hi })
      | exception Rootfind.No_convergence msg -> fail (Not_converged { detail = msg })
      | exception Invalid_argument msg -> fail (Not_converged { detail = msg })
      | exception Fault.Budget_exceeded n ->
        (* the budget is shared by every link of the chain: falling back
           further cannot help, so report the typed error immediately *)
        note method_ evals_before (Budget_exhausted { evaluations = n });
        bump (fun s -> { s with failures = s.failures + 1 });
        Error (error ()))
  in
  run methods

(* ------------------------------------------------------------------ *)
(* fixed points with divergence/oscillation detection and damping retry *)

type fp_success = {
  fp : float Fixedpoint.result;
  damping_used : float;
  retries : int;
}

let fixed_point ?(tol = 1e-12) ?(max_iter = 1000) ?(damping = 1.) ?(max_retries = 4) f
    ~x0 =
  if damping <= 0. || damping > 1. then
    invalid_arg "Robust.fixed_point: damping must lie in (0, 1]";
  bump (fun s -> { s with fixed_point_calls = s.fixed_point_calls + 1 });
  let attempts = ref [] in
  let last_residual = ref Float.infinity in
  let run damping =
    let evals = ref 0 in
    let x = ref x0 in
    let prev_x = ref Float.nan in
    let best_residual = ref Float.infinity in
    let result = ref None in
    (try
       let iter = ref 1 in
       while !result = None && !iter <= max_iter do
         incr evals;
         let fx = f !x in
         if not (Float.is_finite fx) then raise (Poison { at = !x; value = fx });
         (* undamped residual: the damped step understates it by 1/damping *)
         let residual = Float.abs (fx -. !x) in
         last_residual := residual;
         if residual < !best_residual then best_residual := residual;
         let x' = ((1. -. damping) *. !x) +. (damping *. fx) in
         if residual <= tol then
           result :=
             Some (Ok { Fixedpoint.point = x'; residual; iterations = !iter })
         else if not (Float.is_finite x') || Float.abs x' > 1e12 then
           result := Some (Error (Diverged { residual }, !evals))
         else if !iter > 5 && residual > 1e4 *. !best_residual then
           result := Some (Error (Diverged { residual }, !evals))
         else if Float.abs (x' -. !prev_x) <= tol && residual > tol then
           result := Some (Error (Oscillating { residual }, !evals))
         else begin
           prev_x := !x;
           x := x';
           incr iter
         end
       done
     with
    | Poison { at; value } ->
      result := Some (Error (Non_finite { at; value }, !evals))
    | Fault.Budget_exceeded n ->
      result := Some (Error (Budget_exhausted { evaluations = n }, !evals)));
    match !result with
    | Some r -> r
    | None -> Error (Not_converged { detail = "iteration budget exhausted" }, !evals)
  in
  let rec attempt damping retries =
    record_attempt_method Damped_iteration;
    match run damping with
    | Ok fp -> Ok { fp; damping_used = damping; retries }
    | Error (failure, evaluations) ->
      record_failure failure;
      attempts :=
        { method_ = Damped_iteration; evaluations; damping = Some damping; failure }
        :: !attempts;
      let terminal = match failure with Budget_exhausted _ -> true | _ -> false in
      if retries < max_retries && not terminal then begin
        record_retry ();
        attempt (damping /. 2.) (retries + 1)
      end
      else begin
        bump (fun s -> { s with failures = s.failures + 1 });
        Error
          {
            attempts = List.rev !attempts;
            last_residual = !last_residual;
            bracket_history = [];
          }
      end
  in
  attempt damping 0
