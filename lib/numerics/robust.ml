type method_ = Newton | Secant | Brent | Bisection | Damped_iteration

let method_name = function
  | Newton -> "newton"
  | Secant -> "secant"
  | Brent -> "brent"
  | Bisection -> "bisection"
  | Damped_iteration -> "damped-iteration"

type failure =
  | Non_finite of { at : float; value : float }
  | No_bracket of { lo : float; hi : float }
  | Budget_exhausted of { evaluations : int }
  | Diverged of { residual : float }
  | Oscillating of { residual : float }
  | Out_of_domain of { root : float }
  | Not_converged of { detail : string }

let failure_message = function
  | Non_finite { at; value } -> Printf.sprintf "non-finite value %g at x=%g" value at
  | No_bracket { lo; hi } -> Printf.sprintf "no sign change bracketable from [%g, %g]" lo hi
  | Budget_exhausted { evaluations } ->
    Printf.sprintf "evaluation budget exhausted after %d calls" evaluations
  | Diverged { residual } -> Printf.sprintf "diverged (residual %g)" residual
  | Oscillating { residual } -> Printf.sprintf "oscillating (residual %g)" residual
  | Out_of_domain { root } -> Printf.sprintf "root %g outside the admissible domain" root
  | Not_converged { detail } -> detail

type attempt = {
  method_ : method_;
  evaluations : int;
  damping : float option;
  failure : failure;
}

type error = {
  attempts : attempt list;
  last_residual : float;
  bracket_history : (float * float) list;
}

exception Solver_error of error

let error_message e =
  let per_attempt a =
    Printf.sprintf "%s%s: %s (%d evals)" (method_name a.method_)
      (match a.damping with None -> "" | Some d -> Printf.sprintf "[damping=%g]" d)
      (failure_message a.failure) a.evaluations
  in
  Printf.sprintf "all solvers failed [%s]; last residual %g"
    (String.concat "; " (List.map per_attempt e.attempts))
    e.last_residual

let () =
  Printexc.register_printer (function
    | Solver_error e -> Some ("Robust.Solver_error: " ^ error_message e)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* telemetry: every event lands in the Obs.Metrics registry, labelled
   by the layer of the equilibrium pipeline that asked (ctx) and by the
   method/failure involved; the [stats] record below is a compatibility
   facade that aggregates the registry back into the old counter blob *)

let default_ctx = "unlabeled"

type layer_handles = {
  root_calls_c : Obs.Metrics.counter;
  fp_calls_c : Obs.Metrics.counter;
  attempt_c : method_ -> Obs.Metrics.counter;
  fault_c : failure -> Obs.Metrics.counter;
  fallbacks_c : Obs.Metrics.counter;
  retries_c : Obs.Metrics.counter;
  root_failures_c : Obs.Metrics.counter;
  fp_failures_c : Obs.Metrics.counter;
  root_latency_h : Obs.Metrics.histogram;
  fp_latency_h : Obs.Metrics.histogram;
  root_evals_h : Obs.Metrics.histogram;
  fp_evals_h : Obs.Metrics.histogram;
}

let make_handles layer =
  let l = [ ("layer", layer) ] in
  let with_op op = ("op", op) :: l in
  let attempt_of m =
    Obs.Metrics.counter ~labels:(("method", method_name m) :: l) "solver.attempts"
  in
  let newton = attempt_of Newton
  and secant = attempt_of Secant
  and brent = attempt_of Brent
  and bisection = attempt_of Bisection
  and damped = attempt_of Damped_iteration in
  let fault_of name = Obs.Metrics.counter ~labels:(("reason", name) :: l) "solver.faults" in
  let non_finite = fault_of "non-finite"
  and no_bracket = fault_of "no-bracket"
  and budget = fault_of "budget"
  and diverged = fault_of "diverged"
  and oscillating = fault_of "oscillating"
  and out_of_domain = fault_of "out-of-domain"
  and not_converged = fault_of "not-converged" in
  {
    root_calls_c = Obs.Metrics.counter ~labels:l "solver.root.calls";
    fp_calls_c = Obs.Metrics.counter ~labels:l "solver.fixed_point.calls";
    attempt_c =
      (function
      | Newton -> newton
      | Secant -> secant
      | Brent -> brent
      | Bisection -> bisection
      | Damped_iteration -> damped);
    fault_c =
      (function
      | Non_finite _ -> non_finite
      | No_bracket _ -> no_bracket
      | Budget_exhausted _ -> budget
      | Diverged _ -> diverged
      | Oscillating _ -> oscillating
      | Out_of_domain _ -> out_of_domain
      | Not_converged _ -> not_converged);
    fallbacks_c = Obs.Metrics.counter ~labels:l "solver.fallbacks";
    retries_c = Obs.Metrics.counter ~labels:l "solver.retries";
    root_failures_c = Obs.Metrics.counter ~labels:(with_op "root") "solver.failures";
    fp_failures_c = Obs.Metrics.counter ~labels:(with_op "fixed_point") "solver.failures";
    root_latency_h = Obs.Metrics.histogram ~labels:(with_op "root") "solver.latency";
    fp_latency_h = Obs.Metrics.histogram ~labels:(with_op "fixed_point") "solver.latency";
    root_evals_h = Obs.Metrics.histogram ~labels:(with_op "root") "solver.evaluations";
    fp_evals_h = Obs.Metrics.histogram ~labels:(with_op "fixed_point") "solver.evaluations";
  }

(* the handle cache is domain-local: each domain lazily rebuilds its
   own handle records, and [Obs.Metrics] find-or-create registration
   hands every domain the same underlying series, so the cache needs
   no lock and the counters still aggregate process-wide *)
let handles_key : (string, layer_handles) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let handles layer =
  let handles_by_layer = Domain.DLS.get handles_key in
  match Hashtbl.find_opt handles_by_layer layer with
  | Some h -> h
  | None ->
    let h = make_handles layer in
    Hashtbl.add handles_by_layer layer h;
    h

let record_retry ?(ctx = default_ctx) () = Obs.Metrics.incr (handles ctx).retries_c

type stats = {
  root_calls : int;
  fixed_point_calls : int;
  newton_attempts : int;
  secant_attempts : int;
  brent_attempts : int;
  bisection_attempts : int;
  damped_attempts : int;
  fallbacks : int;
  retries : int;
  non_finite : int;
  no_bracket : int;
  budget_exhausted : int;
  diverged : int;
  oscillations : int;
  failures : int;
}

let stats () =
  let total name = int_of_float (Obs.Metrics.sum_counters name) in
  let by name key value =
    int_of_float
      (Obs.Metrics.sum_counters
         ~where:(fun labels -> Obs.Metrics.label labels key = Some value)
         name)
  in
  let attempts m = by "solver.attempts" "method" (method_name m) in
  let faults reason = by "solver.faults" "reason" reason in
  {
    root_calls = total "solver.root.calls";
    fixed_point_calls = total "solver.fixed_point.calls";
    newton_attempts = attempts Newton;
    secant_attempts = attempts Secant;
    brent_attempts = attempts Brent;
    bisection_attempts = attempts Bisection;
    damped_attempts = attempts Damped_iteration;
    fallbacks = total "solver.fallbacks";
    retries = total "solver.retries";
    non_finite = faults "non-finite";
    no_bracket = faults "no-bracket";
    budget_exhausted = faults "budget";
    diverged = faults "diverged";
    oscillations = faults "oscillating";
    failures = total "solver.failures";
  }

let reset_stats () = Obs.Metrics.reset ~prefix:"solver." ()

let stats_summary () =
  let s = stats () in
  Printf.sprintf
    "root calls %d (newton %d, secant %d, brent %d, bisection %d) | fixed-point calls \
     %d (attempts %d) | fallbacks %d, retries %d | faults: non-finite %d, no-bracket \
     %d, budget %d, diverged %d, oscillating %d | unrecovered failures %d"
    s.root_calls s.newton_attempts s.secant_attempts s.brent_attempts
    s.bisection_attempts s.fixed_point_calls s.damped_attempts s.fallbacks s.retries
    s.non_finite s.no_bracket s.budget_exhausted s.diverged s.oscillations s.failures

(* ------------------------------------------------------------------ *)
(* guarded evaluation *)

exception Poison of { at : float; value : float }

type probe = unit -> unit

(* cooperative-cancellation probe: called before every guarded
   objective evaluation (root and fixed-point paths). A supervisor
   (Runner.Watchdog) installs a closure that raises its own deadline /
   budget exception; anything the probe raises is deliberately NOT part
   of the failure taxonomy below, so it escapes the fallback chain and
   unwinds to whoever installed it. Installation is domain-local; the
   pool re-installs the submitting domain's composed probe around each
   task ([snapshot_probe]/[with_probe_snapshot]) so a watchdog keeps
   seeing evaluations its experiment spends on worker domains. *)
let probe_key : probe Domain.DLS.key = Domain.DLS.new_key (fun () -> ignore)

let with_probe p f =
  let prev = Domain.DLS.get probe_key in
  (* compose so nested guards all keep firing *)
  Domain.DLS.set probe_key (fun () ->
      prev ();
      p ());
  Fun.protect ~finally:(fun () -> Domain.DLS.set probe_key prev) f

let snapshot_probe () = Domain.DLS.get probe_key

let with_probe_snapshot p f =
  let prev = Domain.DLS.get probe_key in
  Domain.DLS.set probe_key p;
  Fun.protect ~finally:(fun () -> Domain.DLS.set probe_key prev) f

(* every guarded evaluation funnels through here: first the probe
   (cancellation), then the process-global fault, if one is installed *)
let observed_eval f x =
  (Domain.DLS.get probe_key) ();
  Fault.global_wrap f x

(* ------------------------------------------------------------------ *)
(* root finding with a fallback chain *)

type success = { result : Rootfind.result; method_used : method_; fallbacks : int }

let root ?(tol = 1e-12) ?(max_iter = 200) ?df ?x0 ?domain ?(ctx = default_ctx) f ~lo ~hi =
  if not (Float.is_finite lo && Float.is_finite hi) || lo >= hi then
    invalid_arg (Printf.sprintf "Robust.root: bad interval [%g, %g]" lo hi);
  let h = handles ctx in
  Obs.Metrics.incr h.root_calls_c;
  let t_start = Obs.Clock.now () in
  let evals = ref 0 in
  let last_residual = ref Float.infinity in
  let guarded x =
    incr evals;
    let y = observed_eval f x in
    if Float.is_finite y then begin
      last_residual := Float.abs y;
      y
    end
    else raise (Poison { at = x; value = y })
  in
  let in_domain r =
    match domain with None -> true | Some (a, b) -> r >= a && r <= b
  in
  let attempts = ref [] in
  let brackets = ref [ (lo, hi) ] in
  let note method_ evals_before failure =
    Obs.Metrics.incr (h.fault_c failure);
    attempts :=
      { method_; evaluations = !evals - evals_before; damping = None; failure }
      :: !attempts
  in
  let error () =
    {
      attempts = List.rev !attempts;
      last_residual = !last_residual;
      bracket_history = List.rev !brackets;
    }
  in
  let methods =
    (match df with
    | Some df ->
      let x0 = match x0 with Some x -> x | None -> 0.5 *. (lo +. hi) in
      [ (Newton, fun () -> Rootfind.newton ~tol ~max_iter guarded ~df ~x0) ]
    | None -> [])
    @ [
        (Secant, fun () -> Rootfind.secant ~tol ~max_iter guarded ~x0:lo ~x1:hi);
        (Brent, fun () -> Rootfind.brent_auto ~tol ~max_iter guarded ~lo ~hi);
        ( Bisection,
          fun () ->
            let blo, bhi =
              Rootfind.bracket_outward ~factor:3. ~max_expand:100 guarded ~lo ~hi
            in
            brackets := (blo, bhi) :: !brackets;
            Rootfind.bisect ~tol ~max_iter:(2 * max_iter) guarded ~lo:blo ~hi:bhi );
      ]
  in
  let rec run = function
    | [] ->
      Obs.Metrics.incr h.root_failures_c;
      Error (error ())
    | (method_, attempt) :: rest ->
      Obs.Metrics.incr (h.attempt_c method_);
      let evals_before = !evals in
      let fail failure =
        note method_ evals_before failure;
        run rest
      in
      (match attempt () with
      | r ->
        if
          Float.is_finite r.Rootfind.root
          && Float.is_finite r.Rootfind.value
          && in_domain r.Rootfind.root
        then begin
          let fallbacks = List.length !attempts in
          Obs.Metrics.incr ~by:(float_of_int fallbacks) h.fallbacks_c;
          Ok { result = r; method_used = method_; fallbacks }
        end
        else fail (Out_of_domain { root = r.Rootfind.root })
      | exception Poison { at; value } -> fail (Non_finite { at; value })
      | exception Rootfind.No_bracket _ -> fail (No_bracket { lo; hi })
      | exception Rootfind.No_convergence msg -> fail (Not_converged { detail = msg })
      | exception Invalid_argument msg -> fail (Not_converged { detail = msg })
      | exception Fault.Budget_exceeded n ->
        (* the budget is shared by every link of the chain: falling back
           further cannot help, so report the typed error immediately *)
        note method_ evals_before (Budget_exhausted { evaluations = n });
        Obs.Metrics.incr h.root_failures_c;
        Error (error ()))
  in
  let outcome = run methods in
  Obs.Metrics.observe h.root_latency_h (Obs.Clock.elapsed ~since:t_start);
  Obs.Metrics.observe h.root_evals_h (float_of_int !evals);
  outcome
[@@sublint.allow "EXN-ESCAPE"
    "thunk-driver: the method thunks raise Poison/No_bracket/No_convergence/\
     Budget_exceeded, and run's match-exception arms catch every one of them \
     non-lexically (per attempt) and fold it into the Error fallback chain — \
     nothing escapes the result type"]

(* ------------------------------------------------------------------ *)
(* fused Newton: value and slope from one objective evaluation,
   projected on a box — the continuation corrector's inner solver *)

type bound = Interior | Lower | Upper

type projected = {
  x : float;
  value : float;
  bound : bound;
  iterations : int;
  evaluations : int;
}

let root_fused ?(tol = 1e-12) ?(max_iter = 60) ?(halvings = 5) ?(ctx = default_ctx)
    f_df ~x0 ~lo ~hi =
  if not (Float.is_finite lo && Float.is_finite hi) || lo > hi then
    Precondition.fail ~fn:"Robust.root_fused"
      (Printf.sprintf "bad interval [%g, %g]" lo hi);
  let h = handles ctx in
  Obs.Metrics.incr h.root_calls_c;
  Obs.Metrics.incr (h.attempt_c Newton);
  let t_start = Obs.Clock.now () in
  let evals = ref 0 in
  let last_residual = ref Float.infinity in
  let guarded x =
    (Domain.DLS.get probe_key) ();
    incr evals;
    let u, du = f_df x in
    (* route the value through any installed fault so the chaos harness
       reaches fused evaluations exactly as it reaches chain ones *)
    let u = Fault.global_wrap (fun _ -> u) x in
    if Float.is_finite u then begin
      last_residual := Float.abs u;
      (u, du)
    end
    else raise (Poison { at = x; value = u })
  in
  let clamp x = Float.max lo (Float.min hi x) in
  (* directed bracket of the DECREASING crossing (the first-order
     condition of a maximum): [blo] is the rightmost point seen with
     u > 0, [bhi] the leftmost with u < 0; both only tighten *)
  let blo = ref Float.nan and bhi = ref Float.nan in
  let note_sign x u =
    if u > 0. then (if not (!blo >= x) then blo := x)
    else if not (!bhi <= x) then bhi := x
  in
  let bracketed () = Float.is_finite !blo && Float.is_finite !bhi && !blo < !bhi in
  let fail failure =
    Obs.Metrics.incr (h.fault_c failure);
    Obs.Metrics.incr h.root_failures_c;
    Error
      {
        attempts =
          [ { method_ = Newton; evaluations = !evals; damping = None; failure } ];
        last_residual = !last_residual;
        bracket_history = [ (lo, hi) ];
      }
  in
  let finish x value bound iter =
    Ok { x; value; bound; iterations = iter; evaluations = !evals }
  in
  let rec step x u du iter =
    if Float.abs u <= tol then finish x u Interior iter
    else begin
      note_sign x u;
      (* KKT corners first: the marginal pushes outward at a box edge *)
      if x -. lo <= 0. && u < 0. then finish lo u Lower iter
      else if hi -. x <= 0. && u > 0. then finish hi u Upper iter
      else if iter >= max_iter then
        fail (Not_converged { detail = "fused Newton: iteration budget exhausted" })
      else begin
        (* Newton only where the objective is locally concave (du < 0,
           so the step chases the decreasing crossing); elsewhere LEAP
           uphill in the sign direction — the leap lands on a KKT
           corner or establishes the bracket, never on the wrong
           (increasing) stationary point *)
        let concave = Float.is_finite du && du < 0. in
        let leap0 = not concave in
        let xc0 = if concave then x -. (u /. du) else if u > 0. then hi else lo in
        let xc, leap =
          if bracketed () && (xc0 <= !blo || xc0 >= !bhi) then
            (0.5 *. (!blo +. !bhi), true)
          else (clamp xc0, leap0)
        in
        if Float.abs (xc -. x) <= tol *. (1. +. Float.abs x) then
          (* interior stall: the crossing moved below resolution *)
          finish x u Interior iter
        else begin
          let uc, duc = guarded xc in
          if leap then step xc uc duc (iter + 1)
          else begin
            (* damp a Newton step that made the residual worse *)
            let rec damped xc uc duc k =
              if Float.abs uc <= Float.abs u || k >= halvings then (xc, uc, duc)
              else begin
                let xh = 0.5 *. (x +. xc) in
                let uh, duh = guarded xh in
                damped xh uh duh (k + 1)
              end
            in
            let xc, uc, duc = damped xc uc duc 0 in
            if Float.abs uc >= Float.abs u && Float.abs uc > tol then begin
              note_sign xc uc;
              if bracketed () then begin
                let xm = 0.5 *. (!blo +. !bhi) in
                let um, dum = guarded xm in
                step xm um dum (iter + 1)
              end
              else fail (Diverged { residual = Float.abs uc })
            end
            else step xc uc duc (iter + 1)
          end
        end
      end
    end
  in
  let outcome =
    match
      let x = clamp x0 in
      let u, du = guarded x in
      step x u du 0
    with
    | r -> r
    | exception Poison { at; value } -> fail (Non_finite { at; value })
    | exception Fault.Budget_exceeded n -> fail (Budget_exhausted { evaluations = n })
    | exception Invalid_argument msg -> fail (Not_converged { detail = msg })
  in
  Obs.Metrics.observe h.root_latency_h (Obs.Clock.elapsed ~since:t_start);
  Obs.Metrics.observe h.root_evals_h (float_of_int !evals);
  outcome
[@@sublint.allow "EXN-ESCAPE"
    "the guarded evaluator raises Poison/Budget_exceeded and the single \
     match-exception block at the bottom folds every one of them into the \
     typed Error — nothing escapes the result type"]

(* ------------------------------------------------------------------ *)
(* fixed points with divergence/oscillation detection and damping retry *)

type fp_success = {
  fp : float Fixedpoint.result;
  damping_used : float;
  retries : int;
}

let fixed_point ?(tol = 1e-12) ?(max_iter = 1000) ?(damping = 1.) ?(max_retries = 4)
    ?(ctx = default_ctx) f ~x0 =
  if damping <= 0. || damping > 1. then
    invalid_arg "Robust.fixed_point: damping must lie in (0, 1]";
  let h = handles ctx in
  Obs.Metrics.incr h.fp_calls_c;
  let t_start = Obs.Clock.now () in
  let total_evals = ref 0 in
  let attempts = ref [] in
  let last_residual = ref Float.infinity in
  let run damping =
    let evals = ref 0 in
    let x = ref x0 in
    let prev_x = ref Float.nan in
    let best_residual = ref Float.infinity in
    let result = ref None in
    (try
       let iter = ref 1 in
       while !result = None && !iter <= max_iter do
         incr evals;
         let fx = observed_eval f !x in
         if not (Float.is_finite fx) then raise (Poison { at = !x; value = fx });
         (* undamped residual: the damped step understates it by 1/damping *)
         let residual = Float.abs (fx -. !x) in
         last_residual := residual;
         if residual < !best_residual then best_residual := residual;
         let x' = ((1. -. damping) *. !x) +. (damping *. fx) in
         if residual <= tol then
           result :=
             Some (Ok { Fixedpoint.point = x'; residual; iterations = !iter })
         else if not (Float.is_finite x') || Float.abs x' > 1e12 then
           result := Some (Error (Diverged { residual }, !evals))
         else if !iter > 5 && residual > 1e4 *. !best_residual then
           result := Some (Error (Diverged { residual }, !evals))
         else if Float.abs (x' -. !prev_x) <= tol && residual > tol then
           result := Some (Error (Oscillating { residual }, !evals))
         else begin
           prev_x := !x;
           x := x';
           incr iter
         end
       done
     with
    | Poison { at; value } ->
      result := Some (Error (Non_finite { at; value }, !evals))
    | Fault.Budget_exceeded n ->
      result := Some (Error (Budget_exhausted { evaluations = n }, !evals)));
    total_evals := !total_evals + !evals;
    match !result with
    | Some r -> r
    | None -> Error (Not_converged { detail = "iteration budget exhausted" }, !evals)
  in
  let rec attempt damping retries =
    Obs.Metrics.incr (h.attempt_c Damped_iteration);
    match run damping with
    | Ok fp -> Ok { fp; damping_used = damping; retries }
    | Error (failure, evaluations) ->
      Obs.Metrics.incr (h.fault_c failure);
      attempts :=
        { method_ = Damped_iteration; evaluations; damping = Some damping; failure }
        :: !attempts;
      let terminal = match failure with Budget_exhausted _ -> true | _ -> false in
      if retries < max_retries && not terminal then begin
        record_retry ~ctx ();
        attempt (damping /. 2.) (retries + 1)
      end
      else begin
        Obs.Metrics.incr h.fp_failures_c;
        Error
          {
            attempts = List.rev !attempts;
            last_residual = !last_residual;
            bracket_history = [];
          }
      end
  in
  let outcome = attempt damping 0 in
  Obs.Metrics.observe h.fp_latency_h (Obs.Clock.elapsed ~since:t_start);
  Obs.Metrics.observe h.fp_evals_h (float_of_int !total_evals);
  outcome
