(** Exact differentiation by forward-mode AD — {!Diff}'s API shape,
    minus the stencils.

    Each function takes a kernel written over {!Dual} (or
    {!Dual.Order2}) values and evaluates it with unit seeds: one pass
    per seed variable, derivatives exact to round-off. Every seeded
    pass increments the [numerics.deriv.ad] counter, the mirror of
    [numerics.deriv.fd] in {!Diff}, so the bench tables can prove a
    code path stopped stenciling. *)

val derivative : (Dual.t -> Dual.t) -> float -> float
(** Exact [f'(x)] in one pass. *)

val value_and_derivative : (Dual.t -> Dual.t) -> float -> float * float
(** [(f x, f' x)] from the same single pass. *)

val derivative2 :
  (Dual.Order2.t -> Dual.Order2.t) -> float -> float * float * float
(** [(f x, f' x, f'' x)] from one second-order pass. *)

val gradient : (Dual.t array -> Dual.t) -> Vec.t -> Vec.t
(** One seeded pass per coordinate ([n] passes, each exact). *)

val jacobian : (Dual.t array -> Dual.t array) -> Vec.t -> Mat.t
(** Row [i], column [j] holds [df_i/dx_j]; one pass per column. *)

val seeded : Vec.t -> int -> Dual.t array
(** [seeded x j] lifts [x] with coordinate [j] as the seed variable —
    the building block for hand-rolled column passes (counts one AD
    pass). *)

val record_pass : unit -> unit
(** Tick [numerics.deriv.ad] for a hand-rolled seeded pass (the
    System/game layers evaluate dual kernels directly instead of going
    through the closures above). *)

type stats = { passes : float }
(** Cumulative seeded AD passes since the last reset (the
    [numerics.deriv.ad] counter). *)

val stats : unit -> stats
val reset_stats : unit -> unit
