let cbrt_eps = Float.pow epsilon_float (1. /. 3.)

let default_step x = cbrt_eps *. Float.max 1. (Float.abs x)

let step ?h x = match h with Some h -> h | None -> default_step x

(* One tick per stenciled derivative estimate: the finite-difference
   mirror of [numerics.deriv.ad], so the bench counters can show which
   code paths still stencil. The handle survives Obs.Metrics.reset. *)
let fd_estimates = Obs.Metrics.counter "numerics.deriv.fd"
let count () = Obs.Metrics.incr fd_estimates

let central ?h f x =
  count ();
  let h = step ?h x in
  (f (x +. h) -. f (x -. h)) /. (2. *. h)

let forward ?h f x =
  count ();
  let h = step ?h x in
  (f (x +. h) -. f x) /. h

let backward ?h f x =
  count ();
  let h = step ?h x in
  (f x -. f (x -. h)) /. h

let second ?h f x =
  count ();
  let h = match h with Some h -> h | None -> sqrt cbrt_eps *. Float.max 1. (Float.abs x) in
  (f (x +. h) -. (2. *. f x) +. f (x -. h)) /. (h *. h)

let richardson ?h ?(levels = 3) f x =
  if levels < 1 then invalid_arg "Diff.richardson: levels must be positive";
  count ();
  let h0 = match h with Some h -> h | None -> 16. *. default_step x in
  let table = Array.make levels 0. in
  for k = 0 to levels - 1 do
    let hk = h0 /. Float.pow 2. (float_of_int k) in
    table.(k) <- (f (x +. hk) -. f (x -. hk)) /. (2. *. hk)
  done;
  (* Richardson: error in central differences is even in h *)
  let current = ref table in
  let order = ref 4. in
  while Array.length !current > 1 do
    let prev = !current in
    let n = Array.length prev - 1 in
    let next = Array.make n 0. in
    for k = 0 to n - 1 do
      next.(k) <- ((!order *. prev.(k + 1)) -. prev.(k)) /. (!order -. 1.)
    done;
    order := !order *. 4.;
    current := next
  done;
  (!current).(0)

let perturbed x i delta =
  let x' = Vec.copy x in
  x'.(i) <- x'.(i) +. delta;
  x'

let partial ?h f x i =
  if i < 0 || i >= Vec.dim x then invalid_arg "Diff.partial: index out of range";
  count ();
  let h = step ?h x.(i) in
  (f (perturbed x i h) -. f (perturbed x i (-.h))) /. (2. *. h)

let gradient ?h f x = Vec.init (Vec.dim x) (fun i -> partial ?h f x i)

let jacobian ?h f x =
  let n = Vec.dim x in
  let m = Vec.dim (f x) in
  let columns =
    Array.init n (fun j ->
        count ();
        let hj = step ?h x.(j) in
        let fp = f (perturbed x j hj) and fm = f (perturbed x j (-.hj)) in
        Vec.scale (1. /. (2. *. hj)) (Vec.sub fp fm))
  in
  Mat.init ~rows:m ~cols:n (fun i j -> columns.(j).(i))

let hessian ?h f x =
  let n = Vec.dim x in
  let hi i = match h with Some h -> h | None -> sqrt cbrt_eps *. Float.max 1. (Float.abs x.(i)) in
  let fx = f x in
  let m = Mat.zeros ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    count ();
    let di = hi i in
    (* diagonal entry *)
    let fpp = f (perturbed x i di) and fmm = f (perturbed x i (-.di)) in
    Mat.set m i i ((fpp -. (2. *. fx) +. fmm) /. (di *. di));
    for j = i + 1 to n - 1 do
      let dj = hi j in
      let fpq = f (perturbed (perturbed x i di) j dj) in
      let fpm = f (perturbed (perturbed x i di) j (-.dj)) in
      let fmp = f (perturbed (perturbed x i (-.di)) j dj) in
      let fmn = f (perturbed (perturbed x i (-.di)) j (-.dj)) in
      let v = (fpq -. fpm -. fmp +. fmn) /. (4. *. di *. dj) in
      Mat.set m i j v;
      Mat.set m j i v
    done
  done;
  m

type stats = { estimates : float }

let stats () = { estimates = Obs.Metrics.counter_value fd_estimates }
let reset_stats () = Obs.Metrics.reset ~prefix:"numerics.deriv.fd" ()
