exception No_convergence of string

type 'a result = { point : 'a; residual : float; iterations : int }

let check_damping damping =
  Precondition.require ~fn:"Fixedpoint"
    (damping > 0. && damping <= 1.)
    "damping must lie in (0, 1]"

(* Convergence is tested on the undamped residual |f x - x|: the damped
   step |x' - x| = damping * |f x - x| would declare convergence at a
   true residual of tol / damping when the damping is small. *)
let iterate ?(tol = 1e-12) ?(max_iter = 1000) ?(damping = 1.) f ~x0 =
  check_damping damping;
  let rec loop x iter =
    if iter > max_iter then
      raise (No_convergence (Printf.sprintf "iterate: %d iterations from %g" max_iter x0));
    let fx = f x in
    let residual = Float.abs (fx -. x) in
    let x' = ((1. -. damping) *. x) +. (damping *. fx) in
    if residual <= tol then { point = x'; residual; iterations = iter }
    else loop x' (iter + 1)
  in
  loop x0 1

let iterate_vec ?(tol = 1e-12) ?(max_iter = 1000) ?(damping = 1.) f ~x0 =
  check_damping damping;
  let rec loop x iter =
    if iter > max_iter then
      raise (No_convergence (Printf.sprintf "iterate_vec: %d iterations" max_iter));
    let fx = f x in
    let residual = Vec.dist_inf fx x in
    let x' = Vec.axpy (1. -. damping) x (Vec.scale damping fx) in
    if residual <= tol then { point = x'; residual; iterations = iter }
    else loop x' (iter + 1)
  in
  loop x0 1

let aitken ?(tol = 1e-12) ?(max_iter = 500) f ~x0 =
  let rec loop x iter =
    if iter > max_iter then
      raise (No_convergence (Printf.sprintf "aitken: %d iterations from %g" max_iter x0));
    let x1 = f x in
    let x2 = f x1 in
    let denom = x2 -. (2. *. x1) +. x in
    (* fall back to the plain iterate when the acceleration degenerates *)
    let x' = if Float.abs denom < 1e-300 then x2 else x -. (((x1 -. x) ** 2.) /. denom) in
    let residual = Float.abs (x' -. x) in
    if residual <= tol then { point = x'; residual; iterations = iter }
    else loop x' (iter + 1)
  in
  loop x0 1
