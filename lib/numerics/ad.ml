(* The counter handle survives Obs.Metrics.reset (cells are zeroed in
   place), so registering once at module initialisation is safe. *)
let ad_passes = Obs.Metrics.counter "numerics.deriv.ad"
let count () = Obs.Metrics.incr ad_passes
let record_pass = count

let derivative f x =
  count ();
  Dual.d (f (Dual.var x))

let value_and_derivative f x =
  count ();
  let y = f (Dual.var x) in
  (Dual.v y, Dual.d y)

let derivative2 f x =
  count ();
  let y = f (Dual.Order2.var x) in
  Dual.Order2.(v y, d y, dd y)

let seeded x j =
  count ();
  Array.mapi
    (fun i xi -> if i = j then Dual.var xi else Dual.const xi)
    x

let gradient f (x : Vec.t) : Vec.t =
  Array.mapi (fun j _ -> Dual.d (f (seeded x j))) x

let jacobian f (x : Vec.t) =
  let n = Array.length x in
  let cols = Array.init n (fun j -> f (seeded x j)) in
  let m = Array.length cols.(0) in
  Mat.init ~rows:m ~cols:n (fun i j -> Dual.d cols.(j).(i))

type stats = { passes : float }

let stats () = { passes = Obs.Metrics.counter_value ad_passes }
let reset_stats () = Obs.Metrics.reset ~prefix:"numerics.deriv.ad" ()
