exception Budget_exceeded of int

type mode =
  | Nan_region of { lo : float; hi : float }
  | Nan_after of int
  | Spike of { at : float; width : float; height : float }
  | Budget of int
  | Plateau of { lo : float; hi : float; level : float }

type injected = {
  f : float -> float;
  evaluations : unit -> int;
  triggered : unit -> int;
}

let describe = function
  | Nan_region { lo; hi } -> Printf.sprintf "nan on [%g, %g]" lo hi
  | Nan_after n -> Printf.sprintf "nan after %d evaluations" n
  | Spike { at; width; height } ->
    Printf.sprintf "spike of %g at %g (width %g)" height at width
  | Budget n -> Printf.sprintf "budget of %d evaluations" n
  | Plateau { lo; hi; level } -> Printf.sprintf "plateau %g on [%g, %g]" level lo hi

(* one evaluation through [mode], charging the supplied counters; the
   shared core of per-objective [inject] and the process-global hook *)
let eval ~mode ~evals ~fired f x =
  incr evals;
  let fire y =
    incr fired;
    y
  in
  match mode with
  | Nan_region { lo; hi } -> if x >= lo && x <= hi then fire Float.nan else f x
  | Nan_after n -> if !evals > n then fire Float.nan else f x
  | Spike { at; width; height } ->
    if Float.abs (x -. at) <= width then fire (f x +. height) else f x
  | Budget n -> if !evals > n then raise (Budget_exceeded n) else f x
  | Plateau { lo; hi; level } -> if x >= lo && x <= hi then fire level else f x

let inject mode f =
  let evals = ref 0 and fired = ref 0 in
  {
    f = (fun x -> eval ~mode ~evals ~fired f x);
    evaluations = (fun () -> !evals);
    triggered = (fun () -> !fired);
  }

(* ------------------------------------------------------------------ *)
(* process-global injection (Robust applies it to every guarded eval) *)

type global = { g_mode : mode; g_evals : int ref; g_fired : int ref }

let global_state : global option ref = ref None

let set_global mode =
  global_state :=
    Option.map (fun m -> { g_mode = m; g_evals = ref 0; g_fired = ref 0 }) mode

let global_mode () = Option.map (fun g -> g.g_mode) !global_state

let global_wrap f x =
  match !global_state with
  | None -> f x
  | Some g -> eval ~mode:g.g_mode ~evals:g.g_evals ~fired:g.g_fired f x

let global_evaluations () =
  match !global_state with None -> 0 | Some g -> !(g.g_evals)

let global_triggered () =
  match !global_state with None -> 0 | Some g -> !(g.g_fired)
