exception Budget_exceeded of int

type mode =
  | Nan_region of { lo : float; hi : float }
  | Nan_after of int
  | Spike of { at : float; width : float; height : float }
  | Budget of int
  | Plateau of { lo : float; hi : float; level : float }

type injected = {
  f : float -> float;
  evaluations : unit -> int;
  triggered : unit -> int;
}

let describe = function
  | Nan_region { lo; hi } -> Printf.sprintf "nan on [%g, %g]" lo hi
  | Nan_after n -> Printf.sprintf "nan after %d evaluations" n
  | Spike { at; width; height } ->
    Printf.sprintf "spike of %g at %g (width %g)" height at width
  | Budget n -> Printf.sprintf "budget of %d evaluations" n
  | Plateau { lo; hi; level } -> Printf.sprintf "plateau %g on [%g, %g]" level lo hi

(* one evaluation through [mode], charging the supplied counters; the
   shared core of per-objective [inject] and the process-global hook.
   [bump] counts the evaluation and returns the total so far, [fired]
   counts a corrupted one — parameterized so [inject] can use plain
   refs while the cross-domain global uses atomics *)
let eval ~mode ~bump ~fired f x =
  let n = bump () in
  let fire y =
    fired ();
    y
  in
  match mode with
  | Nan_region { lo; hi } -> if x >= lo && x <= hi then fire Float.nan else f x
  | Nan_after k -> if n > k then fire Float.nan else f x
  | Spike { at; width; height } ->
    if Float.abs (x -. at) <= width then fire (f x +. height) else f x
  | Budget k -> if n > k then raise (Budget_exceeded k) else f x
  | Plateau { lo; hi; level } -> if x >= lo && x <= hi then fire level else f x

let inject mode f =
  let evals = ref 0 and fired = ref 0 in
  let bump () =
    incr evals;
    !evals
  in
  {
    f = (fun x -> eval ~mode ~bump ~fired:(fun () -> incr fired) f x);
    evaluations = (fun () -> !evals);
    triggered = (fun () -> !fired);
  }

(* ------------------------------------------------------------------ *)
(* process-global injection (Robust applies it to every guarded eval) *)

(* the installed fault is domain-local (a worker only injects faults
   when its submitting batch propagated one via [with_snapshot]), but
   the counters inside one installation are shared atomics: every
   domain evaluating under the same snapshot charges the same budget,
   so [Nan_after n] still means n evaluations across the whole sweep *)
type global = { g_mode : mode; g_evals : int Atomic.t; g_fired : int Atomic.t }

type snapshot = global option

let installed_key : global option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let set_global mode =
  Domain.DLS.set installed_key
    (Option.map
       (fun m -> { g_mode = m; g_evals = Atomic.make 0; g_fired = Atomic.make 0 })
       mode)

let snapshot () = Domain.DLS.get installed_key

let with_snapshot s f =
  let prev = Domain.DLS.get installed_key in
  Domain.DLS.set installed_key s;
  Fun.protect ~finally:(fun () -> Domain.DLS.set installed_key prev) f

let global_mode () = Option.map (fun g -> g.g_mode) (Domain.DLS.get installed_key)

let global_wrap f x =
  match Domain.DLS.get installed_key with
  | None -> f x
  | Some g ->
    eval ~mode:g.g_mode
      ~bump:(fun () -> 1 + Atomic.fetch_and_add g.g_evals 1)
      ~fired:(fun () -> Atomic.incr g.g_fired)
      f x

let global_evaluations () =
  match Domain.DLS.get installed_key with None -> 0 | Some g -> Atomic.get g.g_evals

let global_triggered () =
  match Domain.DLS.get installed_key with None -> 0 | Some g -> Atomic.get g.g_fired
