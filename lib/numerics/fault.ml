exception Budget_exceeded of int

type mode =
  | Nan_region of { lo : float; hi : float }
  | Nan_after of int
  | Spike of { at : float; width : float; height : float }
  | Budget of int
  | Plateau of { lo : float; hi : float; level : float }

type injected = {
  f : float -> float;
  evaluations : unit -> int;
  triggered : unit -> int;
}

let describe = function
  | Nan_region { lo; hi } -> Printf.sprintf "nan on [%g, %g]" lo hi
  | Nan_after n -> Printf.sprintf "nan after %d evaluations" n
  | Spike { at; width; height } ->
    Printf.sprintf "spike of %g at %g (width %g)" height at width
  | Budget n -> Printf.sprintf "budget of %d evaluations" n
  | Plateau { lo; hi; level } -> Printf.sprintf "plateau %g on [%g, %g]" level lo hi

let inject mode f =
  let evals = ref 0 and fired = ref 0 in
  let fire y =
    incr fired;
    y
  in
  let g x =
    incr evals;
    match mode with
    | Nan_region { lo; hi } -> if x >= lo && x <= hi then fire Float.nan else f x
    | Nan_after n -> if !evals > n then fire Float.nan else f x
    | Spike { at; width; height } ->
      if Float.abs (x -. at) <= width then fire (f x +. height) else f x
    | Budget n -> if !evals > n then raise (Budget_exceeded n) else f x
    | Plateau { lo; hi; level } -> if x >= lo && x <= hi then fire level else f x
  in
  { f = g; evaluations = (fun () -> !evals); triggered = (fun () -> !fired) }
