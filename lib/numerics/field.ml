module type S = sig
  type t

  val const : float -> t
  val primal : t -> float
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val neg : t -> t
  val exp : t -> t
  val log : t -> t
  val log1p : t -> t
  val expm1 : t -> t
  val sqrt : t -> t
  val pow_f : t -> float -> t
end

module Float_s = struct
  type t = float

  let const x = x
  let primal x = x
  let ( + ) = Stdlib.( +. )
  let ( - ) = Stdlib.( -. )
  let ( * ) = Stdlib.( *. )
  let ( / ) = Stdlib.( /. )
  let neg x = Stdlib.( ~-. ) x
  let exp = Stdlib.exp
  let log = Stdlib.log
  let log1p = Stdlib.log1p
  let expm1 = Stdlib.expm1
  let sqrt = Stdlib.sqrt
  let pow_f = Float.pow
end
