(** Fault injection for scalar objectives.

    Wraps a [float -> float] objective so tests can prove that every
    fallback path of {!Robust} actually fires: poison values, jump
    discontinuities, hard evaluation budgets and flat plateaus are the
    failure shapes that nested equilibrium solvers meet near degenerate
    market parameters. *)

exception Budget_exceeded of int
(** Raised by a [Budget]-wrapped objective once the evaluation budget is
    spent. {!Robust} converts it into a typed [Budget_exhausted]
    error instead of letting it escape. *)

type mode =
  | Nan_region of { lo : float; hi : float }
      (** return NaN whenever the argument lies in [\[lo, hi\]] *)
  | Nan_after of int  (** return NaN from evaluation [n+1] onward *)
  | Spike of { at : float; width : float; height : float }
      (** add [height] to the value within [width] of [at] *)
  | Budget of int  (** raise {!Budget_exceeded} after [n] evaluations *)
  | Plateau of { lo : float; hi : float; level : float }
      (** return the constant [level] inside [\[lo, hi\]] (zero
          derivative: defeats Newton and secant steps) *)

type injected = {
  f : float -> float;  (** the faulty objective *)
  evaluations : unit -> int;  (** total calls so far *)
  triggered : unit -> int;  (** calls on which the fault fired *)
}

val inject : mode -> (float -> float) -> injected

val describe : mode -> string

(** {2 Process-global injection}

    The chaos harness ([Runner.Chaos]) needs to disturb experiments it
    cannot reach inside of: a global fault, when installed, is applied
    by {!Robust} to {e every} guarded objective evaluation in the
    process, with one shared counter pair (so [Nan_after n] means n
    evaluations across the whole sweep, whichever solver spends
    them).

    The installation itself is {e domain-local}: a [Parallel.Pool]
    worker injects nothing until the submitting domain's installation
    is propagated to it with {!snapshot}/{!with_snapshot} (the pool
    does this for every task). The counters inside one installation
    are atomics shared by every domain running under that snapshot, so
    budgets and totals stay process-wide. *)

val set_global : mode option -> unit
(** Install ([Some]) or clear ([None]) the global fault in the calling
    domain. Installing resets the global counters. *)

type snapshot
(** The calling domain's current installation (possibly none), carrying
    the {e shared} counters — not a copy of their values. *)

val snapshot : unit -> snapshot

val with_snapshot : snapshot -> (unit -> 'a) -> 'a
(** Run the thunk with the given installation active in the calling
    domain, restoring the previous one on exit. Evaluations made under
    it charge the originating installation's counters. *)

val global_mode : unit -> mode option

val global_wrap : (float -> float) -> float -> float
(** [global_wrap f x]: evaluate [f x] through the installed global
    fault; identity (and counter-free) when none is installed. Called
    by {!Robust} on its guarded-evaluation paths. *)

val global_evaluations : unit -> int
(** Evaluations made through the installed global fault (0 when none). *)

val global_triggered : unit -> int
(** How many of them were corrupted. *)
