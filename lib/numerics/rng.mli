(** Deterministic pseudo-random numbers (splitmix64).

    Used for workload generation in property tests and benchmarks; a
    fixed seed reproduces a run exactly, independent of the OCaml
    stdlib's generator. *)

type t

val create : int64 -> t
(** A fresh generator from a 64-bit seed. *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val split_n : t -> int -> t array
(** [split_n t n] is [n] independent generators split off [t] in
    sequence. Splitting is a pure function of the parent's state, so
    pre-splitting one child per Monte-Carlo sample makes a sweep's
    draws independent of evaluation order — the mechanism that keeps
    parallel sweeps bit-identical at any [--jobs] value. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. Requires [lo < hi]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val exponential : t -> rate:float -> float
(** Exponential variate with the given positive rate. *)

val normal : t -> mean:float -> stddev:float -> float
(** Gaussian variate by Box-Muller. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
