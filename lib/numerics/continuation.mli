(** Homotopy continuation for parameter sweeps: walk an axis reusing
    the previous cell's solution instead of re-solving from cold.

    A {!track} remembers the last solved cells along one axis and
    predicts the next solution — secant extrapolation once two cells
    are known, an optional AD tangent for the very first step — and
    {!solve_cell} drives one predictor–corrector cell: solve from the
    prediction, fall back to the cold solve when the warm attempt fails
    or does not converge. {!correct} is the scalar corrector itself:
    fused damped Newton ({!Robust.root_fused}) with a fallback to the
    classic {!Robust.root} chain.

    The process-wide {!mode} gates every continuation shortcut in the
    pipeline: [Fast] (the default) enables secant prediction, fused AD
    Newton responds and exact Jacobians; [Legacy] reproduces the
    pre-continuation pipeline (constant warm starts, grid-scan best
    responses, stenciled Jacobians) and exists so the equivalence tests
    can certify the fast path against it. Set it only outside parallel
    regions — it is read by every domain.

    All state a sweep accumulates lives in its own {!track} values,
    created per pool chunk, so warm starts compose at any [--jobs]
    without breaking the determinism contract. *)

type mode = Fast | Legacy

val mode : unit -> mode
val set_mode : mode -> unit

val with_mode : mode -> (unit -> 'a) -> 'a
(** Runs the thunk under the given mode, restoring on exit. The switch
    is process-global: do not wrap code that runs concurrently with
    other solves. *)

val fast : unit -> bool
(** [mode () = Fast] — the gate every fused/predicted shortcut checks. *)

(** {2 Predictor track} *)

type track

val track : unit -> track
(** A fresh track with no history (first cell solves cold). *)

val clear : track -> unit
(** Drop the history, e.g. after an unconverged cell. *)

val note : track -> at:float -> Vec.t -> unit
(** Record the solution of the cell at parameter value [at]. *)

val predict : ?tangent:(unit -> Vec.t) -> track -> at:float -> Vec.t option
(** The predicted solution at [at]: secant through the last two cells;
    with one cell, [x + tangent () * (at - at_prev)] when a tangent is
    supplied (e.g. the Theorem-6 sensitivity [ds/dp] from the AD
    Jacobian), else the previous solution unchanged; [None] with no
    history. In [Legacy] mode always the previous solution unchanged —
    the warm-start behaviour the sweeps had before continuation. *)

(** {2 Corrector} *)

type correction =
  | Converged of Robust.projected  (** the fused Newton corrector held *)
  | Fell_back of Robust.success
      (** corrector failed; the cold {!Robust.root} chain recovered *)
  | Failed of Robust.error  (** both failed *)

val correct :
  ?tol:float ->
  ?max_iter:int ->
  ?ctx:string ->
  (float -> float * float) ->
  x0:float ->
  lo:float ->
  hi:float ->
  correction
(** One corrector solve from the predicted [x0]. Iterations land in the
    [continuation.corrector.iters] counter; entering the fallback chain
    increments [continuation.fallbacks]. *)

(** {2 Cell driver} *)

val solve_cell :
  ?tangent:(unit -> Vec.t) ->
  ?clamp:(Vec.t -> Vec.t) ->
  track ->
  at:float ->
  solve:(Vec.t option -> 'a) ->
  extract:('a -> Vec.t * bool) ->
  unit ->
  'a
(** Drive one cell of a sweep: [solve] receives the (clamped)
    prediction, [extract] reads the solution vector and a convergence
    flag back out of the result. A warm attempt that raises
    [Robust.Solver_error] or reports non-convergence increments
    [continuation.fallbacks], clears the track and re-solves cold (the
    cold result, converged or not, is returned). Converged cells are
    noted on the track; predicted cells that converge count as
    [continuation.predictor.accepts]. *)

(** {2 Telemetry} *)

type stats = {
  steps : float;  (** cells driven through {!solve_cell} *)
  predictor_accepts : float;
  corrector_iterations : float;
  fallbacks : float;  (** cold re-solves, both scalar and cell level *)
}

val stats : unit -> stats
val reset_stats : unit -> unit
val stats_summary : unit -> string
