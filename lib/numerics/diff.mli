(** Numerical differentiation by finite differences.

    Step sizes scale with the magnitude of the evaluation point; the
    defaults balance truncation against round-off for double precision
    ([h ~ eps^(1/3)] for central differences). *)

val default_step : float -> float
(** The relative central-difference step used at a point. *)

val central : ?h:float -> (float -> float) -> float -> float
(** First derivative by central difference. *)

val forward : ?h:float -> (float -> float) -> float -> float

val backward : ?h:float -> (float -> float) -> float -> float

val second : ?h:float -> (float -> float) -> float -> float
(** Second derivative by the three-point central stencil. *)

val richardson : ?h:float -> ?levels:int -> (float -> float) -> float -> float
(** Richardson-extrapolated central difference ([levels] default 3);
    roughly two extra digits over [central] for smooth functions. *)

val partial : ?h:float -> (Vec.t -> float) -> Vec.t -> int -> float
(** [partial f x i] is [df/dx_i] at [x] by central difference. *)

val gradient : ?h:float -> (Vec.t -> float) -> Vec.t -> Vec.t

val jacobian : ?h:float -> (Vec.t -> Vec.t) -> Vec.t -> Mat.t
(** Row [i], column [j] holds [df_i/dx_j]. *)

val hessian : ?h:float -> (Vec.t -> float) -> Vec.t -> Mat.t
(** Symmetric central-difference Hessian. *)

type stats = { estimates : float }
(** Cumulative finite-difference derivative estimates since the last
    reset (the [numerics.deriv.fd] counter — one tick per stenciled
    scalar derivative, per Jacobian column, per Hessian row). *)

val stats : unit -> stats
val reset_stats : unit -> unit
