exception No_bracket of string
exception No_convergence of string

type result = { root : float; value : float; iterations : int; evaluations : int }

let check_interval name lo hi =
  if not (Float.is_finite lo && Float.is_finite hi) then
    invalid_arg (Printf.sprintf "Rootfind.%s: non-finite interval" name);
  if lo >= hi then
    invalid_arg (Printf.sprintf "Rootfind.%s: lo=%g >= hi=%g" name lo hi)

let same_sign a b = (a > 0. && b > 0.) || (a < 0. && b < 0.)

let bisect ?(tol = 1e-12) ?(max_iter = 200) f ~lo ~hi =
  check_interval "bisect" lo hi;
  let flo = f lo and fhi = f hi in
  let evals = ref 2 in
  if flo = 0. then { root = lo; value = 0.; iterations = 0; evaluations = !evals }
  else if fhi = 0. then { root = hi; value = 0.; iterations = 0; evaluations = !evals }
  else if same_sign flo fhi then
    raise (No_bracket (Printf.sprintf "bisect: f(%g)=%g and f(%g)=%g" lo flo hi fhi))
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let iter = ref 0 in
    while !hi -. !lo > tol && !iter < max_iter do
      incr iter;
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      incr evals;
      if fmid = 0. then begin
        lo := mid;
        hi := mid
      end
      else if same_sign !flo fmid then begin
        lo := mid;
        flo := fmid
      end
      else hi := mid
    done;
    let root = 0.5 *. (!lo +. !hi) in
    { root; value = f root; iterations = !iter; evaluations = !evals + 1 }
  end

(* Brent's method, following the classic Numerical Recipes formulation.
   [flo]/[fhi] are the already-known endpoint values and [evals0] the
   evaluations spent obtaining them, so callers that have probed the
   endpoints (brent_auto, bracketing) do not pay for them twice. *)
let brent_with_values ?(tol = 1e-12) ?(max_iter = 200) f ~lo ~hi ~flo ~fhi ~evals0 =
  let a = ref lo and b = ref hi in
  let fa = ref flo and fb = ref fhi in
  let evals = ref evals0 in
  if !fa = 0. then { root = !a; value = 0.; iterations = 0; evaluations = !evals }
  else if !fb = 0. then { root = !b; value = 0.; iterations = 0; evaluations = !evals }
  else if same_sign !fa !fb then
    raise (No_bracket (Printf.sprintf "brent: f(%g)=%g and f(%g)=%g" lo !fa hi !fb))
  else begin
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) and e = ref (!b -. !a) in
    let iter = ref 0 in
    let result = ref None in
    while !result = None && !iter < max_iter do
      incr iter;
      if same_sign !fb !fc then begin
        c := !a;
        fc := !fa;
        d := !b -. !a;
        e := !d
      end;
      if Float.abs !fc < Float.abs !fb then begin
        a := !b; b := !c; c := !a;
        fa := !fb; fb := !fc; fc := !fa
      end;
      let tol1 = (2. *. epsilon_float *. Float.abs !b) +. (0.5 *. tol) in
      let xm = 0.5 *. (!c -. !b) in
      if Float.abs xm <= tol1 || !fb = 0. then
        result := Some { root = !b; value = !fb; iterations = !iter; evaluations = !evals }
      else begin
        if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
          (* attempt inverse quadratic / secant interpolation *)
          let s = !fb /. !fa in
          let p, q =
            if !a = !c then
              let p = 2. *. xm *. s in
              (p, 1. -. s)
            else begin
              let q = !fa /. !fc and r = !fb /. !fc in
              let p = s *. ((2. *. xm *. q *. (q -. r)) -. ((!b -. !a) *. (r -. 1.))) in
              (p, (q -. 1.) *. (r -. 1.) *. (s -. 1.))
            end
          in
          let p, q = if p > 0. then (p, -.q) else (-.p, q) in
          let min1 = (3. *. xm *. q) -. Float.abs (tol1 *. q) in
          let min2 = Float.abs (!e *. q) in
          if 2. *. p < Float.min min1 min2 then begin
            e := !d;
            d := p /. q
          end
          else begin
            d := xm;
            e := !d
          end
        end
        else begin
          d := xm;
          e := !d
        end;
        a := !b;
        fa := !fb;
        if Float.abs !d > tol1 then b := !b +. !d
        else b := !b +. (if xm >= 0. then tol1 else -.tol1);
        fb := f !b;
        incr evals
      end
    done;
    match !result with
    | Some r -> r
    | None -> { root = !b; value = !fb; iterations = !iter; evaluations = !evals }
  end

let brent ?tol ?max_iter f ~lo ~hi =
  check_interval "brent" lo hi;
  brent_with_values ?tol ?max_iter f ~lo ~hi ~flo:(f lo) ~fhi:(f hi) ~evals0:2

let newton ?(tol = 1e-12) ?(max_iter = 100) f ~df ~x0 =
  let x = ref x0 in
  let evals = ref 0 in
  let rec loop iter =
    if iter > max_iter then
      raise (No_convergence (Printf.sprintf "newton: no convergence from x0=%g" x0));
    let fx = f !x in
    incr evals;
    if Float.abs fx <= tol then
      { root = !x; value = fx; iterations = iter; evaluations = !evals }
    else begin
      let d = df !x in
      if d = 0. || not (Float.is_finite d) then
        raise (No_convergence (Printf.sprintf "newton: derivative %g at x=%g" d !x));
      let step = fx /. d in
      x := !x -. step;
      if Float.abs step <= tol *. (1. +. Float.abs !x) then
        { root = !x; value = f !x; iterations = iter; evaluations = !evals + 1 }
      else loop (iter + 1)
    end
  in
  loop 1

let secant ?(tol = 1e-12) ?(max_iter = 100) f ~x0 ~x1 =
  if x0 = x1 then invalid_arg "Rootfind.secant: identical starting points";
  let xa = ref x0 and xb = ref x1 in
  let fa = ref (f x0) and fb = ref (f x1) in
  let evals = ref 2 in
  let rec loop iter =
    if Float.abs !fb <= tol then
      { root = !xb; value = !fb; iterations = iter; evaluations = !evals }
    else if iter >= max_iter then
      raise (No_convergence "secant: iteration budget exhausted")
    else begin
      let denom = !fb -. !fa in
      if denom = 0. then raise (No_convergence "secant: flat step");
      let xc = !xb -. (!fb *. (!xb -. !xa) /. denom) in
      xa := !xb;
      fa := !fb;
      xb := xc;
      fb := f xc;
      incr evals;
      loop (iter + 1)
    end
  in
  loop 0

(* Expansion loop with known endpoint values; returns the bracket, its
   endpoint values and the number of extra evaluations spent. *)
let bracket_outward_with_values ?(factor = 2.) ?(max_expand = 60) f ~lo ~hi ~flo ~fhi =
  if factor <= 1. then invalid_arg "Rootfind.bracket_outward: factor must exceed 1";
  let lo = ref lo and hi = ref hi in
  let flo = ref flo and fhi = ref fhi in
  let extra = ref 0 in
  let rec expand n =
    if not (same_sign !flo !fhi) then (!lo, !hi, !flo, !fhi, !extra)
    else if n >= max_expand then
      raise
        (No_bracket
           (Printf.sprintf "bracket_outward: no sign change in [%g, %g]" !lo !hi))
    else begin
      let width = !hi -. !lo in
      (* grow the side with the smaller |f|: it is closer to the root *)
      if Float.abs !flo < Float.abs !fhi then begin
        lo := !lo -. (factor *. width);
        flo := f !lo
      end
      else begin
        hi := !hi +. (factor *. width);
        fhi := f !hi
      end;
      incr extra;
      expand (n + 1)
    end
  in
  expand 0

let bracket_outward ?factor ?max_expand f ~lo ~hi =
  check_interval "bracket_outward" lo hi;
  let lo, hi, _, _, _ =
    bracket_outward_with_values ?factor ?max_expand f ~lo ~hi ~flo:(f lo) ~fhi:(f hi)
  in
  (lo, hi)

let brent_auto ?tol ?max_iter f ~lo ~hi =
  check_interval "brent_auto" lo hi;
  let flo = f lo and fhi = f hi in
  if same_sign flo fhi then begin
    let lo, hi, flo, fhi, extra =
      bracket_outward_with_values f ~lo ~hi ~flo ~fhi
    in
    brent_with_values ?tol ?max_iter f ~lo ~hi ~flo ~fhi ~evals0:(2 + extra)
  end
  else brent_with_values ?tol ?max_iter f ~lo ~hi ~flo ~fhi ~evals0:2
