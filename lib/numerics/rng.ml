type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let next_state t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

(* splitmix64 output function *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = mix (next_state t)

let split t = create (int64 t)

let split_n t n =
  Precondition.require ~fn:"Rng.split_n" (n >= 0) "negative count";
  Array.init n (fun _ -> split t)

let float t =
  (* 53 high-quality bits into [0, 1) *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let uniform t ~lo ~hi =
  if lo >= hi then invalid_arg "Rng.uniform: lo >= hi";
  lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection-free modulo is fine for the small bounds used here *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (int64 t) 1) (Int64.of_int n))

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  -.log (1. -. float t) /. rate

let normal t ~mean ~stddev =
  let u1 = Float.max 1e-300 (float t) in
  let u2 = float t in
  mean +. (stddev *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let choice t xs =
  if Array.length xs = 0 then invalid_arg "Rng.choice: empty array";
  xs.(int t (Array.length xs))

let shuffle t xs =
  for i = Array.length xs - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = xs.(i) in
    xs.(i) <- xs.(j);
    xs.(j) <- tmp
  done
