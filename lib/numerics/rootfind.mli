(** Scalar root finding.

    All solvers look for [x] with [f x = 0]. Bracketing solvers require
    (and check) a sign change on the initial interval; [bracket_outward]
    manufactures such an interval from a guess for monotone-ish
    functions. *)

exception No_bracket of string
(** Raised when a sign-changing interval cannot be established. *)

exception No_convergence of string
(** Raised when an iterative method exhausts its iteration budget. *)

type result = {
  root : float;
  value : float;  (** [f root] *)
  iterations : int;
  evaluations : int;  (** number of calls to [f] *)
}

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> result
(** Plain bisection. [tol] bounds the final interval width (default
    [1e-12]). Raises [No_bracket] if [f lo] and [f hi] have the same
    strict sign. *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> result
(** Brent's method (inverse quadratic interpolation + secant + bisection
    fallback); the default solver throughout this project. *)

val newton :
  ?tol:float ->
  ?max_iter:int ->
  (float -> float) ->
  df:(float -> float) ->
  x0:float ->
  result
(** Newton-Raphson from [x0]. Raises [No_convergence] on a vanishing
    derivative or exhausted budget. *)

val secant :
  ?tol:float -> ?max_iter:int -> (float -> float) -> x0:float -> x1:float -> result

val bracket_outward :
  ?factor:float ->
  ?max_expand:int ->
  (float -> float) ->
  lo:float ->
  hi:float ->
  float * float
(** Expand [\[lo, hi\]] geometrically (factor default [2.0]) until the
    endpoints' values change sign, then return the bracket. Raises
    [No_bracket] after [max_expand] (default [60]) expansions. *)

val brent_auto :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> result
(** [brent] after [bracket_outward] if needed: the interval is used
    as-is when it already brackets a root. Endpoint values are computed
    once and threaded through the bracketing and Brent stages, so the
    returned [evaluations] is the exact number of calls to [f]: 2 for
    the endpoints, plus one per outward expansion, plus Brent's interior
    points. *)
