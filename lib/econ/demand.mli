(** User-demand functions [m_i(t)]: the population of a content
    provider's users as a function of the effective per-unit usage
    charge [t] (price minus subsidy).

    Every family satisfies Assumption 2 of the paper: continuously
    differentiable, strictly decreasing, and vanishing as [t -> infinity].
    All families are defined on the whole real line because subsidies can
    push the effective charge below zero. The paper's evaluations use the
    exponential family [m0 * e^(-alpha t)]. *)

type spec =
  | Exponential of { m0 : float; alpha : float }
      (** [m0 * exp (-alpha * t)]; [alpha] is (minus) the price
          semi-elasticity. *)
  | Isoelastic of { m0 : float; alpha : float; scale : float }
      (** [m0 * (1 + softplus (t / scale)) ** (-alpha)]: behaves like a
          constant-elasticity demand for large [t] but stays smooth and
          finite for subsidized (negative) charges. *)
  | Logit of { m0 : float; slope : float; midpoint : float }
      (** [m0 / (1 + exp (slope * (t - midpoint)))]: a population whose
          valuations are logistically distributed around [midpoint]. *)

type t

val make : spec -> t
(** Validates parameters ([m0 > 0] and positive shape parameters) and
    precomputes closures. Raises [Invalid_argument]. *)

val spec : t -> spec

val exponential : ?m0:float -> alpha:float -> unit -> t
(** The paper's family, [m0] defaulting to 1. *)

val isoelastic : ?m0:float -> ?scale:float -> alpha:float -> unit -> t

val logit : ?m0:float -> ?midpoint:float -> slope:float -> unit -> t

(** The family kernels over an arbitrary scalar field: the single
    source of truth the float closures and the dual-number evaluators
    share. [Kernel (Field.Float_s)] reproduces the legacy float
    closures operation for operation. *)
module Kernel (F : Numerics.Field.S) : sig
  val softplus : F.t -> F.t
  val sigmoid : F.t -> F.t

  val population : spec -> F.t -> F.t
  (** [m(t)] in the field [F]. *)

  val slope : spec -> F.t -> F.t
  (** [dm/dt] (the analytic derivative expression) in the field [F]. *)
end

val population : t -> float -> float
(** [population d t = m(t)]. *)

val derivative : t -> float -> float
(** [dm/dt], analytically. Always negative. *)

val population_d : t -> Numerics.Dual.t -> Numerics.Dual.t
(** [m(t)] on dual numbers — exact [dm/dt] along any seed. *)

val slope_d : t -> Numerics.Dual.t -> Numerics.Dual.t
(** [dm/dt] on dual numbers — exact second derivatives of [m]. *)

val population_d2 : t -> Numerics.Dual.Order2.t -> Numerics.Dual.Order2.t
val slope_d2 : t -> Numerics.Dual.Order2.t -> Numerics.Dual.Order2.t

val elasticity : t -> float -> float
(** The t-elasticity [m'(t) * t / m(t)] (Definition 2). Negative for
    positive [t]. *)

val scale_population : t -> kappa:float -> t
(** Multiply the population by [1 / kappa] pointwise (the Lemma-2
    rescaling). [kappa] must be positive. *)

val label : t -> string
(** Human-readable description, e.g. ["exp(m0=1, alpha=3)"]. *)
