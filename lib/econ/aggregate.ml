(* the Lemma-2 invariant quantity, in dual arithmetic: aggregation must
   preserve it together with its derivatives, which the dual property
   test pins *)
let pooled_throughput_d cps ~charge ~phi =
  List.fold_left
    (fun acc cp ->
      Numerics.Dual.(acc + (Cp.population_d cp charge * Cp.rate_d cp phi)))
    (Numerics.Dual.const 0.) cps

let as_big_user cp =
  let m_at_zero = Cp.population cp 0. in
  Cp.scale cp ~kappa:m_at_zero

let exponential_params cp =
  match (Demand.spec cp.Cp.demand, Throughput.spec cp.Cp.throughput) with
  | Demand.Exponential { m0; alpha }, Throughput.Exponential { l0; beta } ->
    Some (m0, alpha, l0, beta)
  | _, _ -> None

let same_traffic_class a b =
  match (exponential_params a, exponential_params b) with
  | Some (_, alpha_a, _, beta_a), Some (_, alpha_b, _, beta_b) ->
    alpha_a = alpha_b && beta_a = beta_b
  | _, _ -> false

let merge_exponential ?name cps =
  match cps with
  | [] -> invalid_arg "Aggregate.merge_exponential: empty list"
  | _ :: _ ->
    let params =
      List.map
        (fun cp ->
          match exponential_params cp with
          | Some p -> p
          | None ->
            invalid_arg
              (Printf.sprintf "Aggregate.merge_exponential: %s is not exponential"
                 cp.Cp.name))
        cps
    in
    let _, alpha, _, beta = List.hd params in
    List.iter
      (fun (_, a, _, b) ->
        if a <> alpha || b <> beta then
          invalid_arg "Aggregate.merge_exponential: members differ in alpha or beta")
      params;
    (* Lemma 2: only the product m0 * l0 matters, so pool it under m0 = 1 *)
    let pooled = List.fold_left (fun acc (m0, _, l0, _) -> acc +. (m0 *. l0)) 0. params in
    let weighted_value =
      List.fold_left2
        (fun acc (m0, _, l0, _) cp -> acc +. (m0 *. l0 *. cp.Cp.value))
        0. params cps
      /. pooled
    in
    let name =
      match name with
      | Some n -> n
      | None -> Printf.sprintf "merged(%s)" (String.concat "+" (List.map (fun cp -> cp.Cp.name) cps))
    in
    Cp.exponential ~name ~m0:1. ~l0:pooled ~alpha ~beta ~value:(Float.max 0. weighted_value) ()
