(** Per-user throughput functions [lambda_i(phi)]: how much traffic one
    user of a content provider pushes when the system runs at
    utilization [phi >= 0].

    Every family satisfies Assumption 1: differentiable, strictly
    decreasing in [phi], and vanishing as [phi -> infinity]. The paper's
    evaluations use the exponential family [lambda0 * e^(-beta phi)];
    [beta] measures congestion sensitivity. *)

type spec =
  | Exponential of { l0 : float; beta : float }
      (** [l0 * exp (-beta * phi)]. *)
  | Isoelastic of { l0 : float; beta : float }
      (** [l0 * (1 + phi) ** (-beta)]: heavy-tailed congestion response. *)
  | Rational of { l0 : float; beta : float }
      (** [l0 / (1 + beta * phi)]: the M/M/1-like hyperbolic decay. *)

type t

val make : spec -> t
(** Validates parameters ([l0 > 0], [beta > 0]). *)

val spec : t -> spec

val exponential : ?l0:float -> beta:float -> unit -> t

val isoelastic : ?l0:float -> beta:float -> unit -> t

val rational : ?l0:float -> beta:float -> unit -> t

(** The family kernels over an arbitrary scalar field (see
    {!Demand.Kernel}): [Kernel (Field.Float_s)] reproduces the legacy
    float closures operation for operation. *)
module Kernel (F : Numerics.Field.S) : sig
  val rate : spec -> F.t -> F.t
  val slope : spec -> F.t -> F.t
end

val rate : t -> float -> float
(** [rate th phi = lambda(phi)]. Requires [phi >= 0]. *)

val derivative : t -> float -> float
(** [dlambda/dphi], analytically. Always negative. *)

val rate_d : t -> Numerics.Dual.t -> Numerics.Dual.t
(** [lambda(phi)] on dual numbers (primal [phi >= 0] required). *)

val slope_d : t -> Numerics.Dual.t -> Numerics.Dual.t
val rate_d2 : t -> Numerics.Dual.Order2.t -> Numerics.Dual.Order2.t
val slope_d2 : t -> Numerics.Dual.Order2.t -> Numerics.Dual.Order2.t

val elasticity : t -> float -> float
(** The phi-elasticity [lambda'(phi) * phi / lambda(phi)]
    (Definition 2); [0] at [phi = 0] and negative beyond. *)

val scale_rate : t -> kappa:float -> t
(** Multiply the rate by [kappa] pointwise (the Lemma-2 rescaling).
    [kappa] must be positive. *)

val label : t -> string
