open Numerics

type fit = { scale : float; rate : float; r_square : float }

let exponential_fit samples =
  let n = Array.length samples in
  if n < 2 then invalid_arg "Calibrate.exponential_fit: need at least 2 samples";
  Array.iter
    (fun (_, y) ->
      if y <= 0. || not (Float.is_finite y) then
        invalid_arg "Calibrate.exponential_fit: responses must be positive")
    samples;
  let distinct = Array.exists (fun (x, _) -> x <> fst samples.(0)) samples in
  if not distinct then invalid_arg "Calibrate.exponential_fit: x values are constant";
  (* log y = log scale - rate * x: linear regression *)
  let design = Mat.init ~rows:n ~cols:2 (fun k j -> if j = 0 then 1. else fst samples.(k)) in
  let response = Vec.init n (fun k -> log (snd samples.(k))) in
  let coeffs = Linalg.lstsq design response in
  let predicted = Mat.matvec design coeffs in
  let mean = Vec.sum response /. float_of_int n in
  let ss_res = ref 0. and ss_tot = ref 0. in
  Array.iteri
    (fun k y ->
      ss_res := !ss_res +. ((y -. predicted.(k)) ** 2.);
      ss_tot := !ss_tot +. ((y -. mean) ** 2.))
    response;
  let r_square =
    if
      (!ss_tot = 0.
      [@sublint.allow "NO-FLOAT-EQ"
          "exact division guard: a constant response series gives ss_tot \
           exactly 0. and a perfect fit by convention"])
    then 1.
    else 1. -. (!ss_res /. !ss_tot)
  in
  { scale = exp coeffs.(0); rate = -.coeffs.(1); r_square }

let demand samples =
  let fit = exponential_fit samples in
  if fit.rate <= 0. then
    invalid_arg "Calibrate.demand: population rises with the charge (Assumption 2)";
  (Demand.exponential ~m0:fit.scale ~alpha:fit.rate (), fit)

let throughput samples =
  let fit = exponential_fit samples in
  if fit.rate <= 0. then
    invalid_arg "Calibrate.throughput: rate rises with congestion (Assumption 1)";
  (Throughput.exponential ~l0:fit.scale ~beta:fit.rate (), fit)

let value_per_unit reports =
  if Array.length reports = 0 then invalid_arg "Calibrate.value_per_unit: no reports";
  let profit = Array.fold_left (fun acc (p, _) -> acc +. p) 0. reports in
  let traffic = Array.fold_left (fun acc (_, t) -> acc +. t) 0. reports in
  if traffic <= 0. then invalid_arg "Calibrate.value_per_unit: no traffic";
  Float.max 0. (profit /. traffic)

let cp ?(name = "calibrated") ~demand_samples ~throughput_samples ~profit_reports () =
  let d, demand_fit = demand demand_samples in
  let th, throughput_fit = throughput throughput_samples in
  let value = value_per_unit profit_reports in
  (Cp.make ~name ~demand:d ~throughput:th ~value (), demand_fit, throughput_fit)
