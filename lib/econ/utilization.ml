type spec = Linear | Power of float | Log

type t = { spec : spec }

let make spec =
  (match spec with
  | Linear | Log -> ()
  | Power k ->
    if k <= 0. || not (Float.is_finite k) then
      invalid_arg (Printf.sprintf "Utilization: power exponent must be positive, got %g" k));
  { spec }

let spec u = u.spec

let linear = make Linear
let power k = make (Power k)
let log_family = make Log

let check ~theta ~mu =
  if theta < 0. || not (Float.is_finite theta) then
    invalid_arg (Printf.sprintf "Utilization: throughput %g out of range" theta);
  if mu <= 0. || not (Float.is_finite mu) then
    invalid_arg (Printf.sprintf "Utilization: capacity %g out of range" mu)

let check_phi ~phi ~mu =
  if phi < 0. || not (Float.is_finite phi) then
    invalid_arg (Printf.sprintf "Utilization: utilization %g out of range" phi);
  if mu <= 0. || not (Float.is_finite mu) then
    invalid_arg (Printf.sprintf "Utilization: capacity %g out of range" mu)

let phi u ~theta ~mu =
  check ~theta ~mu;
  match u.spec with
  | Linear -> theta /. mu
  | Power k -> Float.pow (theta /. mu) k
  | Log -> log1p (theta /. mu)

(* supply-side kernel over the scalar field: [phi] is the field value,
   [mu] a parameter. [Kernel (Field.Float_s)] matches the float
   branches below operation for operation. *)
module Kernel (F : Numerics.Field.S) = struct
  open F

  let theta_of spec ~phi ~mu =
    match spec with
    | Linear -> phi * const mu
    | Power k -> const mu * pow_f phi (1. /. k)
    | Log -> const mu * expm1 phi

  let dtheta_dphi spec ~phi ~mu =
    match spec with
    | Linear -> const mu
    | Power k -> const (mu /. k) * pow_f phi ((1. /. k) -. 1.)
    | Log -> const mu * exp phi
end

module K_dual = Kernel (Numerics.Dual)
module K_dual2 = Kernel (Numerics.Dual.Order2)

let theta_of u ~phi ~mu =
  check_phi ~phi ~mu;
  match u.spec with
  | Linear -> phi *. mu
  | Power k -> mu *. Float.pow phi (1. /. k)
  | Log -> mu *. expm1 phi

let theta_of_d u ~phi ~mu =
  check_phi ~phi:(Numerics.Dual.v phi) ~mu;
  K_dual.theta_of u.spec ~phi ~mu

let theta_of_d2 u ~phi ~mu =
  check_phi ~phi:(Numerics.Dual.Order2.v phi) ~mu;
  K_dual2.theta_of u.spec ~phi ~mu

let dtheta_dphi_d u ~phi ~mu =
  check_phi ~phi:(Numerics.Dual.v phi) ~mu;
  K_dual.dtheta_dphi u.spec ~phi ~mu

let dphi_dtheta u ~theta ~mu =
  check ~theta ~mu;
  match u.spec with
  | Linear -> 1. /. mu
  | Power k -> k /. mu *. Float.pow (theta /. mu) (k -. 1.)
  | Log -> 1. /. (mu +. theta)

let dphi_dmu u ~theta ~mu =
  check ~theta ~mu;
  match u.spec with
  | Linear -> -.theta /. (mu *. mu)
  | Power k -> -.k *. theta /. (mu *. mu) *. Float.pow (theta /. mu) (k -. 1.)
  | Log -> -.theta /. (mu *. (mu +. theta))

let dtheta_dphi u ~phi ~mu =
  check_phi ~phi ~mu;
  match u.spec with
  | Linear -> mu
  | Power k -> mu /. k *. Float.pow phi ((1. /. k) -. 1.)
  | Log -> mu *. exp phi

let dtheta_dmu u ~phi ~mu =
  check_phi ~phi ~mu;
  match u.spec with
  | Linear -> phi
  | Power k -> Float.pow phi (1. /. k)
  | Log -> expm1 phi

let label u =
  match u.spec with
  | Linear -> "linear(theta/mu)"
  | Power k -> Printf.sprintf "power((theta/mu)^%g)" k
  | Log -> "log(1 + theta/mu)"
