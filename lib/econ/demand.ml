type spec =
  | Exponential of { m0 : float; alpha : float }
  | Isoelastic of { m0 : float; alpha : float; scale : float }
  | Logit of { m0 : float; slope : float; midpoint : float }

type t = { spec : spec; f : float -> float; df : float -> float }

let positive name x =
  if x <= 0. || not (Float.is_finite x) then
    invalid_arg (Printf.sprintf "Demand: %s must be positive and finite, got %g" name x)

(* The single source of truth for every family: one kernel over the
   scalar field, evaluated in floats for the hot path and in dual
   numbers for exact derivatives. Branches are on the primal, and the
   float instance reproduces the legacy closures' operation order
   exactly. *)
module Kernel (F : Numerics.Field.S) = struct
  open F

  (* softplus with a numerically safe large-x branch *)
  let softplus x = if Stdlib.( > ) (primal x) 30. then x else log1p (exp x)

  let sigmoid x =
    if Stdlib.( > ) (primal x) 0. then const 1. / (const 1. + exp (neg x))
    else exp x / (const 1. + exp x)

  let population spec t =
    match spec with
    | Exponential { m0; alpha } -> const m0 * exp (neg (const alpha) * t)
    | Isoelastic { m0; alpha; scale } ->
      const m0 * pow_f (const 1. + softplus (t / const scale)) (-.alpha)
    | Logit { m0; slope; midpoint } ->
      const m0 * (const 1. - sigmoid (const slope * (t - const midpoint)))

  let slope spec t =
    match spec with
    | Exponential { m0; alpha } ->
      neg (const alpha) * const m0 * exp (neg (const alpha) * t)
    | Isoelastic { m0; alpha; scale } ->
      let u = const 1. + softplus (t / const scale) in
      neg (const alpha) * const m0 * pow_f u (-.alpha -. 1.)
      * sigmoid (t / const scale)
      / const scale
    | Logit { m0; slope; midpoint } ->
      let s = sigmoid (const slope * (t - const midpoint)) in
      neg (const m0) * const slope * s * (const 1. - s)
end

module K_float = Kernel (Numerics.Field.Float_s)
module K_dual = Kernel (Numerics.Dual)
module K_dual2 = Kernel (Numerics.Dual.Order2)

let closures spec = ((fun t -> K_float.population spec t), fun t -> K_float.slope spec t)

let validate = function
  | Exponential { m0; alpha } ->
    positive "m0" m0;
    positive "alpha" alpha
  | Isoelastic { m0; alpha; scale } ->
    positive "m0" m0;
    positive "alpha" alpha;
    positive "scale" scale
  | Logit { m0; slope; midpoint } ->
    positive "m0" m0;
    positive "slope" slope;
    if not (Float.is_finite midpoint) then invalid_arg "Demand: midpoint must be finite"

let make spec =
  validate spec;
  let f, df = closures spec in
  { spec; f; df }

let spec d = d.spec

let exponential ?(m0 = 1.) ~alpha () = make (Exponential { m0; alpha })
let isoelastic ?(m0 = 1.) ?(scale = 1.) ~alpha () = make (Isoelastic { m0; alpha; scale })
let logit ?(m0 = 1.) ?(midpoint = 1.) ~slope () = make (Logit { m0; slope; midpoint })

let population d t = d.f t
let derivative d t = d.df t
let population_d d t = K_dual.population d.spec t
let slope_d d t = K_dual.slope d.spec t
let population_d2 d t = K_dual2.population d.spec t
let slope_d2 d t = K_dual2.slope d.spec t

let elasticity d t =
  let m = d.f t in
  if
    (m = 0.
    [@sublint.allow "NO-FLOAT-EQ"
        "exact division guard: the elasticity below divides by m; only an \
         exactly-zero population is undefined"])
  then invalid_arg "Demand.elasticity: zero population";
  d.df t *. t /. m

let scale_population d ~kappa =
  positive "kappa" kappa;
  let spec =
    match d.spec with
    | Exponential e -> Exponential { e with m0 = e.m0 /. kappa }
    | Isoelastic e -> Isoelastic { e with m0 = e.m0 /. kappa }
    | Logit e -> Logit { e with m0 = e.m0 /. kappa }
  in
  make spec

let label d =
  match d.spec with
  | Exponential { m0; alpha } -> Printf.sprintf "exp(m0=%g, alpha=%g)" m0 alpha
  | Isoelastic { m0; alpha; scale } ->
    Printf.sprintf "iso(m0=%g, alpha=%g, scale=%g)" m0 alpha scale
  | Logit { m0; slope; midpoint } ->
    Printf.sprintf "logit(m0=%g, slope=%g, mid=%g)" m0 slope midpoint
