type spec =
  | Exponential of { m0 : float; alpha : float }
  | Isoelastic of { m0 : float; alpha : float; scale : float }
  | Logit of { m0 : float; slope : float; midpoint : float }

type t = { spec : spec; f : float -> float; df : float -> float }

let positive name x =
  if x <= 0. || not (Float.is_finite x) then
    invalid_arg (Printf.sprintf "Demand: %s must be positive and finite, got %g" name x)

(* softplus with a numerically safe large-x branch *)
let softplus x = if x > 30. then x else log1p (exp x)
let sigmoid x = if x > 0. then 1. /. (1. +. exp (-.x)) else exp x /. (1. +. exp x)

let closures = function
  | Exponential { m0; alpha } ->
    let f t = m0 *. exp (-.alpha *. t) in
    let df t = -.alpha *. m0 *. exp (-.alpha *. t) in
    (f, df)
  | Isoelastic { m0; alpha; scale } ->
    let f t = m0 *. Float.pow (1. +. softplus (t /. scale)) (-.alpha) in
    let df t =
      let u = 1. +. softplus (t /. scale) in
      -.alpha *. m0 *. Float.pow u (-.alpha -. 1.) *. sigmoid (t /. scale) /. scale
    in
    (f, df)
  | Logit { m0; slope; midpoint } ->
    let f t = m0 *. (1. -. sigmoid (slope *. (t -. midpoint))) in
    let df t =
      let s = sigmoid (slope *. (t -. midpoint)) in
      -.m0 *. slope *. s *. (1. -. s)
    in
    (f, df)

let validate = function
  | Exponential { m0; alpha } ->
    positive "m0" m0;
    positive "alpha" alpha
  | Isoelastic { m0; alpha; scale } ->
    positive "m0" m0;
    positive "alpha" alpha;
    positive "scale" scale
  | Logit { m0; slope; midpoint } ->
    positive "m0" m0;
    positive "slope" slope;
    if not (Float.is_finite midpoint) then invalid_arg "Demand: midpoint must be finite"

let make spec =
  validate spec;
  let f, df = closures spec in
  { spec; f; df }

let spec d = d.spec

let exponential ?(m0 = 1.) ~alpha () = make (Exponential { m0; alpha })
let isoelastic ?(m0 = 1.) ?(scale = 1.) ~alpha () = make (Isoelastic { m0; alpha; scale })
let logit ?(m0 = 1.) ?(midpoint = 1.) ~slope () = make (Logit { m0; slope; midpoint })

let population d t = d.f t
let derivative d t = d.df t

let elasticity d t =
  let m = d.f t in
  if
    (m = 0.
    [@sublint.allow "NO-FLOAT-EQ"
        "exact division guard: the elasticity below divides by m; only an \
         exactly-zero population is undefined"])
  then invalid_arg "Demand.elasticity: zero population";
  d.df t *. t /. m

let scale_population d ~kappa =
  positive "kappa" kappa;
  let spec =
    match d.spec with
    | Exponential e -> Exponential { e with m0 = e.m0 /. kappa }
    | Isoelastic e -> Isoelastic { e with m0 = e.m0 /. kappa }
    | Logit e -> Logit { e with m0 = e.m0 /. kappa }
  in
  make spec

let label d =
  match d.spec with
  | Exponential { m0; alpha } -> Printf.sprintf "exp(m0=%g, alpha=%g)" m0 alpha
  | Isoelastic { m0; alpha; scale } ->
    Printf.sprintf "iso(m0=%g, alpha=%g, scale=%g)" m0 alpha scale
  | Logit { m0; slope; midpoint } ->
    Printf.sprintf "logit(m0=%g, slope=%g, mid=%g)" m0 slope midpoint
