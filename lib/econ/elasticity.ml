open Numerics

let of_derivative ~dydx ~x ~y =
  if
    (y = 0.
    [@sublint.allow "NO-FLOAT-EQ"
        "exact division guard: the elasticity below divides by y; only an \
         exactly-zero level is undefined"])
  then invalid_arg "Elasticity.of_derivative: y = 0";
  dydx *. x /. y

let numeric ?h f x =
  let y = f x in
  of_derivative ~dydx:(Diff.central ?h f x) ~x ~y

let exact f x =
  let y, dydx = Ad.value_and_derivative f x in
  of_derivative ~dydx ~x ~y

let log_derivative ?h f x =
  if x <= 0. then invalid_arg "Elasticity.log_derivative: x must be positive";
  if f x <= 0. then invalid_arg "Elasticity.log_derivative: f x must be positive";
  let g u = log (f (exp u)) in
  Diff.central ?h g (log x)

let chain eps_zy eps_yx = eps_zy *. eps_yx

let is_elastic eps = Float.abs eps > 1.

let is_inelastic eps = Float.abs eps < 1.
