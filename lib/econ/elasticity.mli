(** Elasticities (Definition 2 of the paper).

    The x-elasticity of y is [eps = (dy/dx) * (x / y)]: the percentage
    change in [y] per percentage change in [x]. *)

val of_derivative : dydx:float -> x:float -> y:float -> float
(** Elasticity from a known derivative. Raises [Invalid_argument] when
    [y = 0] (the elasticity is undefined there). *)

val numeric : ?h:float -> (float -> float) -> float -> float
(** [numeric f x] estimates the x-elasticity of [f] at [x] by central
    differences. *)

val exact : (Numerics.Dual.t -> Numerics.Dual.t) -> float -> float
(** [exact f x]: the x-elasticity from one forward-mode AD pass —
    {!numeric} without the stencil error. *)

val log_derivative : ?h:float -> (float -> float) -> float -> float
(** [d (log f) / d (log x)], an equivalent definition for positive [f]
    and [x]; used for cross-checking in tests. *)

val chain : float -> float -> float
(** Elasticities compose along a chain: if [eps_yx] is the x-elasticity
    of [y] and [eps_zy] the y-elasticity of [z], then the x-elasticity
    of [z] is [chain eps_zy eps_yx = eps_zy *. eps_yx]. *)

val is_elastic : float -> bool
(** [|eps| > 1]: proportional response exceeds the stimulus. *)

val is_inelastic : float -> bool
(** [|eps| < 1]. *)
