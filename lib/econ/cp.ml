type t = {
  name : string;
  demand : Demand.t;
  throughput : Throughput.t;
  value : float;
}

let make ?(name = "cp") ~demand ~throughput ~value () =
  if value < 0. || not (Float.is_finite value) then
    invalid_arg (Printf.sprintf "Cp.make: value must be non-negative, got %g" value);
  { name; demand; throughput; value }

let exponential ?name ?m0 ?l0 ~alpha ~beta ~value () =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "cp(a=%g,b=%g,v=%g)" alpha beta value
  in
  make ~name
    ~demand:(Demand.exponential ?m0 ~alpha ())
    ~throughput:(Throughput.exponential ?l0 ~beta ())
    ~value ()

let population cp t = Demand.population cp.demand t
let rate cp phi = Throughput.rate cp.throughput phi
let throughput_at cp ~charge ~phi = population cp charge *. rate cp phi
let utility cp ~subsidy ~throughput = (cp.value -. subsidy) *. throughput
let population_d cp t = Demand.population_d cp.demand t
let rate_d cp phi = Throughput.rate_d cp.throughput phi
let population_d2 cp t = Demand.population_d2 cp.demand t
let rate_d2 cp phi = Throughput.rate_d2 cp.throughput phi

let scale cp ~kappa =
  {
    cp with
    demand = Demand.scale_population cp.demand ~kappa;
    throughput = Throughput.scale_rate cp.throughput ~kappa;
  }

let pp fmt cp =
  Format.fprintf fmt "%s{demand=%s, throughput=%s, v=%g}" cp.name
    (Demand.label cp.demand)
    (Throughput.label cp.throughput)
    cp.value
