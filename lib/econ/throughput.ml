type spec =
  | Exponential of { l0 : float; beta : float }
  | Isoelastic of { l0 : float; beta : float }
  | Rational of { l0 : float; beta : float }

type t = { spec : spec; f : float -> float; df : float -> float }

let positive name x =
  if x <= 0. || not (Float.is_finite x) then
    invalid_arg (Printf.sprintf "Throughput: %s must be positive and finite, got %g" name x)

(* One kernel over the scalar field per family: the float closures and
   the dual-number evaluators share it, so derivatives are exact by
   construction. [Kernel (Field.Float_s)] matches the legacy closures'
   operation order exactly. *)
module Kernel (F : Numerics.Field.S) = struct
  open F

  let rate spec phi =
    match spec with
    | Exponential { l0; beta } -> const l0 * exp (neg (const beta) * phi)
    | Isoelastic { l0; beta } -> const l0 * pow_f (const 1. + phi) (-.beta)
    | Rational { l0; beta } -> const l0 / (const 1. + (const beta * phi))

  let slope spec phi =
    match spec with
    | Exponential { l0; beta } ->
      neg (const beta) * const l0 * exp (neg (const beta) * phi)
    | Isoelastic { l0; beta } ->
      neg (const beta) * const l0 * pow_f (const 1. + phi) (-.beta -. 1.)
    | Rational { l0; beta } ->
      let d = const 1. + (const beta * phi) in
      neg (const l0) * const beta / (d * d)
end

module K_float = Kernel (Numerics.Field.Float_s)
module K_dual = Kernel (Numerics.Dual)
module K_dual2 = Kernel (Numerics.Dual.Order2)

let closures spec = ((fun phi -> K_float.rate spec phi), fun phi -> K_float.slope spec phi)

let validate = function
  | Exponential { l0; beta } | Isoelastic { l0; beta } | Rational { l0; beta } ->
    positive "l0" l0;
    positive "beta" beta

let make spec =
  validate spec;
  let f, df = closures spec in
  { spec; f; df }

let spec th = th.spec

let exponential ?(l0 = 1.) ~beta () = make (Exponential { l0; beta })
let isoelastic ?(l0 = 1.) ~beta () = make (Isoelastic { l0; beta })
let rational ?(l0 = 1.) ~beta () = make (Rational { l0; beta })

let check_phi phi =
  if phi < 0. || not (Float.is_finite phi) then
    invalid_arg (Printf.sprintf "Throughput: utilization %g out of range" phi)

let rate th phi =
  check_phi phi;
  th.f phi

let derivative th phi =
  check_phi phi;
  th.df phi

let rate_d th phi =
  check_phi (Numerics.Dual.v phi);
  K_dual.rate th.spec phi

let slope_d th phi =
  check_phi (Numerics.Dual.v phi);
  K_dual.slope th.spec phi

let rate_d2 th phi =
  check_phi (Numerics.Dual.Order2.v phi);
  K_dual2.rate th.spec phi

let slope_d2 th phi =
  check_phi (Numerics.Dual.Order2.v phi);
  K_dual2.slope th.spec phi

let elasticity th phi =
  check_phi phi;
  let l = th.f phi in
  if
    (l = 0.
    [@sublint.allow "NO-FLOAT-EQ"
        "exact division guard: the elasticity below divides by l; only an \
         exactly-zero rate is undefined"])
  then invalid_arg "Throughput.elasticity: zero rate";
  th.df phi *. phi /. l

let scale_rate th ~kappa =
  positive "kappa" kappa;
  let spec =
    match th.spec with
    | Exponential e -> Exponential { e with l0 = kappa *. e.l0 }
    | Isoelastic e -> Isoelastic { e with l0 = kappa *. e.l0 }
    | Rational e -> Rational { e with l0 = kappa *. e.l0 }
  in
  make spec

let label th =
  match th.spec with
  | Exponential { l0; beta } -> Printf.sprintf "exp(l0=%g, beta=%g)" l0 beta
  | Isoelastic { l0; beta } -> Printf.sprintf "iso(l0=%g, beta=%g)" l0 beta
  | Rational { l0; beta } -> Printf.sprintf "rat(l0=%g, beta=%g)" l0 beta
