(** Content providers.

    A CP bundles a user-demand function [m_i(t)], a per-user throughput
    function [lambda_i(phi)] and a per-unit traffic profitability
    [v_i]. *)

type t = {
  name : string;
  demand : Demand.t;
  throughput : Throughput.t;
  value : float;  (** [v_i >= 0]: average profit per unit of traffic *)
}

val make :
  ?name:string -> demand:Demand.t -> throughput:Throughput.t -> value:float -> unit -> t
(** Raises [Invalid_argument] for negative or non-finite [value]. *)

val exponential :
  ?name:string -> ?m0:float -> ?l0:float -> alpha:float -> beta:float -> value:float ->
  unit -> t
(** The paper's styled CP: [m_i(t) = m0 e^(-alpha t)],
    [lambda_i(phi) = l0 e^(-beta phi)]. *)

val population : t -> float -> float
(** [population cp t = m_i(t)]. *)

val rate : t -> float -> float
(** [rate cp phi = lambda_i(phi)]. *)

val throughput_at : t -> charge:float -> phi:float -> float
(** [theta_i = m_i(charge) * lambda_i(phi)]. *)

val population_d : t -> Numerics.Dual.t -> Numerics.Dual.t
val rate_d : t -> Numerics.Dual.t -> Numerics.Dual.t
val population_d2 : t -> Numerics.Dual.Order2.t -> Numerics.Dual.Order2.t
val rate_d2 : t -> Numerics.Dual.Order2.t -> Numerics.Dual.Order2.t

val utility : t -> subsidy:float -> throughput:float -> float
(** [U_i = (v_i - s_i) * theta_i] (the Section 4 definition; Section 3's
    [v_i theta_i] is the [subsidy = 0] case). *)

val scale : t -> kappa:float -> t
(** The Lemma-2 rescaling: population divided by [kappa], per-user rate
    multiplied by [kappa]. Leaves every equilibrium of the system
    unchanged. *)

val pp : Format.formatter -> t -> unit
