(** Lemma-2 aggregation of content providers.

    CPs sharing the phi-elasticity of throughput can be rescaled and
    merged without changing the system utilization or other CPs'
    throughput. This justifies the paper's styled populations of 8-9 CP
    "types", each standing for a group of similar real CPs. *)

val as_big_user : Cp.t -> Cp.t
(** Rescale a CP so that its population at charge 0 equals 1 (one "big
    user" carrying the whole group's traffic), preserving equilibria.
    Equivalent to [Cp.scale ~kappa:(m_i 0)]. *)

val merge_exponential : ?name:string -> Cp.t list -> Cp.t
(** Merge CPs whose demand and throughput are both exponential *with
    identical [alpha] and [beta]* into one CP with the summed
    maximum throughput [sum_i m0_i * l0_i] (and [m0 = 1]). The merged
    value [v] is the throughput-weighted mean of the members' values.
    Raises [Invalid_argument] when the list is empty or the members'
    shapes differ. *)

val same_traffic_class : Cp.t -> Cp.t -> bool
(** Whether two CPs may be merged by [merge_exponential]. *)

val pooled_throughput_d :
  Cp.t list -> charge:Numerics.Dual.t -> phi:Numerics.Dual.t -> Numerics.Dual.t
(** [sum_i m_i(charge) * lambda_i(phi)] in dual arithmetic — the
    quantity (and derivatives) Lemma-2 merging must preserve. *)
