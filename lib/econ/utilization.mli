(** System-utilization functions [Phi(theta, mu)] and their inverses
    [Theta(phi, mu) = Phi^{-1}] in the throughput argument.

    Assumption 1: [Phi] is differentiable, strictly increasing in the
    aggregate throughput [theta], strictly decreasing in the capacity
    [mu], and [Phi(0, mu) = 0]. Consequently [Theta] is strictly
    increasing in both arguments. The paper's evaluations use the linear
    family [theta / mu]. *)

type spec =
  | Linear  (** [Phi = theta / mu]: utilization as load per capacity. *)
  | Power of float
      (** [Phi = (theta / mu) ** k] for [k > 0]: convex ([k > 1]) or
          concave ([k < 1]) congestion onset. *)
  | Log  (** [Phi = log (1 + theta / mu)]: diminishing marginal
             congestion. *)

type t

val make : spec -> t

val spec : t -> spec

val linear : t

val power : float -> t

val log_family : t

val phi : t -> theta:float -> mu:float -> float
(** Utilization at aggregate throughput [theta >= 0] and capacity
    [mu > 0]. *)

val theta_of : t -> phi:float -> mu:float -> float
(** The implied throughput [Theta(phi, mu)] inverting [phi]. *)

(** The supply-side kernel over an arbitrary scalar field; [phi] is the
    field value, [mu] a float parameter. *)
module Kernel (F : Numerics.Field.S) : sig
  val theta_of : spec -> phi:F.t -> mu:float -> F.t
  val dtheta_dphi : spec -> phi:F.t -> mu:float -> F.t
end

val theta_of_d : t -> phi:Numerics.Dual.t -> mu:float -> Numerics.Dual.t
val theta_of_d2 : t -> phi:Numerics.Dual.Order2.t -> mu:float -> Numerics.Dual.Order2.t
val dtheta_dphi_d : t -> phi:Numerics.Dual.t -> mu:float -> Numerics.Dual.t

val dphi_dtheta : t -> theta:float -> mu:float -> float
(** Positive for [theta > 0]. *)

val dphi_dmu : t -> theta:float -> mu:float -> float
(** Negative for [theta > 0]. *)

val dtheta_dphi : t -> phi:float -> mu:float -> float
(** Positive for [phi > 0]. *)

val dtheta_dmu : t -> phi:float -> mu:float -> float
(** Positive for [phi > 0]. *)

val label : t -> string
