(** Process-wide parallelism configuration: the one pool the
    experiment layer shares.

    Resolution order for the domain count: {!set_jobs} (the [--jobs]
    flag) wins; otherwise the [SUBSIDIZATION_JOBS] environment variable
    (how CI drives a whole test binary at [--jobs 2] without threading
    a flag through every suite); otherwise
    [Domain.recommended_domain_count ()]. *)

val jobs : unit -> int
(** The domain count the next {!pool} call will use (or the live
    pool's size). *)

val set_jobs : int -> unit
(** Override the domain count. If a pool of a different size is
    already live it is shut down; the next {!pool} call creates a
    fresh one. Raises [Invalid_argument] when [n < 1]. *)

val pool : unit -> Pool.t
(** The shared pool, created lazily at the configured size. The
    process exit hook shuts it down. *)

val stats : unit -> Pool.stats option
(** Stats of the live pool, if one was ever created ([None] before
    first use). Feeds the bench record's [parallel] section. *)

val shutdown : unit -> unit
(** Shut the shared pool down (idempotent; also runs at exit). A
    subsequent {!pool} call creates a fresh one. *)
