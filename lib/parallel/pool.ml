type t = {
  size : int;
  lock : Mutex.t;
  work : Condition.t;  (* signalled when tasks are queued or on shutdown *)
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable batches : int;
  tasks_run : int array;  (* slot 0: submitting domain; 1..: workers *)
  mutable workers : unit Domain.t list;
}

let size t = t.size

(* worker: drain the queue, sleep on [work] when it is empty, exit once
   the pool is closed AND drained (shutdown never abandons queued work) *)
let rec worker_loop pool slot =
  Mutex.lock pool.lock;
  let rec next () =
    if not (Queue.is_empty pool.queue) then begin
      let task = Queue.pop pool.queue in
      pool.tasks_run.(slot) <- pool.tasks_run.(slot) + 1;
      Mutex.unlock pool.lock;
      task ();
      worker_loop pool slot
    end
    else if pool.closed then Mutex.unlock pool.lock
    else begin
      Condition.wait pool.work pool.lock;
      next ()
    end
  in
  next ()

let create ?domains () =
  let size =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  if size < 1 || size > 128 then
    invalid_arg
      (Printf.sprintf "Parallel.Pool.create: domains must lie in [1, 128], got %d"
         size);
  let pool =
    {
      size;
      lock = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      closed = false;
      batches = 0;
      tasks_run = Array.make size 0;
      workers = [];
    }
  in
  pool.workers <-
    List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

(* ------------------------------------------------------------------ *)
(* context propagation: whatever supervision the submitting domain is
   under must follow its tasks onto worker domains *)

type context = { probe : Numerics.Robust.probe; fault : Numerics.Fault.snapshot }

let capture_context () =
  {
    probe = Numerics.Robust.snapshot_probe ();
    fault = Numerics.Fault.snapshot ();
  }

let in_context ctx f =
  Numerics.Robust.with_probe_snapshot ctx.probe (fun () ->
      Numerics.Fault.with_snapshot ctx.fault f)

(* ------------------------------------------------------------------ *)
(* batch execution *)

type batch = {
  mutable remaining : int;
  mutable failed : (int * exn * Printexc.raw_backtrace) option;
      (* lowest-index failure so far: deterministic winner *)
}

let run_tasks pool fns =
  let n = Array.length fns in
  if n > 0 then begin
    Mutex.lock pool.lock;
    if pool.closed then begin
      Mutex.unlock pool.lock;
      invalid_arg "Parallel.Pool.run_tasks: pool is shut down"
    end;
    pool.batches <- pool.batches + 1;
    if pool.size = 1 || n = 1 then begin
      pool.tasks_run.(0) <- pool.tasks_run.(0) + n;
      Mutex.unlock pool.lock;
      (* serial fast path: submission order on the calling domain, which
         already carries its own probe/fault context *)
      Array.iter (fun f -> f ()) fns
    end
    else begin
      let batch = { remaining = n; failed = None } in
      let done_ = Condition.create () in
      let ctx = capture_context () in
      let wrap index fn () =
        let skip = Mutex.protect pool.lock (fun () -> batch.failed <> None) in
        let outcome =
          if skip then None
          else
            match in_context ctx fn with
            | () -> None
            | exception e -> Some (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock pool.lock;
        (match outcome with
        | Some (e, bt)
          when (match batch.failed with None -> true | Some (j, _, _) -> index < j)
          ->
          batch.failed <- Some (index, e, bt)
        | _ -> ());
        batch.remaining <- batch.remaining - 1;
        if batch.remaining = 0 then Condition.broadcast done_;
        Mutex.unlock pool.lock
      in
      Array.iteri (fun i fn -> Queue.push (wrap i fn) pool.queue) fns;
      Condition.broadcast pool.work;
      (* help drain the queue instead of blocking: makes a busy pool
         deadlock-free under nested submission and puts the submitting
         domain to work *)
      let rec help () =
        if not (Queue.is_empty pool.queue) then begin
          let task = Queue.pop pool.queue in
          pool.tasks_run.(0) <- pool.tasks_run.(0) + 1;
          Mutex.unlock pool.lock;
          task ();
          Mutex.lock pool.lock;
          help ()
        end
      in
      help ();
      while batch.remaining > 0 do
        Condition.wait done_ pool.lock
      done;
      let failed = batch.failed in
      Mutex.unlock pool.lock;
      match failed with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

(* ------------------------------------------------------------------ *)
(* deterministic chunked mapping *)

let ranges ~n ~chunk =
  if chunk <= 0 then
    invalid_arg (Printf.sprintf "Parallel.Pool.ranges: chunk must be positive, got %d" chunk);
  if n < 0 then invalid_arg (Printf.sprintf "Parallel.Pool.ranges: negative n %d" n);
  Array.init ((n + chunk - 1) / chunk) (fun i ->
      (i * chunk, Stdlib.min n ((i + 1) * chunk)))

let fold_map ~init ~step xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let y0, s0 = step init xs.(0) in
    let out = Array.make n y0 in
    let s = ref s0 in
    for i = 1 to n - 1 do
      let y, s' = step !s xs.(i) in
      out.(i) <- y;
      s := s'
    done;
    out
  end

let map_chunked pool ~chunk ~init ~step xs =
  let rs = ranges ~n:(Array.length xs) ~chunk in
  let slots = Array.make (Array.length rs) [||] in
  let fns =
    Array.mapi
      (fun ci (lo, hi) () ->
        slots.(ci) <- fold_map ~init:(init lo) ~step (Array.sub xs lo (hi - lo)))
      rs
  in
  run_tasks pool fns;
  Array.concat (Array.to_list slots)

let map ?chunk pool f xs =
  let chunk =
    match chunk with
    | Some c -> c
    | None ->
      (* ~4 chunks per domain: balances uneven cells without shrinking
         chunks to nothing. Stateless maps are chunking-insensitive. *)
      Stdlib.max 1 ((Array.length xs + (4 * pool.size) - 1) / (4 * pool.size))
  in
  map_chunked pool ~chunk ~init:(fun _ -> ()) ~step:(fun () x -> (f x, ())) xs

(* ------------------------------------------------------------------ *)

type stats = { domains : int; batches : int; tasks_run : int array }

let stats pool =
  Mutex.protect pool.lock (fun () ->
      {
        domains = pool.size;
        batches = pool.batches;
        tasks_run = Array.copy pool.tasks_run;
      })

let shutdown pool =
  let workers =
    Mutex.protect pool.lock (fun () ->
        if pool.closed then []
        else begin
          pool.closed <- true;
          Condition.broadcast pool.work;
          let w = pool.workers in
          pool.workers <- [];
          w
        end)
  in
  List.iter Domain.join workers
