(** Fixed-size domain pool for grid-shaped sweeps.

    The experiments this repo runs are embarrassingly parallel at the
    grid level — each [(price, cap)] cell is an independent Nash or
    utilization solve — but the cells share warm-start state along a
    row and process-global context (watchdog probes, chaos faults,
    metrics). The pool owns both problems:

    {b Determinism contract.} Work is split into contiguous index
    ranges ({!ranges}) whose boundaries depend only on the item count
    and the caller's chunk size — never on the pool size or on
    scheduling. Chunk-local state ({!map_chunked}) restarts at every
    chunk boundary, so a sweep evaluates the exact same floating-point
    operations per cell at [--jobs 1] and [--jobs 64]; only the wall
    clock changes. Callers that thread warm starts must therefore pick
    a {e fixed} chunk size, not one derived from [size].

    {b Context propagation.} At submission the pool captures the
    submitting domain's cooperative-cancellation probe
    ([Numerics.Robust.snapshot_probe]) and global fault installation
    ([Numerics.Fault.snapshot]) and re-installs both around every task,
    wherever it runs — the watchdog and the chaos harness observe every
    evaluation of a parallel sweep exactly as they would a serial one.

    {b Scheduling.} [create ~domains:n] spawns [n - 1] worker domains;
    the submitting domain helps drain the queue while it waits, so a
    1-domain pool degenerates to serial execution in submission order
    with no spawned domains, and nested submissions cannot deadlock.
    The first raising task (lowest task index) wins: its exception is
    re-raised at the submission site after the batch drains, and queued
    tasks of a failed batch are skipped. *)

type t

val create : ?domains:int -> unit -> t
(** A pool of [domains] total domains (default
    [Domain.recommended_domain_count ()]), including the submitting
    one: [create ~domains:1] spawns nothing. Raises [Invalid_argument]
    unless [1 <= domains <= 128]. *)

val size : t -> int
(** The [domains] the pool was created with. *)

val ranges : n:int -> chunk:int -> (int * int) array
(** Contiguous [(lo, hi)] half-open ranges covering [0 .. n-1] in
    order, each [chunk] wide except a shorter final one. Pure: depends
    only on [n] and [chunk]. Raises [Invalid_argument] when [chunk <= 0]
    or [n < 0]. *)

val run_tasks : t -> (unit -> unit) array -> unit
(** Run every thunk to completion (in parallel, in any order), then
    return. If tasks raise, the one with the lowest array index wins
    and is re-raised here with its backtrace; once any task of the
    batch has failed, tasks of the same batch that have not started yet
    are skipped. The pool survives failed batches. *)

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] is [Array.map f xs] with elements evaluated on the
    pool, results in index order. [chunk] defaults to a balance-minded
    size derived from the pool width — fine for stateless [f], whose
    results cannot depend on chunking. *)

val map_chunked :
  t ->
  chunk:int ->
  init:(int -> 's) ->
  step:('s -> 'a -> 'b * 's) ->
  'a array ->
  'b array
(** Chunk-local left fold: for each range [(lo, hi)] the state starts
    at [init lo] and [step] threads it through [xs.(lo) .. xs.(hi-1)],
    collecting the ['b]s; results are assembled in index order. This is
    the warm-start shape: [init] recomputes (or defaults) the guess at
    a chunk boundary, [step] carries it between neighbouring cells. *)

val fold_map : init:'s -> step:('s -> 'a -> 'b * 's) -> 'a array -> 'b array
(** The serial engine under {!map_chunked}, exposed for no-pool paths:
    one state chain across the whole array, no pool, no extra
    allocation beyond the result. *)

type stats = {
  domains : int;
  batches : int;  (** [run_tasks]-level submissions so far *)
  tasks_run : int array;
      (** tasks executed per domain; slot 0 is the submitting domain,
          slots 1.. the spawned workers *)
}

val stats : t -> stats

val shutdown : t -> unit
(** Signal the workers to exit and join them. Idempotent. Submitting
    to a shut-down pool raises [Invalid_argument]. *)
