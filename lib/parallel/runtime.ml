type state = { mutable jobs : int option; mutable pool : Pool.t option }

let lock = Mutex.create ()

let state = { jobs = None; pool = None } [@@sync "guarded by [lock]"]

let default_jobs () =
  match Sys.getenv_opt "SUBSIDIZATION_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let jobs () =
  Mutex.protect lock (fun () ->
      match state.jobs with Some n -> n | None -> default_jobs ())

let set_jobs n =
  if n < 1 then
    invalid_arg (Printf.sprintf "Parallel.Runtime.set_jobs: need >= 1, got %d" n);
  let stale =
    Mutex.protect lock (fun () ->
        let stale =
          match state.pool with
          | Some p when Pool.size p <> n ->
            state.pool <- None;
            Some p
          | Some _ | None -> None
        in
        state.jobs <- Some n;
        stale)
  in
  (* join outside the lock: workers may be mid-task *)
  Option.iter Pool.shutdown stale

let pool () =
  Mutex.protect lock (fun () ->
      match state.pool with
      | Some p -> p
      | None ->
        let n = match state.jobs with Some n -> n | None -> default_jobs () in
        let p = Pool.create ~domains:n () in
        state.pool <- Some p;
        p)

let stats () = Mutex.protect lock (fun () -> Option.map Pool.stats state.pool)

let shutdown () =
  let p =
    Mutex.protect lock (fun () ->
        let p = state.pool in
        state.pool <- None;
        p)
  in
  Option.iter Pool.shutdown p

let () = at_exit shutdown
