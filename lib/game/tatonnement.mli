(** Best-response dynamics traces.

    Records the full trajectory of iterated best response so the
    off-equilibrium dynamics discussed around Theorems 4 and 6 can be
    inspected: convergence rate, oscillation, sensitivity to the
    starting profile. *)

type step = {
  index : int;
  profile : Numerics.Vec.t;
  move : float;  (** sup-norm displacement from the previous profile *)
}

type trace = {
  steps : step list;  (** in chronological order, including the start *)
  converged : bool;
}

val run :
  ?scheme:Best_response.scheme ->
  ?damping:float ->
  ?tol:float ->
  ?max_sweeps:int ->
  Best_response.game ->
  x0:Numerics.Vec.t ->
  trace

type resilient = {
  trace : trace;  (** the converged trace, or the last attempt's *)
  retries : int;  (** damping-halving restarts taken *)
  damping_used : float;
}

val run_resilient :
  ?scheme:Best_response.scheme ->
  ?damping:float ->
  ?tol:float ->
  ?max_sweeps:int ->
  ?max_retries:int ->
  Best_response.game ->
  x0:Numerics.Vec.t ->
  resilient
(** {!run}, but a non-convergent trace (including period-2 cycling of
    undamped best response) is retried with halved damping up to
    [max_retries] (default 4) times. Restarts are counted in the shared
    {!Numerics.Robust} telemetry. *)

val final : trace -> Numerics.Vec.t
(** The last profile of the trace. *)

val contraction_estimate : trace -> float option
(** Geometric mean of consecutive displacement ratios over the tail of
    the trace: an empirical contraction factor. [None] when the trace is
    too short (< 4 moves) or stalls at zero displacement early. *)

val oscillation_detected : ?tol:float -> trace -> bool
(** Whether the tail revisits an earlier profile without converging
    (period-2 cycling of undamped best response). *)
