open Numerics

type game = {
  box : Box.t;
  payoff : int -> Vec.t -> float;
  marginal : (int -> Vec.t -> float) option;
  fused : (int -> Vec.t -> float -> float * float) option;
  respond_points : int;
}

type scheme = Gauss_seidel | Jacobi

type outcome = {
  profile : Vec.t;
  sweeps : int;
  last_move : float;
  converged : bool;
}

let make ?marginal ?fused ?(respond_points = 25) ~box ~payoff () =
  Precondition.require ~fn:"Best_response.make" (respond_points >= 5)
    "respond_points < 5";
  { box; payoff; marginal; fused; respond_points }

let with_coord s i si =
  let s' = Vec.copy s in
  s'.(i) <- si;
  s'

(* Best reply via first-order sign scan: the box ends plus every root of
   the marginal payoff are stationary candidates. *)
let respond_with_marginal game marginal i s =
  let lo = Box.lo_i game.box i and hi = Box.hi_i game.box i in
  if lo = hi then lo
  else begin
    let u si = marginal i (with_coord s i si) in
    let grid = Grid.linspace lo hi (Stdlib.max 5 (game.respond_points / 2)) in
    let values = Array.map u grid in
    let candidates = ref [ lo; hi ] in
    for k = 0 to Array.length grid - 2 do
      let a = values.(k) and b = values.(k + 1) in
      if a = 0. then candidates := grid.(k) :: !candidates
      else if a *. b < 0. then begin
        (* a stationary candidate the robust chain cannot pin down is
           dropped: the scan endpoints still bound the best reply *)
        match
          Robust.root u ~ctx:"best_response" ~lo:grid.(k) ~hi:grid.(k + 1)
            ~domain:(grid.(k), grid.(k + 1))
        with
        | Ok r -> candidates := r.Robust.result.Rootfind.root :: !candidates
        | Error _ -> ()
      end
    done;
    let payoff si = game.payoff i (with_coord s i si) in
    let best = ref lo and best_val = ref neg_infinity in
    List.iter
      (fun c ->
        let v = payoff c in
        if v > !best_val then begin
          best_val := v;
          best := c
        end)
      !candidates;
    !best
  end

let respond_derivative_free game i s =
  let lo = Box.lo_i game.box i and hi = Box.hi_i game.box i in
  if lo = hi then lo
  else begin
    let payoff si = game.payoff i (with_coord s i si) in
    let r = Optimize.grid_then_golden ~points:game.respond_points payoff ~lo ~hi in
    r.Optimize.x
  end

(* Fused path: the marginal and its slope come out of one dual pass, so
   the reply is a projected damped Newton from the current coordinate —
   no grid scan, no per-crossing root chain. [None] means the corrector
   and its fallback chain both failed; the caller re-scans. *)
let respond_with_fused game fused i s =
  let lo = Box.lo_i game.box i and hi = Box.hi_i game.box i in
  if lo = hi then Some lo
  else begin
    let f_df si = fused i s si in
    match Continuation.correct ~ctx:"best_response" f_df ~x0:s.(i) ~lo ~hi with
    | Continuation.Converged p -> Some p.Robust.x
    | Continuation.Fell_back r -> Some r.Robust.result.Rootfind.root
    | Continuation.Failed _ -> None
  end

let respond_scan game i s =
  match game.marginal with
  | Some marginal -> respond_with_marginal game marginal i s
  | None -> respond_derivative_free game i s

let respond game i s =
  match game.fused with
  | Some fused when Continuation.fast () -> (
      match respond_with_fused game fused i s with
      | Some reply -> reply
      | None -> respond_scan game i s)
  | _ -> respond_scan game i s

let solve ?(scheme = Gauss_seidel) ?(damping = 1.) ?(tol = 1e-10) ?(max_sweeps = 500)
    game ~x0 =
  Precondition.require ~fn:"Best_response.solve"
    (damping > 0. && damping <= 1.)
    "damping must lie in (0, 1]";
  let n = Box.dim game.box in
  Precondition.require ~fn:"Best_response.solve" (Vec.dim x0 = n)
    "profile dimension mismatch";
  Obs.Trace.with_span "best_response.solve" @@ fun () ->
  let s = ref (Box.project game.box x0) in
  let sweep () =
    let base = Vec.copy !s in
    let next = Vec.copy !s in
    for i = 0 to n - 1 do
      let current = match scheme with Gauss_seidel -> next | Jacobi -> base in
      let reply = respond game i current in
      next.(i) <- ((1. -. damping) *. current.(i)) +. (damping *. reply)
    done;
    let moved = Vec.dist_inf next !s in
    s := next;
    moved
  in
  let rec loop k =
    let moved = sweep () in
    if moved <= tol then { profile = !s; sweeps = k; last_move = moved; converged = true }
    else if k >= max_sweeps then
      { profile = !s; sweeps = k; last_move = moved; converged = false }
    else loop (k + 1)
  in
  let outcome = loop 1 in
  if Obs.Trace.enabled () then begin
    Obs.Trace.add_attr "sweeps" (string_of_int outcome.sweeps);
    Obs.Trace.add_attr "converged" (string_of_bool outcome.converged)
  end;
  outcome

let solve_multistart ?scheme ?damping ?tol ?max_sweeps ?(starts = 5) rng game =
  Precondition.require ~fn:"Best_response.solve_multistart" (starts >= 1)
    "starts must be positive";
  let fixed = [ Box.center game.box; Box.lo game.box; Box.hi game.box ] in
  let extra = List.init (Stdlib.max 0 (starts - 3)) (fun _ -> Box.random_point rng game.box) in
  let points =
    match List.filteri (fun k _ -> k < starts) (fixed @ extra) with
    | [] -> [ Box.center game.box ]
    | pts -> pts
  in
  List.map (fun x0 -> solve ?scheme ?damping ?tol ?max_sweeps game ~x0) points
