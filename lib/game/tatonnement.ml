open Numerics

type step = { index : int; profile : Vec.t; move : float }

type trace = { steps : step list; converged : bool }

let run ?(scheme = Best_response.Gauss_seidel) ?(damping = 1.) ?(tol = 1e-10)
    ?(max_sweeps = 500) game ~x0 =
  Precondition.require ~fn:"Tatonnement.run"
    (damping > 0. && damping <= 1.)
    "damping must lie in (0, 1]";
  let n = Box.dim game.Best_response.box in
  Precondition.require ~fn:"Tatonnement.run" (Vec.dim x0 = n)
    "profile dimension mismatch";
  Obs.Trace.with_span "tatonnement.run" @@ fun () ->
  let s = ref (Box.project game.Best_response.box x0) in
  let steps = ref [ { index = 0; profile = Vec.copy !s; move = infinity } ] in
  let sweep () =
    let base = Vec.copy !s in
    let next = Vec.copy !s in
    for i = 0 to n - 1 do
      let current =
        match scheme with Best_response.Gauss_seidel -> next | Best_response.Jacobi -> base
      in
      let reply = Best_response.respond game i current in
      next.(i) <- ((1. -. damping) *. current.(i)) +. (damping *. reply)
    done;
    let moved = Vec.dist_inf next !s in
    s := next;
    moved
  in
  let rec loop k =
    let moved = sweep () in
    steps := { index = k; profile = Vec.copy !s; move = moved } :: !steps;
    if moved <= tol then true
    else if k >= max_sweeps then false
    else loop (k + 1)
  in
  let converged = loop 1 in
  { steps = List.rev !steps; converged }

type resilient = { trace : trace; retries : int; damping_used : float }

let run_resilient ?scheme ?(damping = 1.) ?tol ?max_sweeps ?(max_retries = 4) game ~x0 =
  let rec attempt damping retries =
    let trace = run ?scheme ~damping ?tol ?max_sweeps game ~x0 in
    if trace.converged || retries >= max_retries then { trace; retries; damping_used = damping }
    else begin
      (* both plain non-convergence and detected cycling respond to a
         smaller step; count the restart in the shared solver telemetry *)
      Numerics.Robust.record_retry ~ctx:"tatonnement" ();
      attempt (damping /. 2.) (retries + 1)
    end
  in
  attempt damping 0

let final t =
  match List.rev t.steps with
  | last :: _ -> last.profile
  | [] -> Precondition.fail ~fn:"Tatonnement.final" "empty trace"

let contraction_estimate t =
  let moves =
    List.filter_map (fun s -> if s.index > 0 then Some s.move else None) t.steps
  in
  if List.length moves < 4 then None
  else begin
    let rec ratios = function
      | a :: (b :: _ as rest) when a > 0. -> (b /. a) :: ratios rest
      | _ :: rest -> ratios rest
      | [] -> []
    in
    match ratios moves with
    | [] -> None
    | rs ->
      let positive = List.filter (fun r -> r > 0.) rs in
      if positive = [] then None
      else
        Some
          (exp
             (List.fold_left (fun acc r -> acc +. log r) 0. positive
             /. float_of_int (List.length positive)))
  end

let oscillation_detected ?(tol = 1e-8) t =
  if t.converged then false
  else begin
    let profiles = List.map (fun s -> s.profile) t.steps in
    let arr = Array.of_list profiles in
    let n = Array.length arr in
    (* look for a revisit among the last few profiles *)
    let window = Stdlib.min n 12 in
    let found = ref false in
    for i = n - window to n - 1 do
      for j = i + 2 to n - 1 do
        if i >= 0 && j < n && Vec.dist_inf arr.(i) arr.(j) <= tol
           && Vec.dist_inf arr.(j - 1) arr.(j) > tol
        then found := true
      done
    done;
    !found
  end
