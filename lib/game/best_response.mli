(** Best-response machinery for continuous games on boxes.

    A game is described by per-player payoffs [payoff i s] (player [i]'s
    utility under the full strategy profile [s]) plus, optionally, the
    analytic marginal payoff [d payoff_i / d s_i]. When the marginal is
    available, best responses are computed from first-order sign
    changes — far more accurate than derivative-free search. *)

type game = {
  box : Box.t;
  payoff : int -> Numerics.Vec.t -> float;
  marginal : (int -> Numerics.Vec.t -> float) option;
  fused : (int -> Numerics.Vec.t -> float -> float * float) option;
      (** [fused i s si] returns the marginal payoff AND its own-strategy
          slope at [s] with [s_i := si] from one fused evaluation (a
          second-order dual pass). When present and continuation mode is
          [Fast], {!respond} runs a projected damped Newton from the
          current coordinate instead of the grid scan. *)
  respond_points : int;
      (** resolution of the line search / first-order scan in {!respond}
          (default 25; the marginal-based scan uses half of it) *)
}

type scheme =
  | Gauss_seidel  (** players update sequentially within a sweep *)
  | Jacobi  (** players update simultaneously from the sweep's start profile *)

type outcome = {
  profile : Numerics.Vec.t;
  sweeps : int;
  last_move : float;  (** sup-norm displacement of the final sweep *)
  converged : bool;
}

val make :
  ?marginal:(int -> Numerics.Vec.t -> float) ->
  ?fused:(int -> Numerics.Vec.t -> float -> float * float) ->
  ?respond_points:int ->
  box:Box.t ->
  payoff:(int -> Numerics.Vec.t -> float) ->
  unit ->
  game

val respond : game -> int -> Numerics.Vec.t -> float
(** Player [i]'s best reply to the profile (its own coordinate seeds the
    fused Newton when one is attached; otherwise it is ignored). With a
    [fused] marginal under [Fast] continuation mode the reply is the
    projected Newton point (interior stationary point or KKT corner);
    when that whole chain fails — or in [Legacy] mode — candidates are
    the box endpoints plus all first-order roots of [marginal], and the
    payoff-maximizing candidate wins. *)

val solve :
  ?scheme:scheme ->
  ?damping:float ->
  ?tol:float ->
  ?max_sweeps:int ->
  game ->
  x0:Numerics.Vec.t ->
  outcome
(** Iterated best response from [x0]. [damping in (0, 1]] blends the
    reply with the current strategy (default 1, undamped);
    [tol] (default [1e-10]) bounds the final sweep displacement.
    Unconverged runs are returned with [converged = false] rather than
    raised, so callers can inspect the trajectory endpoint. *)

val solve_multistart :
  ?scheme:scheme ->
  ?damping:float ->
  ?tol:float ->
  ?max_sweeps:int ->
  ?starts:int ->
  Numerics.Rng.t ->
  game ->
  outcome list
(** [solve] from the box center, both corners and [starts - 3] random
    points; useful for probing uniqueness. *)
