type status =
  | Completed
  | Failed of { exn : string; backtrace : string }
  | Timed_out of { limit_s : float }
  | Out_of_budget of { limit : int }

type entry = {
  id : string;
  status : status;
  duration_s : float;
  attempts : int;
  shape_passed : int;
  shape_total : int;
  failed_checks : string list;
  degraded_samples : int;
  exit_reason : string;
  finished_unix : float;
}

type t = { created_unix : float; entries : entry list }

let schema = "run.v1"

let empty () = { created_unix = Obs.Clock.now (); entries = [] }

let entries t = t.entries

let set t entry =
  if List.exists (fun e -> e.id = entry.id) t.entries then
    { t with entries = List.map (fun e -> if e.id = entry.id then entry else e) t.entries }
  else { t with entries = t.entries @ [ entry ] }

let find t id = List.find_opt (fun e -> e.id = id) t.entries

let successful e =
  match e.status with
  | Completed -> e.shape_passed = e.shape_total
  | Failed _ | Timed_out _ | Out_of_budget _ -> false

let status_to_string = function
  | Completed -> "completed"
  | Failed _ -> "failed"
  | Timed_out _ -> "timed_out"
  | Out_of_budget _ -> "out_of_budget"

(* ------------------------------------------------------------------ *)
(* JSON *)

open Obs.Json

let json_of_entry e =
  Obj
    ([ ("id", Str e.id); ("status", Str (status_to_string e.status)) ]
    @ (match e.status with
      | Completed -> []
      | Failed { exn; backtrace } ->
        [ ("error", Obj [ ("exn", Str exn); ("backtrace", Str backtrace) ]) ]
      | Timed_out { limit_s } -> [ ("limit_s", Num limit_s) ]
      | Out_of_budget { limit } -> [ ("limit_evals", Num (float_of_int limit)) ])
    @ [
        ("duration_s", Num e.duration_s);
        ("attempts", Num (float_of_int e.attempts));
        ( "shape_checks",
          Obj
            [
              ("passed", Num (float_of_int e.shape_passed));
              ("total", Num (float_of_int e.shape_total));
              ("failed", Arr (List.map (fun n -> Str n) e.failed_checks));
            ] );
        ("degraded_samples", Num (float_of_int e.degraded_samples));
        ("exit_reason", Str e.exit_reason);
        ("finished_unix", Num e.finished_unix);
      ])

let to_json t =
  Obj
    [
      ("schema", Str schema);
      ("created_unix", Num t.created_unix);
      ("updated_unix", Num (Obs.Clock.now ()));
      ("entries", Arr (List.map json_of_entry t.entries));
    ]

(* decoding: small Result combinators over Obs.Json *)

let ( let* ) = Result.bind

let field name json =
  match member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let str name json =
  let* v = field name json in
  match v with Str s -> Ok s | _ -> Error (Printf.sprintf "field %S is not a string" name)

let num name json =
  let* v = field name json in
  match to_float v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S is not a number" name)

let int_field name json =
  let* f = num name json in
  Ok (int_of_float f)

let entry_of_json json =
  let* id = str "id" json in
  let in_entry = Printf.sprintf "entry %S: %s" id in
  let relabel r = Result.map_error (fun m -> in_entry m) r in
  let* status_s = relabel (str "status" json) in
  let* status =
    relabel
      (match status_s with
      | "completed" -> Ok Completed
      | "failed" ->
        let* error = field "error" json in
        let* exn = str "exn" error in
        let* backtrace = str "backtrace" error in
        Ok (Failed { exn; backtrace })
      | "timed_out" ->
        let* limit_s = num "limit_s" json in
        Ok (Timed_out { limit_s })
      | "out_of_budget" ->
        let* limit = int_field "limit_evals" json in
        Ok (Out_of_budget { limit })
      | other -> Error (Printf.sprintf "unknown status %S" other))
  in
  let* duration_s = relabel (num "duration_s" json) in
  let* attempts = relabel (int_field "attempts" json) in
  let* checks = relabel (field "shape_checks" json) in
  let* shape_passed = relabel (int_field "passed" checks) in
  let* shape_total = relabel (int_field "total" checks) in
  let* failed_json = relabel (field "failed" checks) in
  let* failed_checks =
    relabel
      (match to_list failed_json with
      | None -> Error "shape_checks.failed is not an array"
      | Some l ->
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            match v with
            | Str s -> Ok (s :: acc)
            | _ -> Error "shape_checks.failed holds a non-string")
          (Ok []) l
        |> Result.map List.rev)
  in
  let* degraded_samples = relabel (int_field "degraded_samples" json) in
  let* exit_reason = relabel (str "exit_reason" json) in
  let* finished_unix = relabel (num "finished_unix" json) in
  Ok
    {
      id;
      status;
      duration_s;
      attempts;
      shape_passed;
      shape_total;
      failed_checks;
      degraded_samples;
      exit_reason;
      finished_unix;
    }

let of_json json =
  let* tag = str "schema" json in
  let* () =
    if tag = schema then Ok ()
    else Error (Printf.sprintf "expected schema %S, found %S" schema tag)
  in
  let* created_unix = num "created_unix" json in
  let* entries_json = field "entries" json in
  let* entries =
    match to_list entries_json with
    | None -> Error "entries is not an array"
    | Some l ->
      List.fold_left
        (fun acc v ->
          let* acc = acc in
          let* e = entry_of_json v in
          Ok (e :: acc))
        (Ok []) l
      |> Result.map List.rev
  in
  Ok { created_unix; entries }

let save ~path t =
  Report.Fsio.write_atomic_exn ~path (fun oc ->
      output_string oc (to_string ~pretty:true (to_json t));
      output_char oc '\n')

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~path =
  if not (Sys.file_exists path) then Ok (empty ())
  else
    let text = read_file path in
    match of_string text with
    | json -> Result.map_error (fun m -> path ^ ": " ^ m) (of_json json)
    | exception Parse_error msg -> Error (path ^ ": " ^ msg)

(* A power loss mid-write (or a non-durable write racing a crash) can
   leave the manifest torn mid-record. The tail of a torn document is a
   partial entry, so recovery is: cut the text back to a '}' that closes
   the last complete entry, seal the document with "]}", and accept the
   first cut whose result passes full schema validation. Scanning from
   the end finds the longest valid prefix; entry validation rejects cuts
   landing inside a nested object (a bad cut yields an entry missing
   required fields). The scan is capped: a torn tail is a few records
   deep, and an unrecognizably corrupt file should degrade to an empty
   manifest, not an O(n^2) parse storm. *)
let salvage_truncated text =
  let max_tries = 64 in
  let rec scan pos tries =
    if tries >= max_tries then None
    else
      match String.rindex_from_opt text pos '}' with
      | None -> None
      | Some i -> (
        let candidate = String.sub text 0 (i + 1) ^ "]}" in
        match of_json (of_string candidate) with
        | Ok t -> Some (t, String.length text - (i + 1))
        | Error _ | (exception Parse_error _) ->
          if i = 0 then None else scan (i - 1) (tries + 1))
  in
  if String.length text = 0 then None
  else scan (String.length text - 1) 0

let load_lenient ~path ~on_warning =
  if not (Sys.file_exists path) then Ok (empty ())
  else
    let text = read_file path in
    let recovered () =
      match salvage_truncated text with
      | Some (t, dropped) ->
        on_warning
          (Printf.sprintf
             "%s: truncated manifest: recovered %d entries, dropped %d trailing \
              bytes (partial final record skipped)"
             path
             (List.length t.entries)
             dropped);
        Ok t
      | None ->
        on_warning
          (Printf.sprintf
             "%s: unreadable manifest: no complete entries recoverable; resuming \
              from an empty manifest"
             path);
        Ok (empty ())
    in
    match of_string text with
    | json -> (
      match of_json json with Ok t -> Ok t | Error _ -> recovered ())
    | exception Parse_error _ -> recovered ()

let summary_table t =
  let table =
    Report.Table.make
      ~columns:
        [ "id"; "status"; "duration s"; "attempts"; "checks"; "degraded"; "exit reason" ]
  in
  List.iter
    (fun e ->
      Report.Table.add_row table
        [
          e.id;
          status_to_string e.status;
          Printf.sprintf "%.2f" e.duration_s;
          string_of_int e.attempts;
          Printf.sprintf "%d/%d" e.shape_passed e.shape_total;
          string_of_int e.degraded_samples;
          e.exit_reason;
        ])
    t.entries;
  table
