(** The persistent run manifest ([run.v1]).

    One JSON document per sweep recording, for every experiment, how it
    ended: completed (with shape-check and degraded-sample counts),
    failed (with the contained exception and backtrace), timed out, or
    out of evaluation budget. The manifest is rewritten atomically
    after {e each} experiment ({!Report.Fsio.write_atomic}), so a crash
    at any point leaves a loadable document describing exactly the
    prefix that ran — which is what makes [--resume] sound.

    Schema [run.v1]:
    {v
    { "schema": "run.v1",
      "created_unix": <float>, "updated_unix": <float>,
      "entries": [
        { "id": "fig4",
          "status": "completed" | "failed" | "timed_out" | "out_of_budget",
          "error": { "exn": <string>, "backtrace": <string> },   // failed only
          "limit_s": <float>,                               // timed_out only
          "limit_evals": <int>,                          // out_of_budget only
          "duration_s": <float>,
          "attempts": <int>,                 // 1 + retries actually spent
          "shape_checks": { "passed": <int>, "total": <int>,
                            "failed": [<check name>, ...] },
          "degraded_samples": <int>,
          "exit_reason": <string>,           // one human-readable line
          "finished_unix": <float> }, ... ] }
    v} *)

type status =
  | Completed
  | Failed of { exn : string; backtrace : string }
  | Timed_out of { limit_s : float }
  | Out_of_budget of { limit : int }

type entry = {
  id : string;
  status : status;
  duration_s : float;
  attempts : int;  (** 1 + retries spent on this experiment *)
  shape_passed : int;
  shape_total : int;
  failed_checks : string list;  (** names of shape checks that failed *)
  degraded_samples : int;
  exit_reason : string;
  finished_unix : float;
}

type t

val schema : string
(** ["run.v1"] *)

val empty : unit -> t
(** A fresh manifest stamped with the current {!Obs.Clock} time. *)

val entries : t -> entry list
(** In insertion order. *)

val set : t -> entry -> t
(** Replace the entry with the same id, or append. *)

val find : t -> string -> entry option

val successful : entry -> bool
(** [Completed] with every shape check passing — the condition under
    which [--resume] skips the experiment. A completed run with failing
    checks is re-run: the checks, not mere termination, are the
    experiment's contract. *)

val status_to_string : status -> string
(** ["completed"], ["failed"], ["timed_out"], ["out_of_budget"]. *)

val to_json : t -> Obs.Json.t

val of_json : Obs.Json.t -> (t, string) result
(** Validates the schema tag and every entry's shape. *)

val save : path:string -> t -> unit
(** Atomic write; raises [Sys_error] on I/O failure. *)

val load : path:string -> (t, string) result
(** A missing file is [Ok (empty ())]; unreadable JSON or a wrong
    schema is [Error]. *)

val load_lenient : path:string -> on_warning:(string -> unit) -> (t, string) result
(** Like {!load}, but hardened against torn/truncated files (a power
    loss mid-write, a partial final record): the longest prefix that
    closes on a complete, schema-valid entry is recovered and the
    dropped tail is reported through [on_warning] — skip-and-warn
    instead of failing resume. A file beyond recovery degrades to
    [Ok (empty ())] with a warning; [Error] is reserved for I/O
    failure. A well-formed manifest loads identically to {!load}. *)

val summary_table : t -> Report.Table.t
(** One row per entry: id, status, duration, attempts, shape checks,
    degraded samples, exit reason — the CLI's end-of-sweep report. *)
