(** Cooperative wall-clock deadlines and evaluation budgets.

    The paper's equilibrium computations are fixed-point and
    best-response iterations with no a-priori iteration bound
    (Definition 1 / Theorem 3), so a pathological market point can in
    principle iterate forever. The watchdog bounds them {e without}
    threads or signals: it installs a probe via
    {!Numerics.Robust.with_probe} that runs before every guarded
    objective evaluation, reads {!Obs.Clock}, and raises a typed
    exception the moment the limit is crossed. Because every
    experiment's hot loop bottoms out in [Robust], the probe is
    checked exactly where the time is spent.

    The exceptions are deliberately outside the solver failure
    taxonomy: [Robust]'s fallback chains let them escape, so they
    unwind straight to the supervisor that set the limit. *)

exception Deadline_exceeded of { elapsed_s : float; limit_s : float }
exception Eval_budget_exceeded of { evaluations : int; limit : int }

type limits = {
  deadline_s : float option;  (** wall-clock allowance per guarded run *)
  max_evals : int option;  (** guarded objective-evaluation allowance *)
}

val no_limits : limits

val limits : ?deadline_s:float -> ?max_evals:int -> unit -> limits
(** Raises [Invalid_argument] for a non-positive or non-finite
    deadline, or a non-positive budget. *)

val describe : limits -> string
(** ["deadline 5s, budget 10000 evals"], ["unlimited"], ... *)

val guard : limits -> (unit -> 'a) -> 'a
(** Run the thunk under the limits: the elapsed clock starts now, the
    evaluation counter starts at zero, and the probe is uninstalled on
    exit however the thunk ends. With {!no_limits} the thunk runs
    untouched. Nested guards compose (both probes keep firing). *)
