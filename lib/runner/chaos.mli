(** Registry-wide chaos harness.

    Sweeps {!Numerics.Fault} modes across experiments: for every
    (scenario, experiment) pair the fault is installed process-globally
    ({!Numerics.Fault.set_global}, applied by [Robust] to every guarded
    objective evaluation), the experiment runs under a {!Watchdog}
    deadline via {!Supervisor.supervise}, and the result is recorded in
    a [run.v1] manifest under the id ["<scenario>:<experiment>"].

    The harness asserts the resilience contract of DESIGN §8/§11:
    under every fault mode an experiment either completes (possibly
    with failing shape checks or degraded samples) or is contained as
    a typed [failed]/[timed_out]/[out_of_budget] record — it never
    hangs (deadline), never lets an exception escape (supervisor), and
    always yields a manifest entry that round-trips through the
    [run.v1] codec. *)

type scenario = { name : string; mode : Numerics.Fault.mode }

val default_scenarios : scenario list
(** One per {!Numerics.Fault.mode} constructor: [nan-region],
    [nan-after], [spike], [budget], [plateau], with parameters chosen
    to land inside the utilization domain [\[0, 1\]] the equilibrium
    solvers work in. *)

type verdict = {
  scenario : string;
  experiment : string;
  entry : Manifest.entry;
  injected_evals : int;  (** evaluations routed through the fault *)
  injected_faults : int;  (** how many were corrupted *)
  contained : bool;
      (** false only if an exception escaped the supervisor or the
          entry failed to round-trip — a resilience-contract breach *)
  note : string;
}

type report = {
  verdicts : verdict list;
  manifest : Manifest.t;
  ok : bool;  (** every verdict contained and the manifest schema-valid *)
}

val run :
  ?limits:Watchdog.limits ->
  ?scenarios:scenario list ->
  ?experiments:Experiments.Common.t list ->
  ?manifest_path:string ->
  ?on_event:(Supervisor.event -> unit) ->
  unit ->
  report
(** Defaults: a 20s per-experiment deadline, {!default_scenarios},
    the full {!Experiments.Registry.all}. The global fault is always
    cleared afterwards, whatever happens. With [manifest_path] the
    chaos manifest is persisted (atomically, after every pair). *)

val verdict_table : report -> Report.Table.t
(** One row per (scenario, experiment) pair for the CLI. *)
