exception Deadline_exceeded of { elapsed_s : float; limit_s : float }
exception Eval_budget_exceeded of { evaluations : int; limit : int }

let () =
  Printexc.register_printer (function
    | Deadline_exceeded { elapsed_s; limit_s } ->
      Some
        (Printf.sprintf "Watchdog.Deadline_exceeded: %.2fs elapsed of a %gs limit"
           elapsed_s limit_s)
    | Eval_budget_exceeded { evaluations; limit } ->
      Some
        (Printf.sprintf
           "Watchdog.Eval_budget_exceeded: %d evaluations of a %d-eval budget"
           evaluations limit)
    | _ -> None)

type limits = { deadline_s : float option; max_evals : int option }

let no_limits = { deadline_s = None; max_evals = None }

let limits ?deadline_s ?max_evals () =
  (match deadline_s with
  | Some d when (not (Float.is_finite d)) || d <= 0. ->
    invalid_arg (Printf.sprintf "Watchdog.limits: deadline_s must be positive, got %g" d)
  | _ -> ());
  (match max_evals with
  | Some n when n <= 0 ->
    invalid_arg (Printf.sprintf "Watchdog.limits: max_evals must be positive, got %d" n)
  | _ -> ());
  { deadline_s; max_evals }

let describe = function
  | { deadline_s = None; max_evals = None } -> "unlimited"
  | { deadline_s; max_evals } ->
    String.concat ", "
      (List.filter_map
         (fun x -> x)
         [
           Option.map (fun d -> Printf.sprintf "deadline %gs" d) deadline_s;
           Option.map (fun n -> Printf.sprintf "budget %d evals" n) max_evals;
         ])

let guard lims f =
  match lims with
  | { deadline_s = None; max_evals = None } -> f ()
  | { deadline_s; max_evals } ->
    let started = Obs.Clock.now () in
    (* atomic: the probe is propagated to pool workers, which must all
       charge the same budget *)
    let evals = Atomic.make 0 in
    let check () =
      let seen = 1 + Atomic.fetch_and_add evals 1 in
      (match max_evals with
      | Some limit when seen > limit ->
        raise (Eval_budget_exceeded { evaluations = seen; limit })
      | _ -> ());
      match deadline_s with
      | Some limit_s ->
        let elapsed_s = Obs.Clock.elapsed ~since:started in
        if elapsed_s > limit_s then raise (Deadline_exceeded { elapsed_s; limit_s })
      | None -> ()
    in
    Numerics.Robust.with_probe check f
