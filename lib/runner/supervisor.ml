type retry = {
  max_attempts : int;
  backoff_s : float;
  multiplier : float;
  jitter : float;
}

let no_retry = { max_attempts = 1; backoff_s = 0.5; multiplier = 2.; jitter = 0. }

let retry ?(max_attempts = 1) ?(backoff_s = 0.5) ?(multiplier = 2.) ?(jitter = 0.) () =
  if max_attempts < 1 then
    invalid_arg
      (Printf.sprintf "Supervisor.retry: max_attempts must be >= 1, got %d" max_attempts);
  if (not (Float.is_finite backoff_s)) || backoff_s < 0. then
    invalid_arg
      (Printf.sprintf "Supervisor.retry: backoff_s must be non-negative, got %g" backoff_s);
  if (not (Float.is_finite multiplier)) || multiplier < 1. then
    invalid_arg
      (Printf.sprintf "Supervisor.retry: multiplier must be >= 1, got %g" multiplier);
  if (not (Float.is_finite jitter)) || jitter < 0. || jitter > 1. then
    invalid_arg
      (Printf.sprintf "Supervisor.retry: jitter must be in [0, 1], got %g" jitter);
  { max_attempts; backoff_s; multiplier; jitter }

(* the sleep before the retry that follows failed attempt [attempt]
   (1-based): exponential base, then a symmetric multiplicative jitter
   drawn from the caller's explicit Rng stream so concurrent retriers
   de-synchronize while a fixed seed still replays the exact delays *)
let backoff_delay ?rng retry ~attempt =
  if attempt < 1 then
    invalid_arg
      (Printf.sprintf "Supervisor.backoff_delay: attempt must be >= 1, got %d" attempt);
  let base =
    retry.backoff_s *. (retry.multiplier ** float_of_int (attempt - 1))
  in
  match rng with
  | Some rng when retry.jitter > 0. ->
    let u = Numerics.Rng.float rng in
    base *. (1. +. (retry.jitter *. ((2. *. u) -. 1.)))
  | _ -> base

let retryable = function
  | Numerics.Robust.Solver_error _ | Numerics.Rootfind.No_bracket _
  | Numerics.Rootfind.No_convergence _ | Numerics.Fixedpoint.No_convergence _ ->
    true
  | _ -> false

type result_ = { entry : Manifest.entry; outcome : Experiments.Common.outcome option }

type event =
  | Started of { id : string; attempt : int }
  | Retrying of { id : string; next_attempt : int; backoff_s : float; reason : string }
  | Skipped of { id : string }
  | Finished of result_

type summary = { manifest : Manifest.t; ran : int; skipped : int; failed : int }

(* one watchdog-guarded attempt; the experiment's exception (if any) is
   captured together with its backtrace before anything else can
   truncate the trace *)
type attempt_outcome =
  | Ran of Experiments.Common.outcome
  | Crashed of { exn : exn; backtrace : string }

let attempt_once limits (e : Experiments.Common.t) =
  match Watchdog.guard limits (fun () -> Experiments.Common.run e) with
  | outcome -> Ran outcome
  | exception ((Sys.Break | Stack_overflow | Out_of_memory) as fatal) -> raise fatal
  | exception exn ->
    Crashed { exn; backtrace = Printexc.get_backtrace () }

let entry_of_completed (e : Experiments.Common.t) ~attempts ~duration_s outcome =
  let checks = outcome.Experiments.Common.shape_checks in
  let failed_checks =
    List.filter_map
      (fun c ->
        if c.Subsidization.Theorems.passed then None
        else Some c.Subsidization.Theorems.name)
      checks
  in
  let shape_total = List.length checks in
  let shape_passed = shape_total - List.length failed_checks in
  {
    Manifest.id = e.Experiments.Common.id;
    status = Manifest.Completed;
    duration_s;
    attempts;
    shape_passed;
    shape_total;
    failed_checks;
    degraded_samples = Experiments.Common.degraded_count outcome;
    exit_reason =
      (if failed_checks = [] then "completed"
       else
         Printf.sprintf "completed; %d/%d shape checks failed"
           (List.length failed_checks) shape_total);
    finished_unix = Obs.Clock.now ();
  }

let entry_of_crash (e : Experiments.Common.t) ~attempts ~duration_s ~exn ~backtrace =
  let base status exit_reason =
    {
      Manifest.id = e.Experiments.Common.id;
      status;
      duration_s;
      attempts;
      shape_passed = 0;
      shape_total = 0;
      failed_checks = [];
      degraded_samples = 0;
      exit_reason;
      finished_unix = Obs.Clock.now ();
    }
  in
  match exn with
  | Watchdog.Deadline_exceeded { elapsed_s; limit_s } ->
    base
      (Manifest.Timed_out { limit_s })
      (Printf.sprintf "deadline: %.2fs elapsed of %gs" elapsed_s limit_s)
  | Watchdog.Eval_budget_exceeded { evaluations; limit } ->
    base
      (Manifest.Out_of_budget { limit })
      (Printf.sprintf "eval budget: %d of %d spent" evaluations limit)
  | _ ->
    base
      (Manifest.Failed { exn = Printexc.to_string exn; backtrace })
      ("crashed: " ^ Printexc.to_string exn)

let supervise ?(limits = Watchdog.no_limits) ?(retry = no_retry) ?rng
    ?(sleep = Unix.sleepf) (e : Experiments.Common.t) =
  (* backtraces are the whole point of the Failed record *)
  Printexc.record_backtrace true;
  let t_start = Obs.Clock.now () in
  let duration () = Obs.Clock.elapsed ~since:t_start in
  let rec go attempt =
    match attempt_once limits e with
    | Ran outcome ->
      {
        entry = entry_of_completed e ~attempts:attempt ~duration_s:(duration ()) outcome;
        outcome = Some outcome;
      }
    | Crashed { exn; backtrace } ->
      if attempt < retry.max_attempts && retryable exn then begin
        sleep (backoff_delay ?rng retry ~attempt);
        go (attempt + 1)
      end
      else
        {
          entry = entry_of_crash e ~attempts:attempt ~duration_s:(duration ()) ~exn ~backtrace;
          outcome = None;
        }
  in
  go 1

(* supervise, but with the Retrying event threaded through; kept apart
   so [supervise] stays event-free for library callers *)
let supervise_with_events ~limits ~retry ?rng ~sleep ~on_event (e : Experiments.Common.t) =
  let id = e.Experiments.Common.id in
  let attempt_no = ref 1 in
  let sleep_and_report s =
    on_event
      (Retrying
         {
           id;
           next_attempt = !attempt_no + 1;
           backoff_s = s;
           reason = "retryable solver failure";
         });
    incr attempt_no;
    sleep s
  in
  on_event (Started { id; attempt = 1 });
  let result = supervise ~limits ~retry ?rng ~sleep:sleep_and_report e in
  on_event (Finished result);
  result

let sweep ?(limits = Watchdog.no_limits) ?(retry = no_retry) ?rng
    ?(sleep = Unix.sleepf) ?manifest_path ?(resume = false) ?on_warning
    ?(on_event = fun (_ : event) -> ()) (experiments : Experiments.Common.t list) =
  let initial =
    match (manifest_path, resume, on_warning) with
    | Some path, true, None -> Manifest.load ~path
    | Some path, true, Some warn -> Manifest.load_lenient ~path ~on_warning:warn
    | _ -> Ok (Manifest.empty ())
  in
  match initial with
  | Error _ as e -> e
  | Ok manifest ->
    let persist m =
      match manifest_path with Some path -> Manifest.save ~path m | None -> ()
    in
    let manifest, ran, skipped =
      List.fold_left
        (fun (manifest, ran, skipped) (e : Experiments.Common.t) ->
          let id = e.Experiments.Common.id in
          match Manifest.find manifest id with
          | Some entry when resume && Manifest.successful entry ->
            on_event (Skipped { id });
            (manifest, ran, skipped + 1)
          | _ ->
            let result = supervise_with_events ~limits ~retry ?rng ~sleep ~on_event e in
            let manifest = Manifest.set manifest result.entry in
            persist manifest;
            (manifest, ran + 1, skipped))
        (manifest, 0, 0) experiments
    in
    (* cover the empty-experiment-list / all-skipped cases too: the
       manifest on disk always reflects this sweep *)
    persist manifest;
    let failed =
      List.length
        (List.filter (fun e -> not (Manifest.successful e)) (Manifest.entries manifest))
    in
    Ok { manifest; ran; skipped; failed }
