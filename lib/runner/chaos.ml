type scenario = { name : string; mode : Numerics.Fault.mode }

(* parameters sit inside [0, 1]: the utilization domain every
   equilibrium root-solve works in, so each fault actually bites *)
let default_scenarios =
  [
    { name = "nan-region"; mode = Numerics.Fault.Nan_region { lo = 0.25; hi = 0.35 } };
    { name = "nan-after"; mode = Numerics.Fault.Nan_after 2000 };
    {
      name = "spike";
      mode = Numerics.Fault.Spike { at = 0.5; width = 0.05; height = 25. };
    };
    { name = "budget"; mode = Numerics.Fault.Budget 5000 };
    {
      name = "plateau";
      mode = Numerics.Fault.Plateau { lo = 0.45; hi = 0.55; level = 0.1 };
    };
  ]

type verdict = {
  scenario : string;
  experiment : string;
  entry : Manifest.entry;
  injected_evals : int;
  injected_faults : int;
  contained : bool;
  note : string;
}

type report = { verdicts : verdict list; manifest : Manifest.t; ok : bool }

let default_limits = Watchdog.limits ~deadline_s:20. ()

(* an entry is well-formed iff it survives its own codec: encode the
   singleton manifest, parse it back, find the entry again *)
let round_trips entry =
  let m = Manifest.set (Manifest.empty ()) entry in
  match Manifest.of_json (Manifest.to_json m) with
  | Ok m' -> Manifest.find m' entry.Manifest.id <> None
  | Error _ -> false

(* containment fallback for a supervisor breach: the supervisor is
   contractually total, but the chaos harness is exactly the place to
   distrust that contract rather than assume it *)
let escaped_entry ~id exn =
  {
    Manifest.id;
    status =
      Manifest.Failed
        { exn = Printexc.to_string exn; backtrace = Printexc.get_backtrace () };
    duration_s = 0.;
    attempts = 1;
    shape_passed = 0;
    shape_total = 0;
    failed_checks = [];
    degraded_samples = 0;
    exit_reason = "ESCAPED the supervisor: " ^ Printexc.to_string exn;
    finished_unix = Obs.Clock.now ();
  }

let run ?(limits = default_limits) ?(scenarios = default_scenarios)
    ?(experiments = Experiments.Registry.all) ?manifest_path
    ?(on_event = fun (_ : Supervisor.event) -> ()) () =
  let manifest = ref (Manifest.empty ()) in
  let persist () =
    match manifest_path with
    | Some path -> Manifest.save ~path !manifest
    | None -> ()
  in
  let one scenario (e : Experiments.Common.t) =
    let id = Printf.sprintf "%s:%s" scenario.name e.Experiments.Common.id in
    (* the supervised experiment carries the chaos id so the manifest
       keys (scenario, experiment) pairs apart *)
    let renamed = { e with Experiments.Common.id = id } in
    on_event (Supervisor.Started { id; attempt = 1 });
    let entry, contained, note, evals, faults =
      Fun.protect
        ~finally:(fun () -> Numerics.Fault.set_global None)
        (fun () ->
          Numerics.Fault.set_global (Some scenario.mode);
          match Supervisor.supervise ~limits renamed with
          | { Supervisor.entry; outcome = _ } ->
            let well_formed = round_trips entry in
            ( entry,
              well_formed,
              (if well_formed then "contained"
               else "manifest entry does not round-trip"),
              Numerics.Fault.global_evaluations (),
              Numerics.Fault.global_triggered () )
          | exception ((Sys.Break | Stack_overflow | Out_of_memory) as fatal) ->
            raise fatal
          | exception exn ->
            ( escaped_entry ~id exn,
              false,
              "exception escaped the supervisor",
              Numerics.Fault.global_evaluations (),
              Numerics.Fault.global_triggered () ))
    in
    manifest := Manifest.set !manifest entry;
    persist ();
    on_event (Supervisor.Finished { Supervisor.entry; outcome = None });
    {
      scenario = scenario.name;
      experiment = e.Experiments.Common.id;
      entry;
      injected_evals = evals;
      injected_faults = faults;
      contained;
      note;
    }
  in
  let verdicts =
    List.concat_map (fun s -> List.map (one s) experiments) scenarios
  in
  persist ();
  let manifest_valid =
    match Manifest.of_json (Manifest.to_json !manifest) with
    | Ok m -> List.length (Manifest.entries m) = List.length verdicts
    | Error _ -> false
  in
  {
    verdicts;
    manifest = !manifest;
    ok = manifest_valid && List.for_all (fun v -> v.contained) verdicts;
  }

let verdict_table report =
  let table =
    Report.Table.make
      ~columns:
        [
          "scenario"; "experiment"; "status"; "duration s"; "evals"; "faults";
          "contained"; "note";
        ]
  in
  List.iter
    (fun v ->
      Report.Table.add_row table
        [
          v.scenario;
          v.experiment;
          Manifest.status_to_string v.entry.Manifest.status;
          Printf.sprintf "%.2f" v.entry.Manifest.duration_s;
          string_of_int v.injected_evals;
          string_of_int v.injected_faults;
          string_of_bool v.contained;
          v.note;
        ])
    report.verdicts;
  table
