(** The supervised experiment lifecycle.

    [supervise] drives one experiment through
    {!Experiments.Common.run} under a {!Watchdog} guard, converts
    whatever happens into a {!Manifest.entry} — completion (with shape
    checks and degraded-sample counts), a contained crash
    ([Failed {exn; backtrace}]), a blown deadline, or an exhausted
    evaluation budget — and optionally retries retryable failures with
    exponential backoff. [sweep] folds that over a list of experiments,
    rewriting the manifest atomically after each one and skipping
    entries already recorded successful when resuming.

    This module is the repo's one sanctioned exception-containment
    boundary (sublint NO-SWALLOW exempts it): a crash in one
    experiment becomes a manifest record and the sweep continues.
    [Sys.Break] (ctrl-C) and [Stack_overflow]/[Out_of_memory] are
    re-raised — the operator's interrupt and genuine resource
    exhaustion must stop the sweep. *)

type retry = {
  max_attempts : int;  (** total tries, including the first (>= 1) *)
  backoff_s : float;  (** sleep before the first retry *)
  multiplier : float;  (** backoff growth per further retry *)
  jitter : float;
      (** symmetric multiplicative spread in [0, 1]: each delay is
          scaled by a factor uniform in [1 - jitter, 1 + jitter], drawn
          from the caller's explicit {!Numerics.Rng} stream. Zero (the
          default) keeps the historical deterministic schedule. *)
}

val no_retry : retry
(** [max_attempts = 1]: one try, no sleeping. *)

val retry :
  ?max_attempts:int -> ?backoff_s:float -> ?multiplier:float -> ?jitter:float ->
  unit -> retry
(** Defaults: 1 attempt, 0.5s initial backoff, doubling, no jitter.
    Raises [Invalid_argument] on a non-positive attempt count, negative
    backoff, multiplier < 1 or jitter outside [0, 1]. *)

val backoff_delay : ?rng:Numerics.Rng.t -> retry -> attempt:int -> float
(** The sleep before the retry that follows failed attempt [attempt]
    (1-based): [backoff_s * multiplier^(attempt - 1)], jittered by the
    [rng] stream when both [rng] and a positive [jitter] are present.
    Jitter de-synchronizes concurrent retriers (the thundering-herd
    problem when many requests fail together and all come back at
    exactly the same instant) while remaining a pure function of the
    Rng state, so a seeded replay reproduces the exact delays. Without
    [rng] the schedule is the deterministic exponential. Raises
    [Invalid_argument] when [attempt < 1]. *)

val retryable : exn -> bool
(** Failures worth re-trying: the typed solver taxonomy
    ({!Numerics.Robust.Solver_error} and the legacy
    [No_bracket]/[No_convergence] leaf exceptions) — transient
    numerical trouble. Deadline/budget exhaustion and arbitrary crashes
    (caller bugs) are not retryable. *)

type result_ = {
  entry : Manifest.entry;
  outcome : Experiments.Common.outcome option;
      (** present only when the experiment completed (its tables can
          still be printed/saved); [None] for contained failures *)
}

val supervise :
  ?limits:Watchdog.limits ->
  ?retry:retry ->
  ?rng:Numerics.Rng.t ->
  ?sleep:(float -> unit) ->
  Experiments.Common.t ->
  result_
(** Run one experiment to a manifest entry. [sleep] (default
    [Unix.sleepf]) is injectable so tests can observe backoff without
    waiting; [rng] feeds {!backoff_delay}'s jitter. Never raises for
    anything the experiment does (see the containment contract
    above). *)

type event =
  | Started of { id : string; attempt : int }
  | Retrying of { id : string; next_attempt : int; backoff_s : float; reason : string }
  | Skipped of { id : string }  (** resume found a successful entry *)
  | Finished of result_

type summary = {
  manifest : Manifest.t;
  ran : int;  (** experiments actually executed *)
  skipped : int;  (** resume skips *)
  failed : int;  (** entries not {!Manifest.successful} *)
}

val sweep :
  ?limits:Watchdog.limits ->
  ?retry:retry ->
  ?rng:Numerics.Rng.t ->
  ?sleep:(float -> unit) ->
  ?manifest_path:string ->
  ?resume:bool ->
  ?on_warning:(string -> unit) ->
  ?on_event:(event -> unit) ->
  Experiments.Common.t list ->
  (summary, string) result
(** Supervise each experiment in order. With [manifest_path] the
    manifest is saved atomically after every experiment; with [resume]
    (requires [manifest_path]) the existing manifest is loaded first
    and {!Manifest.successful} entries are skipped, keeping their
    records. [Error] only when an existing manifest cannot be parsed —
    experiment failures are data, not errors. With [on_warning] the
    resume load is {!Manifest.load_lenient}: a torn or truncated
    manifest is salvaged entry by entry (each drop reported through
    [on_warning]) instead of failing the resume. [on_event] receives
    progress (the CLI prints from it; the library never touches
    stdout). *)
