(** The supervised experiment lifecycle.

    [supervise] drives one experiment through
    {!Experiments.Common.run} under a {!Watchdog} guard, converts
    whatever happens into a {!Manifest.entry} — completion (with shape
    checks and degraded-sample counts), a contained crash
    ([Failed {exn; backtrace}]), a blown deadline, or an exhausted
    evaluation budget — and optionally retries retryable failures with
    exponential backoff. [sweep] folds that over a list of experiments,
    rewriting the manifest atomically after each one and skipping
    entries already recorded successful when resuming.

    This module is the repo's one sanctioned exception-containment
    boundary (sublint NO-SWALLOW exempts it): a crash in one
    experiment becomes a manifest record and the sweep continues.
    [Sys.Break] (ctrl-C) and [Stack_overflow]/[Out_of_memory] are
    re-raised — the operator's interrupt and genuine resource
    exhaustion must stop the sweep. *)

type retry = {
  max_attempts : int;  (** total tries, including the first (>= 1) *)
  backoff_s : float;  (** sleep before the first retry *)
  multiplier : float;  (** backoff growth per further retry *)
}

val no_retry : retry
(** [max_attempts = 1]: one try, no sleeping. *)

val retry : ?max_attempts:int -> ?backoff_s:float -> ?multiplier:float -> unit -> retry
(** Defaults: 1 attempt, 0.5s initial backoff, doubling. Raises
    [Invalid_argument] on a non-positive attempt count, negative
    backoff or multiplier < 1. *)

val retryable : exn -> bool
(** Failures worth re-trying: the typed solver taxonomy
    ({!Numerics.Robust.Solver_error} and the legacy
    [No_bracket]/[No_convergence] leaf exceptions) — transient
    numerical trouble. Deadline/budget exhaustion and arbitrary crashes
    (caller bugs) are not retryable. *)

type result_ = {
  entry : Manifest.entry;
  outcome : Experiments.Common.outcome option;
      (** present only when the experiment completed (its tables can
          still be printed/saved); [None] for contained failures *)
}

val supervise :
  ?limits:Watchdog.limits ->
  ?retry:retry ->
  ?sleep:(float -> unit) ->
  Experiments.Common.t ->
  result_
(** Run one experiment to a manifest entry. [sleep] (default
    [Unix.sleepf]) is injectable so tests can observe backoff without
    waiting. Never raises for anything the experiment does (see the
    containment contract above). *)

type event =
  | Started of { id : string; attempt : int }
  | Retrying of { id : string; next_attempt : int; backoff_s : float; reason : string }
  | Skipped of { id : string }  (** resume found a successful entry *)
  | Finished of result_

type summary = {
  manifest : Manifest.t;
  ran : int;  (** experiments actually executed *)
  skipped : int;  (** resume skips *)
  failed : int;  (** entries not {!Manifest.successful} *)
}

val sweep :
  ?limits:Watchdog.limits ->
  ?retry:retry ->
  ?sleep:(float -> unit) ->
  ?manifest_path:string ->
  ?resume:bool ->
  ?on_event:(event -> unit) ->
  Experiments.Common.t list ->
  (summary, string) result
(** Supervise each experiment in order. With [manifest_path] the
    manifest is saved atomically after every experiment; with [resume]
    (requires [manifest_path]) the existing manifest is loaded first
    and {!Manifest.successful} entries are skipped, keeping their
    records. [Error] only when an existing manifest cannot be parsed —
    experiment failures are data, not errors. [on_event] receives
    progress (the CLI prints from it; the library never touches
    stdout). *)
