(** Terminal line charts, for eyeballing figure shapes without leaving
    the shell. *)

type config = {
  width : int;  (** plot area columns (default 64) *)
  height : int;  (** plot area rows (default 16) *)
  y_min : float option;  (** fixed axis override *)
  y_max : float option;
}

val default : config

val render : ?config:config -> Series.t list -> string
(** Overlay the series on one canvas; each series is drawn with its own
    glyph ([*], [+], [o], [x], [#], ...) and listed in the legend. All
    series must be non-empty; the x ranges may differ. *)

val print : ?config:config -> ?out:out_channel -> Series.t list -> unit
(** [render] to [out] (default [stdout]); callers in library code pass
    their own channel so output stays caller-controlled. *)
