(** CSV reading and writing (the subset experiments need). *)

exception Malformed of string
(** Raised by {!parse_string}/{!read} on input with no well-defined
    parse (currently: an unterminated quoted cell); the message names
    the row and byte offset where the offending quote opened. *)

val write : path:string -> Table.t -> unit
(** Write a table as CSV, creating parent directories as needed. The
    write is atomic ({!Fsio.write_atomic}): a crash mid-write leaves
    any previous file at [path] intact. Raises [Sys_error] on I/O
    failure. *)

val parse_string : string -> string list list
(** Parse CSV text into rows of cells. Quote semantics, fully defined:

    - a ["\""] {e opens} quoted mode only as the first character of a
      cell; anywhere else it is kept as a literal character, so
      [a"b",c] parses to the cell [a"b"] followed by [c];
    - inside quotes, [""] is an escaped quote, and commas/newlines are
      cell content;
    - after the closing quote the cell continues in unquoted mode:
      ["ab"x,y] parses as [abx] then [y] (lenient, matching common
      spreadsheet writers);
    - an unterminated quote raises {!Malformed} rather than silently
      accepting a truncated (possibly half-written) file.

    [\r] is dropped everywhere outside quotes (CRLF tolerance); a
    trailing newline does not produce an empty final row. *)

val read : path:string -> string list list
(** {!parse_string} on the file's contents. Raises {!Malformed} or
    [Sys_error]. *)
