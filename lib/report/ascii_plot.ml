type config = { width : int; height : int; y_min : float option; y_max : float option }

let default = { width = 64; height = 16; y_min = None; y_max = None }

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&'; '='; '~' |]

let render ?(config = default) series =
  if series = [] then invalid_arg "Ascii_plot.render: no series";
  if config.width < 8 || config.height < 4 then
    invalid_arg "Ascii_plot.render: canvas too small";
  let x_min =
    List.fold_left (fun acc s -> Float.min acc s.Series.xs.(0)) infinity series
  in
  let x_max =
    List.fold_left
      (fun acc s -> Float.max acc s.Series.xs.(Array.length s.Series.xs - 1))
      neg_infinity series
  in
  let data_y_min =
    List.fold_left
      (fun acc s -> Array.fold_left Float.min acc s.Series.ys)
      infinity series
  in
  let data_y_max =
    List.fold_left
      (fun acc s -> Array.fold_left Float.max acc s.Series.ys)
      neg_infinity series
  in
  let y_min = match config.y_min with Some y -> y | None -> data_y_min in
  let y_max = match config.y_max with Some y -> y | None -> data_y_max in
  let y_max = if y_max <= y_min then y_min +. 1. else y_max in
  let x_span = if x_max <= x_min then 1. else x_max -. x_min in
  let canvas = Array.make_matrix config.height config.width ' ' in
  let plot_point glyph x y =
    let col =
      int_of_float ((x -. x_min) /. x_span *. float_of_int (config.width - 1) +. 0.5)
    in
    let row_from_bottom =
      int_of_float ((y -. y_min) /. (y_max -. y_min) *. float_of_int (config.height - 1) +. 0.5)
    in
    if col >= 0 && col < config.width && row_from_bottom >= 0 && row_from_bottom < config.height
    then canvas.(config.height - 1 - row_from_bottom).(col) <- glyph
  in
  List.iteri
    (fun k s ->
      let glyph = glyphs.(k mod Array.length glyphs) in
      (* densify: sample each series at every column for continuous lines *)
      for col = 0 to config.width - 1 do
        let x = x_min +. (x_span *. float_of_int col /. float_of_int (config.width - 1)) in
        let sx0 = s.Series.xs.(0) and sxn = s.Series.xs.(Array.length s.Series.xs - 1) in
        if x >= sx0 -. 1e-12 && x <= sxn +. 1e-12 then plot_point glyph x (Series.y_at s x)
      done)
    series;
  let buf = Buffer.create (config.width * config.height * 2) in
  Buffer.add_string buf (Printf.sprintf "%12.4g +" y_max);
  Buffer.add_string buf (String.make config.width '-');
  Buffer.add_char buf '\n';
  Array.iter
    (fun row ->
      Buffer.add_string buf (String.make 13 ' ');
      Buffer.add_char buf '|';
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    canvas;
  Buffer.add_string buf (Printf.sprintf "%12.4g +" y_min);
  Buffer.add_string buf (String.make config.width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%14s%-12.4g%*s%12.4g\n" "" x_min (config.width - 24) "" x_max);
  List.iteri
    (fun k s ->
      Buffer.add_string buf
        (Printf.sprintf "%14s%c = %s\n" "" glyphs.(k mod Array.length glyphs) s.Series.name))
    series;
  Buffer.contents buf

let print ?config ?(out = stdout) series = output_string out (render ?config series)
