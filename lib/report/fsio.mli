(** Filesystem primitives shared by every artifact writer.

    Historically [Report.Csv], [Obs.Export] and [Lint.Baseline] each
    hand-rolled a [mkdir_p] (two of them silently swallowing
    [Sys_error]) and wrote straight to the final path with [open_out],
    so a crash mid-write left a truncated CSV/JSON/baseline behind.
    This module is the one sanctioned implementation of both
    operations: directory creation that reports its errors, and
    all-or-nothing file replacement via a temp file in the same
    directory followed by [Sys.rename] (atomic on POSIX filesystems).

    Single-writer assumption: the temp path is the deterministic
    [path ^ ".tmp"], so two processes racing to write the same [path]
    can interleave — crash safety, not cross-process locking, is the
    guarantee. A stale [.tmp] left by an earlier crash is simply
    overwritten (and renamed away) by the next successful write. *)

val mkdir_p : string -> (unit, string) result
(** Create a directory and any missing parents ([0o755]).
    [Ok ()] when the directory already exists; [Error msg] when
    creation fails (permission, a non-directory in the way, ...) —
    never silently ignored. [""], ["."] and ["/"] are [Ok] no-ops. *)

val write_atomic :
  ?durable:bool -> path:string -> (out_channel -> unit) -> (unit, string) result
(** [write_atomic ~path writer] creates the parent directory, streams
    [writer] into [path ^ ".tmp"], flushes + closes, then renames over
    [path]: readers observe either the complete old content or the
    complete new content, never a prefix. [Error msg] on any
    [Sys_error] along the way. If [writer] itself raises, the
    exception propagates unchanged, the temp file is left on disk as
    evidence, and [path] is untouched.

    With [durable] (default false) the temp file is [fsync]ed before
    the rename and the containing directory is [fsync]ed after it, so
    the replacement survives power loss, not just process crash —
    without it, a journaling filesystem may commit the rename before
    the data blocks, leaving a complete-looking but empty or truncated
    file after a crash+reboot. Durability costs two disk barriers per
    write; tests and non-critical artifacts should leave it off. *)

val write_atomic_exn : ?durable:bool -> path:string -> (out_channel -> unit) -> unit
(** Same, raising [Sys_error] instead of returning [Error] — for call
    sites whose historical contract is exception-based. *)

val fsync_channel : out_channel -> (unit, string) result
(** Flush the channel's buffer and [fsync] its descriptor: the
    append-side durability primitive for journal writers that keep a
    channel open across records. *)

val fsync_dir : string -> (unit, string) result
(** [fsync] a directory, making a just-created or just-renamed entry
    in it durable. [""] syncs ["."] . *)
