exception Malformed of string

let write ~path table =
  Fsio.write_atomic_exn ~path (fun oc -> output_string oc (Table.to_csv_string table))

(* row number (1-based) of an offset, for error messages *)
let row_of text pos =
  let r = ref 1 in
  for i = 0 to Stdlib.min pos (String.length text) - 1 do
    if text.[i] = '\n' then incr r
  done;
  !r

let parse_string text =
  let rows = ref [] in
  let row = ref [] in
  let cell = Buffer.create 32 in
  let push_cell () =
    row := Buffer.contents cell :: !row;
    Buffer.clear cell
  in
  let push_row () =
    push_cell ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let n = String.length text in
  let rec plain i =
    if i >= n then (if Buffer.length cell > 0 || !row <> [] then push_row ())
    else
      match text.[i] with
      | ',' ->
        push_cell ();
        plain (i + 1)
      | '\n' ->
        push_row ();
        plain (i + 1)
      | '\r' -> plain (i + 1)
      | '"' when Buffer.length cell = 0 -> quoted ~opened_at:i (i + 1)
      | c ->
        Buffer.add_char cell c;
        plain (i + 1)
  and quoted ~opened_at i =
    if i >= n then
      raise
        (Malformed
           (Printf.sprintf "unterminated quote opened at row %d (offset %d)"
              (row_of text opened_at) opened_at))
    else
      match text.[i] with
      | '"' when i + 1 < n && text.[i + 1] = '"' ->
        Buffer.add_char cell '"';
        quoted ~opened_at (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char cell c;
        quoted ~opened_at (i + 1)
  in
  plain 0;
  List.rev !rows

let read ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))
