let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then Ok ()
  else
    match mkdir_p (Filename.dirname dir) with
    | Error _ as e -> e
    | Ok () -> (
      match Sys.mkdir dir 0o755 with
      | () -> Ok ()
      | exception Sys_error _ when Sys.file_exists dir ->
        (* lost a creation race: the directory is there, which is all
           the caller asked for *)
        Ok ()
      | exception Sys_error msg -> Error msg)

let temp_of path = path ^ ".tmp"

(* flush the channel's buffered bytes to the kernel, then force the
   kernel to push them to the device: rename-atomicity alone survives a
   process crash but not a power loss, where the rename can hit the
   journal before the data blocks do *)
let fsync_channel oc =
  match
    flush oc;
    Unix.fsync (Unix.descr_of_out_channel oc)
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

let fsync_dir dir =
  let dir = if dir = "" then "." else dir in
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.fsync fd with
        | () -> Ok ()
        | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err))

let write_atomic ?(durable = false) ~path writer =
  match mkdir_p (Filename.dirname path) with
  | Error _ as e -> e
  | Ok () -> (
    let tmp = temp_of path in
    match open_out_bin tmp with
    | exception Sys_error msg -> Error msg
    | oc -> (
      let renamed = ref false in
      Fun.protect
        ~finally:(fun () ->
          (* writer crash: close what we can, keep the temp file as
             evidence, leave [path] untouched *)
          if not !renamed then close_out_noerr oc)
        (fun () ->
          writer oc;
          let synced = if durable then fsync_channel oc else Ok () in
          match synced with
          | Error _ as e -> e
          | Ok () -> (
            match
              close_out oc;
              Sys.rename tmp path
            with
            | () ->
              renamed := true;
              if durable then fsync_dir (Filename.dirname path) else Ok ()
            | exception Sys_error msg -> Error msg))))

let write_atomic_exn ?durable ~path writer =
  match write_atomic ?durable ~path writer with
  | Ok () -> ()
  | Error msg -> raise (Sys_error msg)
