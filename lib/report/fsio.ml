let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then Ok ()
  else
    match mkdir_p (Filename.dirname dir) with
    | Error _ as e -> e
    | Ok () -> (
      match Sys.mkdir dir 0o755 with
      | () -> Ok ()
      | exception Sys_error _ when Sys.file_exists dir ->
        (* lost a creation race: the directory is there, which is all
           the caller asked for *)
        Ok ()
      | exception Sys_error msg -> Error msg)

let temp_of path = path ^ ".tmp"

let write_atomic ~path writer =
  match mkdir_p (Filename.dirname path) with
  | Error _ as e -> e
  | Ok () -> (
    let tmp = temp_of path in
    match open_out_bin tmp with
    | exception Sys_error msg -> Error msg
    | oc -> (
      let renamed = ref false in
      Fun.protect
        ~finally:(fun () ->
          (* writer crash: close what we can, keep the temp file as
             evidence, leave [path] untouched *)
          if not !renamed then close_out_noerr oc)
        (fun () ->
          writer oc;
          match
            close_out oc;
            Sys.rename tmp path
          with
          | () ->
            renamed := true;
            Ok ()
          | exception Sys_error msg -> Error msg)))

let write_atomic_exn ~path writer =
  match write_atomic ~path writer with
  | Ok () -> ()
  | Error msg -> raise (Sys_error msg)
