(** Loading CP populations from CSV files.

    Format: a header `name,alpha,beta,value[,m0,l0]` followed by one row
    per CP; all CPs use the paper's exponential families (exactly what
    {!Econ.Calibrate} produces from market data).

    Parsing is [Result]-typed: malformed input (bad header, short rows,
    unparsable or non-finite floats, out-of-domain parameters,
    duplicate CP names, CSV-level quote damage) comes back as a
    structured {!error} locating the offending row and field — never an
    exception, so a bad [--market] file can be reported and exited on
    cleanly. *)

type error = {
  path : string;  (** the file (or pseudo-path) being parsed *)
  row : int option;  (** 1-based CSV row, header = 1; [None] = whole file *)
  field : string option;  (** column name, when one is implicated *)
  message : string;
}

val error_to_string : error -> string
(** ["data/m.csv, row 3, field alpha: alpha must be positive, got -2"] *)

val cps_of_csv : string -> (Econ.Cp.t array, error) result
(** Load and validate a CP population. Domain rules: [alpha > 0],
    [beta > 0], [value >= 0], [m0 > 0], [l0 > 0], every float finite,
    and CP names pairwise distinct (empty names rejected). Raises
    [Sys_error] only if the file cannot be read at all. *)

val cps_of_string : path:string -> string -> (Econ.Cp.t array, error) result
(** Same, from CSV text already in memory ([path] only labels
    errors). *)

val json_of_cps : Econ.Cp.t array -> Obs.Json.t
(** The JSON wire form used by the solve daemon: an array of
    [{name, alpha, beta, value, m0, l0}] objects, same columns as the
    CSV. Raises [Invalid_argument] if a CP uses a non-exponential
    family. *)

val cps_of_json : path:string -> Obs.Json.t -> (Econ.Cp.t array, error) result
(** Inverse of {!json_of_cps}, applying exactly the CSV domain rules
    (positivity, finiteness, distinct non-empty names, non-empty
    population). [path] labels errors (e.g. the connection name);
    [row] in errors is the 1-based array index. *)

val write_cps : path:string -> Econ.Cp.t array -> unit
(** Write exponential-family CPs back out in the same format
    (atomically, via {!Report.Csv.write}). Raises [Invalid_argument]
    if a CP uses a non-exponential family. *)
