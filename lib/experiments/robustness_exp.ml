open Numerics
open Subsidization

let default_samples = 40

(* Corrupt a sampled system so its gap function evaluates to NaN
   everywhere: the record update bypasses [System.make]'s validation on
   purpose, standing in for the boundary/degenerate parameter regions
   where real sweeps lose individual markets. *)
let poison_system (sys : System.t) = { sys with System.capacity = Float.nan }

let run_samples ?(samples = default_samples) ?(poison = []) () =
  (* one pre-split child generator per sample: every draw a sample
     makes comes from its own stream, so the results are bit-identical
     whatever order — or domain — the samples are evaluated in *)
  let rngs = Rng.split_n (Rng.create 1406_2516L) samples in
  let eval sample =
    let rng = rngs.(sample - 1) in
    let sys = Scenario.random_system rng in
    let sys = if List.mem sample poison then poison_system sys else sys in
    let p = Rng.uniform rng ~lo:0.3 ~hi:1.2 in
    let q = Rng.uniform rng ~lo:0.2 ~hi:1.0 in
    Common.try_sample ~label:"random market" ~sample (fun () ->
        let game = Subsidy_game.make sys ~price:p ~cap:q in
        let eq = Nash.solve game in
        let props_kkt = eq.Nash.converged && eq.Nash.kkt_residual < 1e-5 in
        let props_unique = Nash.multistart_spread ~starts:3 rng game < 1e-6 in
        (* Corollary 1: relax the cap, revenue and utilization move up *)
        let tighter = Nash.solve (Subsidy_game.make sys ~price:p ~cap:(q /. 2.)) in
        let props_c1r =
          p *. eq.Nash.state.System.aggregate
          >= (p *. tighter.Nash.state.System.aggregate) -. 1e-6
        in
        let props_c1p =
          eq.Nash.state.System.phi >= tighter.Nash.state.System.phi -. 1e-8
        in
        (* Theorem 5: bump a random CP's value *)
        let i = Rng.int rng (System.n_cps sys) in
        let cps = Array.copy sys.System.cps in
        cps.(i) <- { cps.(i) with Econ.Cp.value = cps.(i).Econ.Cp.value +. 0.3 };
        let richer = System.make ~cps ~capacity:sys.System.capacity () in
        let bumped = Nash.solve (Subsidy_game.make richer ~price:p ~cap:q) in
        let props_t5 = bumped.Nash.subsidies.(i) >= eq.Nash.subsidies.(i) -. 1e-6 in
        (* Corollary 1's stability condition *)
        let props_stab = Nash.off_diagonal_monotone game ~subsidies:eq.Nash.subsidies in
        (props_kkt, props_unique, props_c1r, props_c1p, props_t5, props_stab))
  in
  let outcomes =
    Parallel.Pool.map (Parallel.Runtime.pool ()) ~chunk:5 eval
      (Array.init samples (fun i -> i + 1))
  in
  let kkt_ok = ref 0 in
  let unique_ok = ref 0 in
  let corollary1_revenue_ok = ref 0 in
  let corollary1_phi_ok = ref 0 in
  let theorem5_ok = ref 0 in
  let stability_ok = ref 0 in
  let solved = ref 0 in
  let degraded = ref [] in
  Array.iter
    (function
      | Ok (p_kkt, p_unique, p_c1r, p_c1p, p_t5, p_stab) ->
        incr solved;
        if p_kkt then incr kkt_ok;
        if p_unique then incr unique_ok;
        if p_c1r then incr corollary1_revenue_ok;
        if p_c1p then incr corollary1_phi_ok;
        if p_t5 then incr theorem5_ok;
        if p_stab then incr stability_ok
      | Error d -> degraded := d :: !degraded)
    outcomes;
  let degraded = List.rev !degraded in
  let n_degraded = List.length degraded in
  let table = Report.Table.make ~columns:[ "property"; "holds on"; "fraction" ] in
  let fraction label count =
    Report.Table.add_row table
      [
        label;
        Printf.sprintf "%d/%d" count !solved;
        (if !solved = 0 then "n/a"
         else Printf.sprintf "%.2f" (float_of_int count /. float_of_int !solved));
      ];
    if !solved = 0 then 0. else float_of_int count /. float_of_int !solved
  in
  let f_kkt = fraction "Nash converged with small KKT residual (Thm 3)" !kkt_ok in
  let f_unique = fraction "multistart equilibria coincide (Thm 4)" !unique_ok in
  let f_c1r = fraction "revenue nondecreasing in q (Cor 1)" !corollary1_revenue_ok in
  let f_c1p = fraction "utilization nondecreasing in q (Cor 1)" !corollary1_phi_ok in
  let f_t5 = fraction "subsidy nondecreasing in own value (Thm 5)" !theorem5_ok in
  let f_stab = fraction "off-diagonal monotonicity (Cor 1 condition)" !stability_ok in
  Report.Table.add_row table
    [
      "degraded samples (solver failure, recorded not raised)";
      Printf.sprintf "%d/%d" n_degraded samples;
      Printf.sprintf "%.2f" (float_of_int n_degraded /. float_of_int samples);
    ];
  let checks =
    [
      Common.check ~name:"robustness.kkt" (f_kkt = 1.) "every solved market solves cleanly";
      Common.check ~name:"robustness.uniqueness" (f_unique = 1.)
        "uniqueness held on every solved sample";
      Common.check ~name:"robustness.corollary1" (f_c1r = 1. && f_c1p = 1.)
        "deregulation monotonicity held on every solved sample";
      Common.check ~name:"robustness.theorem5" (f_t5 = 1.)
        "profitability monotonicity held on every solved sample";
      Common.check ~name:"robustness.stability-vs-monotonicity"
        (f_c1r = 1. && f_c1p = 1.)
        (Printf.sprintf
           "Corollary-1 monotonicity held on every sample although the \
            sufficient Leontief condition held on only %.0f%% - the \
            conclusion is empirically more robust than its hypothesis"
           (100. *. f_stab));
      Common.check ~name:"robustness.degradation"
        (n_degraded = List.length poison)
        (Printf.sprintf
           "%d degraded sample(s) match the %d deliberately poisoned market(s); \
            the sweep completed all %d samples"
           n_degraded (List.length poison) samples);
    ]
  in
  let tables =
    ("fractions", table)
    ::
    (if degraded = [] then [] else [ ("degraded", Common.degraded_table degraded) ])
  in
  ( {
      Common.id = "robustness";
      title =
        Printf.sprintf
          "Monte-Carlo robustness of Theorems 3-5 and Corollary 1 (%d random markets)"
          samples;
      tables;
      plots = [];
      shape_checks = checks;
    },
    degraded )

let run () : Common.outcome = fst (run_samples ())

let experiment =
  {
    Common.id = "robustness";
    title = "Randomized-market robustness study (extension)";
    paper_ref = "beyond the styled evaluation of Section 5.2";
    run;
  }
