(** The shared equilibrium grid behind Figures 7-11: Nash equilibria of
    the 8-CP Section-5 population over every (policy, price) pair.
    Computed once per grid resolution and memoized, because four figures
    read the same sweep. *)

type shared_stats = {
  root_calls : int;
  objective_evaluations : float;
  deriv_ad : float;  (** seeded AD passes *)
  deriv_fd : float;  (** finite-difference estimates *)
}
(** Solver work spent computing the memoized sweep (counter deltas
    around the one cold computation). *)

val consumers : string list
(** Figure ids that read the shared sweep ([fig7] … [fig11]): the bench
    harness attributes {!shared_stats} to each of them, because their
    own per-figure counters only show the cost on whichever ran
    first. *)

val get :
  ?points:int ->
  unit ->
  float array * float array * Subsidization.Policy.point array array
(** [(q_levels, prices, points)] with [points.(qi).(pi)] the market
    point at cap [q_levels.(qi)] and price [prices.(pi)].
    [points] defaults to the standard 41-point grid. *)

val shared_stats : ?points:int -> unit -> shared_stats option
(** The sweep's captured solver work, once some consumer has forced it
    ([None] before the first {!get} at that resolution). *)

val cp_names : unit -> string array
(** Panel labels in the paper's order. *)
