type error = {
  path : string;
  row : int option;
  field : string option;
  message : string;
}

let error_to_string e =
  String.concat ""
    [
      e.path;
      (match e.row with None -> "" | Some r -> Printf.sprintf ", row %d" r);
      (match e.field with None -> "" | Some f -> ", field " ^ f);
      ": ";
      e.message;
    ]

let fail ~path ?row ?field fmt =
  Printf.ksprintf (fun message -> Error { path; row; field; message }) fmt

let ( let* ) = Result.bind

let parse_float ~path ~row field cell =
  match float_of_string_opt (String.trim cell) with
  | Some v when Float.is_finite v -> Ok v
  | Some v -> fail ~path ~row ~field "%s must be finite, got %g" field v
  | None -> fail ~path ~row ~field "bad %s value %S" field cell

(* the CP constructors re-check these with [Invalid_argument]; checking
   here first keeps caller mistakes as data, not exceptions *)
let check_domain ~path ~row field ~lo_exclusive v =
  if lo_exclusive && v <= 0. then
    fail ~path ~row ~field "%s must be positive, got %g" field v
  else if (not lo_exclusive) && v < 0. then
    fail ~path ~row ~field "%s must be non-negative, got %g" field v
  else Ok v

let positive ~path ~row field v = check_domain ~path ~row field ~lo_exclusive:true v
let non_negative ~path ~row field v = check_domain ~path ~row field ~lo_exclusive:false v

let parse_positive ~path ~row field cell =
  let* v = parse_float ~path ~row field cell in
  positive ~path ~row field v

let parse_row ~path ~row cells =
  match cells with
  | name :: alpha :: beta :: value :: rest ->
    let name = String.trim name in
    let* () = if name = "" then fail ~path ~row "empty CP name" else Ok () in
    let opt k field =
      match List.nth_opt rest k with
      | None -> Ok None
      | Some cell -> Result.map Option.some (parse_positive ~path ~row field cell)
    in
    let* alpha = parse_positive ~path ~row "alpha" alpha in
    let* beta = parse_positive ~path ~row "beta" beta in
    let* value = parse_float ~path ~row "value" value in
    let* value = non_negative ~path ~row "value" value in
    let* m0 = opt 0 "m0" in
    let* l0 = opt 1 "l0" in
    Ok (Econ.Cp.exponential ~name ?m0 ?l0 ~alpha ~beta ~value ())
  | _ ->
    fail ~path ~row "row with %d cell(s); need name,alpha,beta,value[,m0,l0]"
      (List.length cells)

let check_distinct_names ~path names =
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun acc (name, row) ->
      let* () = acc in
      match Hashtbl.find_opt seen name with
      | Some first_row ->
        fail ~path ~row ~field:"name" "duplicate CP name %S (first used at row %d)"
          name first_row
      | None ->
        Hashtbl.add seen name row;
        Ok ())
    (Ok ()) names

let cps_of_rows ~path rows =
  match rows with
  | [] | [ _ ] -> fail ~path "no CP rows"
  | header :: rows ->
    let expected = [ "name"; "alpha"; "beta"; "value" ] in
    let prefix = List.filteri (fun i _ -> i < 4) (List.map String.trim header) in
    let* () =
      if prefix <> expected then
        fail ~path ~row:1 "header must start with %s" (String.concat "," expected)
      else Ok ()
    in
    (* header is row 1, data rows start at 2 *)
    let* cps =
      List.fold_left
        (fun acc (row, cells) ->
          let* acc = acc in
          let* cp = parse_row ~path ~row cells in
          Ok ((cp, row) :: acc))
        (Ok [])
        (List.mapi (fun i cells -> (i + 2, cells)) rows)
    in
    let cps = List.rev cps in
    let* () =
      check_distinct_names ~path (List.map (fun (cp, row) -> (cp.Econ.Cp.name, row)) cps)
    in
    Ok (Array.of_list (List.map fst cps))

let parse_csv ~path text =
  match Report.Csv.parse_string text with
  | rows -> cps_of_rows ~path rows
  | exception Report.Csv.Malformed msg -> fail ~path "malformed CSV: %s" msg

let cps_of_string ~path text = parse_csv ~path text

let cps_of_csv path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_csv ~path text

(* ------------------------------------------------------------------ *)
(* JSON wire form: the same columns and domain rules as the CSV, as an
   array of objects, for requests that travel over the solve daemon's
   socket instead of the filesystem *)

let json_of_cps cps =
  Obs.Json.Arr
    (Array.to_list
       (Array.map
          (fun cp ->
            match
              ( Econ.Demand.spec cp.Econ.Cp.demand,
                Econ.Throughput.spec cp.Econ.Cp.throughput )
            with
            | ( Econ.Demand.Exponential { m0; alpha },
                Econ.Throughput.Exponential { l0; beta } ) ->
              Obs.Json.Obj
                [
                  ("name", Obs.Json.Str cp.Econ.Cp.name);
                  ("alpha", Obs.Json.Num alpha);
                  ("beta", Obs.Json.Num beta);
                  ("value", Obs.Json.Num cp.Econ.Cp.value);
                  ("m0", Obs.Json.Num m0);
                  ("l0", Obs.Json.Num l0);
                ]
            | _, _ ->
              invalid_arg
                (Printf.sprintf "Market_io.json_of_cps: %s is not exponential"
                   cp.Econ.Cp.name))
          cps))

let json_field ~path ~row field json =
  match Obs.Json.member field json with
  | None -> Ok None
  | Some v -> (
    match Obs.Json.to_float v with
    | Some f when Float.is_finite f -> Ok (Some f)
    | Some f -> fail ~path ~row ~field "%s must be finite, got %g" field f
    | None -> fail ~path ~row ~field "%s is not a number" field)

let json_required ~path ~row field json =
  let* v = json_field ~path ~row field json in
  match v with
  | Some f -> Ok f
  | None -> fail ~path ~row ~field "missing %s" field

let cp_of_json ~path ~row json =
  let* name =
    match Obs.Json.member "name" json with
    | Some (Obs.Json.Str s) when String.trim s <> "" -> Ok (String.trim s)
    | Some (Obs.Json.Str _) -> fail ~path ~row "empty CP name"
    | Some _ -> fail ~path ~row ~field:"name" "name is not a string"
    | None -> fail ~path ~row ~field:"name" "missing name"
  in
  let* alpha = json_required ~path ~row "alpha" json in
  let* alpha = positive ~path ~row "alpha" alpha in
  let* beta = json_required ~path ~row "beta" json in
  let* beta = positive ~path ~row "beta" beta in
  let* value = json_required ~path ~row "value" json in
  let* value = non_negative ~path ~row "value" value in
  let opt field =
    let* v = json_field ~path ~row field json in
    match v with
    | None -> Ok None
    | Some f -> Result.map Option.some (positive ~path ~row field f)
  in
  let* m0 = opt "m0" in
  let* l0 = opt "l0" in
  Ok (Econ.Cp.exponential ~name ?m0 ?l0 ~alpha ~beta ~value ())

let cps_of_json ~path json =
  match Obs.Json.to_list json with
  | None -> fail ~path "cps is not an array"
  | Some [] -> fail ~path "no CP rows"
  | Some items ->
    let* cps =
      List.fold_left
        (fun acc (row, item) ->
          let* acc = acc in
          let* cp = cp_of_json ~path ~row item in
          Ok ((cp, row) :: acc))
        (Ok [])
        (List.mapi (fun i item -> (i + 1, item)) items)
    in
    let cps = List.rev cps in
    let* () =
      check_distinct_names ~path (List.map (fun (cp, row) -> (cp.Econ.Cp.name, row)) cps)
    in
    Ok (Array.of_list (List.map fst cps))

let write_cps ~path cps =
  let table = Report.Table.make ~columns:[ "name"; "alpha"; "beta"; "value"; "m0"; "l0" ] in
  Array.iter
    (fun cp ->
      match
        (Econ.Demand.spec cp.Econ.Cp.demand, Econ.Throughput.spec cp.Econ.Cp.throughput)
      with
      | ( Econ.Demand.Exponential { m0; alpha },
          Econ.Throughput.Exponential { l0; beta } ) ->
        Report.Table.add_row table
          [
            cp.Econ.Cp.name;
            Printf.sprintf "%.17g" alpha;
            Printf.sprintf "%.17g" beta;
            Printf.sprintf "%.17g" cp.Econ.Cp.value;
            Printf.sprintf "%.17g" m0;
            Printf.sprintf "%.17g" l0;
          ]
      | _, _ ->
        invalid_arg
          (Printf.sprintf "Market_io.write_cps: %s is not exponential" cp.Econ.Cp.name))
    cps;
  Report.Csv.write ~path table
