(** Experiment plumbing: a uniform shape for every figure
    reproduction, so the CLI, the benchmark harness and the tests all
    drive the same code. *)

type outcome = {
  id : string;
  title : string;
  tables : (string * Report.Table.t) list;  (** name -> table *)
  plots : (string * Report.Series.t list) list;  (** name -> overlaid series *)
  shape_checks : Subsidization.Theorems.check list;
      (** the paper's qualitative claims, verified on the fresh data *)
}

type t = {
  id : string;  (** e.g. ["fig4"] *)
  title : string;
  paper_ref : string;  (** e.g. ["Figure 4, Section 3.2"] *)
  run : unit -> outcome;
}

val run : ?isolate_stats:bool -> t -> outcome
(** Drive an experiment through the observability layer: opens a root
    span named [experiment:<id>], records the run's wall time as the
    [experiment.duration_s] gauge, and (unless [isolate_stats:false])
    resets the solver telemetry first so anything printed or exported
    afterwards describes {e this} run only. Prefer this over calling
    the [run] field directly. *)

val check : name:string -> bool -> string -> Subsidization.Theorems.check
(** Build a shape check. *)

type degraded = { sample : int; label : string; reason : string }
(** One Monte-Carlo sample whose equilibrium computation failed after
    the whole {!Numerics.Robust} fallback chain: recorded and reported,
    never allowed to abort the sweep. *)

val try_sample : label:string -> sample:int -> (unit -> 'a) -> ('a, degraded) result
(** Run one sample of a sweep, converting a typed solver failure
    ({!Numerics.Robust.Solver_error} or a legacy numerics exception)
    into a [degraded] record. Caller bugs ([Invalid_argument]) still
    raise. *)

val degraded_table : degraded list -> Report.Table.t
(** Render degraded samples as a reportable table. *)

val degraded_count : outcome -> int
(** Rows of the outcome's ["degraded"] table (0 when absent): how many
    samples survived only in degraded form. Recorded per experiment in
    the runner's manifest. *)

val save : outcome -> dir:string -> unit
(** Write every table as [dir/<id>/<name>.csv]. *)

val print : ?plots:bool -> ?out:out_channel -> outcome -> unit
(** Human-readable dump to [out] (default [stdout], normally supplied
    by the [bin/] driver): tables, optional ASCII plots, then the shape
    checks with a pass/fail summary. Library code must not print to
    stdout implicitly (sublint NO-LIB-PRINT); this writer parameter is
    how experiment output reaches the caller's channel. *)

val shape_summary : outcome -> string
(** One line: ["fig4: 3/3 shape checks pass"]. *)
