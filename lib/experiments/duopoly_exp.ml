open Subsidization

let run () : Common.outcome =
  let cps = Scenario.fig7_11_cps () in
  (* split the single ISP's unit capacity across two competitors *)
  let duopoly cap = Duopoly.make ~cps ~capacity_a:0.5 ~capacity_b:0.5 ~cap () in
  let table =
    Report.Table.make
      ~columns:[ "regime"; "q"; "pA"; "pB"; "RA"; "RB"; "R total"; "welfare" ]
  in
  let record label cap (m : Duopoly.market) =
    let pa, pb = m.Duopoly.prices and ra, rb = m.Duopoly.revenues in
    Report.Table.add_row table
      [
        label;
        Printf.sprintf "%g" cap;
        Printf.sprintf "%.3f" pa;
        Printf.sprintf "%.3f" pb;
        Printf.sprintf "%.4f" ra;
        Printf.sprintf "%.4f" rb;
        Printf.sprintf "%.4f" (ra +. rb);
        Printf.sprintf "%.4f" m.Duopoly.welfare;
      ];
    m
  in
  (* the four market solves are independent and roughly equal-cost:
     one pool task each, recorded in fixed order afterwards *)
  let markets =
    Parallel.Pool.map (Parallel.Runtime.pool ()) ~chunk:1
      (fun solve -> solve ())
      [|
        (fun () -> Duopoly.monopoly_benchmark (duopoly 0.));
        (fun () -> Duopoly.price_equilibrium (duopoly 0.));
        (fun () -> Duopoly.monopoly_benchmark (duopoly 1.));
        (fun () -> Duopoly.price_equilibrium (duopoly 1.));
      |]
  in
  let mono0 = record "monopoly" 0. markets.(0) in
  let comp0 = record "duopoly" 0. markets.(1) in
  let mono1 = record "monopoly" 1. markets.(2) in
  let comp1 = record "duopoly" 1. markets.(3) in

  let avg_price (m : Duopoly.market) = 0.5 *. (fst m.Duopoly.prices +. snd m.Duopoly.prices) in
  let total_rev (m : Duopoly.market) = fst m.Duopoly.revenues +. snd m.Duopoly.revenues in
  let checks =
    [
      Common.check ~name:"duopoly.competition-cuts-prices-q0"
        (avg_price comp0 < avg_price mono0 -. 1e-3)
        (Printf.sprintf "avg duopoly price %.3f < monopoly %.3f" (avg_price comp0)
           (avg_price mono0));
      Common.check ~name:"duopoly.competition-raises-welfare-q0"
        (comp0.Duopoly.welfare > mono0.Duopoly.welfare -. 1e-6)
        "competition weakly raises welfare without subsidies";
      Common.check ~name:"duopoly.subsidies-raise-revenues"
        (total_rev comp1 > total_rev comp0 +. 1e-4)
        (Printf.sprintf "deregulation lifts total duopoly revenue %.4f -> %.4f"
           (total_rev comp0) (total_rev comp1));
      Common.check ~name:"duopoly.subsidies-raise-welfare"
        (comp1.Duopoly.welfare > comp0.Duopoly.welfare +. 1e-4)
        "deregulation lifts duopoly welfare";
      Common.check ~name:"duopoly.competition-beats-monopoly-welfare-q1"
        (comp1.Duopoly.welfare > mono1.Duopoly.welfare -. 1e-6)
        "with subsidies, the competitive market still dominates in welfare";
    ]
  in
  {
    Common.id = "duopoly";
    title = "ISP competition vs monopoly, with and without subsidization";
    tables = [ ("comparison", table) ];
    plots = [];
    shape_checks = checks;
  }

let experiment =
  {
    Common.id = "duopoly";
    title = "Two-ISP access competition (extension)";
    paper_ref = "Section 6 (ISP competition conjecture)";
    run;
  }
