(** Monte-Carlo robustness: the paper's qualitative claims, re-checked
    on randomized CP populations instead of the styled 8-type market.
    Reports the fraction of sampled markets on which each property
    holds.

    Samples whose equilibrium computation fails after the whole
    {!Numerics.Robust} fallback chain are recorded as degraded rows and
    counted in the report; they never abort the sweep. *)

val run_samples :
  ?samples:int ->
  ?poison:int list ->
  unit ->
  Common.outcome * Common.degraded list
(** Run the sweep over [samples] random markets (default 40). The
    1-based sample indices in [poison] get their system deliberately
    corrupted (NaN capacity) before solving — used by the resilience
    tests to prove a poisoned market yields a degraded row rather than
    an exception. *)

val experiment : Common.t
