open Subsidization

(* a coarse Figure-7 row: revenue at q = 1 over a small price grid *)
let prices = [| 0.2; 0.5; 0.8; 1.1; 1.4; 1.7; 2.0 |]

(* row 0 is the reference; the others are the perturbed variants *)
let solvers =
  [|
    ("reference (defaults)", fun g -> Nash.solve g);
    ("jacobi scheme", fun g -> Nash.solve ~scheme:Gametheory.Best_response.Jacobi g);
    ("damping 0.5", fun g -> Nash.solve ~damping:0.5 g);
    ("loose tolerance 1e-6", fun g -> Nash.solve ~tol:1e-6 g);
    ("coarse line search (9 pts)", fun g -> Nash.solve ~respond_points:9 g);
    ("fine line search (49 pts)", fun g -> Nash.solve ~respond_points:49 g);
    ("extragradient VI solver", fun g -> Nash.solve_vi ~tol:1e-9 g);
    ( "warm start from cap",
      fun g ->
        Nash.solve ~x0:(Numerics.Vec.make (Subsidy_game.dim g) (Subsidy_game.cap g)) g
    );
  |]

let max_rel_deviation reference other =
  let worst = ref 0. in
  Array.iteri
    (fun k r ->
      let d = Float.abs (other.(k) -. r) /. Float.max 1e-9 (Float.abs r) in
      worst := Float.max !worst d)
    reference;
  !worst

let run () : Common.outcome =
  let sys = Scenario.fig7_11_system () in
  let np = Array.length prices in
  (* flatten (variant x price) into independent Nash solves — 56 cells,
     one task each, reassembled row-major into per-variant curves *)
  let cells =
    Parallel.Pool.map (Parallel.Runtime.pool ()) ~chunk:1
      (fun t ->
        let _, solve = solvers.(t / np) in
        let p = prices.(t mod np) in
        let game = Subsidy_game.make sys ~price:p ~cap:1.0 in
        let eq = solve game in
        p *. eq.Nash.state.System.aggregate)
      (Array.init (Array.length solvers * np) Fun.id)
  in
  let curve vi = Array.sub cells (vi * np) np in
  let reference = curve 0 in
  let table = Report.Table.make ~columns:[ "solver variant"; "max relative deviation" ] in
  Report.Table.add_row table [ fst solvers.(0); "0" ];
  let checks =
    List.init
      (Array.length solvers - 1)
      (fun k ->
        let name = fst solvers.(k + 1) in
        let dev = max_rel_deviation reference (curve (k + 1)) in
        Report.Table.add_row table [ name; Printf.sprintf "%.2e" dev ];
        Common.check
          ~name:(Printf.sprintf "ablation.%s" name)
          (dev < 1e-4)
          (Printf.sprintf "revenue curve deviates by at most %.2e" dev))
  in
  {
    Common.id = "ablation";
    title = "Solver ablation: Figure-7 revenue under perturbed numerics";
    tables = [ ("deviations", table) ];
    plots = [];
    shape_checks = checks;
  }

let experiment =
  {
    Common.id = "ablation";
    title = "Numerics ablation (solver-choice robustness)";
    paper_ref = "design validation (DESIGN.md)";
    run;
  }
