open Subsidization

(* a coarse Figure-7 row: revenue at q = 1 over a small price grid *)
let prices = [| 0.2; 0.5; 0.8; 1.1; 1.4; 1.7; 2.0 |]

(* row 0 is the reference; the others are the perturbed variants. Each
   solver takes the continuation prediction as [?x0]; variants with
   their own start discard it. [~fused:false] is the pre-continuation
   grid-scan respond — a per-variant switch, not the global mode, so
   the pool can run variants concurrently. *)
let solvers =
  [|
    ("reference (defaults)", fun ?x0 g -> Nash.solve ?x0 g);
    ( "jacobi scheme",
      fun ?x0 g -> Nash.solve ?x0 ~scheme:Gametheory.Best_response.Jacobi g );
    ("damping 0.5", fun ?x0 g -> Nash.solve ?x0 ~damping:0.5 g);
    ("loose tolerance 1e-6", fun ?x0 g -> Nash.solve ?x0 ~tol:1e-6 g);
    ("coarse line search (9 pts)", fun ?x0 g -> Nash.solve ?x0 ~respond_points:9 g);
    ("fine line search (49 pts)", fun ?x0 g -> Nash.solve ?x0 ~respond_points:49 g);
    ("legacy grid-scan respond", fun ?x0 g -> Nash.solve ?x0 ~fused:false g);
    ("extragradient VI solver", fun ?x0 g -> Nash.solve_vi ?x0 ~tol:1e-9 g);
    ( "warm start from cap",
      fun ?x0 g ->
        ignore x0;
        Nash.solve ~x0:(Numerics.Vec.make (Subsidy_game.dim g) (Subsidy_game.cap g)) g
    );
  |]

let max_rel_deviation reference other =
  let worst = ref 0. in
  Array.iteri
    (fun k r ->
      let d = Float.abs (other.(k) -. r) /. Float.max 1e-9 (Float.abs r) in
      worst := Float.max !worst d)
    reference;
  !worst

let run () : Common.outcome =
  let sys = Scenario.fig7_11_system () in
  (* one task per variant: each walks the whole price grid on its own
     continuation track, so the curves are warm-start chains exactly
     like the Figure-7 sweeps *)
  let curves =
    Parallel.Pool.map (Parallel.Runtime.pool ()) ~chunk:1
      (fun vi ->
        let _, solve = solvers.(vi) in
        let track = Numerics.Continuation.track () in
        Array.map
          (fun p ->
            let game = Subsidy_game.make sys ~price:p ~cap:1.0 in
            let eq =
              Numerics.Continuation.solve_cell track ~at:p
                ~clamp:(Numerics.Vec.clamp ~lo:0. ~hi:1.0)
                ~solve:(fun x0 -> solve ?x0 game)
                ~extract:(fun (eq : Nash.equilibrium) ->
                  (eq.Nash.subsidies, eq.Nash.converged))
                ()
            in
            p *. eq.Nash.state.System.aggregate)
          prices)
      (Array.init (Array.length solvers) Fun.id)
  in
  let curve vi = curves.(vi) in
  let reference = curve 0 in
  let table = Report.Table.make ~columns:[ "solver variant"; "max relative deviation" ] in
  Report.Table.add_row table [ fst solvers.(0); "0" ];
  let checks =
    List.init
      (Array.length solvers - 1)
      (fun k ->
        let name = fst solvers.(k + 1) in
        let dev = max_rel_deviation reference (curve (k + 1)) in
        Report.Table.add_row table [ name; Printf.sprintf "%.2e" dev ];
        Common.check
          ~name:(Printf.sprintf "ablation.%s" name)
          (dev < 1e-4)
          (Printf.sprintf "revenue curve deviates by at most %.2e" dev))
  in
  {
    Common.id = "ablation";
    title = "Solver ablation: Figure-7 revenue under perturbed numerics";
    tables = [ ("deviations", table) ];
    plots = [];
    shape_checks = checks;
  }

let experiment =
  {
    Common.id = "ablation";
    title = "Numerics ablation (solver-choice robustness)";
    paper_ref = "design validation (DESIGN.md)";
    run;
  }
