type outcome = {
  id : string;
  title : string;
  tables : (string * Report.Table.t) list;
  plots : (string * Report.Series.t list) list;
  shape_checks : Subsidization.Theorems.check list;
}

type t = { id : string; title : string; paper_ref : string; run : unit -> outcome }

(* drive an experiment through the observability layer: solver telemetry
   is scoped to this run (the CLI's `all` loop used to print running
   totals), the whole run sits under a root span, and its wall time is
   recorded as a gauge for metric exports *)
let run ?(isolate_stats = true) (t : t) =
  if isolate_stats then begin
    Numerics.Robust.reset_stats ();
    Numerics.Ad.reset_stats ();
    Numerics.Diff.reset_stats ();
    Numerics.Continuation.reset_stats ()
  end;
  Obs.Trace.with_span ("experiment:" ^ t.id) @@ fun () ->
  let t_start = Obs.Clock.now () in
  let outcome = t.run () in
  Obs.Metrics.set
    (Obs.Metrics.gauge ~labels:[ ("id", t.id) ] "experiment.duration_s")
    (Obs.Clock.elapsed ~since:t_start);
  outcome

type degraded = { sample : int; label : string; reason : string }

let check ~name passed detail = { Subsidization.Theorems.name; passed; detail }

let try_sample ~label ~sample f =
  match f () with
  | v -> Ok v
  | exception Numerics.Robust.Solver_error e ->
    Error { sample; label; reason = Numerics.Robust.error_message e }
  | exception Numerics.Rootfind.No_bracket msg -> Error { sample; label; reason = msg }
  | exception Numerics.Rootfind.No_convergence msg ->
    Error { sample; label; reason = msg }
  | exception Numerics.Fixedpoint.No_convergence msg ->
    Error { sample; label; reason = msg }

(* experiments that tolerate solver failure publish the failures as a
   table named "degraded" (see robustness_exp); the runner's manifest
   reads the count back out through this accessor *)
let degraded_count (outcome : outcome) =
  match List.assoc_opt "degraded" outcome.tables with
  | Some table -> Report.Table.row_count table
  | None -> 0

let degraded_table ds =
  let table = Report.Table.make ~columns:[ "sample"; "label"; "reason" ] in
  List.iter
    (fun d -> Report.Table.add_row table [ string_of_int d.sample; d.label; d.reason ])
    ds;
  table

let save (outcome : outcome) ~dir =
  List.iter
    (fun (name, table) ->
      Report.Csv.write ~path:(Filename.concat (Filename.concat dir outcome.id) (name ^ ".csv")) table)
    outcome.tables

(* output goes through the caller-supplied channel (NO-LIB-PRINT):
   library code never owns stdout, bin/ does *)
let print ?(plots = true) ?(out = stdout) (outcome : outcome) =
  Printf.fprintf out "== %s: %s ==\n" outcome.id outcome.title;
  List.iter
    (fun (name, table) ->
      Printf.fprintf out "\n-- %s --\n%s\n" name (Report.Table.to_string table))
    outcome.tables;
  if plots then
    List.iter
      (fun (name, series) ->
        Printf.fprintf out "\n-- plot: %s --\n" name;
        Report.Ascii_plot.print ~out series)
      outcome.plots;
  Printf.fprintf out "\n-- shape checks --\n";
  let ppf = Format.formatter_of_out_channel out in
  List.iter
    (fun c -> Format.fprintf ppf "%a@." Subsidization.Theorems.pp_check c)
    outcome.shape_checks;
  Format.pp_print_flush ppf ();
  let passed =
    List.length (List.filter (fun c -> c.Subsidization.Theorems.passed) outcome.shape_checks)
  in
  Printf.fprintf out "%d/%d shape checks pass\n" passed (List.length outcome.shape_checks)

let shape_summary (outcome : outcome) =
  let passed =
    List.length (List.filter (fun c -> c.Subsidization.Theorems.passed) outcome.shape_checks)
  in
  Printf.sprintf "%s: %d/%d shape checks pass" outcome.id passed
    (List.length outcome.shape_checks)
