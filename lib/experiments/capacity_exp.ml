open Subsidization

let run () : Common.outcome =
  let sys = Scenario.fig7_11_system () in
  let caps = Scenario.q_levels () in
  let unit_cost = 0.15 in
  let pricing = Capacity.Optimal_price { p_max = 2.5 } in
  let plans =
    Capacity.investment_incentive ~pool:(Parallel.Runtime.pool ()) sys ~pricing
      ~unit_cost ~caps
  in
  let table =
    Report.Table.make
      ~columns:[ "q"; "mu*"; "p*"; "revenue"; "cost"; "profit"; "phi"; "welfare" ]
  in
  Array.iteri
    (fun i (plan : Capacity.plan) ->
      Report.Table.add_floats table
        [
          caps.(i);
          plan.Capacity.capacity;
          plan.Capacity.price;
          plan.Capacity.revenue;
          plan.Capacity.cost;
          plan.Capacity.profit;
          plan.Capacity.utilization;
          plan.Capacity.welfare;
        ])
    plans;
  let weakly_rising extract =
    let ok = ref true in
    Array.iteri
      (fun i plan -> if i > 0 && extract plan < extract plans.(i - 1) -. 1e-4 then ok := false)
      plans;
    !ok
  in
  let checks =
    [
      Common.check ~name:"capacity.investment-rises-with-q"
        (weakly_rising (fun plan -> plan.Capacity.capacity))
        "optimal capacity is (weakly) nondecreasing in the policy cap";
      Common.check ~name:"capacity.profit-rises-with-q"
        (weakly_rising (fun plan -> plan.Capacity.profit))
        "ISP profit is (weakly) nondecreasing in the policy cap";
    ]
  in
  let series =
    [
      Report.Series.make ~name:"mu*" ~xs:caps
        ~ys:(Array.map (fun plan -> plan.Capacity.capacity) plans);
      Report.Series.make ~name:"profit" ~xs:caps
        ~ys:(Array.map (fun plan -> plan.Capacity.profit) plans);
    ]
  in
  {
    Common.id = "capacity";
    title = "Optimal ISP capacity and profit per policy level (extension)";
    tables = [ ("investment", table) ];
    plots = [ ("mu* and profit vs q", series) ];
    shape_checks = checks;
  }

let experiment =
  {
    Common.id = "capacity";
    title = "Capacity planning under subsidization (extension)";
    paper_ref = "Section 6 (future work)";
    run;
  }
