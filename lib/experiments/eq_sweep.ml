open Subsidization

type shared_stats = {
  root_calls : int;
  objective_evaluations : float;
  deriv_ad : float;
  deriv_fd : float;
}

let consumers = [ "fig7"; "fig8"; "fig9"; "fig10"; "fig11" ]

let cache : (int, float array * float array * Policy.point array array) Hashtbl.t =
  Hashtbl.create 4
[@@sync
  "submitting-domain only: experiments run serially on the main domain; pool \
   workers compute sweep cells but never touch this memo"]

(* solver work of the memoized sweep, captured when it is computed: the
   consumer figures report these as their shared cost, because whichever
   of them runs first pays it and the rest read the memo for free *)
let stats_cache : (int, shared_stats) Hashtbl.t = Hashtbl.create 4
[@@sync
  "submitting-domain only: experiments run serially on the main domain; pool \
   workers compute sweep cells but never touch this memo"]

let get ?(points = 41) () =
  match Hashtbl.find_opt cache points with
  | Some entry -> entry
  | None ->
    let sys = Scenario.fig7_11_system () in
    let caps = Scenario.q_levels () in
    let prices = Scenario.price_grid ~points () in
    let roots0 = (Numerics.Robust.stats ()).Numerics.Robust.root_calls in
    let evals0 = Obs.Metrics.sum_histograms "solver.evaluations" in
    let ad0 = (Numerics.Ad.stats ()).Numerics.Ad.passes in
    let fd0 = (Numerics.Diff.stats ()).Numerics.Diff.estimates in
    let sweep = Policy.policy_sweep ~pool:(Parallel.Runtime.pool ()) sys ~caps ~prices in
    Hashtbl.replace stats_cache points
      {
        root_calls = (Numerics.Robust.stats ()).Numerics.Robust.root_calls - roots0;
        objective_evaluations =
          Obs.Metrics.sum_histograms "solver.evaluations" -. evals0;
        deriv_ad = (Numerics.Ad.stats ()).Numerics.Ad.passes -. ad0;
        deriv_fd = (Numerics.Diff.stats ()).Numerics.Diff.estimates -. fd0;
      };
    let entry = (caps, prices, sweep) in
    Hashtbl.replace cache points entry;
    entry

let shared_stats ?(points = 41) () = Hashtbl.find_opt stats_cache points

let cp_names () =
  Array.map (fun cp -> cp.Econ.Cp.name) (Scenario.fig7_11_cps ())
