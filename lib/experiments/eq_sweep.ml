open Subsidization

let cache : (int, float array * float array * Policy.point array array) Hashtbl.t =
  Hashtbl.create 4
[@@sync
  "submitting-domain only: experiments run serially on the main domain; pool \
   workers compute sweep cells but never touch this memo"]

let get ?(points = 41) () =
  match Hashtbl.find_opt cache points with
  | Some entry -> entry
  | None ->
    let sys = Scenario.fig7_11_system () in
    let caps = Scenario.q_levels () in
    let prices = Scenario.price_grid ~points () in
    let sweep = Policy.policy_sweep ~pool:(Parallel.Runtime.pool ()) sys ~caps ~prices in
    let entry = (caps, prices, sweep) in
    Hashtbl.replace cache points entry;
    entry

let cp_names () =
  Array.map (fun cp -> cp.Econ.Cp.name) (Scenario.fig7_11_cps ())
