open Test_helpers

let test_registry () =
  Alcotest.(check int) "fifteen experiments" 15 (List.length Experiments.Registry.all);
  check_true "fig4 present" (Experiments.Registry.find "fig4" <> None);
  check_true "unknown absent" (Experiments.Registry.find "fig99" = None);
  check_raises_invalid "find_exn raises" (fun () ->
      Experiments.Registry.find_exn "fig99" |> ignore);
  check_true "ids in paper order"
    (Experiments.Registry.ids
    = [ "fig4"; "fig5"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11"; "verify"; "capacity";
        "dynamics"; "duopoly"; "robustness"; "ablation"; "longrun"; "surplus" ])

let run id =
  let e = Experiments.Registry.find_exn id in
  e.Experiments.Common.run ()

let check_outcome id (outcome : Experiments.Common.outcome) =
  Alcotest.(check string) "id matches" id outcome.Experiments.Common.id;
  check_true "has tables" (outcome.Experiments.Common.tables <> []);
  List.iter
    (fun c ->
      check_true
        (Printf.sprintf "%s/%s: %s" id c.Subsidization.Theorems.name
           c.Subsidization.Theorems.detail)
        c.Subsidization.Theorems.passed)
    outcome.Experiments.Common.shape_checks

let test_fig4 () = check_outcome "fig4" (run "fig4")
let test_fig5 () = check_outcome "fig5" (run "fig5")
let test_fig7 () = check_outcome "fig7" (run "fig7")
let test_fig8 () = check_outcome "fig8" (run "fig8")
let test_fig9 () = check_outcome "fig9" (run "fig9")
let test_fig10 () = check_outcome "fig10" (run "fig10")
let test_fig11 () = check_outcome "fig11" (run "fig11")

let test_fig4_series_accessor () =
  let theta, revenue = Experiments.Fig4.series ~points:9 () in
  Alcotest.(check int) "custom grid" 9 (Report.Series.length theta);
  check_true "revenue ~ p * theta"
    (let p = theta.Report.Series.xs.(4) in
     Float.abs (revenue.Report.Series.ys.(4) -. (p *. theta.Report.Series.ys.(4)))
     < 1e-9)

let test_fig8_panel_accessor () =
  let panel = Experiments.Fig8_11.panel ~quantity:`Subsidy ~cp:"a5b2v1" () in
  Alcotest.(check int) "five policy curves" 5 (List.length panel);
  (match panel with
  | q0 :: _ ->
    Array.iter (fun y -> check_close "q=0 row is zero" 0. y) q0.Report.Series.ys
  | [] -> Alcotest.fail "no curves");
  match Experiments.Fig8_11.panel ~quantity:`Subsidy ~cp:"nope" () with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ()

let test_save_writes_csv () =
  let outcome = run "fig4" in
  let dir = Filename.temp_file "exp_out" "" in
  Sys.remove dir;
  Experiments.Common.save outcome ~dir;
  let path = Filename.concat (Filename.concat dir "fig4") "theta_revenue.csv" in
  check_true "csv exists" (Sys.file_exists path);
  let rows = Report.Csv.read ~path in
  check_true "header row" (List.hd rows = [ "p"; "theta"; "revenue" ]);
  Alcotest.(check int) "41 data rows" 42 (List.length rows)

let test_shape_summary_format () =
  let outcome = run "fig4" in
  let summary = Experiments.Common.shape_summary outcome in
  check_true "mentions id" (String.length summary > 4 && String.sub summary 0 4 = "fig4")


let test_market_io_roundtrip () =
  let text =
    "name,alpha,beta,value,m0,l0\nvideo,1.5,4,0.6,1,1\nnews,5,2,0.4,1.5,0.5\n"
  in
  let cps = Experiments.Market_io.cps_of_string ~path:"<mem>" text in
  Alcotest.(check int) "two CPs" 2 (Array.length cps);
  Alcotest.(check string) "name" "video" cps.(0).Econ.Cp.name;
  check_close "value" 0.4 cps.(1).Econ.Cp.value;
  check_close ~tol:1e-12 "m0 respected" 1.5 (Econ.Cp.population cps.(1) 0.);
  (* write out and re-read *)
  let path = Filename.temp_file "market" ".csv" in
  Experiments.Market_io.write_cps ~path cps;
  let reread = Experiments.Market_io.cps_of_csv path in
  Sys.remove path;
  Array.iteri
    (fun i cp ->
      check_close ~tol:1e-12 "roundtrip population"
        (Econ.Cp.population cps.(i) 0.3)
        (Econ.Cp.population cp 0.3))
    reread

let test_market_io_errors () =
  let bad header = Experiments.Market_io.cps_of_string ~path:"<mem>" header in
  (match bad "wrong,header\nrow,1" with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ());
  (match bad "name,alpha,beta,value\ncp,notanumber,2,0.5" with
  | _ -> Alcotest.fail "expected Failure on bad float"
  | exception Failure _ -> ());
  match bad "name,alpha,beta,value" with
  | _ -> Alcotest.fail "expected Failure on empty body"
  | exception Failure _ -> ()

let test_market_io_solves () =
  let cps =
    Experiments.Market_io.cps_of_string ~path:"<mem>"
      "name,alpha,beta,value\na,2,3,0.8\nb,4,1.5,1.1\n"
  in
  let sys = Subsidization.System.make ~cps ~capacity:1. () in
  let eq = Subsidization.Policy.nash_at sys ~price:0.5 ~cap:1. in
  check_true "loaded market solves" eq.Subsidization.Nash.converged

let suite =
  ( "experiments",
    [
      quick "registry" test_registry;
      quick "fig4" test_fig4;
      quick "fig5" test_fig5;
      quick "fig7" test_fig7;
      quick "fig8" test_fig8;
      quick "fig9" test_fig9;
      quick "fig10" test_fig10;
      quick "fig11" test_fig11;
      quick "fig4 series accessor" test_fig4_series_accessor;
      quick "fig8 panel accessor" test_fig8_panel_accessor;
      quick "save writes csv" test_save_writes_csv;
      quick "shape summary" test_shape_summary_format;
      quick "market io roundtrip" test_market_io_roundtrip;
      quick "market io errors" test_market_io_errors;
      quick "market io solves" test_market_io_solves;
    ] )

let () = Alcotest.run "experiments" [ suite ]
