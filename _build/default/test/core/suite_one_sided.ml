open Subsidization
open Test_helpers

let test_uniform_charges () =
  let sys = Fixtures.two_cp_system () in
  let st = One_sided.state sys ~price:0.7 in
  Array.iter (fun t -> check_close "t_i = p" 0.7 t) st.System.charges;
  check_raises_invalid "negative price" (fun () ->
      One_sided.state sys ~price:(-0.1) |> ignore)

let test_revenue_definition () =
  let sys = Fixtures.two_cp_system () in
  let st = One_sided.state sys ~price:0.7 in
  check_close ~tol:1e-12 "R = p theta" (0.7 *. st.System.aggregate)
    (One_sided.revenue sys ~price:0.7)

let test_theorem2_signs () =
  let sys = Fixtures.paper3 () in
  let st = One_sided.state sys ~price:0.6 in
  check_true "dphi/dp <= 0" (One_sided.dphi_dprice sys st <= 0.);
  check_true "dtheta/dp <= 0" (One_sided.daggregate_dprice sys st <= 0.);
  (* aggregate slope equals the sum of per-CP slopes *)
  let total = ref 0. in
  for i = 0 to System.n_cps sys - 1 do
    total := !total +. One_sided.dthroughput_dprice sys st i
  done;
  check_close ~tol:1e-10 "slopes sum" !total (One_sided.daggregate_dprice sys st)

let test_dphi_matches_fd () =
  let sys = Fixtures.paper3 () in
  let p = 0.6 in
  let st = One_sided.state sys ~price:p in
  let h = 1e-6 in
  let numeric =
    ((One_sided.state sys ~price:(p +. h)).System.phi
    -. (One_sided.state sys ~price:(p -. h)).System.phi)
    /. (2. *. h)
  in
  check_close ~tol:1e-5 "dphi/dp vs FD" numeric (One_sided.dphi_dprice sys st)

let test_condition7_requires_positive_price () =
  let sys = Fixtures.paper3 () in
  let st = One_sided.state sys ~price:0. in
  check_raises_invalid "p = 0" (fun () -> One_sided.condition7_margin sys st 0 |> ignore)

let test_condition7_sign_agreement () =
  let sys = Fixtures.paper3 () in
  let p = 0.3 in
  let st = One_sided.state sys ~price:p in
  let h = 1e-6 in
  for i = 0 to System.n_cps sys - 1 do
    let th q = (One_sided.state sys ~price:q).System.throughputs.(i) in
    let numeric = (th (p +. h) -. th (p -. h)) /. (2. *. h) in
    let margin = One_sided.condition7_margin sys st i in
    if Float.abs numeric > 1e-6 && Float.abs margin > 1e-9 then
      check_true
        (Printf.sprintf "condition (7) sign for CP %d" i)
        ((margin > 0.) = (numeric > 0.))
  done

let test_revenue_curve_and_peak () =
  let sys = Fixtures.paper3 () in
  let prices = Numerics.Grid.linspace 0.01 2. 30 in
  let curve = One_sided.revenue_curve sys ~prices in
  Alcotest.(check int) "curve length" 30 (Array.length curve);
  Array.iteri
    (fun k (p, r) ->
      check_close "x preserved" prices.(k) p;
      check_close ~tol:1e-8 "revenue matches direct computation"
        (One_sided.revenue sys ~price:p) r)
    curve;
  let p_star, r_star = One_sided.peak_revenue ~p_max:2. sys in
  Array.iter (fun (_, r) -> check_true "peak dominates curve" (r_star >= r -. 1e-6)) curve;
  check_in_range "peak price interior" ~lo:0.01 ~hi:1.99 p_star

let prop_aggregate_decreasing_in_price =
  prop "aggregate throughput decreases in price on random systems" ~count:40
    QCheck2.Gen.(pair Fixtures.qcheck_seed (float_range 0.05 1.5))
    (fun (seed, p) ->
      let sys = Fixtures.random_system seed in
      let theta_lo = (One_sided.state sys ~price:p).System.aggregate in
      let theta_hi = (One_sided.state sys ~price:(p +. 0.2)).System.aggregate in
      theta_hi <= theta_lo +. 1e-9)

let prop_revenue_zero_at_zero_price =
  prop "revenue vanishes as p -> 0" ~count:20 Fixtures.qcheck_seed (fun seed ->
      let sys = Fixtures.random_system seed in
      One_sided.revenue sys ~price:1e-9 < 1e-6)

let suite =
  ( "one-sided",
    [
      quick "uniform charges" test_uniform_charges;
      quick "revenue definition" test_revenue_definition;
      quick "theorem 2 signs" test_theorem2_signs;
      quick "dphi/dp vs FD" test_dphi_matches_fd;
      quick "condition 7 validation" test_condition7_requires_positive_price;
      quick "condition 7 sign" test_condition7_sign_agreement;
      quick "revenue curve & peak" test_revenue_curve_and_peak;
      prop_aggregate_decreasing_in_price;
      prop_revenue_zero_at_zero_price;
    ] )
