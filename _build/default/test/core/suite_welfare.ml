open Numerics
open Subsidization
open Test_helpers

let solved ?(price = 0.8) ?(cap = 0.4) () =
  let game = Subsidy_game.make (Fixtures.paper5 ()) ~price ~cap in
  (game, Nash.solve game)

let test_welfare_definition () =
  let game, eq = solved () in
  let sys = Subsidy_game.system game in
  let manual = ref 0. in
  Array.iteri
    (fun i cp ->
      manual := !manual +. (cp.Econ.Cp.value *. eq.Nash.state.System.throughputs.(i)))
    sys.System.cps;
  check_close ~tol:1e-12 "W = sum v theta" !manual (Welfare.of_equilibrium game eq)

let test_consumer_surplus_positive_and_analytic () =
  let sys = Fixtures.two_cp_system () in
  let st = One_sided.state sys ~price:0.5 in
  let cs = Welfare.consumer_surplus sys st in
  check_true "positive" (cs > 0.);
  (* analytic for exponential demand: lambda * m0 e^{-alpha t} / alpha *)
  let expected =
    (st.System.rates.(0) *. exp (-2. *. 0.5) /. 2.)
    +. (st.System.rates.(1) *. exp (-4. *. 0.5) /. 4.)
  in
  check_close ~tol:1e-6 "matches closed form" expected cs

let test_consumer_surplus_requires_charges () =
  let sys = Fixtures.two_cp_system () in
  let st = System.solve_fixed_populations sys ~populations:(Vec.of_list [ 0.5; 0.5 ]) in
  check_raises_invalid "needs charges" (fun () ->
      Welfare.consumer_surplus sys st |> ignore)

let test_total_surplus_exceeds_components () =
  let game, eq = solved () in
  let total = Welfare.total_surplus game eq in
  let cp_profit = Vec.sum eq.Nash.utilities in
  let isp = Revenue.at_equilibrium game eq in
  check_true "total > profit + revenue" (total > cp_profit +. isp)

let test_subsidies_raise_consumer_surplus () =
  (* subsidies lower charges: users gain, holding the price fixed *)
  let game, eq = solved ~cap:1.0 () in
  let sys = Subsidy_game.system game in
  let banned = Nash.solve (Subsidy_game.make sys ~price:0.8 ~cap:0.) in
  let cs_banned = Welfare.consumer_surplus sys banned.Nash.state in
  let cs_dereg = Welfare.consumer_surplus sys eq.Nash.state in
  check_true "CS rises under deregulation" (cs_dereg > cs_banned)

let test_corollary2_structure () =
  let game, eq = solved () in
  let c2 = Welfare.corollary2 game ~subsidies:eq.Nash.subsidies in
  check_true "rhs is positive" (c2.Welfare.rhs > 0.);
  check_true "dphi_dq consistent with policy effect"
    (Float.abs
       (c2.Welfare.dphi_dq
       -. (Sensitivity.policy_effect game ~subsidies:eq.Nash.subsidies)
            .Sensitivity.dphi_dq)
    < 1e-12)

let test_corollary2_predicts_numeric_sign () =
  let game, eq = solved ~price:0.8 ~cap:0.4 () in
  let c2 = Welfare.corollary2 game ~subsidies:eq.Nash.subsidies in
  if c2.Welfare.dphi_dq > 1e-9 then begin
    let sys = Subsidy_game.system game in
    let h = 1e-4 in
    let w_at cap =
      let g = Subsidy_game.make sys ~price:0.8 ~cap in
      Welfare.of_equilibrium g
        (Nash.solve ~x0:(Vec.clamp ~lo:0. ~hi:cap eq.Nash.subsidies) g)
    in
    let numeric = (w_at (0.4 +. h) -. w_at (0.4 -. h)) /. (2. *. h) in
    if Float.abs numeric > 1e-6 then
      check_true "sign prediction"
        (c2.Welfare.predicted_welfare_increase = (numeric > 0.))
  end

let suite =
  ( "welfare",
    [
      quick "definition" test_welfare_definition;
      quick "consumer surplus analytic" test_consumer_surplus_positive_and_analytic;
      quick "consumer surplus validation" test_consumer_surplus_requires_charges;
      quick "total surplus" test_total_surplus_exceeds_components;
      quick "CS rises under deregulation" test_subsidies_raise_consumer_surplus;
      quick "corollary 2 structure" test_corollary2_structure;
      quick "corollary 2 sign" test_corollary2_predicts_numeric_sign;
    ] )
