(* Edge cases and stress configurations for the core model. *)

open Numerics
open Subsidization
open Test_helpers

let test_single_cp_market () =
  let cp = Econ.Cp.exponential ~alpha:3. ~beta:2. ~value:1. () in
  let sys = System.make ~cps:[| cp |] ~capacity:1. () in
  let game = Subsidy_game.make sys ~price:0.5 ~cap:1. in
  let eq = Nash.solve game in
  check_true "single-CP game solves" eq.Nash.converged;
  (* a monopolist CP still subsidizes: it internalizes only its own
     congestion *)
  check_true "monopolist CP subsidizes" (eq.Nash.subsidies.(0) > 0.)

let test_large_market () =
  let rng = Rng.create 7L in
  let cps = Array.init 15 (fun _ -> Scenario.random_cp rng) in
  let sys = System.make ~cps ~capacity:2. () in
  let eq = Nash.solve (Subsidy_game.make sys ~price:0.6 ~cap:0.8) in
  check_true "15-CP market converges" eq.Nash.converged;
  check_true "KKT certified" (eq.Nash.kkt_residual < 1e-5)

let test_tiny_capacity () =
  let sys = System.with_capacity (Scenario.fig7_11_system ()) 1e-3 in
  let st = One_sided.state sys ~price:0.5 in
  check_true "severe congestion" (st.System.phi > 2.);
  let eq = Nash.solve (Subsidy_game.make sys ~price:0.5 ~cap:1.) in
  check_true "still solves" eq.Nash.converged

let test_huge_capacity () =
  let sys = System.with_capacity (Scenario.fig7_11_system ()) 1e4 in
  let st = One_sided.state sys ~price:0.5 in
  check_true "negligible congestion" (st.System.phi < 1e-3);
  (* rates approach lambda(0) = 1 *)
  Array.iter (fun r -> check_close ~tol:1e-2 "free-flow rate" 1. r) st.System.rates

let test_zero_price () =
  let sys = Scenario.fig7_11_system () in
  let eq = Nash.solve (Subsidy_game.make sys ~price:0. ~cap:1.) in
  check_true "p=0 solves" eq.Nash.converged;
  (* subsidies can exceed the price: users are effectively paid *)
  check_true "negative effective charges allowed"
    (Array.exists (fun t -> t < 0.) eq.Nash.state.System.charges)

let test_cap_above_all_values () =
  (* the cap never binds when it exceeds every v_i: N+ must be empty *)
  let sys = Scenario.fig7_11_system () in
  let eq = Nash.solve (Subsidy_game.make sys ~price:0.8 ~cap:50.) in
  check_true "no CP at the cap"
    (Array.for_all (fun c -> c <> Nash.Upper) eq.Nash.classes);
  (* subsidies never exceed own value: margin would go negative *)
  Array.iteri
    (fun i s -> check_true "s_i <= v_i" (s <= sys.System.cps.(i).Econ.Cp.value +. 1e-9))
    eq.Nash.subsidies

let test_extreme_elasticities () =
  let stiff = Econ.Cp.exponential ~name:"stiff" ~alpha:0.05 ~beta:0.05 ~value:1. () in
  let twitchy = Econ.Cp.exponential ~name:"twitchy" ~alpha:20. ~beta:20. ~value:1. () in
  let sys = System.make ~cps:[| stiff; twitchy |] ~capacity:1. () in
  let eq = Nash.solve (Subsidy_game.make sys ~price:0.7 ~cap:1.) in
  check_true "extreme elasticities converge" eq.Nash.converged;
  check_true "KKT" (eq.Nash.kkt_residual < 1e-5)

let test_high_price_starves_market () =
  let sys = Scenario.fig7_11_system () in
  let st = One_sided.state sys ~price:50. in
  check_true "demand collapses" (st.System.aggregate < 1e-10);
  check_true "utilization collapses" (st.System.phi < 1e-10)

let test_mixed_function_families () =
  (* a market mixing demand and throughput families across CPs *)
  let cps =
    [|
      Econ.Cp.make ~name:"iso-rational"
        ~demand:(Econ.Demand.isoelastic ~alpha:2. ())
        ~throughput:(Econ.Throughput.rational ~beta:3. ())
        ~value:0.8 ();
      Econ.Cp.make ~name:"logit-exp"
        ~demand:(Econ.Demand.logit ~slope:3. ~midpoint:0.6 ())
        ~throughput:(Econ.Throughput.exponential ~beta:2. ())
        ~value:1.1 ();
      Econ.Cp.exponential ~name:"exp-exp" ~alpha:3. ~beta:1. ~value:0.5 ();
    |]
  in
  let sys = System.make ~utilization:(Econ.Utilization.power 1.3) ~cps ~capacity:1.5 () in
  let eq = Nash.solve (Subsidy_game.make sys ~price:0.6 ~cap:0.9) in
  check_true "mixed families converge" eq.Nash.converged;
  check_true "mixed-family KKT" (eq.Nash.kkt_residual < 1e-5);
  (* theorem machinery still validates on this market *)
  let charges = Vec.make 3 0.6 in
  check_true "lemma 1 on mixed market"
    (Theorems.lemma1_uniqueness sys ~charges).Theorems.passed

let test_identical_cps_symmetric_equilibrium () =
  let cp () = Econ.Cp.exponential ~alpha:3. ~beta:3. ~value:0.8 () in
  let sys = System.make ~cps:[| cp (); cp (); cp () |] ~capacity:1. () in
  let eq = Nash.solve (Subsidy_game.make sys ~price:0.5 ~cap:1.) in
  check_close ~tol:1e-8 "symmetric 0-1" eq.Nash.subsidies.(0) eq.Nash.subsidies.(1);
  check_close ~tol:1e-8 "symmetric 1-2" eq.Nash.subsidies.(1) eq.Nash.subsidies.(2)

let prop_differential_br_vs_vi =
  prop "best-response and extragradient agree on random markets" ~count:15
    QCheck2.Gen.(triple Fixtures.qcheck_seed (float_range 0.3 1.2) (float_range 0.2 1.))
    (fun (seed, p, q) ->
      let sys = Fixtures.random_system seed in
      let game = Subsidy_game.make sys ~price:p ~cap:q in
      let br = Nash.solve game in
      (* warm-start the extragradient iteration at the BR equilibrium:
         it must stay there (the VI certificate of the BR answer);
         cold-started extragradient can stall on the non-monotone
         stretches random markets sometimes have *)
      let vi = Nash.solve_vi ~tol:1e-9 ~x0:br.Nash.subsidies game in
      vi.Nash.converged
      && Vec.dist_inf br.Nash.subsidies vi.Nash.subsidies < 1e-4)

let suite =
  ( "edge-cases",
    [
      quick "single CP" test_single_cp_market;
      quick "15-CP market" test_large_market;
      quick "tiny capacity" test_tiny_capacity;
      quick "huge capacity" test_huge_capacity;
      quick "zero price" test_zero_price;
      quick "slack cap" test_cap_above_all_values;
      quick "extreme elasticities" test_extreme_elasticities;
      quick "prohibitive price" test_high_price_starves_market;
      quick "mixed families" test_mixed_function_families;
      quick "symmetric equilibrium" test_identical_cps_symmetric_equilibrium;
      prop_differential_br_vs_vi;
    ] )
