open Subsidization
open Test_helpers

let solved ?(price = 0.8) ?(cap = 0.4) () =
  let game = Subsidy_game.make (Fixtures.paper5 ()) ~price ~cap in
  (game, Nash.solve game)

let test_at_equilibrium () =
  let game, eq = solved () in
  check_close ~tol:1e-12 "R = p theta"
    (0.8 *. eq.Nash.state.System.aggregate)
    (Revenue.at_equilibrium game eq)

let test_upsilon_below_one () =
  (* Upsilon = 1 + sum of negative terms: below 1, and typically positive
     for moderate congestion *)
  let game, eq = solved () in
  let u = Revenue.upsilon game ~subsidies:eq.Nash.subsidies in
  check_true "upsilon < 1" (u < 1.)

let test_price_elasticities_negative () =
  let game, eq = solved () in
  let eps = Revenue.price_elasticities game ~subsidies:eq.Nash.subsidies in
  Array.iter (fun e -> check_true "demand elasticity negative" (e < 0.)) eps;
  let zero_price_game = Subsidy_game.make (Fixtures.paper5 ()) ~price:0. ~cap:0.4 in
  check_raises_invalid "p = 0 rejected" (fun () ->
      Revenue.price_elasticities zero_price_game ~subsidies:eq.Nash.subsidies |> ignore)

let test_theorem7_formula_vs_numeric () =
  List.iter
    (fun (price, cap) ->
      let game, eq = solved ~price ~cap () in
      let formula = Revenue.marginal_formula game ~subsidies:eq.Nash.subsidies in
      let numeric = Revenue.marginal_numeric ~h:1e-4 game in
      check_close ~tol:5e-2 (Printf.sprintf "dR/dp at p=%g q=%g" price cap) numeric
        formula)
    [ (0.8, 0.4); (0.5, 1.0); (1.2, 0.2) ]

let test_curve_warm_start_consistency () =
  let game = Subsidy_game.make (Fixtures.paper5 ()) ~price:0. ~cap:0.5 in
  let prices = [| 0.3; 0.6; 0.9 |] in
  let curve = Revenue.curve game ~prices in
  Array.iter
    (fun (p, eq, r) ->
      (* warm-started points must match cold solves *)
      let cold = Nash.solve (Subsidy_game.make (Fixtures.paper5 ()) ~price:p ~cap:0.5) in
      check_close ~tol:1e-6 "warm = cold subsidies"
        (Numerics.Vec.dist_inf eq.Nash.subsidies cold.Nash.subsidies)
        0.;
      check_close ~tol:1e-8 "revenue consistent"
        (p *. eq.Nash.state.System.aggregate) r)
    curve

let test_optimal_price () =
  let game = Subsidy_game.make (Fixtures.paper5 ()) ~price:0. ~cap:1.0 in
  let p_star, r_star = Revenue.optimal_price ~p_max:2.5 game in
  check_in_range "interior optimum" ~lo:0.05 ~hi:2.45 p_star;
  (* dominates a coarse scan *)
  Array.iter
    (fun p ->
      let g = Subsidy_game.with_price game p in
      let r = Revenue.at_equilibrium g (Nash.solve g) in
      check_true "optimum dominates scan" (r_star >= r -. 1e-4))
    (Numerics.Grid.linspace 0.1 2.4 12)

let suite =
  ( "revenue",
    [
      quick "at equilibrium" test_at_equilibrium;
      quick "upsilon" test_upsilon_below_one;
      quick "price elasticities" test_price_elasticities_negative;
      quick "theorem 7 formula" test_theorem7_formula_vs_numeric;
      quick "curve warm start" test_curve_warm_start_consistency;
      quick "optimal price" test_optimal_price;
    ] )
