open Numerics
open Subsidization
open Test_helpers

let game () = Subsidy_game.make (Fixtures.paper5 ()) ~price:0.8 ~cap:1.0

let test_br_trace_matches_nash () =
  let g = game () in
  let static = Nash.solve g in
  let trace = Dynamics.best_response_trace g ~x0:(Vec.zeros 8) in
  check_true "converged" trace.Gametheory.Tatonnement.converged;
  check_true "same point"
    (Vec.dist_inf (Gametheory.Tatonnement.final trace) static.Nash.subsidies < 1e-8)

let test_gradient_flow_matches_nash () =
  let g = game () in
  let static = Nash.solve g in
  let flow = Dynamics.gradient_flow g ~x0:(Vec.zeros 8) in
  check_true "stationary" flow.Gametheory.Gradient_dynamics.stationary;
  check_true "near static Nash"
    (Vec.dist_inf flow.Gametheory.Gradient_dynamics.final static.Nash.subsidies < 1e-4)

let test_compare_agrees () =
  let report = Dynamics.compare (game ()) in
  check_true "processes agree" report.Dynamics.agree

let test_compare_from_interior_start () =
  let report = Dynamics.compare ~x0:(Vec.make 8 0.5) (game ()) in
  check_true "agree from interior start" report.Dynamics.agree

let test_solve_vi_cross_validates () =
  let g = game () in
  let br = Nash.solve g in
  let vi = Nash.solve_vi ~tol:1e-9 g in
  check_true "vi converged" vi.Nash.converged;
  check_true "vi kkt small" (vi.Nash.kkt_residual < 1e-5);
  check_true "same equilibrium" (Vec.dist_inf vi.Nash.subsidies br.Nash.subsidies < 1e-5)

let test_solve_vi_on_tight_cap () =
  let g = Subsidy_game.make (Fixtures.paper5 ()) ~price:0.8 ~cap:0.3 in
  let br = Nash.solve g in
  let vi = Nash.solve_vi ~tol:1e-9 g in
  check_true "vi handles binding caps"
    (Vec.dist_inf vi.Nash.subsidies br.Nash.subsidies < 1e-5)

let suite =
  ( "dynamics",
    [
      quick "br trace matches nash" test_br_trace_matches_nash;
      quick "gradient flow matches nash" test_gradient_flow_matches_nash;
      quick "compare agrees" test_compare_agrees;
      quick "compare from interior" test_compare_from_interior_start;
      quick "solve_vi cross-validates" test_solve_vi_cross_validates;
      quick "solve_vi with binding caps" test_solve_vi_on_tight_cap;
    ] )
