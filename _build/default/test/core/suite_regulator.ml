open Subsidization
open Test_helpers

let sys () = Fixtures.paper5 ()

let test_isp_price_respects_cap () =
  let unconstrained = Regulator.isp_price (sys ()) ~cap:1.0 ~price_cap:None in
  let capped = Regulator.isp_price (sys ()) ~cap:1.0 ~price_cap:(Some 0.3) in
  check_true "ceiling binds" (capped <= 0.3 +. 1e-9);
  check_true "unconstrained above the ceiling" (unconstrained > 0.3)

let test_evaluate_consistency () =
  let regime = Regulator.evaluate (sys ()) ~cap:1.0 ~price_cap:(Some 0.5) in
  check_close "cap recorded" 1.0 regime.Regulator.cap;
  check_true "price under ceiling" (regime.Regulator.price <= 0.5 +. 1e-9);
  let point = Policy.point_at (sys ()) ~price:regime.Regulator.price ~cap:1.0 in
  check_close ~tol:1e-9 "welfare consistent" point.Policy.welfare regime.Regulator.welfare

let test_optimal_policy_prefers_deregulation () =
  (* with the price held down by a cap, more subsidization freedom is
     always (weakly) better: the regulator picks the largest q *)
  let regime =
    Regulator.optimal_policy (sys ()) ~price_cap:(Some 0.5)
      ~caps:[| 0.; 0.5; 1.0; 1.5; 2.0 |]
  in
  (* beyond the point where no CP's subsidy is cap-constrained, welfare
     plateaus, so any permissive cap can win the (tie-broken) argmax *)
  check_in_range "picks a permissive cap" ~lo:1.0 ~hi:2.0 regime.Regulator.cap;
  let top = Regulator.evaluate (sys ()) ~cap:2.0 ~price_cap:(Some 0.5) in
  check_close ~tol:1e-6 "welfare equals the fully deregulated level"
    top.Regulator.welfare regime.Regulator.welfare

let test_joint_policy_uses_price_cap () =
  let joint =
    Regulator.optimal_policy_with_price_cap (sys ()) ~caps:[| 0.; 2.0 |]
      ~price_caps:[| 0.3; 0.6; 1.0 |]
  in
  let unregulated = Regulator.optimal_policy (sys ()) ~price_cap:None ~caps:[| 0.; 2.0 |] in
  check_true "price regulation helps welfare"
    (joint.Regulator.welfare >= unregulated.Regulator.welfare -. 1e-9);
  check_true "the chosen regime caps the price" (joint.Regulator.price_cap <> None);
  check_in_range "and deregulates subsidies" ~lo:1.0 ~hi:2.0 joint.Regulator.cap

let test_zero_ceiling_means_zero_price () =
  let p = Regulator.isp_price (sys ()) ~cap:0.5 ~price_cap:(Some 0.) in
  check_close "free access" 0. p

let suite =
  ( "regulator",
    [
      quick "price respects cap" test_isp_price_respects_cap;
      quick "evaluate consistency" test_evaluate_consistency;
      quick "optimal policy deregulates" test_optimal_policy_prefers_deregulation;
      quick "joint policy" test_joint_policy_uses_price_cap;
      quick "zero ceiling" test_zero_ceiling_means_zero_price;
    ] )
