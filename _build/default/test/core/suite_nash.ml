open Numerics
open Subsidization
open Test_helpers

let paper_game ?(price = 0.8) ?(cap = 1.0) () =
  Subsidy_game.make (Fixtures.paper5 ()) ~price ~cap

let test_solve_converges () =
  let eq = Nash.solve (paper_game ()) in
  check_true "converged" eq.Nash.converged;
  check_true "kkt small" (eq.Nash.kkt_residual < 1e-6);
  Array.iter
    (fun s -> check_in_range "subsidy in box" ~lo:0. ~hi:1.0 s)
    eq.Nash.subsidies

let test_classification () =
  let game = paper_game ~cap:0.4 () in
  let eq = Nash.solve game in
  let part_count c =
    Array.fold_left (fun acc x -> if x = c then acc + 1 else acc) 0 eq.Nash.classes
  in
  check_true "some CP refrains" (part_count Nash.Lower > 0);
  check_true "some CP pinned at cap" (part_count Nash.Upper > 0);
  Array.iteri
    (fun i c ->
      match c with
      | Nash.Lower -> check_true "lower is ~0" (eq.Nash.subsidies.(i) <= 1e-6)
      | Nash.Upper -> check_true "upper is ~q" (eq.Nash.subsidies.(i) >= 0.4 -. 1e-6)
      | Nash.Interior ->
        check_in_range "interior strictly inside" ~lo:1e-7 ~hi:(0.4 -. 1e-7)
          eq.Nash.subsidies.(i))
    eq.Nash.classes

let test_no_subsidy_under_zero_cap () =
  let eq = Nash.solve (paper_game ~cap:0. ()) in
  Array.iter (fun s -> check_close "all zero" 0. s) eq.Nash.subsidies

let test_equilibrium_is_best_response_fixed_point () =
  let game = paper_game () in
  let eq = Nash.solve game in
  let br = Subsidy_game.to_game game in
  Array.iteri
    (fun i si ->
      let reply = Gametheory.Best_response.respond br i eq.Nash.subsidies in
      check_close ~tol:1e-6 (Printf.sprintf "CP %d cannot deviate" i) si reply)
    eq.Nash.subsidies

let test_unilateral_deviations_unprofitable () =
  let game = paper_game () in
  let eq = Nash.solve game in
  let rng = Rng.create 12L in
  for i = 0 to Subsidy_game.dim game - 1 do
    for _ = 1 to 5 do
      let deviation = Rng.uniform rng ~lo:0. ~hi:1. in
      let s' = Vec.copy eq.Nash.subsidies in
      s'.(i) <- deviation;
      check_true "no profitable deviation"
        (Subsidy_game.utility game ~subsidies:s' i
        <= eq.Nash.utilities.(i) +. 1e-7)
    done
  done

let test_threshold_consistency () =
  let game = paper_game () in
  let eq = Nash.solve game in
  check_true "theorem 3 fixed-point form"
    (Nash.threshold_consistency game ~subsidies:eq.Nash.subsidies < 1e-6)

let test_multistart_unique () =
  let game = paper_game () in
  let spread = Nash.multistart_spread ~starts:4 (Rng.create 5L) game in
  check_true "unique equilibrium" (spread < 1e-7)

let test_stability_conditions () =
  let game = paper_game () in
  let eq = Nash.solve game in
  check_true "off-diagonal monotone (Corollary 1 condition)"
    (Nash.off_diagonal_monotone game ~subsidies:eq.Nash.subsidies);
  check_true "-grad u is a P-matrix (Theorem 4 condition)"
    (Nash.jacobian_is_p_matrix game ~subsidies:eq.Nash.subsidies)

let test_theorem5_value_monotonicity () =
  let sys = Fixtures.paper5 () in
  let base = Nash.solve (Subsidy_game.make sys ~price:0.8 ~cap:1.) in
  let cps = Array.copy sys.System.cps in
  cps.(0) <- { cps.(0) with Econ.Cp.value = cps.(0).Econ.Cp.value +. 0.4 };
  let richer = System.make ~cps ~capacity:sys.System.capacity () in
  let bumped = Nash.solve (Subsidy_game.make richer ~price:0.8 ~cap:1.) in
  check_true "richer CP subsidizes more"
    (bumped.Nash.subsidies.(0) >= base.Nash.subsidies.(0) -. 1e-9)

let prop_nash_kkt_on_random_games =
  prop "Nash solver produces KKT-certified equilibria on random markets" ~count:25
    QCheck2.Gen.(triple Fixtures.qcheck_seed (float_range 0.2 1.5) (float_range 0.1 1.5))
    (fun (seed, p, q) ->
      let sys = Fixtures.random_system seed in
      let game = Subsidy_game.make sys ~price:p ~cap:q in
      let eq = Nash.solve game in
      eq.Nash.converged && eq.Nash.kkt_residual < 1e-5)

let prop_corollary1_revenue_monotone_in_cap =
  prop "revenue weakly rises when the cap is relaxed" ~count:20
    QCheck2.Gen.(pair Fixtures.qcheck_seed (float_range 0.2 1.2))
    (fun (seed, p) ->
      let sys = Fixtures.random_system seed in
      let r_at cap =
        let game = Subsidy_game.make sys ~price:p ~cap in
        let eq = Nash.solve game in
        p *. eq.Nash.state.System.aggregate
      in
      r_at 0.6 >= r_at 0.3 -. 1e-6)

let suite =
  ( "nash",
    [
      quick "solve converges" test_solve_converges;
      quick "classification" test_classification;
      quick "zero cap" test_no_subsidy_under_zero_cap;
      quick "best-response fixed point" test_equilibrium_is_best_response_fixed_point;
      quick "deviations unprofitable" test_unilateral_deviations_unprofitable;
      quick "threshold consistency" test_threshold_consistency;
      quick "multistart unique" test_multistart_unique;
      quick "stability conditions" test_stability_conditions;
      quick "theorem 5" test_theorem5_value_monotonicity;
      prop_nash_kkt_on_random_games;
      prop_corollary1_revenue_monotone_in_cap;
    ] )
