open Numerics
open Subsidization
open Test_helpers

let solved_game ?(price = 0.8) ?(cap = 0.4) () =
  let game = Subsidy_game.make (Fixtures.paper5 ()) ~price ~cap in
  (game, Nash.solve game)

let test_partition_matches_classes () =
  let game, eq = solved_game () in
  let part = Sensitivity.partition game ~subsidies:eq.Nash.subsidies in
  let total =
    Array.length part.Sensitivity.lower
    + Array.length part.Sensitivity.interior
    + Array.length part.Sensitivity.upper
  in
  Alcotest.(check int) "partition covers all CPs" (Subsidy_game.dim game) total;
  Array.iter
    (fun i -> check_true "lower means zero" (eq.Nash.subsidies.(i) <= 1e-6))
    part.Sensitivity.lower;
  Array.iter
    (fun i -> check_true "upper means cap" (eq.Nash.subsidies.(i) >= 0.4 -. 1e-6))
    part.Sensitivity.upper

let test_jacobian_shape_and_symmetry_of_diagonal_sign () =
  let game, eq = solved_game () in
  let j = Sensitivity.marginal_jacobian game ~subsidies:eq.Nash.subsidies in
  Alcotest.(check int) "square" (Subsidy_game.dim game) (Mat.rows j);
  (* utilities are locally concave at interior first-order points (the
     corners can sit on convex stretches, so only check the interior) *)
  let part = Sensitivity.partition game ~subsidies:eq.Nash.subsidies in
  Array.iter
    (fun i -> check_true "du_i/ds_i < 0 on the interior" (Mat.get j i i < 0.))
    part.Sensitivity.interior

let resolve sys ~price ~cap ~x0 =
  (Nash.solve ~x0:(Vec.clamp ~lo:0. ~hi:cap x0) (Subsidy_game.make sys ~price ~cap)).Nash.subsidies

let test_ds_dq_matches_fd () =
  let game, eq = solved_game () in
  let s = eq.Nash.subsidies in
  let sys = Fixtures.paper5 () in
  let formula = Sensitivity.ds_dq game ~subsidies:s in
  let h = 1e-4 in
  let plus = resolve sys ~price:0.8 ~cap:(0.4 +. h) ~x0:s in
  let minus = resolve sys ~price:0.8 ~cap:(0.4 -. h) ~x0:s in
  let part = Sensitivity.partition game ~subsidies:s in
  Array.iter
    (fun i ->
      let numeric = (plus.(i) -. minus.(i)) /. (2. *. h) in
      check_close ~tol:5e-3 (Printf.sprintf "ds_%d/dq" i) numeric formula.(i))
    part.Sensitivity.interior;
  Array.iter (fun i -> check_close "upper slope 1" 1. formula.(i)) part.Sensitivity.upper;
  Array.iter (fun i -> check_close "lower slope 0" 0. formula.(i)) part.Sensitivity.lower

let test_ds_dp_matches_fd () =
  let game, eq = solved_game () in
  let s = eq.Nash.subsidies in
  let sys = Fixtures.paper5 () in
  let formula = Sensitivity.ds_dp game ~subsidies:s in
  let h = 1e-4 in
  let plus = resolve sys ~price:(0.8 +. h) ~cap:0.4 ~x0:s in
  let minus = resolve sys ~price:(0.8 -. h) ~cap:0.4 ~x0:s in
  let part = Sensitivity.partition game ~subsidies:s in
  Array.iter
    (fun i ->
      let numeric = (plus.(i) -. minus.(i)) /. (2. *. h) in
      check_close ~tol:5e-3 (Printf.sprintf "ds_%d/dp" i) numeric formula.(i))
    part.Sensitivity.interior

let test_policy_effect_fixed_price () =
  let game, eq = solved_game () in
  let effect = Sensitivity.policy_effect game ~subsidies:eq.Nash.subsidies in
  check_close "default dp/dq" 0. effect.Sensitivity.dp_dq;
  (* with subsidies rising and price fixed, charges fall and populations rise *)
  let part = Sensitivity.partition game ~subsidies:eq.Nash.subsidies in
  Array.iter
    (fun i ->
      check_true "charge falls for pinned CPs" (effect.Sensitivity.dcharge_dq.(i) < 0.);
      check_true "population rises" (effect.Sensitivity.dpopulation_dq.(i) > 0.))
    part.Sensitivity.upper;
  check_true "utilization rises (Corollary 1)" (effect.Sensitivity.dphi_dq >= 0.);
  (* rates fall with congestion *)
  Array.iteri
    (fun i dr ->
      ignore i;
      check_true "per-user rate falls" (dr <= 1e-12))
    effect.Sensitivity.drate_dq

let test_policy_effect_dphi_matches_fd () =
  let game, eq = solved_game () in
  let s = eq.Nash.subsidies in
  let sys = Fixtures.paper5 () in
  let effect = Sensitivity.policy_effect game ~subsidies:s in
  let h = 1e-4 in
  let phi_at cap =
    (Nash.solve ~x0:(Vec.clamp ~lo:0. ~hi:cap s) (Subsidy_game.make sys ~price:0.8 ~cap))
      .Nash.state.System.phi
  in
  let numeric = (phi_at (0.4 +. h) -. phi_at (0.4 -. h)) /. (2. *. h) in
  check_close ~tol:1e-3 "dphi/dq vs FD" numeric effect.Sensitivity.dphi_dq

let test_condition17_sign_agreement () =
  let game, eq = solved_game () in
  let s = eq.Nash.subsidies in
  let sys = Fixtures.paper5 () in
  let effect = Sensitivity.policy_effect game ~subsidies:s in
  let h = 1e-4 in
  for i = 0 to Subsidy_game.dim game - 1 do
    let th_at cap =
      (Nash.solve ~x0:(Vec.clamp ~lo:0. ~hi:cap s) (Subsidy_game.make sys ~price:0.8 ~cap))
        .Nash.state.System.throughputs.(i)
    in
    let numeric = (th_at (0.4 +. h) -. th_at (0.4 -. h)) /. (2. *. h) in
    let margin = Sensitivity.condition17_margin game effect ~state:eq.Nash.state i in
    if Float.abs numeric > 1e-5 && Float.abs margin > 1e-6 then
      check_true
        (Printf.sprintf "condition 17 sign for CP %d" i)
        ((margin > 0.) = (numeric > 0.))
  done

let test_empty_interior_short_circuits () =
  (* with cap 0 everyone is at the lower corner; derivatives are all 0 *)
  let game = Subsidy_game.make (Fixtures.paper5 ()) ~price:0.8 ~cap:0. in
  let s = Vec.zeros 8 in
  let dq = Sensitivity.ds_dq game ~subsidies:s in
  (* note: with cap=0 the lower and upper corners coincide; classification
     marks them Lower first, so slopes are 0 *)
  Array.iter (fun d -> check_close "no interior motion" 0. d) dq

let suite =
  ( "sensitivity",
    [
      quick "partition" test_partition_matches_classes;
      quick "jacobian diagonal" test_jacobian_shape_and_symmetry_of_diagonal_sign;
      quick "ds/dq vs FD" test_ds_dq_matches_fd;
      quick "ds/dp vs FD" test_ds_dp_matches_fd;
      quick "policy effect signs" test_policy_effect_fixed_price;
      quick "dphi/dq vs FD" test_policy_effect_dphi_matches_fd;
      quick "condition 17 signs" test_condition17_sign_agreement;
      quick "empty interior" test_empty_interior_short_circuits;
    ] )
