open Subsidization
open Test_helpers

let test_fig45_population () =
  let cps = Scenario.fig45_cps () in
  Alcotest.(check int) "9 CP types" 9 (Array.length cps);
  (* alpha-major ordering: first three share alpha=1 *)
  Alcotest.(check string) "first" "a1b1" cps.(0).Econ.Cp.name;
  Alcotest.(check string) "last" "a5b5" cps.(8).Econ.Cp.name;
  Array.iter (fun cp -> check_close "v = 1" 1. cp.Econ.Cp.value) cps;
  let sys = Scenario.fig45_system () in
  check_close "mu = 1" 1. sys.System.capacity

let test_fig7_11_population () =
  let cps = Scenario.fig7_11_cps () in
  Alcotest.(check int) "8 CP types" 8 (Array.length cps);
  Alcotest.(check string) "first" "a2b2v0.5" cps.(0).Econ.Cp.name;
  Alcotest.(check string) "last" "a5b5v1" cps.(7).Econ.Cp.name;
  let low_value = Array.to_list (Array.sub cps 0 4) in
  List.iter (fun cp -> check_close "v = 0.5 first half" 0.5 cp.Econ.Cp.value) low_value

let test_q_levels_and_price_grid () =
  let qs = Scenario.q_levels () in
  Alcotest.(check int) "5 levels" 5 (Array.length qs);
  check_close "top level" 2. qs.(4);
  let grid = Scenario.price_grid () in
  Alcotest.(check int) "default 41 points" 41 (Array.length grid);
  check_true "zero nudged" (grid.(0) > 0.);
  check_close "p_max" 2. grid.(40);
  let coarse = Scenario.price_grid ~points:11 ~p_max:1. () in
  check_close "custom p_max" 1. coarse.(10)

let test_random_generators () =
  let rng = Numerics.Rng.create 7L in
  for _ = 1 to 20 do
    let cp = Scenario.random_cp rng in
    check_true "value nonnegative" (cp.Econ.Cp.value >= 0.);
    check_true "demand positive" (Econ.Cp.population cp 0.5 > 0.)
  done;
  let sys = Scenario.random_system rng in
  check_in_range "random size" ~lo:2. ~hi:8. (float_of_int (System.n_cps sys));
  let fixed = Scenario.random_system ~n:4 ~capacity:2. rng in
  Alcotest.(check int) "explicit n" 4 (System.n_cps fixed);
  check_close "explicit capacity" 2. fixed.System.capacity

let test_fig45_reproduces_paper_utilization_formula () =
  (* for the linear family, phi solves phi = sum e^{-(alpha p + beta phi)} *)
  let sys = Scenario.fig45_system () in
  let p = 0.5 in
  let st = One_sided.state sys ~price:p in
  let rhs =
    Array.fold_left
      (fun acc cp ->
        match
          ( Econ.Demand.spec cp.Econ.Cp.demand,
            Econ.Throughput.spec cp.Econ.Cp.throughput )
        with
        | Econ.Demand.Exponential { alpha; _ }, Econ.Throughput.Exponential { beta; _ }
          ->
          acc +. exp (-.((alpha *. p) +. (beta *. st.System.phi)))
        | _, _ -> Alcotest.fail "unexpected family")
      0. sys.System.cps
  in
  check_close ~tol:1e-9 "paper formula" rhs st.System.phi

let suite =
  ( "scenario",
    [
      quick "fig 4-5 population" test_fig45_population;
      quick "fig 7-11 population" test_fig7_11_population;
      quick "levels and grid" test_q_levels_and_price_grid;
      quick "random generators" test_random_generators;
      quick "paper utilization identity" test_fig45_reproduces_paper_utilization_formula;
    ] )
