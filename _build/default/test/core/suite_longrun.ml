open Subsidization
open Test_helpers

let sys () = Fixtures.paper5 ()

let short_params = { Longrun.default_params with Longrun.periods = 10 }

let test_validation () =
  check_raises_invalid "bad periods" (fun () ->
      Longrun.simulate ~params:{ short_params with Longrun.periods = 0 } (sys ())
        ~price:0.8 ~cap:0.
      |> ignore);
  check_raises_invalid "bad unit_cost" (fun () ->
      Longrun.simulate ~params:{ short_params with Longrun.unit_cost = 0. } (sys ())
        ~price:0.8 ~cap:0.
      |> ignore);
  check_raises_invalid "bad reinvestment" (fun () ->
      Longrun.simulate ~params:{ short_params with Longrun.reinvestment = 1.5 } (sys ())
        ~price:0.8 ~cap:0.
      |> ignore);
  check_raises_invalid "bad depreciation" (fun () ->
      Longrun.simulate ~params:{ short_params with Longrun.depreciation = 1. } (sys ())
        ~price:0.8 ~cap:0.
      |> ignore)

let test_first_snapshot_is_static_market () =
  let snaps = Longrun.simulate ~params:short_params (sys ()) ~price:0.8 ~cap:1. in
  Alcotest.(check int) "period count" 10 (Array.length snaps);
  check_close "starts at initial capacity" 1. snaps.(0).Longrun.capacity;
  let static = Policy.nash_at (sys ()) ~price:0.8 ~cap:1. in
  check_close ~tol:1e-8 "t=0 equals the static equilibrium"
    static.Nash.state.System.phi snaps.(0).Longrun.equilibrium.Nash.state.System.phi

let test_accounting () =
  let snaps = Longrun.simulate ~params:short_params (sys ()) ~price:0.8 ~cap:1. in
  Array.iter
    (fun s ->
      check_close ~tol:1e-10 "revenue = p theta"
        (0.8 *. s.Longrun.equilibrium.Nash.state.System.aggregate)
        s.Longrun.revenue;
      check_close ~tol:1e-10 "profit = revenue - cost"
        (s.Longrun.revenue -. (0.2 *. s.Longrun.capacity))
        s.Longrun.profit)
    snaps

let test_capacity_update_rule () =
  let snaps = Longrun.simulate ~params:short_params (sys ()) ~price:0.8 ~cap:1. in
  for k = 0 to Array.length snaps - 2 do
    let s = snaps.(k) in
    let expected =
      (s.Longrun.capacity *. 0.95) +. (0.5 *. Float.max 0. s.Longrun.profit /. 0.2)
    in
    check_close ~tol:1e-10 "mu' follows the law of motion" expected
      snaps.(k + 1).Longrun.capacity
  done

let test_deregulation_accumulates_more_capacity () =
  let banned = Longrun.simulate ~params:short_params (sys ()) ~price:0.8 ~cap:0. in
  let dereg = Longrun.simulate ~params:short_params (sys ()) ~price:0.8 ~cap:1. in
  let last a = a.(Array.length a - 1) in
  check_true "q=1 ends with more capacity"
    ((last dereg).Longrun.capacity > (last banned).Longrun.capacity)

let test_victim_recovery () =
  let params = { Longrun.default_params with Longrun.periods = 20 } in
  let banned = Longrun.simulate ~params (sys ()) ~price:0.8 ~cap:0. in
  let dereg = Longrun.simulate ~params (sys ()) ~price:0.8 ~cap:1. in
  let tb = Longrun.throughput_path banned ~cp:5 in
  let td = Longrun.throughput_path dereg ~cp:5 in
  check_true "initial harm" (td.(0) < tb.(0));
  check_true "long-run recovery" (td.(19) > tb.(19))

let test_paths_and_steady_state () =
  let snaps = Longrun.simulate (sys ()) ~price:0.8 ~cap:1. in
  let caps = Longrun.capacity_path snaps in
  Alcotest.(check int) "path length" 30 (Array.length caps);
  (match Longrun.steady_state_capacity snaps with
  | Some c -> check_in_range "steady state plausible" ~lo:1. ~hi:20. c
  | None -> Alcotest.fail "expected convergence in 30 periods");
  let th = Longrun.throughput_path snaps ~cp:0 in
  Array.iter (fun t -> check_true "throughput positive" (t > 0.)) th

let test_no_reinvestment_decays () =
  let params =
    { Longrun.periods = 10; unit_cost = 0.2; reinvestment = 0.; depreciation = 0.1 }
  in
  let snaps = Longrun.simulate ~params (sys ()) ~price:0.8 ~cap:1. in
  check_close ~tol:1e-9 "pure decay" (0.9 ** 9.) snaps.(9).Longrun.capacity

let suite =
  ( "longrun",
    [
      quick "validation" test_validation;
      quick "first snapshot" test_first_snapshot_is_static_market;
      quick "accounting" test_accounting;
      quick "law of motion" test_capacity_update_rule;
      quick "investment gap" test_deregulation_accumulates_more_capacity;
      quick "victim recovery" test_victim_recovery;
      quick "paths and steady state" test_paths_and_steady_state;
      quick "no reinvestment" test_no_reinvestment_decays;
    ] )
