open Subsidization
open Test_helpers

let test_check_formatting () =
  let c = { Theorems.name = "x"; passed = false; detail = "d" } in
  let s = Format.asprintf "%a" Theorems.pp_check c in
  check_true "mentions FAIL" (String.length s > 0 && String.sub s 0 6 = "[FAIL]");
  check_true "all_passed false" (not (Theorems.all_passed [ c ]));
  check_true "all_passed empty" (Theorems.all_passed [])

let test_paper_suite_passes () =
  let checks = Theorems.run_paper_suite () in
  check_true "non-trivial suite" (List.length checks >= 40);
  List.iter
    (fun c ->
      check_true (Printf.sprintf "%s: %s" c.Theorems.name c.Theorems.detail)
        c.Theorems.passed)
    checks

let test_individual_entry_points () =
  (* exercise the per-theorem functions on a fresh, non-paper market *)
  let sys = Fixtures.two_cp_system () in
  let charges = Fixtures.uniform_charges sys 0.5 in
  check_true "lemma1" (Theorems.lemma1_uniqueness sys ~charges).Theorems.passed;
  check_true "lemma2"
    (Theorems.lemma2_invariance sys ~charges ~cp:1 ~kappa:2.5).Theorems.passed;
  List.iter
    (fun c -> check_true c.Theorems.name c.Theorems.passed)
    (Theorems.theorem1 sys ~charges);
  List.iter
    (fun c -> check_true c.Theorems.name c.Theorems.passed)
    (Theorems.theorem2 sys ~price:0.5);
  let game = Subsidy_game.make sys ~price:0.5 ~cap:0.6 in
  let eq = Nash.solve game in
  List.iter
    (fun c -> check_true c.Theorems.name c.Theorems.passed)
    (Theorems.theorem3 game eq);
  check_true "theorem4" (Theorems.theorem4 (Numerics.Rng.create 1L) game).Theorems.passed;
  check_true "theorem5" (Theorems.theorem5 game ~cp:0 ~delta:0.3).Theorems.passed;
  check_true "theorem7" (Theorems.theorem7 game eq).Theorems.passed

let test_validation () =
  let sys = Fixtures.two_cp_system () in
  let game = Subsidy_game.make sys ~price:0.5 ~cap:0.6 in
  check_raises_invalid "lemma3 delta" (fun () ->
      Theorems.lemma3 game ~subsidies:(Numerics.Vec.zeros 2) ~cp:0 ~delta:0. |> ignore);
  check_raises_invalid "theorem5 delta" (fun () ->
      Theorems.theorem5 game ~cp:0 ~delta:(-0.1) |> ignore)

let prop_theorem_checks_on_random_markets =
  prop "Section-3 theorem checks hold on random markets" ~count:15
    Fixtures.qcheck_seed
    (fun seed ->
      let sys = Fixtures.random_system seed in
      let charges = Fixtures.uniform_charges sys 0.4 in
      Theorems.all_passed
        ((Theorems.lemma1_uniqueness sys ~charges :: Theorems.theorem1 sys ~charges)
        @ Theorems.theorem2 sys ~price:0.4))

let suite =
  ( "theorems",
    [
      quick "check formatting" test_check_formatting;
      quick "paper suite passes" test_paper_suite_passes;
      quick "individual entry points" test_individual_entry_points;
      quick "validation" test_validation;
      prop_theorem_checks_on_random_markets;
    ] )
