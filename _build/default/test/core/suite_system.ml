open Numerics
open Subsidization
open Test_helpers

let test_make_validation () =
  check_raises_invalid "no CPs" (fun () ->
      System.make ~cps:[||] ~capacity:1. () |> ignore);
  check_raises_invalid "bad capacity" (fun () ->
      System.make ~cps:(Scenario.fig45_cps ()) ~capacity:0. () |> ignore)

let test_definition1_fixed_point () =
  (* the solved phi satisfies phi = Phi(sum m_k lambda_k(phi), mu) exactly *)
  let sys = Fixtures.two_cp_system () in
  let charges = Fixtures.uniform_charges sys 0.5 in
  let st = System.solve sys ~charges in
  let implied =
    Econ.Utilization.phi sys.System.utilization ~theta:st.System.aggregate
      ~mu:sys.System.capacity
  in
  check_close ~tol:1e-10 "Definition 1 fixed point" st.System.phi implied;
  check_close ~tol:1e-10 "gap vanishes" 0. (System.gap sys ~charges st.System.phi)

let test_state_consistency () =
  let sys = Fixtures.two_cp_system () in
  let charges = Vec.of_list [ 0.2; 0.9 ] in
  let st = System.solve sys ~charges in
  Array.iteri
    (fun i cp ->
      check_close ~tol:1e-12 "population matches demand"
        (Econ.Cp.population cp charges.(i))
        st.System.populations.(i);
      check_close ~tol:1e-12 "rate matches throughput fn"
        (Econ.Cp.rate cp st.System.phi)
        st.System.rates.(i);
      check_close ~tol:1e-12 "theta_i = m_i lambda_i"
        (st.System.populations.(i) *. st.System.rates.(i))
        st.System.throughputs.(i))
    sys.System.cps;
  check_close ~tol:1e-12 "aggregate sums" (Vec.sum st.System.throughputs)
    st.System.aggregate;
  check_true "gap slope positive (Lemma 1)" (st.System.gap_slope > 0.)

let test_warm_start_irrelevant () =
  let sys = Fixtures.paper3 () in
  let charges = Fixtures.uniform_charges sys 0.3 in
  let a = System.equilibrium_phi ~phi_guess:1e-4 sys ~charges in
  let b = System.equilibrium_phi ~phi_guess:30. sys ~charges in
  check_close ~tol:1e-10 "guess-independent" a b

let test_charge_dimension_check () =
  let sys = Fixtures.two_cp_system () in
  check_raises_invalid "wrong charge count" (fun () ->
      System.solve sys ~charges:(Vec.zeros 3) |> ignore)

let test_fixed_populations () =
  let sys = Fixtures.two_cp_system () in
  let st = System.solve_fixed_populations sys ~populations:(Vec.of_list [ 0.5; 0.5 ]) in
  check_true "charges are NaN" (Float.is_nan st.System.charges.(0));
  check_close ~tol:1e-10 "fixed-pop fixed point"
    (Econ.Utilization.phi sys.System.utilization ~theta:st.System.aggregate ~mu:1.)
    st.System.phi;
  check_raises_invalid "negative population" (fun () ->
      System.solve_fixed_populations sys ~populations:(Vec.of_list [ -1.; 0.5 ])
      |> ignore)

let test_theorem1_signs () =
  let sys = Fixtures.paper3 () in
  let st = System.solve sys ~charges:(Fixtures.uniform_charges sys 0.4) in
  check_true "dphi/dmu < 0" (System.dphi_dcapacity sys st < 0.);
  for i = 0 to System.n_cps sys - 1 do
    check_true "dphi/dm_i > 0" (System.dphi_dpopulation sys st i > 0.);
    check_true "dtheta_i/dmu > 0" (System.dthroughput_dcapacity sys st i > 0.);
    check_true "own effect > 0"
      (System.dthroughput_dpopulation sys st ~cp:i ~wrt:i > 0.)
  done;
  check_true "cross effect < 0" (System.dthroughput_dpopulation sys st ~cp:0 ~wrt:1 < 0.)

let test_capacity_monotone () =
  let sys = Fixtures.two_cp_system () in
  let charges = Fixtures.uniform_charges sys 0.5 in
  let phi_small = (System.solve sys ~charges).System.phi in
  let big = System.with_capacity sys 2. in
  let phi_big = (System.solve big ~charges).System.phi in
  check_true "more capacity, less utilization" (phi_big < phi_small);
  let th_small = (System.solve sys ~charges).System.throughputs.(0) in
  let th_big = (System.solve big ~charges).System.throughputs.(0) in
  check_true "more capacity, more throughput" (th_big > th_small)

let test_alternative_utilization_families () =
  List.iter
    (fun util ->
      let sys =
        System.make ~utilization:util ~cps:(Scenario.fig45_cps ()) ~capacity:1.3 ()
      in
      let charges = Fixtures.uniform_charges sys 0.4 in
      let st = System.solve sys ~charges in
      check_true "phi positive" (st.System.phi > 0.);
      check_close ~tol:1e-9 "fixed point under family" 0.
        (System.gap sys ~charges st.System.phi))
    [ Econ.Utilization.power 0.8; Econ.Utilization.power 1.6; Econ.Utilization.log_family ]

let prop_equilibrium_unique_and_well_posed =
  prop "random systems have a well-posed equilibrium" ~count:60 Fixtures.qcheck_seed
    (fun seed ->
      let sys = Fixtures.random_system seed in
      let charges = Fixtures.uniform_charges sys 0.5 in
      let st = System.solve sys ~charges in
      st.System.phi >= 0. && st.System.gap_slope > 0.
      && Float.abs (System.gap sys ~charges st.System.phi) < 1e-8)

let prop_lemma2_scale_invariance =
  prop "Lemma 2: rescaling any CP leaves phi unchanged" ~count:60
    QCheck2.Gen.(pair Fixtures.qcheck_seed (float_range 0.2 5.))
    (fun (seed, kappa) ->
      let sys = Fixtures.random_system seed in
      let charges = Fixtures.uniform_charges sys 0.4 in
      let phi0 = System.equilibrium_phi sys ~charges in
      let cps = Array.copy sys.System.cps in
      cps.(0) <- Econ.Cp.scale cps.(0) ~kappa;
      let scaled =
        System.make ~utilization:sys.System.utilization ~cps
          ~capacity:sys.System.capacity ()
      in
      Float.abs (System.equilibrium_phi scaled ~charges -. phi0) < 1e-9)

let prop_theorem1_analytic_matches_fd =
  prop "Theorem 1 derivatives match finite differences on random systems" ~count:30
    Fixtures.qcheck_seed
    (fun seed ->
      let sys = Fixtures.random_system seed in
      let charges = Fixtures.uniform_charges sys 0.5 in
      let st = System.solve sys ~charges in
      let h = 1e-6 *. sys.System.capacity in
      let phi_at mu = System.equilibrium_phi (System.with_capacity sys mu) ~charges in
      let numeric =
        (phi_at (sys.System.capacity +. h) -. phi_at (sys.System.capacity -. h))
        /. (2. *. h)
      in
      let analytic = System.dphi_dcapacity sys st in
      Float.abs (analytic -. numeric) <= 1e-4 *. (1. +. Float.abs analytic))

let suite =
  ( "system",
    [
      quick "validation" test_make_validation;
      quick "definition 1 fixed point" test_definition1_fixed_point;
      quick "state consistency" test_state_consistency;
      quick "warm start irrelevant" test_warm_start_irrelevant;
      quick "dimension checks" test_charge_dimension_check;
      quick "fixed populations" test_fixed_populations;
      quick "theorem 1 signs" test_theorem1_signs;
      quick "capacity monotone" test_capacity_monotone;
      quick "other utilization families" test_alternative_utilization_families;
      prop_equilibrium_unique_and_well_posed;
      prop_lemma2_scale_invariance;
      prop_theorem1_analytic_matches_fd;
    ] )
