open Subsidization
open Test_helpers

let test_point_consistency () =
  let sys = Fixtures.paper5 () in
  let point = Policy.point_at sys ~price:0.8 ~cap:0.5 in
  check_close "cap recorded" 0.5 point.Policy.cap;
  check_close "price recorded" 0.8 point.Policy.price;
  check_close ~tol:1e-12 "revenue consistent"
    (0.8 *. point.Policy.equilibrium.Nash.state.System.aggregate)
    point.Policy.revenue;
  check_close ~tol:1e-12 "welfare consistent"
    (Welfare.of_state sys point.Policy.equilibrium.Nash.state)
    point.Policy.welfare;
  check_close ~tol:1e-12 "phi consistent"
    point.Policy.equilibrium.Nash.state.System.phi point.Policy.utilization

let test_price_sweep_matches_pointwise () =
  let sys = Fixtures.paper5 () in
  let prices = [| 0.4; 0.8; 1.2 |] in
  let sweep = Policy.price_sweep sys ~cap:0.5 ~prices in
  Alcotest.(check int) "length" 3 (Array.length sweep);
  Array.iteri
    (fun k point ->
      let direct = Policy.point_at sys ~price:prices.(k) ~cap:0.5 in
      check_close ~tol:1e-6 "warm-started sweep equals cold points"
        direct.Policy.revenue point.Policy.revenue)
    sweep

let test_policy_sweep_shape () =
  let sys = Fixtures.paper5 () in
  let grid = Policy.policy_sweep sys ~caps:[| 0.; 0.5 |] ~prices:[| 0.5; 1.0 |] in
  Alcotest.(check int) "rows per cap" 2 (Array.length grid);
  Alcotest.(check int) "cols per price" 2 (Array.length grid.(0));
  check_close "row cap" 0.5 grid.(1).(0).Policy.cap

let test_deregulation_ladder_monotone () =
  let sys = Fixtures.paper5 () in
  let ladder =
    Policy.deregulation_ladder sys ~price:0.8 ~caps:[| 0.; 0.3; 0.6; 0.9; 1.2 |]
  in
  Array.iteri
    (fun k point ->
      if k > 0 then begin
        check_true "revenue nondecreasing"
          (point.Policy.revenue >= ladder.(k - 1).Policy.revenue -. 1e-7);
        check_true "utilization nondecreasing"
          (point.Policy.utilization >= ladder.(k - 1).Policy.utilization -. 1e-7)
      end)
    ladder

let test_optimal_price_dominates () =
  let sys = Fixtures.paper5 () in
  let best = Policy.optimal_price ~p_max:2.5 ~points:25 sys ~cap:0.5 in
  Array.iter
    (fun p ->
      let point = Policy.point_at sys ~price:p ~cap:0.5 in
      check_true "p* dominates grid" (best.Policy.revenue >= point.Policy.revenue -. 1e-4))
    (Numerics.Grid.linspace 0.2 2.4 8)

let test_price_response_slope_sign () =
  let sys = Fixtures.paper5 () in
  let slope = Policy.price_response_slope ~h:0.05 sys ~cap:0.5 ~p_max:2.5 () in
  (* the monopolist's optimal price moves smoothly; just require a finite,
     modest response *)
  check_in_range "dp*/dq finite" ~lo:(-2.) ~hi:2. slope

let suite =
  ( "policy",
    [
      quick "point consistency" test_point_consistency;
      quick "price sweep" test_price_sweep_matches_pointwise;
      quick "policy sweep shape" test_policy_sweep_shape;
      quick "deregulation ladder" test_deregulation_ladder_monotone;
      quick "optimal price dominates" test_optimal_price_dominates;
      quick "price response slope" test_price_response_slope_sign;
    ] )
