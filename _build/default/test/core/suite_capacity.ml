open Subsidization
open Test_helpers

let small_sys () = Fixtures.two_cp_system ()

let test_evaluate_fixed_price () =
  let plan =
    Capacity.evaluate (small_sys ()) ~pricing:(Capacity.Fixed_price 0.5) ~cap:0.5
      ~unit_cost:0.1 ~capacity:2.
  in
  check_close "capacity" 2. plan.Capacity.capacity;
  check_close "price" 0.5 plan.Capacity.price;
  check_close ~tol:1e-12 "cost" 0.2 plan.Capacity.cost;
  check_close ~tol:1e-12 "profit = revenue - cost"
    (plan.Capacity.revenue -. 0.2) plan.Capacity.profit;
  check_raises_invalid "negative cost" (fun () ->
      Capacity.evaluate (small_sys ()) ~pricing:(Capacity.Fixed_price 0.5) ~cap:0.5
        ~unit_cost:(-1.) ~capacity:1.
      |> ignore)

let test_more_capacity_lowers_utilization () =
  let at mu =
    Capacity.evaluate (small_sys ()) ~pricing:(Capacity.Fixed_price 0.5) ~cap:0.5
      ~unit_cost:0.1 ~capacity:mu
  in
  check_true "phi falls with mu"
    ((at 2.).Capacity.utilization < (at 0.5).Capacity.utilization)

let test_optimal_interior () =
  let plan =
    Capacity.optimal ~mu_lo:0.1 ~mu_hi:8. ~points:11 (small_sys ())
      ~pricing:(Capacity.Fixed_price 0.5) ~cap:0.5 ~unit_cost:0.1
  in
  check_in_range "interior optimum" ~lo:0.1 ~hi:8. plan.Capacity.capacity;
  (* dominates a few probes *)
  List.iter
    (fun mu ->
      let probe =
        Capacity.evaluate (small_sys ()) ~pricing:(Capacity.Fixed_price 0.5) ~cap:0.5
          ~unit_cost:0.1 ~capacity:mu
      in
      check_true "optimum dominates" (plan.Capacity.profit >= probe.Capacity.profit -. 1e-3))
    [ 0.3; 1.; 3.; 6. ];
  check_raises_invalid "bad range" (fun () ->
      Capacity.optimal ~mu_lo:2. ~mu_hi:1. (small_sys ())
        ~pricing:(Capacity.Fixed_price 0.5) ~cap:0.5 ~unit_cost:0.1
      |> ignore)

let test_investment_rises_with_cap () =
  let plans =
    Capacity.investment_incentive ~mu_lo:0.1 ~mu_hi:8. (small_sys ())
      ~pricing:(Capacity.Fixed_price 0.5) ~unit_cost:0.1 ~caps:[| 0.; 0.6 |]
  in
  check_true "deregulation raises optimal capacity"
    (plans.(1).Capacity.capacity >= plans.(0).Capacity.capacity -. 1e-3);
  check_true "and profit" (plans.(1).Capacity.profit >= plans.(0).Capacity.profit -. 1e-6)

let suite =
  ( "capacity",
    [
      quick "evaluate" test_evaluate_fixed_price;
      quick "capacity lowers phi" test_more_capacity_lowers_utilization;
      quick "optimal interior" test_optimal_interior;
      quick "investment rises with q" test_investment_rises_with_cap;
    ] )
