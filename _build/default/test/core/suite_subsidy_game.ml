open Numerics
open Subsidization
open Test_helpers

let game () = Subsidy_game.make (Fixtures.two_cp_system ()) ~price:0.6 ~cap:0.8

let test_make_validation () =
  check_raises_invalid "negative price" (fun () ->
      Subsidy_game.make (Fixtures.two_cp_system ()) ~price:(-1.) ~cap:1. |> ignore);
  check_raises_invalid "negative cap" (fun () ->
      Subsidy_game.make (Fixtures.two_cp_system ()) ~price:1. ~cap:(-1.) |> ignore)

let test_accessors () =
  let g = game () in
  check_close "price" 0.6 (Subsidy_game.price g);
  check_close "cap" 0.8 (Subsidy_game.cap g);
  Alcotest.(check int) "dim" 2 (Subsidy_game.dim g);
  check_close "with_price" 1.1 (Subsidy_game.price (Subsidy_game.with_price g 1.1));
  check_close "with_cap" 0.3 (Subsidy_game.cap (Subsidy_game.with_cap g 0.3));
  let box = Subsidy_game.box g in
  check_close "box hi" 0.8 (Gametheory.Box.hi_i box 0)

let test_charges () =
  let g = game () in
  let t = Subsidy_game.charges g ~subsidies:(Vec.of_list [ 0.2; 0.7 ]) in
  check_close "t_0" 0.4 t.(0);
  check_close ~tol:1e-12 "t_1 can go negative" (-0.1) t.(1)

let test_zero_subsidy_matches_one_sided () =
  let g = game () in
  let st = Subsidy_game.state g ~subsidies:(Vec.zeros 2) in
  let reference = One_sided.state (Fixtures.two_cp_system ()) ~price:0.6 in
  check_close ~tol:1e-10 "same phi" reference.System.phi st.System.phi

let test_utility_definition () =
  let g = game () in
  let s = Vec.of_list [ 0.1; 0.4 ] in
  let st = Subsidy_game.state g ~subsidies:s in
  let sys = Fixtures.two_cp_system () in
  Array.iteri
    (fun i cp ->
      check_close ~tol:1e-12 "U_i = (v_i - s_i) theta_i"
        ((cp.Econ.Cp.value -. s.(i)) *. st.System.throughputs.(i))
        (Subsidy_game.utility g ~subsidies:s i))
    sys.System.cps;
  let all = Subsidy_game.utilities g ~subsidies:s in
  check_close ~tol:1e-12 "vector matches scalar" (Subsidy_game.utility g ~subsidies:s 1) all.(1)

let test_lemma3_monotonicity () =
  let g = game () in
  let s = Vec.of_list [ 0.1; 0.2 ] in
  let base = Subsidy_game.state g ~subsidies:s in
  let bumped = Subsidy_game.state g ~subsidies:(Vec.of_list [ 0.3; 0.2 ]) in
  check_true "phi up" (bumped.System.phi >= base.System.phi);
  check_true "own theta up" (bumped.System.throughputs.(0) >= base.System.throughputs.(0));
  check_true "other theta down" (bumped.System.throughputs.(1) <= base.System.throughputs.(1))

let test_dphi_dsubsidy_positive_and_accurate () =
  let g = game () in
  let s = Vec.of_list [ 0.2; 0.3 ] in
  let st = Subsidy_game.state g ~subsidies:s in
  for i = 0 to 1 do
    let analytic = Subsidy_game.dphi_dsubsidy g st i in
    check_true "dphi/ds_i > 0" (analytic > 0.);
    let h = 1e-6 in
    let phi_at si =
      let s' = Vec.copy s in
      s'.(i) <- si;
      (Subsidy_game.state g ~subsidies:s').System.phi
    in
    let numeric = (phi_at (s.(i) +. h) -. phi_at (s.(i) -. h)) /. (2. *. h) in
    check_close ~tol:1e-5 "dphi/ds_i vs FD" numeric analytic
  done

let test_marginal_utility_matches_fd () =
  let g = game () in
  let s = Vec.of_list [ 0.15; 0.35 ] in
  for i = 0 to 1 do
    let analytic = Subsidy_game.marginal_utility g ~subsidies:s i in
    let h = 1e-6 in
    let u_at si =
      let s' = Vec.copy s in
      s'.(i) <- si;
      Subsidy_game.utility g ~subsidies:s' i
    in
    let numeric = (u_at (s.(i) +. h) -. u_at (s.(i) -. h)) /. (2. *. h) in
    check_close ~tol:1e-5 "u_i vs FD" numeric analytic
  done

let test_threshold_tau () =
  let g = game () in
  (* tau_i vanishes with s_i (the eps^m_s factor) *)
  check_close "tau at zero subsidy" 0.
    (Subsidy_game.threshold_tau g ~subsidies:(Vec.zeros 2) 0);
  let s = Vec.of_list [ 0.2; 0.3 ] in
  check_true "tau finite" (Float.is_finite (Subsidy_game.threshold_tau g ~subsidies:s 1))

let test_revenue () =
  let g = game () in
  let s = Vec.of_list [ 0.1; 0.1 ] in
  let st = Subsidy_game.state g ~subsidies:s in
  check_close ~tol:1e-12 "revenue" (0.6 *. st.System.aggregate)
    (Subsidy_game.revenue g ~subsidies:s)

let prop_marginal_utility_fd_random =
  prop "analytic marginal utility matches FD on random games" ~count:40
    QCheck2.Gen.(triple Fixtures.qcheck_seed (float_range 0.1 1.2) (float_range 0. 0.6))
    (fun (seed, p, s0) ->
      let sys = Fixtures.random_system seed in
      let g = Subsidy_game.make sys ~price:p ~cap:1. in
      let n = Subsidy_game.dim g in
      let s = Vec.make n s0 in
      let ok = ref true in
      for i = 0 to n - 1 do
        let analytic = Subsidy_game.marginal_utility g ~subsidies:s i in
        let h = 1e-6 in
        let u_at si =
          let s' = Vec.copy s in
          s'.(i) <- si;
          Subsidy_game.utility g ~subsidies:s' i
        in
        let numeric = (u_at (s.(i) +. h) -. u_at (s.(i) -. h)) /. (2. *. h) in
        if Float.abs (analytic -. numeric) > 1e-4 *. (1. +. Float.abs analytic) then
          ok := false
      done;
      !ok)

let suite =
  ( "subsidy-game",
    [
      quick "validation" test_make_validation;
      quick "accessors" test_accessors;
      quick "charges" test_charges;
      quick "zero subsidy = one-sided" test_zero_subsidy_matches_one_sided;
      quick "utility definition" test_utility_definition;
      quick "lemma 3" test_lemma3_monotonicity;
      quick "dphi/ds analytic" test_dphi_dsubsidy_positive_and_accurate;
      quick "marginal utility vs FD" test_marginal_utility_matches_fd;
      quick "threshold tau" test_threshold_tau;
      quick "revenue" test_revenue;
      prop_marginal_utility_fd_random;
    ] )
