(* Shared market fixtures for the core test suites. *)

open Subsidization

let two_cp_system () =
  let a = Econ.Cp.exponential ~name:"a" ~alpha:2. ~beta:3. ~value:0.5 () in
  let b = Econ.Cp.exponential ~name:"b" ~alpha:4. ~beta:1.5 ~value:1.2 () in
  System.make ~cps:[| a; b |] ~capacity:1. ()

let paper3 () = Scenario.fig45_system ()

let paper5 () = Scenario.fig7_11_system ()

let uniform_charges sys t = Numerics.Vec.make (System.n_cps sys) t

(* A random exponential-CP system via the library's own generator. *)
let random_system seed =
  Scenario.random_system (Numerics.Rng.create (Int64.of_int seed))

let qcheck_seed = QCheck2.Gen.int_range 0 10_000
