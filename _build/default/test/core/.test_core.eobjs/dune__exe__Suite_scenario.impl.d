test/core/suite_scenario.ml: Alcotest Array Econ List Numerics One_sided Scenario Subsidization System Test_helpers
