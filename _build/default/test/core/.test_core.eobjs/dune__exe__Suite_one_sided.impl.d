test/core/suite_one_sided.ml: Alcotest Array Fixtures Float Numerics One_sided Printf QCheck2 Subsidization System Test_helpers
