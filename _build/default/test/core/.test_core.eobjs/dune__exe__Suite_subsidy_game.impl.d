test/core/suite_subsidy_game.ml: Alcotest Array Econ Fixtures Float Gametheory Numerics One_sided QCheck2 Subsidization Subsidy_game System Test_helpers Vec
