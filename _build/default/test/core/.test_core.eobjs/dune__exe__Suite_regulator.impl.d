test/core/suite_regulator.ml: Fixtures Policy Regulator Subsidization Test_helpers
