test/core/suite_edge.ml: Array Econ Fixtures Nash Numerics One_sided QCheck2 Rng Scenario Subsidization Subsidy_game System Test_helpers Theorems Vec
