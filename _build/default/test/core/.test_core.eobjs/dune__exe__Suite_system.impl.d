test/core/suite_system.ml: Array Econ Fixtures Float List Numerics QCheck2 Scenario Subsidization System Test_helpers Vec
