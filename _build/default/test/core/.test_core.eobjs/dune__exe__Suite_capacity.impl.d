test/core/suite_capacity.ml: Array Capacity Fixtures List Subsidization Test_helpers
