test/core/suite_theorems.ml: Fixtures Format List Nash Numerics Printf String Subsidization Subsidy_game Test_helpers Theorems
