test/core/fixtures.ml: Econ Int64 Numerics QCheck2 Scenario Subsidization System
