test/core/suite_longrun.ml: Alcotest Array Fixtures Float Longrun Nash Policy Subsidization System Test_helpers
