test/core/suite_welfare.ml: Array Econ Fixtures Float Nash Numerics One_sided Revenue Sensitivity Subsidization Subsidy_game System Test_helpers Vec Welfare
