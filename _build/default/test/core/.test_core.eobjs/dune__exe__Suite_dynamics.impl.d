test/core/suite_dynamics.ml: Dynamics Fixtures Gametheory Nash Numerics Subsidization Subsidy_game Test_helpers Vec
