test/core/suite_sensitivity.ml: Alcotest Array Fixtures Float Mat Nash Numerics Printf Sensitivity Subsidization Subsidy_game System Test_helpers Vec
