test/core/suite_revenue.ml: Array Fixtures List Nash Numerics Printf Revenue Subsidization Subsidy_game System Test_helpers
