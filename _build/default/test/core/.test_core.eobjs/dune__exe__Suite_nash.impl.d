test/core/suite_nash.ml: Array Econ Fixtures Gametheory Nash Numerics Printf QCheck2 Rng Subsidization Subsidy_game System Test_helpers Vec
