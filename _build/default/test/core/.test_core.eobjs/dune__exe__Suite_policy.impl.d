test/core/suite_policy.ml: Alcotest Array Fixtures Nash Numerics Policy Subsidization System Test_helpers Welfare
