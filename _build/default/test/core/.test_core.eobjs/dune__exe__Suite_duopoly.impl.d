test/core/suite_duopoly.ml: Array Duopoly Nash Numerics One_sided Policy Scenario Subsidization System Test_helpers Vec Welfare
