open Numerics
open Subsidization
open Test_helpers

let duopoly ?(cap = 0.) ?(eta = 4.) () =
  Duopoly.make ~eta ~cps:(Scenario.fig7_11_cps ()) ~capacity_a:0.5 ~capacity_b:0.5 ~cap ()

let test_validation () =
  check_raises_invalid "no cps" (fun () ->
      Duopoly.make ~cps:[||] ~capacity_a:1. ~capacity_b:1. ~cap:0. () |> ignore);
  check_raises_invalid "bad capacity" (fun () ->
      Duopoly.make ~cps:(Scenario.fig7_11_cps ()) ~capacity_a:0. ~capacity_b:1. ~cap:0. ()
      |> ignore);
  check_raises_invalid "bad eta" (fun () ->
      Duopoly.make ~eta:0. ~cps:(Scenario.fig7_11_cps ()) ~capacity_a:1. ~capacity_b:1.
        ~cap:0. ()
      |> ignore)

let test_symmetric_split () =
  let d = duopoly () in
  let ma, mb = Duopoly.split_populations d ~prices:(0.8, 0.8) ~subsidies:(Vec.zeros 8) in
  check_true "equal prices, equal split" (Vec.approx_equal ~tol:1e-12 ma mb);
  (* and the halves reproduce the single-ISP populations *)
  let single = One_sided.state (Scenario.fig7_11_system ()) ~price:0.8 in
  check_true "halves sum to the single-ISP population"
    (Vec.approx_equal ~tol:1e-9 (Vec.add ma mb) single.System.populations)

let test_price_advantage_attracts_users () =
  let d = duopoly () in
  let ma, mb = Duopoly.split_populations d ~prices:(0.6, 1.0) ~subsidies:(Vec.zeros 8) in
  Array.iteri
    (fun i m_a -> check_true "cheaper ISP gets more users" (m_a > mb.(i)))
    ma

let test_symmetric_market_reproduces_single_isp () =
  (* two ISPs of capacity 1/2 at the same price = one ISP of capacity 1
     (Lemma-2-style decomposition: equal shares, equal utilization) *)
  let d = duopoly ~cap:1.0 () in
  let m = Duopoly.market_at d ~prices:(0.8, 0.8) in
  let single = Policy.nash_at (Scenario.fig7_11_system ()) ~price:0.8 ~cap:1.0 in
  check_close ~tol:1e-3 "phi A matches single-ISP phi"
    single.Nash.state.System.phi (fst m.Duopoly.utilizations);
  check_true "subsidies match the single-ISP game"
    (Vec.dist_inf m.Duopoly.subsidies single.Nash.subsidies < 5e-3);
  check_close ~tol:5e-3 "welfare matches"
    (Welfare.of_state (Scenario.fig7_11_system ()) single.Nash.state)
    m.Duopoly.welfare

let test_cap_zero_skips_cp_game () =
  let d = duopoly () in
  let m = Duopoly.market_at d ~prices:(0.7, 0.9) in
  Array.iter (fun s -> check_close "no subsidies" 0. s) m.Duopoly.subsidies

let test_revenues_definition () =
  let d = duopoly () in
  let m = Duopoly.market_at d ~prices:(0.7, 0.9) in
  let ma, mb = m.Duopoly.populations in
  check_true "population vectors exposed" (Vec.dim ma = 8 && Vec.dim mb = 8);
  check_true "revenues positive" (fst m.Duopoly.revenues > 0. && snd m.Duopoly.revenues > 0.)

let test_price_competition_beats_monopoly () =
  let d = duopoly () in
  let eq = Duopoly.price_equilibrium ~max_sweeps:15 d in
  let mono = Duopoly.monopoly_benchmark d in
  let avg (m : Duopoly.market) = 0.5 *. (fst m.Duopoly.prices +. snd m.Duopoly.prices) in
  check_true "competition cuts the price" (avg eq < avg mono);
  check_true "and raises welfare" (eq.Duopoly.welfare >= mono.Duopoly.welfare -. 1e-6)

let test_sharper_eta_stronger_competition () =
  let soft = Duopoly.price_equilibrium ~max_sweeps:15 (duopoly ~eta:1. ()) in
  let sharp = Duopoly.price_equilibrium ~max_sweeps:15 (duopoly ~eta:8. ()) in
  let avg (m : Duopoly.market) = 0.5 *. (fst m.Duopoly.prices +. snd m.Duopoly.prices) in
  check_true "more price-sensitive users, lower prices" (avg sharp < avg soft +. 1e-6)

let suite =
  ( "duopoly",
    [
      quick "validation" test_validation;
      quick "symmetric split" test_symmetric_split;
      quick "price advantage" test_price_advantage_attracts_users;
      quick "reproduces single ISP" test_symmetric_market_reproduces_single_isp;
      quick "cap zero" test_cap_zero_skips_cp_game;
      quick "revenue definition" test_revenues_definition;
      quick "competition vs monopoly" test_price_competition_beats_monopoly;
      quick "eta effect" test_sharper_eta_stronger_competition;
    ] )
