open Numerics
open Test_helpers

let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |]

let test_moments () =
  check_close "mean" 5. (Stats.mean xs);
  check_close ~tol:1e-9 "variance" (32. /. 7.) (Stats.variance xs);
  check_close ~tol:1e-9 "stddev" (sqrt (32. /. 7.)) (Stats.stddev xs);
  check_close "singleton variance" 0. (Stats.variance [| 3. |]);
  check_raises_invalid "empty mean" (fun () -> Stats.mean [||] |> ignore)

let test_quantiles () =
  check_close "median" 4.5 (Stats.median xs);
  check_close "q0" 2. (Stats.quantile xs 0.);
  check_close "q1" 9. (Stats.quantile xs 1.);
  check_close ~tol:1e-9 "q25" 4. (Stats.quantile xs 0.25);
  check_raises_invalid "bad p" (fun () -> Stats.quantile xs 1.5 |> ignore);
  (* quantile must not mutate its input *)
  let ys = [| 3.; 1.; 2. |] in
  let _ = Stats.quantile ys 0.5 in
  check_true "input untouched" (ys = [| 3.; 1.; 2. |])

let test_extrema () =
  check_close "min" 2. (Stats.minimum xs);
  check_close "max" 9. (Stats.maximum xs)

let test_geometric_mean () =
  check_close ~tol:1e-12 "geomean" 2. (Stats.geometric_mean [| 1.; 2.; 4. |]);
  check_raises_invalid "non-positive" (fun () ->
      Stats.geometric_mean [| 1.; 0. |] |> ignore)

let test_correlation () =
  let ys = Array.map (fun x -> (2. *. x) +. 1. ) xs in
  check_close ~tol:1e-12 "perfect correlation" 1. (Stats.correlation xs ys);
  let zs = Array.map (fun x -> -.x) xs in
  check_close ~tol:1e-12 "perfect anticorrelation" (-1.) (Stats.correlation xs zs);
  check_raises_invalid "degenerate" (fun () ->
      Stats.correlation [| 1.; 1. |] [| 1.; 2. |] |> ignore)

let test_summary () =
  let s = Stats.summarize xs in
  Alcotest.(check int) "n" 8 s.Stats.n;
  check_close "summary mean" 5. s.Stats.mean;
  check_close "summary median" 4.5 s.Stats.median;
  check_close "summary max" 9. s.Stats.max

let prop_mean_bounds =
  prop "min <= mean <= max" ~count:200
    QCheck2.Gen.(list_size (int_range 1 20) (float_range (-100.) 100.))
    (fun lst ->
      let a = Array.of_list lst in
      let m = Stats.mean a in
      Stats.minimum a <= m +. 1e-9 && m <= Stats.maximum a +. 1e-9)

let prop_variance_shift_invariant =
  prop "variance is shift-invariant" ~count:200
    QCheck2.Gen.(pair (list_size (int_range 2 20) (float_range (-10.) 10.))
                   (float_range (-50.) 50.))
    (fun (lst, shift) ->
      let a = Array.of_list lst in
      let shifted = Array.map (fun x -> x +. shift) a in
      Float.abs (Stats.variance a -. Stats.variance shifted) < 1e-6)

let suite =
  ( "stats",
    [
      quick "moments" test_moments;
      quick "quantiles" test_quantiles;
      quick "extrema" test_extrema;
      quick "geometric mean" test_geometric_mean;
      quick "correlation" test_correlation;
      quick "summary" test_summary;
      prop_mean_bounds;
      prop_variance_shift_invariant;
    ] )
