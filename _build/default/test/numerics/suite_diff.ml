open Numerics
open Test_helpers

let test_first_derivatives () =
  check_close ~tol:1e-7 "central exp" (exp 1.) (Diff.central exp 1.);
  check_close ~tol:1e-5 "forward sin" (cos 0.5) (Diff.forward sin 0.5);
  check_close ~tol:1e-5 "backward sin" (cos 0.5) (Diff.backward sin 0.5);
  check_close ~tol:1e-9 "richardson exp" (exp 1.) (Diff.richardson exp 1.)

let test_second_derivative () =
  check_close ~tol:1e-5 "second of x^3 at 2" 12. (Diff.second (fun x -> x ** 3.) 2.);
  check_close ~tol:1e-5 "second of sin at 0.3" (-.sin 0.3) (Diff.second sin 0.3)

let test_partial_gradient () =
  let f (x : Vec.t) = (x.(0) *. x.(0)) +. (3. *. x.(0) *. x.(1)) in
  let at = Vec.of_list [ 2.; 1. ] in
  check_close ~tol:1e-6 "df/dx0" 7. (Diff.partial f at 0);
  check_close ~tol:1e-6 "df/dx1" 6. (Diff.partial f at 1);
  let g = Diff.gradient f at in
  check_close ~tol:1e-6 "gradient x0" 7. g.(0);
  check_close ~tol:1e-6 "gradient x1" 6. g.(1);
  check_raises_invalid "partial oob" (fun () -> Diff.partial f at 2 |> ignore)

let test_jacobian () =
  let f (x : Vec.t) = Vec.of_list [ x.(0) *. x.(1); x.(0) +. (2. *. x.(1)) ] in
  let j = Diff.jacobian f (Vec.of_list [ 3.; 4. ]) in
  check_close ~tol:1e-6 "j00" 4. (Mat.get j 0 0);
  check_close ~tol:1e-6 "j01" 3. (Mat.get j 0 1);
  check_close ~tol:1e-6 "j10" 1. (Mat.get j 1 0);
  check_close ~tol:1e-6 "j11" 2. (Mat.get j 1 1)

let test_hessian () =
  let f (x : Vec.t) =
    (x.(0) *. x.(0) *. x.(1)) +. (x.(1) *. x.(1))
  in
  let h = Diff.hessian f (Vec.of_list [ 1.; 2. ]) in
  check_close ~tol:1e-4 "h00 = 2y" 4. (Mat.get h 0 0);
  check_close ~tol:1e-4 "h01 = 2x" 2. (Mat.get h 0 1);
  check_close ~tol:1e-4 "h10 symmetric" (Mat.get h 0 1) (Mat.get h 1 0);
  check_close ~tol:1e-4 "h11 = 2" 2. (Mat.get h 1 1)

let prop_central_matches_analytic_poly =
  prop "central difference on quadratics is near-exact" ~count:200
    QCheck2.Gen.(triple (float_range (-3.) 3.) (float_range (-3.) 3.) (float_range (-2.) 2.))
    (fun (a, b, x) ->
      let f t = (a *. t *. t) +. (b *. t) in
      let expected = (2. *. a *. x) +. b in
      Float.abs (Diff.central f x -. expected) <= 1e-6 *. (1. +. Float.abs expected))

let prop_richardson_accuracy =
  prop "richardson reaches ~1e-8 relative accuracy on exp" ~count:50 (float_range (-2.) 2.)
    (fun x ->
      let exact = exp x in
      let e_rich = Float.abs (Diff.richardson exp x -. exact) in
      e_rich <= 1e-8 *. (1. +. exact))

let suite =
  ( "diff",
    [
      quick "first derivatives" test_first_derivatives;
      quick "second derivative" test_second_derivative;
      quick "partial/gradient" test_partial_gradient;
      quick "jacobian" test_jacobian;
      quick "hessian" test_hessian;
      prop_central_matches_analytic_poly;
      prop_richardson_accuracy;
    ] )
