open Numerics
open Test_helpers

let sym2 = Mat.of_rows [| [| 2.; 1. |]; [| 1.; 2. |] |] (* eigenvalues 1 and 3 *)

let test_power_iteration () =
  let pair = Eigen.power_iteration sym2 in
  check_close ~tol:1e-7 "dominant eigenvalue" 3. pair.Eigen.value;
  (* eigenvector of 3 is (1,1)/sqrt2 up to sign *)
  check_close ~tol:1e-5 "eigenvector ratio" 1.
    (Float.abs (pair.Eigen.vector.(0) /. pair.Eigen.vector.(1)));
  (* residual ||Av - lambda v|| small *)
  let residual =
    Vec.norm2
      (Vec.sub (Mat.matvec sym2 pair.Eigen.vector)
         (Vec.scale pair.Eigen.value pair.Eigen.vector))
  in
  check_true "eigen residual" (residual < 1e-5)

let test_inverse_iteration () =
  let pair = Eigen.inverse_iteration sym2 in
  check_close ~tol:1e-7 "smallest eigenvalue" 1. pair.Eigen.value;
  let near3 = Eigen.inverse_iteration ~shift:2.9 sym2 in
  check_close ~tol:1e-7 "shifted finds 3" 3. near3.Eigen.value

let test_spectral_bound () =
  check_true "bound dominates spectral radius" (Eigen.spectral_radius_bound sym2 >= 3.);
  check_raises_invalid "non-square" (fun () ->
      Eigen.spectral_radius_bound (Mat.zeros ~rows:2 ~cols:3) |> ignore)

let test_jacobi_eigenvalues () =
  let eigs = Eigen.symmetric_eigenvalues sym2 in
  check_close ~tol:1e-9 "lambda1" 1. eigs.(0);
  check_close ~tol:1e-9 "lambda2" 3. eigs.(1);
  let a =
    Mat.of_rows [| [| 4.; 1.; 0. |]; [| 1.; 3.; 1. |]; [| 0.; 1.; 2. |] |]
  in
  let eigs3 = Eigen.symmetric_eigenvalues a in
  (* trace and determinant are eigenvalue invariants *)
  check_close ~tol:1e-8 "trace" 9. (eigs3.(0) +. eigs3.(1) +. eigs3.(2));
  check_close ~tol:1e-7 "det" (Linalg.det a) (eigs3.(0) *. eigs3.(1) *. eigs3.(2));
  check_raises_invalid "asymmetric input" (fun () ->
      Eigen.symmetric_eigenvalues (Mat.of_rows [| [| 1.; 2. |]; [| 0.; 1. |] |]) |> ignore)

let prop_jacobi_matches_power =
  prop "jacobi's largest eigenvalue matches power iteration on random SPD" ~count:40
    rng_gen
    (fun rng ->
      let n = 2 + Rng.int rng 4 in
      let b =
        Mat.init ~rows:n ~cols:n (fun _ _ -> Rng.uniform rng ~lo:(-1.) ~hi:1.)
      in
      (* B^T B + I is symmetric positive definite *)
      let a = Mat.add (Mat.matmul (Mat.transpose b) b) (Mat.identity n) in
      let eigs = Eigen.symmetric_eigenvalues a in
      let dominant = Eigen.power_iteration a in
      Float.abs (eigs.(n - 1) -. dominant.Eigen.value)
      <= 1e-5 *. Float.max 1. eigs.(n - 1))

let suite =
  ( "eigen",
    [
      quick "power iteration" test_power_iteration;
      quick "inverse iteration" test_inverse_iteration;
      quick "spectral bound" test_spectral_bound;
      quick "jacobi" test_jacobi_eigenvalues;
      prop_jacobi_matches_power;
    ] )
