test/numerics/test_numerics.mli:
