test/numerics/suite_fixedpoint.ml: Alcotest Fixedpoint Float Numerics QCheck2 Test_helpers Vec
