test/numerics/suite_mat.ml: Alcotest List Mat Numerics QCheck2 Test_helpers Vec
