test/numerics/suite_vec.ml: Alcotest Array Float Numerics QCheck2 Test_helpers Vec
