test/numerics/suite_diff.ml: Array Diff Float Mat Numerics QCheck2 Test_helpers Vec
