test/numerics/suite_interp.ml: Alcotest Array Float Grid Interp Numerics QCheck2 Test_helpers
