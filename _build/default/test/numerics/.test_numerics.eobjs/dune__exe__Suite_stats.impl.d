test/numerics/suite_stats.ml: Alcotest Array Float Numerics QCheck2 Stats Test_helpers
