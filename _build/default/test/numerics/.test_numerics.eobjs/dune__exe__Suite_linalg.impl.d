test/numerics/suite_linalg.ml: Alcotest Array Float Linalg Mat Numerics Rng Test_helpers Vec
