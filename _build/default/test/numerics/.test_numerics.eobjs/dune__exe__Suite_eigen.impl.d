test/numerics/suite_eigen.ml: Array Eigen Float Linalg Mat Numerics Rng Test_helpers Vec
