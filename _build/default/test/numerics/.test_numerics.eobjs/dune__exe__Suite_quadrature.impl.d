test/numerics/suite_quadrature.ml: Array Float Grid Numerics QCheck2 Quadrature Test_helpers
