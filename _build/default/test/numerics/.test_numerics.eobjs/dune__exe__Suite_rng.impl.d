test/numerics/suite_rng.ml: Array Float Numerics Rng Stats Test_helpers
