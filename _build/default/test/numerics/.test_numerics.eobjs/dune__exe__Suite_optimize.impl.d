test/numerics/suite_optimize.ml: Array Float Grid Numerics Optimize QCheck2 Test_helpers Vec
