test/numerics/suite_grid.ml: Alcotest Array Grid Numerics QCheck2 Test_helpers
