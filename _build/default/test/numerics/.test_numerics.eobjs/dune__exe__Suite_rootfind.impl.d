test/numerics/suite_rootfind.ml: Alcotest Float Numerics Rootfind Test_helpers
