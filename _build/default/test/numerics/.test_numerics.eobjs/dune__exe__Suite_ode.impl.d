test/numerics/suite_ode.ml: Alcotest Array Float Numerics Ode QCheck2 Test_helpers Vec
