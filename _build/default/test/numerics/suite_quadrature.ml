open Numerics
open Test_helpers

let test_trapezoid () =
  check_close ~tol:1e-4 "trapezoid x^2 on [0,1]" (1. /. 3.)
    (Quadrature.trapezoid ~n:1000 (fun x -> x *. x) ~lo:0. ~hi:1.);
  check_close "empty interval" 0. (Quadrature.trapezoid (fun x -> x) ~lo:1. ~hi:1.);
  check_raises_invalid "reversed interval" (fun () ->
      Quadrature.trapezoid (fun x -> x) ~lo:1. ~hi:0. |> ignore)

let test_simpson () =
  (* Simpson is exact for cubics *)
  check_close ~tol:1e-12 "simpson cubic exact" 0.25
    (Quadrature.simpson ~n:2 (fun x -> x ** 3.) ~lo:0. ~hi:1.);
  check_close ~tol:1e-8 "simpson sin" 2. (Quadrature.simpson sin ~lo:0. ~hi:Float.pi);
  (* odd panel counts are rounded up rather than rejected *)
  check_close ~tol:1e-5 "simpson odd n" 2. (Quadrature.simpson ~n:31 sin ~lo:0. ~hi:Float.pi)

let test_adaptive () =
  check_close ~tol:1e-9 "adaptive exp" (exp 1. -. 1.)
    (Quadrature.adaptive_simpson exp ~lo:0. ~hi:1.);
  (* sharply peaked integrand: adaptive handles what fixed grids miss *)
  let spike x = 1. /. (1e-4 +. ((x -. 0.37) ** 2.)) in
  let reference = Quadrature.simpson ~n:200_000 spike ~lo:0. ~hi:1. in
  check_close ~tol:1e-6 "adaptive spike" reference
    (Quadrature.adaptive_simpson ~tol:1e-10 spike ~lo:0. ~hi:1.)

let test_integrate_samples () =
  let xs = Grid.linspace 0. 1. 101 in
  let ys = Array.map (fun x -> x) xs in
  check_close ~tol:1e-12 "sampled linear" 0.5 (Quadrature.integrate_samples xs ys);
  check_raises_invalid "length mismatch" (fun () ->
      Quadrature.integrate_samples xs [| 1. |] |> ignore);
  check_raises_invalid "non-increasing xs" (fun () ->
      Quadrature.integrate_samples [| 0.; 0. |] [| 1.; 1. |] |> ignore)

let prop_linearity =
  prop "integration is linear" ~count:100
    QCheck2.Gen.(pair (float_range (-3.) 3.) (float_range (-3.) 3.))
    (fun (a, b) ->
      let f x = (a *. sin x) +. (b *. x) in
      let whole = Quadrature.adaptive_simpson f ~lo:0. ~hi:2. in
      let parts =
        (a *. Quadrature.adaptive_simpson sin ~lo:0. ~hi:2.)
        +. (b *. Quadrature.adaptive_simpson (fun x -> x) ~lo:0. ~hi:2.)
      in
      Float.abs (whole -. parts) < 1e-8)

let prop_interval_additivity =
  prop "integral over [0,c] + [c,2] = [0,2]" ~count:100 (float_range 0.1 1.9)
    (fun c ->
      let f x = exp (-.x) *. sin (3. *. x) in
      let left = Quadrature.adaptive_simpson f ~lo:0. ~hi:c in
      let right = Quadrature.adaptive_simpson f ~lo:c ~hi:2. in
      let whole = Quadrature.adaptive_simpson f ~lo:0. ~hi:2. in
      Float.abs (left +. right -. whole) < 1e-8)

let suite =
  ( "quadrature",
    [
      quick "trapezoid" test_trapezoid;
      quick "simpson" test_simpson;
      quick "adaptive" test_adaptive;
      quick "sampled" test_integrate_samples;
      prop_linearity;
      prop_interval_additivity;
    ] )
