open Numerics
open Test_helpers

let parabola x = -.((x -. 1.3) ** 2.) (* max at 1.3 *)

let test_golden_section () =
  let r = Optimize.golden_section parabola ~lo:0. ~hi:3. in
  check_close ~tol:1e-6 "golden argmax" 1.3 r.Optimize.x;
  check_close ~tol:1e-9 "golden max" 0. r.Optimize.fx;
  check_raises_invalid "bad interval" (fun () ->
      Optimize.golden_section parabola ~lo:3. ~hi:0. |> ignore)

let test_brent_max () =
  let r = Optimize.brent_max parabola ~lo:0. ~hi:3. in
  check_close ~tol:1e-6 "brent argmax" 1.3 r.Optimize.x;
  let golden = Optimize.golden_section parabola ~lo:0. ~hi:3. in
  check_true "brent uses fewer evals" (r.Optimize.evaluations <= golden.Optimize.evaluations)

let test_boundary_maximum () =
  let f x = x in
  let r = Optimize.grid_then_golden f ~lo:0. ~hi:2. in
  check_close ~tol:1e-6 "boundary max" 2. r.Optimize.x

let test_grid_then_golden_multimodal () =
  (* two humps: global max at x ~ 3.97 *)
  let f x = sin x +. (0.4 *. sin (3. *. x)) in
  let g = Optimize.grid_then_golden ~points:65 f ~lo:0. ~hi:6. in
  let brute = Optimize.argmax_on_grid f (Grid.linspace 0. 6. 6001) in
  (* two humps are nearly tied; require matching the global VALUE *)
  check_close ~tol:1e-6 "multimodal max value" brute.Optimize.fx g.Optimize.fx

let test_argmax_on_grid () =
  let r = Optimize.argmax_on_grid (fun x -> -.Float.abs x) [| -2.; -1.; 3. |] in
  check_close "grid argmax" (-1.) r.Optimize.x;
  check_raises_invalid "empty grid" (fun () ->
      Optimize.argmax_on_grid (fun x -> x) [||] |> ignore)

let test_coordinate_ascent () =
  (* separable concave bowl with max at (1, -0.5) clipped to the box *)
  let f (x : Vec.t) = -.((x.(0) -. 1.) ** 2.) -. ((x.(1) +. 0.5) ** 2.) in
  let x, fx =
    Optimize.coordinate_ascent f ~lo:(Vec.of_list [ 0.; 0. ])
      ~hi:(Vec.of_list [ 2.; 2. ])
      ~x0:(Vec.of_list [ 2.; 2. ])
  in
  check_close ~tol:1e-5 "ca x0" 1. x.(0);
  check_close ~tol:1e-5 "ca x1 clipped" 0. x.(1);
  check_close ~tol:1e-4 "ca value" (-0.25) fx

let prop_golden_finds_planted_max =
  prop "golden section finds a planted quadratic max" ~count:200
    (float_range 0.2 2.8)
    (fun peak ->
      let f x = -.((x -. peak) ** 2.) in
      let r = Optimize.golden_section f ~lo:0. ~hi:3. in
      Float.abs (r.Optimize.x -. peak) < 1e-6)

let prop_grid_never_worse_than_endpoints =
  prop "grid_then_golden dominates both endpoints" ~count:100
    QCheck2.Gen.(pair (float_range (-2.) 2.) (float_range (-2.) 2.))
    (fun (a, b) ->
      let f x = (a *. sin x) +. (b *. cos (2. *. x)) in
      let r = Optimize.grid_then_golden f ~lo:(-3.) ~hi:3. in
      r.Optimize.fx >= f (-3.) -. 1e-9 && r.Optimize.fx >= f 3. -. 1e-9)

let suite =
  ( "optimize",
    [
      quick "golden section" test_golden_section;
      quick "brent max" test_brent_max;
      quick "boundary max" test_boundary_maximum;
      quick "multimodal" test_grid_then_golden_multimodal;
      quick "argmax on grid" test_argmax_on_grid;
      quick "coordinate ascent" test_coordinate_ascent;
      prop_golden_finds_planted_max;
      prop_grid_never_worse_than_endpoints;
    ] )
