open Numerics
open Test_helpers

let m23 () = Mat.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |]

let test_construct () =
  let m = m23 () in
  Alcotest.(check int) "rows" 2 (Mat.rows m);
  Alcotest.(check int) "cols" 3 (Mat.cols m);
  check_close "get" 6. (Mat.get m 1 2);
  check_raises_invalid "bad dims" (fun () -> Mat.create ~rows:0 ~cols:2 1.);
  check_raises_invalid "ragged" (fun () -> Mat.of_rows [| [| 1. |]; [| 1.; 2. |] |]);
  check_raises_invalid "oob get" (fun () -> Mat.get (m23 ()) 2 0)

let test_identity_diag () =
  let i3 = Mat.identity 3 in
  check_close "identity diag" 1. (Mat.get i3 1 1);
  check_close "identity off" 0. (Mat.get i3 0 1);
  let d = Mat.diag (Vec.of_list [ 2.; 3. ]) in
  check_close "diag" 3. (Mat.get d 1 1);
  check_close "diag off" 0. (Mat.get d 0 1)

let test_transpose () =
  let t = Mat.transpose (m23 ()) in
  Alcotest.(check int) "t rows" 3 (Mat.rows t);
  check_close "t entry" 4. (Mat.get t 0 1);
  check_true "double transpose" (Mat.approx_equal (Mat.transpose t) (m23 ()))

let test_rows_cols_access () =
  let m = m23 () in
  check_true "row" (Vec.approx_equal (Mat.row m 1) (Vec.of_list [ 4.; 5.; 6. ]));
  check_true "col" (Vec.approx_equal (Mat.col m 2) (Vec.of_list [ 3.; 6. ]));
  check_true "to_rows" (Mat.to_rows m = [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |])

let test_arithmetic () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_rows [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  check_close "add" 10. (Mat.get (Mat.add a b) 1 0);
  check_close "sub" (-4.) (Mat.get (Mat.sub a b) 0 0);
  check_close "scale" 8. (Mat.get (Mat.scale 2. a) 1 1);
  let c = Mat.matmul a b in
  check_close "matmul 00" 19. (Mat.get c 0 0);
  check_close "matmul 11" 50. (Mat.get c 1 1);
  check_raises_invalid "matmul mismatch" (fun () -> Mat.matmul (m23 ()) a |> ignore)

let test_matvec () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let x = Vec.of_list [ 1.; 1. ] in
  check_true "matvec" (Vec.approx_equal (Mat.matvec a x) (Vec.of_list [ 3.; 7. ]));
  check_true "vecmat" (Vec.approx_equal (Mat.vecmat x a) (Vec.of_list [ 4.; 6. ]))

let test_norms () =
  let a = Mat.of_rows [| [| 1.; -2. |]; [| 3.; 4. |] |] in
  check_close "inf norm" 7. (Mat.norm_inf a);
  check_close "frobenius" (sqrt 30.) (Mat.norm_frobenius a)

let test_submatrix () =
  let m = Mat.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |]; [| 7.; 8.; 9. |] |] in
  let s = Mat.submatrix m ~row_idx:[| 0; 2 |] ~col_idx:[| 1; 2 |] in
  check_close "sub 00" 2. (Mat.get s 0 0);
  check_close "sub 11" 9. (Mat.get s 1 1);
  check_raises_invalid "empty idx" (fun () ->
      Mat.submatrix m ~row_idx:[||] ~col_idx:[| 0 |] |> ignore)

let prop_matmul_identity =
  prop "A * I = A" ~count:50
    QCheck2.Gen.(list_size (return 9) (float_range (-5.) 5.))
    (fun xs ->
      let a = Mat.init ~rows:3 ~cols:3 (fun i j -> List.nth xs ((3 * i) + j)) in
      Mat.approx_equal (Mat.matmul a (Mat.identity 3)) a)

let prop_transpose_product =
  prop "(AB)^T = B^T A^T" ~count:50
    QCheck2.Gen.(pair (list_size (return 4) (float_range (-3.) 3.))
                   (list_size (return 4) (float_range (-3.) 3.)))
    (fun (xs, ys) ->
      let a = Mat.init ~rows:2 ~cols:2 (fun i j -> List.nth xs ((2 * i) + j)) in
      let b = Mat.init ~rows:2 ~cols:2 (fun i j -> List.nth ys ((2 * i) + j)) in
      Mat.approx_equal ~tol:1e-9
        (Mat.transpose (Mat.matmul a b))
        (Mat.matmul (Mat.transpose b) (Mat.transpose a)))

let suite =
  ( "mat",
    [
      quick "construct" test_construct;
      quick "identity/diag" test_identity_diag;
      quick "transpose" test_transpose;
      quick "rows/cols" test_rows_cols_access;
      quick "arithmetic" test_arithmetic;
      quick "matvec" test_matvec;
      quick "norms" test_norms;
      quick "submatrix" test_submatrix;
      prop_matmul_identity;
      prop_transpose_product;
    ] )
