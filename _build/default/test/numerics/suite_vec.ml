open Numerics
open Test_helpers

let test_constructors () =
  check_close "make" 2.5 (Vec.make 3 2.5).(1);
  check_close "init" 4. (Vec.init 5 (fun i -> float_of_int (i * 2))).(2);
  check_close "zeros" 0. (Vec.zeros 3).(0);
  check_close "ones" 1. (Vec.ones 3).(2);
  Alcotest.(check int) "dim" 4 (Vec.dim (Vec.zeros 4));
  check_true "of_list/to_list roundtrip"
    (Vec.to_list (Vec.of_list [ 1.; 2.; 3. ]) = [ 1.; 2.; 3. ])

let test_basis () =
  let e1 = Vec.basis 3 1 in
  check_close "basis one" 1. e1.(1);
  check_close "basis zero" 0. e1.(0);
  check_raises_invalid "basis out of range" (fun () -> Vec.basis 3 3)

let test_arithmetic () =
  let x = Vec.of_list [ 1.; 2.; 3. ] and y = Vec.of_list [ 4.; 5.; 6. ] in
  check_close "add" 9. (Vec.add x y).(2);
  check_close "sub" (-3.) (Vec.sub x y).(0);
  check_close "mul" 10. (Vec.mul x y).(1);
  check_close "scale" 6. (Vec.scale 2. x).(2);
  check_close "axpy" 9. (Vec.axpy 2. x y).(1);
  check_close "neg" (-2.) (Vec.neg x).(1);
  check_close "dot" 32. (Vec.dot x y);
  check_close "sum" 6. (Vec.sum x);
  check_raises_invalid "dim mismatch" (fun () -> Vec.add x (Vec.zeros 2))

let test_norms () =
  let x = Vec.of_list [ 3.; -4. ] in
  check_close "norm2" 5. (Vec.norm2 x);
  check_close "norm_inf" 4. (Vec.norm_inf x);
  check_close "dist_inf" 7. (Vec.dist_inf x (Vec.of_list [ -4.; 3. ]))

let test_extrema () =
  let x = Vec.of_list [ 2.; 9.; -3.; 9. ] in
  check_close "max" 9. (Vec.max_elt x);
  check_close "min" (-3.) (Vec.min_elt x);
  Alcotest.(check int) "argmax first tie" 1 (Vec.argmax x);
  Alcotest.(check int) "argmin" 2 (Vec.argmin x);
  check_raises_invalid "empty max" (fun () -> Vec.max_elt [||])

let test_clamp () =
  let x = Vec.of_list [ -1.; 0.5; 2. ] in
  let c = Vec.clamp ~lo:0. ~hi:1. x in
  check_close "clamp low" 0. c.(0);
  check_close "clamp mid" 0.5 c.(1);
  check_close "clamp high" 1. c.(2);
  check_raises_invalid "clamp bad bounds" (fun () -> Vec.clamp ~lo:1. ~hi:0. x)

let test_approx_equal () =
  check_true "equal within tol"
    (Vec.approx_equal ~tol:1e-6 (Vec.of_list [ 1. ]) (Vec.of_list [ 1. +. 1e-9 ]));
  check_true "unequal"
    (not (Vec.approx_equal (Vec.of_list [ 1. ]) (Vec.of_list [ 1.1 ])));
  check_true "different dims" (not (Vec.approx_equal (Vec.zeros 2) (Vec.zeros 3)))

let prop_triangle_inequality =
  prop "norm2 triangle inequality"
    QCheck2.Gen.(pair (list_size (return 5) (float_range (-10.) 10.))
                   (list_size (return 5) (float_range (-10.) 10.)))
    (fun (xs, ys) ->
      let x = Vec.of_list xs and y = Vec.of_list ys in
      Vec.norm2 (Vec.add x y) <= Vec.norm2 x +. Vec.norm2 y +. 1e-9)

let prop_dot_symmetry =
  prop "dot is symmetric"
    QCheck2.Gen.(pair (list_size (return 4) (float_range (-5.) 5.))
                   (list_size (return 4) (float_range (-5.) 5.)))
    (fun (xs, ys) ->
      let x = Vec.of_list xs and y = Vec.of_list ys in
      Float.abs (Vec.dot x y -. Vec.dot y x) < 1e-12)

let suite =
  ( "vec",
    [
      quick "constructors" test_constructors;
      quick "basis" test_basis;
      quick "arithmetic" test_arithmetic;
      quick "norms" test_norms;
      quick "extrema" test_extrema;
      quick "clamp" test_clamp;
      quick "approx_equal" test_approx_equal;
      prop_triangle_inequality;
      prop_dot_symmetry;
    ] )
