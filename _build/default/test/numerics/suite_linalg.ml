open Numerics
open Test_helpers

let random_invertible rng n =
  (* diagonally dominant => invertible *)
  Mat.init ~rows:n ~cols:n (fun i j ->
      if i = j then 5. +. Rng.float rng else Rng.uniform rng ~lo:(-1.) ~hi:1.)

let test_solve_known () =
  let a = Mat.of_rows [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let b = Vec.of_list [ 5.; 10. ] in
  let x = Linalg.solve a b in
  check_close "x0" 1. x.(0);
  check_close "x1" 3. x.(1)

let test_det () =
  let a = Mat.of_rows [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  check_close "det 2x2" 5. (Linalg.det a);
  check_close "det identity" 1. (Linalg.det (Mat.identity 4));
  let singular = Mat.of_rows [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  check_close "det singular" 0. (Linalg.det singular)

let test_inverse () =
  let a = Mat.of_rows [| [| 4.; 7. |]; [| 2.; 6. |] |] in
  let inv = Linalg.inverse a in
  check_true "A * A^-1 = I" (Mat.approx_equal ~tol:1e-10 (Mat.matmul a inv) (Mat.identity 2))

let test_singular_raises () =
  let s = Mat.of_rows [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  (match Linalg.solve s (Vec.of_list [ 1.; 2. ]) with
  | _ -> Alcotest.fail "expected Singular"
  | exception Linalg.Singular -> ());
  match Linalg.inverse s with
  | _ -> Alcotest.fail "expected Singular"
  | exception Linalg.Singular -> ()

let test_not_square () =
  check_raises_invalid "solve non-square" (fun () ->
      Linalg.solve (Mat.zeros ~rows:2 ~cols:3) (Vec.zeros 2) |> ignore)

let test_solve_many () =
  let a = Mat.of_rows [| [| 3.; 0. |]; [| 0.; 2. |] |] in
  match Linalg.solve_many a [ Vec.of_list [ 3.; 4. ]; Vec.of_list [ 6.; 2. ] ] with
  | [ x1; x2 ] ->
    check_close "x1" 1. x1.(0);
    check_close "x1b" 2. x1.(1);
    check_close "x2" 2. x2.(0);
    check_close "x2b" 1. x2.(1)
  | _ -> Alcotest.fail "wrong result arity"

let test_pivoting () =
  (* zero on the initial pivot forces a row swap *)
  let a = Mat.of_rows [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Linalg.solve a (Vec.of_list [ 2.; 3. ]) in
  check_close "swap x0" 3. x.(0);
  check_close "swap x1" 2. x.(1);
  check_close "det with swap" (-1.) (Linalg.det a)

let test_condition () =
  check_close ~tol:1e-9 "cond(I)" 1. (Linalg.condition_inf (Mat.identity 3));
  check_true "cond singular = inf"
    (Linalg.condition_inf (Mat.of_rows [| [| 1.; 1. |]; [| 1.; 1. |] |]) = infinity)

let test_minors () =
  let a = Mat.of_rows [| [| 2.; 1.; 0. |]; [| 1.; 3.; 1. |]; [| 0.; 1.; 4. |] |] in
  let minors = Linalg.leading_principal_minors a in
  check_close "minor 1" 2. minors.(0);
  check_close "minor 2" 5. minors.(1);
  check_close "minor 3" (Linalg.det a) minors.(2);
  check_close "principal {0,2}" 8. (Linalg.principal_minor a [| 0; 2 |]);
  check_close "empty minor" 1. (Linalg.principal_minor a [||]);
  check_raises_invalid "non-increasing idx" (fun () ->
      Linalg.principal_minor a [| 2; 0 |] |> ignore)

let test_lstsq () =
  (* overdetermined consistent system *)
  let a = Mat.of_rows [| [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |] |] in
  let x_true = Vec.of_list [ 2.; -1. ] in
  let b = Mat.matvec a x_true in
  let x = Linalg.lstsq a b in
  check_true "consistent solution" (Vec.approx_equal ~tol:1e-10 x x_true);
  (* inconsistent: projects onto the column space *)
  let b' = Vec.of_list [ 1.; 1.; 0. ] in
  let x' = Linalg.lstsq a b' in
  (* normal equations: [[2,1],[1,2]] x = [1,1] => x = (1/3, 1/3) *)
  check_close ~tol:1e-10 "ls x0" (1. /. 3.) x'.(0);
  check_close ~tol:1e-10 "ls x1" (1. /. 3.) x'.(1);
  check_raises_invalid "underdetermined" (fun () ->
      Linalg.lstsq (Mat.zeros ~rows:1 ~cols:2) (Vec.zeros 1) |> ignore)

let prop_solve_roundtrip =
  prop "A x = b roundtrip on random diagonally dominant systems" ~count:100 rng_gen
    (fun rng ->
      let n = 2 + Rng.int rng 6 in
      let a = random_invertible rng n in
      let x_true = Vec.init n (fun _ -> Rng.uniform rng ~lo:(-3.) ~hi:3.) in
      let b = Mat.matvec a x_true in
      let x = Linalg.solve a b in
      Vec.dist_inf x x_true < 1e-8)

let prop_det_product =
  prop "det(AB) = det(A) det(B)" ~count:60 rng_gen (fun rng ->
      let a = random_invertible rng 3 and b = random_invertible rng 3 in
      let lhs = Linalg.det (Mat.matmul a b) in
      let rhs = Linalg.det a *. Linalg.det b in
      Float.abs (lhs -. rhs) <= 1e-6 *. Float.max 1. (Float.abs rhs))

let prop_inverse_roundtrip =
  prop "A^-1 A = I" ~count:60 rng_gen (fun rng ->
      let n = 2 + Rng.int rng 5 in
      let a = random_invertible rng n in
      Mat.approx_equal ~tol:1e-8 (Mat.matmul (Linalg.inverse a) a) (Mat.identity n))

let suite =
  ( "linalg",
    [
      quick "solve known" test_solve_known;
      quick "determinant" test_det;
      quick "inverse" test_inverse;
      quick "singular raises" test_singular_raises;
      quick "non-square" test_not_square;
      quick "solve_many" test_solve_many;
      quick "pivoting" test_pivoting;
      quick "condition" test_condition;
      quick "principal minors" test_minors;
      quick "least squares" test_lstsq;
      prop_solve_roundtrip;
      prop_det_product;
      prop_inverse_roundtrip;
    ] )
