open Numerics
open Test_helpers

let test_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 10 do
    check_close "same seed, same stream" (Rng.float a) (Rng.float b)
  done;
  let c = Rng.create 43L in
  check_true "different seed, different stream" (Rng.float (Rng.create 42L) <> Rng.float c)

let test_float_range () =
  let rng = Rng.create 7L in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    check_in_range "float in [0,1)" ~lo:0. ~hi:0.9999999999999999 x
  done

let test_uniform () =
  let rng = Rng.create 11L in
  for _ = 1 to 500 do
    check_in_range "uniform range" ~lo:(-2.) ~hi:5. (Rng.uniform rng ~lo:(-2.) ~hi:5.)
  done;
  check_raises_invalid "bad range" (fun () -> Rng.uniform rng ~lo:1. ~hi:1. |> ignore)

let test_int () =
  let rng = Rng.create 13L in
  let counts = Array.make 5 0 in
  for _ = 1 to 5000 do
    let k = Rng.int rng 5 in
    check_in_range "int bound" ~lo:0. ~hi:4. (float_of_int k);
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter (fun c -> check_in_range "roughly uniform" ~lo:800. ~hi:1200. (float_of_int c)) counts;
  check_raises_invalid "bad bound" (fun () -> Rng.int rng 0 |> ignore)

let test_mean_variance () =
  let rng = Rng.create 17L in
  let xs = Array.init 20_000 (fun _ -> Rng.float rng) in
  check_close ~tol:2e-2 "uniform mean" 0.5 (Stats.mean xs);
  check_close ~tol:5e-2 "uniform variance" (1. /. 12.) (Stats.variance xs)

let test_exponential () =
  let rng = Rng.create 19L in
  let xs = Array.init 20_000 (fun _ -> Rng.exponential rng ~rate:2.) in
  check_close ~tol:3e-2 "exponential mean 1/rate" 0.5 (Stats.mean xs);
  Array.iter (fun x -> check_true "nonnegative" (x >= 0.)) xs;
  check_raises_invalid "bad rate" (fun () -> Rng.exponential rng ~rate:0. |> ignore)

let test_normal () =
  let rng = Rng.create 23L in
  let xs = Array.init 20_000 (fun _ -> Rng.normal rng ~mean:3. ~stddev:2.) in
  check_close ~tol:3e-2 "normal mean" 3. (Stats.mean xs);
  check_close ~tol:5e-2 "normal sd" 2. (Stats.stddev xs)

let test_split_independence () =
  let parent = Rng.create 29L in
  let child = Rng.split parent in
  let xs = Array.init 2000 (fun _ -> Rng.float parent) in
  let ys = Array.init 2000 (fun _ -> Rng.float child) in
  check_true "streams decorrelated" (Float.abs (Stats.correlation xs ys) < 0.08)

let test_choice_shuffle () =
  let rng = Rng.create 31L in
  let arr = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 100 do
    check_true "choice from array" (Array.mem (Rng.choice rng arr) arr)
  done;
  let shuffled = Array.copy arr in
  Rng.shuffle rng shuffled;
  let sorted = Array.copy shuffled in
  Array.sort compare sorted;
  check_true "shuffle is a permutation" (sorted = arr);
  check_raises_invalid "empty choice" (fun () -> Rng.choice rng [||] |> ignore)

let suite =
  ( "rng",
    [
      quick "determinism" test_determinism;
      quick "float range" test_float_range;
      quick "uniform" test_uniform;
      quick "int" test_int;
      quick "mean/variance" test_mean_variance;
      quick "exponential" test_exponential;
      quick "normal" test_normal;
      quick "split" test_split_independence;
      quick "choice/shuffle" test_choice_shuffle;
    ] )
