open Numerics
open Test_helpers

let xs = [| 0.; 1.; 2.; 3. |]
let ys = [| 0.; 1.; 4.; 9. |] (* x^2 at the knots *)

let test_linear_eval () =
  let t = Interp.linear xs ys in
  check_close "at knot" 4. (Interp.eval t 2.);
  check_close "midpoint" 2.5 (Interp.eval t 1.5);
  check_close "clamp left" 0. (Interp.eval t (-1.));
  check_close "clamp right" 9. (Interp.eval t 10.)

let test_validation () =
  check_raises_invalid "length mismatch" (fun () -> Interp.linear xs [| 1. |] |> ignore);
  check_raises_invalid "single point" (fun () -> Interp.linear [| 1. |] [| 1. |] |> ignore);
  check_raises_invalid "non-increasing" (fun () ->
      Interp.linear [| 0.; 0. |] [| 1.; 2. |] |> ignore)

let test_pchip_interpolates () =
  let t = Interp.pchip xs ys in
  Array.iteri (fun i x -> check_close "pchip knot" ys.(i) (Interp.eval t x)) xs;
  (* closer to x^2 between knots than linear is *)
  let exact = 2.25 in
  let linear_err = Float.abs (Interp.eval (Interp.linear xs ys) 1.5 -. exact) in
  let pchip_err = Float.abs (Interp.eval t 1.5 -. exact) in
  check_true "pchip beats linear on smooth data" (pchip_err < linear_err)

let test_pchip_monotone () =
  (* monotone data with a flat shelf: pchip must not overshoot *)
  let xs = [| 0.; 1.; 2.; 3.; 4. |] in
  let ys = [| 0.; 0.1; 4.; 4.05; 8. |] in
  let t = Interp.pchip xs ys in
  let previous = ref (Interp.eval t 0.) in
  let ok = ref true in
  Array.iter
    (fun x ->
      let y = Interp.eval t x in
      if y < !previous -. 1e-9 then ok := false;
      previous := y)
    (Grid.linspace 0. 4. 401);
  check_true "pchip preserves monotonicity" !ok

let test_crossing () =
  let t = Interp.linear [| 0.; 1.; 2. |] [| 0.; 2.; -1. |] in
  (match Interp.crossing t ~level:1. with
  | Some x -> check_close ~tol:1e-9 "first crossing" 0.5 x
  | None -> Alcotest.fail "expected a crossing");
  check_true "no crossing" (Interp.crossing t ~level:5. = None)

let test_peak () =
  let t = Interp.pchip [| 0.; 1.; 2.; 3. |] [| 0.; 2.; 1.8; 0. |] in
  let x, y = Interp.peak t in
  check_in_range "peak location" ~lo:0.8 ~hi:1.8 x;
  check_true "peak dominates knots" (y >= 2. -. 1e-9)

let test_crossover () =
  let a = Interp.linear [| 0.; 2. |] [| 0.; 2. |] in
  let b = Interp.linear [| 0.; 2. |] [| 1.; 1. |] in
  (match Interp.crossover a b with
  | Some x -> check_close ~tol:1e-6 "crossover at 1" 1. x
  | None -> Alcotest.fail "expected crossover");
  let c = Interp.linear [| 0.; 2. |] [| 5.; 5. |] in
  check_true "no crossover" (Interp.crossover a c = None)

let prop_linear_exact_on_lines =
  prop "linear interp is exact for affine data" ~count:100
    QCheck2.Gen.(triple (float_range (-3.) 3.) (float_range (-3.) 3.) (float_range 0. 3.))
    (fun (slope, intercept, x) ->
      let xs = Grid.linspace 0. 3. 7 in
      let ys = Array.map (fun x -> (slope *. x) +. intercept) xs in
      let t = Interp.linear xs ys in
      Float.abs (Interp.eval t x -. ((slope *. x) +. intercept)) < 1e-9)

let suite =
  ( "interp",
    [
      quick "linear eval" test_linear_eval;
      quick "validation" test_validation;
      quick "pchip interpolates" test_pchip_interpolates;
      quick "pchip monotone" test_pchip_monotone;
      quick "crossing" test_crossing;
      quick "peak" test_peak;
      quick "crossover" test_crossover;
      prop_linear_exact_on_lines;
    ] )
