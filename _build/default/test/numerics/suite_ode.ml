open Numerics
open Test_helpers

(* dx/dt = -x: exact solution x0 e^{-t} *)
let decay _t (x : Vec.t) = Vec.neg x

let test_rk4_accuracy () =
  let traj = Ode.integrate ~f:decay ~t0:0. ~t1:1. ~dt:0.1 (Vec.of_list [ 1. ]) in
  check_close ~tol:1e-6 "e^-1" (exp (-1.)) (Ode.final traj).(0)

let test_euler_less_accurate () =
  let exact = exp (-1.) in
  let rk4 = Ode.integrate ~f:decay ~t0:0. ~t1:1. ~dt:0.1 (Vec.of_list [ 1. ]) in
  let euler =
    Ode.integrate ~method_:`Euler ~f:decay ~t0:0. ~t1:1. ~dt:0.1 (Vec.of_list [ 1. ])
  in
  check_true "rk4 beats euler"
    (Float.abs ((Ode.final rk4).(0) -. exact)
    < Float.abs ((Ode.final euler).(0) -. exact))

let test_trajectory_bookkeeping () =
  let traj = Ode.integrate ~f:decay ~t0:0. ~t1:0.35 ~dt:0.1 (Vec.of_list [ 1. ]) in
  Alcotest.(check int) "steps recorded" 5 (Array.length traj.Ode.times);
  check_close "start time" 0. traj.Ode.times.(0);
  check_close ~tol:1e-12 "lands exactly on t1" 0.35 traj.Ode.times.(4);
  check_close "initial state kept" 1. traj.Ode.states.(0).(0)

let test_validation () =
  check_raises_invalid "bad dt" (fun () ->
      Ode.integrate ~f:decay ~t0:0. ~t1:1. ~dt:0. (Vec.of_list [ 1. ]) |> ignore);
  check_raises_invalid "reversed time" (fun () ->
      Ode.integrate ~f:decay ~t0:1. ~t1:0. ~dt:0.1 (Vec.of_list [ 1. ]) |> ignore)

let test_post_projection () =
  (* dx/dt = -1 with projection at 0: must stop at the boundary *)
  let f _t _x = Vec.of_list [ -1. ] in
  let post x = Vec.clamp ~lo:0. ~hi:10. x in
  let traj = Ode.integrate ~post ~f ~t0:0. ~t1:5. ~dt:0.1 (Vec.of_list [ 1. ]) in
  check_close "pinned at zero" 0. (Ode.final traj).(0)

let test_converged_at () =
  let f _t (x : Vec.t) = Vec.scale (-5.) x in
  let traj = Ode.integrate ~f ~t0:0. ~t1:10. ~dt:0.05 (Vec.of_list [ 1. ]) in
  (match Ode.converged_at ~tol:1e-9 traj with
  | Some t -> check_in_range "settles midway" ~lo:0.5 ~hi:10. t
  | None -> Alcotest.fail "expected settling");
  let short = Ode.integrate ~f ~t0:0. ~t1:0.2 ~dt:0.05 (Vec.of_list [ 1. ]) in
  check_true "no settling on short run" (Ode.converged_at ~tol:1e-9 short = None)

let prop_linear_system_matches_exponential =
  prop "rk4 solves dx/dt = a x to 1e-5" ~count:60
    QCheck2.Gen.(pair (float_range (-2.) 1.) (float_range 0.3 2.))
    (fun (a, x0) ->
      let f _t (x : Vec.t) = Vec.scale a x in
      let traj = Ode.integrate ~f ~t0:0. ~t1:1. ~dt:0.02 (Vec.of_list [ x0 ]) in
      Float.abs ((Ode.final traj).(0) -. (x0 *. exp a)) < 1e-5 *. (1. +. Float.abs x0))

let suite =
  ( "ode",
    [
      quick "rk4 accuracy" test_rk4_accuracy;
      quick "euler comparison" test_euler_less_accurate;
      quick "trajectory bookkeeping" test_trajectory_bookkeeping;
      quick "validation" test_validation;
      quick "post projection" test_post_projection;
      quick "converged_at" test_converged_at;
      prop_linear_system_matches_exponential;
    ] )
