open Numerics
open Test_helpers

let test_linspace () =
  let g = Grid.linspace 0. 1. 5 in
  Alcotest.(check int) "length" 5 (Array.length g);
  check_close "first" 0. g.(0);
  check_close "last" 1. g.(4);
  check_close "step" 0.25 g.(1);
  check_raises_invalid "too few" (fun () -> Grid.linspace 0. 1. 1 |> ignore)

let test_logspace () =
  let g = Grid.logspace 1. 100. 3 in
  check_close ~tol:1e-12 "log mid" 10. g.(1);
  check_raises_invalid "non-positive" (fun () -> Grid.logspace 0. 1. 3 |> ignore)

let test_arange () =
  let g = Grid.arange 0. 1. 0.25 in
  Alcotest.(check int) "arange length" 5 (Array.length g);
  check_close "arange last" 1. g.(4);
  check_raises_invalid "bad step" (fun () -> Grid.arange 0. 1. 0. |> ignore)

let test_midpoints () =
  let m = Grid.midpoints [| 0.; 1.; 3. |] in
  check_close "mid0" 0.5 m.(0);
  check_close "mid1" 2. m.(1)

let test_sweep () =
  let out = Grid.sweep [| 1.; 2. |] (fun x -> x *. x) in
  check_close "sweep x" 2. (fst out.(1));
  check_close "sweep y" 4. (snd out.(1))

let test_products () =
  let p2 = Grid.product2 [| 1; 2 |] [| 'a'; 'b' |] in
  Alcotest.(check int) "product2 size" 4 (Array.length p2);
  check_true "row major" (p2.(1) = (1, 'b') && p2.(2) = (2, 'a'));
  let p3 = Grid.product3 [| 1 |] [| 2; 3 |] [| 4; 5 |] in
  Alcotest.(check int) "product3 size" 4 (Array.length p3);
  check_true "triple" (p3.(3) = (1, 3, 5))

let prop_linspace_monotone =
  prop "linspace is strictly increasing" ~count:100
    QCheck2.Gen.(triple (float_range (-10.) 10.) (float_range 0.1 10.) (int_range 2 50))
    (fun (a, width, n) ->
      let g = Grid.linspace a (a +. width) n in
      let ok = ref true in
      for i = 0 to n - 2 do
        if g.(i + 1) <= g.(i) then ok := false
      done;
      !ok && Array.length g = n)

let suite =
  ( "grid",
    [
      quick "linspace" test_linspace;
      quick "logspace" test_logspace;
      quick "arange" test_arange;
      quick "midpoints" test_midpoints;
      quick "sweep" test_sweep;
      quick "products" test_products;
      prop_linspace_monotone;
    ] )
