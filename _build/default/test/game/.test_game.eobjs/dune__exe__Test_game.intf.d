test/game/test_game.mli:
