test/game/suite_tatonnement.ml: Alcotest Array Best_response Box Game_fixtures Gametheory List Numerics Tatonnement Test_helpers Vec
