test/game/suite_box.ml: Alcotest Array Box Gametheory Numerics QCheck2 Rng Test_helpers Vec
