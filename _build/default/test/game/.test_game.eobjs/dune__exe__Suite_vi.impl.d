test/game/suite_vi.ml: Array Box Float Game_fixtures Gametheory Numerics Rng Test_helpers Vec Vi
