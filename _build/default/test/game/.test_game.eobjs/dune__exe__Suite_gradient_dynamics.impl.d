test/game/suite_gradient_dynamics.ml: Alcotest Array Box Float Gametheory Gradient_dynamics Numerics Test_helpers Vec
