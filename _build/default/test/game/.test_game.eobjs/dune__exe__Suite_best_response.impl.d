test/game/suite_best_response.ml: Alcotest Array Best_response Box Float Game_fixtures Gametheory List Numerics Rng Test_helpers Vec Vi
