test/game/suite_matrix_props.ml: Gametheory Mat Matrix_props Numerics Rng Test_helpers
