test/game/game_fixtures.ml: Array Best_response Box Gametheory Numerics Vec
