open Numerics
open Gametheory
open Test_helpers

let test_respond_interior () =
  let game, star = Game_fixtures.cournot () in
  (* best reply to the opponent playing the equilibrium is the equilibrium *)
  let reply = Best_response.respond game 0 (Vec.of_list [ 0.9; star ]) in
  check_close ~tol:1e-9 "interior reply" star reply

let test_respond_corner () =
  let game, _ = Game_fixtures.corner_game () in
  let reply = Best_response.respond game 0 (Vec.of_list [ 0.; 0.2 ]) in
  check_close ~tol:1e-9 "cornered reply" 0.2 reply

let test_solve_gauss_seidel () =
  let game, star = Game_fixtures.cournot () in
  let out = Best_response.solve game ~x0:(Vec.zeros 2) in
  check_true "converged" out.Best_response.converged;
  check_close ~tol:1e-8 "gs x0" star out.Best_response.profile.(0);
  check_close ~tol:1e-8 "gs x1" star out.Best_response.profile.(1)

let test_solve_jacobi () =
  let game, star = Game_fixtures.cournot () in
  let out = Best_response.solve ~scheme:Best_response.Jacobi game ~x0:(Vec.zeros 2) in
  check_true "jacobi converged" out.Best_response.converged;
  check_close ~tol:1e-8 "jacobi x" star out.Best_response.profile.(0)

let test_derivative_free_agrees () =
  let game, star = Game_fixtures.cournot_derivative_free () in
  let out = Best_response.solve ~tol:1e-8 game ~x0:(Vec.zeros 2) in
  check_true "df converged" out.Best_response.converged;
  check_close ~tol:1e-5 "df equilibrium" star out.Best_response.profile.(0)

let test_damping_validation () =
  let game, _ = Game_fixtures.cournot () in
  check_raises_invalid "damping 0" (fun () ->
      Best_response.solve ~damping:0. game ~x0:(Vec.zeros 2) |> ignore);
  check_raises_invalid "bad x0 dim" (fun () ->
      Best_response.solve game ~x0:(Vec.zeros 3) |> ignore)

let test_unconverged_flagged () =
  let game, _ = Game_fixtures.cournot () in
  let out = Best_response.solve ~max_sweeps:1 ~tol:1e-14 game ~x0:(Vec.zeros 2) in
  check_true "not converged after one sweep" (not out.Best_response.converged)

let test_multistart () =
  let game, star = Game_fixtures.cournot () in
  let rng = Rng.create 77L in
  let outs = Best_response.solve_multistart ~starts:5 rng game in
  Alcotest.(check int) "five starts" 5 (List.length outs);
  List.iter
    (fun o ->
      check_true "all converge" o.Best_response.converged;
      check_close ~tol:1e-7 "all reach the same point" star o.Best_response.profile.(0))
    outs

let test_corner_game_solution () =
  let game, star = Game_fixtures.corner_game () in
  let out = Best_response.solve game ~x0:(Vec.zeros 2) in
  check_close ~tol:1e-9 "corner x0" star out.Best_response.profile.(0);
  check_close ~tol:1e-9 "corner x1" star out.Best_response.profile.(1)

let prop_cournot_family =
  prop "iterated best response solves Cournot for random costs" ~count:50
    (float_range 0. 0.9)
    (fun c ->
      let game, star = Game_fixtures.cournot ~c () in
      let out = Best_response.solve game ~x0:(Vec.make 2 0.8) in
      out.Best_response.converged
      && Float.abs (out.Best_response.profile.(0) -. star) < 1e-7)

let prop_nash_is_vi_solution =
  prop "best-response fixed point solves the VI" ~count:50 (float_range 0. 0.9)
    (fun c ->
      let game, _ = Game_fixtures.cournot ~c () in
      let out = Best_response.solve game ~x0:(Vec.zeros 2) in
      Vi.is_solution ~tol:1e-6
        (Game_fixtures.cournot_vi_map ~c ())
        (Box.uniform ~dim:2 ~lo:0. ~hi:1.)
        out.Best_response.profile)

let suite =
  ( "best-response",
    [
      quick "respond interior" test_respond_interior;
      quick "respond corner" test_respond_corner;
      quick "gauss-seidel" test_solve_gauss_seidel;
      quick "jacobi" test_solve_jacobi;
      quick "derivative-free" test_derivative_free_agrees;
      quick "validation" test_damping_validation;
      quick "unconverged flagged" test_unconverged_flagged;
      quick "multistart" test_multistart;
      quick "corner game" test_corner_game_solution;
      prop_cournot_family;
      prop_nash_is_vi_solution;
    ] )
