open Numerics
open Gametheory
open Test_helpers

let test_trace_records_steps () =
  let game, star = Game_fixtures.cournot () in
  let trace = Tatonnement.run game ~x0:(Vec.zeros 2) in
  check_true "converged" trace.Tatonnement.converged;
  check_true "has steps" (List.length trace.Tatonnement.steps >= 2);
  (match trace.Tatonnement.steps with
  | first :: _ ->
    Alcotest.(check int) "starts at index 0" 0 first.Tatonnement.index;
    check_close "records x0" 0. first.Tatonnement.profile.(0)
  | [] -> Alcotest.fail "empty trace");
  check_close ~tol:1e-8 "final at Nash" star (Tatonnement.final trace).(0)

let test_moves_shrink () =
  let game, _ = Game_fixtures.cournot () in
  let trace = Tatonnement.run game ~x0:(Vec.zeros 2) in
  let moves =
    List.filter_map
      (fun s -> if s.Tatonnement.index > 0 then Some s.Tatonnement.move else None)
      trace.Tatonnement.steps
  in
  (* Gauss-Seidel on Cournot contracts: later moves smaller than the first *)
  match moves with
  | first :: rest ->
    List.iter (fun m -> check_true "moves shrink" (m <= first +. 1e-12)) rest
  | [] -> Alcotest.fail "no moves"

let test_contraction_estimate () =
  let game, _ = Game_fixtures.cournot () in
  let trace = Tatonnement.run ~tol:1e-12 game ~x0:(Vec.ones 2) in
  match Tatonnement.contraction_estimate trace with
  | Some rate -> check_in_range "contraction factor" ~lo:0. ~hi:0.99 rate
  | None -> Alcotest.fail "expected a contraction estimate"

let test_damped_matches_undamped_limit () =
  let game, star = Game_fixtures.cournot () in
  let damped = Tatonnement.run ~damping:0.5 game ~x0:(Vec.zeros 2) in
  check_true "damped converges" damped.Tatonnement.converged;
  check_close ~tol:1e-7 "same limit" star (Tatonnement.final damped).(0)

let test_oscillation_detection () =
  (* player 0 mirrors (plays 1 - s_1), player 1 copies (plays s_0):
     undamped Gauss-Seidel cycles with period 2 from any start off the
     0.5 diagonal *)
  let box = Box.uniform ~dim:2 ~lo:0. ~hi:1. in
  let payoff i (s : Vec.t) =
    if i = 0 then -.((s.(0) -. (1. -. s.(1))) ** 2.) else -.((s.(1) -. s.(0)) ** 2.)
  in
  let marginal i (s : Vec.t) =
    if i = 0 then -2. *. (s.(0) -. (1. -. s.(1))) else -2. *. (s.(1) -. s.(0))
  in
  let game = Best_response.make ~marginal ~box ~payoff () in
  let trace = Tatonnement.run ~max_sweeps:20 game ~x0:(Vec.of_list [ 0.1; 0.1 ]) in
  check_true "mirror-copy does not converge" (not trace.Tatonnement.converged);
  check_true "oscillation flagged" (Tatonnement.oscillation_detected trace)

let test_converged_never_oscillating () =
  let game, _ = Game_fixtures.cournot () in
  let trace = Tatonnement.run game ~x0:(Vec.zeros 2) in
  check_true "no oscillation at convergence" (not (Tatonnement.oscillation_detected trace))

let suite =
  ( "tatonnement",
    [
      quick "trace records" test_trace_records_steps;
      quick "moves shrink" test_moves_shrink;
      quick "contraction estimate" test_contraction_estimate;
      quick "damped limit" test_damped_matches_undamped_limit;
      quick "oscillation detection" test_oscillation_detection;
      quick "converged not oscillating" test_converged_never_oscillating;
    ] )
