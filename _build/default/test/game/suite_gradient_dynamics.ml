open Numerics
open Gametheory
open Test_helpers

let cournot_marginal c i (s : Vec.t) = 1. -. (2. *. s.(i)) -. s.(1 - i) -. c

let box2 () = Box.uniform ~dim:2 ~lo:0. ~hi:1.

let test_flow_reaches_nash () =
  let r =
    Gradient_dynamics.flow ~marginal:(cournot_marginal 0.1) ~box:(box2 ())
      ~horizon:40. ~dt:0.05 ~x0:(Vec.zeros 2) ()
  in
  check_true "stationary" r.Gradient_dynamics.stationary;
  check_close ~tol:1e-5 "x0 at Nash" 0.3 r.Gradient_dynamics.final.(0);
  check_close ~tol:1e-5 "x1 at Nash" 0.3 r.Gradient_dynamics.final.(1);
  match r.Gradient_dynamics.settled_at with
  | Some t -> check_in_range "settles early" ~lo:0. ~hi:40. t
  | None -> Alcotest.fail "expected settling"

let test_flow_respects_box () =
  (* marginal pushing hard upward: the state must stop at the bound *)
  let marginal _ _ = 5. in
  let r =
    Gradient_dynamics.flow ~marginal ~box:(box2 ()) ~horizon:5. ~dt:0.01
      ~x0:(Vec.zeros 2) ()
  in
  check_close "pinned at hi" 1. r.Gradient_dynamics.final.(0);
  check_true "KKT-stationary at the bound" r.Gradient_dynamics.stationary

let test_vector_field_freezing () =
  let box = box2 () in
  let field = Gradient_dynamics.vector_field ~marginal:(fun _ _ -> -1.) ~box in
  let at_lower = field (Vec.zeros 2) in
  check_close "frozen at lower bound" 0. at_lower.(0);
  let interior = field (Vec.make 2 0.5) in
  check_close "free in the interior" (-1.) interior.(0)

let test_validation () =
  check_raises_invalid "bad horizon" (fun () ->
      Gradient_dynamics.flow ~marginal:(cournot_marginal 0.1) ~box:(box2 ())
        ~horizon:0. ~dt:0.1 ~x0:(Vec.zeros 2) ()
      |> ignore)

let prop_flow_matches_best_response =
  prop "gradient flow and best response agree on Cournot" ~count:25
    (float_range 0. 0.8)
    (fun c ->
      let star = (1. -. c) /. 3. in
      let r =
        Gradient_dynamics.flow ~marginal:(cournot_marginal c) ~box:(box2 ())
          ~horizon:60. ~dt:0.05 ~x0:(Vec.make 2 0.9) ()
      in
      Float.abs (r.Gradient_dynamics.final.(0) -. star) < 1e-4)

let suite =
  ( "gradient-dynamics",
    [
      quick "reaches Nash" test_flow_reaches_nash;
      quick "respects box" test_flow_respects_box;
      quick "field freezing" test_vector_field_freezing;
      quick "validation" test_validation;
      prop_flow_matches_best_response;
    ] )
