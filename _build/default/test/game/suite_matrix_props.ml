open Numerics
open Gametheory
open Test_helpers

let m_matrix = Mat.of_rows [| [| 2.; -1. |]; [| -1.; 2. |] |]
let p_not_m = Mat.of_rows [| [| 1.; 0.5 |]; [| 0.5; 1. |] |]
let not_p = Mat.of_rows [| [| 1.; 3. |]; [| 3.; 1. |] |] (* det < 0 *)

let test_p_matrix () =
  check_true "M-matrix is P" (Matrix_props.is_p_matrix m_matrix);
  check_true "positive symmetric is P" (Matrix_props.is_p_matrix p_not_m);
  check_true "indefinite is not P" (not (Matrix_props.is_p_matrix not_p));
  check_true "identity is P" (Matrix_props.is_p_matrix (Mat.identity 4));
  check_raises_invalid "too large" (fun () ->
      Matrix_props.is_p_matrix (Mat.identity 21) |> ignore)

let test_nonsymmetric_p () =
  (* P-matrices need not be symmetric *)
  let a = Mat.of_rows [| [| 1.; -2. |]; [| 0.5; 1. |] |] in
  check_true "nonsymmetric P" (Matrix_props.is_p_matrix a)

let test_m_matrix () =
  check_true "M-matrix" (Matrix_props.is_m_matrix m_matrix);
  check_true "positive off-diagonal is not M" (not (Matrix_props.is_m_matrix p_not_m));
  check_true "non-P is not M" (not (Matrix_props.is_m_matrix not_p))

let test_off_diagonal () =
  check_true "nonneg off-diag" (Matrix_props.is_off_diagonally_nonnegative p_not_m);
  check_true "neg off-diag" (not (Matrix_props.is_off_diagonally_nonnegative m_matrix))

let test_diagonal_dominance () =
  check_true "dominant" (Matrix_props.is_strictly_diagonally_dominant m_matrix);
  check_true "not dominant"
    (not
       (Matrix_props.is_strictly_diagonally_dominant
          (Mat.of_rows [| [| 1.; 2. |]; [| 0.; 1. |] |])))

let test_spd_part () =
  check_true "spd part of M-matrix" (Matrix_props.is_positive_definite_symmetric_part m_matrix);
  check_true "indefinite fails" (not (Matrix_props.is_positive_definite_symmetric_part not_p));
  (* strongly skewed but positive definite symmetric part *)
  let skew = Mat.of_rows [| [| 1.; 10. |]; [| -10.; 1. |] |] in
  check_true "skew-heavy still spd-part" (Matrix_props.is_positive_definite_symmetric_part skew)

let test_inverse_nonnegative () =
  (* hallmark of M-matrices: nonnegative inverse *)
  check_true "M-matrix inverse >= 0" (Matrix_props.inverse_nonnegative m_matrix);
  check_true "not for this P-matrix"
    (not (Matrix_props.inverse_nonnegative p_not_m));
  check_true "singular is false"
    (not (Matrix_props.inverse_nonnegative (Mat.of_rows [| [| 1.; 1. |]; [| 1.; 1. |] |])))

let prop_diag_dominant_positive_is_p =
  prop "diagonally dominant matrices with positive diagonal are P" ~count:60 rng_gen
    (fun rng ->
      let n = 2 + Rng.int rng 4 in
      let a =
        Mat.init ~rows:n ~cols:n (fun i j ->
            if i = j then float_of_int n +. Rng.float rng
            else Rng.uniform rng ~lo:(-1.) ~hi:1.)
      in
      Matrix_props.is_p_matrix a)

let prop_m_matrix_inverse_nonnegative =
  prop "random M-matrices have nonnegative inverses" ~count:60 rng_gen (fun rng ->
      let n = 2 + Rng.int rng 4 in
      let a =
        Mat.init ~rows:n ~cols:n (fun i j ->
            if i = j then float_of_int n +. 1. else -.Rng.float rng)
      in
      (not (Matrix_props.is_m_matrix a)) || Matrix_props.inverse_nonnegative ~tol:1e-12 a)

let suite =
  ( "matrix-props",
    [
      quick "P-matrix" test_p_matrix;
      quick "nonsymmetric P" test_nonsymmetric_p;
      quick "M-matrix" test_m_matrix;
      quick "off-diagonal" test_off_diagonal;
      quick "diagonal dominance" test_diagonal_dominance;
      quick "spd symmetric part" test_spd_part;
      quick "inverse nonnegative" test_inverse_nonnegative;
      prop_diag_dominant_positive_is_p;
      prop_m_matrix_inverse_nonnegative;
    ] )
