(* Shared analytic games with known equilibria. *)

open Numerics
open Gametheory

(* Cournot duopoly: payoff_i = s_i (1 - s_1 - s_2) - c s_i.
   Interior Nash at s_i = (1 - c) / 3. *)
let cournot ?(c = 0.1) () =
  let box = Box.uniform ~dim:2 ~lo:0. ~hi:1. in
  let payoff i (s : Vec.t) = (s.(i) *. (1. -. s.(0) -. s.(1))) -. (c *. s.(i)) in
  let marginal i (s : Vec.t) = 1. -. (2. *. s.(i)) -. s.(1 - i) -. c in
  (Best_response.make ~marginal ~box ~payoff (), (1. -. c) /. 3.)

(* Same game without the analytic marginal: exercises the
   derivative-free best-response path. *)
let cournot_derivative_free ?(c = 0.1) () =
  let box = Box.uniform ~dim:2 ~lo:0. ~hi:1. in
  let payoff i (s : Vec.t) = (s.(i) *. (1. -. s.(0) -. s.(1))) -. (c *. s.(i)) in
  (Best_response.make ~box ~payoff (), (1. -. c) /. 3.)

(* A game whose unconstrained equilibrium lies outside the box, pinning
   both players at the upper corner. *)
let corner_game () =
  let box = Box.uniform ~dim:2 ~lo:0. ~hi:0.2 in
  let payoff i (s : Vec.t) = (s.(i) *. (1. -. s.(0) -. s.(1))) in
  let marginal i (s : Vec.t) = 1. -. (2. *. s.(i)) -. s.(1 - i) in
  (Best_response.make ~marginal ~box ~payoff (), 0.2)

(* The VI map of the Cournot game: F = -grad payoff. *)
let cournot_vi_map ?(c = 0.1) () (s : Vec.t) =
  Vec.of_list
    [
      -.(1. -. (2. *. s.(0)) -. s.(1) -. c);
      -.(1. -. (2. *. s.(1)) -. s.(0) -. c);
    ]
