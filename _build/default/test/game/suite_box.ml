open Numerics
open Gametheory
open Test_helpers

let box () = Box.make ~lo:(Vec.of_list [ 0.; -1. ]) ~hi:(Vec.of_list [ 1.; 2. ])

let test_make () =
  let b = box () in
  Alcotest.(check int) "dim" 2 (Box.dim b);
  check_close "lo_i" (-1.) (Box.lo_i b 1);
  check_close "hi_i" 1. (Box.hi_i b 0);
  check_raises_invalid "lo > hi" (fun () ->
      Box.make ~lo:(Vec.of_list [ 1. ]) ~hi:(Vec.of_list [ 0. ]) |> ignore);
  check_raises_invalid "dim mismatch" (fun () ->
      Box.make ~lo:(Vec.zeros 1) ~hi:(Vec.zeros 2) |> ignore)

let test_uniform () =
  let b = Box.uniform ~dim:3 ~lo:0. ~hi:2. in
  check_close "uniform hi" 2. (Box.hi_i b 2);
  check_raises_invalid "bad dim" (fun () -> Box.uniform ~dim:0 ~lo:0. ~hi:1. |> ignore)

let test_contains_project () =
  let b = box () in
  check_true "inside" (Box.contains b (Vec.of_list [ 0.5; 0. ]));
  check_true "outside" (not (Box.contains b (Vec.of_list [ 1.5; 0. ])));
  let p = Box.project b (Vec.of_list [ 1.5; -3. ]) in
  check_close "projected x" 1. p.(0);
  check_close "projected y" (-1.) p.(1);
  check_true "projection lands inside" (Box.contains b p)

let test_center_random () =
  let b = box () in
  let c = Box.center b in
  check_close "center x" 0.5 c.(0);
  check_close "center y" 0.5 c.(1);
  let rng = Rng.create 3L in
  for _ = 1 to 100 do
    check_true "random point inside" (Box.contains b (Box.random_point rng b))
  done

let test_degenerate_interval () =
  let b = Box.make ~lo:(Vec.of_list [ 1. ]) ~hi:(Vec.of_list [ 1. ]) in
  let rng = Rng.create 5L in
  check_close "degenerate random" 1. (Box.random_point rng b).(0)

let test_boundary_classification () =
  let b = box () in
  let x = Vec.of_list [ 0.; 1. ] in
  check_true "on lower" (Box.on_lower b x 0);
  check_true "not on upper" (not (Box.on_upper b x 0));
  check_true "interior coord" (Box.interior_coords b x = [| 1 |]);
  let corner = Vec.of_list [ 1.; 2. ] in
  check_true "corner has no interior" (Box.interior_coords b corner = [||])

let prop_projection_idempotent =
  prop "projection is idempotent and non-expansive to the center" ~count:100
    QCheck2.Gen.(pair (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (x, y) ->
      let b = box () in
      let v = Vec.of_list [ x; y ] in
      let p = Box.project b v in
      Vec.approx_equal p (Box.project b p)
      && Vec.norm2 (Vec.sub p (Box.center b)) <= Vec.norm2 (Vec.sub v (Box.center b)) +. 1e-9)

let suite =
  ( "box",
    [
      quick "make" test_make;
      quick "uniform" test_uniform;
      quick "contains/project" test_contains_project;
      quick "center/random" test_center_random;
      quick "degenerate" test_degenerate_interval;
      quick "boundary classes" test_boundary_classification;
      prop_projection_idempotent;
    ] )
