open Numerics
open Gametheory
open Test_helpers

let box2 () = Box.uniform ~dim:2 ~lo:0. ~hi:1.

let test_natural_map_zero_at_solution () =
  let f = Game_fixtures.cournot_vi_map () in
  let star = Vec.make 2 0.3 in
  check_true "residual ~ 0 at Nash" (Vi.residual f (box2 ()) star < 1e-12);
  check_true "is_solution" (Vi.is_solution f (box2 ()) star);
  check_true "nonzero elsewhere" (Vi.residual f (box2 ()) (Vec.make 2 0.1) > 1e-3)

let test_kkt_violation () =
  let f = Game_fixtures.cournot_vi_map () in
  check_true "kkt zero at solution" (Vi.kkt_violation f (box2 ()) (Vec.make 2 0.3) < 1e-12);
  (* at the lower corner, F < 0 (profitable to increase): violated *)
  check_true "kkt violated at 0" (Vi.kkt_violation f (box2 ()) (Vec.zeros 2) > 0.1)

let test_extragradient () =
  let f = Game_fixtures.cournot_vi_map () in
  let x = Vi.solve_extragradient f (box2 ()) ~x0:(Vec.zeros 2) in
  check_close ~tol:1e-6 "eg x0" 0.3 x.(0);
  check_close ~tol:1e-6 "eg x1" 0.3 x.(1);
  check_raises_invalid "bad gamma" (fun () ->
      Vi.solve_extragradient ~gamma:0. f (box2 ()) ~x0:(Vec.zeros 2) |> ignore)

let test_extragradient_binding_constraint () =
  (* push the solution to the boundary with a tight box *)
  let f = Game_fixtures.cournot_vi_map () in
  let tight = Box.uniform ~dim:2 ~lo:0. ~hi:0.2 in
  let x = Vi.solve_extragradient f tight ~x0:(Vec.zeros 2) in
  check_close ~tol:1e-6 "binds at 0.2" 0.2 x.(0);
  check_true "certified" (Vi.is_solution ~tol:1e-6 f tight x)

let test_monotonicity_probe () =
  let rng = Rng.create 99L in
  check_true "cournot map is monotone"
    (Vi.is_monotone_on_samples rng (Game_fixtures.cournot_vi_map ()) (box2 ()));
  let antimonotone (s : Vec.t) = Vec.of_list [ -.s.(0); -.s.(1) ] in
  check_true "antimonotone detected"
    (not (Vi.is_monotone_on_samples rng antimonotone (box2 ())))

let test_projection_step () =
  let f = Game_fixtures.cournot_vi_map () in
  let x = Vi.projection_step ~gamma:0.5 f (box2 ()) (Vec.zeros 2) in
  (* F(0) = -0.9 each, step = 0 - 0.5 * (-0.9) = 0.45 *)
  check_close ~tol:1e-12 "projection step" 0.45 x.(0)

let prop_extragradient_solves_scaled_cournot =
  prop "extragradient solves Cournot for random costs" ~count:50 (float_range 0. 0.8)
    (fun c ->
      let f = Game_fixtures.cournot_vi_map ~c () in
      let x = Vi.solve_extragradient f (box2 ()) ~x0:(Vec.make 2 0.5) in
      Float.abs (x.(0) -. ((1. -. c) /. 3.)) < 1e-5)

let suite =
  ( "vi",
    [
      quick "natural map" test_natural_map_zero_at_solution;
      quick "kkt violation" test_kkt_violation;
      quick "extragradient" test_extragradient;
      quick "extragradient binding" test_extragradient_binding_constraint;
      quick "monotonicity probe" test_monotonicity_probe;
      quick "projection step" test_projection_step;
      prop_extragradient_solves_scaled_cournot;
    ] )
