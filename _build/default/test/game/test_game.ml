let () =
  Alcotest.run "gametheory"
    [
      Suite_box.suite;
      Suite_matrix_props.suite;
      Suite_vi.suite;
      Suite_best_response.suite;
      Suite_tatonnement.suite;
      Suite_gradient_dynamics.suite;
    ]
