(* Shared assertions and generators for the test suites. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if
    not
      (Float.abs (expected -. actual)
      <= tol +. (tol *. Float.max (Float.abs expected) (Float.abs actual)))
  then
    Alcotest.failf "%s: expected %.12g, got %.12g (tol %.2g)" msg expected actual tol

let check_in_range msg ~lo ~hi actual =
  if actual < lo || actual > hi then
    Alcotest.failf "%s: %.12g outside [%.12g, %.12g]" msg actual lo hi

let check_true msg cond = Alcotest.(check bool) msg true cond

let check_raises_invalid msg f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  | exception Invalid_argument _ -> ()

let quick name f = Alcotest.test_case name `Quick f

(* QCheck integration ------------------------------------------------ *)

let prop ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name arb law)

let float_range lo hi = QCheck2.Gen.float_range lo hi

let small_positive = QCheck2.Gen.float_range 0.1 5.

(* A deterministic Numerics RNG per test, seeded from QCheck's int. *)
let rng_gen = QCheck2.Gen.map (fun i -> Numerics.Rng.create (Int64.of_int i)) QCheck2.Gen.int
