open Test_helpers

let cp_a () = Econ.Cp.exponential ~name:"a" ~m0:2. ~l0:1.5 ~alpha:3. ~beta:2. ~value:0.5 ()
let cp_b () = Econ.Cp.exponential ~name:"b" ~m0:1. ~l0:4. ~alpha:3. ~beta:2. ~value:1. ()
let cp_other () = Econ.Cp.exponential ~name:"c" ~alpha:1. ~beta:2. ~value:1. ()

let test_as_big_user () =
  let big = Econ.Aggregate.as_big_user (cp_a ()) in
  check_close ~tol:1e-12 "population at 0 becomes 1" 1. (Econ.Cp.population big 0.);
  check_close ~tol:1e-12 "throughput preserved"
    (Econ.Cp.throughput_at (cp_a ()) ~charge:0.3 ~phi:0.7)
    (Econ.Cp.throughput_at big ~charge:0.3 ~phi:0.7)

let test_same_traffic_class () =
  check_true "same class" (Econ.Aggregate.same_traffic_class (cp_a ()) (cp_b ()));
  check_true "different alpha" (not (Econ.Aggregate.same_traffic_class (cp_a ()) (cp_other ())));
  let iso =
    Econ.Cp.make ~name:"iso"
      ~demand:(Econ.Demand.isoelastic ~alpha:3. ())
      ~throughput:(Econ.Throughput.exponential ~beta:2. ())
      ~value:1. ()
  in
  check_true "non-exponential demand" (not (Econ.Aggregate.same_traffic_class (cp_a ()) iso))

let test_merge () =
  let merged = Econ.Aggregate.merge_exponential [ cp_a (); cp_b () ] in
  (* pooled max throughput: 2*1.5 + 1*4 = 7 under m0 = 1 *)
  check_close ~tol:1e-12 "pooled throughput at charge 0, phi 0" 7.
    (Econ.Cp.throughput_at merged ~charge:0. ~phi:0.);
  (* pooled at any (t, phi): exponential forms factor out *)
  check_close ~tol:1e-12 "pooled at interior point"
    (Econ.Cp.throughput_at (cp_a ()) ~charge:0.4 ~phi:0.6
    +. Econ.Cp.throughput_at (cp_b ()) ~charge:0.4 ~phi:0.6)
    (Econ.Cp.throughput_at merged ~charge:0.4 ~phi:0.6);
  (* value is the throughput-weighted mean: (3*0.5 + 4*1)/7 *)
  check_close ~tol:1e-12 "weighted value" (5.5 /. 7.) merged.Econ.Cp.value

let test_merge_errors () =
  check_raises_invalid "empty" (fun () -> Econ.Aggregate.merge_exponential [] |> ignore);
  check_raises_invalid "mixed classes" (fun () ->
      Econ.Aggregate.merge_exponential [ cp_a (); cp_other () ] |> ignore)

let prop_merge_preserves_group_throughput =
  prop "merged CP reproduces the group's throughput at random points" ~count:100
    QCheck2.Gen.(triple (float_range (-0.5) 2.) (float_range 0. 3.) (float_range 0.5 4.))
    (fun (charge, phi, l0) ->
      let a = Econ.Cp.exponential ~m0:1.2 ~l0 ~alpha:2. ~beta:4. ~value:0.7 () in
      let b = Econ.Cp.exponential ~m0:0.4 ~l0:2.5 ~alpha:2. ~beta:4. ~value:0.2 () in
      let merged = Econ.Aggregate.merge_exponential [ a; b ] in
      let group =
        Econ.Cp.throughput_at a ~charge ~phi +. Econ.Cp.throughput_at b ~charge ~phi
      in
      Float.abs (Econ.Cp.throughput_at merged ~charge ~phi -. group)
      < 1e-9 *. (1. +. group))

let suite =
  ( "aggregate",
    [
      quick "as big user" test_as_big_user;
      quick "traffic classes" test_same_traffic_class;
      quick "merge" test_merge;
      quick "merge errors" test_merge_errors;
      prop_merge_preserves_group_throughput;
    ] )
