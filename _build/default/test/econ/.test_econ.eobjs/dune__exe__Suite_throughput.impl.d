test/econ/suite_throughput.ml: Array Econ Float List Numerics Test_helpers
