test/econ/suite_cp_isp.ml: Alcotest Econ Format String Test_helpers
