test/econ/test_econ.mli:
