test/econ/suite_calibrate.ml: Alcotest Array Econ Float Numerics QCheck2 Rng Test_helpers
