test/econ/suite_aggregate.ml: Econ Float QCheck2 Test_helpers
