test/econ/suite_elasticity.ml: Econ Float QCheck2 Test_helpers
