test/econ/suite_utilization.ml: Array Econ Float List Numerics QCheck2 Test_helpers
