test/econ/suite_demand.ml: Array Econ Float List Numerics QCheck2 String Test_helpers
