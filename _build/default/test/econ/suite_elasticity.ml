open Test_helpers

let test_of_derivative () =
  check_close "basic" 2. (Econ.Elasticity.of_derivative ~dydx:4. ~x:1. ~y:2.);
  check_raises_invalid "y = 0" (fun () ->
      Econ.Elasticity.of_derivative ~dydx:1. ~x:1. ~y:0. |> ignore)

let test_numeric_power_law () =
  (* y = x^3 has constant elasticity 3 *)
  let f x = x ** 3. in
  check_close ~tol:1e-6 "power law elasticity" 3. (Econ.Elasticity.numeric f 2.)

let test_log_derivative_equivalence () =
  let f x = 5. *. (x ** 1.7) in
  check_close ~tol:1e-6 "log-derivative equals elasticity" 1.7
    (Econ.Elasticity.log_derivative f 1.3);
  check_close ~tol:1e-5 "two definitions agree"
    (Econ.Elasticity.numeric f 1.3)
    (Econ.Elasticity.log_derivative f 1.3);
  check_raises_invalid "negative x" (fun () ->
      Econ.Elasticity.log_derivative f (-1.) |> ignore)

let test_chain () =
  check_close "chain rule" 6. (Econ.Elasticity.chain 2. 3.)

let test_classification () =
  check_true "elastic" (Econ.Elasticity.is_elastic (-1.5));
  check_true "inelastic" (Econ.Elasticity.is_inelastic 0.3);
  check_true "unit boundary" (not (Econ.Elasticity.is_elastic 1.));
  check_true "unit boundary 2" (not (Econ.Elasticity.is_inelastic 1.))

let prop_elasticity_of_monomial =
  prop "x^k has elasticity k everywhere" ~count:100
    QCheck2.Gen.(pair (float_range (-2.) 3.) (float_range 0.2 4.))
    (fun (k, x) ->
      let f t = t ** k in
      Float.abs (Econ.Elasticity.numeric f x -. k) < 1e-4 *. (1. +. Float.abs k))

let prop_chain_consistency =
  prop "chained elasticities equal the composite's elasticity" ~count:100
    (float_range 0.3 2.5)
    (fun x ->
      (* z(y) = y^2, y(x) = x^3 => elasticity of z in x is 6 *)
      let y t = t ** 3. in
      let z t = t ** 2. in
      let eps_yx = Econ.Elasticity.numeric y x in
      let eps_zy = Econ.Elasticity.numeric z (y x) in
      let composite = Econ.Elasticity.numeric (fun t -> z (y t)) x in
      Float.abs (Econ.Elasticity.chain eps_zy eps_yx -. composite) < 1e-3)

let suite =
  ( "elasticity",
    [
      quick "of_derivative" test_of_derivative;
      quick "numeric power law" test_numeric_power_law;
      quick "log-derivative" test_log_derivative_equivalence;
      quick "chain" test_chain;
      quick "classification" test_classification;
      prop_elasticity_of_monomial;
      prop_chain_consistency;
    ] )
