open Test_helpers

let families =
  [
    ("exponential", Econ.Throughput.exponential ~l0:2. ~beta:3. ());
    ("isoelastic", Econ.Throughput.isoelastic ~l0:2. ~beta:3. ());
    ("rational", Econ.Throughput.rational ~l0:2. ~beta:3. ());
  ]

let test_exponential_values () =
  let th = Econ.Throughput.exponential ~beta:2. () in
  check_close "lambda(0) = l0" 1. (Econ.Throughput.rate th 0.);
  check_close ~tol:1e-12 "lambda(1)" (exp (-2.)) (Econ.Throughput.rate th 1.);
  check_close ~tol:1e-12 "elasticity = -beta phi" (-2.) (Econ.Throughput.elasticity th 1.);
  check_close "elasticity at 0" 0. (Econ.Throughput.elasticity th 0.)

let test_validation () =
  check_raises_invalid "beta <= 0" (fun () ->
      Econ.Throughput.exponential ~beta:0. () |> ignore);
  check_raises_invalid "negative phi" (fun () ->
      Econ.Throughput.rate (snd (List.hd families)) (-0.1) |> ignore)

let assumption1 name th =
  let phis = Numerics.Grid.linspace 0. 8. 40 in
  Array.iteri
    (fun k phi ->
      let l = Econ.Throughput.rate th phi in
      check_true (name ^ " positive") (l > 0.);
      if k > 0 then
        check_true (name ^ " decreasing") (l < Econ.Throughput.rate th phis.(k - 1));
      let numeric = Numerics.Diff.central (Econ.Throughput.rate th) (phi +. 0.01) in
      check_close ~tol:1e-5 (name ^ " analytic derivative") numeric
        (Econ.Throughput.derivative th (phi +. 0.01)))
    phis;
  check_true (name ^ " vanishes at high utilization")
    (Econ.Throughput.rate th 500. < 0.02)

let test_assumption1_all_families () =
  List.iter (fun (name, th) -> assumption1 name th) families

let test_scaling () =
  List.iter
    (fun (name, th) ->
      let scaled = Econ.Throughput.scale_rate th ~kappa:3. in
      check_close ~tol:1e-12 (name ^ " scaled rate")
        (3. *. Econ.Throughput.rate th 0.8)
        (Econ.Throughput.rate scaled 0.8);
      (* Lemma 2 requires scaling to preserve the phi-elasticity *)
      check_close ~tol:1e-12 (name ^ " elasticity preserved")
        (Econ.Throughput.elasticity th 0.8)
        (Econ.Throughput.elasticity scaled 0.8))
    families

let test_spec_roundtrip () =
  List.iter
    (fun (name, th) ->
      let rebuilt = Econ.Throughput.make (Econ.Throughput.spec th) in
      check_close (name ^ " spec roundtrip")
        (Econ.Throughput.rate th 1.3)
        (Econ.Throughput.rate rebuilt 1.3))
    families

let prop_rational_halves_at_inverse_beta =
  prop "rational throughput halves at phi = 1/beta" ~count:100 (float_range 0.2 5.)
    (fun beta ->
      let th = Econ.Throughput.rational ~beta () in
      Float.abs (Econ.Throughput.rate th (1. /. beta) -. 0.5) < 1e-9)

let suite =
  ( "throughput",
    [
      quick "exponential values" test_exponential_values;
      quick "validation" test_validation;
      quick "assumption 1 (all families)" test_assumption1_all_families;
      quick "lemma-2 scaling" test_scaling;
      quick "spec roundtrip" test_spec_roundtrip;
      prop_rational_halves_at_inverse_beta;
    ] )
