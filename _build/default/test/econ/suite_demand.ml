open Test_helpers

let families =
  [
    ("exponential", Econ.Demand.exponential ~m0:2. ~alpha:3. ());
    ("isoelastic", Econ.Demand.isoelastic ~m0:2. ~alpha:3. ~scale:1.5 ());
    ("logit", Econ.Demand.logit ~m0:2. ~slope:3. ~midpoint:0.5 ());
  ]

let test_exponential_values () =
  let d = Econ.Demand.exponential ~alpha:2. () in
  check_close "m(0) = m0" 1. (Econ.Demand.population d 0.);
  check_close ~tol:1e-12 "m(1) = e^-2" (exp (-2.)) (Econ.Demand.population d 1.);
  check_close ~tol:1e-12 "m'(1)" (-2. *. exp (-2.)) (Econ.Demand.derivative d 1.);
  check_close ~tol:1e-12 "elasticity = -alpha t" (-2.) (Econ.Demand.elasticity d 1.)

let test_validation () =
  check_raises_invalid "alpha <= 0" (fun () ->
      Econ.Demand.exponential ~alpha:0. () |> ignore);
  check_raises_invalid "m0 <= 0" (fun () ->
      Econ.Demand.exponential ~m0:(-1.) ~alpha:1. () |> ignore);
  check_raises_invalid "nan midpoint" (fun () ->
      Econ.Demand.logit ~midpoint:Float.nan ~slope:1. () |> ignore)

let assumption2 name d =
  (* decreasing, positive, differentiable (analytic matches numeric),
     defined for subsidized negative charges too *)
  let ts = Numerics.Grid.linspace (-1.5) 6. 40 in
  Array.iteri
    (fun k t ->
      let m = Econ.Demand.population d t in
      check_true (name ^ " positive") (m > 0.);
      if k > 0 then
        check_true (name ^ " decreasing") (m < Econ.Demand.population d ts.(k - 1));
      let numeric = Numerics.Diff.central (Econ.Demand.population d) t in
      check_close ~tol:1e-5 (name ^ " analytic derivative") numeric
        (Econ.Demand.derivative d t))
    ts;
  check_true (name ^ " vanishes at infinity") (Econ.Demand.population d 300. < 1e-4)

let test_assumption2_all_families () =
  List.iter (fun (name, d) -> assumption2 name d) families

let test_spec_roundtrip () =
  List.iter
    (fun (name, d) ->
      let rebuilt = Econ.Demand.make (Econ.Demand.spec d) in
      check_close (name ^ " spec roundtrip")
        (Econ.Demand.population d 0.7)
        (Econ.Demand.population rebuilt 0.7))
    families

let test_scaling () =
  List.iter
    (fun (name, d) ->
      let scaled = Econ.Demand.scale_population d ~kappa:4. in
      check_close ~tol:1e-12 (name ^ " scaled by 1/kappa")
        (Econ.Demand.population d 0.9 /. 4.)
        (Econ.Demand.population scaled 0.9))
    families;
  check_raises_invalid "kappa <= 0" (fun () ->
      Econ.Demand.scale_population (snd (List.hd families)) ~kappa:0. |> ignore)

let test_labels () =
  List.iter
    (fun (name, d) ->
      check_true (name ^ " label nonempty") (String.length (Econ.Demand.label d) > 0))
    families

let prop_exponential_elasticity =
  prop "exponential demand elasticity is -alpha*t" ~count:100
    QCheck2.Gen.(pair (float_range 0.5 5.) (float_range 0.01 3.))
    (fun (alpha, t) ->
      let d = Econ.Demand.exponential ~alpha () in
      Float.abs (Econ.Demand.elasticity d t +. (alpha *. t)) < 1e-9)

let prop_elasticity_matches_numeric =
  prop "elasticity matches the numeric log-derivative" ~count:100
    QCheck2.Gen.(pair (float_range 0.5 4.) (float_range 0.1 2.))
    (fun (alpha, t) ->
      let d = Econ.Demand.isoelastic ~alpha () in
      let numeric =
        Econ.Elasticity.numeric (Econ.Demand.population d) t
      in
      Float.abs (Econ.Demand.elasticity d t -. numeric) < 1e-4)

let suite =
  ( "demand",
    [
      quick "exponential values" test_exponential_values;
      quick "validation" test_validation;
      quick "assumption 2 (all families)" test_assumption2_all_families;
      quick "spec roundtrip" test_spec_roundtrip;
      quick "lemma-2 scaling" test_scaling;
      quick "labels" test_labels;
      prop_exponential_elasticity;
      prop_elasticity_matches_numeric;
    ] )
