open Test_helpers

let families =
  [
    ("linear", Econ.Utilization.linear);
    ("power-0.7", Econ.Utilization.power 0.7);
    ("power-2", Econ.Utilization.power 2.);
    ("log", Econ.Utilization.log_family);
  ]

let test_linear_values () =
  let u = Econ.Utilization.linear in
  check_close "phi = theta/mu" 1.5 (Econ.Utilization.phi u ~theta:3. ~mu:2.);
  check_close "theta_of inverts" 3. (Econ.Utilization.theta_of u ~phi:1.5 ~mu:2.);
  check_close "dphi/dtheta" 0.5 (Econ.Utilization.dphi_dtheta u ~theta:3. ~mu:2.);
  check_close "dphi/dmu" (-0.75) (Econ.Utilization.dphi_dmu u ~theta:3. ~mu:2.);
  check_close "dtheta/dphi" 2. (Econ.Utilization.dtheta_dphi u ~phi:1.5 ~mu:2.);
  check_close "dtheta/dmu" 1.5 (Econ.Utilization.dtheta_dmu u ~phi:1.5 ~mu:2.)

let test_validation () =
  check_raises_invalid "power k <= 0" (fun () -> Econ.Utilization.power 0. |> ignore);
  check_raises_invalid "negative theta" (fun () ->
      Econ.Utilization.phi Econ.Utilization.linear ~theta:(-1.) ~mu:1. |> ignore);
  check_raises_invalid "non-positive mu" (fun () ->
      Econ.Utilization.phi Econ.Utilization.linear ~theta:1. ~mu:0. |> ignore)

let assumption1 name u =
  (* increasing in theta, decreasing in mu, Phi(0) = 0, inverse consistent *)
  check_close (name ^ " Phi(0)=0") 0. (Econ.Utilization.phi u ~theta:0. ~mu:1.5);
  let thetas = Numerics.Grid.linspace 0.1 5. 15 in
  Array.iteri
    (fun k theta ->
      let phi = Econ.Utilization.phi u ~theta ~mu:1.5 in
      if k > 0 then
        check_true (name ^ " increasing in theta")
          (phi > Econ.Utilization.phi u ~theta:thetas.(k - 1) ~mu:1.5);
      check_true (name ^ " decreasing in mu")
        (Econ.Utilization.phi u ~theta ~mu:2. < phi);
      check_close ~tol:1e-8 (name ^ " inverse roundtrip") theta
        (Econ.Utilization.theta_of u ~phi ~mu:1.5))
    thetas

let test_assumption1_all () = List.iter (fun (n, u) -> assumption1 n u) families

let test_derivatives_match_numeric () =
  List.iter
    (fun (name, u) ->
      let theta = 1.7 and mu = 1.3 in
      check_close ~tol:1e-5 (name ^ " dphi/dtheta")
        (Numerics.Diff.central (fun t -> Econ.Utilization.phi u ~theta:t ~mu) theta)
        (Econ.Utilization.dphi_dtheta u ~theta ~mu);
      check_close ~tol:1e-5 (name ^ " dphi/dmu")
        (Numerics.Diff.central (fun m -> Econ.Utilization.phi u ~theta ~mu:m) mu)
        (Econ.Utilization.dphi_dmu u ~theta ~mu);
      let phi = Econ.Utilization.phi u ~theta ~mu in
      check_close ~tol:1e-5 (name ^ " dtheta/dphi")
        (Numerics.Diff.central (fun p -> Econ.Utilization.theta_of u ~phi:p ~mu) phi)
        (Econ.Utilization.dtheta_dphi u ~phi ~mu);
      check_close ~tol:1e-5 (name ^ " dtheta/dmu")
        (Numerics.Diff.central (fun m -> Econ.Utilization.theta_of u ~phi ~mu:m) mu)
        (Econ.Utilization.dtheta_dmu u ~phi ~mu))
    families

let prop_power_inverse =
  prop "power family inverse roundtrip" ~count:100
    QCheck2.Gen.(triple (float_range 0.3 3.) (float_range 0.1 4.) (float_range 0.5 3.))
    (fun (k, theta, mu) ->
      let u = Econ.Utilization.power k in
      let phi = Econ.Utilization.phi u ~theta ~mu in
      Float.abs (Econ.Utilization.theta_of u ~phi ~mu -. theta) < 1e-7 *. (1. +. theta))

let suite =
  ( "utilization",
    [
      quick "linear values" test_linear_values;
      quick "validation" test_validation;
      quick "assumption 1 (all families)" test_assumption1_all;
      quick "derivatives vs numeric" test_derivatives_match_numeric;
      prop_power_inverse;
    ] )
