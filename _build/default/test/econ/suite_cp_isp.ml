open Test_helpers

let cp () = Econ.Cp.exponential ~name:"t" ~alpha:2. ~beta:3. ~value:0.8 ()

let test_cp_make () =
  let c = cp () in
  Alcotest.(check string) "name" "t" c.Econ.Cp.name;
  check_close "value" 0.8 c.Econ.Cp.value;
  check_raises_invalid "negative value" (fun () ->
      Econ.Cp.exponential ~alpha:1. ~beta:1. ~value:(-0.1) () |> ignore)

let test_cp_accessors () =
  let c = cp () in
  check_close ~tol:1e-12 "population" (exp (-1.)) (Econ.Cp.population c 0.5);
  check_close ~tol:1e-12 "rate" (exp (-1.5)) (Econ.Cp.rate c 0.5);
  check_close ~tol:1e-12 "throughput_at" (exp (-1.) *. exp (-1.5))
    (Econ.Cp.throughput_at c ~charge:0.5 ~phi:0.5);
  check_close "utility" (0.5 *. 2.) (Econ.Cp.utility c ~subsidy:0.3 ~throughput:2.)

let test_cp_default_name () =
  let c = Econ.Cp.exponential ~alpha:1. ~beta:2. ~value:0.5 () in
  check_true "default name mentions parameters"
    (String.length c.Econ.Cp.name > 0 && String.contains c.Econ.Cp.name 'a')

let test_cp_scale () =
  let c = cp () in
  let s = Econ.Cp.scale c ~kappa:2. in
  check_close ~tol:1e-12 "scaled population" (Econ.Cp.population c 0.4 /. 2.)
    (Econ.Cp.population s 0.4);
  check_close ~tol:1e-12 "scaled rate" (2. *. Econ.Cp.rate c 0.4) (Econ.Cp.rate s 0.4);
  check_close ~tol:1e-12 "throughput invariant"
    (Econ.Cp.throughput_at c ~charge:0.4 ~phi:0.6)
    (Econ.Cp.throughput_at s ~charge:0.4 ~phi:0.6)

let test_isp () =
  let isp = Econ.Isp.make ~capacity:2. ~price:0.5 () in
  check_close "revenue" 1.5 (Econ.Isp.revenue isp ~aggregate_throughput:3.);
  check_close "profit no cost" 1.5 (Econ.Isp.profit isp ~aggregate_throughput:3.);
  let costly = Econ.Isp.make ~capacity_cost:0.25 ~capacity:2. ~price:0.5 () in
  check_close "profit with cost" 1. (Econ.Isp.profit costly ~aggregate_throughput:3.);
  check_close "with_price" 0.9 (Econ.Isp.with_price isp 0.9).Econ.Isp.price;
  check_close "with_capacity" 5. (Econ.Isp.with_capacity isp 5.).Econ.Isp.capacity;
  check_raises_invalid "bad capacity" (fun () ->
      Econ.Isp.make ~capacity:0. ~price:1. () |> ignore);
  check_raises_invalid "negative price" (fun () ->
      Econ.Isp.make ~capacity:1. ~price:(-1.) () |> ignore)

let test_pp () =
  check_true "cp pp" (String.length (Format.asprintf "%a" Econ.Cp.pp (cp ())) > 0);
  check_true "isp pp"
    (String.length
       (Format.asprintf "%a" Econ.Isp.pp (Econ.Isp.make ~capacity:1. ~price:0.1 ()))
    > 0)

let suite =
  ( "cp-isp",
    [
      quick "cp make" test_cp_make;
      quick "cp accessors" test_cp_accessors;
      quick "cp default name" test_cp_default_name;
      quick "cp lemma-2 scale" test_cp_scale;
      quick "isp" test_isp;
      quick "pretty printers" test_pp;
    ] )
