open Numerics
open Test_helpers

let synthetic_samples rng ~scale ~rate ~noise n =
  Array.init n (fun k ->
      let x = 0.1 +. (0.2 *. float_of_int k) in
      let y = scale *. exp (-.rate *. x) *. exp (Rng.normal rng ~mean:0. ~stddev:noise) in
      (x, y))

let test_exact_recovery () =
  let samples = synthetic_samples (Rng.create 1L) ~scale:2.5 ~rate:3. ~noise:0. 10 in
  let fit = Econ.Calibrate.exponential_fit samples in
  check_close ~tol:1e-9 "scale" 2.5 fit.Econ.Calibrate.scale;
  check_close ~tol:1e-9 "rate" 3. fit.Econ.Calibrate.rate;
  check_close ~tol:1e-9 "perfect r^2" 1. fit.Econ.Calibrate.r_square

let test_noisy_recovery () =
  let samples = synthetic_samples (Rng.create 2L) ~scale:1.5 ~rate:2. ~noise:0.05 40 in
  let fit = Econ.Calibrate.exponential_fit samples in
  check_close ~tol:0.1 "scale within 10%" 1.5 fit.Econ.Calibrate.scale;
  check_close ~tol:0.1 "rate within 10%" 2. fit.Econ.Calibrate.rate;
  check_true "good fit reported" (fit.Econ.Calibrate.r_square > 0.95)

let test_validation () =
  check_raises_invalid "too few" (fun () ->
      Econ.Calibrate.exponential_fit [| (1., 1.) |] |> ignore);
  check_raises_invalid "non-positive y" (fun () ->
      Econ.Calibrate.exponential_fit [| (1., 1.); (2., 0.) |] |> ignore);
  check_raises_invalid "constant x" (fun () ->
      Econ.Calibrate.exponential_fit [| (1., 1.); (1., 2.) |] |> ignore);
  (* rising data violate Assumption 2 *)
  check_raises_invalid "rising demand" (fun () ->
      Econ.Calibrate.demand [| (0., 1.); (1., 2.); (2., 4.) |] |> ignore)

let test_demand_roundtrip () =
  let truth = Econ.Demand.exponential ~m0:1.2 ~alpha:4. () in
  let samples =
    Array.init 12 (fun k ->
        let t = 0.05 +. (0.1 *. float_of_int k) in
        (t, Econ.Demand.population truth t))
  in
  let d, fit = Econ.Calibrate.demand samples in
  check_close ~tol:1e-8 "alpha recovered" 4. fit.Econ.Calibrate.rate;
  check_close ~tol:1e-8 "prediction matches truth"
    (Econ.Demand.population truth 0.33)
    (Econ.Demand.population d 0.33)

let test_throughput_roundtrip () =
  let truth = Econ.Throughput.exponential ~l0:0.8 ~beta:2.5 () in
  let samples =
    Array.init 12 (fun k ->
        let phi = 0.05 +. (0.15 *. float_of_int k) in
        (phi, Econ.Throughput.rate truth phi))
  in
  let th, fit = Econ.Calibrate.throughput samples in
  check_close ~tol:1e-8 "beta recovered" 2.5 fit.Econ.Calibrate.rate;
  check_close ~tol:1e-8 "rate matches" (Econ.Throughput.rate truth 0.7)
    (Econ.Throughput.rate th 0.7)

let test_value_per_unit () =
  check_close "weighted average" 0.5
    (Econ.Calibrate.value_per_unit [| (1., 2.); (2., 4.) |]);
  check_close "clamped at zero" 0. (Econ.Calibrate.value_per_unit [| (-3., 2.) |]);
  check_raises_invalid "no traffic" (fun () ->
      Econ.Calibrate.value_per_unit [| (1., 0.) |] |> ignore)

let test_full_cp () =
  let rng = Rng.create 5L in
  let demand_samples = synthetic_samples rng ~scale:1. ~rate:5. ~noise:0.02 30 in
  let throughput_samples = synthetic_samples rng ~scale:1. ~rate:2. ~noise:0.02 30 in
  let cp, dfit, tfit =
    Econ.Calibrate.cp ~name:"measured" ~demand_samples ~throughput_samples
      ~profit_reports:[| (10., 10.); (5., 10.) |] ()
  in
  Alcotest.(check string) "name" "measured" cp.Econ.Cp.name;
  check_close ~tol:0.15 "alpha" 5. dfit.Econ.Calibrate.rate;
  check_close ~tol:0.15 "beta" 2. tfit.Econ.Calibrate.rate;
  check_close "value" 0.75 cp.Econ.Cp.value

let prop_recovery_on_random_parameters =
  prop "noiseless fits recover arbitrary exponential parameters" ~count:100
    QCheck2.Gen.(pair (float_range 0.2 5.) (float_range 0.2 6.))
    (fun (scale, rate) ->
      let samples =
        Array.init 8 (fun k ->
            let x = 0.1 *. float_of_int (k + 1) in
            (x, scale *. exp (-.rate *. x)))
      in
      let fit = Econ.Calibrate.exponential_fit samples in
      Float.abs (fit.Econ.Calibrate.scale -. scale) < 1e-6 *. (1. +. scale)
      && Float.abs (fit.Econ.Calibrate.rate -. rate) < 1e-6 *. (1. +. rate))

let suite =
  ( "calibrate",
    [
      quick "exact recovery" test_exact_recovery;
      quick "noisy recovery" test_noisy_recovery;
      quick "validation" test_validation;
      quick "demand roundtrip" test_demand_roundtrip;
      quick "throughput roundtrip" test_throughput_roundtrip;
      quick "value per unit" test_value_per_unit;
      quick "full CP" test_full_cp;
      prop_recovery_on_random_parameters;
    ] )
