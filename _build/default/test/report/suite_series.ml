open Report
open Test_helpers

let xs = [| 0.; 1.; 2.; 3. |]

let mk name ys = Series.make ~name ~xs ~ys

let test_make () =
  let s = mk "s" [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check int) "length" 4 (Series.length s);
  check_raises_invalid "length mismatch" (fun () ->
      Series.make ~name:"x" ~xs ~ys:[| 1. |] |> ignore);
  check_raises_invalid "empty" (fun () ->
      Series.make ~name:"x" ~xs:[||] ~ys:[||] |> ignore)

let test_of_fn_and_y_at () =
  let s = Series.of_fn ~name:"sq" ~xs (fun x -> x *. x) in
  check_close "knot" 4. (Series.y_at s 2.);
  check_close "interpolated" 2.5 (Series.y_at s 1.5);
  check_close "clamped low" 0. (Series.y_at s (-5.));
  check_close "clamped high" 9. (Series.y_at s 5.)

let test_argmax () =
  let x, y = Series.argmax (mk "m" [| 1.; 5.; 3.; 2. |]) in
  check_close "arg" 1. x;
  check_close "max" 5. y

let test_monotonicity () =
  check_true "nonincreasing" (Series.is_monotone_nonincreasing (mk "d" [| 4.; 3.; 3.; 1. |]));
  check_true "not nonincreasing"
    (not (Series.is_monotone_nonincreasing (mk "d" [| 4.; 5.; 3.; 1. |])));
  check_true "nondecreasing" (Series.is_monotone_nondecreasing (mk "u" [| 1.; 1.; 2.; 9. |]));
  check_true "tolerance respected"
    (Series.is_monotone_nonincreasing ~tol:0.5 (mk "d" [| 4.; 4.2; 3.; 1. |]))

let test_single_peak () =
  check_true "peaked" (Series.is_single_peaked (mk "p" [| 1.; 3.; 4.; 2. |]));
  check_true "monotone counts" (Series.is_single_peaked (mk "p" [| 1.; 2.; 3.; 4. |]));
  check_true "valley rejected" (not (Series.is_single_peaked (mk "p" [| 3.; 1.; 4.; 2. |])))

let test_dominates () =
  let a = mk "a" [| 2.; 2.; 2.; 2. |] and b = mk "b" [| 1.; 2.; 1.5; 0. |] in
  check_true "a dominates b" (Series.dominates a b);
  check_true "b does not dominate a" (not (Series.dominates b a))

let test_to_table () =
  let a = mk "a" [| 1.; 2.; 3.; 4. |] and b = mk "b" [| 5.; 6.; 7.; 8. |] in
  let t = Series.to_table ~x_label:"x" [ a; b ] in
  check_true "columns" (Table.columns t = [ "x"; "a"; "b" ]);
  Alcotest.(check int) "rows" 4 (Table.row_count t);
  check_raises_invalid "mismatched grids" (fun () ->
      let c = Series.make ~name:"c" ~xs:[| 0.; 9. |] ~ys:[| 1.; 1. |] in
      Series.to_table ~x_label:"x" [ a; c ] |> ignore);
  check_raises_invalid "no series" (fun () -> Series.to_table ~x_label:"x" [] |> ignore)

let suite =
  ( "series",
    [
      quick "make" test_make;
      quick "of_fn / y_at" test_of_fn_and_y_at;
      quick "argmax" test_argmax;
      quick "monotonicity" test_monotonicity;
      quick "single peak" test_single_peak;
      quick "dominates" test_dominates;
      quick "to_table" test_to_table;
    ] )
