test/report/test_report.ml: Alcotest Suite_ascii_plot Suite_csv Suite_series Suite_table
