test/report/suite_series.ml: Alcotest Report Series Table Test_helpers
