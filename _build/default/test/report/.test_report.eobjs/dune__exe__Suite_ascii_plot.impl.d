test/report/suite_ascii_plot.ml: Alcotest Ascii_plot List Report Series String Test_helpers
