test/report/suite_table.ml: Alcotest Csv List QCheck2 Report String Table Test_helpers
