test/report/test_report.mli:
