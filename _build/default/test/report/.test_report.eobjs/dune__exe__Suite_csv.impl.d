test/report/suite_csv.ml: Csv Filename Report Sys Table Test_helpers
