open Report
open Test_helpers

let test_parse_simple () =
  check_true "two rows"
    (Csv.parse_string "a,b\n1,2\n" = [ [ "a"; "b" ]; [ "1"; "2" ] ]);
  check_true "no trailing newline" (Csv.parse_string "a,b" = [ [ "a"; "b" ] ])

let test_parse_quoted () =
  check_true "embedded comma" (Csv.parse_string "\"a,b\",c\n" = [ [ "a,b"; "c" ] ]);
  check_true "escaped quote" (Csv.parse_string "\"a\"\"b\"\n" = [ [ "a\"b" ] ]);
  check_true "embedded newline" (Csv.parse_string "\"a\nb\",c\n" = [ [ "a\nb"; "c" ] ])

let test_parse_crlf () =
  check_true "CRLF tolerated" (Csv.parse_string "a,b\r\n1,2\r\n" = [ [ "a"; "b" ]; [ "1"; "2" ] ])

let test_write_read_roundtrip () =
  let dir = Filename.temp_file "csv_test" "" in
  Sys.remove dir;
  let path = Filename.concat (Filename.concat dir "deep") "t.csv" in
  let t = Table.make ~columns:[ "x"; "label" ] in
  Table.add_row t [ "1.5"; "hello, world" ];
  Csv.write ~path t;
  let rows = Csv.read ~path in
  check_true "roundtrip with directories created"
    (rows = [ [ "x"; "label" ]; [ "1.5"; "hello, world" ] ]);
  Sys.remove path

let suite =
  ( "csv",
    [
      quick "simple" test_parse_simple;
      quick "quoted" test_parse_quoted;
      quick "crlf" test_parse_crlf;
      quick "write/read roundtrip" test_write_read_roundtrip;
    ] )
