open Report
open Test_helpers

let sample () =
  let t = Table.make ~columns:[ "name"; "x" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "beta"; "2.5" ];
  t

let test_construction () =
  let t = sample () in
  Alcotest.(check int) "row count" 2 (Table.row_count t);
  check_true "columns" (Table.columns t = [ "name"; "x" ]);
  check_true "rows in order" (Table.rows t = [ [ "alpha"; "1" ]; [ "beta"; "2.5" ] ]);
  check_raises_invalid "no columns" (fun () -> Table.make ~columns:[] |> ignore);
  check_raises_invalid "ragged row" (fun () -> Table.add_row (sample ()) [ "x" ])

let test_add_floats () =
  let t = Table.make ~columns:[ "a"; "b" ] in
  Table.add_floats t [ 0.123456789; 2. ];
  check_true "default precision"
    (Table.rows t = [ [ "0.12346"; "2" ] ]);
  let t2 = Table.make ~columns:[ "a" ] in
  Table.add_floats ~precision:2 t2 [ 0.123456789 ];
  check_true "custom precision" (Table.rows t2 = [ [ "0.12" ] ])

let test_render () =
  let s = Table.to_string (sample ()) in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "header + rule + rows" 4 (List.length lines);
  check_true "aligned columns"
    (List.for_all
       (fun l -> String.length l = String.length (List.hd lines))
       (List.tl (List.tl lines)))

let test_csv_escaping () =
  let t = Table.make ~columns:[ "c" ] in
  Table.add_row t [ "plain" ];
  Table.add_row t [ "with,comma" ];
  Table.add_row t [ "with\"quote" ];
  let csv = Table.to_csv_string t in
  check_true "comma quoted" (String.length csv > 0);
  let parsed = Csv.parse_string csv in
  check_true "roundtrip"
    (parsed = [ [ "c" ]; [ "plain" ]; [ "with,comma" ]; [ "with\"quote" ] ])

let prop_csv_roundtrip =
  prop "CSV write/parse roundtrips arbitrary cells" ~count:100
    QCheck2.Gen.(list_size (int_range 1 5) (string_size ~gen:printable (int_range 0 12)))
    (fun cells ->
      (* normalize CR, which the parser folds away by design *)
      let cells = List.map (String.map (fun c -> if c = '\r' then ' ' else c)) cells in
      let t = Table.make ~columns:(List.map (fun _ -> "c") cells) in
      Table.add_row t cells;
      match Csv.parse_string (Table.to_csv_string t) with
      | [ _; parsed ] -> parsed = cells
      | _ -> false)

let suite =
  ( "table",
    [
      quick "construction" test_construction;
      quick "add_floats" test_add_floats;
      quick "render" test_render;
      quick "csv escaping" test_csv_escaping;
      prop_csv_roundtrip;
    ] )
