open Report
open Test_helpers

let series () =
  Series.make ~name:"line" ~xs:[| 0.; 1.; 2. |] ~ys:[| 0.; 1.; 2. |]

let test_render_basic () =
  let out = Ascii_plot.render [ series () ] in
  check_true "non-empty" (String.length out > 100);
  check_true "legend present"
    (List.exists
       (fun l -> String.length l > 0 && String.ends_with ~suffix:"line" l)
       (String.split_on_char '\n' out));
  check_true "uses first glyph" (String.contains out '*')

let test_render_multi_series () =
  let a = series () in
  let b = Series.make ~name:"flat" ~xs:[| 0.; 2. |] ~ys:[| 1.; 1. |] in
  let out = Ascii_plot.render [ a; b ] in
  check_true "second glyph" (String.contains out '+');
  check_true "both legends"
    (let lines = String.split_on_char '\n' out in
     List.exists (fun l -> String.ends_with ~suffix:"flat" l) lines)

let test_config () =
  let tiny = { Ascii_plot.default with Ascii_plot.width = 20; height = 6 } in
  let out = Ascii_plot.render ~config:tiny [ series () ] in
  let plot_rows =
    List.filter (fun l -> String.contains l '|') (String.split_on_char '\n' out)
  in
  Alcotest.(check int) "height respected" 6 (List.length plot_rows);
  check_raises_invalid "too small" (fun () ->
      Ascii_plot.render
        ~config:{ Ascii_plot.default with Ascii_plot.width = 2 }
        [ series () ]
      |> ignore);
  check_raises_invalid "no series" (fun () -> Ascii_plot.render [] |> ignore)

let test_fixed_axis () =
  let cfg = { Ascii_plot.default with Ascii_plot.y_min = Some 0.; y_max = Some 10. } in
  let out = Ascii_plot.render ~config:cfg [ series () ] in
  check_true "axis label shows override"
    (List.exists
       (fun l -> String.length l >= 2 && String.trim l <> "" && String.contains l '1')
       (String.split_on_char '\n' out))

let test_constant_series_handled () =
  let flat = Series.make ~name:"c" ~xs:[| 0.; 1. |] ~ys:[| 3.; 3. |] in
  (* degenerate y-range must not divide by zero *)
  let out = Ascii_plot.render [ flat ] in
  check_true "rendered" (String.length out > 0)

let suite =
  ( "ascii-plot",
    [
      quick "basic render" test_render_basic;
      quick "multi series" test_render_multi_series;
      quick "config" test_config;
      quick "fixed axis" test_fixed_axis;
      quick "constant series" test_constant_series_handled;
    ] )
