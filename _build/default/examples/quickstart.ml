(* Quickstart: build a small content market, find its utilization
   equilibrium, then let the CPs compete in subsidies.

   Run with: dune exec examples/quickstart.exe *)

open Subsidization

let () =
  (* Two content providers sharing one access ISP. A video CP whose
     users are price-tolerant but congestion-sensitive, and a social CP
     with price-sensitive users and high per-traffic profit. *)
  let video =
    Econ.Cp.exponential ~name:"video" ~alpha:1.5 ~beta:4. ~value:0.6 ()
  in
  let social =
    Econ.Cp.exponential ~name:"social" ~alpha:4. ~beta:1.5 ~value:1.2 ()
  in
  let sys = System.make ~cps:[| video; social |] ~capacity:1. () in

  (* Status quo: one-sided pricing at p = 0.5 and no subsidies. *)
  let price = 0.5 in
  let st = One_sided.state sys ~price in
  Printf.printf "One-sided pricing at p=%.2f:\n" price;
  Printf.printf "  utilization phi = %.4f\n" st.System.phi;
  Array.iteri
    (fun i cp ->
      Printf.printf "  %-7s m=%.4f  theta=%.4f\n" cp.Econ.Cp.name
        st.System.populations.(i) st.System.throughputs.(i))
    sys.System.cps;
  Printf.printf "  ISP revenue R = %.4f\n\n" (price *. st.System.aggregate);

  (* Allow subsidies up to q = 1 and solve the competition game. *)
  let game = Subsidy_game.make sys ~price ~cap:1.0 in
  let eq = Nash.solve game in
  Printf.printf "Subsidization competition (cap q=1):\n";
  Array.iteri
    (fun i cp ->
      Printf.printf "  %-7s subsidizes s=%.4f -> users pay %.4f, theta=%.4f, utility=%.4f\n"
        cp.Econ.Cp.name eq.Nash.subsidies.(i)
        eq.Nash.state.System.charges.(i) eq.Nash.state.System.throughputs.(i)
        eq.Nash.utilities.(i))
    sys.System.cps;
  Printf.printf "  utilization phi = %.4f (was %.4f)\n" eq.Nash.state.System.phi st.System.phi;
  Printf.printf "  ISP revenue R = %.4f (was %.4f)\n"
    (price *. eq.Nash.state.System.aggregate)
    (price *. st.System.aggregate);
  Printf.printf "  equilibrium certified: KKT residual = %.2e\n" eq.Nash.kkt_residual
