examples/isp_competition.ml: Duopoly Printf Regulator Scenario Subsidization
