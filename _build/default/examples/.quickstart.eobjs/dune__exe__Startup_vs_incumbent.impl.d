examples/startup_vs_incumbent.ml: Array Econ Nash Policy Printf Report Subsidization System
