examples/startup_vs_incumbent.mli:
