examples/quickstart.ml: Array Econ Nash One_sided Printf Subsidization Subsidy_game System
