examples/capacity_planning.ml: Array Capacity Printf Report Scenario Subsidization
