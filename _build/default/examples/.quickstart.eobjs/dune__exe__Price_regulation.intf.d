examples/price_regulation.mli:
