examples/sponsored_data.ml: Array Econ Float List Nash Policy Printf Scenario Subsidization System
