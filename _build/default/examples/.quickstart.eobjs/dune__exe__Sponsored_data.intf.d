examples/sponsored_data.mli:
