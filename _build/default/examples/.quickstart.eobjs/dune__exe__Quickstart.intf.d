examples/quickstart.mli:
