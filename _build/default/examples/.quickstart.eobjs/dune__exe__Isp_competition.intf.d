examples/isp_competition.mli:
