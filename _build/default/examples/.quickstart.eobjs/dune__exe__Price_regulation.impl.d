examples/price_regulation.ml: Array List Numerics Policy Printf Report Scenario Subsidization
