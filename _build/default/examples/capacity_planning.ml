(* Capacity planning: the Section-6 extension. Subsidization raises
   utilization and revenue, which strengthens the ISP's incentive to
   invest in capacity. Here the ISP chooses capacity against a linear
   buildout cost, under increasingly permissive subsidy policies.

   Run with: dune exec examples/capacity_planning.exe *)

open Subsidization

let () =
  let sys = Scenario.fig7_11_system () in
  let unit_cost = 0.15 in
  let price = 0.8 in
  Printf.printf
    "ISP chooses capacity mu to maximize  p*theta(mu) - %.2f*mu  at fixed p=%.2f\n\n"
    unit_cost price;
  let table =
    Report.Table.make ~columns:[ "q"; "mu*"; "revenue"; "profit"; "phi"; "welfare" ]
  in
  Array.iter
    (fun cap ->
      let plan =
        Capacity.optimal ~mu_lo:0.1 ~mu_hi:6. sys
          ~pricing:(Capacity.Fixed_price price) ~cap ~unit_cost
      in
      Report.Table.add_floats ~precision:4 table
        [
          cap;
          plan.Capacity.capacity;
          plan.Capacity.revenue;
          plan.Capacity.profit;
          plan.Capacity.utilization;
          plan.Capacity.welfare;
        ])
    (Scenario.q_levels ());
  print_endline (Report.Table.to_string table);
  print_newline ();
  print_endline
    "As the policy cap q rises, CP subsidies pull in more demand; the ISP's";
  print_endline
    "marginal revenue from capacity grows, so the profit-maximizing buildout";
  print_endline
    "mu* expands - the investment-incentive mechanism the paper argues for."
