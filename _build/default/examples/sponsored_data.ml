(* Sponsored data: AT&T's plan (Section 1 and 6 of the paper) is the
   full-subsidization special case. This example compares three policy
   regimes on the paper's 8-CP market: banned (q=0), capped partial
   subsidies (q=0.5) and effectively unconstrained sponsorship (q=2).

   Run with: dune exec examples/sponsored_data.exe *)

open Subsidization

let describe ~label point =
  let eq = point.Policy.equilibrium in
  Printf.printf "%-22s phi=%.4f  R=%.4f  W=%.4f  sponsors=%d/8\n" label
    point.Policy.utilization point.Policy.revenue point.Policy.welfare
    (Array.fold_left
       (fun acc s -> if s > 1e-6 then acc + 1 else acc)
       0 eq.Nash.subsidies)

let () =
  let sys = Scenario.fig7_11_system () in
  let price = 0.8 in
  Printf.printf "Market: 8 CP types, capacity mu=1, usage price p=%.2f\n\n" price;
  let regimes = [ ("banned (q=0)", 0.); ("capped (q=0.5)", 0.5); ("sponsored (q=2)", 2.0) ] in
  let points =
    List.map (fun (label, cap) -> (label, Policy.point_at sys ~price ~cap)) regimes
  in
  List.iter (fun (label, point) -> describe ~label point) points;

  (* Who sponsors, and how much of the user's bill do they cover? *)
  let _, sponsored = List.nth points 2 in
  Printf.printf "\nUnder unconstrained sponsorship:\n";
  Array.iteri
    (fun i cp ->
      let s = sponsored.Policy.equilibrium.Nash.subsidies.(i) in
      let coverage = 100. *. s /. price in
      Printf.printf "  %-9s covers %5.1f%% of its users' usage fees (s=%.3f, v=%.1f)\n"
        cp.Econ.Cp.name (Float.min 100. coverage) s cp.Econ.Cp.value)
    sys.System.cps;

  let banned_point = snd (List.hd points) in
  let uplift =
    100.
    *. (sponsored.Policy.revenue -. banned_point.Policy.revenue)
    /. banned_point.Policy.revenue
  in
  Printf.printf
    "\nDeregulating sponsorship lifts ISP revenue by %.1f%% without touching the\n\
     physical network's neutrality - the paper's core policy claim (Corollary 1).\n"
    uplift
