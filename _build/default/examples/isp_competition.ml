(* ISP competition: Section 6 argues that if the access market is
   competitive, price regulation becomes unnecessary while subsidization
   remains attractive to every ISP. This example splits the paper's
   unit capacity across two competing ISPs and compares outcomes with
   the monopoly benchmark, with and without sponsored data.

   Run with: dune exec examples/isp_competition.exe *)

open Subsidization

let show label (m : Duopoly.market) =
  let pa, pb = m.Duopoly.prices and ra, rb = m.Duopoly.revenues in
  Printf.printf "%-28s pA=%.3f pB=%.3f  R=%.4f+%.4f  W=%.4f\n" label pa pb ra rb
    m.Duopoly.welfare

let () =
  let cps = Scenario.fig7_11_cps () in
  let market cap = Duopoly.make ~cps ~capacity_a:0.5 ~capacity_b:0.5 ~cap () in

  print_endline "Two ISPs share the paper's unit capacity; users pick the cheaper one.\n";
  show "monopoly, subsidies banned" (Duopoly.monopoly_benchmark (market 0.));
  show "duopoly, subsidies banned" (Duopoly.price_equilibrium (market 0.));
  show "monopoly, sponsored data" (Duopoly.monopoly_benchmark (market 1.));
  show "duopoly, sponsored data" (Duopoly.price_equilibrium (market 1.));

  print_newline ();
  print_endline "Competition disciplines prices without a regulator, and subsidization";
  print_endline "still raises both ISPs' revenue - the paper's Section-6 conjecture.";

  (* contrast with the regulated-monopoly route to the same welfare *)
  let sys = Scenario.fig7_11_system () in
  let regulated = Regulator.optimal_policy_with_price_cap sys in
  Printf.printf
    "\nFor reference, a regulator facing the monopolist would pick q=%.1f with a\n\
     price cap of %s (welfare %.4f): competition and price regulation are\n\
     substitutes, as the paper suggests.\n"
    regulated.Regulator.cap
    (match regulated.Regulator.price_cap with
    | Some c -> Printf.sprintf "%.2f" c
    | None -> "none")
    regulated.Regulator.welfare
