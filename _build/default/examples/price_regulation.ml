(* Price regulation: the paper's final policy message - deregulate
   subsidization, but regulate the access price if the ISP market is
   not competitive. This example compares a monopolist ISP's chosen
   price against the welfare-maximizing regulated price, with and
   without subsidization.

   Run with: dune exec examples/price_regulation.exe *)

open Subsidization

let () =
  let sys = Scenario.fig7_11_system () in
  let table =
    Report.Table.make
      ~columns:[ "regime"; "q"; "p"; "revenue"; "welfare"; "phi" ]
  in
  let add_row label cap (point : Policy.point) =
    Report.Table.add_row table
      [
        label;
        Printf.sprintf "%g" cap;
        Printf.sprintf "%.3f" point.Policy.price;
        Printf.sprintf "%.4f" point.Policy.revenue;
        Printf.sprintf "%.4f" point.Policy.welfare;
        Printf.sprintf "%.4f" point.Policy.utilization;
      ]
  in

  (* Monopolist ISP: picks the revenue-maximizing price. *)
  List.iter
    (fun cap ->
      let point = Policy.optimal_price ~p_max:2.5 sys ~cap in
      add_row "monopoly pricing" cap point)
    [ 0.; 2. ];

  (* Regulated price: the regulator maximizes welfare over p. *)
  List.iter
    (fun cap ->
      let best = ref None in
      Array.iter
        (fun p ->
          let point = Policy.point_at sys ~price:p ~cap in
          match !best with
          | Some (b : Policy.point) when b.Policy.welfare >= point.Policy.welfare -> ()
          | _ -> best := Some point)
        (Numerics.Grid.linspace 0.05 2.5 50);
      match !best with
      | Some point -> add_row "welfare-max price" cap point
      | None -> assert false)
    [ 0.; 2. ];

  print_endline (Report.Table.to_string table);
  print_newline ();
  print_endline
    "Deregulating subsidies (q: 0 -> 2) raises revenue and welfare in both";
  print_endline
    "regimes, but a monopolist captures part of the gain by raising p; a";
  print_endline
    "price cap keeps the welfare gain with the users and CPs - the paper's";
  print_endline "combined recommendation (Sections 5-6)."
