(* Startup vs incumbent: Section 6 discusses the worry that
   subsidization competition hurts startups that cannot afford to
   subsidize. The paper's diagnosis: the harm mainly comes from a high
   ISP price, not from subsidization itself. This example quantifies
   both effects on a two-CP market.

   Run with: dune exec examples/startup_vs_incumbent.exe *)

open Subsidization

let startup_throughput sys ~price ~cap =
  let point = Policy.point_at sys ~price ~cap in
  point.Policy.equilibrium.Nash.state.System.throughputs.(0)

let () =
  (* CP 0: a startup with thin margins; CP 1: a profitable incumbent.
     Same traffic characteristics, so any gap is purely economic. *)
  let startup = Econ.Cp.exponential ~name:"startup" ~alpha:3. ~beta:3. ~value:0.2 () in
  let incumbent = Econ.Cp.exponential ~name:"incumbent" ~alpha:3. ~beta:3. ~value:1.2 () in
  let sys = System.make ~cps:[| startup; incumbent |] ~capacity:1. () in

  Printf.printf "Startup throughput under policy & price combinations:\n\n";
  let table = Report.Table.make ~columns:[ "price p"; "q=0"; "q=1"; "dereg. impact %" ] in
  let prices = [| 0.2; 0.5; 0.8; 1.2; 1.6 |] in
  Array.iter
    (fun price ->
      let banned = startup_throughput sys ~price ~cap:0. in
      let dereg = startup_throughput sys ~price ~cap:1. in
      Report.Table.add_row table
        [
          Printf.sprintf "%.1f" price;
          Printf.sprintf "%.4f" banned;
          Printf.sprintf "%.4f" dereg;
          Printf.sprintf "%+.1f" (100. *. (dereg -. banned) /. banned);
        ])
    prices;
  print_endline (Report.Table.to_string table);

  (* Decompose the damage: price effect vs subsidization effect. *)
  let reference = startup_throughput sys ~price:0.5 ~cap:0. in
  let after_subsidy = startup_throughput sys ~price:0.5 ~cap:1. in
  let after_price = startup_throughput sys ~price:1.5 ~cap:0. in
  Printf.printf
    "\nFrom the p=0.5, q=0 baseline (theta=%.4f):\n\
    \  allowing the incumbent to subsidize (q=1)  : %+.1f%%\n\
    \  tripling the ISP price instead (p=1.5)     : %+.1f%%\n\n\
     The startup loses far more to a high access price than to the\n\
     incumbent's subsidies - matching Theorem 8's diagnosis.\n"
    reference
    (100. *. (after_subsidy -. reference) /. reference)
    (100. *. (after_price -. reference) /. reference);

  (* Venture funding: what if the startup could subsidize ahead of
     profits (the paper's VC argument)? Raise its value and watch its
     equilibrium subsidy and throughput. *)
  let funded = Econ.Cp.exponential ~name:"funded" ~alpha:3. ~beta:3. ~value:0.9 () in
  let funded_sys = System.make ~cps:[| funded; incumbent |] ~capacity:1. () in
  let eq = Policy.nash_at funded_sys ~price:0.5 ~cap:1. in
  Printf.printf
    "With venture backing (value 0.2 -> 0.9), the startup subsidizes s=%.3f\n\
     and its throughput becomes %.4f (vs %.4f unfunded).\n"
    eq.Nash.subsidies.(0) eq.Nash.state.System.throughputs.(0) after_subsidy
