lib/econ/isp.ml: Float Format Printf
