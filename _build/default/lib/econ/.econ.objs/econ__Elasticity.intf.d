lib/econ/elasticity.mli:
