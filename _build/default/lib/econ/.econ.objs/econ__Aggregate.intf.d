lib/econ/aggregate.mli: Cp
