lib/econ/demand.ml: Float Printf
