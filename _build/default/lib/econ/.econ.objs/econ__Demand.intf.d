lib/econ/demand.mli:
