lib/econ/aggregate.ml: Cp Demand Float List Printf String Throughput
