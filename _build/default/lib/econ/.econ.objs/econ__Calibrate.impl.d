lib/econ/calibrate.ml: Array Cp Demand Float Linalg Mat Numerics Throughput Vec
