lib/econ/cp.ml: Demand Float Format Printf Throughput
