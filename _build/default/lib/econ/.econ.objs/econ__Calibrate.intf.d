lib/econ/calibrate.mli: Cp Demand Throughput
