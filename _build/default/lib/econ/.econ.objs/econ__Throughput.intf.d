lib/econ/throughput.mli:
