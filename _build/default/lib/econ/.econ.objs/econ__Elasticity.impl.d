lib/econ/elasticity.ml: Diff Float Numerics
