lib/econ/utilization.mli:
