lib/econ/isp.mli: Format
