lib/econ/throughput.ml: Float Printf
