lib/econ/utilization.ml: Float Printf
