lib/econ/cp.mli: Demand Format Throughput
