type t = { capacity : float; price : float; capacity_cost : float }

let make ?(capacity_cost = 0.) ~capacity ~price () =
  if capacity <= 0. || not (Float.is_finite capacity) then
    invalid_arg (Printf.sprintf "Isp.make: capacity must be positive, got %g" capacity);
  if price < 0. || not (Float.is_finite price) then
    invalid_arg (Printf.sprintf "Isp.make: price must be non-negative, got %g" price);
  if capacity_cost < 0. || not (Float.is_finite capacity_cost) then
    invalid_arg
      (Printf.sprintf "Isp.make: capacity_cost must be non-negative, got %g" capacity_cost);
  { capacity; price; capacity_cost }

let with_price isp price = make ~capacity_cost:isp.capacity_cost ~capacity:isp.capacity ~price ()

let with_capacity isp capacity =
  make ~capacity_cost:isp.capacity_cost ~capacity ~price:isp.price ()

let revenue isp ~aggregate_throughput = isp.price *. aggregate_throughput

let profit isp ~aggregate_throughput =
  revenue isp ~aggregate_throughput -. (isp.capacity_cost *. isp.capacity)

let pp fmt isp =
  Format.fprintf fmt "isp{mu=%g, p=%g, c=%g}" isp.capacity isp.price isp.capacity_cost
