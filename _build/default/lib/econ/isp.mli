(** Access ISP parameters.

    The ISP owns the bottleneck capacity [mu], charges a uniform
    usage-based price [p] (net neutrality forbids per-CP prices) and —
    for the capacity-planning extension — faces a per-unit capacity
    cost. *)

type t = {
  capacity : float;  (** [mu > 0] *)
  price : float;  (** [p >= 0], per unit of traffic *)
  capacity_cost : float;  (** cost per unit of capacity, [>= 0] *)
}

val make : ?capacity_cost:float -> capacity:float -> price:float -> unit -> t
(** Raises [Invalid_argument] on out-of-range parameters.
    [capacity_cost] defaults to 0 (capacity treated as sunk). *)

val with_price : t -> float -> t

val with_capacity : t -> float -> t

val revenue : t -> aggregate_throughput:float -> float
(** [R = p * theta] (the paper's revenue definition). *)

val profit : t -> aggregate_throughput:float -> float
(** [R - capacity_cost * mu]: the objective of the capacity-planning
    extension. *)

val pp : Format.formatter -> t -> unit
