(** Calibration of the model's functional forms from market data.

    Section 6 of the paper notes that validating the model needs market
    data — CP profitability and the demand/congestion elasticities —
    which sponsored-data deployments would generate. This module fits
    the exponential families from such observations:

    - demand: pairs [(t_k, m_k)] fit [m(t) = m0 e^(-alpha t)] by
      log-linear least squares;
    - throughput: pairs [(phi_k, lambda_k)] fit
      [lambda(phi) = l0 e^(-beta phi)] the same way;
    - profitability: average profit per unit of traffic from
      [(profit_k, traffic_k)] reports.

    All fits report an R^2 so a user can tell when the exponential
    family is the wrong shape for their data. *)

type fit = {
  scale : float;  (** fitted [m0] (or [l0]) *)
  rate : float;  (** fitted [alpha] (or [beta]); positive for decaying data *)
  r_square : float;  (** goodness of fit in log space *)
}

val exponential_fit : (float * float) array -> fit
(** Fit [y = scale * e^(-rate * x)] to [(x, y)] samples by least squares
    on [log y]. Requires at least 2 samples with distinct [x] and
    strictly positive [y]; raises [Invalid_argument] otherwise. *)

val demand : (float * float) array -> Demand.t * fit
(** [(charge, population)] samples to a calibrated demand. Raises
    [Invalid_argument] if the fitted [alpha] is not positive (data that
    rise with the charge violate Assumption 2). *)

val throughput : (float * float) array -> Throughput.t * fit
(** [(utilization, per-user rate)] samples to a calibrated throughput
    function; same contract. *)

val value_per_unit : (float * float) array -> float
(** [(profit, traffic)] reports to the traffic-weighted average profit
    per unit [v_i = sum profit / sum traffic]. Requires positive total
    traffic. *)

val cp :
  ?name:string ->
  demand_samples:(float * float) array ->
  throughput_samples:(float * float) array ->
  profit_reports:(float * float) array ->
  unit ->
  Cp.t * fit * fit
(** Assemble a calibrated CP, returning both fits for inspection. *)
