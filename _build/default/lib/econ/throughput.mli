(** Per-user throughput functions [lambda_i(phi)]: how much traffic one
    user of a content provider pushes when the system runs at
    utilization [phi >= 0].

    Every family satisfies Assumption 1: differentiable, strictly
    decreasing in [phi], and vanishing as [phi -> infinity]. The paper's
    evaluations use the exponential family [lambda0 * e^(-beta phi)];
    [beta] measures congestion sensitivity. *)

type spec =
  | Exponential of { l0 : float; beta : float }
      (** [l0 * exp (-beta * phi)]. *)
  | Isoelastic of { l0 : float; beta : float }
      (** [l0 * (1 + phi) ** (-beta)]: heavy-tailed congestion response. *)
  | Rational of { l0 : float; beta : float }
      (** [l0 / (1 + beta * phi)]: the M/M/1-like hyperbolic decay. *)

type t

val make : spec -> t
(** Validates parameters ([l0 > 0], [beta > 0]). *)

val spec : t -> spec

val exponential : ?l0:float -> beta:float -> unit -> t

val isoelastic : ?l0:float -> beta:float -> unit -> t

val rational : ?l0:float -> beta:float -> unit -> t

val rate : t -> float -> float
(** [rate th phi = lambda(phi)]. Requires [phi >= 0]. *)

val derivative : t -> float -> float
(** [dlambda/dphi], analytically. Always negative. *)

val elasticity : t -> float -> float
(** The phi-elasticity [lambda'(phi) * phi / lambda(phi)]
    (Definition 2); [0] at [phi = 0] and negative beyond. *)

val scale_rate : t -> kappa:float -> t
(** Multiply the rate by [kappa] pointwise (the Lemma-2 rescaling).
    [kappa] must be positive. *)

val label : t -> string
