(** Named data series: the in-memory form of a figure.

    A figure is a set of named [(x, y)] series sharing an x-axis
    meaning (price, policy, ...). Tables and plots are derived views. *)

type t = {
  name : string;
  xs : float array;
  ys : float array;
}

val make : name:string -> xs:float array -> ys:float array -> t
(** Lengths must agree and be non-zero. *)

val of_fn : name:string -> xs:float array -> (float -> float) -> t

val length : t -> int

val y_at : t -> float -> float
(** Linear interpolation in the series (clamped outside the range). *)

val argmax : t -> float * float
(** The knot [(x, y)] with the largest y. *)

val is_monotone_nonincreasing : ?tol:float -> t -> bool

val is_monotone_nondecreasing : ?tol:float -> t -> bool

val is_single_peaked : ?tol:float -> t -> bool
(** Nondecreasing then nonincreasing (either phase may be empty). *)

val dominates : ?tol:float -> t -> t -> bool
(** [dominates a b]: [a.ys >= b.ys - tol] pointwise (same grid
    required). *)

val to_table : x_label:string -> t list -> Table.t
(** Series sharing a common x grid rendered as one table; raises
    [Invalid_argument] when grids differ. *)
