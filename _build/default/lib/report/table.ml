type t = { columns : string list; mutable rev_rows : string list list }

let make ~columns =
  if columns = [] then invalid_arg "Table.make: no columns";
  { columns; rev_rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns" (List.length row)
         (List.length t.columns));
  t.rev_rows <- row :: t.rev_rows

let add_floats ?(precision = 5) t row =
  add_row t (List.map (Printf.sprintf "%.*g" precision) row)

let columns t = t.columns
let row_count t = List.length t.rev_rows
let rows t = List.rev t.rev_rows

let to_string t =
  let all = t.columns :: rows t in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> Stdlib.max w (String.length cell)) acc row)
      (List.map String.length t.columns)
      (rows t)
  in
  let render_row row =
    String.concat "  " (List.map2 (fun w cell -> Printf.sprintf "%-*s" w cell) widths row)
  in
  let header = render_row t.columns in
  let rule = String.make (String.length header) '-' in
  String.concat "\n" (header :: rule :: List.map render_row (List.tl all))

let pp fmt t = Format.pp_print_string fmt (to_string t)

let csv_escape cell =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') cell
  in
  if needs_quoting then begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else cell

let to_csv_string t =
  let line row = String.concat "," (List.map csv_escape row) in
  String.concat "\n" (line t.columns :: List.map line (rows t)) ^ "\n"
