(** Column-aligned text tables for experiment output. *)

type t

val make : columns:string list -> t
(** Raises [Invalid_argument] on an empty column list. *)

val add_row : t -> string list -> unit
(** Row length must match the column count. *)

val add_floats : ?precision:int -> t -> float list -> unit
(** Convenience: format every cell with [%.*g] (precision default 5). *)

val columns : t -> string list

val row_count : t -> int

val rows : t -> string list list
(** In insertion order. *)

val to_string : t -> string
(** Render with a header rule and right-padded cells. *)

val pp : Format.formatter -> t -> unit

val to_csv_string : t -> string
(** RFC-4180-style CSV (quoted when needed), header included. *)
