lib/report/csv.ml: Buffer Filename Fun List String Sys Table
