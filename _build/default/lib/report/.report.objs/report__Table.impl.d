lib/report/table.ml: Buffer Format List Printf Stdlib String
