(** CSV reading and writing (the subset experiments need). *)

val write : path:string -> Table.t -> unit
(** Write a table as CSV, creating parent directories as needed. *)

val parse_string : string -> string list list
(** Parse CSV text into rows of cells. Handles quoted cells, embedded
    quotes ([""]), commas and newlines inside quotes; tolerates a
    trailing newline. *)

val read : path:string -> string list list
