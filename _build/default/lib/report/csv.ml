let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let write ~path table =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Table.to_csv_string table))

let parse_string text =
  let rows = ref [] in
  let row = ref [] in
  let cell = Buffer.create 32 in
  let push_cell () =
    row := Buffer.contents cell :: !row;
    Buffer.clear cell
  in
  let push_row () =
    push_cell ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let n = String.length text in
  let rec plain i =
    if i >= n then (if Buffer.length cell > 0 || !row <> [] then push_row ())
    else
      match text.[i] with
      | ',' ->
        push_cell ();
        plain (i + 1)
      | '\n' ->
        push_row ();
        plain (i + 1)
      | '\r' -> plain (i + 1)
      | '"' when Buffer.length cell = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char cell c;
        plain (i + 1)
  and quoted i =
    if i >= n then (if Buffer.length cell > 0 || !row <> [] then push_row ())
    else
      match text.[i] with
      | '"' when i + 1 < n && text.[i + 1] = '"' ->
        Buffer.add_char cell '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char cell c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !rows

let read ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))
