type t = { name : string; xs : float array; ys : float array }

let make ~name ~xs ~ys =
  if Array.length xs <> Array.length ys then
    invalid_arg (Printf.sprintf "Series.make(%s): length mismatch" name);
  if Array.length xs = 0 then invalid_arg (Printf.sprintf "Series.make(%s): empty" name);
  { name; xs = Array.copy xs; ys = Array.copy ys }

let of_fn ~name ~xs f = make ~name ~xs ~ys:(Array.map f xs)

let length s = Array.length s.xs

let y_at s x =
  let n = Array.length s.xs in
  if x <= s.xs.(0) then s.ys.(0)
  else if x >= s.xs.(n - 1) then s.ys.(n - 1)
  else begin
    let i = ref 0 in
    while s.xs.(!i + 1) < x do
      incr i
    done;
    let frac = (x -. s.xs.(!i)) /. (s.xs.(!i + 1) -. s.xs.(!i)) in
    ((1. -. frac) *. s.ys.(!i)) +. (frac *. s.ys.(!i + 1))
  end

let argmax s =
  let best = ref 0 in
  Array.iteri (fun i y -> if y > s.ys.(!best) then best := i) s.ys;
  (s.xs.(!best), s.ys.(!best))

let is_monotone_nonincreasing ?(tol = 1e-9) s =
  let ok = ref true in
  for i = 0 to Array.length s.ys - 2 do
    if s.ys.(i + 1) > s.ys.(i) +. tol then ok := false
  done;
  !ok

let is_monotone_nondecreasing ?(tol = 1e-9) s =
  let ok = ref true in
  for i = 0 to Array.length s.ys - 2 do
    if s.ys.(i + 1) < s.ys.(i) -. tol then ok := false
  done;
  !ok

let is_single_peaked ?(tol = 1e-9) s =
  (* climb while increasing, then require nonincreasing to the end *)
  let n = Array.length s.ys in
  let i = ref 0 in
  while !i < n - 1 && s.ys.(!i + 1) >= s.ys.(!i) -. tol do
    incr i
  done;
  let ok = ref true in
  for j = !i to n - 2 do
    if s.ys.(j + 1) > s.ys.(j) +. tol then ok := false
  done;
  !ok

let dominates ?(tol = 1e-9) a b =
  Array.length a.ys = Array.length b.ys
  && begin
       let ok = ref true in
       Array.iteri (fun i ya -> if ya < b.ys.(i) -. tol then ok := false) a.ys;
       !ok
     end

let to_table ~x_label series =
  match series with
  | [] -> invalid_arg "Series.to_table: no series"
  | first :: rest ->
    List.iter
      (fun s ->
        if s.xs <> first.xs then
          invalid_arg "Series.to_table: series use different x grids")
      rest;
    let table = Table.make ~columns:(x_label :: List.map (fun s -> s.name) series) in
    Array.iteri
      (fun i x -> Table.add_floats table (x :: List.map (fun s -> s.ys.(i)) series))
      first.xs;
    table
