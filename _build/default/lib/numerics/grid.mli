(** Evaluation grids for parameter sweeps. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n >= 2] evenly spaced points from [a] to [b]
    inclusive. *)

val logspace : float -> float -> int -> float array
(** [logspace a b n] is [n] log-evenly spaced points from [a] to [b];
    both endpoints must be positive. *)

val arange : float -> float -> float -> float array
(** [arange a b step] is [a, a+step, ...] up to and including [b] (within
    half a step of it). [step] must be positive and [a <= b]. *)

val midpoints : float array -> float array
(** Pairwise midpoints of consecutive grid points. *)

val sweep : float array -> (float -> 'a) -> (float * 'a) array
(** Evaluate a function over a grid, keeping the abscissae. *)

val product2 : 'a array -> 'b array -> ('a * 'b) array
(** Cartesian product in row-major order. *)

val product3 : 'a array -> 'b array -> 'c array -> ('a * 'b * 'c) array
