let check_interval name lo hi =
  if lo > hi then invalid_arg (Printf.sprintf "Quadrature.%s: lo > hi" name)

let trapezoid ?(n = 256) f ~lo ~hi =
  check_interval "trapezoid" lo hi;
  if n < 1 then invalid_arg "Quadrature.trapezoid: need at least 1 panel";
  if lo = hi then 0.
  else begin
    let h = (hi -. lo) /. float_of_int n in
    let acc = ref (0.5 *. (f lo +. f hi)) in
    for i = 1 to n - 1 do
      acc := !acc +. f (lo +. (h *. float_of_int i))
    done;
    !acc *. h
  end

let simpson ?(n = 256) f ~lo ~hi =
  check_interval "simpson" lo hi;
  if n < 2 then invalid_arg "Quadrature.simpson: need at least 2 panels";
  if lo = hi then 0.
  else begin
    let n = if n mod 2 = 0 then n else n + 1 in
    let h = (hi -. lo) /. float_of_int n in
    let acc = ref (f lo +. f hi) in
    for i = 1 to n - 1 do
      let weight = if i mod 2 = 1 then 4. else 2. in
      acc := !acc +. (weight *. f (lo +. (h *. float_of_int i)))
    done;
    !acc *. h /. 3.
  end

let adaptive_simpson ?(tol = 1e-10) ?(max_depth = 50) f ~lo ~hi =
  check_interval "adaptive_simpson" lo hi;
  if lo = hi then 0.
  else begin
    let simpson_panel a fa b fb fm = (b -. a) /. 6. *. (fa +. (4. *. fm) +. fb) in
    let rec go a fa b fb m fm whole tol depth =
      let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
      let flm = f lm and frm = f rm in
      let left = simpson_panel a fa m fm flm in
      let right = simpson_panel m fm b fb frm in
      let delta = left +. right -. whole in
      if depth <= 0 || Float.abs delta <= 15. *. tol then
        left +. right +. (delta /. 15.)
      else
        go a fa m fm lm flm left (tol /. 2.) (depth - 1)
        +. go m fm b fb rm frm right (tol /. 2.) (depth - 1)
    in
    let m = 0.5 *. (lo +. hi) in
    let fa = f lo and fb = f hi and fm = f m in
    go lo fa hi fb m fm (simpson_panel lo fa hi fb fm) tol max_depth
  end

let integrate_samples xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Quadrature.integrate_samples: length mismatch";
  if Array.length xs < 2 then
    invalid_arg "Quadrature.integrate_samples: need at least 2 samples";
  let acc = ref 0. in
  for i = 0 to Array.length xs - 2 do
    let dx = xs.(i + 1) -. xs.(i) in
    if dx <= 0. then
      invalid_arg "Quadrature.integrate_samples: xs must be strictly increasing";
    acc := !acc +. (0.5 *. dx *. (ys.(i) +. ys.(i + 1)))
  done;
  !acc
