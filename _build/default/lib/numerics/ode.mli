(** Fixed-step ODE integration for vector fields.

    Used for continuous-time adjustment dynamics (gradient flows of the
    subsidization game). Fixed-step RK4 is plenty: the flows of interest
    are smooth contractions and the trajectories are short. *)

type trajectory = {
  times : float array;
  states : Vec.t array;  (** [states.(k)] at [times.(k)]; includes the start *)
}

val rk4_step : f:(float -> Vec.t -> Vec.t) -> t:float -> dt:float -> Vec.t -> Vec.t
(** One classical Runge-Kutta step of size [dt]. *)

val euler_step : f:(float -> Vec.t -> Vec.t) -> t:float -> dt:float -> Vec.t -> Vec.t

val integrate :
  ?method_:[ `Rk4 | `Euler ] ->
  ?post:(Vec.t -> Vec.t) ->
  f:(float -> Vec.t -> Vec.t) ->
  t0:float ->
  t1:float ->
  dt:float ->
  Vec.t ->
  trajectory
(** Integrate from [t0] to [t1] (the last step is shortened to land on
    [t1] exactly). [post] is applied to the state after every step —
    the hook for projecting onto a constraint set. Raises
    [Invalid_argument] on a non-positive [dt] or [t1 < t0]. *)

val final : trajectory -> Vec.t

val converged_at : ?tol:float -> trajectory -> float option
(** The earliest recorded time after which every consecutive state
    change stays below [tol] (sup norm); [None] if the trajectory never
    settles. *)
