(** Direct solvers for small dense linear systems.

    LU decomposition with partial pivoting is the workhorse; everything
    else (solve, inverse, determinant) is derived from it. Matrices in
    this project are tiny (the number of content providers, typically
    under 100), so an O(n^3) dense factorization is the right tool. *)

exception Singular
(** Raised when a factorization or solve meets a (numerically) singular
    matrix. *)

type lu
(** An LU factorization [P A = L U] of a square matrix. *)

val lu_decompose : Mat.t -> lu
(** Factorize a square matrix. Raises [Singular] if a pivot vanishes and
    [Invalid_argument] if the matrix is not square. *)

val lu_solve : lu -> Vec.t -> Vec.t
(** Solve [A x = b] given a factorization of [A]. *)

val lu_det : lu -> float

val solve : Mat.t -> Vec.t -> Vec.t
(** [solve a b] solves [a x = b]. Raises [Singular]. *)

val solve_many : Mat.t -> Vec.t list -> Vec.t list
(** Solve several right-hand sides reusing one factorization. *)

val inverse : Mat.t -> Mat.t
(** Raises [Singular]. *)

val det : Mat.t -> float
(** Determinant via LU (0 when the factorization is singular). *)

val condition_inf : Mat.t -> float
(** Condition number estimate [||A||_inf * ||A^-1||_inf]; [infinity] for
    singular matrices. *)

val lstsq : Mat.t -> Vec.t -> Vec.t
(** [lstsq a b] is the least-squares solution of the overdetermined
    system [a x ~ b] via the normal equations [(a^T a) x = a^T b]
    (adequate for the small, well-conditioned regressions used here).
    Requires [rows >= cols]; raises [Singular] for rank-deficient
    designs. *)

val leading_principal_minors : Mat.t -> float array
(** Determinants of the leading principal submatrices [1..n]. *)

val principal_minor : Mat.t -> int array -> float
(** Determinant of the principal submatrix indexed by the given
    (strictly increasing) index set. *)
