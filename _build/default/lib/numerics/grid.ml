let linspace a b n =
  if n < 2 then invalid_arg "Grid.linspace: need at least 2 points";
  let step = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> if i = n - 1 then b else a +. (step *. float_of_int i))

let logspace a b n =
  if a <= 0. || b <= 0. then invalid_arg "Grid.logspace: endpoints must be positive";
  Array.map exp (linspace (log a) (log b) n)

let arange a b step =
  if step <= 0. then invalid_arg "Grid.arange: step must be positive";
  if a > b then invalid_arg "Grid.arange: a > b";
  let n = int_of_float (Float.round ((b -. a) /. step)) + 1 in
  Array.init n (fun i -> a +. (step *. float_of_int i))

let midpoints xs =
  if Array.length xs < 2 then invalid_arg "Grid.midpoints: need at least 2 points";
  Array.init (Array.length xs - 1) (fun i -> 0.5 *. (xs.(i) +. xs.(i + 1)))

let sweep xs f = Array.map (fun x -> (x, f x)) xs

let product2 xs ys =
  Array.concat (Array.to_list (Array.map (fun x -> Array.map (fun y -> (x, y)) ys) xs))

let product3 xs ys zs =
  Array.concat
    (Array.to_list
       (Array.map (fun (x, y) -> Array.map (fun z -> (x, y, z)) zs) (product2 xs ys)))
