type t = float array

let make n x = Array.make n x
let init n f = Array.init n f
let zeros n = make n 0.
let ones n = make n 1.
let of_list = Array.of_list
let to_list = Array.to_list
let copy = Array.copy
let dim = Array.length

let basis n i =
  if i < 0 || i >= n then invalid_arg "Vec.basis: index out of range";
  let v = zeros n in
  v.(i) <- 1.;
  v

let check_dims name x y =
  if Array.length x <> Array.length y then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
                   (Array.length x) (Array.length y))

let map = Array.map
let mapi = Array.mapi

let map2 f x y =
  check_dims "map2" x y;
  Array.init (Array.length x) (fun i -> f x.(i) y.(i))

let add x y = check_dims "add" x y; map2 ( +. ) x y
let sub x y = check_dims "sub" x y; map2 ( -. ) x y
let mul x y = check_dims "mul" x y; map2 ( *. ) x y
let scale a x = map (fun xi -> a *. xi) x

let axpy a x y =
  check_dims "axpy" x y;
  Array.init (Array.length x) (fun i -> (a *. x.(i)) +. y.(i))

let neg x = map (fun xi -> -.xi) x

let dot x y =
  check_dims "dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let sum x = Array.fold_left ( +. ) 0. x
let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun acc xi -> Float.max acc (Float.abs xi)) 0. x

let dist_inf x y =
  check_dims "dist_inf" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := Float.max !acc (Float.abs (x.(i) -. y.(i)))
  done;
  !acc

let nonempty name x =
  if Array.length x = 0 then invalid_arg ("Vec." ^ name ^ ": empty vector")

let max_elt x =
  nonempty "max_elt" x;
  Array.fold_left Float.max x.(0) x

let min_elt x =
  nonempty "min_elt" x;
  Array.fold_left Float.min x.(0) x

let argmax x =
  nonempty "argmax" x;
  let best = ref 0 in
  for i = 1 to Array.length x - 1 do
    if x.(i) > x.(!best) then best := i
  done;
  !best

let argmin x =
  nonempty "argmin" x;
  let best = ref 0 in
  for i = 1 to Array.length x - 1 do
    if x.(i) < x.(!best) then best := i
  done;
  !best

let clamp ~lo ~hi x =
  if lo > hi then invalid_arg "Vec.clamp: lo > hi";
  map (fun xi -> Float.min hi (Float.max lo xi)) x

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y && dist_inf x y <= tol

let pp fmt x =
  Format.fprintf fmt "[@[%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
       (fun fmt v -> Format.fprintf fmt "%g" v))
    (to_list x)
