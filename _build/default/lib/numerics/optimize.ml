type result1d = { x : float; fx : float; iterations : int; evaluations : int }

let invphi = (sqrt 5. -. 1.) /. 2. (* 1/phi *)

let check_interval name lo hi =
  if lo > hi then invalid_arg (Printf.sprintf "Optimize.%s: lo=%g > hi=%g" name lo hi)

let golden_section ?(tol = 1e-10) ?(max_iter = 200) f ~lo ~hi =
  check_interval "golden_section" lo hi;
  if hi -. lo <= tol then
    let x = 0.5 *. (lo +. hi) in
    { x; fx = f x; iterations = 0; evaluations = 1 }
  else begin
    let a = ref lo and b = ref hi in
    let c = ref (!b -. (invphi *. (!b -. !a))) in
    let d = ref (!a +. (invphi *. (!b -. !a))) in
    let fc = ref (f !c) and fd = ref (f !d) in
    let evals = ref 2 in
    let iter = ref 0 in
    while !b -. !a > tol && !iter < max_iter do
      incr iter;
      if !fc >= !fd then begin
        b := !d;
        d := !c;
        fd := !fc;
        c := !b -. (invphi *. (!b -. !a));
        fc := f !c
      end
      else begin
        a := !c;
        c := !d;
        fc := !fd;
        d := !a +. (invphi *. (!b -. !a));
        fd := f !d
      end;
      incr evals
    done;
    let x = if !fc >= !fd then !c else !d in
    { x; fx = Float.max !fc !fd; iterations = !iter; evaluations = !evals }
  end

(* Brent's parabolic maximization: minimize (-f). *)
let brent_max ?(tol = 1e-10) ?(max_iter = 200) f ~lo ~hi =
  check_interval "brent_max" lo hi;
  let g x = -.f x in
  let cgold = 0.381966 in
  let a = ref lo and b = ref hi in
  let x = ref (lo +. (cgold *. (hi -. lo))) in
  let w = ref !x and v = ref !x in
  let fx = ref (g !x) in
  let fw = ref !fx and fv = ref !fx in
  let d = ref 0. and e = ref 0. in
  let evals = ref 1 in
  let iter = ref 0 in
  let finished = ref false in
  while (not !finished) && !iter < max_iter do
    incr iter;
    let xm = 0.5 *. (!a +. !b) in
    let tol1 = (tol *. Float.abs !x) +. 1e-12 in
    let tol2 = 2. *. tol1 in
    if Float.abs (!x -. xm) <= tol2 -. (0.5 *. (!b -. !a)) then finished := true
    else begin
      let use_golden = ref true in
      if Float.abs !e > tol1 then begin
        let r = (!x -. !w) *. (!fx -. !fv) in
        let q = (!x -. !v) *. (!fx -. !fw) in
        let p = ((!x -. !v) *. q) -. ((!x -. !w) *. r) in
        let q = 2. *. (q -. r) in
        let p = if q > 0. then -.p else p in
        let q = Float.abs q in
        let etemp = !e in
        e := !d;
        if
          Float.abs p < Float.abs (0.5 *. q *. etemp)
          && p > q *. (!a -. !x)
          && p < q *. (!b -. !x)
        then begin
          d := p /. q;
          let u = !x +. !d in
          if u -. !a < tol2 || !b -. u < tol2 then
            d := if xm >= !x then tol1 else -.tol1;
          use_golden := false
        end
      end;
      if !use_golden then begin
        e := (if !x >= xm then !a -. !x else !b -. !x);
        d := cgold *. !e
      end;
      let u = if Float.abs !d >= tol1 then !x +. !d else !x +. (if !d >= 0. then tol1 else -.tol1) in
      let fu = g u in
      incr evals;
      if fu <= !fx then begin
        if u >= !x then a := !x else b := !x;
        v := !w; w := !x; x := u;
        fv := !fw; fw := !fx; fx := fu
      end
      else begin
        if u < !x then a := u else b := u;
        if fu <= !fw || !w = !x then begin
          v := !w; fv := !fw;
          w := u; fw := fu
        end
        else if fu <= !fv || !v = !x || !v = !w then begin
          v := u;
          fv := fu
        end
      end
    end
  done;
  { x = !x; fx = -. !fx; iterations = !iter; evaluations = !evals }

let argmax_on_grid f xs =
  if Array.length xs = 0 then invalid_arg "Optimize.argmax_on_grid: empty grid";
  let best = ref 0 in
  let values = Array.map f xs in
  for i = 1 to Array.length xs - 1 do
    if values.(i) > values.(!best) then best := i
  done;
  { x = xs.(!best); fx = values.(!best); iterations = 1; evaluations = Array.length xs }

let grid_then_golden ?(points = 33) ?(tol = 1e-10) f ~lo ~hi =
  check_interval "grid_then_golden" lo hi;
  if points < 3 then invalid_arg "Optimize.grid_then_golden: need at least 3 points";
  if hi -. lo <= tol then
    let x = 0.5 *. (lo +. hi) in
    { x; fx = f x; iterations = 0; evaluations = 1 }
  else begin
    let xs =
      Array.init points (fun i ->
          lo +. ((hi -. lo) *. float_of_int i /. float_of_int (points - 1)))
    in
    let coarse = argmax_on_grid f xs in
    let k = ref 0 in
    Array.iteri (fun i x -> if x = coarse.x then k := i) xs;
    let a = xs.(Stdlib.max 0 (!k - 1)) and b = xs.(Stdlib.min (points - 1) (!k + 1)) in
    let refined = golden_section ~tol f ~lo:a ~hi:b in
    let best = if refined.fx >= coarse.fx then refined else coarse in
    { best with evaluations = coarse.evaluations + refined.evaluations }
  end

let coordinate_ascent ?(tol = 1e-9) ?(max_sweeps = 200) ?points f ~lo ~hi ~x0 =
  let n = Vec.dim x0 in
  if Vec.dim lo <> n || Vec.dim hi <> n then
    invalid_arg "Optimize.coordinate_ascent: box dimension mismatch";
  let x = ref (Vec.clamp ~lo:neg_infinity ~hi:infinity (Vec.copy x0)) in
  for i = 0 to n - 1 do
    !x.(i) <- Float.min hi.(i) (Float.max lo.(i) !x.(i))
  done;
  let sweep () =
    let moved = ref 0. in
    for i = 0 to n - 1 do
      let eval xi =
        let x' = Vec.copy !x in
        x'.(i) <- xi;
        f x'
      in
      let r = grid_then_golden ?points eval ~lo:lo.(i) ~hi:hi.(i) in
      moved := Float.max !moved (Float.abs (r.x -. !x.(i)));
      !x.(i) <- r.x
    done;
    !moved
  in
  let rec loop k =
    let moved = sweep () in
    if moved <= tol || k >= max_sweeps then (!x, f !x) else loop (k + 1)
  in
  loop 1
