lib/numerics/grid.mli:
