lib/numerics/optimize.mli: Vec
