lib/numerics/eigen.ml: Array Float Linalg Mat Vec
