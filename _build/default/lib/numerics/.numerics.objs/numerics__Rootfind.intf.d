lib/numerics/rootfind.mli:
