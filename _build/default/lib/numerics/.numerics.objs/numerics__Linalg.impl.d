lib/numerics/linalg.ml: Array Float List Mat Printf Vec
