lib/numerics/diff.ml: Array Float Mat Vec
