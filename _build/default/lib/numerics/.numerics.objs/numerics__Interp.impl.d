lib/numerics/interp.ml: Array Float Grid Optimize Printf Rootfind Stdlib
