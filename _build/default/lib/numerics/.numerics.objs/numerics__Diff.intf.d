lib/numerics/diff.mli: Mat Vec
