lib/numerics/optimize.ml: Array Float Printf Stdlib Vec
