lib/numerics/fixedpoint.ml: Float Printf Vec
