lib/numerics/interp.mli:
