lib/numerics/fixedpoint.mli: Vec
