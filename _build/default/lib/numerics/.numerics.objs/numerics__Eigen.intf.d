lib/numerics/eigen.mli: Mat Vec
