lib/numerics/quadrature.mli:
