lib/numerics/linalg.mli: Mat Vec
