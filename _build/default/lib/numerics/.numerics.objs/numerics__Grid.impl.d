lib/numerics/grid.ml: Array Float
