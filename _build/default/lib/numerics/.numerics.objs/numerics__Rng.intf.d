lib/numerics/rng.mli:
