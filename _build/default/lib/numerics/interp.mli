(** Interpolation of tabulated series and feature location.

    Series are given as parallel arrays [(xs, ys)] with strictly
    increasing [xs]. *)

type t
(** A prepared interpolant. *)

val linear : float array -> float array -> t
(** Piecewise-linear interpolant. Raises [Invalid_argument] on length
    mismatch, fewer than 2 points, or non-increasing [xs]. *)

val pchip : float array -> float array -> t
(** Monotone cubic (Fritsch-Carlson) interpolant: preserves the
    monotonicity of the data between knots. *)

val eval : t -> float -> float
(** Evaluate; clamps outside the knot range to the boundary values. *)

val crossing : t -> level:float -> float option
(** The smallest abscissa where the interpolant crosses [level], if
    any ([None] when the series stays on one side). *)

val peak : t -> float * float
(** The pair [(x_peak, y_peak)] maximizing the interpolant: the best
    knot refined by golden-section within its neighbouring panels. *)

val crossover : t -> t -> float option
(** The smallest abscissa where two interpolants (sharing a knot range)
    exchange order, found on the intersection of their ranges. *)
