(** Iterative eigenvalue estimation for small dense matrices.

    Only what the game-theoretic stability analysis needs: dominant
    eigenvalues (spectral radius bounds for tatonnement contraction) and
    smallest-magnitude eigenvalues (near-singularity detection). *)

exception No_convergence of string

type pair = { value : float; vector : Vec.t }

val power_iteration :
  ?tol:float -> ?max_iter:int -> ?x0:Vec.t -> Mat.t -> pair
(** Dominant eigenvalue (largest modulus, assuming it is real) with a
    unit eigenvector, by normalized power iteration with a Rayleigh
    quotient estimate. Raises [No_convergence]. *)

val inverse_iteration :
  ?tol:float -> ?max_iter:int -> ?shift:float -> Mat.t -> pair
(** Eigenpair closest to [shift] (default 0) by inverse power
    iteration. Raises [Linalg.Singular] if [a - shift I] is singular
    (then [shift] itself is an eigenvalue). *)

val spectral_radius_bound : Mat.t -> float
(** Cheap upper bound on the spectral radius: [min(||A||_inf,
    ||A||_1)] via Gershgorin-style norms. *)

val symmetric_eigenvalues : ?tol:float -> Mat.t -> float array
(** All eigenvalues of a symmetric matrix by the cyclic Jacobi rotation
    method, sorted ascending. Raises [Invalid_argument] when the matrix
    is not (numerically) symmetric. *)
