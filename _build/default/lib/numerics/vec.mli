(** Dense floating-point vectors.

    Thin, allocation-explicit wrappers around [float array]. All binary
    operations require equal lengths and raise [Invalid_argument]
    otherwise. *)

type t = float array

val make : int -> float -> t
(** [make n x] is the vector of [n] copies of [x]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [| f 0; ...; f (n-1) |]. *)

val zeros : int -> t

val ones : int -> t

val of_list : float list -> t

val to_list : t -> float list

val copy : t -> t

val dim : t -> int

val basis : int -> int -> t
(** [basis n i] is the [i]-th standard basis vector of dimension [n]. *)

val map : (float -> float) -> t -> t

val mapi : (int -> float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val add : t -> t -> t

val sub : t -> t -> t

val mul : t -> t -> t
(** Component-wise product. *)

val scale : float -> t -> t

val axpy : float -> t -> t -> t
(** [axpy a x y] is [a *. x + y], freshly allocated. *)

val neg : t -> t

val dot : t -> t -> float

val sum : t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float

val dist_inf : t -> t -> float
(** [dist_inf x y = norm_inf (sub x y)]. *)

val max_elt : t -> float
(** Largest component. Raises [Invalid_argument] on the empty vector. *)

val min_elt : t -> float

val argmax : t -> int
(** Index of the largest component (first on ties). *)

val argmin : t -> int

val clamp : lo:float -> hi:float -> t -> t
(** Component-wise clamp into [\[lo, hi\]]. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Sup-norm comparison, default [tol = 1e-9]. *)

val pp : Format.formatter -> t -> unit
