exception Singular

type lu = {
  lu : Mat.t; (* combined L (unit diagonal, below) and U (on/above diagonal) *)
  perm : int array; (* row permutation: solve uses b.(perm.(i)) *)
  sign : float; (* parity of the permutation, for determinants *)
}

let require_square name m =
  if not (Mat.is_square m) then
    invalid_arg
      (Printf.sprintf "Linalg.%s: matrix is %dx%d, not square" name (Mat.rows m)
         (Mat.cols m))

(* Doolittle LU with partial pivoting.  The factored matrix is mutated in
   place inside a private copy. *)
let lu_decompose a =
  require_square "lu_decompose" a;
  let n = Mat.rows a in
  let m = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* pivot search in column k *)
    let pivot_row = ref k in
    let pivot_val = ref (Float.abs (Mat.get m k k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (Mat.get m i k) in
      if v > !pivot_val then begin
        pivot_val := v;
        pivot_row := i
      end
    done;
    if !pivot_val < 1e-300 then raise Singular;
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let tmp = Mat.get m k j in
        Mat.set m k j (Mat.get m !pivot_row j);
        Mat.set m !pivot_row j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tmp;
      sign := -. !sign
    end;
    let pivot = Mat.get m k k in
    for i = k + 1 to n - 1 do
      let factor = Mat.get m i k /. pivot in
      Mat.set m i k factor;
      for j = k + 1 to n - 1 do
        Mat.set m i j (Mat.get m i j -. (factor *. Mat.get m k j))
      done
    done
  done;
  { lu = m; perm; sign = !sign }

let lu_solve { lu; perm; _ } b =
  let n = Mat.rows lu in
  if Vec.dim b <> n then invalid_arg "Linalg.lu_solve: dimension mismatch";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* forward substitution with unit-diagonal L *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (Mat.get lu i j *. x.(j))
    done
  done;
  (* back substitution with U *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- x.(i) /. Mat.get lu i i
  done;
  x

let lu_det { lu; sign; _ } =
  let n = Mat.rows lu in
  let d = ref sign in
  for i = 0 to n - 1 do
    d := !d *. Mat.get lu i i
  done;
  !d

let solve a b = lu_solve (lu_decompose a) b

let solve_many a bs =
  let f = lu_decompose a in
  List.map (lu_solve f) bs

let inverse a =
  require_square "inverse" a;
  let n = Mat.rows a in
  let f = lu_decompose a in
  let columns = List.init n (fun j -> lu_solve f (Vec.basis n j)) in
  let inv = Mat.zeros ~rows:n ~cols:n in
  List.iteri (fun j column -> Array.iteri (fun i v -> Mat.set inv i j v) column) columns;
  inv

let det a =
  require_square "det" a;
  match lu_decompose a with
  | f -> lu_det f
  | exception Singular -> 0.

let condition_inf a =
  match inverse a with
  | inv -> Mat.norm_inf a *. Mat.norm_inf inv
  | exception Singular -> Float.infinity

let lstsq a b =
  if Mat.rows a < Mat.cols a then
    invalid_arg "Linalg.lstsq: fewer rows than columns";
  if Mat.rows a <> Vec.dim b then invalid_arg "Linalg.lstsq: dimension mismatch";
  let at = Mat.transpose a in
  solve (Mat.matmul at a) (Mat.matvec at b)

let principal_minor a idx =
  require_square "principal_minor" a;
  let n = Mat.rows a in
  Array.iteri
    (fun k i ->
      if i < 0 || i >= n then invalid_arg "Linalg.principal_minor: index out of range";
      if k > 0 && idx.(k - 1) >= i then
        invalid_arg "Linalg.principal_minor: indices must be strictly increasing")
    idx;
  if Array.length idx = 0 then 1.
  else det (Mat.submatrix a ~row_idx:idx ~col_idx:idx)

let leading_principal_minors a =
  require_square "leading_principal_minors" a;
  let n = Mat.rows a in
  Array.init n (fun k -> principal_minor a (Array.init (k + 1) (fun i -> i)))
