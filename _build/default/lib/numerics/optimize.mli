(** Derivative-free optimization on intervals and boxes.

    All routines *maximize*; wrap the objective in a negation to
    minimize. *)

type result1d = {
  x : float;  (** arg max *)
  fx : float;  (** objective at [x] *)
  iterations : int;
  evaluations : int;
}

val golden_section :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> result1d
(** Golden-section search for a unimodal objective on [\[lo, hi\]].
    [tol] is the final interval width (default [1e-10]). *)

val brent_max :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> result1d
(** Brent's parabolic-interpolation maximizer; faster than golden
    section near smooth maxima, same contract. *)

val grid_then_golden :
  ?points:int ->
  ?tol:float ->
  (float -> float) ->
  lo:float ->
  hi:float ->
  result1d
(** Coarse scan with [points] samples (default 33) to locate the
    best bracket, then golden-section refinement inside it. Robust for
    objectives that are unimodal only piecewise. *)

val argmax_on_grid : (float -> float) -> float array -> result1d
(** Exhaustive evaluation on the given abscissae; ties keep the first. *)

val coordinate_ascent :
  ?tol:float ->
  ?max_sweeps:int ->
  ?points:int ->
  (Vec.t -> float) ->
  lo:Vec.t ->
  hi:Vec.t ->
  x0:Vec.t ->
  Vec.t * float
(** Cyclic coordinate ascent on a box: each sweep maximizes the
    objective along every coordinate with [grid_then_golden]. Stops when
    a sweep moves the point by at most [tol] in the sup norm. Returns
    the final point and objective value. *)
