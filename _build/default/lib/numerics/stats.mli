(** Descriptive statistics over float arrays. Inputs must be non-empty
    unless stated otherwise. *)

val mean : float array -> float

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singletons. *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile xs p] with [p in [0,1]], linear interpolation between
    order statistics. Does not mutate the input. *)

val median : float array -> float

val minimum : float array -> float

val maximum : float array -> float

val geometric_mean : float array -> float
(** Requires strictly positive entries. *)

val correlation : float array -> float array -> float
(** Pearson correlation; requires equal lengths of at least 2 and
    non-degenerate inputs. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
}

val summarize : float array -> summary

val pp_summary : Format.formatter -> summary -> unit
