exception No_convergence of string

type pair = { value : float; vector : Vec.t }

let require_square name m =
  if not (Mat.is_square m) then invalid_arg ("Eigen." ^ name ^ ": matrix not square")

let normalize v =
  let n = Vec.norm2 v in
  if n = 0. then invalid_arg "Eigen: zero vector";
  Vec.scale (1. /. n) v

let power_iteration ?(tol = 1e-10) ?(max_iter = 10_000) ?x0 a =
  require_square "power_iteration" a;
  let n = Mat.rows a in
  let x = ref (normalize (match x0 with Some v -> v | None -> Vec.init n (fun i -> 1. +. (0.01 *. float_of_int i)))) in
  let lambda = ref 0. in
  let rec loop iter =
    if iter > max_iter then raise (No_convergence "power_iteration");
    let y = Mat.matvec a !x in
    let ny = Vec.norm2 y in
    if ny = 0. then { value = 0.; vector = !x }
    else begin
      let x' = Vec.scale (1. /. ny) y in
      let lambda' = Vec.dot x' (Mat.matvec a x') in
      let drift = Float.min (Vec.dist_inf x' !x) (Vec.dist_inf (Vec.neg x') !x) in
      x := x';
      let converged = Float.abs (lambda' -. !lambda) <= tol *. (1. +. Float.abs lambda') && drift <= sqrt tol in
      lambda := lambda';
      if converged then { value = lambda'; vector = x' } else loop (iter + 1)
    end
  in
  loop 1

let inverse_iteration ?(tol = 1e-10) ?(max_iter = 10_000) ?(shift = 0.) a =
  require_square "inverse_iteration" a;
  let n = Mat.rows a in
  let shifted = Mat.init ~rows:n ~cols:n (fun i j ->
      Mat.get a i j -. (if i = j then shift else 0.))
  in
  let f = Linalg.lu_decompose shifted in
  let x = ref (normalize (Vec.init n (fun i -> 1. +. (0.01 *. float_of_int i)))) in
  let lambda = ref infinity in
  let rec loop iter =
    if iter > max_iter then raise (No_convergence "inverse_iteration");
    let y = Linalg.lu_solve f !x in
    let x' = normalize y in
    let lambda' = Vec.dot x' (Mat.matvec a x') in
    let converged = Float.abs (lambda' -. !lambda) <= tol *. (1. +. Float.abs lambda') in
    x := x';
    lambda := lambda';
    if converged then { value = lambda'; vector = x' } else loop (iter + 1)
  in
  loop 1

let spectral_radius_bound a =
  require_square "spectral_radius_bound" a;
  Float.min (Mat.norm_inf a) (Mat.norm_inf (Mat.transpose a))

let symmetric_eigenvalues ?(tol = 1e-12) a =
  require_square "symmetric_eigenvalues" a;
  let n = Mat.rows a in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Float.abs (Mat.get a i j -. Mat.get a j i) > 1e-8 *. (1. +. Mat.norm_inf a)
      then invalid_arg "Eigen.symmetric_eigenvalues: matrix not symmetric"
    done
  done;
  let m = Mat.copy a in
  let off_diagonal_norm () =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then acc := !acc +. (Mat.get m i j ** 2.)
      done
    done;
    sqrt !acc
  in
  let rotate p q =
    let apq = Mat.get m p q in
    if Float.abs apq > 0. then begin
      let app = Mat.get m p p and aqq = Mat.get m q q in
      let theta = 0.5 *. atan2 (2. *. apq) (aqq -. app) in
      let c = cos theta and s = sin theta in
      for k = 0 to n - 1 do
        let mkp = Mat.get m k p and mkq = Mat.get m k q in
        Mat.set m k p ((c *. mkp) -. (s *. mkq));
        Mat.set m k q ((s *. mkp) +. (c *. mkq))
      done;
      for k = 0 to n - 1 do
        let mpk = Mat.get m p k and mqk = Mat.get m q k in
        Mat.set m p k ((c *. mpk) -. (s *. mqk));
        Mat.set m q k ((s *. mpk) +. (c *. mqk))
      done
    end
  in
  let sweeps = ref 0 in
  while off_diagonal_norm () > tol *. (1. +. Mat.norm_frobenius m) && !sweeps < 100 do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        rotate p q
      done
    done
  done;
  let eigs = Array.init n (fun i -> Mat.get m i i) in
  Array.sort Float.compare eigs;
  eigs
