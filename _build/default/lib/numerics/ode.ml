type trajectory = { times : float array; states : Vec.t array }

let rk4_step ~f ~t ~dt x =
  let k1 = f t x in
  let k2 = f (t +. (dt /. 2.)) (Vec.axpy (dt /. 2.) k1 x) in
  let k3 = f (t +. (dt /. 2.)) (Vec.axpy (dt /. 2.) k2 x) in
  let k4 = f (t +. dt) (Vec.axpy dt k3 x) in
  let increment =
    Vec.add (Vec.add k1 (Vec.scale 2. k2)) (Vec.add (Vec.scale 2. k3) k4)
  in
  Vec.axpy (dt /. 6.) increment x

let euler_step ~f ~t ~dt x = Vec.axpy dt (f t x) x

let integrate ?(method_ = `Rk4) ?(post = fun x -> x) ~f ~t0 ~t1 ~dt x0 =
  if dt <= 0. then invalid_arg "Ode.integrate: dt must be positive";
  if t1 < t0 then invalid_arg "Ode.integrate: t1 < t0";
  let step = match method_ with `Rk4 -> rk4_step | `Euler -> euler_step in
  let times = ref [ t0 ] in
  let states = ref [ Vec.copy x0 ] in
  let t = ref t0 in
  let x = ref (Vec.copy x0) in
  while !t < t1 -. 1e-15 do
    let h = Float.min dt (t1 -. !t) in
    x := post (step ~f ~t:!t ~dt:h !x);
    t := !t +. h;
    times := !t :: !times;
    states := Vec.copy !x :: !states
  done;
  {
    times = Array.of_list (List.rev !times);
    states = Array.of_list (List.rev !states);
  }

let final traj = traj.states.(Array.length traj.states - 1)

let converged_at ?(tol = 1e-9) traj =
  let n = Array.length traj.states in
  if n < 2 then None
  else begin
    (* find the last index where the state still moved more than tol *)
    let last_move = ref (-1) in
    for k = 0 to n - 2 do
      if Vec.dist_inf traj.states.(k + 1) traj.states.(k) > tol then last_move := k
    done;
    if !last_move = n - 2 then None
    else Some traj.times.(!last_move + 1)
  end
