type kind =
  | Linear
  | Pchip of float array (* knot derivatives *)

type t = { xs : float array; ys : float array; kind : kind }

let validate name xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg (Printf.sprintf "Interp.%s: length mismatch" name);
  if Array.length xs < 2 then
    invalid_arg (Printf.sprintf "Interp.%s: need at least 2 points" name);
  for i = 0 to Array.length xs - 2 do
    if xs.(i + 1) <= xs.(i) then
      invalid_arg (Printf.sprintf "Interp.%s: xs must be strictly increasing" name)
  done

let linear xs ys =
  validate "linear" xs ys;
  { xs = Array.copy xs; ys = Array.copy ys; kind = Linear }

(* Fritsch-Carlson monotone-preserving derivative estimates. *)
let pchip xs ys =
  validate "pchip" xs ys;
  let n = Array.length xs in
  let h = Array.init (n - 1) (fun i -> xs.(i + 1) -. xs.(i)) in
  let delta = Array.init (n - 1) (fun i -> (ys.(i + 1) -. ys.(i)) /. h.(i)) in
  let d = Array.make n 0. in
  d.(0) <- delta.(0);
  d.(n - 1) <- delta.(n - 2);
  for i = 1 to n - 2 do
    if delta.(i - 1) *. delta.(i) > 0. then begin
      let w1 = (2. *. h.(i)) +. h.(i - 1) in
      let w2 = h.(i) +. (2. *. h.(i - 1)) in
      d.(i) <- (w1 +. w2) /. ((w1 /. delta.(i - 1)) +. (w2 /. delta.(i)))
    end
    (* opposite slopes or a flat panel: keep d = 0 for monotonicity *)
  done;
  { xs = Array.copy xs; ys = Array.copy ys; kind = Pchip d }

(* Index of the panel containing x: largest i with xs.(i) <= x, capped. *)
let panel t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then 0
  else if x >= t.xs.(n - 1) then n - 2
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let eval t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then t.ys.(0)
  else if x >= t.xs.(n - 1) then t.ys.(n - 1)
  else begin
    let i = panel t x in
    let h = t.xs.(i + 1) -. t.xs.(i) in
    let s = (x -. t.xs.(i)) /. h in
    match t.kind with
    | Linear -> t.ys.(i) +. (s *. (t.ys.(i + 1) -. t.ys.(i)))
    | Pchip d ->
      (* cubic Hermite basis *)
      let s2 = s *. s in
      let s3 = s2 *. s in
      let h00 = (2. *. s3) -. (3. *. s2) +. 1. in
      let h10 = s3 -. (2. *. s2) +. s in
      let h01 = (-2. *. s3) +. (3. *. s2) in
      let h11 = s3 -. s2 in
      (h00 *. t.ys.(i))
      +. (h10 *. h *. d.(i))
      +. (h01 *. t.ys.(i + 1))
      +. (h11 *. h *. d.(i + 1))
  end

let crossing t ~level =
  let n = Array.length t.xs in
  let rec scan i =
    if i >= n - 1 then None
    else begin
      let a = t.ys.(i) -. level and b = t.ys.(i + 1) -. level in
      if a = 0. then Some t.xs.(i)
      else if a *. b < 0. then begin
        let f x = eval t x -. level in
        let r = Rootfind.brent f ~lo:t.xs.(i) ~hi:t.xs.(i + 1) in
        Some r.Rootfind.root
      end
      else scan (i + 1)
    end
  in
  match scan 0 with
  | Some x -> Some x
  | None -> if t.ys.(n - 1) = level then Some t.xs.(n - 1) else None

let peak t =
  let n = Array.length t.xs in
  let best = ref 0 in
  for i = 1 to n - 1 do
    if t.ys.(i) > t.ys.(!best) then best := i
  done;
  let lo = t.xs.(Stdlib.max 0 (!best - 1)) in
  let hi = t.xs.(Stdlib.min (n - 1) (!best + 1)) in
  if lo = hi then (t.xs.(!best), t.ys.(!best))
  else begin
    let r = Optimize.golden_section (eval t) ~lo ~hi in
    if r.Optimize.fx >= t.ys.(!best) then (r.Optimize.x, r.Optimize.fx)
    else (t.xs.(!best), t.ys.(!best))
  end

let crossover a b =
  let lo = Float.max a.xs.(0) b.xs.(0) in
  let hi = Float.min a.xs.(Array.length a.xs - 1) b.xs.(Array.length b.xs - 1) in
  if lo >= hi then None
  else begin
    let diff x = eval a x -. eval b x in
    (* scan on a fine grid for the first sign change *)
    let xs = Grid.linspace lo hi 257 in
    let rec scan i =
      if i >= Array.length xs - 1 then None
      else begin
        let u = diff xs.(i) and v = diff xs.(i + 1) in
        if u = 0. then Some xs.(i)
        else if u *. v < 0. then begin
          let r = Rootfind.brent diff ~lo:xs.(i) ~hi:xs.(i + 1) in
          Some r.Rootfind.root
        end
        else scan (i + 1)
      end
    in
    scan 0
  end
