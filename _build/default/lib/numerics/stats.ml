let nonempty name xs =
  if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty input")

let mean xs =
  nonempty "mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  nonempty "variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let quantile xs p =
  nonempty "quantile" xs;
  if p < 0. || p > 1. then invalid_arg "Stats.quantile: p outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))
  end

let median xs = quantile xs 0.5

let minimum xs =
  nonempty "minimum" xs;
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  nonempty "maximum" xs;
  Array.fold_left Float.max xs.(0) xs

let geometric_mean xs =
  nonempty "geometric_mean" xs;
  Array.iter
    (fun x -> if x <= 0. then invalid_arg "Stats.geometric_mean: non-positive entry")
    xs;
  exp (Array.fold_left (fun acc x -> acc +. log x) 0. xs /. float_of_int (Array.length xs))

let correlation xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Stats.correlation: length mismatch";
  if Array.length xs < 2 then invalid_arg "Stats.correlation: need at least 2 points";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
  Array.iteri
    (fun i x ->
      let dx = x -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy))
    xs;
  if !sxx = 0. || !syy = 0. then invalid_arg "Stats.correlation: degenerate input";
  !sxy /. sqrt (!sxx *. !syy)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
}

let summarize xs =
  nonempty "summarize" xs;
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = minimum xs;
    p25 = quantile xs 0.25;
    median = median xs;
    p75 = quantile xs 0.75;
    max = maximum xs;
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d mean=%g sd=%g min=%g p25=%g med=%g p75=%g max=%g"
    s.n s.mean s.stddev s.min s.p25 s.median s.p75 s.max
