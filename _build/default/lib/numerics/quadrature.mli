(** Numerical integration on finite intervals. *)

val trapezoid : ?n:int -> (float -> float) -> lo:float -> hi:float -> float
(** Composite trapezoid rule with [n] panels (default 256). *)

val simpson : ?n:int -> (float -> float) -> lo:float -> hi:float -> float
(** Composite Simpson rule; [n] is rounded up to an even panel
    count (default 256). *)

val adaptive_simpson :
  ?tol:float -> ?max_depth:int -> (float -> float) -> lo:float -> hi:float -> float
(** Recursive adaptive Simpson with absolute tolerance [tol] (default
    [1e-10]). *)

val integrate_samples : float array -> float array -> float
(** Trapezoid integration of tabulated samples [(xs, ys)]; [xs] must be
    strictly increasing and lengths must agree. *)
