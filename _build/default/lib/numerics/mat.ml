type t = { rows : int; cols : int; data : float array }

let check_dims rows cols =
  if rows <= 0 || cols <= 0 then
    invalid_arg (Printf.sprintf "Mat: dimensions must be positive (%dx%d)" rows cols)

let create ~rows ~cols x =
  check_dims rows cols;
  { rows; cols; data = Array.make (rows * cols) x }

let init ~rows ~cols f =
  check_dims rows cols;
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let zeros ~rows ~cols = create ~rows ~cols 0.

let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1. else 0.)

let diag v =
  let n = Vec.dim v in
  init ~rows:n ~cols:n (fun i j -> if i = j then v.(i) else 0.)

let of_rows rs =
  let rows = Array.length rs in
  if rows = 0 then invalid_arg "Mat.of_rows: no rows";
  let cols = Array.length rs.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "Mat.of_rows: ragged rows")
    rs;
  init ~rows ~cols (fun i j -> rs.(i).(j))

let rows m = m.rows
let cols m = m.cols

let check_bounds m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Mat: index (%d,%d) out of bounds for %dx%d" i j m.rows m.cols)

let get m i j =
  check_bounds m i j;
  m.data.((i * m.cols) + j)

let set m i j x =
  check_bounds m i j;
  m.data.((i * m.cols) + j) <- x

let to_rows m = Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))
let copy m = { m with data = Array.copy m.data }
let transpose m = init ~rows:m.cols ~cols:m.rows (fun i j -> get m j i)
let row m i = Array.init m.cols (fun j -> get m i j)
let col m j = Array.init m.rows (fun i -> get m i j)
let map f m = { m with data = Array.map f m.data }

let same_shape name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: shape mismatch (%dx%d vs %dx%d)" name a.rows a.cols
         b.rows b.cols)

let add a b =
  same_shape "add" a b;
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  same_shape "sub" a b;
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale c m = map (fun x -> c *. x) m

let matmul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.matmul: %dx%d times %dx%d" a.rows a.cols b.rows b.cols);
  let c = zeros ~rows:a.rows ~cols:b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let matvec m x =
  if m.cols <> Vec.dim x then
    invalid_arg
      (Printf.sprintf "Mat.matvec: %dx%d times %d-vector" m.rows m.cols (Vec.dim x));
  Array.init m.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. x.(j))
      done;
      !acc)

let vecmat x m = matvec (transpose m) x

let norm_inf m =
  let best = ref 0. in
  for i = 0 to m.rows - 1 do
    let acc = ref 0. in
    for j = 0 to m.cols - 1 do
      acc := !acc +. Float.abs m.data.((i * m.cols) + j)
    done;
    best := Float.max !best !acc
  done;
  !best

let norm_frobenius m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.data)

let submatrix m ~row_idx ~col_idx =
  if Array.length row_idx = 0 || Array.length col_idx = 0 then
    invalid_arg "Mat.submatrix: empty index set";
  init ~rows:(Array.length row_idx) ~cols:(Array.length col_idx) (fun i j ->
      get m row_idx.(i) col_idx.(j))

let is_square m = m.rows = m.cols

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a.data b.data

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "|";
    for j = 0 to m.cols - 1 do
      Format.fprintf fmt " %10.6g" (get m i j)
    done;
    Format.fprintf fmt " |";
    if i < m.rows - 1 then Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
