(** Dense row-major matrices.

    A matrix is a record of dimensions plus a flat [float array]; entry
    [(i, j)] lives at offset [i * cols + j]. All operations are
    bounds-checked and raise [Invalid_argument] on dimension mismatch. *)

type t

val create : rows:int -> cols:int -> float -> t
(** Constant matrix. Dimensions must be positive. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t

val zeros : rows:int -> cols:int -> t

val identity : int -> t

val diag : Vec.t -> t
(** Square matrix with the given diagonal. *)

val of_rows : float array array -> t
(** Rows must be non-empty and of equal length. *)

val to_rows : t -> float array array

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val copy : t -> t

val transpose : t -> t

val row : t -> int -> Vec.t

val col : t -> int -> Vec.t

val map : (float -> float) -> t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val matmul : t -> t -> t

val matvec : t -> Vec.t -> Vec.t

val vecmat : Vec.t -> t -> Vec.t
(** [vecmat x a] is [x^T a] as a vector. *)

val norm_inf : t -> float
(** Maximum absolute row sum. *)

val norm_frobenius : t -> float

val submatrix : t -> row_idx:int array -> col_idx:int array -> t
(** Extract the submatrix indexed by the given rows and columns, in the
    given order. *)

val is_square : t -> bool

val approx_equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
