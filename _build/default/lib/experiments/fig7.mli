(** Figure 7: ISP revenue [R] (left) and system welfare [W] (right) vs
    price, one curve per policy level [q in {0, 0.5, 1, 1.5, 2}].
    Expected shapes: at fixed [p], both [R] and [W] nondecreasing in
    [q] (Corollary 1); at fixed [q], [W] decreasing in [p] over the
    bulk of the range. *)

val experiment : Common.t

val revenue_series : ?points:int -> unit -> Report.Series.t list
(** One revenue curve per policy level, named ["q=0"], ... *)

val welfare_series : ?points:int -> unit -> Report.Series.t list
