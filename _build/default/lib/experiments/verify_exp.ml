open Subsidization

let run () : Common.outcome =
  let checks = Theorems.run_paper_suite () in
  let table = Report.Table.make ~columns:[ "check"; "status"; "detail" ] in
  List.iter
    (fun c ->
      Report.Table.add_row table
        [
          c.Theorems.name;
          (if c.Theorems.passed then "ok" else "FAIL");
          c.Theorems.detail;
        ])
    checks;
  {
    Common.id = "verify";
    title = "Numeric verification of Lemmas 1-3, Theorems 1-8, Corollaries 1-2";
    tables = [ ("checks", table) ];
    plots = [];
    shape_checks = checks;
  }

let experiment =
  {
    Common.id = "verify";
    title = "Theorem verification suite";
    paper_ref = "all formal results";
    run;
  }
