(** Off-equilibrium dynamics experiment (Section 4.2's adjustment
    story): discrete best-response tatonnement and the continuous
    projected gradient flow, run on the paper's market, must settle at
    the same equilibrium the static solver finds. *)

val experiment : Common.t
