(** Access-market competition experiment (Section 6 conjecture): a
    two-ISP market with the paper's CP population. Competition should
    discipline prices relative to the monopoly benchmark while
    subsidization still raises both ISPs' revenue and system welfare. *)

val experiment : Common.t
