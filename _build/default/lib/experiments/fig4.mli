(** Figure 4: aggregate throughput [theta] and ISP revenue [R] as
    functions of the uniform price [p], for the 9-CP Section-3
    population. Expected shapes: [theta] strictly decreasing in [p];
    [R = p theta] single-peaked. *)

val experiment : Common.t

val series : ?points:int -> unit -> Report.Series.t * Report.Series.t
(** [(theta(p), revenue(p))] on the standard price grid; exposed for
    benchmarks. *)
