(** Capacity-planning extension (Section 6 future work): the ISP's
    optimal capacity and profit per policy level. Expected shape: a
    laxer subsidization policy supports (weakly) more capacity
    investment and higher ISP profit. *)

val experiment : Common.t
