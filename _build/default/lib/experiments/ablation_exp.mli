(** Numerics ablation: the Figure-7 revenue curve recomputed under
    perturbed solver settings (iteration scheme, damping, tolerances,
    line-search resolution, and the extragradient solver). The figure
    shapes must be artifacts of the model, not of solver defaults. *)

val experiment : Common.t
