(** Long-run investment experiment: the paper's answer to the
    "subsidization congests the network" objection. Under deregulation
    the ISP's reinvested margins expand capacity until even the
    initially-harmed congestion-sensitive CPs end up better off than
    under the ban. *)

val experiment : Common.t
