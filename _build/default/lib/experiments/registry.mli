(** The experiment registry: every figure reproduction plus the
    verification and extension experiments, addressable by id. *)

val all : Common.t list
(** In paper order: fig4, fig5, fig7, fig8, fig9, fig10, fig11,
    verify, capacity, dynamics, duopoly, robustness, ablation,
    longrun, surplus. *)

val ids : string list

val find : string -> Common.t option

val find_exn : string -> Common.t
(** Raises [Invalid_argument] with the known ids on a miss. *)
