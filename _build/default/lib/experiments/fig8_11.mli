(** Figures 8-11: per-CP equilibrium quantities vs price, one curve per
    policy level, 8 panels (one per CP type of the Section-5
    population).

    - Figure 8: equilibrium subsidies [s_i]
    - Figure 9: user populations [m_i]
    - Figure 10: throughput [theta_i]
    - Figure 11: utilities [U_i]

    All four figures read the one memoized equilibrium sweep. *)

val fig8 : Common.t

val fig9 : Common.t

val fig10 : Common.t

val fig11 : Common.t

val panel :
  ?points:int ->
  quantity:[ `Subsidy | `Population | `Throughput | `Utility ] ->
  cp:string ->
  unit ->
  Report.Series.t list
(** The curves of one panel (one series per policy level), e.g.
    [panel ~quantity:`Subsidy ~cp:"a5b2v1" ()]. Raises [Not_found] for
    an unknown CP name. *)
