open Subsidization

type quantity = [ `Subsidy | `Population | `Throughput | `Utility ]

let extract (quantity : quantity) (pt : Policy.point) i =
  let eq = pt.Policy.equilibrium in
  match quantity with
  | `Subsidy -> eq.Nash.subsidies.(i)
  | `Population -> eq.Nash.state.System.populations.(i)
  | `Throughput -> eq.Nash.state.System.throughputs.(i)
  | `Utility -> eq.Nash.utilities.(i)

let cp_index name =
  let names = Eq_sweep.cp_names () in
  let found = ref (-1) in
  Array.iteri (fun i n -> if n = name then found := i) names;
  if !found < 0 then raise Not_found;
  !found

let panel ?points ~quantity ~cp () =
  let i = cp_index cp in
  let caps, prices, sweep = Eq_sweep.get ?points () in
  Array.to_list
    (Array.mapi
       (fun qi cap ->
         Report.Series.make
           ~name:(Printf.sprintf "q=%g" cap)
           ~xs:prices
           ~ys:(Array.map (fun pt -> extract quantity pt i) sweep.(qi)))
       caps)

(* Look a quantity up on the sweep grid: value for CP [cp] at cap index
   [qi] and the price nearest [p]. *)
let value_at ?points ~quantity ~cp ~qi ~p () =
  let i = cp_index cp in
  let _, prices, sweep = Eq_sweep.get ?points () in
  let pi = ref 0 in
  Array.iteri
    (fun k x -> if Float.abs (x -. p) < Float.abs (prices.(!pi) -. p) then pi := k)
    prices;
  extract quantity sweep.(qi).(!pi) i

let tables quantity =
  let names = Eq_sweep.cp_names () in
  Array.to_list
    (Array.map
       (fun name ->
         let series = panel ~quantity ~cp:name () in
         (name, Report.Series.to_table ~x_label:"p" series))
       names)

let pointwise_le ?(tol = 1e-6) a b = Report.Series.dominates ~tol b a

let counterpart_pairs =
  (* (lower, higher) expected order by profitability v at equal (alpha, beta) *)
  [
    ("a2b2v0.5", "a2b2v1");
    ("a2b5v0.5", "a2b5v1");
    ("a5b2v0.5", "a5b2v1");
    ("a5b5v0.5", "a5b5v1");
  ]

let q_top = 4 (* index of q = 2.0 *)

let series_at quantity cp qi =
  let all = panel ~quantity ~cp () in
  List.nth all qi

(* ------------------------------------------------------------------ *)

let fig8_run () : Common.outcome =
  let checks =
    List.concat
      [
        List.map
          (fun (lo, hi) ->
            Common.check
              ~name:(Printf.sprintf "fig8.value-effect.%s<=%s" lo hi)
              (pointwise_le (series_at `Subsidy lo q_top) (series_at `Subsidy hi q_top))
              "profitable CPs subsidize (weakly) more (Theorem 5)")
          counterpart_pairs;
        [
          Common.check ~name:"fig8.demand-elasticity-effect"
            (pointwise_le
               (series_at `Subsidy "a2b2v1" q_top)
               (series_at `Subsidy "a5b2v1" q_top))
            "CPs with price-elastic users subsidize more";
          Common.check ~name:"fig8.capped-at-small-p"
            (let v = value_at ~quantity:`Subsidy ~cp:"a5b2v1" ~qi:1 ~p:0.3 () in
             Float.abs (v -. 0.5) < 1e-6)
            "with a tight cap and small price, strong CPs subsidize at the cap";
          Common.check ~name:"fig8.zero-when-banned"
            (let s = series_at `Subsidy "a5b2v1" 0 in
             Array.for_all (fun y -> y = 0.) s.Report.Series.ys)
            "q=0 forces zero subsidies";
        ];
      ]
  in
  {
    Common.id = "fig8";
    title = "Equilibrium subsidies s_i vs price, per CP type and policy";
    tables = tables `Subsidy;
    plots =
      [
        ("s(p) for a5b2v1 by q", panel ~quantity:`Subsidy ~cp:"a5b2v1" ());
        ("s(p) for a2b2v0.5 by q", panel ~quantity:`Subsidy ~cp:"a2b2v0.5" ());
      ];
    shape_checks = checks;
  }

let fig9_run () : Common.outcome =
  let names = Array.to_list (Eq_sweep.cp_names ()) in
  let monotone_in_p =
    List.for_all
      (fun cp ->
        Report.Series.is_monotone_nonincreasing ~tol:1e-6 (series_at `Population cp q_top))
      names
  in
  let higher_q_higher_m =
    List.for_all
      (fun cp ->
        pointwise_le (series_at `Population cp 0) (series_at `Population cp q_top))
      names
  in
  let steeper_for_elastic =
    let drop cp =
      let s = series_at `Population cp 0 in
      let n = Report.Series.length s in
      s.Report.Series.ys.(n - 1) /. s.Report.Series.ys.(0)
    in
    drop "a5b2v1" < drop "a2b2v1"
  in
  let checks =
    [
      Common.check ~name:"fig9.population-decreasing-in-p" monotone_in_p
        "user populations fall with the price (Assumption 2)";
      Common.check ~name:"fig9.deregulation-raises-population" higher_q_higher_m
        "a laxer policy yields (weakly) larger populations for every CP";
      Common.check ~name:"fig9.elastic-users-drop-steeper" steeper_for_elastic
        "alpha=5 populations decay faster in p than alpha=2";
    ]
  in
  {
    Common.id = "fig9";
    title = "Equilibrium user populations m_i vs price, per CP type and policy";
    tables = tables `Population;
    plots = [ ("m(p) for a5b2v1 by q", panel ~quantity:`Population ~cp:"a5b2v1" ()) ];
    shape_checks = checks;
  }

let fig10_run () : Common.outcome =
  let value_effect =
    List.for_all
      (fun (lo, hi) ->
        pointwise_le ~tol:1e-4 (series_at `Throughput lo q_top) (series_at `Throughput hi q_top))
      counterpart_pairs
  in
  let congestion_effect =
    pointwise_le ~tol:1e-4 (series_at `Throughput "a2b5v1" q_top)
      (series_at `Throughput "a2b2v1" q_top)
  in
  let exception_2_5_1 =
    (* the paper's one exception: the congestion-sensitive high-value CP
       loses throughput under deregulation at small p *)
    let banned = value_at ~quantity:`Throughput ~cp:"a2b5v1" ~qi:0 ~p:0.15 () in
    let dereg = value_at ~quantity:`Throughput ~cp:"a2b5v1" ~qi:q_top ~p:0.15 () in
    dereg < banned
  in
  let high_value_gains =
    (* at moderate prices, the other high-value CPs gain from deregulation *)
    List.for_all
      (fun cp ->
        value_at ~quantity:`Throughput ~cp ~qi:q_top ~p:1.0 ()
        >= value_at ~quantity:`Throughput ~cp ~qi:0 ~p:1.0 () -. 1e-6)
      [ "a2b2v1"; "a5b2v1"; "a5b5v1" ]
  in
  let checks =
    [
      Common.check ~name:"fig10.value-effect" value_effect
        "higher-profitability CPs achieve (weakly) higher throughput";
      Common.check ~name:"fig10.congestion-effect" congestion_effect
        "lower congestion elasticity yields higher throughput";
      Common.check ~name:"fig10.exception-a2b5v1" exception_2_5_1
        "the (2,5,1) CP loses throughput under deregulation at small p";
      Common.check ~name:"fig10.high-value-gains" high_value_gains
        "other high-value CPs gain throughput from deregulation at p=1";
    ]
  in
  {
    Common.id = "fig10";
    title = "Equilibrium throughput theta_i vs price, per CP type and policy";
    tables = tables `Throughput;
    plots = [ ("theta(p) for a2b5v1 by q", panel ~quantity:`Throughput ~cp:"a2b5v1" ()) ];
    shape_checks = checks;
  }

let fig11_run () : Common.outcome =
  let winners_gain =
    (* high demand elasticity and value: utility rises with deregulation *)
    List.for_all
      (fun p ->
        value_at ~quantity:`Utility ~cp:"a5b2v1" ~qi:q_top ~p ()
        >= value_at ~quantity:`Utility ~cp:"a5b2v1" ~qi:0 ~p () -. 1e-6)
      [ 0.75; 1.0; 1.25 ]
  in
  let losers_lose =
    (* low demand elasticity, high congestion elasticity: utility falls *)
    List.exists
      (fun p ->
        value_at ~quantity:`Utility ~cp:"a2b5v0.5" ~qi:q_top ~p ()
        < value_at ~quantity:`Utility ~cp:"a2b5v0.5" ~qi:0 ~p ())
      [ 0.25; 0.5; 0.75; 1.0 ]
  in
  let utility_tracks_throughput =
    (* U_i = (v_i - s_i) theta_i: for the q=0 row, U = v * theta exactly *)
    let names = Array.to_list (Eq_sweep.cp_names ()) in
    let cps = Scenario.fig7_11_cps () in
    List.for_all
      (fun cp ->
        let i = cp_index cp in
        let u = series_at `Utility cp 0 in
        let th = series_at `Throughput cp 0 in
        let worst = ref 0. in
        Array.iteri
          (fun k y ->
            worst :=
              Float.max !worst
                (Float.abs (y -. (cps.(i).Econ.Cp.value *. th.Report.Series.ys.(k)))))
          u.Report.Series.ys;
        !worst < 1e-9)
      names
  in
  let checks =
    [
      Common.check ~name:"fig11.winners" winners_gain
        "alpha=5, v=1 CPs gain utility under deregulation";
      Common.check ~name:"fig11.losers" losers_lose
        "alpha=2, beta=5 CPs lose utility under deregulation somewhere";
      Common.check ~name:"fig11.identity-at-q0" utility_tracks_throughput
        "U_i = v_i theta_i holds exactly when subsidies are banned";
    ]
  in
  {
    Common.id = "fig11";
    title = "Equilibrium utilities U_i vs price, per CP type and policy";
    tables = tables `Utility;
    plots = [ ("U(p) for a5b2v1 by q", panel ~quantity:`Utility ~cp:"a5b2v1" ()) ];
    shape_checks = checks;
  }

let fig8 =
  {
    Common.id = "fig8";
    title = "Equilibrium subsidies s_i per CP type";
    paper_ref = "Figure 8, Section 5.2";
    run = fig8_run;
  }

let fig9 =
  {
    Common.id = "fig9";
    title = "Equilibrium user populations m_i per CP type";
    paper_ref = "Figure 9, Section 5.2";
    run = fig9_run;
  }

let fig10 =
  {
    Common.id = "fig10";
    title = "Equilibrium throughput theta_i per CP type";
    paper_ref = "Figure 10, Section 5.2";
    run = fig10_run;
  }

let fig11 =
  {
    Common.id = "fig11";
    title = "Equilibrium utilities U_i per CP type";
    paper_ref = "Figure 11, Section 5.2";
    run = fig11_run;
  }
