(** The theorem-verification experiment: every Theorems check run on
    the paper's scenarios, rendered as a table. *)

val experiment : Common.t
