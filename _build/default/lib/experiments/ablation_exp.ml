open Subsidization

(* a coarse Figure-7 row: revenue at q = 1 over a small price grid *)
let prices = [| 0.2; 0.5; 0.8; 1.1; 1.4; 1.7; 2.0 |]

let curve solve =
  let sys = Scenario.fig7_11_system () in
  Array.map
    (fun p ->
      let game = Subsidy_game.make sys ~price:p ~cap:1.0 in
      let eq : Nash.equilibrium = solve game in
      p *. eq.Nash.state.System.aggregate)
    prices

let max_rel_deviation reference other =
  let worst = ref 0. in
  Array.iteri
    (fun k r ->
      let d = Float.abs (other.(k) -. r) /. Float.max 1e-9 (Float.abs r) in
      worst := Float.max !worst d)
    reference;
  !worst

let run () : Common.outcome =
  let reference = curve (fun g -> Nash.solve g) in
  let variants =
    [
      ("jacobi scheme", curve (fun g -> Nash.solve ~scheme:Gametheory.Best_response.Jacobi g));
      ("damping 0.5", curve (fun g -> Nash.solve ~damping:0.5 g));
      ("loose tolerance 1e-6", curve (fun g -> Nash.solve ~tol:1e-6 g));
      ("coarse line search (9 pts)", curve (fun g -> Nash.solve ~respond_points:9 g));
      ("fine line search (49 pts)", curve (fun g -> Nash.solve ~respond_points:49 g));
      ("extragradient VI solver", curve (fun g -> Nash.solve_vi ~tol:1e-9 g));
      ("warm start from cap", curve (fun g ->
           Nash.solve ~x0:(Numerics.Vec.make (Subsidy_game.dim g) (Subsidy_game.cap g)) g));
    ]
  in
  let table = Report.Table.make ~columns:[ "solver variant"; "max relative deviation" ] in
  Report.Table.add_row table [ "reference (defaults)"; "0" ];
  let checks =
    List.map
      (fun (name, ys) ->
        let dev = max_rel_deviation reference ys in
        Report.Table.add_row table [ name; Printf.sprintf "%.2e" dev ];
        Common.check
          ~name:(Printf.sprintf "ablation.%s" name)
          (dev < 1e-4)
          (Printf.sprintf "revenue curve deviates by at most %.2e" dev))
      variants
  in
  {
    Common.id = "ablation";
    title = "Solver ablation: Figure-7 revenue under perturbed numerics";
    tables = [ ("deviations", table) ];
    plots = [];
    shape_checks = checks;
  }

let experiment =
  {
    Common.id = "ablation";
    title = "Numerics ablation (solver-choice robustness)";
    paper_ref = "design validation (DESIGN.md)";
    run;
  }
