let all =
  [
    Fig4.experiment;
    Fig5.experiment;
    Fig7.experiment;
    Fig8_11.fig8;
    Fig8_11.fig9;
    Fig8_11.fig10;
    Fig8_11.fig11;
    Verify_exp.experiment;
    Capacity_exp.experiment;
    Dynamics_exp.experiment;
    Duopoly_exp.experiment;
    Robustness_exp.experiment;
    Ablation_exp.experiment;
    Longrun_exp.experiment;
    Surplus_exp.experiment;
  ]

let ids = List.map (fun e -> e.Common.id) all

let find id = List.find_opt (fun e -> e.Common.id = id) all

let find_exn id =
  match find id with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "unknown experiment %S (known: %s)" id (String.concat ", " ids))
