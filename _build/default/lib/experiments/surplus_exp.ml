open Subsidization

let run () : Common.outcome =
  let sys = Scenario.fig7_11_system () in
  let price = 0.8 in
  let caps = Scenario.q_levels () in
  let rows =
    Array.map
      (fun cap ->
        let game = Subsidy_game.make sys ~price ~cap in
        let eq = Nash.solve game in
        let cp_gross = Welfare.of_equilibrium game eq in
        let cp_net = Numerics.Vec.sum eq.Nash.utilities in
        let isp = Revenue.at_equilibrium game eq in
        let cs = Welfare.consumer_surplus sys eq.Nash.state in
        (cap, cp_gross, cp_net, isp, cs, cp_net +. isp +. cs))
      caps
  in
  let table =
    Report.Table.make
      ~columns:
        [ "q"; "CP gross profit W"; "CP net profit"; "ISP revenue"; "consumer surplus"; "total surplus" ]
  in
  Array.iter
    (fun (q, w, net, isp, cs, total) ->
      Report.Table.add_floats ~precision:4 table [ q; w; net; isp; cs; total ])
    rows;
  let extract f = Array.map f rows in
  let nondecreasing xs =
    let ok = ref true in
    Array.iteri (fun k x -> if k > 0 && x < xs.(k - 1) -. 1e-7 then ok := false) xs;
    !ok
  in
  let checks =
    [
      Common.check ~name:"surplus.gross-welfare-monotone"
        (nondecreasing (extract (fun (_, w, _, _, _, _) -> w)))
        "the paper's welfare metric rises with q (Corollary 1 regime)";
      Common.check ~name:"surplus.isp-monotone"
        (nondecreasing (extract (fun (_, _, _, isp, _, _) -> isp)))
        "ISP revenue rises with q";
      Common.check ~name:"surplus.consumers-monotone"
        (nondecreasing (extract (fun (_, _, _, _, cs, _) -> cs)))
        "consumer surplus rises with q (cheaper effective charges)";
      Common.check ~name:"surplus.total-monotone"
        (nondecreasing (extract (fun (_, _, _, _, _, t) -> t)))
        "total surplus rises with q";
      Common.check ~name:"surplus.accounting"
        (Array.for_all
           (fun (_, _, net, isp, cs, total) ->
             Float.abs (total -. (net +. isp +. cs)) < 1e-9)
           rows)
        "total = CP net + ISP + consumers (transfers cancel)";
    ]
  in
  {
    Common.id = "surplus";
    title = "Who gains from deregulation: surplus decomposition at p=0.8";
    tables = [ ("decomposition", table) ];
    plots = [];
    shape_checks = checks;
  }

let experiment =
  {
    Common.id = "surplus";
    title = "Surplus decomposition across policy levels (extension)";
    paper_ref = "Section 5.2 welfare discussion";
    run;
  }
