open Subsidization

let victim = 5 (* a2b5v1: high value, congestion-sensitive *)

let run () : Common.outcome =
  let sys = Scenario.fig7_11_system () in
  let price = 0.8 in
  let banned = Longrun.simulate sys ~price ~cap:0. in
  let dereg = Longrun.simulate sys ~price ~cap:1. in
  let periods = Array.map (fun s -> float_of_int s.Longrun.period) banned in
  let series name ys = Report.Series.make ~name ~xs:periods ~ys in
  let cap_b = series "mu (q=0)" (Longrun.capacity_path banned) in
  let cap_d = series "mu (q=1)" (Longrun.capacity_path dereg) in
  let th_b = series "theta_a2b5v1 (q=0)" (Longrun.throughput_path banned ~cp:victim) in
  let th_d = series "theta_a2b5v1 (q=1)" (Longrun.throughput_path dereg ~cp:victim) in
  let profit_b = series "profit (q=0)" (Array.map (fun s -> s.Longrun.profit) banned) in
  let profit_d = series "profit (q=1)" (Array.map (fun s -> s.Longrun.profit) dereg) in
  let table =
    Report.Series.to_table ~x_label:"period" [ cap_b; cap_d; th_b; th_d; profit_b; profit_d ]
  in
  let last a = a.(Array.length a - 1) in
  let initial_loss = th_d.Report.Series.ys.(0) < th_b.Report.Series.ys.(0) in
  let final_gain = last th_d.Report.Series.ys > last th_b.Report.Series.ys in
  let crossing =
    (* the first period where deregulated throughput overtakes banned *)
    let rec find k =
      if k >= Array.length periods then None
      else if th_d.Report.Series.ys.(k) > th_b.Report.Series.ys.(k) then Some k
      else find (k + 1)
    in
    find 0
  in
  let checks =
    [
      Common.check ~name:"longrun.initial-harm" initial_loss
        "at t=0, deregulation lowers the congestion-sensitive CP's throughput \
         (the short-run externality)";
      Common.check ~name:"longrun.capacity-expansion"
        (last cap_d.Report.Series.ys > 2. *. last cap_b.Report.Series.ys)
        (Printf.sprintf "steady-state capacity %.2f (q=1) vs %.2f (q=0)"
           (last cap_d.Report.Series.ys) (last cap_b.Report.Series.ys));
      Common.check ~name:"longrun.victim-recovers" final_gain
        (Printf.sprintf
           "the harmed CP ends at theta=%.4f under deregulation vs %.4f under the ban"
           (last th_d.Report.Series.ys) (last th_b.Report.Series.ys));
      Common.check ~name:"longrun.crossover-exists"
        (match crossing with Some k -> k > 0 && k < 10 | None -> false)
        (match crossing with
        | Some k -> Printf.sprintf "overtakes within %d periods" k
        | None -> "no crossover");
      Common.check ~name:"longrun.profits-sustain-investment"
        (last profit_d.Report.Series.ys > last profit_b.Report.Series.ys)
        "deregulated steady-state profit exceeds the banned regime's";
      Common.check ~name:"longrun.steady-state-reached"
        (Longrun.steady_state_capacity dereg <> None)
        "capacity converges within the horizon";
    ]
  in
  {
    Common.id = "longrun";
    title = "Long-run investment loop: capacity expansion heals the short-run harm";
    tables = [ ("paths", table) ];
    plots =
      [ ("capacity paths", [ cap_b; cap_d ]); ("victim throughput", [ th_b; th_d ]) ];
    shape_checks = checks;
  }

let experiment =
  {
    Common.id = "longrun";
    title = "Multi-period investment dynamics (extension)";
    paper_ref = "Sections 4-6 (long-term congestion relief narrative)";
    run;
  }
