(** Loading CP populations from CSV files.

    Format: a header `name,alpha,beta,value[,m0,l0]` followed by one row
    per CP; all CPs use the paper's exponential families (exactly what
    {!Econ.Calibrate} produces from market data). *)

val cps_of_csv : string -> Econ.Cp.t array
(** Raises [Failure] with a file-and-field message on malformed input,
    [Sys_error] if the file cannot be read. *)

val cps_of_string : path:string -> string -> Econ.Cp.t array
(** Same, from CSV text already in memory ([path] only labels
    errors). *)

val write_cps : path:string -> Econ.Cp.t array -> unit
(** Write exponential-family CPs back out in the same format. Raises
    [Invalid_argument] if a CP uses a non-exponential family. *)
