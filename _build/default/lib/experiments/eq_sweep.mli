(** The shared equilibrium grid behind Figures 7-11: Nash equilibria of
    the 8-CP Section-5 population over every (policy, price) pair.
    Computed once per grid resolution and memoized, because four figures
    read the same sweep. *)

val get :
  ?points:int ->
  unit ->
  float array * float array * Subsidization.Policy.point array array
(** [(q_levels, prices, points)] with [points.(qi).(pi)] the market
    point at cap [q_levels.(qi)] and price [prices.(pi)].
    [points] defaults to the standard 41-point grid. *)

val cp_names : unit -> string array
(** Panel labels in the paper's order. *)
