(** Figure 5: per-CP throughput [theta_i] vs price for the 9 CP types
    [(alpha, beta) in {1,3,5}^2]. Expected shapes: every [theta_i]
    eventually decreases; CPs with small [alpha_i / beta_i] (price-
    insensitive, congestion-sensitive users) rise before falling. *)

val experiment : Common.t

val series : ?points:int -> unit -> Report.Series.t list
(** One series per CP, named after the CP ("a1b1" ... "a5b5"). *)
