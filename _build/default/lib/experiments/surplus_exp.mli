(** Welfare decomposition: CP gross profit (the paper's welfare metric),
    ISP revenue and consumer surplus, per policy level. Shows where the
    deregulation gains land — every constituency weakly benefits at a
    fixed price. *)

val experiment : Common.t
