let parse_float ~path field cell =
  match float_of_string_opt (String.trim cell) with
  | Some v -> v
  | None -> failwith (Printf.sprintf "%s: bad %s value %S" path field cell)

let cps_of_rows ~path rows =
  match rows with
  | [] | [ _ ] -> failwith (path ^ ": no CP rows")
  | header :: rows ->
    let expected = [ "name"; "alpha"; "beta"; "value" ] in
    let prefix = List.filteri (fun i _ -> i < 4) (List.map String.trim header) in
    if prefix <> expected then
      failwith
        (Printf.sprintf "%s: header must start with %s" path (String.concat "," expected));
    List.map
      (fun row ->
        match row with
        | name :: alpha :: beta :: value :: rest ->
          let opt k field = List.nth_opt rest k |> Option.map (parse_float ~path field) in
          Econ.Cp.exponential ~name:(String.trim name) ?m0:(opt 0 "m0") ?l0:(opt 1 "l0")
            ~alpha:(parse_float ~path "alpha" alpha)
            ~beta:(parse_float ~path "beta" beta)
            ~value:(parse_float ~path "value" value)
            ()
        | _ -> failwith (path ^ ": row with fewer than 4 cells"))
      rows
    |> Array.of_list

let cps_of_string ~path text = cps_of_rows ~path (Report.Csv.parse_string text)

let cps_of_csv path = cps_of_rows ~path (Report.Csv.read ~path)

let write_cps ~path cps =
  let table = Report.Table.make ~columns:[ "name"; "alpha"; "beta"; "value"; "m0"; "l0" ] in
  Array.iter
    (fun cp ->
      match
        (Econ.Demand.spec cp.Econ.Cp.demand, Econ.Throughput.spec cp.Econ.Cp.throughput)
      with
      | ( Econ.Demand.Exponential { m0; alpha },
          Econ.Throughput.Exponential { l0; beta } ) ->
        Report.Table.add_row table
          [
            cp.Econ.Cp.name;
            Printf.sprintf "%.17g" alpha;
            Printf.sprintf "%.17g" beta;
            Printf.sprintf "%.17g" cp.Econ.Cp.value;
            Printf.sprintf "%.17g" m0;
            Printf.sprintf "%.17g" l0;
          ]
      | _, _ ->
        invalid_arg
          (Printf.sprintf "Market_io.write_cps: %s is not exponential" cp.Econ.Cp.name))
    cps;
  Report.Csv.write ~path table
