open Subsidization

let series ?points () =
  let sys = Scenario.fig45_system () in
  let prices = Scenario.price_grid ?points () in
  let states = Array.map (fun p -> (p, One_sided.state sys ~price:p)) prices in
  let theta =
    Report.Series.make ~name:"theta" ~xs:prices
      ~ys:(Array.map (fun (_, st) -> st.System.aggregate) states)
  in
  let revenue =
    Report.Series.make ~name:"revenue" ~xs:prices
      ~ys:(Array.map (fun (p, st) -> p *. st.System.aggregate) states)
  in
  (theta, revenue)

let run () : Common.outcome =
  let theta, revenue = series () in
  let table = Report.Series.to_table ~x_label:"p" [ theta; revenue ] in
  let peak_p, peak_r = Report.Series.argmax revenue in
  let checks =
    [
      Common.check ~name:"fig4.theta-decreasing"
        (Report.Series.is_monotone_nonincreasing theta)
        "aggregate throughput decreases with price (Theorem 2)";
      Common.check ~name:"fig4.revenue-single-peak"
        (Report.Series.is_single_peaked revenue)
        (Printf.sprintf "revenue is single-peaked, max R=%.4g at p=%.3g" peak_r peak_p);
      Common.check ~name:"fig4.revenue-interior-peak"
        (peak_p > 0.05 && peak_p < 1.95)
        (Printf.sprintf "the peak sits inside (0, 2), at p=%.3g" peak_p);
    ]
  in
  {
    Common.id = "fig4";
    title = "Aggregate throughput and ISP revenue vs price (one-sided pricing)";
    tables = [ ("theta_revenue", table) ];
    plots = [ ("theta & revenue", [ theta; revenue ]) ];
    shape_checks = checks;
  }

let experiment =
  {
    Common.id = "fig4";
    title = "Aggregate throughput theta and ISP revenue R vs price";
    paper_ref = "Figure 4, Section 3.2";
    run;
  }
