open Numerics
open Subsidization

let sample_count = 40

let run () : Common.outcome =
  let rng = Rng.create 1406_2516L in
  let kkt_ok = ref 0 in
  let unique_ok = ref 0 in
  let corollary1_revenue_ok = ref 0 in
  let corollary1_phi_ok = ref 0 in
  let theorem5_ok = ref 0 in
  let stability_ok = ref 0 in
  for _ = 1 to sample_count do
    let sys = Scenario.random_system rng in
    let p = Rng.uniform rng ~lo:0.3 ~hi:1.2 in
    let q = Rng.uniform rng ~lo:0.2 ~hi:1.0 in
    let game = Subsidy_game.make sys ~price:p ~cap:q in
    let eq = Nash.solve game in
    if eq.Nash.converged && eq.Nash.kkt_residual < 1e-5 then incr kkt_ok;
    if Nash.multistart_spread ~starts:3 rng game < 1e-6 then incr unique_ok;
    (* Corollary 1: relax the cap, revenue and utilization move up *)
    let tighter = Nash.solve (Subsidy_game.make sys ~price:p ~cap:(q /. 2.)) in
    if
      p *. eq.Nash.state.System.aggregate
      >= (p *. tighter.Nash.state.System.aggregate) -. 1e-6
    then incr corollary1_revenue_ok;
    if eq.Nash.state.System.phi >= tighter.Nash.state.System.phi -. 1e-8 then
      incr corollary1_phi_ok;
    (* Theorem 5: bump a random CP's value *)
    let i = Rng.int rng (System.n_cps sys) in
    let cps = Array.copy sys.System.cps in
    cps.(i) <- { cps.(i) with Econ.Cp.value = cps.(i).Econ.Cp.value +. 0.3 };
    let richer = System.make ~cps ~capacity:sys.System.capacity () in
    let bumped = Nash.solve (Subsidy_game.make richer ~price:p ~cap:q) in
    if bumped.Nash.subsidies.(i) >= eq.Nash.subsidies.(i) -. 1e-6 then incr theorem5_ok;
    (* Corollary 1's stability condition *)
    if Nash.off_diagonal_monotone game ~subsidies:eq.Nash.subsidies then incr stability_ok
  done;
  let table = Report.Table.make ~columns:[ "property"; "holds on"; "fraction" ] in
  let fraction label count =
    Report.Table.add_row table
      [
        label;
        Printf.sprintf "%d/%d" count sample_count;
        Printf.sprintf "%.2f" (float_of_int count /. float_of_int sample_count);
      ];
    float_of_int count /. float_of_int sample_count
  in
  let f_kkt = fraction "Nash converged with small KKT residual (Thm 3)" !kkt_ok in
  let f_unique = fraction "multistart equilibria coincide (Thm 4)" !unique_ok in
  let f_c1r = fraction "revenue nondecreasing in q (Cor 1)" !corollary1_revenue_ok in
  let f_c1p = fraction "utilization nondecreasing in q (Cor 1)" !corollary1_phi_ok in
  let f_t5 = fraction "subsidy nondecreasing in own value (Thm 5)" !theorem5_ok in
  let f_stab = fraction "off-diagonal monotonicity (Cor 1 condition)" !stability_ok in
  let checks =
    [
      Common.check ~name:"robustness.kkt" (f_kkt = 1.) "every sampled market solves cleanly";
      Common.check ~name:"robustness.uniqueness" (f_unique = 1.)
        "uniqueness held on every sample";
      Common.check ~name:"robustness.corollary1" (f_c1r = 1. && f_c1p = 1.)
        "deregulation monotonicity held on every sample";
      Common.check ~name:"robustness.theorem5" (f_t5 = 1.)
        "profitability monotonicity held on every sample";
      Common.check ~name:"robustness.stability-vs-monotonicity"
        (f_c1r = 1. && f_c1p = 1.)
        (Printf.sprintf
           "Corollary-1 monotonicity held on every sample although the \
            sufficient Leontief condition held on only %.0f%% - the \
            conclusion is empirically more robust than its hypothesis"
           (100. *. f_stab));
    ]
  in
  {
    Common.id = "robustness";
    title =
      Printf.sprintf
        "Monte-Carlo robustness of Theorems 3-5 and Corollary 1 (%d random markets)"
        sample_count;
    tables = [ ("fractions", table) ];
    plots = [];
    shape_checks = checks;
  }

let experiment =
  {
    Common.id = "robustness";
    title = "Randomized-market robustness study (extension)";
    paper_ref = "beyond the styled evaluation of Section 5.2";
    run;
  }
