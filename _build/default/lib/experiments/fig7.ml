open Subsidization

let level_series ?points extract name_of =
  let caps, prices, sweep = Eq_sweep.get ?points () in
  Array.to_list
    (Array.mapi
       (fun qi cap ->
         Report.Series.make ~name:(name_of cap) ~xs:prices
           ~ys:(Array.map extract sweep.(qi)))
       caps)

let revenue_series ?points () =
  level_series ?points (fun pt -> pt.Policy.revenue) (Printf.sprintf "q=%g")

let welfare_series ?points () =
  level_series ?points (fun pt -> pt.Policy.welfare) (Printf.sprintf "q=%g")

let pointwise_dominance_in_q series =
  (* each successive q level should dominate the previous one *)
  let rec ok = function
    | a :: (b :: _ as rest) -> Report.Series.dominates ~tol:1e-6 b a && ok rest
    | _ -> true
  in
  ok series

let run () : Common.outcome =
  let revenue = revenue_series () in
  let welfare = welfare_series () in
  let revenue_table = Report.Series.to_table ~x_label:"p" revenue in
  let welfare_table = Report.Series.to_table ~x_label:"p" welfare in
  let high_q_welfare = List.nth welfare (List.length welfare - 1) in
  let tail_decreasing s =
    (* ignore the first tenth of the grid: W may rise briefly near p=0 *)
    let n = Report.Series.length s in
    let from = n / 10 in
    let sub =
      Report.Series.make ~name:s.Report.Series.name
        ~xs:(Array.sub s.Report.Series.xs from (n - from))
        ~ys:(Array.sub s.Report.Series.ys from (n - from))
    in
    Report.Series.is_monotone_nonincreasing ~tol:1e-6 sub
  in
  let checks =
    [
      Common.check ~name:"fig7.revenue-nondecreasing-in-q"
        (pointwise_dominance_in_q revenue)
        "deregulation raises ISP revenue pointwise (Corollary 1)";
      Common.check ~name:"fig7.welfare-nondecreasing-in-q"
        (pointwise_dominance_in_q welfare)
        "deregulation raises system welfare pointwise";
      Common.check ~name:"fig7.welfare-decreasing-in-p"
        (List.for_all tail_decreasing welfare)
        "welfare falls with the price under every policy";
      Common.check ~name:"fig7.q0-baseline-matches-one-sided"
        (let q0 = List.hd revenue in
         let sys = Scenario.fig7_11_system () in
         let direct =
           Array.map (fun p -> One_sided.revenue sys ~price:p) q0.Report.Series.xs
         in
         let worst = ref 0. in
         Array.iteri
           (fun i r -> worst := Float.max !worst (Float.abs (r -. q0.Report.Series.ys.(i))))
           direct;
         !worst < 1e-8)
        "the q=0 curve coincides with the no-subsidy one-sided model";
      Common.check ~name:"fig7.peak-revenue-near-p1-when-q2"
        (let peak_p, _ = Report.Series.argmax (List.nth revenue 4) in
         peak_p > 0.5 && peak_p < 1.3)
        "with q=2 the ISP's revenue peaks a bit below p=1 (paper's observation)";
    ]
  in
  {
    Common.id = "fig7";
    title = "ISP revenue and system welfare vs price under 5 policy levels";
    tables = [ ("revenue", revenue_table); ("welfare", welfare_table) ];
    plots =
      [ ("revenue R(p) by q", revenue); ("welfare W(p) by q", [ List.hd welfare; high_q_welfare ]) ];
    shape_checks = checks;
  }

let experiment =
  {
    Common.id = "fig7";
    title = "ISP revenue R and system welfare W vs price, per policy q";
    paper_ref = "Figure 7, Section 5.2";
    run;
  }
