open Subsidization

let series ?points () =
  let sys = Scenario.fig45_system () in
  let prices = Scenario.price_grid ?points () in
  let states = Array.map (fun p -> One_sided.state sys ~price:p) prices in
  List.init (System.n_cps sys) (fun i ->
      Report.Series.make ~name:sys.System.cps.(i).Econ.Cp.name ~xs:prices
        ~ys:(Array.map (fun st -> st.System.throughputs.(i)) states))

let initially_increasing s =
  Report.Series.length s >= 3 && s.Report.Series.ys.(2) > s.Report.Series.ys.(0)

let eventually_decreasing s =
  let n = Report.Series.length s in
  s.Report.Series.ys.(n - 1) < s.Report.Series.ys.(n - 1 - (n / 4))

let run () : Common.outcome =
  let all = series () in
  let table = Report.Series.to_table ~x_label:"p" all in
  let find name = List.find (fun s -> s.Report.Series.name = name) all in
  let checks =
    [
      Common.check ~name:"fig5.all-eventually-decreasing"
        (List.for_all eventually_decreasing all)
        "every theta_i falls over the top quarter of the price range";
      Common.check ~name:"fig5.a1b5-rises-first"
        (initially_increasing (find "a1b5"))
        "smallest alpha/beta ratio: throughput rises at small p";
      Common.check ~name:"fig5.a5b1-falls-from-start"
        (not (initially_increasing (find "a5b1")))
        "largest alpha/beta ratio: throughput falls from the start";
      Common.check ~name:"fig5.a1b1-dominates-a5b5"
        (Report.Series.dominates (find "a1b1") (find "a5b5"))
        "the least price- and congestion-sensitive CP dominates the most sensitive one";
    ]
  in
  {
    Common.id = "fig5";
    title = "Per-CP throughput vs price (one-sided pricing, 9 CP types)";
    tables = [ ("throughput_by_cp", table) ];
    plots =
      [
        ("corner CPs", [ find "a1b1"; find "a1b5"; find "a5b1"; find "a5b5" ]);
      ];
    shape_checks = checks;
  }

let experiment =
  {
    Common.id = "fig5";
    title = "Throughput theta_i of the 9 CP types vs price";
    paper_ref = "Figure 5, Section 3.2";
    run;
  }
