lib/experiments/capacity_exp.ml: Array Capacity Common Report Scenario Subsidization
