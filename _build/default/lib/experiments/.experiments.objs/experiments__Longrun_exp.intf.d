lib/experiments/longrun_exp.mli: Common
