lib/experiments/duopoly_exp.mli: Common
