lib/experiments/verify_exp.ml: Common List Report Subsidization Theorems
