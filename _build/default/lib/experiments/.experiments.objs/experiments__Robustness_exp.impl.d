lib/experiments/robustness_exp.ml: Array Common Econ Nash Numerics Printf Report Rng Scenario Subsidization Subsidy_game System
